// Self-service burst: the workload that motivates the paper. A burst of
// users deploys vApps simultaneously (a class starting, a test fleet
// spinning up) and we compare how the cloud absorbs it with full-clone
// provisioning versus fast provisioning — and where the time goes in
// each case.
//
//	go run ./examples/selfservice-burst
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/core"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/report"
	"cloudmcp/internal/sim"
)

const burstUsers = 40

func runBurst(fast bool) (makespan float64, recs int, lat *report.Table) {
	cfg := core.DefaultConfig(7)
	cfg.Director.FastProvisioning = fast
	cfg.Director.RebalanceThreshold = 0 // not under study here
	cloud, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	inv := cloud.Inventory()
	done := 0
	for i := 0; i < burstUsers; i++ {
		i := i
		cloud.Go(fmt.Sprintf("user%d", i), func(p *sim.Proc) {
			tpl := inv.Template(inv.Templates()[i%len(inv.Templates())])
			res := cloud.Director().DeployVApp(p, fmt.Sprintf("org%d", i%6), tpl, 2, true)
			if res.Err != nil {
				log.Fatalf("deploy %d: %v", i, res.Err)
			}
			done++
		})
	}
	cloud.Run(24 * core.Hour)

	records := cloud.Records()
	// Makespan: when the last operation of the burst completed.
	end := 0.0
	for _, r := range records {
		if r.End > end {
			end = r.End
		}
	}
	deploys := analysis.FilterOK(analysis.FilterKind(records, ops.KindDeploy.String()))
	sample := analysis.LatencySample(deploys, "")
	bd, _ := analysis.MeanBreakdown(deploys, "")
	mode := "full"
	if fast {
		mode = "linked"
	}
	t := report.NewTable(fmt.Sprintf("Deploy latency, %s provisioning (%d deploys)", mode, len(deploys)),
		"metric", "value")
	t.AddRow("burst makespan s", end)
	t.AddRow("mean deploy s", sample.Mean())
	t.AddRow("p50 deploy s", sample.Median())
	t.AddRow("p95 deploy s", sample.Percentile(95))
	t.AddRow("mean data-plane s", bd.Data)
	t.AddRow("mean control-plane s", bd.Total()-bd.Data)
	t.AddRow("control share %", 100*analysis.ControlShare(bd))
	return end, len(records), t
}

func main() {
	fmt.Printf("A burst of %d users each deploys a 2-VM vApp.\n\n", burstUsers)
	fullEnd, _, fullT := runBurst(false)
	fullT.Render(os.Stdout)
	fmt.Println()
	linkedEnd, _, linkedT := runBurst(true)
	linkedT.Render(os.Stdout)

	fmt.Printf("\nFast provisioning absorbed the burst %.1fx faster (%.0f s vs %.0f s),\n",
		fullEnd/linkedEnd, linkedEnd, fullEnd)
	fmt.Println("and its deploy latency is now dominated by the control plane —")
	fmt.Println("exactly the regime the paper characterizes.")
}
