// Quickstart: build a simulated self-service cloud, deploy a three-VM
// vApp with fast provisioning, and inspect where each operation's time
// went. This is the smallest end-to-end use of the cloudmcp API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudmcp/internal/core"
	"cloudmcp/internal/report"
	"cloudmcp/internal/sim"
)

func main() {
	// A cloud is fully described by a Config; the default is a 32-host,
	// 8-datastore installation with a two-cell director and fast
	// provisioning enabled. Seed 42 fixes every random draw.
	cloud, err := core.New(core.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	inv := cloud.Inventory()
	tpl := inv.Template(inv.Templates()[0])

	// Model code runs as simulation processes; Go spawns one and Run
	// advances virtual time until everything finishes.
	cloud.Go("user", func(p *sim.Proc) {
		res := cloud.Director().DeployVApp(p, "acme", tpl, 3, true)
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("deployed %s with %d VMs in %.1f s of virtual time\n\n",
			res.VApp.Name, len(res.VApp.VMs), p.Now())

		t := report.NewTable("Per-operation latency breakdown",
			"op", "latency s", "queue", "cell", "mgmt", "db", "host", "data")
		for _, task := range res.Tasks {
			b := task.Breakdown
			t.AddRow(task.Req.Kind.String(), task.Latency(),
				b.Queue, b.Cell, b.Mgmt, b.DB, b.Host, b.Data)
		}
		t.Render(log.Writer())
	})
	cloud.Run(core.Hour)

	// The trace recorder captured every operation for offline analysis.
	fmt.Printf("\ntrace has %d records; inventory holds %d VMs\n",
		len(cloud.Records()), len(cloud.Inventory().VMs()))
}
