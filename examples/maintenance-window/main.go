// Maintenance window: how long does it take to drain a host, and how does
// the answer change when the cloud is busy? Entering maintenance mode
// live-migrates every resident VM — a train of management operations that
// queues behind the self-service stream, so the window stretches exactly
// when the operator can least afford it.
//
//	go run ./examples/maintenance-window
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmcp/internal/core"
)

func main() {
	fmt.Println("Evacuating a host with 10 resident VMs at three levels of")
	fmt.Println("background self-service load (paper-era manager sizing):")
	fmt.Println()

	res, err := core.RunE14(core.E14Params{
		Seed:         21,
		HostVMs:      10,
		RatesPerHour: []float64{0, 2000, 5000},
		HorizonS:     1200,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Render(os.Stdout)

	idle := res.Points[0].EvacuationS
	busy := res.Points[len(res.Points)-1].EvacuationS
	fmt.Printf("\nThe same 10-VM evacuation takes %.0f s idle and %.0f s under load\n", idle, busy)
	fmt.Printf("(%.1fx stretch): the migrations queue behind self-service traffic at\n", busy/idle)
	fmt.Println("the manager's worker threads and database. Scheduling maintenance")
	fmt.Println("windows by wall clock without modeling control-plane load under-")
	fmt.Println("estimates them — one of the operational implications the paper's")
	fmt.Println("characterization surfaces.")
}
