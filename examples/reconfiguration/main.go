// Reconfiguration pressure: the paper's second finding. High provisioning
// rates force previously rare "cloud reconfiguration" work — shadow
// template creation (linked-clone chain maintenance) and datastore
// rebalancing — to run continuously. This example drives a sustained
// deploy stream through a deliberately tight installation and reports the
// reconfiguration activity it induces.
//
//	go run ./examples/reconfiguration
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/core"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
)

func main() {
	cfg := core.DefaultConfig(11)
	// Tight chains and small, tenant-pinned datastores make the
	// reconfiguration machinery visible in a short run.
	cfg.Director.MaxChainLen = 6
	cfg.Director.Placement = clouddir.PlaceStickyOrg
	cfg.Director.RebalanceThreshold = 0.05
	cfg.Director.RebalanceCheckS = 900
	cfg.Director.RebalanceBatch = 4
	cfg.Topology.Datastores = 4
	cfg.Topology.DatastoreGB = 3000
	cloud, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	inv := cloud.Inventory()
	stream := rng.New(99)
	orgZipf := rng.NewZipf(stream, 6, 1.3)

	// A sustained self-service stream: ~240 single-VM deploys per hour,
	// each living 20 minutes.
	const horizon = 4 * core.Hour
	cloud.Go("arrivals", func(p *sim.Proc) {
		n := 0
		for {
			p.Sleep(stream.Exponential(15))
			if p.Now() >= horizon {
				return
			}
			n++
			org := fmt.Sprintf("org%d", orgZipf.Draw())
			tpl := inv.Template(inv.Templates()[stream.Intn(len(inv.Templates()))])
			cloud.Go(fmt.Sprintf("req%d", n), func(rp *sim.Proc) {
				res := cloud.Director().DeployVApp(rp, org, tpl, 1, false)
				if res.VApp == nil || inv.VApp(res.VApp.ID) == nil {
					return
				}
				rp.Sleep(1200)
				if inv.VApp(res.VApp.ID) != nil {
					cloud.Director().DeleteVApp(rp, res.VApp, org)
				}
			})
		}
	})
	cloud.Run(horizon)

	recs := cloud.Records()
	deploys := analysis.FilterOK(analysis.FilterKind(recs, ops.KindDeploy.String()))
	st := cloud.Director().Stats()

	t := report.NewTable("Reconfiguration activity over 4 simulated hours", "metric", "value")
	t.AddRow("deploys completed", len(deploys))
	t.AddRow("shadow template copies", st.ShadowCopies)
	t.AddRow("shadow copies per hour", float64(st.ShadowCopies)/4)
	t.AddRow("rebalance passes started", st.RebalanceStarts)
	t.AddRow("rebalance migrations begun", st.RebalanceMoves)
	t.AddRow("rebalance passes with no candidate", st.RebalanceFutile)
	t.AddRow("residual fill imbalance", cloud.Storage().Imbalance())
	t.Render(os.Stdout)

	if st.RebalanceFutile > 0 {
		fmt.Println("\nNote the futile rebalance passes: linked-clone imbalance is")
		fmt.Println("carried by pinned shadow templates, which VM migration cannot")
		fmt.Println("move — shadow placement has to be planned, not repaired.")
	}

	// Shadow copies are paid by unlucky deploys: show the latency tail
	// they create.
	sample := analysis.LatencySample(deploys, "")
	fmt.Printf("\nDeploy latency: p50 %.1f s, p95 %.1f s, max %.1f s\n",
		sample.Median(), sample.Percentile(95), sample.Max())
	fmt.Println("The tail deploys are the ones that paid for a shadow full-copy —")
	fmt.Println("'infrequent' reconfiguration now happens on the provisioning path.")

	if err := inv.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
}
