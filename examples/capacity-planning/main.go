// Capacity planning: use the experiment harness as a what-if tool. We
// sweep offered provisioning concurrency to find each mode's throughput
// knee, then ask which control-plane change buys the most headroom —
// more director cells or finer-grained inventory locking — the design
// questions the paper raises for virtualized-datacenter architects.
//
//	go run ./examples/capacity-planning
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmcp/internal/core"
)

func main() {
	fmt.Println("Step 1: where does provisioning throughput flatten?")
	e6, err := core.RunE6(core.E6Params{
		Seed:        3,
		Concurrency: []int{1, 4, 16, 64},
		HorizonS:    900,
	})
	if err != nil {
		log.Fatal(err)
	}
	e6.Render(os.Stdout)
	fmt.Printf("peak: linked %.0f deploys/h vs full %.0f deploys/h\n\n",
		e6.PeakThroughput(true), e6.PeakThroughput(false))

	fmt.Println("Step 2: does adding director cells help at saturation?")
	e10, err := core.RunE10(core.E10Params{Seed: 3, Cells: []int{1, 2, 4}, Workers: 48, HorizonS: 900})
	if err != nil {
		log.Fatal(err)
	}
	e10.Render(os.Stdout)
	fmt.Println()

	fmt.Println("Step 3: or is lock granularity the binding constraint?")
	e11, err := core.RunE11(core.E11Params{Seed: 3, Workers: 48, HorizonS: 900})
	if err != nil {
		log.Fatal(err)
	}
	e11.Render(os.Stdout)

	fmt.Println("\nReading the three tables together tells the planner whether the")
	fmt.Println("next dollar goes to front-end cells, manager concurrency, or")
	fmt.Println("lock restructuring — the paper's design-implication question.")
}
