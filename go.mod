module cloudmcp

go 1.22
