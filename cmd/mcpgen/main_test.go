package main

import (
	"errors"
	"strings"
	"testing"

	"cloudmcp/internal/trace"
)

// failingCloser succeeds on every write and fails on Close — the shape
// of a full-disk or NFS write-back error that only surfaces at close
// time. The old deferred `f.Close()` dropped that error and mcpgen
// exited 0 with a truncated trace on disk.
type failingCloser struct {
	wrote    int
	closed   bool
	closeErr error
}

func (f *failingCloser) Write(p []byte) (int, error) { f.wrote += len(p); return len(p), nil }
func (f *failingCloser) Close() error                { f.closed = true; return f.closeErr }

func sampleRecords() []trace.Record {
	return []trace.Record{{TaskID: 1, Kind: "deploy", Submit: 0, End: 2.5, Latency: 2.5}}
}

func TestWriteTraceReportsCloseError(t *testing.T) {
	fc := &failingCloser{closeErr: errors.New("disk quota exceeded")}
	err := writeTrace(fc, "out.jsonl", sampleRecords())
	if err == nil {
		t.Fatal("Close error was swallowed")
	}
	if !strings.Contains(err.Error(), "disk quota exceeded") {
		t.Fatalf("error %q does not carry the Close failure", err)
	}
	if !fc.closed {
		t.Fatal("writer was not closed")
	}
	if fc.wrote == 0 {
		t.Fatal("no trace bytes written before close")
	}
}

func TestWriteTraceSucceedsAndCloses(t *testing.T) {
	for _, name := range []string{"out.jsonl", "out.csv"} {
		fc := &failingCloser{}
		if err := writeTrace(fc, name, sampleRecords()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !fc.closed {
			t.Fatalf("%s: writer left open", name)
		}
	}
}

// A write error must win over a close error: the first failure is the
// root cause.
func TestWriteTraceUnknownExtensionStillCloses(t *testing.T) {
	fc := &failingCloser{closeErr: errors.New("also broken")}
	err := writeTrace(fc, "out.xml", sampleRecords())
	if err == nil || !strings.Contains(err.Error(), "unknown trace extension") {
		t.Fatalf("got %v, want unknown-extension error", err)
	}
	if !fc.closed {
		t.Fatal("writer leaked on the error path")
	}
}
