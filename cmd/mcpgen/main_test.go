package main

import (
	"errors"
	"strings"
	"testing"

	"cloudmcp/internal/trace"
)

// failingCloser succeeds on every write and fails on Close — the shape
// of a full-disk or NFS write-back error that only surfaces at close
// time. A deferred unchecked `f.Close()` would drop that error and
// mcpgen would exit 0 with a truncated trace on disk.
type failingCloser struct {
	wrote    int
	closed   bool
	writeErr error
	closeErr error
}

func (f *failingCloser) Write(p []byte) (int, error) {
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	f.wrote += len(p)
	return len(p), nil
}
func (f *failingCloser) Close() error { f.closed = true; return f.closeErr }

func sampleRecords() []trace.Record {
	return []trace.Record{{TaskID: 1, Kind: "deploy", Submit: 0, End: 2.5, Latency: 2.5}}
}

func TestFinishTraceReportsCloseError(t *testing.T) {
	fc := &failingCloser{closeErr: errors.New("disk quota exceeded")}
	sw := trace.NewJSONLWriter(fc)
	for _, r := range sampleRecords() {
		r := r
		if err := sw.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	err := finishTrace(sw, fc, "out.jsonl")
	if err == nil {
		t.Fatal("Close error was swallowed")
	}
	if !strings.Contains(err.Error(), "disk quota exceeded") {
		t.Fatalf("error %q does not carry the Close failure", err)
	}
	if !fc.closed {
		t.Fatal("writer was not closed")
	}
	if fc.wrote == 0 {
		t.Fatal("no trace bytes written before close")
	}
}

// A write/flush error must win over a close error: the first failure is
// the root cause. The file is still closed.
func TestFinishTraceWriteErrorWinsAndCloses(t *testing.T) {
	fc := &failingCloser{writeErr: errors.New("disk full"), closeErr: errors.New("also broken")}
	sw := trace.NewJSONLWriter(fc)
	for _, r := range sampleRecords() {
		r := r
		sw.Write(&r)
	}
	err := finishTrace(sw, fc, "out.jsonl")
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("got %v, want the flush failure", err)
	}
	if !fc.closed {
		t.Fatal("writer leaked on the error path")
	}
}

func TestFinishTraceSucceedsAndCloses(t *testing.T) {
	fc := &failingCloser{}
	sw := trace.NewCSVWriter(fc)
	for _, r := range sampleRecords() {
		r := r
		if err := sw.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := finishTrace(sw, fc, "out.csv"); err != nil {
		t.Fatal(err)
	}
	if !fc.closed {
		t.Fatal("writer left open")
	}
	if fc.wrote == 0 {
		t.Fatal("no bytes written")
	}
}

func TestOpenTraceRejectsUnknownExtension(t *testing.T) {
	if _, _, err := openTrace(t.TempDir() + "/out.xml"); err == nil ||
		!strings.Contains(err.Error(), "unknown trace extension") {
		t.Fatalf("got %v, want unknown-extension error", err)
	}
}
