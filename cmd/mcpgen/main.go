// Command mcpgen generates a synthetic management-operation trace by
// running a workload profile against a simulated cloud, writing one
// record per completed operation. The format follows the -o extension:
// .jsonl (JSON lines) or .csv.
//
//	mcpgen -profile cloud-a -hours 48 -o cloud-a.jsonl
//	mcpgen -profile cloud-b -hours 48 -fast=false -o cloud-b-full.csv
//
// Traces are consumed by cmd/mcpchar or any external tooling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cloudmcp/internal/core"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

func main() {
	var (
		profileName = flag.String("profile", "cloud-a", "workload profile: cloud-a, cloud-b, classic-dc")
		hours       = flag.Float64("hours", 24, "simulated hours")
		seed        = flag.Int64("seed", 1, "master random seed")
		fast        = flag.Bool("fast", true, "use fast provisioning (linked clones)")
		out         = flag.String("o", "trace.jsonl", "output file (.jsonl or .csv)")
	)
	flag.Parse()

	profile, err := workload.ByName(*profileName)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(*seed)
	cfg.Director.FastProvisioning = *fast
	// Records stream straight to the output file as tasks complete (the
	// trace.Writer byte-identity test guarantees the artifact is the same
	// as the old accumulate-then-dump path), so a 48-hour trace never
	// holds every record in memory.
	cfg.Record = false
	cloud, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}

	f, sw, err := openTrace(*out)
	if err != nil {
		fatal(err)
	}
	cloud.Plane().AddTaskSink(sw.Sink)

	st, err := cloud.RunProfile(profile, *hours*core.Hour)
	if err != nil {
		fatal(err)
	}
	if err := finishTrace(sw, f, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("mcpgen: wrote %d records (%d vApp requests over %.1f h of %s) to %s\n",
		sw.N(), st.Arrivals, *hours, profile.Name, *out)
}

// openTrace creates the output file and a streaming writer in the format
// implied by name's extension. The extension is validated before the
// file is created, so a bad -o leaves no empty artifact behind.
func openTrace(name string) (io.Closer, *trace.Writer, error) {
	var mk func(io.Writer) *trace.Writer
	switch {
	case strings.HasSuffix(name, ".csv"):
		mk = trace.NewCSVWriter
	case strings.HasSuffix(name, ".jsonl"):
		mk = trace.NewJSONLWriter
	default:
		return nil, nil, fmt.Errorf("unknown trace extension in %q (want .jsonl or .csv)", name)
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, nil, err
	}
	return f, mk(f), nil
}

// finishTrace flushes the streaming writer and closes the file,
// reporting the first error. A Close error is reported, not swallowed:
// the OS may defer write-back until close (NFS, full disks), so a
// deferred unchecked Close could announce success for a truncated trace.
func finishTrace(sw *trace.Writer, c io.Closer, name string) error {
	err := sw.Flush()
	if cerr := c.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", name, cerr)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpgen:", err)
	os.Exit(1)
}
