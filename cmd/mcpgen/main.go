// Command mcpgen generates a synthetic management-operation trace by
// running a workload profile against a simulated cloud, writing one
// record per completed operation. The format follows the -o extension:
// .jsonl (JSON lines) or .csv.
//
//	mcpgen -profile cloud-a -hours 48 -o cloud-a.jsonl
//	mcpgen -profile cloud-b -hours 48 -fast=false -o cloud-b-full.csv
//
// Traces are consumed by cmd/mcpchar or any external tooling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cloudmcp/internal/core"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

func main() {
	var (
		profileName = flag.String("profile", "cloud-a", "workload profile: cloud-a, cloud-b, classic-dc")
		hours       = flag.Float64("hours", 24, "simulated hours")
		seed        = flag.Int64("seed", 1, "master random seed")
		fast        = flag.Bool("fast", true, "use fast provisioning (linked clones)")
		out         = flag.String("o", "trace.jsonl", "output file (.jsonl or .csv)")
	)
	flag.Parse()

	profile, err := workload.ByName(*profileName)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(*seed)
	cfg.Director.FastProvisioning = *fast
	cloud, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	st, err := cloud.RunProfile(profile, *hours*core.Hour)
	if err != nil {
		fatal(err)
	}
	recs := cloud.Records()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := writeTrace(f, *out, recs); err != nil {
		fatal(err)
	}
	fmt.Printf("mcpgen: wrote %d records (%d vApp requests over %.1f h of %s) to %s\n",
		len(recs), st.Arrivals, *hours, profile.Name, *out)
}

// writeTrace writes recs to wc in the format implied by name's extension
// and closes it. A Close error is reported, not swallowed: the OS may
// defer write-back until close (NFS, full disks), so a deferred
// unchecked Close could announce success for a truncated trace.
func writeTrace(wc io.WriteCloser, name string, recs []trace.Record) error {
	var err error
	switch {
	case strings.HasSuffix(name, ".csv"):
		err = trace.WriteCSV(wc, recs)
	case strings.HasSuffix(name, ".jsonl"):
		err = trace.WriteJSONL(wc, recs)
	default:
		err = fmt.Errorf("unknown trace extension in %q (want .jsonl or .csv)", name)
	}
	if cerr := wc.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", name, cerr)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpgen:", err)
	os.Exit(1)
}
