package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"cloudmcp/internal/core"
)

// errWriter fails every write — the shape of a closed pipe or full
// disk. Both output formats must propagate it so mcpsweep exits
// non-zero instead of silently truncating the grid.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

func sampleRows() ([]string, []row) {
	headers := []string{"cells", "deploys/h", "mean lat s", "p95 lat s", "errors"}
	rows := []row{
		{values: []string{"1"}, res: core.ClosedLoopResult{Deploys: 10, DeploysPerHour: 60, MeanLatencyS: 30, P95LatencyS: 55}},
		{values: []string{"2"}, res: core.ClosedLoopResult{Deploys: 0}}, // zero-deploy point: n/a latency
	}
	return headers, rows
}

func TestRenderRowsPropagatesWriteError(t *testing.T) {
	headers, rows := sampleRows()
	for _, format := range []string{"ascii", "csv"} {
		if err := renderRows(errWriter{}, format, "t", headers, rows); err == nil {
			t.Fatalf("%s render on failing writer = nil, want error", format)
		}
	}
}

func TestRenderRowsCSV(t *testing.T) {
	headers, rows := sampleRows()
	var buf bytes.Buffer
	if err := renderRows(&buf, "csv", "t", headers, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d csv lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "cells,deploys/h,mean lat s,p95 lat s,errors" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "n/a") {
		t.Fatalf("zero-deploy row %q should render latency as n/a", lines[2])
	}
}

func TestRenderRowsASCII(t *testing.T) {
	headers, rows := sampleRows()
	var buf bytes.Buffer
	if err := renderRows(&buf, "ascii", "title-here", headers, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"title-here", "deploys/h", "n/a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ascii output missing %q:\n%s", want, out)
		}
	}
}
