// Command mcpsweep runs an arbitrary what-if parameter grid — the
// generalization of the hardcoded E6/E10/E11 sweeps. It loads a base
// configuration (a scenarios/*.json file, or the defaults), varies one
// or more fields over a grid, runs the closed-loop provisioning workload
// at every grid point in parallel through internal/sweep, and emits one
// result row per point as an ASCII table or CSV. Output is byte-identical
// for any -workers value at a fixed seed.
//
//	mcpsweep -vary cells=1,2,4,8 -vary concurrency=16,64
//	mcpsweep -config scenarios/paper-era.json -vary dbConns=1,2,4 -format csv
//	mcpsweep -vary granularity=coarse,host,entity -horizon 1200
//	mcpsweep -policy default,binpack,spread -vary hosts=16,64
//
// -policy a,b,c races whole policy sets (see internal/policy) as the
// slowest-varying grid dimension and appends a tournament ranking table
// ordered by mean normalized deploys/hour; rankings are byte-identical
// for any -workers value.
//
// Grid order is row-major over the -vary flags in command-line order
// (the first flag varies slowest). By default every point runs the same
// master seed so configurations are compared under identical workload
// randomness; -point-seeds gives each point its own seed derived from
// the master seed and point index instead.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/core"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/policy"
	"cloudmcp/internal/report"
	"cloudmcp/internal/sweep"
)

// runSpec carries the per-point knobs that are not Config fields.
type runSpec struct {
	clients int // closed-loop deploy clients
}

// field is one vary-able knob: how to parse a value and apply it.
type field struct {
	name  string
	apply func(cfg *core.Config, rs *runSpec, val string) error
}

func intField(name string, set func(*core.Config, *runSpec, int)) field {
	return field{name, func(cfg *core.Config, rs *runSpec, val string) error {
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("%s=%q: want a positive integer", name, val)
		}
		set(cfg, rs, n)
		return nil
	}}
}

func floatField(name string, set func(*core.Config, float64)) field {
	return field{name, func(cfg *core.Config, _ *runSpec, val string) error {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("%s=%q: want a positive number", name, val)
		}
		set(cfg, f)
		return nil
	}}
}

// fields is the registry of grid dimensions mcpsweep can vary.
var fields = []field{
	intField("cells", func(c *core.Config, _ *runSpec, n int) { c.Director.Cells = n }),
	intField("cellThreads", func(c *core.Config, _ *runSpec, n int) { c.Director.CellThreads = n }),
	intField("threads", func(c *core.Config, _ *runSpec, n int) { c.Mgmt.Threads = n }),
	intField("dbConns", func(c *core.Config, _ *runSpec, n int) { c.Mgmt.DBConns = n }),
	intField("hostSlots", func(c *core.Config, _ *runSpec, n int) { c.Mgmt.HostSlots = n }),
	intField("maxInFlight", func(c *core.Config, _ *runSpec, n int) { c.Mgmt.MaxInFlight = n }),
	intField("hosts", func(c *core.Config, _ *runSpec, n int) { c.Topology.Hosts = n }),
	intField("datastores", func(c *core.Config, _ *runSpec, n int) { c.Topology.Datastores = n }),
	intField("maxChainLen", func(c *core.Config, _ *runSpec, n int) { c.Director.MaxChainLen = n }),
	intField("concurrency", func(_ *core.Config, rs *runSpec, n int) { rs.clients = n }),
	floatField("templateGB", func(c *core.Config, f float64) { c.Topology.TemplateDiskGB = f }),
	floatField("datastoreMBps", func(c *core.Config, f float64) { c.Topology.DatastoreMBps = f }),
	{"fast", func(cfg *core.Config, _ *runSpec, val string) error {
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("fast=%q: want true/false", val)
		}
		cfg.Director.FastProvisioning = b
		return nil
	}},
	{"granularity", func(cfg *core.Config, _ *runSpec, val string) error {
		switch val {
		case "coarse":
			cfg.Mgmt.Granularity = mgmt.GranularityCoarse
		case "host":
			cfg.Mgmt.Granularity = mgmt.GranularityHost
		case "entity":
			cfg.Mgmt.Granularity = mgmt.GranularityEntity
		default:
			return fmt.Errorf("granularity=%q: want coarse|host|entity", val)
		}
		return nil
	}},
	{"placement", func(cfg *core.Config, _ *runSpec, val string) error {
		switch val {
		case "most-free":
			cfg.Director.Placement = clouddir.PlaceMostFree
		case "sticky-org":
			cfg.Director.Placement = clouddir.PlaceStickyOrg
		default:
			return fmt.Errorf("placement=%q: want most-free|sticky-org", val)
		}
		return nil
	}},
	{"policy", func(cfg *core.Config, _ *runSpec, val string) error {
		if _, err := policy.Named(val); err != nil {
			return err
		}
		cfg.Policy = val
		return nil
	}},
}

func fieldByName(name string) (field, bool) {
	for _, f := range fields {
		if f.name == name {
			return f, true
		}
	}
	return field{}, false
}

func fieldNames() string {
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.name
	}
	return strings.Join(names, ", ")
}

// varySpec is one -vary flag: a field and its value list.
type varySpec struct {
	field  field
	values []string
}

// varyFlag accumulates repeated -vary flags in command-line order.
type varyFlag struct{ specs []varySpec }

func (v *varyFlag) String() string {
	var parts []string
	for _, s := range v.specs {
		parts = append(parts, s.field.name+"="+strings.Join(s.values, ","))
	}
	return strings.Join(parts, " ")
}

func (v *varyFlag) Set(s string) error {
	name, vals, ok := strings.Cut(s, "=")
	if !ok || vals == "" {
		return fmt.Errorf("want field=v1,v2,... got %q", s)
	}
	f, ok := fieldByName(name)
	if !ok {
		return fmt.Errorf("unknown field %q (known: %s)", name, fieldNames())
	}
	for _, prev := range v.specs {
		if prev.field.name == f.name {
			return fmt.Errorf("field %q varied twice; give all its values in one -vary", f.name)
		}
	}
	values := strings.Split(vals, ",")
	// Validate every value up front against a scratch config so a typo
	// fails before hours of simulation.
	for _, val := range values {
		scratch, rs := core.DefaultConfig(1), runSpec{clients: 1}
		if err := f.apply(&scratch, &rs, val); err != nil {
			return err
		}
	}
	v.specs = append(v.specs, varySpec{field: f, values: values})
	return nil
}

// row is one grid point's rendered result.
type row struct {
	values []string // one per varied field
	res    core.ClosedLoopResult
}

func main() {
	var vary varyFlag
	flag.Var(&vary, "vary", "field=v1,v2,... grid dimension (repeatable); fields: "+fieldNames())
	policyList := flag.String("policy", "",
		"comma-separated policy sets to race as a tournament (known: "+strings.Join(policy.Names(), ", ")+")")
	configPath := flag.String("config", "", "JSON scenario file for the base configuration")
	seed := flag.Int64("seed", 1, "master random seed (overrides the scenario's)")
	concurrency := flag.Int("concurrency", 32, "closed-loop deploy clients (unless varied)")
	horizon := flag.Float64("horizon", 600, "simulated seconds per grid point")
	warmup := flag.Float64("warmup", 0, "warmup seconds excluded from measurement (0 = horizon/10)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	format := flag.String("format", "ascii", "output format: ascii or csv")
	pointSeeds := flag.Bool("point-seeds", false, "derive an independent seed per grid point instead of sharing the master seed")
	progress := flag.Bool("progress", false, "print per-point completion to stderr")
	flag.Parse()

	// -policy a,b,c is sugar for a slowest-varying policy dimension plus
	// a ranking table over the rest of the grid.
	var tournament []string
	if *policyList != "" {
		for _, prev := range vary.specs {
			if prev.field.name == "policy" {
				fatal(fmt.Errorf("use either -policy or -vary policy=..., not both"))
			}
		}
		f, _ := fieldByName("policy")
		tournament = strings.Split(*policyList, ",")
		for _, val := range tournament {
			scratch, rs := core.DefaultConfig(1), runSpec{clients: 1}
			if err := f.apply(&scratch, &rs, val); err != nil {
				fatal(err)
			}
		}
		vary.specs = append([]varySpec{{field: f, values: tournament}}, vary.specs...)
	}
	if len(vary.specs) == 0 {
		fatal(fmt.Errorf("nothing to sweep: pass at least one -vary field=v1,v2,... (fields: %s)", fieldNames()))
	}
	if *format != "ascii" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q (want ascii or csv)", *format))
	}
	if *warmup == 0 {
		*warmup = *horizon / 10
	}
	if *warmup >= *horizon {
		fatal(fmt.Errorf("warmup %.0fs must be below the horizon %.0fs", *warmup, *horizon))
	}

	base := core.DefaultConfig(*seed)
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fatal(err)
		}
		base, err = core.LoadConfig(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		seedSet := false
		flag.Visit(func(fl *flag.Flag) { seedSet = seedSet || fl.Name == "seed" })
		if seedSet {
			base.Seed = *seed
		}
	}

	// Row-major grid: the first -vary flag varies slowest.
	total := 1
	for _, s := range vary.specs {
		total *= len(s.values)
	}
	assign := func(index int) []string {
		vals := make([]string, len(vary.specs))
		for i := len(vary.specs) - 1; i >= 0; i-- {
			n := len(vary.specs[i].values)
			vals[i] = vary.specs[i].values[index%n]
			index /= n
		}
		return vals
	}

	opts := sweep.Options{MasterSeed: base.Seed, Workers: *workers}
	if *progress {
		opts.OnProgress = func(p sweep.Progress) {
			fmt.Fprintf(os.Stderr, "mcpsweep: %d/%d points done (%.1fs)\n",
				p.Done, p.Total, p.Elapsed.Seconds())
		}
	}
	start := time.Now()
	rows, err := sweep.Run(opts, total, func(pt sweep.Point) (row, error) {
		cfg := base // per-point copy; applied fields only touch value fields
		if *pointSeeds {
			cfg.Seed = pt.Seed
		}
		rs := runSpec{clients: *concurrency}
		vals := assign(pt.Index)
		for i, s := range vary.specs {
			if err := s.field.apply(&cfg, &rs, vals[i]); err != nil {
				return row{}, err
			}
		}
		res, err := core.RunClosedLoop(cfg, rs.clients, *horizon, *warmup)
		return row{values: vals, res: res}, err
	})
	if err != nil {
		fatal(err)
	}

	headers := make([]string, 0, len(vary.specs)+4)
	for _, s := range vary.specs {
		headers = append(headers, s.field.name)
	}
	headers = append(headers, "deploys/h", "mean lat s", "p95 lat s", "errors")
	title := fmt.Sprintf("mcpsweep: %d-point grid, %.0fs horizon, seed %d",
		total, *horizon, base.Seed)
	// Buffer stdout and check the flush: a full disk or closed pipe must
	// exit non-zero, not silently truncate the grid.
	out := bufio.NewWriter(os.Stdout)
	err = renderRows(out, *format, title, headers, rows)
	if err == nil && len(tournament) > 0 && *format == "ascii" {
		rt := report.PolicyTable(
			"policy tournament: ranking by mean normalized deploys/h", rankPolicies(tournament, rows))
		if rt != nil {
			fmt.Fprintln(out)
			err = rt.Render(out)
		}
	}
	if ferr := out.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("write stdout: %w", ferr)
	}
	if err != nil {
		fatal(err)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "mcpsweep: %d points in %.1fs\n", total, time.Since(start).Seconds())
	}
}

// rankPolicies aggregates tournament rows into the ranking table:
// goodput is normalized against the best policy at each rest-of-grid
// point (so big and small configurations weigh equally), then averaged.
// Rows arrive in submission order from sweep.Run and the sort key is a
// total order, so the ranking is identical for any -workers value.
// The policy dimension is specs[0], so values[1:] identifies the group.
func rankPolicies(policies []string, rows []row) []report.PolicyRow {
	groupMax := make(map[string]float64)
	groupOf := func(r row) string { return strings.Join(r.values[1:], "\x00") }
	for _, r := range rows {
		if k := groupOf(r); r.res.DeploysPerHour > groupMax[k] {
			groupMax[k] = r.res.DeploysPerHour
		}
	}
	out := make([]report.PolicyRow, 0, len(policies))
	for _, pol := range policies {
		pr := report.PolicyRow{Policy: pol}
		var n int
		for _, r := range rows {
			if r.values[0] != pol {
				continue
			}
			n++
			if m := groupMax[groupOf(r)]; m > 0 {
				pr.Score += r.res.DeploysPerHour / m
			}
			pr.GoodPerHour += r.res.DeploysPerHour
			pr.P99S += r.res.P99LatencyS
			pr.Moves += float64(r.res.DRSMoves + r.res.RebalanceMoves)
			pr.Errors += int64(r.res.Errors)
		}
		if n > 0 {
			pr.Score /= float64(n)
			pr.GoodPerHour /= float64(n)
			pr.P99S /= float64(n)
			pr.Moves /= float64(n)
		}
		out = append(out, pr)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Policy < out[j].Policy
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// renderRows writes the result grid to w as csv or an ascii table,
// propagating every write error.
func renderRows(w io.Writer, format, title string, headers []string, rows []row) error {
	if format == "csv" {
		cw := csv.NewWriter(w)
		if err := cw.Write(headers); err != nil {
			return err
		}
		for _, r := range rows {
			rec := append([]string{}, r.values...)
			rec = append(rec,
				strconv.FormatFloat(r.res.DeploysPerHour, 'g', -1, 64),
				csvLat(r.res, r.res.MeanLatencyS),
				csvLat(r.res, r.res.P95LatencyS),
				strconv.Itoa(r.res.Errors))
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	t := report.NewTable(title, headers...)
	for _, r := range rows {
		cells := make([]any, 0, len(headers))
		for _, v := range r.values {
			cells = append(cells, v)
		}
		cells = append(cells, r.res.DeploysPerHour, tableLat(r.res, r.res.MeanLatencyS),
			tableLat(r.res, r.res.P95LatencyS), r.res.Errors)
		t.AddRow(cells...)
	}
	return t.Render(w)
}

// A grid point that completed zero deploys has no latency sample; render
// its latency columns as "n/a" rather than a misleading 0.
func tableLat(res core.ClosedLoopResult, v float64) float64 {
	if res.Deploys == 0 {
		return math.NaN() // report.FormatFloat renders NaN as "n/a"
	}
	return v
}

func csvLat(res core.ClosedLoopResult, v float64) string {
	if res.Deploys == 0 {
		return "n/a"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpsweep:", err)
	os.Exit(1)
}
