// Command mcpchar characterizes a management-operation trace file (as
// written by cmd/mcpgen): operation mix, arrival burstiness, interarrival
// statistics, and per-operation latency breakdowns — the same analyses
// the paper applies to its production traces.
//
//	mcpchar trace.jsonl
//	mcpchar -bin 300 -kind deploy trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/report"
	"cloudmcp/internal/trace"
)

func main() {
	var (
		binS = flag.Float64("bin", 600, "burstiness bin width, seconds")
		kind = flag.String("kind", "deploy", "operation kind for interarrival analysis")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcpchar [flags] <trace.jsonl|trace.csv>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var recs []trace.Record
	switch {
	case strings.HasSuffix(path, ".csv"):
		recs, err = trace.ReadCSV(f)
	default:
		recs, err = trace.ReadJSONL(f)
	}
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("trace %s is empty", path))
	}
	span := 0.0
	for _, r := range recs {
		if r.End > span {
			span = r.End
		}
	}
	fmt.Printf("mcpchar: %s — %d records spanning %.1f h\n\n", path, len(recs), span/3600)

	mixT := report.NewTable("Operation mix", "operation", "count", "%", "errors")
	for _, row := range analysis.OpMix(recs) {
		mixT.AddRow(row.Kind, row.Count, 100*row.Frac, row.Errors)
	}
	render(mixT)
	fmt.Println()

	b := analysis.MeasureBurstiness(recs, *binS, "")
	bT := report.NewTable(fmt.Sprintf("Arrival burstiness (%.0f s bins)", *binS), "metric", "value")
	bT.AddRow("mean ops/bin", b.MeanPerBin)
	bT.AddRow("peak ops/bin", b.PeakPerBin)
	bT.AddRow("peak:mean", b.PeakToMean)
	bT.AddRow("index of dispersion", b.IndexOfDispersion)
	render(bT)
	fmt.Println()

	ia := analysis.Interarrivals(recs, *kind)
	if ia.Count() > 0 {
		iaT := report.NewTable(fmt.Sprintf("%s interarrivals", *kind), "metric", "value")
		iaT.AddRow("count", ia.Count())
		iaT.AddRow("mean s", ia.Mean())
		iaT.AddRow("median s", ia.Median())
		iaT.AddRow("p95 s", ia.Percentile(95))
		iaT.AddRow("cv", ia.CV())
		render(iaT)
		fmt.Println()
	}

	orgRows := analysis.PerOrg(recs)
	if len(orgRows) > 1 {
		top := orgRows
		if len(top) > 10 {
			top = top[:10]
		}
		oT := report.NewTable("Busiest tenants", "org", "ops", "%", "deploys", "mean deploy s", "errors")
		for _, row := range top {
			oT.AddRow(row.Org, row.Ops, 100*row.Frac, row.Deploys, row.MeanDeployLatS, row.Errors)
		}
		render(oT)
		fmt.Println()
	}

	if span >= 86400 {
		prof := analysis.DiurnalProfile(recs)
		sSer := report.NewSeries("Mean ops by hour of day", "hour", "ops")
		for h, v := range prof {
			sSer.Add(float64(h), v)
		}
		render(sSer)
		fmt.Printf("day-periodicity r=%.2f (lag-24h autocorrelation of %s-binned arrivals)\n\n",
			analysis.PeriodicityAt(recs, *binS, 86400), fmtDur(*binS))
	}

	conc := analysis.PeakConcurrency(recs, *binS)
	fmt.Printf("peak in-flight operations: %.0f (at %s resolution)"+"\n\n", conc, fmtDur(*binS))

	latT := report.NewTable("Latency by operation (successful)",
		"operation", "n", "mean s", "p50 s", "p95 s", "queue", "cell", "mgmt", "db", "host", "data", "ctl%")
	for _, row := range analysis.LatencyByKind(recs) {
		bd := row.MeanBreakdown
		latT.AddRow(row.Kind, row.Count, row.MeanLatency, row.P50Latency, row.P95Latency,
			bd.Queue, bd.Cell, bd.Mgmt, bd.DB, bd.Host, bd.Data, 100*analysis.ControlShare(bd))
	}
	render(latT)
}

// render writes a table or series to stdout, failing loudly instead of
// letting a broken pipe or full disk truncate the artifact with exit
// status 0.
func render(t interface{ Render(w io.Writer) error }) {
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpchar:", err)
	os.Exit(1)
}

func fmtDur(s float64) string {
	if s >= 3600 {
		return fmt.Sprintf("%.0fh", s/3600)
	}
	if s >= 60 {
		return fmt.Sprintf("%.0fm", s/60)
	}
	return fmt.Sprintf("%.0fs", s)
}
