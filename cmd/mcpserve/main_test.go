package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		ratio, quantum float64
		shards, orgs   int
		duration       time.Duration
		ok             bool
	}{
		{60, 0.25, 1, 8, 0, true},
		{0, 0.25, 1, 8, 0, true}, // free-run is legal (tests use it)
		{600, 1, 4, 24, 30 * time.Second, true},
		{-1, 0.25, 1, 8, 0, false},
		{60, 0, 1, 8, 0, false},
		{60, -0.5, 1, 8, 0, false},
		{60, 0.25, 0, 8, 0, false},
		{60, 0.25, 1, 0, 0, false},
		{60, 0.25, 1, 8, -time.Second, false},
	}
	for _, c := range cases {
		err := validateServeFlags(c.ratio, c.quantum, c.shards, c.orgs, c.duration)
		if (err == nil) != c.ok {
			t.Errorf("validateServeFlags(%g, %g, %d, %d, %v) = %v, want ok=%v",
				c.ratio, c.quantum, c.shards, c.orgs, c.duration, err, c.ok)
		}
	}
}

func TestValidateServeFlagsMessagesNameTheFlag(t *testing.T) {
	if err := validateServeFlags(-1, 0.25, 1, 8, 0); err == nil || !strings.Contains(err.Error(), "-ratio") {
		t.Fatalf("ratio error = %v, want it to name -ratio", err)
	}
	if err := validateServeFlags(60, 0, 1, 8, 0); err == nil || !strings.Contains(err.Error(), "-quantum") {
		t.Fatalf("quantum error = %v, want it to name -quantum", err)
	}
	if err := validateServeFlags(60, 0.25, 0, 8, 0); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("shards error = %v, want it to name -shards", err)
	}
}
