// Command mcpserve boots a simulated self-service cloud behind the
// VCD-style REST API and serves it in wall-clock time: the paced driver
// holds the simulation's virtual clock to -ratio virtual seconds per
// wall second, and externally submitted operations enter the event heap
// at quantum boundaries. Clients create sessions, instantiate vApps,
// and poll async task handles exactly as against a real cloud director
// — except that time inside is virtual and the whole installation is a
// deterministic simulation.
//
//	mcpserve                               # 127.0.0.1:8080, one virtual minute per wall second
//	mcpserve -ratio 600 -shards 4          # faster clock, sharded management plane
//	mcpserve -config scenarios/default.json
//	mcpserve -duration 30s                 # serve for 30s wall, then summarize and exit
//
// On SIGINT/SIGTERM (or after -duration) the server drains: no further
// commands are injected, pending requests are rejected with 503, and a
// serving summary — operations, API-layer queue wait, worst wall-clock
// lag — is printed to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudmcp/internal/api"
	"cloudmcp/internal/core"
	"cloudmcp/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed       = flag.Int64("seed", 1, "master random seed")
		ratio      = flag.Float64("ratio", 60, "virtual seconds per wall-clock second (0 = free-run, for tests)")
		quantum    = flag.Float64("quantum", 0.25, "injection quantum in virtual seconds")
		shards     = flag.Int("shards", 1, "management-server shards behind the director")
		orgs       = flag.Int("orgs", 8, "tenant organizations (org0..orgN-1)")
		configPath = flag.String("config", "", "JSON scenario file (overrides -shards and the default topology)")
		duration   = flag.Duration("duration", 0, "serve for this wall-clock duration then exit (0 = until SIGINT/SIGTERM)")
		sessionTTL = flag.Duration("session-ttl", api.DefaultSessionTTL, "idle timeout before a session is evicted (0 = never)")
		lanes      = flag.Int("lanes", 1, "event lanes partitioning the kernel (1 = single heap; identical behavior at any count)")
		metricsOn  = flag.Bool("metrics", false, "collect per-layer metrics and print the snapshot at shutdown")
	)
	flag.Parse()
	if err := validateServeFlags(*ratio, *quantum, *shards, *orgs, *duration); err != nil {
		fatal(err)
	}
	if *sessionTTL < 0 {
		fatal(fmt.Errorf("-session-ttl must be >= 0, got %v", *sessionTTL))
	}
	if *lanes < 1 {
		fatal(fmt.Errorf("-lanes must be >= 1, got %d", *lanes))
	}

	var cfg core.Config
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fatal(err)
		}
		var lerr error
		cfg, lerr = core.LoadConfig(f)
		f.Close()
		if lerr != nil {
			fatal(lerr)
		}
	} else {
		cfg = core.DefaultConfig(*seed)
		cfg.Plane.Shards = *shards
	}
	cfg.Record = false // a served run is open-ended; an unbounded trace would only leak
	if *lanes > 1 {
		cfg.Lanes = *lanes
	}
	if *metricsOn {
		cfg.Metrics = true
	}
	cloud, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	drv := sim.NewPaced(cloud.Env(), sim.PacedConfig{Ratio: *ratio, QuantumS: sim.Time(*quantum)})
	fe := core.NewFrontend(cloud, drv, core.FrontendConfig{Orgs: *orgs})
	srv := api.NewServer(fe)
	srv.SetSessionTTL(*sessionTTL)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mcpserve: serving on http://%s (ratio %g, quantum %gs, shards %d, orgs %d)\n",
		ln.Addr(), *ratio, *quantum, cloud.Plane().ShardCount(), *orgs)

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	runDone := make(chan struct{})
	go func() {
		drv.Run(sim.Forever)
		close(runDone)
	}()

	// Wait for a signal or the -duration timer, whichever the deployment
	// uses; then drain in order — stop injecting first, so in-flight
	// polls still see their tasks resolve to terminal states.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var timer <-chan time.Time
	if *duration > 0 {
		timer = time.After(*duration)
	}
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mcpserve: %v, draining\n", sig)
	case <-timer:
		fmt.Fprintf(os.Stderr, "mcpserve: -duration elapsed, draining\n")
	case err := <-serveErr:
		drv.Stop()
		<-runDone
		fatal(fmt.Errorf("serve: %w", err))
	}

	drv.Stop()
	<-runDone
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mcpserve: shutdown: %v\n", err)
	}

	if err := summarize(os.Stdout, fe, drv, cloud, *metricsOn); err != nil {
		fatal(err)
	}
}

// summarize prints the serving summary after the driver has stopped
// (MaxLag is only coherent then).
func summarize(w *os.File, fe *core.Frontend, drv *sim.Paced, cloud *core.Cloud, metricsOn bool) error {
	st := fe.Stats()
	if _, err := fmt.Fprintf(w,
		"mcpserve summary: virtual %.1fs served, %d submitted, %d completed, %d failed, %d in flight at drain\n",
		float64(fe.Clock()), st.Submitted, st.Completed, st.Failed, st.InFlight); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "api queue wait: total %.2f virtual s, mean %.3fs; worst wall lag %.1fms\n",
		st.QueueWaitSumS, st.QueueWaitMeanS, float64(drv.MaxLag())/float64(time.Millisecond)); err != nil {
		return err
	}
	if metricsOn {
		if snap := cloud.MetricsSnapshot(); snap != nil {
			if err := snap.WriteASCII(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateServeFlags rejects inconsistent values up front with a clear
// message instead of misbehaving mid-serve.
func validateServeFlags(ratio, quantum float64, shards, orgs int, duration time.Duration) error {
	if ratio < 0 {
		return fmt.Errorf("-ratio must be >= 0, got %g", ratio)
	}
	if quantum <= 0 {
		return fmt.Errorf("-quantum must be > 0, got %g", quantum)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if orgs < 1 {
		return fmt.Errorf("-orgs must be >= 1, got %d", orgs)
	}
	if duration < 0 {
		return fmt.Errorf("-duration must be >= 0, got %v", duration)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpserve:", err)
	os.Exit(1)
}
