package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"cloudmcp/internal/core"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/sim"
)

// The kernel micro-benchmark suite behind -bench-kernel: the same hot
// paths the internal/sim and internal/faults BenchmarkKernel* functions
// cover, run through testing.Benchmark so a CLI invocation (or the CI
// perf-smoke job) can emit machine-readable numbers without the test
// harness. The emitted JSON also carries the recorded before/after
// allocation counts for the E6 closed loop on the commit that introduced
// the pooled kernel, so the reduction the change bought stays visible
// next to freshly measured numbers.

// e6Reference pins the E6 closed-loop allocation counts measured with
// `go test -bench=E6_Throughput -benchmem` at seed 1, HorizonS 900:
// the pre-optimization baseline, the first pooled-kernel pass (event
// and waiter free lists), and the second pass that landed with the
// lane kernel (lock-frame and lock-resource recycling in mgmt, parked
// process-goroutine reuse in sim, deploy-frame pooling in clouddir).
var e6Reference = struct {
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op"`
	BaselineBytesPerOp  int64   `json:"baseline_bytes_per_op"`
	PooledAllocsPerOp   int64   `json:"pooled_allocs_per_op"`
	PooledBytesPerOp    int64   `json:"pooled_bytes_per_op"`
	Pooled2AllocsPerOp  int64   `json:"pooled_v2_allocs_per_op"`
	Pooled2BytesPerOp   int64   `json:"pooled_v2_bytes_per_op"`
	AllocsReductionPct  float64 `json:"allocs_reduction_pct"`
}{
	BaselineAllocsPerOp: 436711,
	BaselineBytesPerOp:  21279712,
	PooledAllocsPerOp:   156127,
	PooledBytesPerOp:    15350688,
	Pooled2AllocsPerOp:  92151,
	Pooled2BytesPerOp:   13368636,
	AllocsReductionPct:  78.9,
}

type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Suite     string       `json:"suite"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Seed      int64        `json:"seed"`
	Results   []benchEntry `json:"results"`
	E6        interface{}  `json:"e6_closed_loop_reference"`
}

func runBench(name string, fn func(b *testing.B)) benchEntry {
	r := testing.Benchmark(fn)
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// kernelBenches returns the suite. Split out so a test can run it with a
// tiny iteration budget.
func kernelBenches(seed int64) []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"kernel/schedule_fire", func(b *testing.B) {
			env := sim.NewEnv()
			fn := func() {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env.Schedule(0, fn)
				env.Run(sim.Forever)
			}
		}},
		{"kernel/timer_stop", func(b *testing.B) {
			env := sim.NewEnv()
			fn := func() {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tm := env.Schedule(1, fn)
				tm.Stop()
			}
		}},
		{"kernel/resource_cycle", func(b *testing.B) {
			env := sim.NewEnv()
			res := sim.NewResource(env, "r", 1)
			b.ReportAllocs()
			env.Go("worker", func(p *sim.Proc) {
				for i := 0; i < b.N; i++ {
					res.Acquire(p, 1)
					p.Sleep(1)
					res.Release(1)
				}
			})
			env.Run(sim.Forever)
		}},
		{"faults/decide", func(b *testing.B) {
			in, err := faults.New(seed, faults.Preset(0.3))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = in.Decide(faults.LayerHost, "deploy", int64(i), 1)
			}
		}},
		{"e6/closed_loop", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunE6(core.E6Params{Seed: seed, HorizonS: 900}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The lanes dimension: the same sharded closed loop under the
		// single-heap kernel and the lane-partitioned kernel. Artifacts
		// are identical at every lane count (pinned by the determinism
		// tests), so these rows measure pure kernel overhead/benefit —
		// lanes=1 is the no-regression baseline.
		{"lanes1/closed_loop", lanesClosedLoop(seed, 1)},
		{"lanes2/closed_loop", lanesClosedLoop(seed, 2)},
		{"lanes4/closed_loop", lanesClosedLoop(seed, 4)},
	}
}

// lanesClosedLoop builds one lanes-dimension bench: a 4-shard,
// 32-client linked-clone closed loop with the kernel partitioned into
// the given lane count (1 = the single-heap kernel, byte-identical
// output either way).
func lanesClosedLoop(seed int64, lanes int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(seed)
			cfg.Director.FastProvisioning = true
			cfg.Director.RebalanceThreshold = 0
			cfg.Plane.Shards = 4
			if lanes > 1 {
				cfg.Lanes = lanes
			}
			if _, err := core.RunClosedLoop(cfg, 32, 300, 30); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchKernel runs the kernel micro-benchmark suite and writes the JSON
// report to outPath ("-" for w itself). A one-line summary per benchmark
// goes to w as it completes.
func benchKernel(w io.Writer, outPath string, seed int64) error {
	rep := benchReport{
		Suite:     "kernel",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      seed,
		E6:        e6Reference,
	}
	for _, bb := range kernelBenches(seed) {
		e := runBench(bb.name, bb.fn)
		rep.Results = append(rep.Results, e)
		if _, err := fmt.Fprintf(w, "%-24s %12d iters %14.1f ns/op %8d B/op %6d allocs/op\n",
			e.Name, e.Iterations, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp); err != nil {
			return err
		}
	}
	if outPath == "-" {
		return writeBenchReport(w, rep)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	err = writeBenchReport(f, rep)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", outPath, cerr)
	}
	if err == nil {
		_, err = fmt.Fprintf(w, "bench-kernel: wrote %s\n", outPath)
	}
	return err
}

func writeBenchReport(w io.Writer, rep benchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
