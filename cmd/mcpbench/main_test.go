package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"cloudmcp/internal/core"
	"cloudmcp/internal/metrics"
)

// errWriter fails every write — the shape of a closed pipe or full disk.
// Every rendering path must propagate it so mcpbench exits non-zero
// instead of announcing success for a truncated artifact.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

func fakeProbeResult() core.ClosedLoopResult {
	return core.ClosedLoopResult{
		DeploysPerHour: 120, MeanLatencyS: 30, P95LatencyS: 60,
		Metrics: &metrics.Snapshot{},
	}
}

func TestProbeReportPropagatesWriteError(t *testing.T) {
	err := probeReport(errWriter{}, fakeProbeResult(), 64, 1800, "")
	if err == nil || !strings.Contains(err.Error(), "broken pipe") {
		t.Fatalf("probeReport on failing writer = %v, want the write error", err)
	}
}

func TestProbeReportWritesSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := probeReport(&buf, fakeProbeResult(), 64, 1800, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"metrics probe", "64 closed-loop workers", "deploys/hour 120.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("probe report %q missing %q", out, want)
		}
	}
}

func TestWriteBenchReportPropagatesWriteError(t *testing.T) {
	rep := benchReport{Suite: "kernel", Results: []benchEntry{{Name: "x"}}}
	if err := writeBenchReport(errWriter{}, rep); err == nil {
		t.Fatal("writeBenchReport on failing writer = nil, want error")
	}
	var buf bytes.Buffer
	if err := writeBenchReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"suite\": \"kernel\"") {
		t.Fatalf("report JSON %q missing suite", buf.String())
	}
}

func TestRunBenchMeasures(t *testing.T) {
	e := runBench("noop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
	})
	if e.Name != "noop" || e.Iterations <= 0 {
		t.Fatalf("runBench entry %+v", e)
	}
}

func TestLadderRungs(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1000, []int{1000}},
		{10000, []int{1000, 10000}},
		{1000000, []int{1000, 10000, 100000, 1000000}},
		{250000, []int{1000, 10000, 100000, 250000}},
		{500, []int{500}}, // bench-inventory allows tiny rungs
	}
	for _, c := range cases {
		got := ladder(c.max)
		if len(got) != len(c.want) {
			t.Fatalf("ladder(%d) = %v, want %v", c.max, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ladder(%d) = %v, want %v", c.max, got, c.want)
			}
		}
	}
}

func TestValidateScaleFlag(t *testing.T) {
	cases := []struct {
		scaleTo  int
		benchInv string
		ok       bool
	}{
		{0, "", true},           // off
		{1000000, "", true},     // full ladder
		{-1, "", false},         // negative
		{500, "", false},        // below the smallest E19 rung
		{500, "out.json", true}, // tiny rung is fine for the wall-clock bench
	}
	for _, c := range cases {
		err := validateScaleFlag(c.scaleTo, c.benchInv)
		if (err == nil) != c.ok {
			t.Errorf("validateScaleFlag(%d, %q) = %v, want ok=%v", c.scaleTo, c.benchInv, err, c.ok)
		}
	}
}

func TestBenchInventoryTinyRung(t *testing.T) {
	if testing.Short() {
		t.Skip("runs wall-clock benchmarks")
	}
	var buf bytes.Buffer
	if err := benchInventory(&buf, "-", 200); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"\"suite\": \"inventory\"", "indexed_place_cycle_ns_per_op", "linear_place_cycle_ns_per_op"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench-inventory output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteInvBenchReportPropagatesWriteError(t *testing.T) {
	rep := invBenchReport{Suite: "inventory"}
	if err := writeInvBenchReport(errWriter{}, rep); err == nil {
		t.Fatal("writeInvBenchReport on failing writer = nil, want error")
	}
}

func TestValidateReconcileFlags(t *testing.T) {
	cases := []struct {
		intervalS float64
		depth     int
		ok        bool
	}{
		{0, 0, true},   // zero = default grid
		{60, 0, true},  // custom interval, default depth
		{0, 4, true},   // default grid, pinned depth
		{60, 4, true},  // both pinned
		{-1, 0, false}, // negative interval
		{0, -2, false}, // negative depth
	}
	for _, c := range cases {
		err := validateReconcileFlags(c.intervalS, c.depth)
		if (err == nil) != c.ok {
			t.Errorf("validateReconcileFlags(%g, %d) = %v, want ok=%v", c.intervalS, c.depth, err, c.ok)
		}
	}
}
