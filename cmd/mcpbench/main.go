// Command mcpbench runs the full experiment suite (E1..E16, the
// reconstructed paper tables/figures plus the extensions) and prints
// every artifact. Experiments and their internal parameter sweeps run in
// parallel across -workers cores; output is byte-identical for any
// worker count at a fixed seed.
//
//	mcpbench            # full-scale horizons (minutes of wall time)
//	mcpbench -quick     # CI-scale horizons (seconds)
//	mcpbench -seed 7    # different random universe
//	mcpbench -only E6   # one experiment
//	mcpbench -workers 1 # serial execution (same output, more wall time)
//	mcpbench -progress  # completion ticks on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudmcp/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "master random seed")
	quick := flag.Bool("quick", false, "run shortened horizons")
	only := flag.String("only", "", "run a single experiment (E1..E16)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "print per-experiment completion to stderr")
	flag.Parse()

	if *only != "" {
		res, err := core.RunExperiment(*only, *seed, *quick, *workers)
		if err != nil {
			fatal(err)
		}
		if err := res.Render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	opts := core.RunAllOptions{Workers: *workers}
	if *progress {
		opts.Progress = func(done, total int, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "mcpbench: %d/%d experiments done (%.1fs)\n",
				done, total, elapsed.Seconds())
		}
	}
	if err := core.RunAllWith(os.Stdout, *seed, *quick, opts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpbench:", err)
	os.Exit(1)
}
