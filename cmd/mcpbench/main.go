// Command mcpbench runs the full experiment suite (E1..E12, the
// reconstructed paper tables and figures) and prints every artifact.
//
//	mcpbench            # full-scale horizons (minutes of wall time)
//	mcpbench -quick     # CI-scale horizons (seconds)
//	mcpbench -seed 7    # different random universe
//	mcpbench -only E6   # one experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cloudmcp/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "master random seed")
	quick := flag.Bool("quick", false, "run shortened horizons")
	only := flag.String("only", "", "run a single experiment (E1..E12)")
	flag.Parse()

	if *only == "" {
		if err := core.RunAll(os.Stdout, *seed, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "mcpbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := runOne(os.Stdout, *only, *seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "mcpbench:", err)
		os.Exit(1)
	}
}

func runOne(w io.Writer, name string, seed int64, quick bool) error {
	scale := 1.0
	if quick {
		scale = 0.1
	}
	var (
		res interface{ Render(io.Writer) error }
		err error
	)
	switch name {
	case "E1":
		res, err = core.RunE1(core.E1Params{Seed: seed, HorizonS: 2 * core.Day * scale})
	case "E2":
		res, err = core.RunE2(core.E2Params{Seed: seed, HorizonS: 2 * core.Day * scale})
	case "E3":
		res, err = core.RunE3(core.E3Params{Seed: seed, HorizonS: 2 * core.Day * scale})
	case "E4":
		res, err = core.RunE4(core.E4Params{Seed: seed, HorizonS: 12 * core.Hour * scale})
	case "E5":
		res, err = core.RunE5(core.E5Params{Seed: seed})
	case "E6":
		res, err = core.RunE6(core.E6Params{Seed: seed, HorizonS: 1800 * scale})
	case "E7":
		res, err = core.RunE7(core.E7Params{Seed: seed, HorizonS: core.Hour * scale})
	case "E8":
		res, err = core.RunE8(core.E8Params{Seed: seed, HorizonS: 2 * core.Hour * scale})
	case "E9":
		res, err = core.RunE9(core.E9Params{Seed: seed, HorizonS: core.Hour * scale})
	case "E10":
		res, err = core.RunE10(core.E10Params{Seed: seed, HorizonS: 1800 * scale})
	case "E11":
		res, err = core.RunE11(core.E11Params{Seed: seed, HorizonS: 1800 * scale})
	case "E12":
		res, err = core.RunE12(core.E12Params{Seed: seed, HorizonS: 1800 * scale})
	case "E13":
		res, err = core.RunE13(core.E13Params{Seed: seed, HorizonS: 1800 * scale})
	case "E14":
		res, err = core.RunE14(core.E14Params{Seed: seed, HorizonS: 1800 * scale})
	case "E15":
		res, err = core.RunE15(core.E15Params{Seed: seed, RecordS: 2 * core.Hour * scale})
	case "E16":
		res, err = core.RunE16(core.E16Params{Seed: seed, HorizonS: 1800 * scale})
	default:
		return fmt.Errorf("unknown experiment %q (want E1..E16)", name)
	}
	if err != nil {
		return err
	}
	return res.Render(w)
}
