// Command mcpbench runs the full experiment suite (E1..E16, the
// reconstructed paper tables/figures plus the extensions) and prints
// every artifact. Experiments and their internal parameter sweeps run in
// parallel across -workers cores; output is byte-identical for any
// worker count at a fixed seed. E17 (fault injection), E18
// (management-plane scale-out), E19 (inventory scale ladder), and E20
// (reconciliation interference) are opt-in via -only, -faults, -shards,
// -scale, or -reconcile and never change the default artifact; E23
// (lane-kernel wall-clock grid) is opt-in via -only E23.
//
//	mcpbench                 # full-scale horizons (minutes of wall time)
//	mcpbench -quick          # CI-scale horizons (seconds)
//	mcpbench -seed 7         # different random universe
//	mcpbench -only E6        # one experiment (E1..E23)
//	mcpbench -only E22       # serving-surface load grid (wall-clock, see internal/api)
//	mcpbench -workers 1      # serial execution (same output, more wall time)
//	mcpbench -progress       # completion ticks on stderr
//	mcpbench -metrics        # instrumented probe at the E6 crossover point
//	mcpbench -faults         # E17 goodput-under-faults, default rate grid
//	mcpbench -fault-rate 0.3 # E17 sweeping rates {0, 0.075, 0.15, 0.3}
//	mcpbench -shards 8       # E18 scale-out, sweeping shards {1, 2, 4, 8}
//	mcpbench -scale 1000000  # E19 ladder, inventories {1e3, 1e4, 1e5, 1e6}
//	mcpbench -reconcile      # E20 reconciliation interference grid
//	mcpbench -reconcile-interval 60 -reconcile-depth 4   # E20, custom grid
//	mcpbench -shards 4 -lanes 4 # E18 grid on the lane-partitioned kernel
//	mcpbench -only E23       # lane-kernel wall-clock grid + identity digest
//
// Performance instrumentation (reproducible-profiling hooks):
//
//	mcpbench -quick -cpuprofile cpu.pprof   # CPU profile of the run
//	mcpbench -quick -memprofile mem.pprof   # heap profile at exit
//	mcpbench -bench-kernel BENCH_kernel.json # kernel micro-benchmarks
//	mcpbench -bench-inventory BENCH_inventory.json # placement-cost ladder
//
// All stdout writes are buffered and the final flush is checked, so a
// full disk or closed pipe exits non-zero instead of silently truncating
// an artifact.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cloudmcp/internal/api"
	"cloudmcp/internal/core"
	"cloudmcp/internal/report"
)

func main() {
	// E22 (the serving-surface load grid) lives above core in the import
	// graph, so it registers itself with the experiment registry here.
	api.RegisterE22()
	seed := flag.Int64("seed", 1, "master random seed")
	quick := flag.Bool("quick", false, "run shortened horizons")
	only := flag.String("only", "", "run a single experiment (E1..E23)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "print per-experiment completion to stderr")
	showMetrics := flag.Bool("metrics", false, "run an instrumented closed-loop probe at the E6 crossover and print per-layer metrics")
	metricsOut := flag.String("metrics-out", "", "write the probe's metrics snapshot to this file (.json, .csv, or ASCII)")
	withFaults := flag.Bool("faults", false, "run E17: goodput and latency under injected control-plane faults")
	faultRate := flag.Float64("fault-rate", 0, "highest injected fault rate for E17's sweep grid (0 = default grid; implies -faults)")
	shards := flag.Int("shards", 0, "run E18: management-plane scale-out, sweeping shard counts up to this power of two (0 = off)")
	lanes := flag.Int("lanes", 0, "event lanes per simulated cloud for E18/E23 (0 or 1 = single-heap kernel; artifacts identical at any count)")
	laneWorkers := flag.Int("lane-workers", 0, "barrier-merge worker goroutines per laned cloud (0 = one per lane)")
	scaleTo := flag.Int("scale", 0, "run E19: inventory scale ladder, sweeping prepopulated-VM counts in powers of ten up to this size (0 = off)")
	withReconcile := flag.Bool("reconcile", false, "run E20: foreground goodput under the always-on reconciliation plane")
	recInterval := flag.Float64("reconcile-interval", 0, "finest resync interval for E20's sweep grid in seconds (0 = default grid; implies -reconcile)")
	recDepth := flag.Int("reconcile-depth", 0, "reconciliation worker depth for E20 (0 = default grid; implies -reconcile)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	benchOut := flag.String("bench-kernel", "", "run the kernel micro-benchmark suite and write BENCH_kernel-style JSON to this file instead of the experiment suite")
	benchInvOut := flag.String("bench-inventory", "", "run the inventory placement-cost ladder and write BENCH_inventory-style JSON to this file instead of the experiment suite (rungs follow -scale, default up to 1e6)")
	flag.Parse()
	reconcileOn := *withReconcile || *recInterval > 0 || *recDepth > 0

	// Reject inconsistent flag values up front with a clear message and
	// a non-zero exit instead of clamping or panicking mid-suite.
	if *faultRate < 0 || *faultRate > 1 {
		fatal(fmt.Errorf("-fault-rate must be in [0,1], got %g", *faultRate))
	}
	if *shards < 0 {
		fatal(fmt.Errorf("-shards must be >= 0, got %d", *shards))
	}
	if *lanes < 0 {
		fatal(fmt.Errorf("-lanes must be >= 0, got %d", *lanes))
	}
	if *laneWorkers < 0 {
		fatal(fmt.Errorf("-lane-workers must be >= 0, got %d", *laneWorkers))
	}
	if err := validateScaleFlag(*scaleTo, *benchInvOut); err != nil {
		fatal(err)
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0, got %d", *workers))
	}
	if err := validateReconcileFlags(*recInterval, *recDepth); err != nil {
		fatal(err)
	}
	if *shards > 0 && (*withFaults || *faultRate > 0) {
		fatal(fmt.Errorf("-shards (E18) and -faults (E17) are separate benches; pick one, or use -only"))
	}
	if reconcileOn && (*shards > 0 || *withFaults || *faultRate > 0) {
		fatal(fmt.Errorf("-reconcile (E20) is a separate bench from -shards (E18) and -faults (E17); pick one, or use -only"))
	}
	if *scaleTo > 0 && *benchInvOut == "" && (*shards > 0 || *withFaults || *faultRate > 0 || reconcileOn) {
		fatal(fmt.Errorf("-scale (E19) is a separate bench from -shards (E18), -faults (E17), and -reconcile (E20); pick one, or use -only"))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(fmt.Errorf("close %s: %w", *cpuProfile, err))
			}
		}()
	}

	// Everything destined for stdout goes through one buffered writer
	// whose errors are sticky; the checked Flush below is what turns a
	// write failure anywhere in the run into a non-zero exit.
	out := bufio.NewWriter(os.Stdout)
	err := run(out, options{
		seed: *seed, quick: *quick, only: *only, workers: *workers,
		progress: *progress, showMetrics: *showMetrics, metricsOut: *metricsOut,
		withFaults: *withFaults, faultRate: *faultRate, shards: *shards,
		scaleTo: *scaleTo, lanes: *lanes, laneWorkers: *laneWorkers,
		reconcile: reconcileOn, recIntervalS: *recInterval, recDepth: *recDepth,
		benchOut: *benchOut, benchInvOut: *benchInvOut,
	})
	if ferr := out.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("write stdout: %w", ferr)
	}
	if err == nil && *memProfile != "" {
		err = writeHeapProfile(*memProfile)
	}
	if err != nil {
		fatal(err)
	}
}

type options struct {
	seed        int64
	quick       bool
	only        string
	workers     int
	progress    bool
	showMetrics bool
	metricsOut  string
	withFaults  bool
	faultRate   float64
	shards      int
	scaleTo     int
	lanes       int
	laneWorkers int

	reconcile    bool
	recIntervalS float64
	recDepth     int

	benchOut    string
	benchInvOut string
}

// run dispatches to the selected bench, writing every artifact to w.
func run(w io.Writer, o options) error {
	switch {
	case o.benchOut != "":
		return benchKernel(w, o.benchOut, o.seed)
	case o.benchInvOut != "":
		max := o.scaleTo
		if max == 0 {
			max = 1000000
		}
		return benchInventory(w, o.benchInvOut, max)
	case o.scaleTo > 0:
		return scaleBench(w, o.seed, o.quick, o.workers, o.scaleTo)
	case o.shards > 0:
		return shardsBench(w, o.seed, o.quick, o.workers, o.shards, o.lanes, o.laneWorkers)
	case o.reconcile:
		return reconcileBench(w, o.seed, o.quick, o.workers, o.recIntervalS, o.recDepth)
	case o.withFaults || o.faultRate > 0:
		return faultsBench(w, o.seed, o.quick, o.workers, o.faultRate)
	case o.showMetrics || o.metricsOut != "":
		return metricsProbe(w, o.seed, o.quick, o.metricsOut)
	case o.only != "":
		res, err := core.RunExperiment(o.only, o.seed, o.quick, o.workers)
		if err != nil {
			return err
		}
		return res.Render(w)
	}
	opts := core.RunAllOptions{Workers: o.workers}
	if o.progress {
		opts.Progress = func(done, total int, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "mcpbench: %d/%d experiments done (%.1fs)\n",
				done, total, elapsed.Seconds())
		}
	}
	return core.RunAllWith(w, o.seed, o.quick, opts)
}

// writeHeapProfile forces a GC so the profile reflects live objects, then
// writes the heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", path, cerr)
	}
	return err
}

// shardsBench runs E18 — closed-loop provisioning throughput, p99
// latency, and DB utilization versus management-shard count under
// shared and per-shard database modes, plus the cross-shard
// coordination leg. max bounds the grid: shard counts are the powers of
// two up to max (so -shards 8 sweeps {1, 2, 4, 8}).
func shardsBench(w io.Writer, seed int64, quick bool, workers, max, lanes, laneWorkers int) error {
	scale := 1.0
	if quick {
		scale = 0.1
	}
	var counts []int
	for n := 1; n <= max; n *= 2 {
		counts = append(counts, n)
	}
	res, err := core.RunE18(core.E18Params{
		Seed: seed, ShardCounts: counts, HorizonS: 1800 * scale, Workers: workers,
		Lanes: lanes, LaneWorkers: laneWorkers,
	})
	if err != nil {
		return err
	}
	return res.Render(w)
}

// scaleBench runs E19 — closed-loop provisioning throughput, p99
// latency, and DB utilization versus prepopulated-inventory size under
// the default and group-commit database modes. max bounds the ladder:
// rungs are the powers of ten from 1e3 up to max, plus max itself when
// it is not a power of ten (so -scale 1000000 climbs {1e3, 1e4, 1e5,
// 1e6}).
func scaleBench(w io.Writer, seed int64, quick bool, workers, max int) error {
	scale := 1.0
	if quick {
		scale = 0.1
	}
	res, err := core.RunE19(core.E19Params{
		Seed: seed, Sizes: ladder(max), HorizonS: 1800 * scale, Workers: workers,
	})
	if err != nil {
		return err
	}
	return res.Render(w)
}

// validateScaleFlag mirrors the -shards convention. -scale shapes either
// the E19 ladder or, combined with -bench-inventory, the wall-clock
// bench ladder; alone it must be a plausible inventory size.
func validateScaleFlag(scaleTo int, benchInvOut string) error {
	if scaleTo < 0 {
		return fmt.Errorf("-scale must be >= 0, got %d", scaleTo)
	}
	if scaleTo > 0 && scaleTo < 1000 && benchInvOut == "" {
		return fmt.Errorf("-scale below the smallest ladder rung (1000), got %d", scaleTo)
	}
	return nil
}

// reconcileBench runs E20 — foreground goodput, tail latency, and DB
// utilization while the reconciliation plane's controllers compete for
// the same management servers, plus the drift-storm and
// thundering-rebalance scenario legs. intervalS > 0 replaces the default
// resync-interval grid with {4i, 2i, i}; depth > 0 pins the worker-depth
// grid to that single value.
func reconcileBench(w io.Writer, seed int64, quick bool, workers int, intervalS float64, depth int) error {
	scale := 1.0
	if quick {
		scale = 0.1
	}
	p := core.E20Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers}
	if intervalS > 0 {
		p.IntervalsS = []float64{4 * intervalS, 2 * intervalS, intervalS}
	}
	if depth > 0 {
		p.Depths = []int{depth}
	}
	res, err := core.RunE20(p)
	if err != nil {
		return err
	}
	return res.Render(w)
}

// validateReconcileFlags mirrors the -shards convention: out-of-range
// values exit non-zero with a clear message. Zero means "use the default
// grid", so only negatives are invalid here.
func validateReconcileFlags(intervalS float64, depth int) error {
	if intervalS < 0 {
		return fmt.Errorf("-reconcile-interval must be >= 0, got %g", intervalS)
	}
	if depth < 0 {
		return fmt.Errorf("-reconcile-depth must be >= 0, got %d", depth)
	}
	return nil
}

// faultsBench runs E17 — closed-loop deploy goodput, tail latency, and
// retry amplification versus injected fault rate, plus an HA restart
// storm against the same faulty control plane. rate > 0 replaces the
// default grid with {0, rate/4, rate/2, rate}.
func faultsBench(w io.Writer, seed int64, quick bool, workers int, rate float64) error {
	scale := 1.0
	if quick {
		scale = 0.1
	}
	p := core.E17Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers}
	if rate > 0 {
		p.FaultRates = []float64{0, rate / 4, rate / 2, rate}
	}
	res, err := core.RunE17(p)
	if err != nil {
		return err
	}
	return res.Render(w)
}

// metricsProbe reruns the linked-clone closed loop at the concurrency
// where E6's throughput curve flattens (64 workers at default scale) with
// the per-layer metrics registry enabled, and prints which resource is
// saturating there. Metrics are pull-based, so the probe's numbers match
// an uninstrumented run of the same configuration exactly.
func metricsProbe(w io.Writer, seed int64, quick bool, outPath string) error {
	cfg := core.DefaultConfig(seed)
	cfg.Director.FastProvisioning = true
	cfg.Director.RebalanceThreshold = 0 // isolate provisioning, as E6 does
	cfg.Metrics = true
	clients, horizon := 64, 30*60.0
	if quick {
		horizon = 5 * 60.0
	}
	warmup := horizon / 10
	res, err := core.RunClosedLoop(cfg, clients, horizon, warmup)
	if err != nil {
		return err
	}
	return probeReport(w, res, clients, horizon, outPath)
}

// probeReport renders the probe's summary, metrics tables, and optional
// snapshot file. Every write error is propagated so a broken pipe or
// full disk exits non-zero.
func probeReport(w io.Writer, res core.ClosedLoopResult, clients int, horizon float64, outPath string) error {
	if _, err := fmt.Fprintf(w, "metrics probe: linked clones, %d closed-loop workers, %.0f min horizon\n", clients, horizon/60); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "deploys/hour %.1f  mean latency %.2fs  p95 %.2fs  errors %d\n\n",
		res.DeploysPerHour, res.MeanLatencyS, res.P95LatencyS, res.Errors); err != nil {
		return err
	}
	if err := res.Metrics.WriteASCII(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := report.BottleneckTable(res.Metrics, 10).Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nsaturating resource: %s\n", report.Bottleneck(res.Metrics)); err != nil {
		return err
	}
	if outPath != "" {
		return res.Metrics.WriteFile(outPath)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpbench:", err)
	os.Exit(1)
}
