package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"cloudmcp/internal/inventory"
)

// The inventory scale-ladder micro-benchmark behind -bench-inventory:
// wall-clock cost of one placement+churn cycle (pick the most-free host
// and datastore, register a VM, deregister it) against inventories of
// 10^3..10^6 prepopulated VMs, through both the indexed path
// (inventory.BestHost/BestDatastore, the heap indexes the director uses)
// and the linear reference scan the indexes replaced. The simulated E19
// artifact is deliberately free of wall-clock numbers — they would break
// byte-identical output across machines — so this emitter is where the
// sublinear-growth claim is measured and recorded (BENCH_inventory.json,
// next to BENCH_kernel.json).

type invSizeEntry struct {
	Size           int     `json:"size"`
	Hosts          int     `json:"hosts"`
	Datastores     int     `json:"datastores"`
	BuildNsPerVM   float64 `json:"build_ns_per_vm"`
	IndexedNsPerOp float64 `json:"indexed_place_cycle_ns_per_op"`
	LinearNsPerOp  float64 `json:"linear_place_cycle_ns_per_op"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
}

type invBenchReport struct {
	Suite     string         `json:"suite"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	Results   []invSizeEntry `json:"results"`
	// IndexedGrowth is the indexed cycle's ns/op ratio between the two
	// largest ladder rungs (1.0 = flat; the linear scan's ratio tracks
	// the size ratio instead). The repo's acceptance bar is < 2 for the
	// 10^5 → 10^6 step.
	IndexedGrowth float64 `json:"indexed_growth_last_step"`
	LinearGrowth  float64 `json:"linear_growth_last_step"`
}

// buildInventory constructs an inventory shaped like e19Topology's cloud
// for the given VM count and prepopulates it the same way
// core.(*Cloud).PrepopulateVMs does: round-robin powered-off 2 vCPU /
// 2 GB / 1 GB VMs at half memory occupancy.
func buildInventory(size int) *inventory.Inventory {
	hosts := 32
	if h := (size + 127) / 128; h > hosts {
		hosts = h
	}
	dss := 8
	if d := (size + 4999) / 5000; d > dss {
		dss = d
	}
	inv := inventory.New()
	dc := inv.AddDatacenter("dc0")
	cl := inv.AddCluster(dc, "cluster0")
	for i := 0; i < hosts; i++ {
		inv.AddHost(cl, fmt.Sprintf("host%02d", i), 80000, 524288)
	}
	for i := 0; i < dss; i++ {
		inv.AddDatastore(dc, fmt.Sprintf("ds%02d", i), 20000, 300)
	}
	hostIDs := inv.Hosts()
	dsIDs := inv.Datastores()
	for i := 0; i < size; i++ {
		host := inv.Host(hostIDs[i%len(hostIDs)])
		ds := inv.Datastore(dsIDs[i%len(dsIDs)])
		vm, err := inv.AddVM(fmt.Sprintf("prevm%07d", i), host, ds, 2, 2048, 1.0)
		if err != nil {
			panic(err)
		}
		vm.State = inventory.VMPoweredOff
	}
	return inv
}

// linearBestHost is the O(hosts) reference scan the index replaced:
// most-free in-service host that fits, first wins ties.
func linearBestHost(inv *inventory.Inventory, memMB int) *inventory.Host {
	var best *inventory.Host
	for _, id := range inv.Hosts() {
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < memMB {
			continue
		}
		if best == nil || h.FreeMemMB() > best.FreeMemMB() {
			best = h
		}
	}
	return best
}

// linearBestDatastore is the O(datastores) reference scan.
func linearBestDatastore(inv *inventory.Inventory, needGB float64) *inventory.Datastore {
	var best *inventory.Datastore
	for _, id := range inv.Datastores() {
		d := inv.Datastore(id)
		if inv.EffectiveFreeGB(d) < needGB {
			continue
		}
		if best == nil || inv.EffectiveFreeGB(d) > inv.EffectiveFreeGB(best) {
			best = d
		}
	}
	return best
}

// placeCycle registers one VM on the chosen (host, datastore) and
// removes it again — the churn that keeps the indexes honest: every
// cycle rekeys both heaps twice.
func placeCycle(inv *inventory.Inventory, h *inventory.Host, d *inventory.Datastore, i int) {
	vm, err := inv.AddVM(fmt.Sprintf("bench%d", i), h, d, 2, 2048, 1.0)
	if err != nil {
		panic(err)
	}
	if err := inv.RemoveVM(vm); err != nil {
		panic(err)
	}
}

// benchInventorySize measures one ladder rung.
func benchInventorySize(size int) invSizeEntry {
	var inv *inventory.Inventory
	build := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inv = buildInventory(size)
		}
	})
	if inv == nil {
		inv = buildInventory(size)
	}
	e := invSizeEntry{
		Size:         size,
		Hosts:        len(inv.Hosts()),
		Datastores:   len(inv.Datastores()),
		BuildNsPerVM: float64(build.T.Nanoseconds()) / float64(build.N) / float64(size),
	}
	indexed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := inv.BestHost(2048)
			d := inv.BestDatastore(1.0)
			placeCycle(inv, h, d, i)
		}
	})
	e.IndexedNsPerOp = float64(indexed.T.Nanoseconds()) / float64(indexed.N)
	linear := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := linearBestHost(inv, 2048)
			d := linearBestDatastore(inv, 1.0)
			placeCycle(inv, h, d, i)
		}
	})
	e.LinearNsPerOp = float64(linear.T.Nanoseconds()) / float64(linear.N)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.HeapAllocBytes = ms.HeapAlloc
	// The inventory must stay live through the measurement or the GC
	// above reclaims it and HeapAlloc reports an empty heap.
	runtime.KeepAlive(inv)
	return e
}

// benchInventory runs the ladder up to maxSize and writes the JSON
// report to outPath ("-" for w itself). A one-line summary per rung goes
// to w as it completes.
func benchInventory(w io.Writer, outPath string, maxSize int) error {
	rep := invBenchReport{
		Suite:     "inventory",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, size := range ladder(maxSize) {
		e := benchInventorySize(size)
		rep.Results = append(rep.Results, e)
		if _, err := fmt.Fprintf(w, "inventory/%-8d %12.1f ns/op indexed %14.1f ns/op linear %10d B heap\n",
			e.Size, e.IndexedNsPerOp, e.LinearNsPerOp, e.HeapAllocBytes); err != nil {
			return err
		}
	}
	if n := len(rep.Results); n >= 2 {
		a, b := rep.Results[n-2], rep.Results[n-1]
		if a.IndexedNsPerOp > 0 {
			rep.IndexedGrowth = b.IndexedNsPerOp / a.IndexedNsPerOp
		}
		if a.LinearNsPerOp > 0 {
			rep.LinearGrowth = b.LinearNsPerOp / a.LinearNsPerOp
		}
	}
	if outPath == "-" {
		return writeInvBenchReport(w, rep)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	err = writeInvBenchReport(f, rep)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close %s: %w", outPath, cerr)
	}
	if err == nil {
		_, err = fmt.Fprintf(w, "bench-inventory: wrote %s\n", outPath)
	}
	return err
}

func writeInvBenchReport(w io.Writer, rep invBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ladder returns the powers of ten from 10^3 up to max, appending max
// itself when it is not a power of ten. max below 1000 gets a single
// rung of max.
func ladder(max int) []int {
	if max < 1000 {
		return []int{max}
	}
	var sizes []int
	for s := 1000; s <= max; s *= 10 {
		sizes = append(sizes, s)
	}
	if last := sizes[len(sizes)-1]; last != max {
		sizes = append(sizes, max)
	}
	return sizes
}
