// Command mcpload drives a running mcpserve with N concurrent virtual
// users, each cycling vApps through instantiate → task poll → delete,
// and reports the client-observed latency distribution: end-to-end
// virtual seconds including the API-layer queue wait, with the queueing
// share split out. This is the serving counterpart of the batch
// experiments — the measurement loop lives outside the simulation and
// sees exactly what a tenant sees.
//
//	mcpload                                  # 1000 users for 10s against 127.0.0.1:8080
//	mcpload -users 200 -duration 5s
//	mcpload -url http://127.0.0.1:9090 -vms 2 -power-on
//	mcpload -think-ms 250                    # open the loop with mean 250ms think time
//
// Operations still unresolved when the drain grace expires are counted
// in the cutoff column, not as failures: they are deadline truncation,
// not server errors. Exit status is non-zero only on real failures —
// no operation succeeded and the run was not merely cut off — the
// smoke-test contract the CI leg relies on.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudmcp/internal/api"
	"cloudmcp/internal/report"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "mcpserve base URL")
		users    = flag.Int("users", 1000, "concurrent virtual users")
		orgs     = flag.Int("orgs", 8, "organizations users are spread across (must be <= the server's -orgs)")
		duration = flag.Duration("duration", 10*time.Second, "wall-clock time to keep submitting")
		vms      = flag.Int("vms", 1, "VMs per instantiated vApp")
		powerOn  = flag.Bool("power-on", false, "power on each vApp as part of instantiate")
		template = flag.String("template", "", "catalog template name (default: spread users across the catalog)")
		thinkMS  = flag.Float64("think-ms", 0, "mean exponential think time between cycles in wall ms (0 = closed loop)")
		seed     = flag.Int64("seed", 1, "seed for per-user think/template streams")
		grace    = flag.Duration("drain-grace", 5*time.Second, "how long past -duration in-flight operations may keep polling before they count as cut off")
	)
	flag.Parse()
	if err := validateLoadFlags(*users, *orgs, *vms, *duration, *thinkMS); err != nil {
		fatal(err)
	}
	if *grace <= 0 {
		fatal(fmt.Errorf("-drain-grace must be > 0, got %v", *grace))
	}

	fmt.Fprintf(os.Stderr, "mcpload: %d users against %s for %v\n", *users, *url, *duration)
	res, err := api.RunLoad(api.LoadConfig{
		BaseURL:     *url,
		Users:       *users,
		Orgs:        *orgs,
		Duration:    *duration,
		VMs:         *vms,
		PowerOn:     *powerOn,
		Template:    *template,
		ThinkMeanMS: *thinkMS,
		Seed:        *seed,
		DrainGrace:  *grace,
	})
	if err != nil {
		fatal(err)
	}

	// The server knows its pacing ratio and shard count; ask it so the
	// result row is self-describing.
	var ratio float64
	var shards int
	if st, serr := api.FetchStats(api.DefaultClient(1), *url); serr == nil {
		ratio, shards = st.PacedRatio, st.Shards
	}
	t := report.APITable(
		fmt.Sprintf("mcpload: %d users, %v wall (virtual clock at %.1fs)", *users, res.WallDuration.Round(time.Millisecond), res.VirtualEndS),
		[]report.APIRow{{
			Users:    res.Users,
			Ratio:    ratio,
			Shards:   shards,
			GoodPerH: res.GoodPerHour(),
			P50S:     res.PercentileS(50),
			P99S:     res.PercentileS(99),
			APIShare: res.QueueShare(),
			Errors:   res.Failed + res.HTTPError,
			Cutoff:   res.Cutoff,
		}})
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if _, err := fmt.Fprintf(os.Stdout,
		"ops %d (ok %d, failed %d, transport errors %d, cut off %d); wall p99 %.0fms\n",
		res.Ops, res.Succeeded, res.Failed, res.HTTPError, res.Cutoff, wallP99(res)); err != nil {
		fatal(err)
	}
	// Exit non-zero only on real failures. A run whose operations were
	// all cut off at the deadline measured a too-short window, not a
	// broken server; cutoffs have their own column and do not flip the
	// exit status.
	if res.Succeeded == 0 {
		if res.Cutoff > 0 && res.Failed == 0 && res.HTTPError == 0 {
			fmt.Fprintln(os.Stderr, "mcpload: no operation resolved before the drain deadline (all cut off); lengthen -duration or -drain-grace")
			return
		}
		fatal(fmt.Errorf("no operation succeeded"))
	}
}

// wallP99 is the 99th percentile of wall-clock operation latency in ms.
func wallP99(res *api.LoadResult) float64 {
	return api.Percentile(res.WallMS, 99)
}

// validateLoadFlags rejects inconsistent values up front with a clear
// message and non-zero exit.
func validateLoadFlags(users, orgs, vms int, duration time.Duration, thinkMS float64) error {
	if users < 1 {
		return fmt.Errorf("-users must be >= 1, got %d", users)
	}
	if orgs < 1 {
		return fmt.Errorf("-orgs must be >= 1, got %d", orgs)
	}
	if vms < 1 {
		return fmt.Errorf("-vms must be >= 1, got %d", vms)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration must be > 0, got %v", duration)
	}
	if thinkMS < 0 {
		return fmt.Errorf("-think-ms must be >= 0, got %g", thinkMS)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpload:", err)
	os.Exit(1)
}
