package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateLoadFlags(t *testing.T) {
	cases := []struct {
		users, orgs, vms int
		duration         time.Duration
		thinkMS          float64
		ok               bool
	}{
		{1000, 8, 1, 10 * time.Second, 0, true},
		{1, 1, 1, time.Millisecond, 0, true},
		{200, 8, 2, 5 * time.Second, 250, true},
		{0, 8, 1, time.Second, 0, false},
		{10, 0, 1, time.Second, 0, false},
		{10, 8, 0, time.Second, 0, false},
		{10, 8, 1, 0, 0, false},
		{10, 8, 1, -time.Second, 0, false},
		{10, 8, 1, time.Second, -1, false},
	}
	for _, c := range cases {
		err := validateLoadFlags(c.users, c.orgs, c.vms, c.duration, c.thinkMS)
		if (err == nil) != c.ok {
			t.Errorf("validateLoadFlags(%d, %d, %d, %v, %g) = %v, want ok=%v",
				c.users, c.orgs, c.vms, c.duration, c.thinkMS, err, c.ok)
		}
	}
}

func TestValidateLoadFlagsMessagesNameTheFlag(t *testing.T) {
	if err := validateLoadFlags(0, 8, 1, time.Second, 0); err == nil || !strings.Contains(err.Error(), "-users") {
		t.Fatalf("users error = %v, want it to name -users", err)
	}
	if err := validateLoadFlags(10, 8, 1, 0, 0); err == nil || !strings.Contains(err.Error(), "-duration") {
		t.Fatalf("duration error = %v, want it to name -duration", err)
	}
}
