package main

import (
	"strings"
	"testing"
)

func TestValidateReconcileFlags(t *testing.T) {
	cases := []struct {
		on        bool
		intervalS float64
		depth     int
		ok        bool
	}{
		{false, 0, 0, true},   // off: values irrelevant
		{false, -5, -1, true}, // off: even bad values pass (never used)
		{true, 300, 2, true},  // defaults
		{true, 1, 1, true},    // minimal legal values
		{true, 0, 2, false},   // interval must be positive
		{true, -60, 2, false},
		{true, 300, 0, false}, // depth must be at least one worker
		{true, 300, -3, false},
	}
	for _, c := range cases {
		err := validateReconcileFlags(c.on, c.intervalS, c.depth)
		if (err == nil) != c.ok {
			t.Errorf("validateReconcileFlags(%v, %g, %d) = %v, want ok=%v", c.on, c.intervalS, c.depth, err, c.ok)
		}
	}
}

func TestValidateReconcileFlagsMessagesNameTheFlag(t *testing.T) {
	if err := validateReconcileFlags(true, 0, 2); err == nil || !strings.Contains(err.Error(), "-reconcile-interval") {
		t.Fatalf("interval error = %v, want it to name -reconcile-interval", err)
	}
	if err := validateReconcileFlags(true, 300, 0); err == nil || !strings.Contains(err.Error(), "-reconcile-depth") {
		t.Fatalf("depth error = %v, want it to name -reconcile-depth", err)
	}
}
