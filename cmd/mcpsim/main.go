// Command mcpsim runs one simulated self-service cloud under a workload
// profile and prints the characterization summary: operation mix, latency
// breakdowns, director activity, and control-plane resource utilization.
//
//	mcpsim -profile cloud-a -hours 24
//	mcpsim -profile cloud-b -hours 8 -fast=false   # full-clone baseline
//	mcpsim -hosts 64 -datastores 16 -cells 4
//	mcpsim -shards 4 -plane-db per-shard           # sharded management plane
//	mcpsim -reconcile -reconcile-interval 120      # always-on reconciliation
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/core"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/plane"
	"cloudmcp/internal/policy"
	"cloudmcp/internal/reconcile"
	"cloudmcp/internal/report"
	"cloudmcp/internal/workload"
)

func main() {
	var (
		profileName = flag.String("profile", "cloud-a", "workload profile: cloud-a, cloud-b, classic-dc")
		hours       = flag.Float64("hours", 12, "simulated hours")
		seed        = flag.Int64("seed", 1, "master random seed")
		fast        = flag.Bool("fast", true, "use fast provisioning (linked clones)")
		hosts       = flag.Int("hosts", 32, "hypervisor hosts")
		datastores  = flag.Int("datastores", 8, "shared datastores")
		cells       = flag.Int("cells", 2, "director cells")
		policyName  = flag.String("policy", "", "named policy set for placement/DRS/HA/retry/admission decisions (see internal/policy)")
		configPath  = flag.String("config", "", "JSON scenario file (overrides the topology flags)")
		dumpConfig  = flag.Bool("dump-config", false, "print the default scenario JSON and exit")
		showMetrics = flag.Bool("metrics", false, "collect and print per-layer resource metrics")
		metricsOut  = flag.String("metrics-out", "", "write the metrics snapshot to this file (.json, .csv, or ASCII)")
		withFaults  = flag.Bool("faults", false, "inject control-plane faults (preset at -fault-rate) and retry with backoff")
		faultRate   = flag.Float64("fault-rate", 0.1, "base transient-failure probability for the fault preset (implies -faults)")
		shards      = flag.Int("shards", 1, "management-server shards behind the director")
		planeDB     = flag.String("plane-db", "shared", "management DB mode across shards: shared or per-shard")
		lanes       = flag.Int("lanes", 1, "event lanes partitioning the kernel (1 = single heap; artifacts identical at any count)")
		laneWorkers = flag.Int("lane-workers", 0, "barrier-merge worker goroutines (0 = one per lane)")
		reconcileOn = flag.Bool("reconcile", false, "run the always-on reconciliation plane (drift, catalog, rebalance controllers)")
		recInterval = flag.Float64("reconcile-interval", 300, "reconciliation resync interval in seconds (implies -reconcile)")
		recDepth    = flag.Int("reconcile-depth", 2, "reconciliation worker depth per controller (implies -reconcile)")
	)
	flag.Parse()
	faultsOn := *withFaults
	recOn := *reconcileOn
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fault-rate":
			faultsOn = true
		case "reconcile-interval", "reconcile-depth":
			recOn = true
		}
	})

	// Reject inconsistent flag values up front with a clear message
	// instead of clamping silently or panicking deep inside core.
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be >= 1, got %d", *shards))
	}
	if *planeDB != string(plane.DBShared) && *planeDB != string(plane.DBPerShard) {
		fatal(fmt.Errorf("-plane-db must be %q or %q, got %q", plane.DBShared, plane.DBPerShard, *planeDB))
	}
	if faultsOn && (*faultRate < 0 || *faultRate > 1) {
		fatal(fmt.Errorf("-fault-rate must be in [0,1], got %g", *faultRate))
	}
	if err := validateReconcileFlags(recOn, *recInterval, *recDepth); err != nil {
		fatal(err)
	}
	if *hours <= 0 {
		fatal(fmt.Errorf("-hours must be > 0, got %g", *hours))
	}
	if *hosts < 1 || *datastores < 1 || *cells < 1 {
		fatal(fmt.Errorf("-hosts, -datastores, and -cells must be >= 1, got %d/%d/%d", *hosts, *datastores, *cells))
	}
	if *shards > *hosts {
		fatal(fmt.Errorf("-shards %d exceeds -hosts %d: a shard needs at least one host", *shards, *hosts))
	}
	if *lanes < 1 {
		fatal(fmt.Errorf("-lanes must be >= 1, got %d", *lanes))
	}
	if *laneWorkers < 0 {
		fatal(fmt.Errorf("-lane-workers must be >= 0, got %d", *laneWorkers))
	}

	if *dumpConfig {
		if err := core.WriteDefaultConfig(os.Stdout, *seed); err != nil {
			fatal(err)
		}
		return
	}
	profile, err := workload.ByName(*profileName)
	if err != nil {
		fatal(err)
	}
	var cfg core.Config
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = core.LoadConfig(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		cfg = core.DefaultConfig(*seed)
		cfg.Topology.Hosts = *hosts
		cfg.Topology.Datastores = *datastores
		cfg.Director.Cells = *cells
		cfg.Director.FastProvisioning = *fast
		cfg.Plane.Shards = *shards
		cfg.Plane.DB = plane.DBMode(*planeDB)
	}
	if *policyName != "" {
		if _, err := policy.Named(*policyName); err != nil {
			fatal(err)
		}
		cfg.Policy = *policyName
	}
	if *lanes > 1 {
		cfg.Lanes = *lanes
		cfg.LaneWorkers = *laneWorkers
	}
	if faultsOn {
		fc := faults.Preset(*faultRate)
		cfg.Faults = &fc
	}
	if recOn {
		rc := reconcile.DefaultConfig()
		rc.Controllers = reconcile.ControllerNames()
		rc.IntervalS = *recInterval
		rc.Depth = *recDepth
		cfg.Reconcile = &rc
	}
	if *showMetrics || *metricsOut != "" {
		cfg.Metrics = true
	}
	cloud, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	horizon := *hours * core.Hour
	st, err := cloud.RunProfile(profile, horizon)
	if err != nil {
		fatal(err)
	}
	recs := cloud.Records()

	fmt.Printf("mcpsim: %s for %.1f h (fast=%v): %d vApp requests, %d ops recorded\n\n",
		profile.Name, *hours, *fast, st.Arrivals, len(recs))

	mixT := report.NewTable("Operation mix", "operation", "count", "%", "errors")
	for _, row := range analysis.OpMix(recs) {
		mixT.AddRow(row.Kind, row.Count, 100*row.Frac, row.Errors)
	}
	render(mixT)
	fmt.Println()

	latT := report.NewTable("Latency by operation (successful)",
		"operation", "n", "mean s", "p50 s", "p95 s", "queue", "cell", "mgmt", "db", "host", "data", "ctl%")
	for _, row := range analysis.LatencyByKind(recs) {
		b := row.MeanBreakdown
		latT.AddRow(row.Kind, row.Count, row.MeanLatency, row.P50Latency, row.P95Latency,
			b.Queue, b.Cell, b.Mgmt, b.DB, b.Host, b.Data, 100*analysis.ControlShare(b))
	}
	render(latT)
	fmt.Println()

	burst := analysis.MeasureBurstiness(recs, 600, "")
	dirStats := cloud.Director().Stats()
	rr := cloud.Manager().Resources()
	sumT := report.NewTable("Control plane summary", "metric", "value")
	sumT.AddRow("ops per hour (mean)", float64(len(recs))/(*hours))
	sumT.AddRow("burstiness peak:mean (10 min bins)", burst.PeakToMean)
	sumT.AddRow("index of dispersion", burst.IndexOfDispersion)
	sumT.AddRow("vApps deployed", dirStats.VAppsDeployed)
	sumT.AddRow("shadow template copies", dirStats.ShadowCopies)
	sumT.AddRow("lease expiries", dirStats.LeaseExpiries)
	sumT.AddRow("rebalance passes started", dirStats.RebalanceStarts)
	sumT.AddRow("mgmt thread utilization", rr.Threads.Utilization)
	sumT.AddRow("mgmt DB utilization", rr.DB.Utilization)
	sumT.AddRow("admission mean queue", rr.Admission.MeanQueueLen)
	sumT.AddRow("task errors", cloud.Plane().TaskErrors())
	render(sumT)
	fmt.Println()

	btT := report.NewTable("Bottleneck attribution (most utilized first)", "stage", "utilization", "mean queue")
	for _, st := range cloud.BottleneckReport() {
		btT.AddRow(st.Stage, st.Utilization, st.MeanQueue)
	}
	render(btT)

	if pl := cloud.Plane(); pl.ShardCount() > 1 {
		fmt.Println()
		render(report.ShardTable(cloud.ShardReport()))
		ps := pl.Stats()
		if ct := report.CrossShardTable(ps.CrossOps, pl.TasksCompleted(), ps.CoordS); ct != nil {
			fmt.Println()
			render(ct)
		}
	}

	if faultsOn {
		fmt.Println()
		rs := cloud.Plane().RetryStats()
		rtT := report.NewTable(fmt.Sprintf("Fault injection (rate %.2f) and retries", *faultRate), "metric", "value")
		rtT.AddRow("attempts", rs.Attempts)
		rtT.AddRow("injected faults", rs.Faults)
		rtT.AddRow("retries", rs.Retries)
		rtT.AddRow("give-ups (attempts exhausted)", rs.GiveUps)
		rtT.AddRow("give-ups (deadline)", rs.Deadline)
		render(rtT)
		if gt := report.GoodputTable(cloud.GoodputReport()); gt != nil {
			fmt.Println()
			render(gt)
		}
	}

	if recOn {
		if rt := report.ReconcileTable(cloud.ReconcileReport()); rt != nil {
			fmt.Println()
			render(rt)
		}
	}

	if snap := cloud.MetricsSnapshot(); snap != nil {
		if *showMetrics {
			fmt.Println()
			if err := snap.WriteASCII(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			render(report.BottleneckTable(snap, 10))
		}
		if *metricsOut != "" {
			if err := snap.WriteFile(*metricsOut); err != nil {
				fatal(err)
			}
		}
	}

	if err := cloud.Inventory().CheckInvariants(); err != nil {
		fatal(fmt.Errorf("post-run invariant check failed: %w", err))
	}
}

// validateReconcileFlags mirrors the -shards convention: bad values are
// rejected up front with a clear message and a non-zero exit rather than
// clamped or passed through to panic deep inside core. The checks apply
// whenever the reconciliation plane would be enabled.
func validateReconcileFlags(on bool, intervalS float64, depth int) error {
	if !on {
		return nil
	}
	if intervalS <= 0 {
		return fmt.Errorf("-reconcile-interval must be > 0, got %g", intervalS)
	}
	if depth < 1 {
		return fmt.Errorf("-reconcile-depth must be >= 1, got %d", depth)
	}
	return nil
}

// render writes a table to stdout, failing loudly instead of letting a
// broken pipe or full disk truncate the artifact with exit status 0.
func render(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpsim:", err)
	os.Exit(1)
}
