// Command mcpreplay replays a recorded management trace (from cmd/mcpgen)
// against an alternative cloud configuration — the what-if analysis the
// characterization methodology enables. The replay is open-loop: requests
// fire at their recorded times, so an under-provisioned control plane
// shows up as queueing and latency, exactly as it would have in
// production.
//
//	mcpreplay -cells 1 -cell-threads 2 trace.jsonl
//	mcpreplay -fast=false -hosts 16 trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/core"
	"cloudmcp/internal/report"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "master random seed")
		fast        = flag.Bool("fast", true, "use fast provisioning (linked clones)")
		hosts       = flag.Int("hosts", 32, "hypervisor hosts")
		datastores  = flag.Int("datastores", 8, "shared datastores")
		cells       = flag.Int("cells", 2, "director cells")
		cellThreads = flag.Int("cell-threads", 16, "threads per cell")
		extraS      = flag.Float64("drain", 3600, "extra seconds after the last record to drain in-flight work")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcpreplay [flags] <trace.jsonl|trace.csv>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var recs []trace.Record
	if strings.HasSuffix(path, ".csv") {
		recs, err = trace.ReadCSV(f)
	} else {
		recs, err = trace.ReadJSONL(f)
	}
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig(*seed)
	cfg.Topology.Hosts = *hosts
	cfg.Topology.Datastores = *datastores
	cfg.Director.Cells = *cells
	cfg.Director.CellThreads = *cellThreads
	cfg.Director.FastProvisioning = *fast
	cloud, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	rp, err := workload.NewReplayer(cloud.Env(), cloud.Director(), recs)
	if err != nil {
		fatal(err)
	}
	rp.Start()
	last := 0.0
	for _, r := range recs {
		if r.Submit > last {
			last = r.Submit
		}
	}
	cloud.Run(last + *extraS)

	st := rp.Stats()
	fmt.Printf("mcpreplay: %s — %d records; issued %d, unmapped %d, system %d\n\n",
		path, len(recs), st.Issued, st.Unmapped, st.SystemOps)

	out := cloud.Records()
	latT := report.NewTable("Replayed latency by operation (successful)",
		"operation", "n", "mean s", "p50 s", "p95 s", "queue", "cell", "mgmt", "db", "host", "data")
	for _, row := range analysis.LatencyByKind(out) {
		b := row.MeanBreakdown
		latT.AddRow(row.Kind, row.Count, row.MeanLatency, row.P50Latency, row.P95Latency,
			b.Queue, b.Cell, b.Mgmt, b.DB, b.Host, b.Data)
	}
	render(latT)

	// Compare against what the original trace experienced.
	fmt.Println()
	cmpT := report.NewTable("Deploy latency: recorded vs replayed", "trace", "n", "mean s", "p95 s")
	orig := analysis.LatencySample(analysis.FilterKind(recs, "deploy"), "")
	repl := analysis.LatencySample(analysis.FilterKind(out, "deploy"), "")
	cmpT.AddRow("recorded", orig.Count(), orig.Mean(), orig.Percentile(95))
	cmpT.AddRow("replayed", repl.Count(), repl.Mean(), repl.Percentile(95))
	render(cmpT)
}

// render writes a table or series to stdout, failing loudly instead of
// letting a broken pipe or full disk truncate the artifact with exit
// status 0.
func render(t interface{ Render(w io.Writer) error }) {
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcpreplay:", err)
	os.Exit(1)
}
