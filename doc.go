// Package cloudmcp is a discrete-event simulator and workload-
// characterization toolkit for the management control plane of
// virtualized cloud infrastructure, reproducing Soundararajan &
// Spracklen, "Revisiting the management control plane in virtualized
// cloud computing infrastructure" (IISWC 2013).
//
// The public entry point is internal/core (package core), which
// assembles the full simulated stack; see README.md for the repository
// map and DESIGN.md for the system inventory and the reconstructed
// experiment index. The benchmarks in bench_test.go regenerate every
// table and figure; run them with:
//
//	go test -bench=. -benchmem
package cloudmcp
