package core

import (
	"bytes"
	"strings"
	"testing"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
)

func TestLoadConfigDefaultsWhenEmpty(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"seed": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig(9)
	if cfg.Topology != def.Topology || cfg.Mgmt.Threads != def.Mgmt.Threads {
		t.Fatalf("defaults not preserved: %+v", cfg)
	}
	if cfg.Seed != 9 {
		t.Fatalf("seed = %d", cfg.Seed)
	}
}

func TestLoadConfigOverrides(t *testing.T) {
	src := `{
	  "seed": 3,
	  "topology": {"hosts": 8, "datastoreMBps": 500},
	  "mgmt": {
	    "threads": 4, "granularity": "coarse",
	    "database": {"flushS": 0.5},
	    "network": {"mbps": 2500}
	  },
	  "director": {"cells": 6, "fastProvisioning": false, "placement": "sticky-org", "orgQuotaVMs": 10},
	  "storage": {"deltaWriteMB": 128},
	  "costs": {"deploy": {"mgmtS": 9.5, "dbWrites": 12}},
	  "costCV": 0,
	  "record": false
	}`
	cfg, err := LoadConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.Hosts != 8 || cfg.Topology.DatastoreMBps != 500 {
		t.Fatalf("topology = %+v", cfg.Topology)
	}
	if cfg.Topology.Datastores != DefaultTopology().Datastores {
		t.Fatal("unset topology field lost default")
	}
	if cfg.Mgmt.Threads != 4 || cfg.Mgmt.Granularity != mgmt.GranularityCoarse {
		t.Fatalf("mgmt = %+v", cfg.Mgmt)
	}
	if cfg.Mgmt.Database == nil || cfg.Mgmt.Database.FlushS != 0.5 {
		t.Fatalf("database = %+v", cfg.Mgmt.Database)
	}
	if cfg.Mgmt.Database.Conns == 0 {
		t.Fatal("database defaults not filled")
	}
	if cfg.Mgmt.Network == nil || cfg.Mgmt.Network.MBps != 2500 {
		t.Fatalf("network = %+v", cfg.Mgmt.Network)
	}
	if cfg.Director.Cells != 6 || cfg.Director.FastProvisioning ||
		cfg.Director.Placement != clouddir.PlaceStickyOrg || cfg.Director.OrgQuotaVMs != 10 {
		t.Fatalf("director = %+v", cfg.Director)
	}
	if cfg.Storage.DeltaWriteMB != 128 || cfg.Storage.DeltaDiskGB != 1.0 {
		t.Fatalf("storage = %+v", cfg.Storage)
	}
	if cfg.Model == nil || cfg.Model.CV != 0 {
		t.Fatal("cost CV override lost")
	}
	c := cfg.Model.Stage[ops.KindDeploy]
	if c.MgmtS != 9.5 || c.DBWrites != 12 {
		t.Fatalf("cost override = %+v", c)
	}
	if c.CellS == 0 {
		t.Fatal("unset cost field lost default")
	}
	if cfg.Record {
		t.Fatal("record override lost")
	}
	// The config must actually build.
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLoadConfigPolicy(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"seed": 2, "policy": "binpack"}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != "binpack" {
		t.Fatalf("policy = %q", cfg.Policy)
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"sead": 1}`)); err == nil {
		t.Fatal("typo accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"policy": "zzz"}`)); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"mgmt": {"granularity": "weird"}}`)); err == nil {
		t.Fatal("bad granularity accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"director": {"placement": "x"}}`)); err == nil {
		t.Fatal("bad placement accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"costs": {"zzz": {}}}`)); err == nil {
		t.Fatal("bad op name accepted")
	}
}

func TestWriteDefaultConfigRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDefaultConfig(&buf, 7); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig(7)
	if cfg.Topology != def.Topology {
		t.Fatalf("topology drifted: %+v vs %+v", cfg.Topology, def.Topology)
	}
	if cfg.Mgmt.Threads != def.Mgmt.Threads || cfg.Mgmt.Granularity != def.Mgmt.Granularity {
		t.Fatalf("mgmt drifted")
	}
	if cfg.Director.Cells != def.Director.Cells ||
		cfg.Director.FastProvisioning != def.Director.FastProvisioning ||
		cfg.Director.RebalanceThreshold != def.Director.RebalanceThreshold {
		t.Fatalf("director drifted")
	}
	if cfg.Storage != def.Storage {
		t.Fatalf("storage drifted")
	}
}
