package core

// Regression tests for the fault-injection determinism contract:
// with faults enabled, artifacts must be byte-identical across sweep
// worker counts (per-decision derived streams, same discipline as the
// sweep engine); with faults disabled — nil config or all-zero rates —
// behaviour must be bit-for-bit what it was before faults existed.

import (
	"bytes"
	"strings"
	"testing"

	"cloudmcp/internal/faults"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

func e17Quick(workers int) E17Params {
	return E17Params{Seed: 1, FaultRates: []float64{0, 0.1, 0.3}, Clients: 8, HorizonS: 120, Workers: workers}
}

func renderE17(t *testing.T, p E17Params) string {
	t.Helper()
	r, err := RunE17(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestE17ArtifactIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := renderE17(t, e17Quick(1))
	parallel := renderE17(t, e17Quick(8))
	if serial != parallel {
		t.Fatalf("E17 artifact differs between 1 and 8 sweep workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	for _, want := range []string{
		"E17: closed-loop deploy goodput vs injected fault rate",
		"E17: HA restart storm on a faulty control plane",
	} {
		if !strings.Contains(serial, want) {
			t.Fatalf("artifact missing %q:\n%s", want, serial)
		}
	}
}

// A zero-rate faults config (with the retry policy armed) must produce a
// trace byte-identical to a run with no faults configured at all.
func TestFaultsDisabledEquivalence(t *testing.T) {
	run := func(fc *faults.Config) []byte {
		cfg := DefaultConfig(3)
		cfg.Faults = fc
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunProfile(workload.CloudA(), 2*Hour); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, c.Records()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run(nil)
	zero := run(&faults.Config{})
	if !bytes.Equal(plain, zero) {
		t.Fatal("zero-rate faults config perturbed the trace")
	}
	preset := run(func() *faults.Config { c := faults.Preset(0); return &c }())
	if !bytes.Equal(plain, preset) {
		t.Fatal("Preset(0) faults config perturbed the trace")
	}
}

// With faults actually firing, two identical runs still agree exactly.
func TestFaultsEnabledRunsAreDeterministic(t *testing.T) {
	run := func() []byte {
		cfg := DefaultConfig(3)
		fc := faults.Preset(0.2)
		cfg.Faults = &fc
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunProfile(workload.CloudA(), Hour); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, c.Records()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("fault-enabled runs diverged")
	}
	if !bytes.Contains(a, []byte("faults: injected")) && !bytes.Contains(a, []byte("giving up")) {
		// Not fatal by itself, but at preset 0.2 over an hour of CloudA
		// some task should have exhausted its retries.
		t.Log("no give-ups in trace; fault rate may be too low for this horizon")
	}
}

func TestExtensionRegistryCoversOptIns(t *testing.T) {
	exts := Extensions()
	want := []string{"E17", "E18", "E19", "E20", "E21", "E23"}
	if len(exts) != len(want) {
		t.Fatalf("extensions = %+v, want %v", exts, want)
	}
	for i, name := range want {
		if exts[i].Name != name {
			t.Fatalf("extensions[%d] = %q, want %q", i, exts[i].Name, name)
		}
	}
	for _, e := range Experiments() {
		for _, name := range want {
			if e.Name == name {
				t.Fatalf("%s leaked into the default suite; default artifacts would change", name)
			}
		}
	}
}
