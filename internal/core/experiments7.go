package core

// Extension experiment E20: the reconciliation plane as a competing
// workload. Modern control planes run closed-loop controllers that
// continuously re-list managed objects and correct drift; that
// background work goes through the same admission slots, worker
// threads, lock tables, and management-DB connections as user
// provisioning. E20 measures the interference three ways. The main grid
// runs a closed-loop deploy workload against clouds with the drift and
// catalog controllers enabled, sweeping reconcile interval × queue
// depth × shard count (plus a reconcile-off baseline per shard count):
// foreground goodput and p99 degrade as the resync interval shrinks and
// the queue depth grows, and sharding buys headroom back — except for
// the catalog fan-out, which is host-less and pins the home shard. A
// second leg triggers a drift storm: a host failure restarts a fleet
// through HA, every restarted VM's observed config diverges at once,
// and the storm of corrections collides with foreground provisioning. A
// third leg overfills datastores and lets the "thundering rebalance"
// controller drain them through storage migrations.
//
// E20 is an opt-in extension like E17/E18: reachable through
// RunExperiment / mcpbench -only E20 / mcpbench -reconcile, never part
// of the default E1..E16 suite, so existing artifacts stay
// byte-identical.

import (
	"fmt"
	"io"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/ha"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/reconcile"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/sweep"
)

// E20Params configures the reconciliation-interference experiment.
type E20Params struct {
	Seed       int64
	IntervalsS []float64 // resync-interval grid, default {600, 300, 120, 60}
	Depths     []int     // worker-depth grid, default {1, 4}
	Shards     []int     // shard-count grid, default {1, 4}
	Clients    int       // closed-loop foreground workers, default 64
	HorizonS   float64   // per leg, default 30 min
	WarmupS    float64   // default HorizonS/10
	Workers    int       // sweep pool bound (0 = GOMAXPROCS)
	StormVMs   int       // drift-storm fleet size, default 64
	FillVMs    int       // rebalance-leg fleet size, default 44
}

// E20Cell is one grid point's outcome. IntervalS == 0 is the
// reconcile-off baseline for that shard count (Depth is meaningless).
type E20Cell struct {
	Shards    int
	Depth     int
	IntervalS float64

	GoodPerHour float64 // successful foreground deploys/hour
	P99S        float64 // foreground deploy p99 latency
	DBUtil      float64 // management DB utilization

	ReconcileRuns int64   // reconciliations executed across controllers
	ThrottleS     float64 // seconds reconcilers waited on rate limiters
}

// E20Storm is the drift-storm leg: foreground service before and after
// a host failure floods the drift controller.
type E20Storm struct {
	FleetVMs  int // powered-on fleet deployed before the failure
	Affected  int // VMs on the failed host
	Restarted int // VMs HA brought back elsewhere
	Marked    int // keys force-enqueued on the drift controller

	DriftRuns   int64
	DriftErrors int64

	PreGoodPerHour  float64 // foreground deploys/hour before the failure
	PreP99S         float64
	PostGoodPerHour float64 // and after, with the correction storm running
	PostP99S        float64
}

// E20Rebalance is the thundering-rebalance leg: overfilled datastores
// drained by the rebalance controller.
type E20Rebalance struct {
	FleetVMs   int
	FillBefore float64 // max datastore fill fraction after the fill
	FillAfter  float64 // and at the horizon

	Runs      int64
	Errors    int64
	Retries   int64
	Drops     int64
	ThrottleS float64
}

// E20Result holds the grid plus the two scenario legs.
type E20Result struct {
	Cells     []E20Cell
	Storm     E20Storm
	Rebalance E20Rebalance
	// Heaviest carries per-controller rows from the heaviest grid point
	// (smallest interval, largest depth, largest shard count).
	Heaviest []report.ReconcileRow
}

// e20Grid enables the drift and catalog controllers for a grid point.
// The wide catalog (48 templates vs the default 6) makes each resync a
// real fan-out, and the elevated drift rate keeps the workqueues fed.
func e20Grid(seed int64, shards, depth int, intervalS float64) Config {
	cfg := DefaultConfig(seed)
	cfg.Director.FastProvisioning = true
	cfg.Director.RebalanceThreshold = 0 // isolate provisioning
	// Same data-plane de-bottlenecking as E18: the managers, not the
	// spindles, must be the constraint.
	cfg.Topology.DatastoreMBps = 4000
	cfg.Director.MaxChainLen = 1 << 20
	cfg.Topology.Templates = 48
	cfg.Plane.Shards = shards
	if intervalS > 0 {
		cfg.Reconcile = &reconcile.Config{
			Controllers: []string{reconcile.ControllerDrift, reconcile.ControllerCatalog},
			IntervalS:   intervalS,
			Depth:       depth,
			RatePerS:    4,
			Burst:       8,
			DriftRate:   0.25,
		}
	}
	return cfg
}

// RunE20 sweeps the interference grid, then runs the drift-storm and
// thundering-rebalance legs serially (each is a pure function of the
// seed, so the artifact is identical across sweep worker counts).
func RunE20(p E20Params) (*E20Result, error) {
	if len(p.IntervalsS) == 0 {
		p.IntervalsS = []float64{600, 300, 120, 60}
	}
	if len(p.Depths) == 0 {
		p.Depths = []int{1, 4}
	}
	if len(p.Shards) == 0 {
		p.Shards = []int{1, 4}
	}
	if p.Clients == 0 {
		p.Clients = 64
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	if p.WarmupS == 0 {
		p.WarmupS = p.HorizonS / 10
	}
	if p.StormVMs == 0 {
		p.StormVMs = 64
	}
	if p.FillVMs == 0 {
		p.FillVMs = 44
	}

	type combo struct {
		shards, depth int
		intervalS     float64
	}
	var combos []combo
	for _, s := range p.Shards {
		combos = append(combos, combo{shards: s}) // reconcile-off baseline
		for _, d := range p.Depths {
			for _, iv := range p.IntervalsS {
				combos = append(combos, combo{shards: s, depth: d, intervalS: iv})
			}
		}
	}
	type gridOut struct {
		cell  E20Cell
		stats []reconcile.Stats
	}
	outs, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(combos),
		func(sp sweep.Point) (gridOut, error) {
			cb := combos[sp.Index]
			r, err := RunClosedLoop(e20Grid(p.Seed, cb.shards, cb.depth, cb.intervalS), p.Clients, p.HorizonS, p.WarmupS)
			if err != nil {
				return gridOut{}, fmt.Errorf("E20 shards=%d depth=%d interval=%g: %w", cb.shards, cb.depth, cb.intervalS, err)
			}
			out := gridOut{cell: E20Cell{
				Shards: cb.shards, Depth: cb.depth, IntervalS: cb.intervalS,
				GoodPerHour: r.DeploysPerHour, P99S: r.P99LatencyS, DBUtil: r.DBUtil,
			}, stats: r.Reconcile}
			for _, s := range r.Reconcile {
				out.cell.ReconcileRuns += s.Runs
				out.cell.ThrottleS += s.ThrottleS
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	res := &E20Result{}
	var heavy *gridOut
	for i := range outs {
		res.Cells = append(res.Cells, outs[i].cell)
		c := outs[i].cell
		if c.IntervalS == 0 {
			continue
		}
		if heavy == nil {
			heavy = &outs[i]
			continue
		}
		h := heavy.cell
		if c.IntervalS < h.IntervalS ||
			(c.IntervalS == h.IntervalS && (c.Depth > h.Depth ||
				(c.Depth == h.Depth && c.Shards > h.Shards))) {
			heavy = &outs[i]
		}
	}
	if heavy != nil {
		for _, s := range heavy.stats {
			res.Heaviest = append(res.Heaviest, report.ReconcileRow{
				Controller: s.Controller, Runs: s.Runs, Errors: s.Errors,
				Retries: s.Retries, Drops: s.Drops,
				Dedups: s.Queue.Dedups, Requeues: s.Queue.Requeues,
				ThrottleS: s.ThrottleS, BusyS: s.BusyS,
			})
		}
	}
	if res.Storm, err = e20DriftStorm(p); err != nil {
		return nil, fmt.Errorf("E20 storm: %w", err)
	}
	if res.Rebalance, err = e20Rebalance(p); err != nil {
		return nil, fmt.Errorf("E20 rebalance: %w", err)
	}
	return res, nil
}

// e20DriftStorm deploys a powered-on fleet, runs foreground deploy→
// destroy workers throughout, fails the busiest host at the half-way
// mark, and marks every VM drifted — HA's restart burst plus the drift
// controller's correction storm land on the management plane at once.
func e20DriftStorm(p E20Params) (E20Storm, error) {
	cfg := DefaultConfig(p.Seed)
	cfg.Director.FastProvisioning = true
	cfg.Director.RebalanceThreshold = 0
	cfg.Topology.DatastoreMBps = 4000
	cfg.Director.MaxChainLen = 1 << 20
	cfg.Reconcile = &reconcile.Config{
		Controllers: []string{reconcile.ControllerDrift},
		IntervalS:   300, Depth: 4, RatePerS: 4, Burst: 8,
		DriftRate: 0.05,
	}
	c, err := New(cfg)
	if err != nil {
		return E20Storm{}, err
	}
	eng, err := ha.New(c.Env(), c.Manager(), ha.DefaultConfig())
	if err != nil {
		return E20Storm{}, err
	}
	inv := c.Inventory()
	tpl := inv.Template(inv.Templates()[0])
	H := p.HorizonS
	st := E20Storm{FleetVMs: p.StormVMs}

	// The protected fleet: 8 vApps of powered-on VMs deployed up front.
	per := (p.StormVMs + 7) / 8
	for i := 0; i < 8; i++ {
		i := i
		c.Go(fmt.Sprintf("fleet%d", i), func(fp *sim.Proc) {
			c.Director().DeployVApp(fp, fmt.Sprintf("fleet%d", i), tpl, per, true)
		})
	}
	// Foreground provisioning, measured before vs after the failure.
	stream := rng.Derive(p.Seed, "e20.storm")
	for i := 0; i < 32; i++ {
		org := fmt.Sprintf("org%d", i%8)
		c.Go(fmt.Sprintf("fg%d", i), func(wp *sim.Proc) {
			for wp.Now() < H {
				res := c.Director().DeployVApp(wp, org, tpl, 1, false)
				if res.Err == nil {
					c.Director().DeleteVApp(wp, res.VApp, org)
				} else if res.VApp != nil && inv.VApp(res.VApp.ID) != nil {
					c.Director().DeleteVApp(wp, res.VApp, org)
				}
				wp.Sleep(stream.Uniform(0.1, 0.5))
			}
		})
	}
	// The failure: crash the busiest host, then mark the whole inventory
	// drifted — every restarted (and bystander) VM re-reconciles at once.
	c.Go("failer", func(fp *sim.Proc) {
		fp.Sleep(H / 2)
		var busiest *inventory.Host
		for _, id := range inv.Hosts() {
			h := inv.Host(id)
			if h.InService() && (busiest == nil || len(h.VMs) > len(busiest.VMs)) {
				busiest = h
			}
		}
		if busiest == nil {
			return
		}
		fo := eng.FailHost(fp, busiest)
		st.Affected = fo.Affected
		st.Restarted = fo.Restarted
		st.Marked = c.Reconcile().MarkDrifted(inv.VMs())
	})
	c.Run(H)

	window := func(lo, hi float64) (float64, float64) {
		recs := analysis.FilterTime(c.Records(), lo, hi)
		deploys := analysis.FilterOK(analysis.FilterKind(recs, ops.KindDeploy.String()))
		lat := analysis.LatencySample(deploys, "")
		return float64(len(deploys)) / (hi - lo) * Hour, lat.Percentile(99)
	}
	// Pre window skips the fleet ramp-up quarter.
	st.PreGoodPerHour, st.PreP99S = window(H/4, H/2)
	st.PostGoodPerHour, st.PostP99S = window(H/2, H)
	for _, s := range c.ReconcileStats() {
		if s.Controller == reconcile.ControllerDrift {
			st.DriftRuns = s.Runs
			st.DriftErrors = s.Errors
		}
	}
	return st, nil
}

// e20Rebalance crams full-clone VMs onto the first half of a set of
// small datastores, then lets the rebalance controller thunder: every
// resident VM of an overfull datastore is enqueued at once and drains
// through storage migrations to the empty datastores. The small
// template and fast spindles keep the fill phase well inside the first
// resync interval even at -quick horizons (deploys to one datastore
// serialize on its lock).
func e20Rebalance(p E20Params) (E20Rebalance, error) {
	cfg := DefaultConfig(p.Seed)
	cfg.Director.RebalanceThreshold = 0 // only the reconciler rebalances
	cfg.Topology.DatastoreGB = 120
	cfg.Topology.TemplateDiskGB = 8
	cfg.Topology.DatastoreMBps = 4000
	cfg.Reconcile = &reconcile.Config{
		Controllers: []string{reconcile.ControllerRebalance},
		IntervalS:   120, Depth: 4, RatePerS: 4, Burst: 8,
		FillFraction: 0.6,
	}
	c, err := New(cfg)
	if err != nil {
		return E20Rebalance{}, err
	}
	inv := c.Inventory()
	tpl := inv.Template(inv.Templates()[0])
	mgr := c.Manager()
	hosts := inv.Hosts()
	dss := inv.Datastores()
	maxFill := func() float64 {
		var m float64
		for _, id := range dss {
			if f := inv.Datastore(id).FillFraction(); f > m {
				m = f
			}
		}
		return m
	}
	st := E20Rebalance{FleetVMs: p.FillVMs}
	// Fill the first two datastores with full clones.
	const fillers = 4
	per := (p.FillVMs + fillers - 1) / fillers
	remaining := fillers
	for i := 0; i < fillers; i++ {
		i := i
		c.Go(fmt.Sprintf("fill%d", i), func(fp *sim.Proc) {
			for j := 0; j < per; j++ {
				n := i*per + j
				if n >= p.FillVMs {
					break
				}
				host := inv.Host(hosts[n%len(hosts)])
				ds := inv.Datastore(dss[n%(len(dss)/2)])
				mgr.DeployVM(fp, "fill", tpl, host, ds, ops.FullClone, mgmt.ReqCtx{Org: "fill"})
			}
			remaining--
			if remaining == 0 {
				st.FillBefore = maxFill()
			}
		})
	}
	c.Run(p.HorizonS)
	st.FillAfter = maxFill()
	for _, s := range c.ReconcileStats() {
		st.Runs = s.Runs
		st.Errors = s.Errors
		st.Retries = s.Retries
		st.Drops = s.Drops
		st.ThrottleS = s.ThrottleS
	}
	return st, nil
}

// Render writes the interference grid, the two scenario legs, and the
// per-controller breakdown for the heaviest grid point.
func (r *E20Result) Render(w io.Writer) error {
	gt := report.NewTable("E20: foreground goodput vs reconcile interval x depth x shards",
		"shards", "depth", "interval s", "good/h", "p99 s", "db util", "reconcile runs", "throttle s")
	for _, c := range r.Cells {
		if c.IntervalS == 0 {
			gt.AddRow(c.Shards, "-", "off", c.GoodPerHour, c.P99S, c.DBUtil, c.ReconcileRuns, c.ThrottleS)
			continue
		}
		gt.AddRow(c.Shards, c.Depth, c.IntervalS, c.GoodPerHour, c.P99S, c.DBUtil, c.ReconcileRuns, c.ThrottleS)
	}
	if err := gt.Render(w); err != nil {
		return err
	}
	s := r.Storm
	stormT := report.NewTable("E20: drift storm after a host failure",
		"fleet", "affected", "restarted", "marked", "drift runs", "drift err",
		"pre good/h", "pre p99 s", "post good/h", "post p99 s")
	stormT.AddRow(s.FleetVMs, s.Affected, s.Restarted, s.Marked, s.DriftRuns, s.DriftErrors,
		s.PreGoodPerHour, s.PreP99S, s.PostGoodPerHour, s.PostP99S)
	if err := stormT.Render(w); err != nil {
		return err
	}
	b := r.Rebalance
	rbT := report.NewTable("E20: thundering rebalance on datastore fill",
		"fleet", "fill before", "fill after", "runs", "errors", "retries", "drops", "throttle s")
	rbT.AddRow(b.FleetVMs, b.FillBefore, b.FillAfter, b.Runs, b.Errors, b.Retries, b.Drops, b.ThrottleS)
	if err := rbT.Render(w); err != nil {
		return err
	}
	if ht := report.ReconcileTable(r.Heaviest); ht != nil {
		return ht.Render(w)
	}
	return nil
}
