package core

// Extension experiments E13..E15 (not in the paper; see EXPERIMENTS.md):
// database group-commit batching, host maintenance under load, and trace
// replay what-if analysis.

import (
	"fmt"
	"io"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/mgmtdb"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/sweep"
	"cloudmcp/internal/workload"
)

// ---------------------------------------------------------------------
// E13 — database group-commit batching ablation. With the WAL database
// model and per-commit flushing, the management database becomes the
// binding control-plane stage at cloud provisioning rates; widening the
// group-commit window amortizes flushes and restores throughput.

// E13Params configures the batching sweep.
type E13Params struct {
	Seed         int64
	WindowsS     []float64 // group-commit windows; default 0..0.2
	Workers      int       // closed-loop clients, default 64
	HorizonS     float64   // default 30 min
	SweepWorkers int       // sweep worker pool; 0 = GOMAXPROCS
}

// E13Point is one window's outcome.
type E13Point struct {
	WindowS       float64
	LinkedPerHour float64
	MeanLatS      float64
	DB            mgmtdb.Stats
}

// E13Result holds the sweep.
type E13Result struct{ Points []E13Point }

// e13DB returns the deliberately slow database the ablation stresses:
// few connections and expensive flushes, paper-era hardware.
func e13DB(window float64) *mgmtdb.Config {
	return &mgmtdb.Config{Conns: 4, WriteS: 0.01, FlushS: 0.25, GroupWindowS: window}
}

// RunE13 sweeps the group-commit window at fixed saturating concurrency.
func RunE13(p E13Params) (*E13Result, error) {
	if len(p.WindowsS) == 0 {
		p.WindowsS = []float64{0, 0.01, 0.05, 0.2}
	}
	if p.Workers == 0 {
		p.Workers = 64
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.SweepWorkers}, len(p.WindowsS),
		func(sp sweep.Point) (E13Point, error) {
			w := p.WindowsS[sp.Index]
			perHour, meanLat, dbStats, err := e13Run(p.Seed, w, p.Workers, p.HorizonS)
			return E13Point{WindowS: w, LinkedPerHour: perHour, MeanLatS: meanLat, DB: dbStats}, err
		})
	if err != nil {
		return nil, err
	}
	return &E13Result{Points: points}, nil
}

// e13Run is closedLoopDeploys with WAL-stats access.
func e13Run(seed int64, window float64, workers int, horizon float64) (float64, float64, mgmtdb.Stats, error) {
	cfg := DefaultConfig(seed)
	cfg.Director.FastProvisioning = true
	cfg.Director.RebalanceThreshold = 0
	cfg.Director.MaxChainLen = 1 << 30
	cfg.Mgmt.Database = e13DB(window)
	c, err := New(cfg)
	if err != nil {
		return 0, 0, mgmtdb.Stats{}, err
	}
	inv := c.Inventory()
	tpl := inv.Template(inv.Templates()[0])
	for i := 0; i < workers; i++ {
		org := fmt.Sprintf("org%d", i%8)
		c.Go(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
			for p.Now() < horizon {
				res := c.Director().DeployVApp(p, org, tpl, 1, false)
				if res.VApp != nil && inv.VApp(res.VApp.ID) != nil {
					c.Director().DeleteVApp(p, res.VApp, org)
				}
				p.Sleep(0.2)
			}
		})
	}
	c.Run(horizon)
	warmup := horizon / 10
	recs := analysis.FilterTime(c.Records(), warmup, horizon)
	deploys := analysis.FilterOK(analysis.FilterKind(recs, ops.KindDeploy.String()))
	perHour := float64(len(deploys)) / (horizon - warmup) * Hour
	lat := analysis.LatencySample(deploys, "")
	st, _ := c.Manager().WALStats()
	return perHour, lat.Mean(), st, nil
}

// Render writes the batching table.
func (r *E13Result) Render(w io.Writer) error {
	t := report.NewTable("E13: DB group-commit window vs provisioning throughput",
		"window s", "deploys/h", "mean lat s", "commits", "flushes", "group size", "commit lat s")
	for _, pt := range r.Points {
		t.AddRow(pt.WindowS, pt.LinkedPerHour, pt.MeanLatS,
			pt.DB.Commits, pt.DB.Flushes, pt.DB.MeanGroupSize, pt.DB.MeanCommitLat)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E14 — host evacuation (enter maintenance mode) under cloud load. The
// evacuation is a train of live migrations that competes with the
// self-service stream, so maintenance windows stretch exactly when the
// cloud is busiest.

// E14Params configures the maintenance experiment.
type E14Params struct {
	Seed         int64
	HostVMs      int       // VMs resident on the host entering maintenance, default 12
	RatesPerHour []float64 // background deploy load levels, default {0, 400, 1600}
	HorizonS     float64   // default 30 min (maintenance starts at 1/3)
}

// E14Point is one load level's evacuation outcome.
type E14Point struct {
	RatePerHour float64
	EvacuationS float64
	Migrations  int
	DeploysDone int
}

// E14Result holds the experiment.
type E14Result struct{ Points []E14Point }

// RunE14 measures evacuation time of a loaded host at each background
// provisioning rate.
func RunE14(p E14Params) (*E14Result, error) {
	if p.HostVMs == 0 {
		p.HostVMs = 12
	}
	if len(p.RatesPerHour) == 0 {
		p.RatesPerHour = []float64{0, 2000, 6000}
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	res := &E14Result{}
	for _, rate := range p.RatesPerHour {
		rate := rate
		cfg := DefaultConfig(p.Seed)
		cfg.Director.RebalanceThreshold = 0
		// Paper-era manager so that load actually contends.
		cfg.Mgmt.Threads = 4
		cfg.Mgmt.DBConns = 2
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		inv := c.Inventory()
		tpl := inv.Template(inv.Templates()[0])
		target := inv.Host(inv.Hosts()[0])

		// Pre-populate the target host.
		c.Go("prep", func(pp *sim.Proc) {
			for i := 0; i < p.HostVMs; i++ {
				ds := inv.Datastore(inv.Datastores()[i%len(inv.Datastores())])
				vm, task := c.Manager().DeployVM(pp, fmt.Sprintf("res%d", i), tpl, target, ds, ops.LinkedClone, mgmt.ReqCtx{Org: "resident"})
				if task.Err != nil {
					continue
				}
				c.Manager().PowerOn(pp, vm, mgmt.ReqCtx{Org: "resident"})
			}
		})
		c.Run(p.HorizonS / 100)

		if rate > 0 {
			// Background open-loop load for the rest of the run.
			cl, err := attachOpenLoop(c, p.Seed, rate, p.HorizonS, 600)
			if err != nil {
				return nil, err
			}
			_ = cl
		}
		var evac *mgmt.Task
		c.Go("admin", func(ap *sim.Proc) {
			ap.Sleep(p.HorizonS / 3)
			evac = c.Manager().EnterMaintenance(ap, target, mgmt.ReqCtx{Org: "admin"})
		})
		c.Run(p.HorizonS * 4) // let the evacuation finish even under load
		if evac == nil || evac.Err != nil {
			return nil, fmt.Errorf("E14 rate %.0f: evacuation failed: %v", rate, taskErr(evac))
		}
		migs := 0
		for _, r := range c.Records() {
			if r.Kind == ops.KindMigrate.String() && r.Org == "admin" && r.Err == "" {
				migs++
			}
		}
		deploys := analysis.FilterOK(analysis.FilterKind(c.Records(), ops.KindDeploy.String()))
		res.Points = append(res.Points, E14Point{
			RatePerHour: rate,
			EvacuationS: evac.Latency(),
			Migrations:  migs,
			DeploysDone: len(deploys),
		})
	}
	return res, nil
}

func taskErr(t *mgmt.Task) error {
	if t == nil {
		return fmt.Errorf("no task")
	}
	return t.Err
}

// attachOpenLoop adds a Poisson single-VM deploy stream to an existing
// cloud (same semantics as openLoopCloud, but composable).
func attachOpenLoop(c *Cloud, seed int64, ratePerHour, horizon, lifetimeS float64) (*Cloud, error) {
	inv := c.Inventory()
	stream := rng.Derive(seed, "e14-load")
	orgZipf := rng.NewZipf(stream, 8, 1.2)
	c.Go("bg-arrivals", func(p *sim.Proc) {
		n := 0
		for {
			p.Sleep(stream.Exponential(Hour / ratePerHour))
			if p.Now() >= horizon {
				return
			}
			n++
			org := fmt.Sprintf("org%d", orgZipf.Draw())
			tpl := inv.Template(inv.Templates()[stream.Intn(len(inv.Templates()))])
			c.Go(fmt.Sprintf("bg%d", n), func(rp *sim.Proc) {
				res := c.Director().DeployVApp(rp, org, tpl, 1, false)
				if res.VApp == nil || inv.VApp(res.VApp.ID) == nil {
					return
				}
				rp.Sleep(lifetimeS)
				if inv.VApp(res.VApp.ID) != nil {
					c.Director().DeleteVApp(rp, res.VApp, org)
				}
			})
		}
	})
	return c, nil
}

// Render writes the evacuation table.
func (r *E14Result) Render(w io.Writer) error {
	t := report.NewTable("E14: host evacuation time vs background provisioning load",
		"bg req/h", "evacuation s", "migrations", "bg deploys done")
	for _, pt := range r.Points {
		t.AddRow(pt.RatePerHour, pt.EvacuationS, pt.Migrations, pt.DeploysDone)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E15 — trace replay what-if: record a busy self-service day once, then
// replay it against alternative control-plane configurations and compare
// what users would have experienced.

// E15Params configures the replay comparison.
type E15Params struct {
	Seed     int64
	RecordS  float64 // recording horizon, default 2 h
	Cells    []int   // configurations to replay against, default {1, 4}
	HorizonS float64 // replay horizon, default RecordS * 1.5
}

// E15Point is one configuration's replayed experience.
type E15Point struct {
	Cells        int
	Issued       int64
	DeployMeanS  float64
	DeployP95S   float64
	DeployQueueS float64 // mean queue component
}

// E15Result holds the comparison.
type E15Result struct {
	Recorded int
	Points   []E15Point
}

// RunE15 records a high-rate CloudA variant and replays it against each
// cell count with deliberately small cells.
func RunE15(p E15Params) (*E15Result, error) {
	if p.RecordS == 0 {
		p.RecordS = 2 * Hour
	}
	if len(p.Cells) == 0 {
		p.Cells = []int{1, 4}
	}
	if p.HorizonS == 0 {
		p.HorizonS = p.RecordS * 1.5
	}

	// Record once.
	recCfg := DefaultConfig(p.Seed)
	recCfg.Director.RebalanceThreshold = 0
	rc, err := New(recCfg)
	if err != nil {
		return nil, err
	}
	pr := workload.CloudA()
	pr.BaseRatePerHour = 2500 // a very busy day — enough to saturate one small cell
	pr.DiurnalAmplitude = 0   // flat, so short recordings carry the full rate
	pr.LifetimeMeanS = 900
	if _, err := rc.RunProfile(pr, p.RecordS); err != nil {
		return nil, err
	}
	recorded := rc.Records()
	res := &E15Result{Recorded: len(recorded)}

	for _, cells := range p.Cells {
		cfg := DefaultConfig(p.Seed + 1)
		cfg.Director.Cells = cells
		cfg.Director.CellThreads = 2 // small cells so the tier matters
		cfg.Director.RebalanceThreshold = 0
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		rp, err := workload.NewReplayer(c.Env(), c.Director(), recorded)
		if err != nil {
			return nil, err
		}
		rp.Start()
		c.Run(p.HorizonS)
		deploys := analysis.FilterOK(analysis.FilterKind(c.Records(), ops.KindDeploy.String()))
		lat := analysis.LatencySample(deploys, "")
		bd, _ := analysis.MeanBreakdown(deploys, "")
		res.Points = append(res.Points, E15Point{
			Cells:        cells,
			Issued:       rp.Stats().Issued,
			DeployMeanS:  lat.Mean(),
			DeployP95S:   lat.Percentile(95),
			DeployQueueS: bd.Queue,
		})
	}
	return res, nil
}

// Render writes the what-if table.
func (r *E15Result) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("E15: replaying a recorded day (%d ops) against alternative cell counts", r.Recorded),
		"cells", "ops issued", "deploy mean s", "deploy p95 s", "mean queue s")
	for _, pt := range r.Points {
		t.AddRow(pt.Cells, pt.Issued, pt.DeployMeanS, pt.DeployP95S, pt.DeployQueueS)
	}
	return t.Render(w)
}
