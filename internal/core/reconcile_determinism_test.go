package core

// Regression tests for the reconciliation-plane determinism contract:
// with the plane disabled — nil config or a config with no controllers —
// every artifact must be bit-for-bit what it was before the subsystem
// existed; with it enabled, runs must be exactly reproducible and the
// E20 artifact identical across sweep worker counts.

import (
	"bytes"
	"strings"
	"testing"

	"cloudmcp/internal/reconcile"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

// A reconcile config with no controllers must produce a trace
// byte-identical to a run with no reconcile config at all: the plane
// constructs, registers nothing, and starts nothing.
func TestReconcileDisabledIsIdentity(t *testing.T) {
	run := func(rc *reconcile.Config) []byte {
		cfg := DefaultConfig(3)
		cfg.Reconcile = rc
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunProfile(workload.CloudA(), 2*Hour); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, c.Records()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run(nil)
	empty := run(&reconcile.Config{})
	if !bytes.Equal(plain, empty) {
		t.Fatal("controller-less reconcile config perturbed the trace")
	}
}

// With controllers actually reconciling, two identical runs still agree
// exactly — both the operation trace and the per-controller stats.
func TestReconcileEnabledRunsAreDeterministic(t *testing.T) {
	run := func() ([]byte, []reconcile.Stats) {
		cfg := DefaultConfig(3)
		rc := reconcile.DefaultConfig()
		rc.Controllers = reconcile.ControllerNames()
		rc.IntervalS = 600
		rc.DriftRate = 0.1
		cfg.Reconcile = &rc
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunProfile(workload.CloudA(), Hour); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, c.Records()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), c.ReconcileStats()
	}
	aTrace, aStats := run()
	bTrace, bStats := run()
	if !bytes.Equal(aTrace, bTrace) {
		t.Fatal("reconcile-enabled runs diverged")
	}
	if len(aStats) != len(bStats) {
		t.Fatalf("stats length diverged: %d vs %d", len(aStats), len(bStats))
	}
	var runs int64
	for i := range aStats {
		if aStats[i] != bStats[i] {
			t.Fatalf("controller %q stats diverged:\n%+v\n%+v", aStats[i].Controller, aStats[i], bStats[i])
		}
		runs += aStats[i].Runs
	}
	if runs == 0 {
		t.Fatal("no reconciliations ran over an hour of CloudA; the test exercised nothing")
	}
}

func e20Quick(workers int) E20Params {
	return E20Params{
		Seed: 1, IntervalsS: []float64{60, 30}, Depths: []int{2},
		Shards: []int{1, 2}, Clients: 8, HorizonS: 120,
		StormVMs: 16, FillVMs: 20, Workers: workers,
	}
}

func renderE20(t *testing.T, p E20Params) string {
	t.Helper()
	r, err := RunE20(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestE20ArtifactIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := renderE20(t, e20Quick(1))
	parallel := renderE20(t, e20Quick(8))
	if serial != parallel {
		t.Fatalf("E20 artifact differs between 1 and 8 sweep workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	for _, want := range []string{
		"E20: foreground goodput vs reconcile interval x depth x shards",
		"E20: drift storm after a host failure",
		"E20: thundering rebalance on datastore fill",
		"reconciliation plane",
	} {
		if !strings.Contains(serial, want) {
			t.Fatalf("artifact missing %q:\n%s", want, serial)
		}
	}
}
