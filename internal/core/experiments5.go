package core

// Extension experiment E17: control-plane goodput under injected
// faults. The predecessor work (and the reliability literature around
// it) argues that failures and retries are first-class management load;
// E17 measures it directly. A closed-loop deploy workload runs against
// clouds with increasing transient-fault rates (package faults) and the
// manager's retry policy turns every injected failure into repeated
// admission/thread/DB/lock work — so goodput (successful deploys/hour)
// falls faster than the fault rate alone explains, and tail latency
// grows with retry backoff. A second leg re-runs the E16 restart storm
// against an already-faulty control plane: recovery time stretches
// exactly when failures are already rampant.
//
// E17 is an opt-in extension: it is reachable through RunExperiment /
// mcpbench -only E17 / mcpbench -faults, but not part of the default
// E1..E16 suite, so pre-faults artifacts stay byte-identical.

import (
	"fmt"
	"io"

	"cloudmcp/internal/faults"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/report"
	"cloudmcp/internal/sweep"
)

// E17Params configures the goodput-under-faults experiment.
type E17Params struct {
	Seed       int64
	FaultRates []float64 // injected fault-rate grid, default {0, 0.05, 0.1, 0.2}
	Clients    int       // closed-loop workers, default 32 (the E6 crossover)
	HorizonS   float64   // default 30 min
	WarmupS    float64   // default HorizonS/10
	Workers    int       // sweep pool bound (0 = GOMAXPROCS)

	StormRatePerHour float64 // background load for the storm leg, default 2000
}

// E17Mode is one provisioning mode's outcome at one fault rate.
type E17Mode struct {
	GoodPerHour   float64 // successful deploys/hour in the window
	P99S          float64 // deploy p99 latency in the window
	Amplification float64 // attempts per task, whole run
	GiveUps       int64   // tasks abandoned by the retry policy, whole run
}

// E17Point is one fault rate's closed-loop outcome, full vs linked.
type E17Point struct {
	Rate         float64
	Full, Linked E17Mode

	// goodput holds the linked-clone per-kind rows; rendered for the
	// highest swept rate.
	goodput []mgmt.GoodputRow

	// Storm is the E16 restart-storm leg at this fault rate.
	Storm E16Point
}

// E17Result holds the sweep.
type E17Result struct {
	Points           []E17Point
	StormRatePerHour float64
}

// RunE17 sweeps the fault-rate grid; each point runs the closed loop in
// both provisioning modes plus one restart storm, all on clouds with
// fault injection and the default retry policy enabled.
func RunE17(p E17Params) (*E17Result, error) {
	if len(p.FaultRates) == 0 {
		p.FaultRates = []float64{0, 0.05, 0.1, 0.2}
	}
	if p.Clients == 0 {
		p.Clients = 32
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	if p.WarmupS == 0 {
		p.WarmupS = p.HorizonS / 10
	}
	if p.StormRatePerHour == 0 {
		p.StormRatePerHour = 2000
	}
	mode := func(r ClosedLoopResult) E17Mode {
		m := E17Mode{GoodPerHour: r.DeploysPerHour, P99S: r.P99LatencyS, GiveUps: r.Retry.GiveUps}
		var tasks, attempts int64
		for _, row := range r.Goodput {
			tasks += row.Tasks
			attempts += row.Attempts
		}
		if tasks > 0 {
			m.Amplification = float64(attempts) / float64(tasks)
		}
		return m
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(p.FaultRates),
		func(sp sweep.Point) (E17Point, error) {
			rate := p.FaultRates[sp.Index]
			fc := faults.Preset(rate)
			pt := E17Point{Rate: rate}
			for _, fast := range []bool{false, true} {
				cfg := DefaultConfig(p.Seed)
				cfg.Director.FastProvisioning = fast
				cfg.Director.RebalanceThreshold = 0 // isolate provisioning
				cfg.Faults = &fc
				r, err := RunClosedLoop(cfg, p.Clients, p.HorizonS, p.WarmupS)
				if err != nil {
					return pt, fmt.Errorf("E17 rate %.2f fast=%v: %w", rate, fast, err)
				}
				if fast {
					pt.Linked = mode(r)
					pt.goodput = r.Goodput
				} else {
					pt.Full = mode(r)
				}
			}
			storm, err := RunE16(E16Params{
				Seed:         p.Seed,
				RatesPerHour: []float64{p.StormRatePerHour},
				HorizonS:     p.HorizonS,
				Faults:       &fc,
			})
			if err != nil {
				return pt, fmt.Errorf("E17 rate %.2f storm: %w", rate, err)
			}
			pt.Storm = storm.Points[0]
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	return &E17Result{Points: points, StormRatePerHour: p.StormRatePerHour}, nil
}

// Render writes the goodput table, the per-kind goodput breakdown at the
// highest fault rate, and the storm table.
func (r *E17Result) Render(w io.Writer) error {
	t := report.NewTable("E17: closed-loop deploy goodput vs injected fault rate",
		"fault rate", "full good/h", "full p99 s", "full amp", "linked good/h", "linked p99 s", "linked amp", "giveups")
	for _, pt := range r.Points {
		t.AddRow(pt.Rate, pt.Full.GoodPerHour, pt.Full.P99S, pt.Full.Amplification,
			pt.Linked.GoodPerHour, pt.Linked.P99S, pt.Linked.Amplification,
			pt.Full.GiveUps+pt.Linked.GiveUps)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if n := len(r.Points); n > 0 {
		last := r.Points[n-1]
		if gt := report.GoodputTable(goodputRows(last.goodput)); gt != nil {
			gt.Title = fmt.Sprintf("E17: linked-clone goodput by operation at fault rate %.2f", last.Rate)
			if err := gt.Render(w); err != nil {
				return err
			}
		}
	}
	st := report.NewTable(
		fmt.Sprintf("E17: HA restart storm on a faulty control plane (%.0f req/h)", r.StormRatePerHour),
		"fault rate", "recovery s", "restarted", "unplaced", "bg deploys done")
	for _, pt := range r.Points {
		st.AddRow(pt.Rate, pt.Storm.RecoveryS, pt.Storm.Restarted, pt.Storm.Unplaced, pt.Storm.DeploysDone)
	}
	return st.Render(w)
}

// goodputRows adapts the manager's per-kind goodput accounting to the
// report renderer's layer-agnostic rows.
func goodputRows(rows []mgmt.GoodputRow) []report.GoodputRow {
	out := make([]report.GoodputRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, report.GoodputRow{
			Kind:     r.Kind.String(),
			Tasks:    r.Tasks,
			OK:       r.OK,
			Attempts: r.Attempts,
			GiveUps:  r.GiveUps,
		})
	}
	return out
}
