package core

import (
	"strings"
	"testing"

	"cloudmcp/internal/drs"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/workload"
)

// drsConfigForTest is an aggressive balancer so short runs see passes.
func drsConfigForTest() drs.Config {
	return drs.Config{Threshold: 0.05, CheckS: 300, Batch: 8}
}

func TestNewBuildsTopology(t *testing.T) {
	cfg := DefaultConfig(1)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := c.Inventory().Count()
	if counts.Hosts != cfg.Topology.Hosts {
		t.Fatalf("hosts = %d", counts.Hosts)
	}
	if counts.Datastores != cfg.Topology.Datastores {
		t.Fatalf("datastores = %d", counts.Datastores)
	}
	if counts.Templates != cfg.Topology.Templates {
		t.Fatalf("templates = %d", counts.Templates)
	}
	if err := c.Inventory().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadTopologyRejected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Topology.Hosts = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected topology error")
	}
	cfg = DefaultConfig(1)
	cfg.Topology.Templates = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("expected template error")
	}
}

func TestRunProfileCollectsTrace(t *testing.T) {
	c, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.RunProfile(workload.CloudA(), 2*Hour)
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	if len(c.Records()) == 0 {
		t.Fatal("no records")
	}
	c.ResetTrace()
	if len(c.Records()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecordDisabled(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Record = false
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunProfile(workload.CloudA(), Hour); err != nil {
		t.Fatal(err)
	}
	if c.Records() != nil {
		t.Fatal("records collected while disabled")
	}
}

func TestSameSeedSameTrace(t *testing.T) {
	run := func() (int, float64) {
		c, err := New(DefaultConfig(42))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunProfile(workload.CloudA(), 2*Hour); err != nil {
			t.Fatal(err)
		}
		recs := c.Records()
		last := 0.0
		if len(recs) > 0 {
			last = recs[len(recs)-1].End
		}
		return len(recs), last
	}
	n1, l1 := run()
	n2, l2 := run()
	if n1 != n2 || l1 != l2 {
		t.Fatalf("nondeterministic: %d/%v vs %d/%v", n1, l1, n2, l2)
	}
}

func TestE1MixShapes(t *testing.T) {
	r, err := RunE1(E1Params{Seed: 5, HorizonS: 3 * Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profiles) != 3 {
		t.Fatalf("profiles = %v", r.Profiles)
	}
	// CloudA must be far busier than ClassicDC.
	if r.Total["CloudA"] < 5*r.Total["ClassicDC"] {
		t.Fatalf("CloudA %d not ≫ ClassicDC %d", r.Total["CloudA"], r.Total["ClassicDC"])
	}
	out := r.Table().String()
	if !strings.Contains(out, "deploy") || !strings.Contains(out, "total") {
		t.Fatalf("table missing rows:\n%s", out)
	}
}

func TestE2Burstiness(t *testing.T) {
	r, err := RunE2(E2Params{Seed: 5, HorizonS: 6 * Hour, BinS: 600})
	if err != nil {
		t.Fatal(err)
	}
	var cloudB *E2Profile
	for i := range r.Profiles {
		if r.Profiles[i].Name == "CloudB" {
			cloudB = &r.Profiles[i]
		}
	}
	if cloudB == nil {
		t.Fatal("CloudB missing")
	}
	// Session batches make CloudB strongly bursty at 10-minute bins.
	if cloudB.Burstiness.PeakToMean < 2 {
		t.Fatalf("CloudB peak:mean = %v, want bursty", cloudB.Burstiness.PeakToMean)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "burstiness") {
		t.Fatal("render missing burstiness table")
	}
}

func TestE3CDFMonotone(t *testing.T) {
	r, err := RunE3(E3Params{Seed: 5, HorizonS: 4 * Hour, Points: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Profiles {
		for i := 1; i < len(p.CDF); i++ {
			if p.CDF[i].X < p.CDF[i-1].X {
				t.Fatalf("%s CDF not monotone", p.Name)
			}
		}
	}
}

func TestE4LinkedShiftsCostToControlPlane(t *testing.T) {
	r, err := RunE4(E4Params{Seed: 5, HorizonS: 2 * Hour})
	if err != nil {
		t.Fatal(err)
	}
	fullShare, ok1 := r.DeployControlShare("full")
	linkedShare, ok2 := r.DeployControlShare("linked")
	if !ok1 || !ok2 {
		t.Fatalf("missing deploy rows (ok=%v,%v)", ok1, ok2)
	}
	// The paper's central claim in miniature: control-plane share of
	// deploy latency is small for full clones and dominant for linked.
	if fullShare > 0.5 {
		t.Fatalf("full-clone control share = %v, want < 0.5", fullShare)
	}
	if linkedShare < 0.5 {
		t.Fatalf("linked-clone control share = %v, want > 0.5", linkedShare)
	}
}

func TestE5LatencyScalesWithSizeOnlyForFull(t *testing.T) {
	r, err := RunE5(E5Params{Seed: 5, SizesGB: []float64{2, 32}})
	if err != nil {
		t.Fatal(err)
	}
	small, big := r.Points[0], r.Points[1]
	if big.FullS < 4*small.FullS {
		t.Fatalf("full: %v -> %v, want ~16x growth", small.FullS, big.FullS)
	}
	if big.LinkedS > 2*small.LinkedS {
		t.Fatalf("linked: %v -> %v, want ~flat", small.LinkedS, big.LinkedS)
	}
	if big.FullS < 5*big.LinkedS {
		t.Fatalf("at 32GB full %v not ≫ linked %v", big.FullS, big.LinkedS)
	}
}

func TestE6LinkedScalesPastFull(t *testing.T) {
	r, err := RunE6(E6Params{Seed: 5, Concurrency: []int{1, 16}, HorizonS: 900})
	if err != nil {
		t.Fatal(err)
	}
	p1, p16 := r.Points[0], r.Points[1]
	if p16.LinkedPerHour <= p16.FullPerHour {
		t.Fatalf("at 16 workers linked %v not > full %v", p16.LinkedPerHour, p16.FullPerHour)
	}
	if p16.LinkedPerHour <= 2*p1.LinkedPerHour {
		t.Fatalf("linked did not scale: %v -> %v", p1.LinkedPerHour, p16.LinkedPerHour)
	}
	if r.PeakThroughput(true) <= r.PeakThroughput(false) {
		t.Fatal("peak linked throughput must exceed full")
	}
}

func TestE7QueueShareGrowsWithLoad(t *testing.T) {
	r, err := RunE7(E7Params{Seed: 5, RatesPerHour: []float64{500, 5000}, HorizonS: 1200})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.Points[0], r.Points[1]
	loQ := lo.Breakdown.Queue
	hiQ := hi.Breakdown.Queue
	if hiQ <= loQ {
		t.Fatalf("queue time did not grow with load: %v -> %v", loQ, hiQ)
	}
	if hi.MeanLatS <= lo.MeanLatS {
		t.Fatalf("latency did not grow with load: %v -> %v", lo.MeanLatS, hi.MeanLatS)
	}
}

func TestE8ReconfigPressureGrowsWithRate(t *testing.T) {
	r, err := RunE8(E8Params{Seed: 5, RatesPerHour: []float64{60, 480}, HorizonS: 1800, MaxChainLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.Points[0], r.Points[1]
	if hi.ShadowsPerHour <= lo.ShadowsPerHour {
		t.Fatalf("shadows/h did not grow: %v -> %v", lo.ShadowsPerHour, hi.ShadowsPerHour)
	}
	if hi.RebalStartsPerH == 0 || hi.MovesPerHour == 0 {
		t.Fatalf("no rebalance activity at high rate: %+v", hi)
	}
	// At high rate the rebalancer lags the provisioning stream: the
	// residual imbalance grows with rate even while rebalancing runs.
	if hi.EndImbalance <= lo.EndImbalance {
		t.Fatalf("residual imbalance did not grow: %v -> %v", lo.EndImbalance, hi.EndImbalance)
	}
}

func TestE9UtilizationGrowsWithLoad(t *testing.T) {
	r, err := RunE9(E9Params{Seed: 5, RatesPerHour: []float64{500, 5000}, HorizonS: 1200})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.Points[0], r.Points[1]
	if hi.Threads.Utilization <= lo.Threads.Utilization {
		t.Fatalf("thread util did not grow: %v -> %v", lo.Threads.Utilization, hi.Threads.Utilization)
	}
	if hi.DB.Utilization <= lo.DB.Utilization {
		t.Fatalf("db util did not grow: %v -> %v", lo.DB.Utilization, hi.DB.Utilization)
	}
}

func TestE10MoreCellsMoreThroughput(t *testing.T) {
	r, err := RunE10(E10Params{Seed: 5, Cells: []int{1, 4}, Workers: 48, HorizonS: 900})
	if err != nil {
		t.Fatal(err)
	}
	if r.Points[1].LinkedPerHour <= r.Points[0].LinkedPerHour {
		t.Fatalf("cells 4 (%v) not > cells 1 (%v)",
			r.Points[1].LinkedPerHour, r.Points[0].LinkedPerHour)
	}
}

func TestE11FinerLocksMoreThroughput(t *testing.T) {
	r, err := RunE11(E11Params{Seed: 5, Workers: 32, HorizonS: 900})
	if err != nil {
		t.Fatal(err)
	}
	byG := map[string]float64{}
	for _, pt := range r.Points {
		byG[pt.Granularity] = pt.LinkedPerHour
	}
	if byG["entity"] <= byG["coarse"] {
		t.Fatalf("entity (%v) not > coarse (%v)", byG["entity"], byG["coarse"])
	}
	if byG["host"] < byG["coarse"] {
		t.Fatalf("host (%v) below coarse (%v)", byG["host"], byG["coarse"])
	}
}

func TestE12PublishAmplifiedUnderFullLoadOnly(t *testing.T) {
	r, err := RunE12(E12Params{Seed: 5, SizesGB: []float64{8}, LoadWorkers: 32, HorizonS: 900})
	if err != nil {
		t.Fatal(err)
	}
	pt := r.Points[0]
	if pt.IdleS <= 0 || pt.FullLoadS <= 0 || pt.LinkedLoadS <= 0 {
		t.Fatalf("missing publishes: %+v", pt)
	}
	// Full-clone provisioning load contends on datastore bandwidth and
	// visibly slows the publish; linked-clone load barely touches it.
	if pt.FullLoadS < 1.5*pt.IdleS {
		t.Fatalf("full-load publish %v not ≫ idle %v", pt.FullLoadS, pt.IdleS)
	}
	if pt.LinkedLoadS >= pt.FullLoadS {
		t.Fatalf("linked-load publish %v not < full-load %v", pt.LinkedLoadS, pt.FullLoadS)
	}
	if pt.FullDeploys == 0 || pt.LinkDeploys == 0 {
		t.Fatalf("no background deploys: %+v", pt)
	}
}

func TestExperimentRendersNonEmpty(t *testing.T) {
	// Every Render must produce output without error; cover the ones not
	// rendered elsewhere in this file.
	r5, err := RunE5(E5Params{Seed: 9, SizesGB: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	r12, err := RunE12(E12Params{Seed: 9, SizesGB: []float64{4}, HorizonS: 600})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r5.Render(&sb); err != nil || sb.Len() == 0 {
		t.Fatalf("E5 render: %v", err)
	}
	sb.Reset()
	if err := r12.Render(&sb); err != nil || sb.Len() == 0 {
		t.Fatalf("E12 render: %v", err)
	}
}

func TestE13BatchingRelievesDB(t *testing.T) {
	r, err := RunE13(E13Params{Seed: 5, WindowsS: []float64{0, 0.1}, Workers: 32, HorizonS: 600})
	if err != nil {
		t.Fatal(err)
	}
	noBatch, batched := r.Points[0], r.Points[1]
	if batched.LinkedPerHour <= noBatch.LinkedPerHour {
		t.Fatalf("batching did not raise throughput: %v -> %v",
			noBatch.LinkedPerHour, batched.LinkedPerHour)
	}
	if batched.DB.MeanGroupSize <= 1.1 {
		t.Fatalf("batched group size = %v", batched.DB.MeanGroupSize)
	}
	if noBatch.DB.MeanGroupSize > 1.01 {
		t.Fatalf("unbatched group size = %v, want 1", noBatch.DB.MeanGroupSize)
	}
	if noBatch.DB.Flushes < batched.DB.Flushes {
		t.Fatalf("flushes: %d unbatched < %d batched", noBatch.DB.Flushes, batched.DB.Flushes)
	}
}

func TestE14EvacuationStretchesUnderLoad(t *testing.T) {
	r, err := RunE14(E14Params{Seed: 5, HostVMs: 8, RatesPerHour: []float64{0, 6000}, HorizonS: 600})
	if err != nil {
		t.Fatal(err)
	}
	idle, busy := r.Points[0], r.Points[1]
	if idle.Migrations != 8 || busy.Migrations != 8 {
		t.Fatalf("migrations = %d/%d, want 8", idle.Migrations, busy.Migrations)
	}
	if busy.EvacuationS <= idle.EvacuationS {
		t.Fatalf("evacuation did not stretch: idle %v vs busy %v",
			idle.EvacuationS, busy.EvacuationS)
	}
	if busy.DeploysDone == 0 {
		t.Fatal("no background deploys")
	}
}

func TestE15FewerCellsHurtReplayedUsers(t *testing.T) {
	r, err := RunE15(E15Params{Seed: 5, RecordS: 1200, Cells: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Recorded == 0 {
		t.Fatal("nothing recorded")
	}
	one, four := r.Points[0], r.Points[1]
	// Issued counts may differ slightly: under-provisioned replays delay
	// deploys, so some VM-scoped records find no live target. But both
	// replays dispatch the same order of magnitude of work...
	if one.Issued*2 < four.Issued {
		t.Fatalf("replay issued wildly different op counts: %d vs %d", one.Issued, four.Issued)
	}
	// ...and the under-provisioned control plane visibly hurts users.
	if one.DeployP95S <= 1.5*four.DeployP95S {
		t.Fatalf("1-cell p95 %v not ≫ 4-cell %v", one.DeployP95S, four.DeployP95S)
	}
	if one.DeployQueueS <= four.DeployQueueS {
		t.Fatalf("1-cell queue %v not > 4-cell %v", one.DeployQueueS, four.DeployQueueS)
	}
}

func TestRunAllQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still takes seconds")
	}
	var sb strings.Builder
	if err := RunAll(&sb, 3, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{"E1:", "E4:", "E6:", "E8:", "E11:", "E13:", "E14:", "E15:"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("RunAll output missing %s", marker)
		}
	}
}

func TestE16RestartStormStretchesUnderLoad(t *testing.T) {
	r, err := RunE16(E16Params{Seed: 5, HostVMs: 8, RatesPerHour: []float64{0, 6000}, HorizonS: 600})
	if err != nil {
		t.Fatal(err)
	}
	idle, busy := r.Points[0], r.Points[1]
	if idle.Restarted != 8 || busy.Restarted != 8 {
		t.Fatalf("restarted = %d/%d, want 8", idle.Restarted, busy.Restarted)
	}
	if idle.Unplaced != 0 || busy.Unplaced != 0 {
		t.Fatalf("unplaced = %d/%d", idle.Unplaced, busy.Unplaced)
	}
	if busy.RecoveryS <= idle.RecoveryS {
		t.Fatalf("recovery did not stretch: idle %v vs busy %v", idle.RecoveryS, busy.RecoveryS)
	}
}

func TestBottleneckReport(t *testing.T) {
	c, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunProfile(workload.CloudA(), 2*Hour); err != nil {
		t.Fatal(err)
	}
	report := c.BottleneckReport()
	if len(report) < 5 {
		t.Fatalf("report = %+v", report)
	}
	for i := 1; i < len(report); i++ {
		if report[i].Utilization > report[i-1].Utilization {
			t.Fatal("report not sorted by utilization")
		}
	}
	seen := map[string]bool{}
	for _, r := range report {
		seen[r.Stage] = true
	}
	if !seen["mgmt.threads"] || !seen["cell0"] {
		t.Fatalf("missing stages: %+v", report)
	}
}

func TestDRSIntegration(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.DRS = drsConfigForTest()
	cfg.Director.RebalanceThreshold = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inventory()
	tpl := inv.Template(inv.Templates()[0])
	hot := inv.Host(inv.Hosts()[0])
	c.Go("skew", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			vm, task := c.Manager().DeployVM(p, "vm", tpl, hot, inv.Datastore(inv.Datastores()[0]), ops.LinkedClone, mgmt.ReqCtx{Org: "o"})
			if task.Err == nil {
				c.Manager().PowerOn(p, vm, mgmt.ReqCtx{Org: "o"})
			}
		}
	})
	c.Run(2 * Hour)
	st := c.DRS().Stats()
	if st.Moves == 0 {
		t.Fatalf("DRS never acted: %+v (spread %v)", st, c.DRS().Spread())
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadConfigDRS(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"drs": {"threshold": 0.1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DRS.Threshold != 0.1 || cfg.DRS.CheckS == 0 || cfg.DRS.Batch == 0 {
		t.Fatalf("drs = %+v", cfg.DRS)
	}
}
