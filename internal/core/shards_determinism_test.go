package core

// Regression tests for the sharded-plane determinism contract: E18's
// artifact must be byte-identical for any sweep worker count (each grid
// point builds its own cloud on streams derived from the master seed),
// and a multi-shard run must itself be reproducible run-to-run.

import (
	"strings"
	"testing"
)

func e18Quick(workers int) E18Params {
	return E18Params{Seed: 1, ShardCounts: []int{1, 2}, Clients: 48, HorizonS: 120, Workers: workers}
}

func renderE18(t *testing.T, p E18Params) string {
	t.Helper()
	r, err := RunE18(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestE18ArtifactIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := renderE18(t, e18Quick(1))
	parallel := renderE18(t, e18Quick(8))
	if serial != parallel {
		t.Fatalf("E18 artifact differs between 1 and 8 sweep workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	for _, want := range []string{
		"E18: linked-clone provisioning vs management shards",
		"E18: full-clone provisioning vs management shards",
		"E18: cross-shard coordination under a migration storm (shared DB)",
	} {
		if !strings.Contains(serial, want) {
			t.Fatalf("artifact missing %q:\n%s", want, serial)
		}
	}
}

// A sharded cloud must produce cross-shard work in the storm leg and
// none at one shard — the coordinator only fires across a boundary.
func TestE18CrossShardAccounting(t *testing.T) {
	r, err := RunE18(e18Quick(0))
	if err != nil {
		t.Fatal(err)
	}
	one, two := r.Points[0], r.Points[1]
	if one.Shards != 1 || two.Shards != 2 {
		t.Fatalf("grid order: %d, %d", one.Shards, two.Shards)
	}
	if one.CrossOps != 0 || one.CoordS != 0 {
		t.Fatalf("1-shard plane coordinated: %+v", one)
	}
	if two.Migrations == 0 || two.CrossOps == 0 || two.CoordS <= 0 {
		t.Fatalf("2-shard storm saw no cross-shard work: %+v", two)
	}
	if two.CrossShare <= 0 || two.CrossShare >= 100 {
		t.Fatalf("cross share %.1f%% out of range", two.CrossShare)
	}
}
