package core

// Extension experiment E23: wall-clock cost/benefit of the lane
// kernel. Each cell runs the same deterministic sharded closed loop at
// one (shards × lanes) point and measures how long it took in *wall*
// time, plus a digest of the simulation outcome. The digest column is
// the experiment's safety net: every lane count at a given shard count
// must produce the identical digest, because lanes are an execution
// strategy, not a model change — the determinism tests pin this
// byte-for-byte and E23 re-checks it on the numbers it actually
// measured.
//
// Like E22, E23 exercises the wall clock, so its artifact is *not*
// byte-reproducible and it stays out of the default suite. Cells run
// serially: each one is free to use every core for barrier merges, and
// overlapping cells would measure scheduler noise. On a single-CPU
// host the lanes>1 rows mostly price the barrier machinery (expect
// speedup <= 1); the experiment is still worth running there because
// the digest check and the overhead price are the point — the speedup
// column only becomes informative with real parallelism.

import (
	"fmt"
	"io"
	"time"

	"cloudmcp/internal/report"
)

// E23Params configures the lane-speedup grid.
type E23Params struct {
	Seed     int64
	Shards   []int   // shard grid, default {1, 4}
	Lanes    []int   // lane grid, default {1, 2, 4}; 1 is the baseline row
	Clients  int     // closed-loop workers, default 64
	HorizonS float64 // virtual horizon per cell, default 30 min
	WarmupS  float64 // default HorizonS/10
}

func (p *E23Params) setDefaults() {
	if len(p.Shards) == 0 {
		p.Shards = []int{1, 4}
	}
	if len(p.Lanes) == 0 {
		p.Lanes = []int{1, 2, 4}
	}
	if p.Clients == 0 {
		p.Clients = 64
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	if p.WarmupS == 0 {
		p.WarmupS = p.HorizonS / 10
	}
}

// E23Cell is one (shards, lanes) measurement.
type E23Cell struct {
	Shards  int
	Lanes   int
	WallMS  float64 // wall-clock run time of the cell
	Speedup float64 // lanes=1 wall time at this shard count / this cell's
	Digest  string  // deterministic outcome summary; equal across lanes
	Match   bool    // digest equals the lanes=1 digest at this shard count
}

// E23Result holds the grid in run order.
type E23Result struct {
	Params E23Params
	Cells  []E23Cell
}

// RunE23 measures the lane kernel's wall-clock behavior across the
// (shards × lanes) grid. The first lane count at each shard count is
// forced to 1 so every row has its baseline.
func RunE23(p E23Params) (*E23Result, error) {
	p.setDefaults()
	res := &E23Result{Params: p}
	for _, shards := range p.Shards {
		var baseMS float64
		var baseDigest string
		for i, lanes := range p.Lanes {
			cell, err := runE23Cell(p, shards, lanes)
			if err != nil {
				return nil, fmt.Errorf("E23 shards=%d lanes=%d: %w", shards, lanes, err)
			}
			if i == 0 {
				baseMS, baseDigest = cell.WallMS, cell.Digest
			}
			if cell.WallMS > 0 {
				cell.Speedup = baseMS / cell.WallMS
			}
			cell.Match = cell.Digest == baseDigest
			res.Cells = append(res.Cells, cell)
			if !cell.Match {
				return nil, fmt.Errorf("E23 shards=%d lanes=%d: outcome digest %q differs from lanes=%d digest %q — lane kernel determinism violated",
					shards, lanes, cell.Digest, p.Lanes[0], baseDigest)
			}
		}
	}
	return res, nil
}

// runE23Cell times one closed loop under the given kernel partition.
func runE23Cell(p E23Params, shards, lanes int) (E23Cell, error) {
	cfg := DefaultConfig(p.Seed)
	cfg.Director.FastProvisioning = true
	cfg.Director.RebalanceThreshold = 0
	cfg.Topology.DatastoreMBps = 4000
	cfg.Director.MaxChainLen = 1 << 20
	cfg.Plane.Shards = shards
	if lanes > 1 {
		cfg.Lanes = lanes
	}
	wall0 := time.Now()
	r, err := RunClosedLoop(cfg, p.Clients, p.HorizonS, p.WarmupS)
	if err != nil {
		return E23Cell{}, err
	}
	wallMS := float64(time.Since(wall0)) / float64(time.Millisecond)
	// The digest folds every deterministic outcome the loop reports;
	// wall time stays out of it by construction.
	digest := fmt.Sprintf("deploys=%d errors=%d good/h=%.6f mean=%.6f p95=%.6f p99=%.6f dbutil=%.6f",
		r.Deploys, r.Errors, r.DeploysPerHour, r.MeanLatencyS, r.P95LatencyS, r.P99LatencyS, r.DBUtil)
	return E23Cell{Shards: shards, Lanes: lanes, WallMS: wallMS, Digest: digest}, nil
}

// Render writes the E23 artifact.
func (r *E23Result) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("E23: lane kernel wall-clock grid (%d clients, %.0fs horizon; wall-clock measurement, not byte-reproducible)",
			r.Params.Clients, r.Params.HorizonS),
		"shards", "lanes", "wall ms", "speedup", "outcome")
	for _, c := range r.Cells {
		outcome := "identical"
		if !c.Match {
			outcome = "DIVERGED"
		}
		t.AddRow(c.Shards, c.Lanes, c.WallMS, c.Speedup, outcome)
	}
	return t.Render(w)
}
