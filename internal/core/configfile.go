package core

// JSON scenario files: a stable, human-editable wire format for Config so
// that experiment setups can be checked into a repo and re-run exactly
// (cmd/mcpsim -config scenario.json). The wire format is decoupled from
// the in-memory structs so internal refactors don't break saved
// scenarios; operation names (not enum values) key the cost overrides.

import (
	"encoding/json"
	"fmt"
	"io"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/drs"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/mgmtdb"
	"cloudmcp/internal/netsim"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/plane"
	"cloudmcp/internal/policy"
	"cloudmcp/internal/reconcile"
)

// ConfigFile is the JSON wire form of a Config. Zero-valued fields keep
// the defaults of DefaultConfig(seed).
type ConfigFile struct {
	Seed int64 `json:"seed,omitempty"`

	// Policy names a policy set (internal/policy) for the decision
	// points: placement, DRS move choice, HA failover, retry, admission.
	// Empty keeps "default", which reproduces the hardcoded behavior.
	Policy string `json:"policy,omitempty"`

	// Lanes/LaneWorkers configure the partitioned event kernel (see
	// Config.Lanes); <= 1 keeps the single-heap kernel and identical
	// artifacts.
	Lanes       int `json:"lanes,omitempty"`
	LaneWorkers int `json:"laneWorkers,omitempty"`

	Topology *TopologyFile `json:"topology,omitempty"`
	Mgmt     *MgmtFile     `json:"mgmt,omitempty"`
	Plane    *PlaneFile    `json:"plane,omitempty"`
	Director *DirectorFile `json:"director,omitempty"`
	Storage  *StorageFile  `json:"storage,omitempty"`
	DRS      *DRSFile      `json:"drs,omitempty"`

	// Costs overrides per-operation stage costs by operation name
	// (ops.Kind String() names, e.g. "deploy", "powerOn").
	Costs map[string]CostFile `json:"costs,omitempty"`
	// CostCV overrides the cost model's coefficient of variation
	// (nil keeps the default).
	CostCV *float64 `json:"costCV,omitempty"`

	Record  *bool `json:"record,omitempty"`
	Metrics *bool `json:"metrics,omitempty"`

	Faults *FaultsFile `json:"faults,omitempty"`

	Reconcile *ReconcileFile `json:"reconcile,omitempty"`
}

// ReconcileFile configures the reconciliation plane (internal/reconcile);
// presence enables it. Zero fields keep reconcile.DefaultConfig().
type ReconcileFile struct {
	Controllers  []string                 `json:"controllers,omitempty"`
	IntervalS    float64                  `json:"intervalS,omitempty"`
	Depth        int                      `json:"depth,omitempty"`
	RatePerS     float64                  `json:"ratePerS,omitempty"`
	Burst        float64                  `json:"burst,omitempty"`
	MaxRetries   int                      `json:"maxRetries,omitempty"`
	Backoff      *reconcile.BackoffPolicy `json:"backoff,omitempty"`
	DriftRate    float64                  `json:"driftRate,omitempty"`
	FillFraction float64                  `json:"fillFraction,omitempty"`
}

// FaultsFile configures fault injection (internal/faults) and the
// manager's retry policy. Rate seeds every layer from faults.Preset;
// the per-layer blocks then override whole layers.
type FaultsFile struct {
	Rate    float64       `json:"rate,omitempty"`
	Host    *faults.Layer `json:"host,omitempty"`
	DB      *faults.Layer `json:"db,omitempty"`
	Net     *faults.Layer `json:"net,omitempty"`
	Storage *faults.Layer `json:"storage,omitempty"`
	Retry   *RetryFile    `json:"retry,omitempty"`
}

// RetryFile mirrors mgmt.RetryPolicy; zero fields keep
// mgmt.DefaultRetryPolicy().
type RetryFile struct {
	MaxAttempts  int     `json:"maxAttempts,omitempty"`
	BaseBackoffS float64 `json:"baseBackoffS,omitempty"`
	Multiplier   float64 `json:"multiplier,omitempty"`
	Jitter       float64 `json:"jitter,omitempty"`
	DeadlineS    float64 `json:"deadlineS,omitempty"`
}

// TopologyFile mirrors Topology.
type TopologyFile struct {
	Hosts          int     `json:"hosts,omitempty"`
	HostCPUMHz     int     `json:"hostCPUMHz,omitempty"`
	HostMemMB      int     `json:"hostMemMB,omitempty"`
	Datastores     int     `json:"datastores,omitempty"`
	DatastoreGB    float64 `json:"datastoreGB,omitempty"`
	DatastoreMBps  float64 `json:"datastoreMBps,omitempty"`
	Templates      int     `json:"templates,omitempty"`
	TemplateDiskGB float64 `json:"templateDiskGB,omitempty"`
	TemplateMemMB  int     `json:"templateMemMB,omitempty"`
	TemplateCPUs   int     `json:"templateCPUs,omitempty"`
}

// MgmtFile mirrors mgmt.Config plus the optional substrate models.
type MgmtFile struct {
	Threads     int    `json:"threads,omitempty"`
	DBConns     int    `json:"dbConns,omitempty"`
	MaxInFlight int    `json:"maxInFlight,omitempty"`
	HostSlots   int    `json:"hostSlots,omitempty"`
	Granularity string `json:"granularity,omitempty"` // coarse|host|entity

	Database *DatabaseFile `json:"database,omitempty"`
	Network  *NetworkFile  `json:"network,omitempty"`
}

// PlaneFile mirrors plane.Config: the management-plane topology.
type PlaneFile struct {
	Shards      int     `json:"shards,omitempty"`
	DB          string  `json:"db,omitempty"` // shared|per-shard
	CoordWriteS float64 `json:"coordWriteS,omitempty"`
}

// DatabaseFile mirrors mgmtdb.Config.
type DatabaseFile struct {
	Conns        int     `json:"conns,omitempty"`
	WriteS       float64 `json:"writeS,omitempty"`
	FlushS       float64 `json:"flushS,omitempty"`
	GroupWindowS float64 `json:"groupWindowS,omitempty"`
	GroupRows    bool    `json:"groupRows,omitempty"`
}

// NetworkFile mirrors netsim.Config.
type NetworkFile struct {
	MBps float64 `json:"mbps,omitempty"`
}

// DirectorFile mirrors clouddir.Config.
type DirectorFile struct {
	Cells              int      `json:"cells,omitempty"`
	CellThreads        int      `json:"cellThreads,omitempty"`
	FastProvisioning   *bool    `json:"fastProvisioning,omitempty"`
	MaxChainLen        int      `json:"maxChainLen,omitempty"`
	RebalanceThreshold *float64 `json:"rebalanceThreshold,omitempty"`
	RebalanceCheckS    float64  `json:"rebalanceCheckS,omitempty"`
	RebalanceBatch     int      `json:"rebalanceBatch,omitempty"`
	LeaseS             float64  `json:"leaseS,omitempty"`
	Placement          string   `json:"placement,omitempty"` // most-free|sticky-org
	OrgQuotaVMs        int      `json:"orgQuotaVMs,omitempty"`
}

// DRSFile mirrors drs.Config; presence enables the balancer.
type DRSFile struct {
	Threshold float64 `json:"threshold,omitempty"`
	CheckS    float64 `json:"checkS,omitempty"`
	Batch     int     `json:"batch,omitempty"`
}

// StorageFile mirrors storage.Policy.
type StorageFile struct {
	DeltaDiskGB  float64 `json:"deltaDiskGB,omitempty"`
	DeltaWriteMB float64 `json:"deltaWriteMB,omitempty"`
	MaxChainLen  int     `json:"maxChainLen,omitempty"`
	SnapshotGB   float64 `json:"snapshotGB,omitempty"`
}

// CostFile mirrors ops.StageCost.
type CostFile struct {
	CellS    *float64 `json:"cellS,omitempty"`
	MgmtS    *float64 `json:"mgmtS,omitempty"`
	DBWrites *int     `json:"dbWrites,omitempty"`
	HostS    *float64 `json:"hostS,omitempty"`
}

// LoadConfig reads a JSON scenario and applies it over DefaultConfig.
// Unknown fields are rejected so typos in scenario files fail loudly.
func LoadConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f ConfigFile
	if err := dec.Decode(&f); err != nil {
		return Config{}, fmt.Errorf("core: parse scenario: %w", err)
	}
	return f.Apply()
}

// Apply converts the wire form to a runnable Config over the defaults.
func (f *ConfigFile) Apply() (Config, error) {
	cfg := DefaultConfig(f.Seed)
	if f.Policy != "" {
		if _, err := policy.Named(f.Policy); err != nil {
			return Config{}, err
		}
		cfg.Policy = f.Policy
	}
	if f.Lanes < 0 || f.LaneWorkers < 0 {
		return Config{}, fmt.Errorf("core: negative lanes %d / laneWorkers %d", f.Lanes, f.LaneWorkers)
	}
	cfg.Lanes = f.Lanes
	cfg.LaneWorkers = f.LaneWorkers
	if t := f.Topology; t != nil {
		setInt := func(dst *int, v int) {
			if v != 0 {
				*dst = v
			}
		}
		setF := func(dst *float64, v float64) {
			if v != 0 {
				*dst = v
			}
		}
		setInt(&cfg.Topology.Hosts, t.Hosts)
		setInt(&cfg.Topology.HostCPUMHz, t.HostCPUMHz)
		setInt(&cfg.Topology.HostMemMB, t.HostMemMB)
		setInt(&cfg.Topology.Datastores, t.Datastores)
		setF(&cfg.Topology.DatastoreGB, t.DatastoreGB)
		setF(&cfg.Topology.DatastoreMBps, t.DatastoreMBps)
		setInt(&cfg.Topology.Templates, t.Templates)
		setF(&cfg.Topology.TemplateDiskGB, t.TemplateDiskGB)
		setInt(&cfg.Topology.TemplateMemMB, t.TemplateMemMB)
		setInt(&cfg.Topology.TemplateCPUs, t.TemplateCPUs)
	}
	if m := f.Mgmt; m != nil {
		if m.Threads != 0 {
			cfg.Mgmt.Threads = m.Threads
		}
		if m.DBConns != 0 {
			cfg.Mgmt.DBConns = m.DBConns
		}
		if m.MaxInFlight != 0 {
			cfg.Mgmt.MaxInFlight = m.MaxInFlight
		}
		if m.HostSlots != 0 {
			cfg.Mgmt.HostSlots = m.HostSlots
		}
		switch m.Granularity {
		case "":
		case "coarse":
			cfg.Mgmt.Granularity = mgmt.GranularityCoarse
		case "host":
			cfg.Mgmt.Granularity = mgmt.GranularityHost
		case "entity":
			cfg.Mgmt.Granularity = mgmt.GranularityEntity
		default:
			return Config{}, fmt.Errorf("core: unknown granularity %q", m.Granularity)
		}
		if m.Database != nil {
			db := mgmtdb.DefaultConfig()
			if m.Database.Conns != 0 {
				db.Conns = m.Database.Conns
			}
			if m.Database.WriteS != 0 {
				db.WriteS = m.Database.WriteS
			}
			if m.Database.FlushS != 0 {
				db.FlushS = m.Database.FlushS
			}
			if m.Database.GroupWindowS != 0 {
				db.GroupWindowS = m.Database.GroupWindowS
			}
			if m.Database.GroupRows {
				db.GroupRows = true
			}
			cfg.Mgmt.Database = &db
		}
		if m.Network != nil {
			net := netsim.DefaultConfig()
			if m.Network.MBps != 0 {
				net.MBps = m.Network.MBps
			}
			cfg.Mgmt.Network = &net
		}
	}
	if p := f.Plane; p != nil {
		if p.Shards != 0 {
			cfg.Plane.Shards = p.Shards
		}
		switch p.DB {
		case "":
		case string(plane.DBShared):
			cfg.Plane.DB = plane.DBShared
		case string(plane.DBPerShard):
			cfg.Plane.DB = plane.DBPerShard
		default:
			return Config{}, fmt.Errorf("core: unknown plane db mode %q (want %q or %q)", p.DB, plane.DBShared, plane.DBPerShard)
		}
		if p.CoordWriteS != 0 {
			cfg.Plane.CoordWriteS = p.CoordWriteS
		}
		if err := cfg.Plane.Validate(); err != nil {
			return Config{}, err
		}
	}
	if d := f.Director; d != nil {
		if d.Cells != 0 {
			cfg.Director.Cells = d.Cells
		}
		if d.CellThreads != 0 {
			cfg.Director.CellThreads = d.CellThreads
		}
		if d.FastProvisioning != nil {
			cfg.Director.FastProvisioning = *d.FastProvisioning
		}
		if d.MaxChainLen != 0 {
			cfg.Director.MaxChainLen = d.MaxChainLen
		}
		if d.RebalanceThreshold != nil {
			cfg.Director.RebalanceThreshold = *d.RebalanceThreshold
		}
		if d.RebalanceCheckS != 0 {
			cfg.Director.RebalanceCheckS = d.RebalanceCheckS
		}
		if d.RebalanceBatch != 0 {
			cfg.Director.RebalanceBatch = d.RebalanceBatch
		}
		if d.LeaseS != 0 {
			cfg.Director.LeaseS = d.LeaseS
		}
		switch d.Placement {
		case "":
		case "most-free":
			cfg.Director.Placement = clouddir.PlaceMostFree
		case "sticky-org":
			cfg.Director.Placement = clouddir.PlaceStickyOrg
		default:
			return Config{}, fmt.Errorf("core: unknown placement %q", d.Placement)
		}
		if d.OrgQuotaVMs != 0 {
			cfg.Director.OrgQuotaVMs = d.OrgQuotaVMs
		}
	}
	if d := f.DRS; d != nil {
		cfg.DRS = drs.DefaultConfig()
		if d.Threshold != 0 {
			cfg.DRS.Threshold = d.Threshold
		}
		if d.CheckS != 0 {
			cfg.DRS.CheckS = d.CheckS
		}
		if d.Batch != 0 {
			cfg.DRS.Batch = d.Batch
		}
	}
	if s := f.Storage; s != nil {
		if s.DeltaDiskGB != 0 {
			cfg.Storage.DeltaDiskGB = s.DeltaDiskGB
		}
		if s.DeltaWriteMB != 0 {
			cfg.Storage.DeltaWriteMB = s.DeltaWriteMB
		}
		if s.MaxChainLen != 0 {
			cfg.Storage.MaxChainLen = s.MaxChainLen
		}
		if s.SnapshotGB != 0 {
			cfg.Storage.SnapshotGB = s.SnapshotGB
		}
	}
	if len(f.Costs) > 0 || f.CostCV != nil {
		model := ops.DefaultCostModel()
		if f.CostCV != nil {
			model.CV = *f.CostCV
		}
		for name, over := range f.Costs {
			kind, err := ops.ParseKind(name)
			if err != nil {
				return Config{}, fmt.Errorf("core: cost override: %w", err)
			}
			c := model.Stage[kind]
			if over.CellS != nil {
				c.CellS = *over.CellS
			}
			if over.MgmtS != nil {
				c.MgmtS = *over.MgmtS
			}
			if over.DBWrites != nil {
				c.DBWrites = *over.DBWrites
			}
			if over.HostS != nil {
				c.HostS = *over.HostS
			}
			model.Stage[kind] = c
		}
		if err := model.Validate(); err != nil {
			return Config{}, err
		}
		cfg.Model = model
	}
	if f.Record != nil {
		cfg.Record = *f.Record
	}
	if f.Metrics != nil {
		cfg.Metrics = *f.Metrics
	}
	if ff := f.Faults; ff != nil {
		fc := faults.Preset(ff.Rate)
		if ff.Host != nil {
			fc.Host = *ff.Host
		}
		if ff.DB != nil {
			fc.DB = *ff.DB
		}
		if ff.Net != nil {
			fc.Net = *ff.Net
		}
		if ff.Storage != nil {
			fc.Storage = *ff.Storage
		}
		if err := fc.Validate(); err != nil {
			return Config{}, err
		}
		cfg.Faults = &fc
		if r := ff.Retry; r != nil {
			pol := mgmt.DefaultRetryPolicy()
			if r.MaxAttempts != 0 {
				pol.MaxAttempts = r.MaxAttempts
			}
			if r.BaseBackoffS != 0 {
				pol.BaseBackoff = r.BaseBackoffS
			}
			if r.Multiplier != 0 {
				pol.Multiplier = r.Multiplier
			}
			if r.Jitter != 0 {
				pol.DeterministicJitter = r.Jitter
			}
			if r.DeadlineS != 0 {
				pol.Deadline = r.DeadlineS
			}
			cfg.Mgmt.Retry = pol
		}
	}
	if rf := f.Reconcile; rf != nil {
		rc := reconcile.DefaultConfig()
		rc.Controllers = rf.Controllers
		if len(rc.Controllers) == 0 {
			// Presence of the block without a controller list means "all".
			rc.Controllers = reconcile.ControllerNames()
		}
		if rf.IntervalS != 0 {
			rc.IntervalS = rf.IntervalS
		}
		if rf.Depth != 0 {
			rc.Depth = rf.Depth
		}
		if rf.RatePerS != 0 {
			rc.RatePerS = rf.RatePerS
		}
		if rf.Burst != 0 {
			rc.Burst = rf.Burst
		}
		if rf.MaxRetries != 0 {
			rc.MaxRetries = rf.MaxRetries
		}
		if rf.Backoff != nil {
			rc.Backoff = *rf.Backoff
		}
		if rf.DriftRate != 0 {
			rc.DriftRate = rf.DriftRate
		}
		if rf.FillFraction != 0 {
			rc.FillFraction = rf.FillFraction
		}
		if err := rc.Validate(); err != nil {
			return Config{}, err
		}
		cfg.Reconcile = &rc
	}
	return cfg, nil
}

// WriteDefaultConfig emits a fully-populated scenario file matching
// DefaultConfig(seed), as a starting point for editing.
func WriteDefaultConfig(w io.Writer, seed int64) error {
	def := DefaultConfig(seed)
	fast := def.Director.FastProvisioning
	rec := def.Record
	met := def.Metrics
	thr := def.Director.RebalanceThreshold
	f := ConfigFile{
		Seed: seed,
		Topology: &TopologyFile{
			Hosts: def.Topology.Hosts, HostCPUMHz: def.Topology.HostCPUMHz, HostMemMB: def.Topology.HostMemMB,
			Datastores: def.Topology.Datastores, DatastoreGB: def.Topology.DatastoreGB, DatastoreMBps: def.Topology.DatastoreMBps,
			Templates: def.Topology.Templates, TemplateDiskGB: def.Topology.TemplateDiskGB,
			TemplateMemMB: def.Topology.TemplateMemMB, TemplateCPUs: def.Topology.TemplateCPUs,
		},
		Mgmt: &MgmtFile{
			Threads: def.Mgmt.Threads, DBConns: def.Mgmt.DBConns,
			MaxInFlight: def.Mgmt.MaxInFlight, HostSlots: def.Mgmt.HostSlots,
			Granularity: def.Mgmt.Granularity.String(),
		},
		Plane: &PlaneFile{
			Shards: def.Plane.Shards, DB: string(def.Plane.DB),
			CoordWriteS: def.Plane.CoordWriteS,
		},
		Director: &DirectorFile{
			Cells: def.Director.Cells, CellThreads: def.Director.CellThreads,
			FastProvisioning: &fast, RebalanceThreshold: &thr,
			RebalanceCheckS: def.Director.RebalanceCheckS, RebalanceBatch: def.Director.RebalanceBatch,
			Placement: def.Director.Placement.String(),
		},
		Storage: &StorageFile{
			DeltaDiskGB: def.Storage.DeltaDiskGB, DeltaWriteMB: def.Storage.DeltaWriteMB,
			MaxChainLen: def.Storage.MaxChainLen, SnapshotGB: def.Storage.SnapshotGB,
		},
		Record:  &rec,
		Metrics: &met,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&f)
}
