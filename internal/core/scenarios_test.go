package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCheckedInScenariosLoadAndBuild globs every scenario file shipped in
// the repo through the config loader and builds a Cloud from each one.
// A scenario that drifts out of sync with the wire format (a renamed
// key, a removed policy name, an invalid value combination) fails here
// instead of at the moment someone passes it to -config.
func TestCheckedInScenariosLoadAndBuild(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in scenarios found; the glob path is wrong")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer f.Close()
			cfg, err := LoadConfig(f)
			if err != nil {
				t.Fatalf("LoadConfig: %v", err)
			}
			cfg.Record = false // building, not running; skip the trace sink
			if _, err := New(cfg); err != nil {
				t.Fatalf("New: %v", err)
			}
		})
	}
}
