package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/sim"
)

// serveCloud builds a small cloud plus a free-running paced driver and
// façade, ready for scripted or live submission.
func serveCloud(t *testing.T, seed int64, quantum sim.Time) (*Cloud, *sim.Paced, *Frontend) {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Metrics = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := sim.NewPaced(c.Env(), sim.PacedConfig{Ratio: 0, QuantumS: quantum})
	return c, drv, NewFrontend(c, drv, FrontendConfig{})
}

// waitTask polls a handle until it is terminal, failing the test if it
// never resolves.
func waitTask(t *testing.T, f *Frontend, id int64) TaskInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ti, ok := f.Task(id)
		if !ok {
			t.Fatalf("task %d vanished", id)
		}
		if ti.State.Terminal() {
			return ti
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("task %d never resolved", id)
	return TaskInfo{}
}

// TestFrontendTaskLifecycle drives a vApp through instantiate, power
// off, and delete over a live (goroutine-driven) paced simulation and
// checks every handle resolves with the right shape.
func TestFrontendTaskLifecycle(t *testing.T) {
	_, drv, f := serveCloud(t, 1, 0.5)
	done := make(chan sim.Time, 1)
	go func() { done <- drv.Run(sim.Forever) }()
	defer func() {
		drv.Stop()
		<-done
	}()

	id, err := f.SubmitOp(OpRequest{Kind: OpInstantiate, Org: "org0", Template: "tpl00", VMs: 2, PowerOn: true})
	if err != nil {
		t.Fatal(err)
	}
	ti := waitTask(t, f, id)
	if ti.State != TaskSuccess {
		t.Fatalf("instantiate state %s (%s)", ti.State, ti.Error)
	}
	if ti.VApp == inventory.None || ti.VAppName == "" {
		t.Fatalf("instantiate did not record a vApp: %+v", ti)
	}
	if ti.MgmtTasks != 4 { // 2 deploys + 2 power-ons
		t.Fatalf("instantiate issued %d mgmt tasks, want 4", ti.MgmtTasks)
	}
	if ti.EndV <= ti.StartV {
		t.Fatalf("no virtual time elapsed: %+v", ti)
	}
	if ti.QueueWaitS < 0 || ti.Latency() <= 0 {
		t.Fatalf("bad latency accounting: %+v", ti)
	}

	view, ok := f.OrgView("org0")
	if !ok {
		t.Fatal("OrgView failed on a running driver")
	}
	if len(view.VApps) != 1 || view.VApps[0].VMs != 2 || view.VApps[0].PoweredOn != 2 {
		t.Fatalf("org view after instantiate: %+v", view)
	}
	if view.LiveVMs != 2 {
		t.Fatalf("live VMs = %d, want 2", view.LiveVMs)
	}

	id2, err := f.SubmitOp(OpRequest{Kind: OpPowerOff, Org: "org0", VApp: ti.VApp})
	if err != nil {
		t.Fatal(err)
	}
	if ti2 := waitTask(t, f, id2); ti2.State != TaskSuccess || ti2.MgmtTasks != 2 {
		t.Fatalf("power off: %+v", ti2)
	}
	if va, ok := f.VApp("org0", ti.VApp); !ok || va.PoweredOn != 0 {
		t.Fatalf("vApp view after power off: %+v ok=%v", va, ok)
	}

	// Cross-tenant access is refused inside the simulation.
	id3, err := f.SubmitOp(OpRequest{Kind: OpDelete, Org: "org1", VApp: ti.VApp})
	if err != nil {
		t.Fatal(err)
	}
	if ti3 := waitTask(t, f, id3); ti3.State != TaskError || !strings.Contains(ti3.Error, "not owned") {
		t.Fatalf("cross-tenant delete: %+v", ti3)
	}

	id4, err := f.SubmitOp(OpRequest{Kind: OpDelete, Org: "org0", VApp: ti.VApp})
	if err != nil {
		t.Fatal(err)
	}
	if ti4 := waitTask(t, f, id4); ti4.State != TaskSuccess {
		t.Fatalf("delete: %+v", ti4)
	}
	if view, _ := f.OrgView("org0"); len(view.VApps) != 0 {
		t.Fatalf("org view after delete: %+v", view)
	}

	// Ops on vanished targets resolve as task errors, not panics.
	id5, err := f.SubmitOp(OpRequest{Kind: OpPowerOn, Org: "org0", VApp: ti.VApp})
	if err != nil {
		t.Fatal(err)
	}
	if ti5 := waitTask(t, f, id5); ti5.State != TaskError {
		t.Fatalf("power on deleted vApp: %+v", ti5)
	}

	st := f.Stats()
	if st.Submitted != 5 || st.Completed != 3 || st.Failed != 2 || st.InFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestFrontendValidation pins the cheap pre-injection rejections.
func TestFrontendValidation(t *testing.T) {
	_, _, f := serveCloud(t, 1, 0.5)
	cases := []OpRequest{
		{Kind: OpInstantiate, Org: "nope", Template: "tpl00"},
		{Kind: OpInstantiate, Org: "org0", Template: "missing"},
		{Kind: OpInstantiate, Org: "org0", Template: "tpl00", VMs: -1},
		{Kind: OpPowerOn, Org: "org0"},
		{Kind: OpKind("resize"), Org: "org0"},
	}
	for _, req := range cases {
		if _, err := f.SubmitOp(req); err == nil {
			t.Fatalf("request %+v accepted", req)
		}
	}
	if st := f.Stats(); st.Submitted != 0 {
		t.Fatalf("validation failures consumed task IDs: %+v", st)
	}
}

// TestFrontendScriptedDeterministic runs the same SubmitOpAt schedule
// twice and requires identical task handles — virtual times, queue
// waits, states, and vApp identities all included.
func TestFrontendScriptedDeterministic(t *testing.T) {
	run := func() []TaskInfo {
		_, drv, f := serveCloud(t, 7, 0.25)
		for i := 0; i < 6; i++ {
			org := []string{"org0", "org1", "org2"}[i%3]
			if _, err := f.SubmitOpAt(sim.Time(i)*13.1, OpRequest{
				Kind: OpInstantiate, Org: org, Template: "tpl01", VMs: 1 + i%2, PowerOn: i%2 == 0,
			}); err != nil {
				t.Fatal(err)
			}
		}
		// A deterministic failure: the target never exists.
		if _, err := f.SubmitOpAt(40.7, OpRequest{Kind: OpPowerOff, Org: "org1", VApp: 999999}); err != nil {
			t.Fatal(err)
		}
		drv.Run(600)
		return f.Tasks()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scripted frontend runs diverged:\n%+v\n%+v", a, b)
	}
	var success, failure int
	for _, ti := range a {
		switch ti.State {
		case TaskSuccess:
			success++
		case TaskError:
			failure++
		default:
			t.Fatalf("task not resolved by horizon: %+v", ti)
		}
		if ti.QueueWaitS < 0 {
			t.Fatalf("negative queue wait: %+v", ti)
		}
	}
	if success != 6 || failure != 1 {
		t.Fatalf("outcomes %d/%d, want 6/1", success, failure)
	}
}

// TestFrontendQueueWaitQuantization pins the scripted queue-wait rule:
// wait is the virtual gap from release to the next quantum boundary.
func TestFrontendQueueWaitQuantization(t *testing.T) {
	_, drv, f := serveCloud(t, 3, 2)
	id, err := f.SubmitOpAt(3.5, OpRequest{Kind: OpInstantiate, Org: "org0", Template: "tpl00"})
	if err != nil {
		t.Fatal(err)
	}
	drv.Run(300)
	ti, _ := f.Task(id)
	if ti.State != TaskSuccess {
		t.Fatalf("task: %+v", ti)
	}
	if ti.QueueWaitS != 0.5 { // released 3.5, boundary at 4
		t.Fatalf("queue wait %v, want 0.5", ti.QueueWaitS)
	}
	if ti.StartV != 4 {
		t.Fatalf("start %v, want 4", ti.StartV)
	}
}

// TestFrontendRejectOnStop verifies pending commands fail their handles
// when the driver stops, and post-stop submission reports an error.
func TestFrontendRejectOnStop(t *testing.T) {
	_, drv, f := serveCloud(t, 1, 0.5)
	id, err := f.SubmitOpAt(1e9, OpRequest{Kind: OpInstantiate, Org: "org0", Template: "tpl00"})
	if err != nil {
		t.Fatal(err)
	}
	drv.Run(10) // horizon reached long before the release time
	ti, _ := f.Task(id)
	if ti.State != TaskError || !strings.Contains(ti.Error, "reject") {
		t.Fatalf("pending task after stop: %+v", ti)
	}
	if _, err := f.SubmitOp(OpRequest{Kind: OpInstantiate, Org: "org0", Template: "tpl00"}); err == nil {
		t.Fatal("SubmitOp succeeded on a stopped driver")
	}
	if _, ok := f.OrgView("org0"); ok {
		t.Fatal("OrgView succeeded on a stopped driver")
	}
}

// TestFrontendMetricsLayer checks the api layer shows up in the metrics
// snapshot with the façade's counters.
func TestFrontendMetricsLayer(t *testing.T) {
	c, drv, f := serveCloud(t, 1, 0.5)
	if _, err := f.SubmitOpAt(0, OpRequest{Kind: OpInstantiate, Org: "org0", Template: "tpl00", VMs: 1}); err != nil {
		t.Fatal(err)
	}
	drv.Run(300)
	snap := c.MetricsSnapshot()
	if snap == nil {
		t.Fatal("metrics snapshot nil with Metrics enabled")
	}
	got := map[string]float64{}
	for _, row := range snap.Scalars {
		if row.Layer == "api" {
			got[row.Metric] = row.Value
		}
	}
	if got["submitted"] != 1 || got["completed"] != 1 || got["failed"] != 0 {
		t.Fatalf("api layer scalars: %+v", got)
	}
	if _, ok := got["queue_wait_s_total"]; !ok {
		t.Fatalf("queue wait missing from api layer: %+v", got)
	}
}

// TestFrontendProviderView sanity-checks the aggregate capacity view.
func TestFrontendProviderView(t *testing.T) {
	c, drv, f := serveCloud(t, 1, 0.5)
	if _, err := f.SubmitOpAt(0, OpRequest{Kind: OpInstantiate, Org: "org0", Template: "tpl00", VMs: 2, PowerOn: true}); err != nil {
		t.Fatal(err)
	}
	done := make(chan sim.Time, 1)
	go func() { done <- drv.Run(sim.Forever) }()
	defer func() {
		drv.Stop()
		<-done
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		pv, ok := f.Provider()
		if !ok {
			t.Fatal("Provider failed on a running driver")
		}
		if pv.VMs == 2 {
			cfg := c.Config()
			if pv.Hosts != cfg.Topology.Hosts || pv.Datastores != cfg.Topology.Datastores {
				t.Fatalf("provider topology: %+v", pv)
			}
			if pv.UsedGB <= 0 || pv.UsedMemMB <= 0 {
				t.Fatalf("provider usage not accounted: %+v", pv)
			}
			if len(pv.TemplateList) != cfg.Topology.Templates {
				t.Fatalf("catalog size %d", len(pv.TemplateList))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("VMs never appeared: %+v", pv)
		}
		time.Sleep(time.Millisecond)
	}
}
