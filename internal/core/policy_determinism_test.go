package core

import (
	"strings"
	"testing"
)

func e21Quick(workers int) E21Params {
	return E21Params{
		Seed: 1, Policies: []string{"default", "binpack", "adaptive-retry"},
		FaultRates: []float64{0, 0.2}, Scenarios: []string{"steady", "skewed"},
		Clients: 8, HorizonS: 120, StormVMs: 16, Workers: workers,
	}
}

func renderE21(t *testing.T, p E21Params) string {
	t.Helper()
	r, err := RunE21(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestE21ArtifactIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := renderE21(t, e21Quick(1))
	parallel := renderE21(t, e21Quick(8))
	if serial != parallel {
		t.Fatalf("E21 artifact differs between 1 and 8 sweep workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	for _, want := range []string{
		"E21: policy tournament over scenario x fault rate",
		"E21: failover storm per policy",
		"E21: ranking by mean normalized goodput",
	} {
		if !strings.Contains(serial, want) {
			t.Fatalf("artifact missing %q:\n%s", want, serial)
		}
	}
}

func TestE21RankingIsTotalOrder(t *testing.T) {
	r, err := RunE21(e21Quick(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ranking) != 3 {
		t.Fatalf("ranking rows = %d, want 3", len(r.Ranking))
	}
	for i, row := range r.Ranking {
		if row.Rank != i+1 {
			t.Fatalf("rank %d at position %d", row.Rank, i)
		}
		if i > 0 {
			prev := r.Ranking[i-1]
			if row.Score > prev.Score ||
				(row.Score == prev.Score && row.Policy < prev.Policy) {
				t.Fatalf("ranking not ordered: %+v before %+v", prev, row)
			}
		}
	}
}

func TestPolicyConfigRejectsUnknownName(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Policy = "not-a-policy"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("New with bad policy: err = %v", err)
	}
}

// TestPolicyDefaultIsIdentity pins the tentpole's core contract in a
// fast in-process form (the full artifact diffs run in CI): a cloud
// built with Policy "default" produces byte-identical closed-loop
// results to one built with no policy at all, while a non-default set
// must be reachable (it may or may not change this tiny run).
func TestPolicyDefaultIsIdentity(t *testing.T) {
	run := func(pol string) ClosedLoopResult {
		cfg := DefaultConfig(1)
		cfg.Policy = pol
		cfg.Director.RebalanceThreshold = 0
		r, err := RunClosedLoop(cfg, 4, 300, 30)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base, named := run(""), run("default")
	if base.Deploys != named.Deploys || base.DeploysPerHour != named.DeploysPerHour ||
		base.P99LatencyS != named.P99LatencyS || base.MeanLatencyS != named.MeanLatencyS {
		t.Fatalf("default policy is not the identity:\nunset: %+v\nnamed: %+v", base, named)
	}
}
