package core

// Extension experiment E18: management-plane scale-out. The paper's
// headline finding is that self-service provisioning rates outgrow a
// single management server; E18 asks the follow-up question a capacity
// planner needs answered: what happens when you shard the management
// plane? A closed-loop deploy workload runs against clouds with 1, 2, 4,
// and 8 manager shards (package plane) in both database modes. With a
// shared management DB, admission and worker threads scale with the
// shard count but every shard contends on the same connection pool, so
// throughput rises until the DB saturates and then flattens — the
// bottleneck the paper predicts moves to the database. With per-shard
// DBs the knee shifts to higher shard counts and utilization stays
// spread. A second leg runs a live-migration storm at each shard count
// to measure how much work crosses shard boundaries and what the
// two-phase coordinator charges for it.
//
// E18 is an opt-in extension like E17: reachable through RunExperiment /
// mcpbench -only E18 / mcpbench -shards, never part of the default
// E1..E16 suite, so existing artifacts stay byte-identical.

import (
	"fmt"
	"io"

	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/plane"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/sweep"
)

// E18Params configures the scale-out experiment.
type E18Params struct {
	Seed        int64
	ShardCounts []int   // shard-count grid, default {1, 2, 4, 8}
	Clients     int     // closed-loop workers, default 192 (past one shard's capacity)
	HorizonS    float64 // per closed-loop point, default 30 min
	WarmupS     float64 // default HorizonS/10
	Workers     int     // sweep pool bound (0 = GOMAXPROCS)
	Lanes       int     // event lanes per cloud (<= 1 = single-heap kernel)
	LaneWorkers int     // barrier-merge workers (0 = one per lane)
}

// E18Cell is one (shard count, DB mode, clone mode) closed-loop outcome.
type E18Cell struct {
	GoodPerHour float64 // successful deploys/hour in the window
	P99S        float64 // deploy p99 latency in the window
	DBUtil      float64 // management DB utilization (mean across DBs in per-shard mode)
}

// E18Point is one shard count's outcomes across both DB and clone modes,
// plus the cross-shard coordination leg.
type E18Point struct {
	Shards int

	SharedFull     E18Cell
	SharedLinked   E18Cell
	PerShardFull   E18Cell
	PerShardLinked E18Cell

	// Cross-shard leg: a live-migration storm (shared DB) at this
	// shard count.
	Migrations int64   // migrations issued by the storm
	CrossOps   int64   // operations that crossed a shard boundary
	CrossShare float64 // percent of migrations that crossed
	CoordS     float64 // two-phase prepare/commit round-trip seconds
}

// E18Result holds the sweep.
type E18Result struct{ Points []E18Point }

// RunE18 sweeps the shard-count grid; each point runs the closed loop
// under shared and per-shard DB modes in both provisioning modes, plus
// one cloud-a profile run measuring cross-shard coordination.
func RunE18(p E18Params) (*E18Result, error) {
	if len(p.ShardCounts) == 0 {
		p.ShardCounts = []int{1, 2, 4, 8}
	}
	if p.Clients == 0 {
		p.Clients = 192
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	if p.WarmupS == 0 {
		p.WarmupS = p.HorizonS / 10
	}
	cell := func(r ClosedLoopResult) E18Cell {
		return E18Cell{GoodPerHour: r.DeploysPerHour, P99S: r.P99LatencyS, DBUtil: r.DBUtil}
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(p.ShardCounts),
		func(sp sweep.Point) (E18Point, error) {
			shards := p.ShardCounts[sp.Index]
			pt := E18Point{Shards: shards}
			for _, db := range []plane.DBMode{plane.DBShared, plane.DBPerShard} {
				for _, fast := range []bool{false, true} {
					cfg := DefaultConfig(p.Seed)
					cfg.Director.FastProvisioning = fast
					cfg.Director.RebalanceThreshold = 0 // isolate provisioning
					// E18 measures the control plane, so the data plane is
					// provisioned out of the way the same way E6 suppresses
					// rebalance: linked clones concentrate on the template's
					// home datastore (the director avoids shadow churn), so
					// its spindle bandwidth — not the management plane —
					// would cap throughput near 5 clones/s. An all-flash-class
					// datastore and an uncapped chain (no ~55 s shadow
					// refresh copies) leave the managers as the constraint.
					cfg.Topology.DatastoreMBps = 4000
					cfg.Director.MaxChainLen = 1 << 20
					cfg.Plane.Shards = shards
					cfg.Plane.DB = db
					cfg.Lanes = p.Lanes
					cfg.LaneWorkers = p.LaneWorkers
					r, err := RunClosedLoop(cfg, p.Clients, p.HorizonS, p.WarmupS)
					if err != nil {
						return pt, fmt.Errorf("E18 shards=%d db=%s fast=%v: %w", shards, db, fast, err)
					}
					switch {
					case db == plane.DBShared && !fast:
						pt.SharedFull = cell(r)
					case db == plane.DBShared && fast:
						pt.SharedLinked = cell(r)
					case db == plane.DBPerShard && !fast:
						pt.PerShardFull = cell(r)
					default:
						pt.PerShardLinked = cell(r)
					}
				}
			}
			// Cross-shard leg: live migration is the operation whose
			// source and destination hosts can land on different shards,
			// but the operational profiles issue migrations far too
			// rarely (cloud-a: 0.002 per VM-hour) to measure the
			// coordinator. So the leg runs a deterministic migration
			// storm: each worker deploys one VM and then live-migrates
			// it between uniformly chosen hosts — the DRS-style "any
			// most-free host" destination that ignores shard boundaries
			// — and the plane reports how many moves crossed a shard and
			// what the two-phase coordinator charged.
			var err error
			pt.Migrations, pt.CrossOps, pt.CoordS, err = migrationStorm(p.Seed, shards, p.HorizonS, p.Lanes, p.LaneWorkers)
			if err != nil {
				return pt, fmt.Errorf("E18 shards=%d storm: %w", shards, err)
			}
			if pt.Migrations > 0 {
				pt.CrossShare = 100 * float64(pt.CrossOps) / float64(pt.Migrations)
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	return &E18Result{Points: points}, nil
}

// migrationStorm runs the cross-shard leg: 64 workers each deploy one
// VM and then live-migrate it between stream-chosen hosts until the
// horizon. It returns the migrations issued plus the plane's cross-shard
// op count and coordinator seconds.
func migrationStorm(seed int64, shards int, horizonS float64, lanes, laneWorkers int) (migrations, crossOps int64, coordS float64, err error) {
	cfg := DefaultConfig(seed)
	cfg.Director.RebalanceThreshold = 0 // only the storm issues migrations
	cfg.Plane.Shards = shards
	cfg.Plane.DB = plane.DBShared
	cfg.Lanes = lanes
	cfg.LaneWorkers = laneWorkers
	c, err := New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	inv := c.Inventory()
	tpl := inv.Template(inv.Templates()[0])
	hosts := inv.Hosts()
	const workers = 64
	var issued int64
	for i := 0; i < workers; i++ {
		org := fmt.Sprintf("org%d", i%8)
		stream := rng.Derive(seed, fmt.Sprintf("e18.migrate.%d", i))
		c.Go(fmt.Sprintf("storm%d", i), func(p *sim.Proc) {
			res := c.Director().DeployVApp(p, org, tpl, 1, false)
			if res.Err != nil || res.VApp == nil || len(res.VApp.VMs) == 0 {
				return
			}
			vm := inv.VM(res.VApp.VMs[0])
			for vm != nil && p.Now() < horizonS {
				p.Sleep(stream.Uniform(0.5, 1.5))
				dst := inv.Host(hosts[stream.Intn(len(hosts))])
				if dst == nil || dst.ID == vm.HostID {
					continue
				}
				issued++
				c.Plane().Migrate(p, vm, dst, mgmt.ReqCtx{Org: org})
				vm = inv.VM(res.VApp.VMs[0])
			}
		})
	}
	c.Run(horizonS)
	ps := c.Plane().Stats()
	return issued, ps.CrossOps, ps.CoordS, nil
}

// Render writes the scale-out tables: closed-loop throughput/latency/DB
// utilization per shard count for both DB modes, then the cross-shard
// coordination leg.
func (r *E18Result) Render(w io.Writer) error {
	lt := report.NewTable("E18: linked-clone provisioning vs management shards",
		"shards", "shared good/h", "shared p99 s", "shared db util",
		"per-shard good/h", "per-shard p99 s", "per-shard db util")
	for _, pt := range r.Points {
		lt.AddRow(pt.Shards,
			pt.SharedLinked.GoodPerHour, pt.SharedLinked.P99S, pt.SharedLinked.DBUtil,
			pt.PerShardLinked.GoodPerHour, pt.PerShardLinked.P99S, pt.PerShardLinked.DBUtil)
	}
	if err := lt.Render(w); err != nil {
		return err
	}
	ft := report.NewTable("E18: full-clone provisioning vs management shards",
		"shards", "shared good/h", "shared p99 s", "shared db util",
		"per-shard good/h", "per-shard p99 s", "per-shard db util")
	for _, pt := range r.Points {
		ft.AddRow(pt.Shards,
			pt.SharedFull.GoodPerHour, pt.SharedFull.P99S, pt.SharedFull.DBUtil,
			pt.PerShardFull.GoodPerHour, pt.PerShardFull.P99S, pt.PerShardFull.DBUtil)
	}
	if err := ft.Render(w); err != nil {
		return err
	}
	ct := report.NewTable("E18: cross-shard coordination under a migration storm (shared DB)",
		"shards", "migrations", "cross-shard", "share %", "coordinator s")
	for _, pt := range r.Points {
		ct.AddRow(pt.Shards, pt.Migrations, pt.CrossOps, pt.CrossShare, pt.CoordS)
	}
	return ct.Render(w)
}
