// Package core is the public façade of the cloudmcp library: it assembles
// the full simulated stack — inventory, datastores, host agents, the
// virtualization manager, and the cloud director — from one Config, runs
// workload profiles against it, and exposes the trace and statistics the
// characterization pipeline and the experiment harness consume.
//
// A minimal use looks like:
//
//	cloud, err := core.New(core.DefaultConfig(1))
//	gen, err := cloud.StartProfile(workload.CloudA())
//	cloud.Run(6 * 3600)
//	records := cloud.Records()
//
// Everything else in the repository — the examples, the four CLIs, and
// the per-figure benchmarks — is built on this package.
package core

import (
	"fmt"
	"sort"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/drs"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/metrics"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/plane"
	"cloudmcp/internal/policy"
	"cloudmcp/internal/reconcile"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/storage"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

// Topology describes the physical installation to build.
type Topology struct {
	Hosts      int
	HostCPUMHz int
	HostMemMB  int

	Datastores    int
	DatastoreGB   float64
	DatastoreMBps float64

	Templates      int
	TemplateDiskGB float64
	TemplateMemMB  int
	TemplateCPUs   int
}

// DefaultTopology is a mid-size cloud: 32 hosts, 8 datastores, 6 catalog
// templates of 16 GB.
func DefaultTopology() Topology {
	return Topology{
		Hosts: 32, HostCPUMHz: 80000, HostMemMB: 524288,
		Datastores: 8, DatastoreGB: 20000, DatastoreMBps: 300,
		Templates: 6, TemplateDiskGB: 16, TemplateMemMB: 2048, TemplateCPUs: 2,
	}
}

// Validate checks the topology for usable values.
func (t Topology) Validate() error {
	if t.Hosts <= 0 || t.HostCPUMHz <= 0 || t.HostMemMB <= 0 {
		return fmt.Errorf("core: bad host topology %+v", t)
	}
	if t.Datastores <= 0 || t.DatastoreGB <= 0 || t.DatastoreMBps <= 0 {
		return fmt.Errorf("core: bad datastore topology %+v", t)
	}
	if t.Templates <= 0 || t.TemplateDiskGB <= 0 || t.TemplateMemMB <= 0 || t.TemplateCPUs <= 0 {
		return fmt.Errorf("core: bad template topology %+v", t)
	}
	return nil
}

// Config assembles a full simulated cloud.
type Config struct {
	// Seed drives every random stream in the simulation; the same Config
	// always produces the same results.
	Seed int64

	Topology Topology
	Mgmt     mgmt.Config
	Director clouddir.Config
	Storage  storage.Policy

	// Plane is the management-plane topology: how many manager shards
	// stand behind the director and whether they share one management
	// database. The zero value (and DefaultConfig) is the single-shard
	// identity topology.
	Plane plane.Config

	// DRS enables the compute load balancer (zero Threshold = off, the
	// default: the synthetic workloads self-balance via most-free
	// placement, so DRS is opt-in for scenarios that skew load).
	DRS drs.Config

	// Model prices operations; nil uses ops.DefaultCostModel().
	Model *ops.CostModel

	// Record controls whether a trace recorder is attached (on by
	// default in DefaultConfig; disable for long capacity sweeps).
	Record bool

	// Metrics attaches a per-layer instrumentation registry (see
	// internal/metrics). Off by default: the registry is pull-based, so
	// enabling it never changes simulation outcomes, but disabling it
	// keeps the hot path a single nil check.
	Metrics bool

	// Faults, when non-nil, injects deterministic transient failures and
	// latency stalls (see internal/faults); New builds a per-cloud
	// injector seeded from Seed and, unless Mgmt.Retry is already set,
	// applies mgmt.DefaultRetryPolicy(). Nil — or a config whose rates
	// are all zero — reproduces pre-faults behaviour bit-for-bit.
	Faults *faults.Config

	// Reconcile, when non-nil, runs the always-on reconciliation plane
	// (see internal/reconcile): background controllers that detect and
	// correct drift through the same management plane foreground work
	// uses. Nil — or a config naming no controllers — reproduces
	// pre-reconcile behaviour bit-for-bit.
	Reconcile *reconcile.Config

	// Lanes partitions the kernel's event heap into per-shard event
	// lanes with conservative time-window barriers (see sim.LaneConfig):
	// lane 0 carries shared resources, shards spread over lanes
	// 1..Lanes-1, and the barrier window is keyed to the cross-shard
	// coordinator round-trip (Plane.CoordWriteS). <= 1 (the default)
	// keeps the single-heap kernel; artifacts are byte-identical at
	// every lane count.
	Lanes int

	// LaneWorkers bounds the barrier-merge worker pool (<= 0 means one
	// worker per lane). Worker count never affects output.
	LaneWorkers int

	// Policy names the policy set (see internal/policy) governing the
	// plane's decision points: placement scoring, DRS move selection,
	// HA failover targeting, retry shaping, and admission limits.
	// "" or "default" reproduce the historical hardcoded decisions
	// bit-for-bit. Explicit per-engine settings (Director.Place,
	// DRS.Move, Mgmt.Retry, Mgmt.MaxInFlight) take precedence over the
	// named set's corresponding axis.
	Policy string
}

// DefaultConfig returns a fully-populated configuration for the given
// seed: default topology, manager, two-cell director with fast
// provisioning, and trace recording on.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:     seed,
		Topology: DefaultTopology(),
		Mgmt:     mgmt.DefaultConfig(),
		Director: clouddir.DefaultConfig(),
		Storage:  storage.DefaultPolicy(),
		Plane:    plane.DefaultConfig(),
		Record:   true,
	}
}

// Cloud is one assembled simulated installation.
type Cloud struct {
	cfg Config
	pol policy.Set

	env      *sim.Env
	inv      *inventory.Inventory
	pool     *storage.Pool
	plane    *plane.Plane
	dir      *clouddir.Director
	balancer *drs.Balancer
	rec      *reconcile.Plane
	recorder *trace.Recorder
}

// New builds the cloud described by cfg.
func New(cfg Config) (*Cloud, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	pol, err := policy.Named(cfg.Policy)
	if err != nil {
		return nil, err
	}
	// The named set fills any axis the caller left at its zero value;
	// explicit per-engine settings win. The default set is the identity
	// on every axis.
	if cfg.Director.Place == nil {
		cfg.Director.Place = pol.Place
	}
	if cfg.DRS.Move == nil {
		cfg.DRS.Move = pol.Move
	}
	model := cfg.Model
	if model == nil {
		model = ops.DefaultCostModel()
	}
	env := sim.NewEnv()
	if cfg.Metrics {
		// Must precede layer construction: each layer registers its
		// resources with the env's registry as it is built.
		env.SetMetrics(metrics.NewRegistry())
	}
	inv := inventory.New()
	dc := inv.AddDatacenter("dc0")
	cl := inv.AddCluster(dc, "cluster0")
	for i := 0; i < cfg.Topology.Hosts; i++ {
		inv.AddHost(cl, fmt.Sprintf("host%02d", i), cfg.Topology.HostCPUMHz, cfg.Topology.HostMemMB)
	}
	var dss []*inventory.Datastore
	for i := 0; i < cfg.Topology.Datastores; i++ {
		dss = append(dss, inv.AddDatastore(dc, fmt.Sprintf("ds%02d", i), cfg.Topology.DatastoreGB, cfg.Topology.DatastoreMBps))
	}
	for i := 0; i < cfg.Topology.Templates; i++ {
		// Spread template base disks across datastores.
		ds := dss[i%len(dss)]
		inv.AddTemplate(ds, fmt.Sprintf("tpl%02d", i), cfg.Topology.TemplateDiskGB, cfg.Topology.TemplateMemMB, cfg.Topology.TemplateCPUs)
	}
	pool := storage.NewPool(env, inv)
	pool.Policy = cfg.Storage
	mcfg := cfg.Mgmt
	if cfg.Faults != nil {
		inj, err := faults.New(cfg.Seed, *cfg.Faults)
		if err != nil {
			return nil, err
		}
		mcfg.Faults = inj
		if mcfg.Retry == (mgmt.RetryPolicy{}) {
			// The policy set's retry spec; the default set's "fixed"
			// spec is mgmt.DefaultRetryPolicy() field-for-field.
			mcfg.Retry = retryFromSpec(pol.Retry)
		}
	}
	if cfg.Plane == (plane.Config{}) {
		// A zero Plane block (configs predating the sharded plane) is
		// the single-shard identity topology.
		cfg.Plane = plane.DefaultConfig()
	}
	// Admission sizes the in-flight limit from the configured base and
	// the deployment shape; the default "fixed" policy returns the base.
	mcfg.MaxInFlight = pol.Admission.MaxInFlight(mcfg.MaxInFlight, cfg.Topology.Hosts, cfg.Plane.Shards)
	pl, err := plane.New(env, inv, pool, model, cfg.Seed, mcfg, cfg.Plane)
	if err != nil {
		return nil, err
	}
	if cfg.Lanes > 1 {
		// The barrier window is the cheapest cross-lane interaction: one
		// coordinator round-trip. Everything built before this point —
		// and every layer below that is not explicitly pinned — lives on
		// lane 0, the shared-resource lane.
		window := cfg.Plane.CoordWriteS
		if window <= 0 {
			window = plane.DefaultConfig().CoordWriteS
		}
		if err := env.ConfigureLanes(sim.LaneConfig{Lanes: cfg.Lanes, WindowS: window, Workers: cfg.LaneWorkers}); err != nil {
			return nil, err
		}
		pl.AssignLanes(cfg.Lanes)
	}
	dir, err := clouddir.New(env, pl, model, rng.Derive(cfg.Seed, "cells"), cfg.Director)
	if err != nil {
		return nil, err
	}
	balancer, err := drs.New(env, pl, cfg.DRS)
	if err != nil {
		return nil, err
	}
	c := &Cloud{cfg: cfg, pol: pol, env: env, inv: inv, pool: pool, plane: pl, dir: dir, balancer: balancer}
	if cfg.Record {
		c.recorder = trace.NewRecorder()
		pl.AddTaskSink(c.recorder.Sink)
	}
	if cfg.Reconcile != nil {
		rec, err := reconcile.New(env, pl, cfg.Seed, *cfg.Reconcile)
		if err != nil {
			return nil, err
		}
		c.rec = rec
	}
	dir.StartRebalancer()
	balancer.Start()
	if c.rec != nil {
		c.rec.Start()
	}
	return c, nil
}

// retryFromSpec translates a policy retry spec into mgmt's policy
// struct (policy cannot import mgmt without a cycle). The default
// "fixed" spec maps onto mgmt.DefaultRetryPolicy() exactly.
func retryFromSpec(s policy.RetrySpec) mgmt.RetryPolicy {
	return mgmt.RetryPolicy{
		MaxAttempts:         s.MaxAttempts,
		BaseBackoff:         s.BaseBackoffS,
		Multiplier:          s.Multiplier,
		DeterministicJitter: s.Jitter,
		Deadline:            s.DeadlineS,
		Adaptive:            s.Adaptive,
	}
}

// Policy returns the resolved policy set the cloud was assembled with,
// so harnesses can hand the same set's axes to engines core does not
// own (the HA engine's failover policy, for example).
func (c *Cloud) Policy() policy.Set { return c.pol }

// DRS returns the compute load balancer (idle unless configured).
func (c *Cloud) DRS() *drs.Balancer { return c.balancer }

// Reconcile returns the reconciliation plane, nil when Config.Reconcile
// is unset.
func (c *Cloud) Reconcile() *reconcile.Plane { return c.rec }

// ReconcileStats returns per-controller reconciliation activity, nil
// when the reconciliation plane is off. Call after Run.
func (c *Cloud) ReconcileStats() []reconcile.Stats {
	if c.rec == nil {
		return nil
	}
	return c.rec.Stats()
}

// ReconcileReport adapts the reconciliation plane's per-controller
// stats to the report renderer's rows (nil when the plane is off).
func (c *Cloud) ReconcileReport() []report.ReconcileRow {
	var rows []report.ReconcileRow
	for _, s := range c.ReconcileStats() {
		rows = append(rows, report.ReconcileRow{
			Controller: s.Controller,
			Runs:       s.Runs,
			Errors:     s.Errors,
			Retries:    s.Retries,
			Drops:      s.Drops,
			Dedups:     s.Queue.Dedups,
			Requeues:   s.Queue.Requeues,
			ThrottleS:  s.ThrottleS,
			BusyS:      s.BusyS,
		})
	}
	return rows
}

// Env returns the simulation environment.
func (c *Cloud) Env() *sim.Env { return c.env }

// Inventory returns the managed-object inventory.
func (c *Cloud) Inventory() *inventory.Inventory { return c.inv }

// Storage returns the datastore pool.
func (c *Cloud) Storage() *storage.Pool { return c.pool }

// Manager returns the home-shard virtualization manager. On the default
// single-shard plane this is the one manager; experiments needing
// shard-local access (the HA engine, restart storms) use it directly,
// while plane-wide accounting goes through Plane().
func (c *Cloud) Manager() *mgmt.Manager { return c.plane.Home() }

// Plane returns the management-plane topology: the shard set, the
// host→shard partition, and cross-shard coordination counters.
func (c *Cloud) Plane() *plane.Plane { return c.plane }

// Director returns the cloud director.
func (c *Cloud) Director() *clouddir.Director { return c.dir }

// Config returns the configuration the cloud was built with.
func (c *Cloud) Config() Config { return c.cfg }

// MetricsRegistry returns the per-layer metrics registry, or nil when
// Config.Metrics is off.
func (c *Cloud) MetricsRegistry() *metrics.Registry { return c.env.Metrics() }

// MetricsSnapshot captures the per-layer metrics at the current virtual
// time, or returns nil when Config.Metrics is off. Call after Run.
func (c *Cloud) MetricsSnapshot() *metrics.Snapshot {
	return c.env.Metrics().Snapshot(float64(c.env.Now()))
}

// ShardReport summarizes each management shard's load for the report
// renderer: hosts owned, tasks completed, thread utilization, admission
// queue, and database utilization (the shared instance's on every row
// in shared-DB mode). Call after Run.
func (c *Cloud) ShardReport() []report.ShardRow {
	hostsOf := make(map[int]int)
	for _, id := range c.inv.Hosts() {
		hostsOf[c.plane.ShardOf(id)]++
	}
	var rows []report.ShardRow
	for i, mgr := range c.plane.Shards() {
		rr := mgr.Resources()
		dbUtil := rr.DB.Utilization
		if wal, ok := mgr.WALStats(); ok {
			dbUtil = wal.FlushStats.Utilization
		}
		rows = append(rows, report.ShardRow{
			Shard:          fmt.Sprintf("shard%d", i),
			Hosts:          hostsOf[i],
			Tasks:          mgr.TasksCompleted(),
			ThreadsUtil:    rr.Threads.Utilization,
			AdmissionQueue: rr.Admission.MeanQueueLen,
			DBUtil:         dbUtil,
		})
	}
	return rows
}

// DBUtilization is the management database's mean utilization so far:
// the shared instance's utilization when shards contend on one DB (or
// on the single-shard plane), the mean across instances in per-shard
// mode. WAL-model databases report their flush-stage utilization.
func (c *Cloud) DBUtilization() float64 {
	dbUtil := func(m *mgmt.Manager) float64 {
		if wal, ok := m.WALStats(); ok {
			return wal.FlushStats.Utilization
		}
		return m.Resources().DB.Utilization
	}
	shards := c.plane.Shards()
	if len(shards) == 1 || c.plane.Config().DB == plane.DBShared {
		return dbUtil(shards[0])
	}
	var sum float64
	for _, m := range shards {
		sum += dbUtil(m)
	}
	return sum / float64(len(shards))
}

// GoodputReport adapts the manager's per-kind goodput accounting to the
// report renderer's rows. Meaningful under fault injection; without it
// every task costs exactly one attempt.
func (c *Cloud) GoodputReport() []report.GoodputRow { return goodputRows(c.plane.Goodput()) }

// Records returns the operation trace collected so far (nil when
// recording is disabled).
func (c *Cloud) Records() []trace.Record {
	if c.recorder == nil {
		return nil
	}
	return c.recorder.Records()
}

// ResetTrace discards the trace collected so far; useful for excluding a
// warm-up phase from measurements.
func (c *Cloud) ResetTrace() {
	if c.recorder != nil {
		c.recorder.Reset()
	}
}

// Run advances the simulation until the given virtual time.
func (c *Cloud) Run(until sim.Time) sim.Time { return c.env.Run(until) }

// RunAll drains every pending event (only safe when no immortal
// background processes — rebalancer, generators — are running).
func (c *Cloud) RunAll() sim.Time { return c.env.Run(sim.Forever) }

// Go spawns a process in the cloud's environment.
func (c *Cloud) Go(name string, fn func(p *sim.Proc)) { c.env.Go(name, fn) }

// StartProfile attaches a workload generator for the profile, creating
// work until horizon. Call Run to advance time.
func (c *Cloud) StartProfile(profile workload.Profile, horizon sim.Time) (*workload.Generator, error) {
	gen, err := workload.NewGenerator(c.env, c.dir, profile, rng.Derive(c.cfg.Seed, "wl:"+profile.Name), horizon)
	if err != nil {
		return nil, err
	}
	gen.Start()
	return gen, nil
}

// RunProfile runs the profile to its horizon and returns the generator's
// statistics.
func (c *Cloud) RunProfile(profile workload.Profile, horizon sim.Time) (workload.Stats, error) {
	gen, err := c.StartProfile(profile, horizon)
	if err != nil {
		return workload.Stats{}, err
	}
	c.Run(horizon)
	return gen.Stats(), nil
}

// StageUtilization is one control-plane stage's utilization snapshot.
type StageUtilization struct {
	Stage       string
	Utilization float64 // mean fraction of capacity busy
	MeanQueue   float64 // time-averaged waiters
}

// BottleneckReport ranks the control-plane stages by utilization —
// director cells, per-shard manager threads, admission, and database,
// the busiest host agent, and the busiest datastore engine — answering
// "what saturates first" for the current run. On a single-shard plane
// stage names carry no shard prefix; with several shards each shard
// reports its own stages (prefixed "shardN.") and a shared database
// appears once under its unprefixed name. Call after Run.
func (c *Cloud) BottleneckReport() []StageUtilization {
	var out []StageUtilization
	sharedDB := c.plane.ShardCount() > 1 && c.plane.Config().DB == plane.DBShared
	for i, mgr := range c.plane.Shards() {
		label := mgr.Config().Label
		rr := mgr.Resources()
		out = append(out,
			StageUtilization{Stage: label + "mgmt.threads", Utilization: rr.Threads.Utilization, MeanQueue: rr.Threads.MeanQueueLen},
			StageUtilization{Stage: label + "mgmt.admission", Utilization: rr.Admission.Utilization, MeanQueue: rr.Admission.MeanQueueLen},
		)
		if sharedDB && i > 0 {
			continue // one shared database, reported once below
		}
		dbLabel := label
		if sharedDB {
			dbLabel = ""
		}
		if wal, ok := mgr.WALStats(); ok {
			out = append(out, StageUtilization{Stage: dbLabel + "mgmt.db(wal)", Utilization: wal.FlushStats.Utilization, MeanQueue: wal.FlushStats.MeanQueueLen})
		} else {
			rr := mgr.Resources()
			out = append(out, StageUtilization{Stage: dbLabel + "mgmt.db", Utilization: rr.DB.Utilization, MeanQueue: rr.DB.MeanQueueLen})
		}
	}
	for i, s := range c.dir.Stats().Cells {
		out = append(out, StageUtilization{
			Stage:       fmt.Sprintf("cell%d", i),
			Utilization: s.Utilization,
			MeanQueue:   s.MeanQueueLen,
		})
	}
	var busyAgent StageUtilization
	for _, a := range c.plane.Home().Agents().All() {
		s := a.Stats().Util
		if s.Utilization >= busyAgent.Utilization {
			// Resource names already carry the "hostagent:" prefix.
			busyAgent = StageUtilization{Stage: s.Name, Utilization: s.Utilization, MeanQueue: s.MeanQueueLen}
		}
	}
	if busyAgent.Stage != "" {
		out = append(out, busyAgent)
	}
	var busyDS StageUtilization
	for _, id := range c.inv.Datastores() {
		e := c.pool.Engine(id)
		if e == nil {
			continue
		}
		s := e.Stats()
		if s.BusyFrac >= busyDS.Utilization {
			busyDS = StageUtilization{Stage: "datastore:" + s.Name, Utilization: s.BusyFrac, MeanQueue: s.MeanActive}
		}
	}
	if busyDS.Stage != "" {
		out = append(out, busyDS)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Utilization > out[j].Utilization })
	return out
}
