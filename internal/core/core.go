// Package core is the public façade of the cloudmcp library: it assembles
// the full simulated stack — inventory, datastores, host agents, the
// virtualization manager, and the cloud director — from one Config, runs
// workload profiles against it, and exposes the trace and statistics the
// characterization pipeline and the experiment harness consume.
//
// A minimal use looks like:
//
//	cloud, err := core.New(core.DefaultConfig(1))
//	gen, err := cloud.StartProfile(workload.CloudA())
//	cloud.Run(6 * 3600)
//	records := cloud.Records()
//
// Everything else in the repository — the examples, the four CLIs, and
// the per-figure benchmarks — is built on this package.
package core

import (
	"fmt"
	"sort"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/drs"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/metrics"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/storage"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

// Topology describes the physical installation to build.
type Topology struct {
	Hosts      int
	HostCPUMHz int
	HostMemMB  int

	Datastores    int
	DatastoreGB   float64
	DatastoreMBps float64

	Templates      int
	TemplateDiskGB float64
	TemplateMemMB  int
	TemplateCPUs   int
}

// DefaultTopology is a mid-size cloud: 32 hosts, 8 datastores, 6 catalog
// templates of 16 GB.
func DefaultTopology() Topology {
	return Topology{
		Hosts: 32, HostCPUMHz: 80000, HostMemMB: 524288,
		Datastores: 8, DatastoreGB: 20000, DatastoreMBps: 300,
		Templates: 6, TemplateDiskGB: 16, TemplateMemMB: 2048, TemplateCPUs: 2,
	}
}

// Validate checks the topology for usable values.
func (t Topology) Validate() error {
	if t.Hosts <= 0 || t.HostCPUMHz <= 0 || t.HostMemMB <= 0 {
		return fmt.Errorf("core: bad host topology %+v", t)
	}
	if t.Datastores <= 0 || t.DatastoreGB <= 0 || t.DatastoreMBps <= 0 {
		return fmt.Errorf("core: bad datastore topology %+v", t)
	}
	if t.Templates <= 0 || t.TemplateDiskGB <= 0 || t.TemplateMemMB <= 0 || t.TemplateCPUs <= 0 {
		return fmt.Errorf("core: bad template topology %+v", t)
	}
	return nil
}

// Config assembles a full simulated cloud.
type Config struct {
	// Seed drives every random stream in the simulation; the same Config
	// always produces the same results.
	Seed int64

	Topology Topology
	Mgmt     mgmt.Config
	Director clouddir.Config
	Storage  storage.Policy

	// DRS enables the compute load balancer (zero Threshold = off, the
	// default: the synthetic workloads self-balance via most-free
	// placement, so DRS is opt-in for scenarios that skew load).
	DRS drs.Config

	// Model prices operations; nil uses ops.DefaultCostModel().
	Model *ops.CostModel

	// Record controls whether a trace recorder is attached (on by
	// default in DefaultConfig; disable for long capacity sweeps).
	Record bool

	// Metrics attaches a per-layer instrumentation registry (see
	// internal/metrics). Off by default: the registry is pull-based, so
	// enabling it never changes simulation outcomes, but disabling it
	// keeps the hot path a single nil check.
	Metrics bool

	// Faults, when non-nil, injects deterministic transient failures and
	// latency stalls (see internal/faults); New builds a per-cloud
	// injector seeded from Seed and, unless Mgmt.Retry is already set,
	// applies mgmt.DefaultRetryPolicy(). Nil — or a config whose rates
	// are all zero — reproduces pre-faults behaviour bit-for-bit.
	Faults *faults.Config
}

// DefaultConfig returns a fully-populated configuration for the given
// seed: default topology, manager, two-cell director with fast
// provisioning, and trace recording on.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:     seed,
		Topology: DefaultTopology(),
		Mgmt:     mgmt.DefaultConfig(),
		Director: clouddir.DefaultConfig(),
		Storage:  storage.DefaultPolicy(),
		Record:   true,
	}
}

// Cloud is one assembled simulated installation.
type Cloud struct {
	cfg Config

	env      *sim.Env
	inv      *inventory.Inventory
	pool     *storage.Pool
	mgr      *mgmt.Manager
	dir      *clouddir.Director
	balancer *drs.Balancer
	recorder *trace.Recorder
}

// New builds the cloud described by cfg.
func New(cfg Config) (*Cloud, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		model = ops.DefaultCostModel()
	}
	env := sim.NewEnv()
	if cfg.Metrics {
		// Must precede layer construction: each layer registers its
		// resources with the env's registry as it is built.
		env.SetMetrics(metrics.NewRegistry())
	}
	inv := inventory.New()
	dc := inv.AddDatacenter("dc0")
	cl := inv.AddCluster(dc, "cluster0")
	for i := 0; i < cfg.Topology.Hosts; i++ {
		inv.AddHost(cl, fmt.Sprintf("host%02d", i), cfg.Topology.HostCPUMHz, cfg.Topology.HostMemMB)
	}
	var dss []*inventory.Datastore
	for i := 0; i < cfg.Topology.Datastores; i++ {
		dss = append(dss, inv.AddDatastore(dc, fmt.Sprintf("ds%02d", i), cfg.Topology.DatastoreGB, cfg.Topology.DatastoreMBps))
	}
	for i := 0; i < cfg.Topology.Templates; i++ {
		// Spread template base disks across datastores.
		ds := dss[i%len(dss)]
		inv.AddTemplate(ds, fmt.Sprintf("tpl%02d", i), cfg.Topology.TemplateDiskGB, cfg.Topology.TemplateMemMB, cfg.Topology.TemplateCPUs)
	}
	pool := storage.NewPool(env, inv)
	pool.Policy = cfg.Storage
	mcfg := cfg.Mgmt
	if cfg.Faults != nil {
		inj, err := faults.New(cfg.Seed, *cfg.Faults)
		if err != nil {
			return nil, err
		}
		mcfg.Faults = inj
		if mcfg.Retry == (mgmt.RetryPolicy{}) {
			mcfg.Retry = mgmt.DefaultRetryPolicy()
		}
	}
	mgr, err := mgmt.New(env, inv, pool, model, rng.Derive(cfg.Seed, "mgmt"), mcfg)
	if err != nil {
		return nil, err
	}
	dir, err := clouddir.New(env, mgr, model, rng.Derive(cfg.Seed, "cells"), cfg.Director)
	if err != nil {
		return nil, err
	}
	balancer, err := drs.New(env, mgr, cfg.DRS)
	if err != nil {
		return nil, err
	}
	c := &Cloud{cfg: cfg, env: env, inv: inv, pool: pool, mgr: mgr, dir: dir, balancer: balancer}
	if cfg.Record {
		c.recorder = trace.NewRecorder()
		mgr.AddTaskSink(c.recorder.Sink)
	}
	dir.StartRebalancer()
	balancer.Start()
	return c, nil
}

// DRS returns the compute load balancer (idle unless configured).
func (c *Cloud) DRS() *drs.Balancer { return c.balancer }

// Env returns the simulation environment.
func (c *Cloud) Env() *sim.Env { return c.env }

// Inventory returns the managed-object inventory.
func (c *Cloud) Inventory() *inventory.Inventory { return c.inv }

// Storage returns the datastore pool.
func (c *Cloud) Storage() *storage.Pool { return c.pool }

// Manager returns the virtualization manager.
func (c *Cloud) Manager() *mgmt.Manager { return c.mgr }

// Director returns the cloud director.
func (c *Cloud) Director() *clouddir.Director { return c.dir }

// Config returns the configuration the cloud was built with.
func (c *Cloud) Config() Config { return c.cfg }

// MetricsRegistry returns the per-layer metrics registry, or nil when
// Config.Metrics is off.
func (c *Cloud) MetricsRegistry() *metrics.Registry { return c.env.Metrics() }

// MetricsSnapshot captures the per-layer metrics at the current virtual
// time, or returns nil when Config.Metrics is off. Call after Run.
func (c *Cloud) MetricsSnapshot() *metrics.Snapshot {
	return c.env.Metrics().Snapshot(float64(c.env.Now()))
}

// GoodputReport adapts the manager's per-kind goodput accounting to the
// report renderer's rows. Meaningful under fault injection; without it
// every task costs exactly one attempt.
func (c *Cloud) GoodputReport() []report.GoodputRow { return goodputRows(c.mgr.Goodput()) }

// Records returns the operation trace collected so far (nil when
// recording is disabled).
func (c *Cloud) Records() []trace.Record {
	if c.recorder == nil {
		return nil
	}
	return c.recorder.Records()
}

// ResetTrace discards the trace collected so far; useful for excluding a
// warm-up phase from measurements.
func (c *Cloud) ResetTrace() {
	if c.recorder != nil {
		c.recorder.Reset()
	}
}

// Run advances the simulation until the given virtual time.
func (c *Cloud) Run(until sim.Time) sim.Time { return c.env.Run(until) }

// RunAll drains every pending event (only safe when no immortal
// background processes — rebalancer, generators — are running).
func (c *Cloud) RunAll() sim.Time { return c.env.Run(sim.Forever) }

// Go spawns a process in the cloud's environment.
func (c *Cloud) Go(name string, fn func(p *sim.Proc)) { c.env.Go(name, fn) }

// StartProfile attaches a workload generator for the profile, creating
// work until horizon. Call Run to advance time.
func (c *Cloud) StartProfile(profile workload.Profile, horizon sim.Time) (*workload.Generator, error) {
	gen, err := workload.NewGenerator(c.env, c.dir, profile, rng.Derive(c.cfg.Seed, "wl:"+profile.Name), horizon)
	if err != nil {
		return nil, err
	}
	gen.Start()
	return gen, nil
}

// RunProfile runs the profile to its horizon and returns the generator's
// statistics.
func (c *Cloud) RunProfile(profile workload.Profile, horizon sim.Time) (workload.Stats, error) {
	gen, err := c.StartProfile(profile, horizon)
	if err != nil {
		return workload.Stats{}, err
	}
	c.Run(horizon)
	return gen.Stats(), nil
}

// StageUtilization is one control-plane stage's utilization snapshot.
type StageUtilization struct {
	Stage       string
	Utilization float64 // mean fraction of capacity busy
	MeanQueue   float64 // time-averaged waiters
}

// BottleneckReport ranks the control-plane stages by utilization —
// director cells, manager threads, database, the busiest host agent, and
// the busiest datastore engine — answering "what saturates first" for
// the current run. Call after Run.
func (c *Cloud) BottleneckReport() []StageUtilization {
	var out []StageUtilization
	rr := c.mgr.Resources()
	out = append(out,
		StageUtilization{Stage: "mgmt.threads", Utilization: rr.Threads.Utilization, MeanQueue: rr.Threads.MeanQueueLen},
		StageUtilization{Stage: "mgmt.admission", Utilization: rr.Admission.Utilization, MeanQueue: rr.Admission.MeanQueueLen},
	)
	if wal, ok := c.mgr.WALStats(); ok {
		out = append(out, StageUtilization{Stage: "mgmt.db(wal)", Utilization: wal.FlushStats.Utilization, MeanQueue: wal.FlushStats.MeanQueueLen})
	} else {
		out = append(out, StageUtilization{Stage: "mgmt.db", Utilization: rr.DB.Utilization, MeanQueue: rr.DB.MeanQueueLen})
	}
	for i, s := range c.dir.Stats().Cells {
		out = append(out, StageUtilization{
			Stage:       fmt.Sprintf("cell%d", i),
			Utilization: s.Utilization,
			MeanQueue:   s.MeanQueueLen,
		})
	}
	var busyAgent StageUtilization
	for _, a := range c.mgr.Agents().All() {
		s := a.Stats().Util
		if s.Utilization >= busyAgent.Utilization {
			// Resource names already carry the "hostagent:" prefix.
			busyAgent = StageUtilization{Stage: s.Name, Utilization: s.Utilization, MeanQueue: s.MeanQueueLen}
		}
	}
	if busyAgent.Stage != "" {
		out = append(out, busyAgent)
	}
	var busyDS StageUtilization
	for _, id := range c.inv.Datastores() {
		e := c.pool.Engine(id)
		if e == nil {
			continue
		}
		s := e.Stats()
		if s.BusyFrac >= busyDS.Utilization {
			busyDS = StageUtilization{Stage: "datastore:" + s.Name, Utilization: s.BusyFrac, MeanQueue: s.MeanActive}
		}
	}
	if busyDS.Stage != "" {
		out = append(out, busyDS)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Utilization > out[j].Utilization })
	return out
}
