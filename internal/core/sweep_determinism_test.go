package core

// Regression tests for the determinism contract of the parallel sweep
// rewiring: for a fixed seed, rendered artifacts must be byte-identical
// whatever the worker count. Run with -race to also exercise the
// concurrent path for data races.

import (
	"fmt"
	"strings"
	"testing"
)

// e6Quick is a small E6 grid: 3 points × 2 modes × 120 simulated
// seconds, enough to produce non-trivial tables fast.
func e6Quick(workers int) E6Params {
	return E6Params{Seed: 1, Concurrency: []int{1, 4, 8}, HorizonS: 120, Workers: workers}
}

func renderE6(t *testing.T, p E6Params) string {
	t.Helper()
	r, err := RunE6(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestE6ArtifactIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := renderE6(t, e6Quick(1))
	parallel := renderE6(t, e6Quick(8))
	if serial != parallel {
		t.Fatalf("E6 artifact differs between 1 and 8 sweep workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "E6: provisioning throughput vs concurrency") {
		t.Fatalf("unexpected artifact:\n%s", serial)
	}
}

func TestRegistryCoversE1ToE16(t *testing.T) {
	names := Experiments()
	if len(names) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(names))
	}
	for i, e := range names {
		if want := fmt.Sprintf("E%d", i+1); e.Name != want {
			t.Fatalf("registry[%d] = %q, want %q", i, e.Name, want)
		}
	}
	if _, err := RunExperiment("E99", 1, true, 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}
