package core

// Experiments E7..E12: load sweeps, reconfiguration pressure, queueing,
// and the design-implication ablations. See DESIGN.md for the index.

import (
	"fmt"
	"io"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/sweep"
)

// openLoopCloud builds a cloud and feeds it Poisson single-VM deploy
// arrivals at ratePerHour for horizon seconds; each vApp lives lifetimeS
// then is deleted. Returns the cloud after the run.
func openLoopCloud(seed int64, fast bool, ratePerHour, horizon, lifetimeS float64, mutate func(*Config)) (*Cloud, error) {
	cfg := DefaultConfig(seed)
	cfg.Director.FastProvisioning = fast
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	inv := c.Inventory()
	stream := rng.Derive(seed, "openloop")
	// Tenant activity is heavily skewed in real self-service clouds; the
	// Zipf draw is what makes sticky placement fill datastores unevenly.
	orgZipf := rng.NewZipf(stream, 8, 1.2)
	c.Go("arrivals", func(p *sim.Proc) {
		n := 0
		for {
			p.Sleep(stream.Exponential(Hour / ratePerHour))
			if p.Now() >= horizon {
				return
			}
			n++
			org := fmt.Sprintf("org%d", orgZipf.Draw())
			tpl := inv.Template(inv.Templates()[stream.Intn(len(inv.Templates()))])
			c.Go(fmt.Sprintf("req%d", n), func(rp *sim.Proc) {
				res := c.Director().DeployVApp(rp, org, tpl, 1, false)
				if res.VApp == nil || inv.VApp(res.VApp.ID) == nil {
					return
				}
				if res.Err != nil {
					c.Director().DeleteVApp(rp, res.VApp, org)
					return
				}
				rp.Sleep(lifetimeS)
				if inv.VApp(res.VApp.ID) != nil {
					c.Director().DeleteVApp(rp, res.VApp, org)
				}
			})
		}
	})
	c.Run(horizon)
	return c, nil
}

// paperEraManager shrinks the manager to the capacities of the paper's
// era (a few worker threads, two DB connections) and disables shadow
// churn and rebalancing, so open-loop sweeps saturate the manager itself.
func paperEraManager(cfg *Config) {
	cfg.Mgmt.Threads = 4
	cfg.Mgmt.DBConns = 2
	cfg.Director.MaxChainLen = 1 << 30
	cfg.Director.RebalanceThreshold = 0
}

// ---------------------------------------------------------------------
// E7 — deploy latency breakdown across layers as offered load rises
// (paper figure: where the time goes once the data plane is out of the
// way).

// E7Params configures the load sweep.
type E7Params struct {
	Seed         int64
	RatesPerHour []float64 // default 100..1600
	HorizonS     float64   // per point, default 1 hour
	Workers      int       // sweep worker pool; 0 = GOMAXPROCS
}

// E7Point is one load level's mean deploy breakdown.
type E7Point struct {
	RatePerHour float64
	Completed   int
	MeanLatS    float64
	Breakdown   ops.Breakdown // mean per deploy
}

// E7Result holds the sweep.
type E7Result struct{ Points []E7Point }

// RunE7 sweeps open-loop deploy load under linked clones. The manager is
// sized to paper-era capacity (4 worker threads, 2 DB connections) and
// shadow churn is disabled so the sweep isolates control-plane queueing;
// E8 covers the churn dimension.
func RunE7(p E7Params) (*E7Result, error) {
	if len(p.RatesPerHour) == 0 {
		p.RatesPerHour = []float64{500, 1000, 2000, 4000, 8000}
	}
	if p.HorizonS == 0 {
		p.HorizonS = Hour
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(p.RatesPerHour),
		func(sp sweep.Point) (E7Point, error) {
			rate := p.RatesPerHour[sp.Index]
			c, err := openLoopCloud(p.Seed, true, rate, p.HorizonS, 600, paperEraManager)
			if err != nil {
				return E7Point{}, err
			}
			deploys := analysis.FilterOK(analysis.FilterKind(c.Records(), ops.KindDeploy.String()))
			bd, _ := analysis.MeanBreakdown(deploys, "")
			lat := analysis.LatencySample(deploys, "")
			return E7Point{
				RatePerHour: rate,
				Completed:   len(deploys),
				MeanLatS:    lat.Mean(),
				Breakdown:   bd,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &E7Result{Points: points}, nil
}

// Render writes the breakdown-vs-load table.
func (r *E7Result) Render(w io.Writer) error {
	t := report.NewTable("E7: linked-deploy latency breakdown vs offered load",
		"req/h", "done", "mean s", "queue", "cell", "mgmt", "db", "host", "data", "queue%")
	for _, pt := range r.Points {
		b := pt.Breakdown
		qshare := 0.0
		if b.Total() > 0 {
			qshare = 100 * b.Queue / b.Total()
		}
		t.AddRow(pt.RatePerHour, pt.Completed, pt.MeanLatS,
			b.Queue, b.Cell, b.Mgmt, b.DB, b.Host, b.Data, qshare)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E8 — reconfiguration pressure: how provisioning rate drives the
// previously-rare cloud reconfiguration operations (shadow-template
// creation under linked clones; datastore rebalancing under sticky
// placement).

// E8Params configures the pressure sweep.
type E8Params struct {
	Seed         int64
	RatesPerHour []float64 // default 50..800
	HorizonS     float64   // per point, default 2 hours
	MaxChainLen  int       // clones per shadow base, default 8
}

// E8Point is one rate's reconfiguration activity.
type E8Point struct {
	RatePerHour     float64
	Deploys         int
	ShadowsPerHour  float64 // linked mode: catalog maintenance
	RebalStartsPerH float64 // sticky full-clone mode: passes begun
	MovesPerHour    float64 // rebalance storage-migrations begun
	EndImbalance    float64 // residual fill imbalance when the run ends
}

// E8Result holds the sweep.
type E8Result struct{ Points []E8Point }

// RunE8 sweeps the provisioning rate and measures both reconfiguration
// mechanisms.
func RunE8(p E8Params) (*E8Result, error) {
	if len(p.RatesPerHour) == 0 {
		p.RatesPerHour = []float64{50, 100, 200, 400, 800}
	}
	if p.HorizonS == 0 {
		p.HorizonS = 2 * Hour
	}
	if p.MaxChainLen == 0 {
		p.MaxChainLen = 8
	}
	res := &E8Result{}
	for _, rate := range p.RatesPerHour {
		pt := E8Point{RatePerHour: rate}

		// (a) Linked clones: shadow-template churn.
		cLinked, err := openLoopCloud(p.Seed, true, rate, p.HorizonS, 900, func(cfg *Config) {
			cfg.Director.MaxChainLen = p.MaxChainLen
			cfg.Director.RebalanceThreshold = 0
		})
		if err != nil {
			return nil, err
		}
		pt.Deploys = len(analysis.FilterOK(analysis.FilterKind(cLinked.Records(), ops.KindDeploy.String())))
		pt.ShadowsPerHour = float64(cLinked.Director().Stats().ShadowCopies) / (p.HorizonS / Hour)

		// (b) Sticky full clones: datastore rebalancing.
		cFull, err := openLoopCloud(p.Seed, false, rate, p.HorizonS, 900, func(cfg *Config) {
			cfg.Director.Placement = clouddir.PlaceStickyOrg
			cfg.Director.RebalanceThreshold = 0.05
			cfg.Director.RebalanceCheckS = 600
			cfg.Director.RebalanceBatch = 8
			cfg.Topology.DatastoreGB = 2000 // tighter datastores fill faster
		})
		if err != nil {
			return nil, err
		}
		st := cFull.Director().Stats()
		pt.RebalStartsPerH = float64(st.RebalanceStarts) / (p.HorizonS / Hour)
		pt.MovesPerHour = float64(st.RebalanceMoves) / (p.HorizonS / Hour)
		pt.EndImbalance = cFull.Storage().Imbalance()
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render writes the pressure table.
func (r *E8Result) Render(w io.Writer) error {
	t := report.NewTable("E8: reconfiguration pressure vs provisioning rate",
		"req/h", "deploys", "shadows/h", "rebal starts/h", "moves/h", "end imbalance")
	for _, pt := range r.Points {
		t.AddRow(pt.RatePerHour, pt.Deploys, pt.ShadowsPerHour,
			pt.RebalStartsPerH, pt.MovesPerHour, pt.EndImbalance)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E9 — control-plane queueing: utilization, queue length, and wait at the
// manager's serialization points vs offered load (paper table).

// E9Params configures the queueing sweep.
type E9Params struct {
	Seed         int64
	RatesPerHour []float64 // default 100..1600
	HorizonS     float64   // per point, default 1 hour
	Workers      int       // sweep worker pool; 0 = GOMAXPROCS
}

// E9Point is one load level's resource report.
type E9Point struct {
	RatePerHour float64
	DonePerHour float64
	Admission   sim.ResourceStats
	Threads     sim.ResourceStats
	DB          sim.ResourceStats
}

// E9Result holds the sweep.
type E9Result struct{ Points []E9Point }

// RunE9 sweeps open-loop load and snapshots the manager's resources,
// using the same paper-era manager sizing as E7.
func RunE9(p E9Params) (*E9Result, error) {
	if len(p.RatesPerHour) == 0 {
		p.RatesPerHour = []float64{500, 1000, 2000, 4000, 8000}
	}
	if p.HorizonS == 0 {
		p.HorizonS = Hour
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(p.RatesPerHour),
		func(sp sweep.Point) (E9Point, error) {
			rate := p.RatesPerHour[sp.Index]
			c, err := openLoopCloud(p.Seed, true, rate, p.HorizonS, 600, paperEraManager)
			if err != nil {
				return E9Point{}, err
			}
			rr := c.Manager().Resources()
			done := analysis.Throughput(c.Records(), "", 0, p.HorizonS) * Hour
			return E9Point{
				RatePerHour: rate, DonePerHour: done,
				Admission: rr.Admission, Threads: rr.Threads, DB: rr.DB,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &E9Result{Points: points}, nil
}

// Render writes the queueing table.
func (r *E9Result) Render(w io.Writer) error {
	t := report.NewTable("E9: manager queueing vs offered deploy load",
		"req/h", "ops done/h", "adm util", "adm queue", "thr util", "thr wait s", "db util", "db wait s")
	for _, pt := range r.Points {
		t.AddRow(pt.RatePerHour, pt.DonePerHour,
			pt.Admission.Utilization, pt.Admission.MeanQueueLen,
			pt.Threads.Utilization, pt.Threads.MeanWait,
			pt.DB.Utilization, pt.DB.MeanWait)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E10 — design implication: scaling director cells (paper figure).

// E10Params configures the cell-scaling ablation.
type E10Params struct {
	Seed         int64
	Cells        []int   // default 1,2,4,8
	Workers      int     // closed-loop clients, default 64
	HorizonS     float64 // default 30 min
	SweepWorkers int     // sweep worker pool; 0 = GOMAXPROCS
}

// E10Point is one cell count's throughput.
type E10Point struct {
	Cells         int
	LinkedPerHour float64
	MeanLatS      float64
}

// E10Result holds the ablation.
type E10Result struct{ Points []E10Point }

// RunE10 sweeps the number of cells at fixed saturating concurrency.
// Cells are deliberately small (4 threads) so the cell tier is the
// binding stage.
func RunE10(p E10Params) (*E10Result, error) {
	if len(p.Cells) == 0 {
		p.Cells = []int{1, 2, 4, 8}
	}
	if p.Workers == 0 {
		p.Workers = 64
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.SweepWorkers}, len(p.Cells),
		func(sp sweep.Point) (E10Point, error) {
			cells := p.Cells[sp.Index]
			perHour, meanLat, err := closedLoopDeploys(p.Seed, true, p.Workers, p.HorizonS, p.HorizonS/10,
				func(cfg *Config) {
					cfg.Director.Cells = cells
					cfg.Director.CellThreads = 2
					// Disable shadow churn so the cell tier is the binding
					// stage, which is what this ablation isolates.
					cfg.Director.MaxChainLen = 1 << 30
				})
			return E10Point{Cells: cells, LinkedPerHour: perHour, MeanLatS: meanLat}, err
		})
	if err != nil {
		return nil, err
	}
	return &E10Result{Points: points}, nil
}

// Render writes the scaling series.
func (r *E10Result) Render(w io.Writer) error {
	t := report.NewTable("E10: provisioning throughput vs director cells",
		"cells", "linked deploys/h", "mean latency s")
	for _, pt := range r.Points {
		t.AddRow(pt.Cells, pt.LinkedPerHour, pt.MeanLatS)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	s := report.NewSeries("E10: deploys/hour vs cells", "cells", "deploys/h")
	for _, pt := range r.Points {
		s.Add(float64(pt.Cells), pt.LinkedPerHour)
	}
	return s.Render(w)
}

// ---------------------------------------------------------------------
// E11 — design implication: inventory lock granularity (paper figure).

// E11Params configures the lock ablation.
type E11Params struct {
	Seed         int64
	Workers      int     // closed-loop clients, default 64
	HorizonS     float64 // default 30 min
	SweepWorkers int     // sweep worker pool; 0 = GOMAXPROCS
}

// E11Point is one granularity's throughput.
type E11Point struct {
	Granularity   string
	LinkedPerHour float64
	MeanLatS      float64
}

// E11Result holds the ablation.
type E11Result struct{ Points []E11Point }

// RunE11 compares coarse, host, and entity locking at fixed concurrency.
func RunE11(p E11Params) (*E11Result, error) {
	if p.Workers == 0 {
		p.Workers = 64
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	grans := []mgmt.LockGranularity{mgmt.GranularityCoarse, mgmt.GranularityHost, mgmt.GranularityEntity}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.SweepWorkers}, len(grans),
		func(sp sweep.Point) (E11Point, error) {
			g := grans[sp.Index]
			perHour, meanLat, err := closedLoopDeploys(p.Seed, true, p.Workers, p.HorizonS, p.HorizonS/10,
				func(cfg *Config) { cfg.Mgmt.Granularity = g })
			return E11Point{Granularity: g.String(), LinkedPerHour: perHour, MeanLatS: meanLat}, err
		})
	if err != nil {
		return nil, err
	}
	return &E11Result{Points: points}, nil
}

// Render writes the ablation table.
func (r *E11Result) Render(w io.Writer) error {
	t := report.NewTable("E11: provisioning throughput vs lock granularity",
		"granularity", "linked deploys/h", "mean latency s")
	for _, pt := range r.Points {
		t.AddRow(pt.Granularity, pt.LinkedPerHour, pt.MeanLatS)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E12 — catalog operations: publish cost vs template size, and latency
// amplification under concurrent provisioning load (paper table).

// E12Params configures the catalog experiment.
type E12Params struct {
	Seed        int64
	SizesGB     []float64 // default 4..64
	LoadWorkers int       // concurrent deploy clients for the loaded case, default 32
	HorizonS    float64   // loaded-case horizon, default 30 min
}

// E12Point is one size's publish latencies.
type E12Point struct {
	SizeGB      float64
	IdleS       float64 // publish latency on an idle cloud
	FullLoadS   float64 // publish latency amid full-clone deploy load
	LinkedLoadS float64 // publish latency amid linked-clone deploy load
	FullDeploys int
	LinkDeploys int
}

// E12Result holds the experiment.
type E12Result struct{ Points []E12Point }

// e12Mode identifies the three measurement conditions.
type e12Mode int

const (
	e12Idle e12Mode = iota
	e12FullLoad
	e12LinkedLoad
)

// RunE12 measures catalog publishes on an idle cloud and under
// concurrent full-clone and linked-clone provisioning load. The contrast
// between the two loaded cases shows fast provisioning relieving the
// data-plane contention that catalog operations suffer.
func RunE12(p E12Params) (*E12Result, error) {
	if len(p.SizesGB) == 0 {
		p.SizesGB = []float64{4, 16, 64}
	}
	if p.LoadWorkers == 0 {
		p.LoadWorkers = 32
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	res := &E12Result{}
	for _, size := range p.SizesGB {
		pt := E12Point{SizeGB: size}
		for _, mode := range []e12Mode{e12Idle, e12FullLoad, e12LinkedLoad} {
			mode := mode
			cfg := DefaultConfig(p.Seed)
			cfg.Topology.TemplateDiskGB = size
			cfg.Director.RebalanceThreshold = 0
			cfg.Director.FastProvisioning = mode == e12LinkedLoad
			c, err := New(cfg)
			if err != nil {
				return nil, err
			}
			inv := c.Inventory()
			tpl := inv.Template(inv.Templates()[0])
			if mode != e12Idle {
				stream := rng.Derive(p.Seed, "e12")
				for i := 0; i < p.LoadWorkers; i++ {
					org := fmt.Sprintf("org%d", i%8)
					c.Go(fmt.Sprintf("bg%d", i), func(bp *sim.Proc) {
						for bp.Now() < p.HorizonS {
							r := c.Director().DeployVApp(bp, org, tpl, 1, false)
							if r.VApp != nil && inv.VApp(r.VApp.ID) != nil {
								c.Director().DeleteVApp(bp, r.VApp, org)
							}
							bp.Sleep(stream.Uniform(0.1, 0.5))
						}
					})
				}
			}
			var latency float64
			c.Go("publisher", func(pp *sim.Proc) {
				// Publish mid-run, after load has ramped.
				pp.Sleep(p.HorizonS / 4)
				dst := inv.Datastore(inv.Datastores()[len(inv.Datastores())-1])
				_, task := c.Director().PublishTemplate(pp, tpl, dst, fmt.Sprintf("pub-%0.f", size), "orgPub")
				if task.Err == nil {
					latency = task.Latency()
				}
			})
			c.Run(p.HorizonS)
			deploys := len(analysis.FilterOK(analysis.FilterKind(c.Records(), ops.KindDeploy.String())))
			switch mode {
			case e12Idle:
				pt.IdleS = latency
			case e12FullLoad:
				pt.FullLoadS = latency
				pt.FullDeploys = deploys
			case e12LinkedLoad:
				pt.LinkedLoadS = latency
				pt.LinkDeploys = deploys
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render writes the catalog table.
func (r *E12Result) Render(w io.Writer) error {
	t := report.NewTable("E12: catalog publish latency, idle vs under provisioning load",
		"size GB", "idle s", "full-load s", "linked-load s", "amp(full)", "amp(linked)", "bg full", "bg linked")
	for _, pt := range r.Points {
		ampF, ampL := 0.0, 0.0
		if pt.IdleS > 0 {
			ampF = pt.FullLoadS / pt.IdleS
			ampL = pt.LinkedLoadS / pt.IdleS
		}
		t.AddRow(pt.SizeGB, pt.IdleS, pt.FullLoadS, pt.LinkedLoadS, ampF, ampL, pt.FullDeploys, pt.LinkDeploys)
	}
	return t.Render(w)
}

// RunAll and the experiment registry both suites share live in
// registry.go.
