package core

// The serving façade: the seam where external callers — an API server,
// a replay tool, a test — hand work to a running simulation and watch it
// complete in virtual time.
//
// Historically core drove itself: experiments spawned workload
// generators inside the kernel and read the results after Run returned.
// A served system inverts that — requests arrive on ordinary goroutines,
// in wall time, and the caller holds a task handle while the simulated
// control plane grinds through cell stages, placement, and the
// management plane. Frontend is that inversion. It validates a request
// cheaply on the caller's goroutine, enqueues it on the paced driver's
// injection point, and resolves the handle from inside the simulation:
// queued until the command crosses a quantum boundary, running while the
// director executes it, then success or error stamped with virtual
// completion time.
//
// The API-layer queue wait is measured here and attributed separately
// from the control plane's own latency: for live submissions it is the
// wall time a request waited for the next injection boundary scaled by
// the pacing ratio into virtual seconds (so a driver lagging its wall
// schedule shows up as real queueing, exactly like a saturated API
// cell), and for scripted virtual-time submissions it is the virtual gap
// between release and injection, which is deterministic.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/sim"
)

// OpKind names an external operation on the serving surface.
type OpKind string

// The operations the façade accepts, mirroring the VCD verbs the paper's
// workload is built from.
const (
	OpInstantiate OpKind = "instantiate"
	OpPowerOn     OpKind = "powerOn"
	OpPowerOff    OpKind = "powerOff"
	OpDelete      OpKind = "delete"
)

// TaskState is the lifecycle of an async task handle.
type TaskState string

// Task states. Every task ends in success or error.
const (
	TaskQueued  TaskState = "queued"
	TaskRunning TaskState = "running"
	TaskSuccess TaskState = "success"
	TaskError   TaskState = "error"
)

// Terminal reports whether the state is final.
func (s TaskState) Terminal() bool { return s == TaskSuccess || s == TaskError }

// OpRequest is one external operation.
type OpRequest struct {
	Kind OpKind
	// Org is the tenant on whose behalf the operation runs; it must be
	// one of the frontend's configured orgs.
	Org string
	// Template names a catalog template (instantiate only).
	Template string
	// VMs is the vApp size (instantiate only; 0 means 1).
	VMs int
	// PowerOn requests power-on as part of instantiate.
	PowerOn bool
	// VApp targets an existing vApp (power and delete ops).
	VApp inventory.ID
}

// TaskInfo is a snapshot of an async task handle.
type TaskInfo struct {
	ID    int64
	Op    OpKind
	Org   string
	State TaskState
	// SubmitV is the virtual clock when the request was accepted (the
	// last completed boundary for live submissions, the release time for
	// scripted ones). StartV/EndV are stamped inside the simulation.
	SubmitV sim.Time
	StartV  sim.Time
	EndV    sim.Time
	// QueueWaitS is the API-layer queue wait in virtual seconds — time
	// spent between submission and injection, before the control plane
	// saw the request. It is attributed separately from the operation's
	// own latency (EndV - StartV).
	QueueWaitS float64
	Error      string
	// VApp/VAppName identify the vApp the operation created or targeted.
	VApp     inventory.ID
	VAppName string
	// MgmtTasks counts management-plane tasks the operation issued.
	MgmtTasks int
}

// Latency returns the end-to-end virtual seconds including API queueing;
// zero until the task is terminal.
func (t TaskInfo) Latency() float64 {
	if !t.State.Terminal() {
		return 0
	}
	return t.QueueWaitS + float64(t.EndV-t.StartV)
}

// FrontendConfig shapes the serving façade.
type FrontendConfig struct {
	// Orgs is the number of tenants (org0..orgN-1), matching the
	// workload generator's naming. Default 8.
	Orgs int
}

// FrontendStats summarizes the façade's counters.
type FrontendStats struct {
	Submitted      int64
	Completed      int64 // terminal successes
	Failed         int64 // terminal errors (including rejections)
	InFlight       int64 // queued + running
	QueueWaitSumS  float64
	QueueWaitMeanS float64 // over tasks that reached injection
	injected       int64
}

// TemplateInfo describes one catalog entry.
type TemplateInfo struct {
	Name   string
	DiskGB float64
	MemMB  int
	CPUs   int
}

// VAppView is an org-scoped view of one vApp.
type VAppView struct {
	ID        inventory.ID
	Name      string
	Org       string
	VMs       int
	PoweredOn int
}

// OrgView is the session-scoped slice of the inventory one tenant sees.
type OrgView struct {
	Name     string
	QuotaVMs int // 0 = unlimited
	LiveVMs  int
	VApps    []VAppView
}

// ProviderView aggregates the provider vDC capacity backing every org.
type ProviderView struct {
	Hosts        int
	CPUMHz       int
	UsedCPUMHz   int
	MemMB        int
	UsedMemMB    int
	Datastores   int
	CapacityGB   float64
	UsedGB       float64
	VMs          int
	VApps        int
	VirtualNowS  sim.Time
	PacedRatio   float64
	ShardCount   int
	OrgCount     int
	TemplateList []TemplateInfo
}

// Frontend is the external-command façade over a paced simulation. It is
// safe for concurrent use; all mutation of model state happens on the
// driver goroutine via the injection point.
type Frontend struct {
	cloud *Cloud
	drv   *sim.Paced

	orgs      []string
	orgSet    map[string]bool
	templates map[string]inventory.ID
	catalog   []TemplateInfo

	// now is a test seam for the wall clock used in queue-wait
	// attribution of live submissions.
	now func() time.Time

	mu       sync.Mutex
	tasks    map[int64]*TaskInfo
	order    []int64
	nextID   int64
	stats    FrontendStats
	qwaitSum float64
	injected int64
}

// NewFrontend wraps a cloud and its paced driver in a serving façade and
// registers the API layer's counters with the metrics registry (a no-op
// when metrics are disabled). Call before Run starts serving; the
// catalog snapshot is taken here.
func NewFrontend(c *Cloud, drv *sim.Paced, cfg FrontendConfig) *Frontend {
	if cfg.Orgs <= 0 {
		cfg.Orgs = 8
	}
	f := &Frontend{
		cloud:     c,
		drv:       drv,
		orgSet:    make(map[string]bool, cfg.Orgs),
		templates: make(map[string]inventory.ID),
		now:       time.Now,
		tasks:     make(map[int64]*TaskInfo),
	}
	for i := 0; i < cfg.Orgs; i++ {
		name := fmt.Sprintf("org%d", i)
		f.orgs = append(f.orgs, name)
		f.orgSet[name] = true
	}
	inv := c.Inventory()
	for _, id := range inv.Templates() {
		tpl := inv.Template(id)
		if tpl == nil {
			continue
		}
		f.templates[tpl.Name] = id
		f.catalog = append(f.catalog, TemplateInfo{
			Name: tpl.Name, DiskGB: tpl.DiskGB, MemMB: tpl.MemMB, CPUs: tpl.CPUs,
		})
	}
	sort.Slice(f.catalog, func(i, j int) bool { return f.catalog[i].Name < f.catalog[j].Name })

	reg := c.MetricsRegistry()
	reg.ScalarFunc("api", "frontend", "submitted", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.stats.Submitted)
	})
	reg.ScalarFunc("api", "frontend", "completed", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.stats.Completed)
	})
	reg.ScalarFunc("api", "frontend", "failed", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.stats.Failed)
	})
	reg.ScalarFunc("api", "frontend", "queue_wait_s_total", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.qwaitSum
	})
	reg.ScalarFunc("api", "frontend", "queue_wait_s_mean", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.injected == 0 {
			return 0
		}
		return f.qwaitSum / float64(f.injected)
	})
	return f
}

// Cloud returns the served cloud.
func (f *Frontend) Cloud() *Cloud { return f.cloud }

// Driver returns the paced driver the façade injects through.
func (f *Frontend) Driver() *sim.Paced { return f.drv }

// Orgs lists the configured tenants.
func (f *Frontend) Orgs() []string { return append([]string(nil), f.orgs...) }

// KnownOrg reports whether name is a configured tenant.
func (f *Frontend) KnownOrg(name string) bool { return f.orgSet[name] }

// Catalog lists the template catalog (snapshot at construction).
func (f *Frontend) Catalog() []TemplateInfo { return append([]TemplateInfo(nil), f.catalog...) }

// Clock returns the serving virtual clock (last completed boundary).
func (f *Frontend) Clock() sim.Time { return f.drv.VirtualNow() }

// validate rejects malformed requests before they cost an injection slot.
func (f *Frontend) validate(req *OpRequest) error {
	if !f.orgSet[req.Org] {
		return fmt.Errorf("core: unknown org %q", req.Org)
	}
	switch req.Kind {
	case OpInstantiate:
		if req.VMs == 0 {
			req.VMs = 1
		}
		if req.VMs < 0 {
			return fmt.Errorf("core: vApp size %d", req.VMs)
		}
		if _, ok := f.templates[req.Template]; !ok {
			return fmt.Errorf("core: unknown template %q", req.Template)
		}
	case OpPowerOn, OpPowerOff, OpDelete:
		if req.VApp == inventory.None {
			return fmt.Errorf("core: %s requires a vApp target", req.Kind)
		}
	default:
		return fmt.Errorf("core: unknown op kind %q", req.Kind)
	}
	return nil
}

// SubmitOp validates req, enqueues it for the next injection boundary,
// and returns the async task ID immediately. The task resolves in
// virtual time; poll it with Task. Safe from any goroutine.
func (f *Frontend) SubmitOp(req OpRequest) (int64, error) {
	return f.submit(req, -1, true)
}

// SubmitOpAt is the scripted variant: req is injected at the first
// quantum boundary at or after virtual time at. A fixed SubmitOpAt
// schedule yields a deterministic virtual-time trace and deterministic
// task handles — the replay and determinism tests depend on this.
func (f *Frontend) SubmitOpAt(at sim.Time, req OpRequest) (int64, error) {
	if at < 0 {
		at = 0
	}
	return f.submit(req, at, false)
}

func (f *Frontend) submit(req OpRequest, at sim.Time, live bool) (int64, error) {
	if err := f.validate(&req); err != nil {
		return 0, err
	}
	submitV := at
	if live {
		submitV = f.drv.VirtualNow()
	}
	f.mu.Lock()
	f.nextID++
	id := f.nextID
	f.tasks[id] = &TaskInfo{
		ID: id, Op: req.Kind, Org: req.Org, State: TaskQueued,
		SubmitV: submitV, VApp: req.VApp,
	}
	f.order = append(f.order, id)
	f.stats.Submitted++
	f.mu.Unlock()

	wall0 := f.now()
	fn := func(env *sim.Env) {
		injectV := env.Now()
		var qw float64
		if live {
			if r := f.drv.Ratio(); r > 0 {
				qw = f.now().Sub(wall0).Seconds() * r
			} else {
				qw = float64(injectV - submitV)
			}
		} else {
			qw = float64(injectV - at)
		}
		f.markInjected(id, qw)
		env.Go(fmt.Sprintf("api:task%d", id), func(p *sim.Proc) {
			f.markRunning(id, p.Now())
			vapp, name, n, err := f.execute(p, req)
			f.markDone(id, p.Now(), vapp, name, n, err)
		})
	}
	reject := func() { f.markRejected(id) }
	ok := false
	if live {
		ok = f.drv.Submit(fn, reject)
	} else {
		ok = f.drv.SubmitAt(at, fn, reject)
	}
	if !ok {
		f.markRejected(id)
		return id, fmt.Errorf("core: frontend stopped")
	}
	return id, nil
}

// execute runs one operation on the driver goroutine, inside the
// simulation, and returns what the handle should record.
func (f *Frontend) execute(p *sim.Proc, req OpRequest) (vapp inventory.ID, name string, mgmtTasks int, err error) {
	dir := f.cloud.Director()
	inv := f.cloud.Inventory()
	switch req.Kind {
	case OpInstantiate:
		tpl := inv.Template(f.templates[req.Template])
		if tpl == nil {
			return inventory.None, "", 0, fmt.Errorf("core: template %q vanished", req.Template)
		}
		res := dir.DeployVApp(p, req.Org, tpl, req.VMs, req.PowerOn)
		if res.VApp != nil {
			vapp, name = res.VApp.ID, res.VApp.Name
		}
		return vapp, name, len(res.Tasks), res.Err
	case OpPowerOn, OpPowerOff:
		va := inv.VApp(req.VApp)
		if va == nil {
			return inventory.None, "", 0, fmt.Errorf("core: no such vApp %d", req.VApp)
		}
		if va.OrgName != req.Org {
			return inventory.None, "", 0, fmt.Errorf("core: vApp %d not owned by org %s", req.VApp, req.Org)
		}
		tasks := dir.PowerVApp(p, va, req.Org, req.Kind == OpPowerOn)
		for _, t := range tasks {
			if t.Err != nil {
				err = t.Err
				break
			}
		}
		return va.ID, va.Name, len(tasks), err
	case OpDelete:
		va := inv.VApp(req.VApp)
		if va == nil {
			return inventory.None, "", 0, fmt.Errorf("core: no such vApp %d", req.VApp)
		}
		if va.OrgName != req.Org {
			return inventory.None, "", 0, fmt.Errorf("core: vApp %d not owned by org %s", req.VApp, req.Org)
		}
		id, vaName := va.ID, va.Name
		tasks := dir.DeleteVApp(p, va, req.Org)
		for _, t := range tasks {
			if t.Err != nil {
				err = t.Err
				break
			}
		}
		return id, vaName, len(tasks), err
	}
	return inventory.None, "", 0, fmt.Errorf("core: unknown op kind %q", req.Kind)
}

func (f *Frontend) markInjected(id int64, queueWaitS float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t := f.tasks[id]; t != nil {
		t.QueueWaitS = queueWaitS
	}
	f.qwaitSum += queueWaitS
	f.injected++
}

func (f *Frontend) markRunning(id int64, v sim.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t := f.tasks[id]; t != nil && t.State == TaskQueued {
		t.State = TaskRunning
		t.StartV = v
	}
}

func (f *Frontend) markDone(id int64, v sim.Time, vapp inventory.ID, name string, mgmtTasks int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tasks[id]
	if t == nil || t.State.Terminal() {
		return
	}
	t.EndV = v
	t.MgmtTasks = mgmtTasks
	if vapp != inventory.None {
		t.VApp, t.VAppName = vapp, name
	}
	if err != nil {
		t.State = TaskError
		t.Error = err.Error()
		f.stats.Failed++
	} else {
		t.State = TaskSuccess
		f.stats.Completed++
	}
}

func (f *Frontend) markRejected(id int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tasks[id]
	if t == nil || t.State.Terminal() {
		return
	}
	t.State = TaskError
	t.Error = "server stopping: request rejected before injection"
	f.stats.Failed++
}

// Task returns a snapshot of the handle with the given ID.
func (f *Frontend) Task(id int64) (TaskInfo, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tasks[id]
	if t == nil {
		return TaskInfo{}, false
	}
	return *t, true
}

// Tasks returns snapshots of every handle in submission order.
func (f *Frontend) Tasks() []TaskInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TaskInfo, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, *f.tasks[id])
	}
	return out
}

// Stats returns the façade's counters.
func (f *Frontend) Stats() FrontendStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.InFlight = s.Submitted - s.Completed - s.Failed
	s.QueueWaitSumS = f.qwaitSum
	if f.injected > 0 {
		s.QueueWaitMeanS = f.qwaitSum / float64(f.injected)
	}
	s.injected = f.injected
	return s
}

// OrgView takes a consistent, org-scoped inventory snapshot through the
// driver's synchronous read path. It reports false for unknown orgs or
// once the driver has stopped.
func (f *Frontend) OrgView(org string) (OrgView, bool) {
	if !f.orgSet[org] {
		return OrgView{}, false
	}
	view := OrgView{Name: org}
	ok := f.drv.Do(func(env *sim.Env) {
		inv := f.cloud.Inventory()
		dir := f.cloud.Director()
		view.QuotaVMs = dir.Config().OrgQuotaVMs
		view.LiveVMs = dir.OrgLiveVMs(org)
		for _, id := range inv.VApps() {
			va := inv.VApp(id)
			if va == nil || va.OrgName != org {
				continue
			}
			view.VApps = append(view.VApps, vappView(inv, va))
		}
	})
	return view, ok
}

// VApp returns an org-scoped view of one vApp; false when it does not
// exist, is not owned by org, or the driver has stopped.
func (f *Frontend) VApp(org string, id inventory.ID) (VAppView, bool) {
	var view VAppView
	found := false
	ok := f.drv.Do(func(env *sim.Env) {
		inv := f.cloud.Inventory()
		va := inv.VApp(id)
		if va == nil || va.OrgName != org {
			return
		}
		view = vappView(inv, va)
		found = true
	})
	return view, ok && found
}

func vappView(inv *inventory.Inventory, va *inventory.VApp) VAppView {
	v := VAppView{ID: va.ID, Name: va.Name, Org: va.OrgName, VMs: len(va.VMs)}
	for _, id := range va.VMs {
		if vm := inv.VM(id); vm != nil && vm.State == inventory.VMPoweredOn {
			v.PoweredOn++
		}
	}
	return v
}

// Provider aggregates provider-vDC capacity across the installation. It
// reports false once the driver has stopped.
func (f *Frontend) Provider() (ProviderView, bool) {
	view := ProviderView{
		PacedRatio:   f.drv.Ratio(),
		OrgCount:     len(f.orgs),
		TemplateList: f.Catalog(),
	}
	ok := f.drv.Do(func(env *sim.Env) {
		inv := f.cloud.Inventory()
		view.VirtualNowS = env.Now()
		view.ShardCount = f.cloud.Plane().ShardCount()
		for _, id := range inv.Hosts() {
			h := inv.Host(id)
			if h == nil {
				continue
			}
			view.Hosts++
			view.CPUMHz += h.CPUMHz
			view.UsedCPUMHz += h.UsedCPUMHz
			view.MemMB += h.MemMB
			view.UsedMemMB += h.UsedMemMB
		}
		for _, id := range inv.Datastores() {
			ds := inv.Datastore(id)
			if ds == nil {
				continue
			}
			view.Datastores++
			view.CapacityGB += ds.CapacityGB
			view.UsedGB += ds.UsedGB
		}
		view.VMs = len(inv.VMs())
		view.VApps = len(inv.VApps())
	})
	return view, ok
}
