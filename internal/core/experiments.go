package core

// This file and experiments2.go implement the reconstructed evaluation
// suite E1..E12 (see DESIGN.md for the experiment index). Each experiment
// is a pure function of its parameter struct: it builds fresh Cloud
// instances, drives them, and returns a structured result that renders as
// the paper-style table or figure. The benchmarks in bench_test.go and
// cmd/mcpbench both call these.

import (
	"fmt"
	"io"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/metrics"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/plane"
	"cloudmcp/internal/reconcile"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/stats"
	"cloudmcp/internal/sweep"
	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

// Hour and Day are convenient horizons in seconds.
const (
	Hour = 3600.0
	Day  = 86400.0
)

// profiles returns the three workload profiles every characterization
// experiment compares.
func profiles() []workload.Profile {
	return []workload.Profile{workload.CloudA(), workload.CloudB(), workload.ClassicDC()}
}

// runProfileTrace runs one profile on a fresh default cloud and returns
// the trace.
func runProfileTrace(seed int64, pr workload.Profile, horizon float64) ([]trace.Record, workload.Stats, error) {
	c, err := New(DefaultConfig(seed))
	if err != nil {
		return nil, workload.Stats{}, err
	}
	st, err := c.RunProfile(pr, horizon)
	if err != nil {
		return nil, workload.Stats{}, err
	}
	return c.Records(), st, nil
}

// ---------------------------------------------------------------------
// E1 — operation mix per environment (paper: management-operation table).

// E1Params configures the op-mix characterization.
type E1Params struct {
	Seed     int64
	HorizonS float64 // default 2 simulated days
}

// E1Result holds the per-profile operation mixes.
type E1Result struct {
	Horizon  float64
	Profiles []string
	Mix      map[string][]analysis.MixRow
	Total    map[string]int
}

// RunE1 runs each profile on a fresh cloud and tabulates the mix.
func RunE1(p E1Params) (*E1Result, error) {
	if p.HorizonS == 0 {
		p.HorizonS = 2 * Day
	}
	res := &E1Result{Horizon: p.HorizonS, Mix: map[string][]analysis.MixRow{}, Total: map[string]int{}}
	for _, pr := range profiles() {
		recs, _, err := runProfileTrace(p.Seed, pr, p.HorizonS)
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", pr.Name, err)
		}
		res.Profiles = append(res.Profiles, pr.Name)
		res.Mix[pr.Name] = analysis.OpMix(recs)
		res.Total[pr.Name] = len(recs)
	}
	return res, nil
}

// Table renders the mix as one table with a count and share column per
// profile.
func (r *E1Result) Table() *report.Table {
	headers := []string{"operation"}
	for _, p := range r.Profiles {
		headers = append(headers, p+" n", p+" %")
	}
	t := report.NewTable(fmt.Sprintf("E1: management-operation mix over %.0f h", r.Horizon/Hour), headers...)
	for _, k := range ops.Kinds() {
		row := []any{k.String()}
		any := false
		for _, p := range r.Profiles {
			found := false
			for _, m := range r.Mix[p] {
				if m.Kind == k.String() {
					row = append(row, m.Count, 100*m.Frac)
					found = true
					any = any || m.Count > 0
					break
				}
			}
			if !found {
				row = append(row, 0, 0.0)
			}
		}
		if any {
			t.AddRow(row...)
		}
	}
	total := []any{"total"}
	for _, p := range r.Profiles {
		total = append(total, r.Total[p], 100.0)
	}
	t.AddRow(total...)
	return t
}

// Render writes the experiment's artifact.
func (r *E1Result) Render(w io.Writer) error { return r.Table().Render(w) }

// ---------------------------------------------------------------------
// E2 — operations per hour over time (paper: arrival-rate figure).

// E2Params configures the arrival-series figure.
type E2Params struct {
	Seed     int64
	HorizonS float64 // default 2 days
	BinS     float64 // default 1 hour
}

// E2Profile is one profile's series and burstiness.
type E2Profile struct {
	Name       string
	Series     []float64 // ops per bin
	Burstiness analysis.Burstiness
}

// E2Result holds the per-profile arrival series.
type E2Result struct {
	BinS     float64
	Profiles []E2Profile
}

// RunE2 produces the operations-per-hour series for each profile.
func RunE2(p E2Params) (*E2Result, error) {
	if p.HorizonS == 0 {
		p.HorizonS = 2 * Day
	}
	if p.BinS == 0 {
		p.BinS = Hour
	}
	res := &E2Result{BinS: p.BinS}
	for _, pr := range profiles() {
		recs, _, err := runProfileTrace(p.Seed, pr, p.HorizonS)
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", pr.Name, err)
		}
		ts := analysis.RateSeries(recs, p.BinS, "")
		res.Profiles = append(res.Profiles, E2Profile{
			Name:   pr.Name,
			Series: ts.Bins(),
			// Burstiness at finer bins: session batches and burst trains
			// land within minutes, which hour-wide bins would smear out.
			Burstiness: analysis.MeasureBurstiness(recs, p.BinS/6, ""),
		})
	}
	return res, nil
}

// Render writes one series block per profile plus a burstiness table.
func (r *E2Result) Render(w io.Writer) error {
	for _, p := range r.Profiles {
		s := report.NewSeries(fmt.Sprintf("E2: %s management ops per %.0f min", p.Name, r.BinS/60), "bin", "ops")
		for i, y := range p.Series {
			s.Add(float64(i), y)
		}
		if err := s.Render(w); err != nil {
			return err
		}
	}
	t := report.NewTable("E2: burstiness", "profile", "mean/bin", "peak/bin", "peak:mean", "dispersion")
	for _, p := range r.Profiles {
		t.AddRow(p.Name, p.Burstiness.MeanPerBin, p.Burstiness.PeakPerBin,
			p.Burstiness.PeakToMean, p.Burstiness.IndexOfDispersion)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E3 — interarrival-time CDF of provisioning requests (paper figure).

// E3Params configures the interarrival CDF.
type E3Params struct {
	Seed     int64
	HorizonS float64 // default 2 days
	Points   int     // CDF resolution, default 20
}

// E3Profile is one profile's deploy-interarrival CDF.
type E3Profile struct {
	Name string
	CDF  []stats.CDFPoint
	Mean float64
	CV   float64
}

// E3Result holds the CDFs.
type E3Result struct{ Profiles []E3Profile }

// RunE3 computes deploy interarrival CDFs per profile.
func RunE3(p E3Params) (*E3Result, error) {
	if p.HorizonS == 0 {
		p.HorizonS = 2 * Day
	}
	if p.Points == 0 {
		p.Points = 20
	}
	res := &E3Result{}
	for _, pr := range profiles() {
		recs, _, err := runProfileTrace(p.Seed, pr, p.HorizonS)
		if err != nil {
			return nil, fmt.Errorf("E3 %s: %w", pr.Name, err)
		}
		ia := analysis.Interarrivals(recs, ops.KindDeploy.String())
		res.Profiles = append(res.Profiles, E3Profile{
			Name: pr.Name,
			CDF:  ia.CDF(p.Points),
			Mean: ia.Mean(),
			CV:   ia.CV(),
		})
	}
	return res, nil
}

// Render writes a CDF table per profile.
func (r *E3Result) Render(w io.Writer) error {
	for _, p := range r.Profiles {
		t := report.NewTable(
			fmt.Sprintf("E3: %s deploy interarrival CDF (mean %.1fs, cv %.2f)", p.Name, p.Mean, p.CV),
			"F", "interarrival s")
		for _, pt := range p.CDF {
			t.AddRow(pt.F, pt.X)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// E4 — per-operation latency with layer breakdown, full vs linked
// provisioning (paper table).

// E4Params configures the latency-breakdown table.
type E4Params struct {
	Seed     int64
	HorizonS float64 // default 12 hours
}

// E4Mode holds one provisioning mode's per-kind rows.
type E4Mode struct {
	Mode string
	Rows []analysis.LatencyRow
}

// E4Result holds both modes.
type E4Result struct{ Modes []E4Mode }

// RunE4 runs CloudA under full-clone and linked-clone provisioning and
// tabulates per-kind latency breakdowns.
func RunE4(p E4Params) (*E4Result, error) {
	if p.HorizonS == 0 {
		p.HorizonS = 12 * Hour
	}
	res := &E4Result{}
	for _, fast := range []bool{false, true} {
		cfg := DefaultConfig(p.Seed)
		cfg.Director.FastProvisioning = fast
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := c.RunProfile(workload.CloudA(), p.HorizonS); err != nil {
			return nil, err
		}
		mode := ops.FullClone.String()
		if fast {
			mode = ops.LinkedClone.String()
		}
		res.Modes = append(res.Modes, E4Mode{Mode: mode, Rows: analysis.LatencyByKind(c.Records())})
	}
	return res, nil
}

// Render writes one breakdown table per mode.
func (r *E4Result) Render(w io.Writer) error {
	for _, m := range r.Modes {
		t := report.NewTable("E4: latency breakdown, provisioning="+m.Mode,
			"operation", "n", "mean s", "p95 s", "queue", "cell", "mgmt", "db", "host", "data", "ctl%")
		for _, row := range m.Rows {
			b := row.MeanBreakdown
			t.AddRow(row.Kind, row.Count, row.MeanLatency, row.P95Latency,
				b.Queue, b.Cell, b.Mgmt, b.DB, b.Host, b.Data,
				100*analysis.ControlShare(b))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// DeployControlShare returns the mean control share of successful deploys
// for the given mode, for EXPERIMENTS.md assertions.
func (r *E4Result) DeployControlShare(mode string) (float64, bool) {
	for _, m := range r.Modes {
		if m.Mode != mode {
			continue
		}
		for _, row := range m.Rows {
			if row.Kind == ops.KindDeploy.String() {
				return analysis.ControlShare(row.MeanBreakdown), true
			}
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// E5 — deploy latency vs template disk size, full vs linked (paper
// figure: why fast provisioning removes the data plane from the deploy
// path).

// E5Params configures the clone-latency sweep.
type E5Params struct {
	Seed    int64
	SizesGB []float64 // default 1..64
	Workers int       // sweep worker pool; 0 = GOMAXPROCS
}

// E5Point is one sweep point.
type E5Point struct {
	SizeGB  float64
	FullS   float64
	LinkedS float64
}

// E5Result holds the sweep.
type E5Result struct{ Points []E5Point }

// RunE5 measures a single uncontended deploy per size and mode. The
// sizes run in parallel through the sweep engine; each point is a pure
// function of (seed, size), so the table is identical for any Workers.
func RunE5(p E5Params) (*E5Result, error) {
	if len(p.SizesGB) == 0 {
		p.SizesGB = []float64{1, 2, 4, 8, 16, 32, 64}
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(p.SizesGB),
		func(sp sweep.Point) (E5Point, error) {
			size := p.SizesGB[sp.Index]
			pt := E5Point{SizeGB: size}
			for _, fast := range []bool{false, true} {
				cfg := DefaultConfig(p.Seed)
				cfg.Topology.TemplateDiskGB = size
				cfg.Director.FastProvisioning = fast
				c, err := New(cfg)
				if err != nil {
					return pt, err
				}
				inv := c.Inventory()
				tpl := inv.Template(inv.Templates()[0])
				var latency float64
				c.Go("deploy", func(proc *sim.Proc) {
					resD := c.Director().DeployVApp(proc, "org", tpl, 1, false)
					if resD.Err == nil && len(resD.Tasks) > 0 {
						latency = resD.Tasks[0].Latency()
					}
				})
				c.Run(100 * Hour)
				if fast {
					pt.LinkedS = latency
				} else {
					pt.FullS = latency
				}
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	return &E5Result{Points: points}, nil
}

// Render writes the sweep as a table plus a ratio column.
func (r *E5Result) Render(w io.Writer) error {
	t := report.NewTable("E5: deploy latency vs template size",
		"size GB", "full s", "linked s", "full/linked")
	for _, pt := range r.Points {
		ratio := 0.0
		if pt.LinkedS > 0 {
			ratio = pt.FullS / pt.LinkedS
		}
		t.AddRow(pt.SizeGB, pt.FullS, pt.LinkedS, ratio)
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------
// E6 — provisioning throughput vs offered concurrency (the paper's
// headline figure: with linked clones the control plane, not the
// datastore, is what saturates).

// E6Params configures the throughput sweep.
type E6Params struct {
	Seed        int64
	Concurrency []int   // default 1..128
	HorizonS    float64 // per point, default 30 min
	WarmupS     float64 // excluded from measurement, default 10% of horizon
	Workers     int     // sweep worker pool; 0 = GOMAXPROCS
}

// E6Point is one sweep point.
type E6Point struct {
	Concurrency    int
	FullPerHour    float64
	LinkedPerHour  float64
	FullMeanLatS   float64
	LinkedMeanLatS float64
}

// E6Result holds the sweep.
type E6Result struct{ Points []E6Point }

// ClosedLoopResult summarizes one closed-loop deploy→destroy run over
// its post-warmup window.
type ClosedLoopResult struct {
	DeploysPerHour float64
	MeanLatencyS   float64
	P95LatencyS    float64
	P99LatencyS    float64
	Deploys        int // successful deploys in the window
	Errors         int // failed deploys in the window
	// Retry and Goodput account for fault-injection activity over the
	// whole run (not just the post-warmup window); both are zero/nil
	// without cfg.Faults.
	Retry   mgmt.RetryStats
	Goodput []mgmt.GoodputRow
	// Reconcile carries per-controller reconciliation activity over the
	// whole run; nil without cfg.Reconcile.
	Reconcile []reconcile.Stats
	// Metrics is the end-of-run per-layer snapshot, nil unless
	// cfg.Metrics was set. It never affects the numbers above.
	Metrics *metrics.Snapshot
	// DBUtil is the management database's mean utilization: the shared
	// instance's on a shared-DB plane, the mean across instances on a
	// per-shard plane.
	DBUtil float64
	// DRSMoves and RebalanceMoves count the migrations the balancer and
	// the storage rebalancer issued over the whole run — the churn a
	// policy choice induces, scored by the E21 tournament.
	DRSMoves       int64
	RebalanceMoves int64
	// Plane reports the run's management-plane topology and cross-shard
	// coordination counters (Shards == 1, zero counters on the default
	// single-shard plane).
	Plane plane.Stats
}

// RunClosedLoop drives `clients` closed-loop deploy→destroy workers
// against a cloud built from cfg for horizon seconds and summarizes the
// post-warmup window. E6/E10/E11 and cmd/mcpsweep all measure through
// this harness; the think-time stream derives from cfg.Seed only, so the
// result is a pure function of (cfg, clients, horizon, warmup).
func RunClosedLoop(cfg Config, clients int, horizonS, warmupS float64) (ClosedLoopResult, error) {
	c, err := New(cfg)
	if err != nil {
		return ClosedLoopResult{}, err
	}
	return runClosedLoopOn(c, clients, horizonS, warmupS), nil
}

// runClosedLoopOn is RunClosedLoop against an already-built cloud, for
// callers that prepare the inventory first (E19 prepopulates up to a
// million VMs before the workload starts). The cloud must be freshly
// built and not yet run.
func runClosedLoopOn(c *Cloud, clients int, horizonS, warmupS float64) ClosedLoopResult {
	cfg := c.cfg
	inv := c.Inventory()
	tpl := inv.Template(inv.Templates()[0])
	// The label predates the harness being shared beyond E6; it is part
	// of the reproducibility contract (changing it changes every
	// closed-loop artifact), so it stays.
	stream := rng.Derive(cfg.Seed, "e6")
	for i := 0; i < clients; i++ {
		org := fmt.Sprintf("org%d", i%8)
		c.Go(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
			for p.Now() < horizonS {
				res := c.Director().DeployVApp(p, org, tpl, 1, false)
				if res.Err == nil {
					c.Director().DeleteVApp(p, res.VApp, org)
				} else if res.VApp != nil && inv.VApp(res.VApp.ID) != nil {
					c.Director().DeleteVApp(p, res.VApp, org)
				}
				// Tiny think time decorrelates workers.
				p.Sleep(stream.Uniform(0.1, 0.5))
			}
		})
	}
	c.Run(horizonS)
	recs := analysis.FilterTime(c.Records(), warmupS, horizonS)
	all := analysis.FilterKind(recs, ops.KindDeploy.String())
	deploys := analysis.FilterOK(all)
	lat := analysis.LatencySample(deploys, "")
	res := ClosedLoopResult{
		DeploysPerHour: float64(len(deploys)) / (horizonS - warmupS) * Hour,
		MeanLatencyS:   lat.Mean(),
		P95LatencyS:    lat.Percentile(95),
		P99LatencyS:    lat.Percentile(99),
		Deploys:        len(deploys),
		Errors:         len(all) - len(deploys),
		Metrics:        c.MetricsSnapshot(),
		DBUtil:         c.DBUtilization(),
		DRSMoves:       c.DRS().Stats().Moves,
		RebalanceMoves: c.Director().Stats().RebalanceMoves,
		Plane:          c.Plane().Stats(),
	}
	if cfg.Faults != nil {
		res.Retry = c.Plane().RetryStats()
		res.Goodput = c.Plane().Goodput()
	}
	if cfg.Reconcile != nil {
		res.Reconcile = c.ReconcileStats()
	}
	return res
}

// closedLoopDeploys runs `workers` closed-loop deploy→destroy clients for
// horizon seconds and returns (deploys/hour, mean deploy latency) over
// the post-warmup window.
func closedLoopDeploys(seed int64, fast bool, workers int, horizon, warmup float64, mutate func(*Config)) (float64, float64, error) {
	cfg := DefaultConfig(seed)
	cfg.Director.FastProvisioning = fast
	cfg.Director.RebalanceThreshold = 0 // isolate provisioning
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := RunClosedLoop(cfg, workers, horizon, warmup)
	return r.DeploysPerHour, r.MeanLatencyS, err
}

// RunE6 sweeps closed-loop concurrency for both provisioning modes; the
// concurrency points fan across the sweep engine's worker pool.
func RunE6(p E6Params) (*E6Result, error) {
	if len(p.Concurrency) == 0 {
		p.Concurrency = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	if p.WarmupS == 0 {
		p.WarmupS = p.HorizonS / 10
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(p.Concurrency),
		func(sp sweep.Point) (E6Point, error) {
			n := p.Concurrency[sp.Index]
			pt := E6Point{Concurrency: n}
			var err error
			pt.FullPerHour, pt.FullMeanLatS, err = closedLoopDeploys(p.Seed, false, n, p.HorizonS, p.WarmupS, nil)
			if err != nil {
				return pt, err
			}
			pt.LinkedPerHour, pt.LinkedMeanLatS, err = closedLoopDeploys(p.Seed, true, n, p.HorizonS, p.WarmupS, nil)
			return pt, err
		})
	if err != nil {
		return nil, err
	}
	return &E6Result{Points: points}, nil
}

// Render writes the sweep table and the two throughput series.
func (r *E6Result) Render(w io.Writer) error {
	t := report.NewTable("E6: provisioning throughput vs concurrency",
		"workers", "full/h", "linked/h", "linked:full", "full lat s", "linked lat s")
	for _, pt := range r.Points {
		ratio := 0.0
		if pt.FullPerHour > 0 {
			ratio = pt.LinkedPerHour / pt.FullPerHour
		}
		t.AddRow(pt.Concurrency, pt.FullPerHour, pt.LinkedPerHour, ratio,
			pt.FullMeanLatS, pt.LinkedMeanLatS)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for _, mode := range []string{"full", "linked"} {
		s := report.NewSeries("E6: "+mode+" deploys/hour", "workers", "deploys/h")
		for _, pt := range r.Points {
			if mode == "full" {
				s.Add(float64(pt.Concurrency), pt.FullPerHour)
			} else {
				s.Add(float64(pt.Concurrency), pt.LinkedPerHour)
			}
		}
		if err := s.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// PeakThroughput returns the max deploys/hour seen for a mode.
func (r *E6Result) PeakThroughput(linked bool) float64 {
	best := 0.0
	for _, pt := range r.Points {
		v := pt.FullPerHour
		if linked {
			v = pt.LinkedPerHour
		}
		if v > best {
			best = v
		}
	}
	return best
}
