package core

// Extension experiment E16: HA restart storms. A host failure converts
// instantly into a burst of management operations (re-registrations and
// power-ons); recovery time therefore depends on how busy the control
// plane already is — the failure-induced analogue of E14.

import (
	"fmt"
	"io"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/ha"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/report"
	"cloudmcp/internal/sim"
)

// E16Params configures the restart-storm experiment.
type E16Params struct {
	Seed         int64
	HostVMs      int       // powered-on VMs on the failing host, default 16
	RatesPerHour []float64 // background deploy load, default {0, 2000, 6000}
	Restarts     int       // HA restart concurrency, default 32
	HorizonS     float64   // default 30 min (failure at 1/3)
	// Faults injects control-plane faults into every run (E17's "storm
	// on an already-faulty control plane" leg); nil keeps E16 as-is.
	Faults *faults.Config
}

// E16Point is one load level's recovery outcome.
type E16Point struct {
	RatePerHour float64
	RecoveryS   float64
	Restarted   int
	Unplaced    int
	DeploysDone int
}

// E16Result holds the experiment.
type E16Result struct{ Points []E16Point }

// RunE16 fails a loaded host at each background rate and measures the
// restart storm.
func RunE16(p E16Params) (*E16Result, error) {
	if p.HostVMs == 0 {
		p.HostVMs = 16
	}
	if len(p.RatesPerHour) == 0 {
		p.RatesPerHour = []float64{0, 2000, 6000}
	}
	if p.Restarts == 0 {
		p.Restarts = 32
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	res := &E16Result{}
	for _, rate := range p.RatesPerHour {
		rate := rate
		cfg := DefaultConfig(p.Seed)
		cfg.Director.RebalanceThreshold = 0
		cfg.Mgmt.Threads = 4 // paper-era manager, as in E7/E14
		cfg.Mgmt.DBConns = 2
		cfg.Faults = p.Faults
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		inv := c.Inventory()
		tpl := inv.Template(inv.Templates()[0])
		target := inv.Host(inv.Hosts()[0])
		eng, err := ha.New(c.Env(), c.Manager(), ha.Config{MaxConcurrentRestarts: p.Restarts})
		if err != nil {
			return nil, err
		}

		c.Go("prep", func(pp *sim.Proc) {
			for i := 0; i < p.HostVMs; i++ {
				ds := inv.Datastore(inv.Datastores()[i%len(inv.Datastores())])
				vm, task := c.Manager().DeployVM(pp, fmt.Sprintf("res%d", i), tpl, target, ds, ops.LinkedClone, mgmt.ReqCtx{Org: "resident"})
				if task.Err != nil {
					continue
				}
				c.Manager().PowerOn(pp, vm, mgmt.ReqCtx{Org: "resident"})
			}
		})
		c.Run(p.HorizonS / 100)
		if rate > 0 {
			if _, err := attachOpenLoop(c, p.Seed, rate, p.HorizonS, 600); err != nil {
				return nil, err
			}
		}
		var fo *ha.Failover
		c.Go("failure", func(fp *sim.Proc) {
			// Fail deep into the run, once the background stream has
			// pushed the manager into its saturated regime.
			fp.Sleep(p.HorizonS * 2 / 3)
			fo = eng.FailHost(fp, target)
		})
		c.Run(p.HorizonS * 4)
		if fo == nil {
			return nil, fmt.Errorf("E16 rate %.0f: failover never completed", rate)
		}
		deploys := analysis.FilterOK(analysis.FilterKind(c.Records(), ops.KindDeploy.String()))
		res.Points = append(res.Points, E16Point{
			RatePerHour: rate,
			RecoveryS:   fo.Duration(),
			Restarted:   fo.Restarted,
			Unplaced:    fo.Unplaced,
			DeploysDone: len(deploys),
		})
	}
	return res, nil
}

// Render writes the restart-storm table.
func (r *E16Result) Render(w io.Writer) error {
	t := report.NewTable("E16: HA restart-storm recovery time vs background load",
		"bg req/h", "recovery s", "restarted", "unplaced", "bg deploys done")
	for _, pt := range r.Points {
		t.AddRow(pt.RatePerHour, pt.RecoveryS, pt.Restarted, pt.Unplaced, pt.DeploysDone)
	}
	return t.Render(w)
}
