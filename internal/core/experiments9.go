package core

// Extension experiment E21: the policy tournament. Every decision
// point the management plane makes — placement scoring, DRS move
// selection, HA failover targeting, retry shaping, admission limits —
// is pluggable (package policy), and E21 races named policy sets on
// the sweep engine: a closed-loop provisioning grid over scenario ×
// fault-rate for each policy, plus a failover-storm leg per policy,
// scored on goodput, p99, and induced migration churn. The ranking
// normalizes goodput within each scenario × fault-rate group (so no
// single regime dominates by scale) and is byte-identical across
// worker counts, like every other artifact.
//
// E21 is an opt-in extension like E17..E20: reachable through
// RunExperiment / mcpbench -only E21, never part of the default
// E1..E16 suite, so existing artifacts stay byte-identical.

import (
	"fmt"
	"io"
	"sort"

	"cloudmcp/internal/analysis"
	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/drs"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/ha"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/report"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/sweep"
)

// E21Params configures the policy tournament.
type E21Params struct {
	Seed       int64
	Policies   []string  // named policy sets to race, default {default, binpack, spread, band, adaptive-retry}
	FaultRates []float64 // fault-rate grid, default {0, 0.15}
	Scenarios  []string  // scenario grid, default {steady, skewed}
	Clients    int       // closed-loop foreground workers, default 32
	HorizonS   float64   // per grid point, default 30 min
	WarmupS    float64   // default HorizonS/10
	Workers    int       // sweep pool bound (0 = GOMAXPROCS)
	StormVMs   int       // failover-leg fleet size, default 48
}

// E21Cell is one grid point's outcome.
type E21Cell struct {
	Policy    string
	Scenario  string
	FaultRate float64

	GoodPerHour float64 // successful foreground deploys/hour
	P99S        float64 // foreground deploy p99 latency
	Moves       int64   // DRS + rebalancer migrations issued
	Errors      int     // failed deploys in the window
	GiveUps     int64   // tasks abandoned by the retry policy
}

// E21Failover is one policy's failover-storm leg: a fleet host fails
// mid-run and the set's failover policy replaces the dead capacity
// while foreground provisioning continues.
type E21Failover struct {
	Policy    string
	Affected  int // VMs on the failed host
	Restarted int // VMs HA brought back elsewhere
	Unplaced  int // restarts no surviving host could take

	PostGoodPerHour float64 // foreground deploys/hour after the failure
	PostP99S        float64
}

// E21Result holds the grid, the failover legs, and the final ranking.
type E21Result struct {
	Cells     []E21Cell
	Failovers []E21Failover
	Ranking   []report.PolicyRow
}

// e21Scenario builds the cloud config for one (policy, scenario,
// fault-rate) grid point. Both scenarios run DRS hot (10% threshold,
// 2-minute checks) so move policies differ. "steady" de-bottlenecks
// the data plane — the decision policies, not the spindles, are the
// constraint — and disables the rebalancer; "skewed" keeps the default
// spindles and adds sticky-org placement, so tenants pile onto their
// pinned datastores, storage contention is real, and the rebalancer
// (on a 5-minute check) cleans up behind them.
func e21Scenario(seed int64, pol, scenario string, rate float64) (Config, error) {
	cfg := DefaultConfig(seed)
	cfg.Policy = pol
	cfg.Director.FastProvisioning = true
	cfg.Director.MaxChainLen = 1 << 20
	cfg.DRS = drs.Config{Threshold: 0.10, CheckS: 120, Batch: 8}
	switch scenario {
	case "steady":
		cfg.Topology.DatastoreMBps = 4000
		cfg.Director.RebalanceThreshold = 0
	case "skewed":
		cfg.Director.Placement = clouddir.PlaceStickyOrg
		cfg.Director.RebalanceCheckS = 300
	default:
		return Config{}, fmt.Errorf("unknown scenario %q (want steady or skewed)", scenario)
	}
	if rate > 0 {
		fc := faults.Preset(rate)
		cfg.Faults = &fc
	}
	return cfg, nil
}

// RunE21 races the policy sets over the scenario × fault-rate grid,
// runs one failover-storm leg per policy, and ranks policies by mean
// normalized goodput.
func RunE21(p E21Params) (*E21Result, error) {
	if len(p.Policies) == 0 {
		p.Policies = []string{"default", "binpack", "spread", "band", "adaptive-retry"}
	}
	if len(p.FaultRates) == 0 {
		p.FaultRates = []float64{0, 0.15}
	}
	if len(p.Scenarios) == 0 {
		p.Scenarios = []string{"steady", "skewed"}
	}
	if p.Clients == 0 {
		p.Clients = 32
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	if p.WarmupS == 0 {
		p.WarmupS = p.HorizonS / 10
	}
	if p.StormVMs == 0 {
		p.StormVMs = 48
	}

	type combo struct {
		pol, scenario string
		rate          float64
	}
	var combos []combo
	for _, pol := range p.Policies {
		for _, sc := range p.Scenarios {
			for _, r := range p.FaultRates {
				combos = append(combos, combo{pol: pol, scenario: sc, rate: r})
			}
		}
	}
	cells, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(combos),
		func(sp sweep.Point) (E21Cell, error) {
			cb := combos[sp.Index]
			cfg, err := e21Scenario(p.Seed, cb.pol, cb.scenario, cb.rate)
			if err != nil {
				return E21Cell{}, err
			}
			r, err := RunClosedLoop(cfg, p.Clients, p.HorizonS, p.WarmupS)
			if err != nil {
				return E21Cell{}, fmt.Errorf("E21 %s/%s/%g: %w", cb.pol, cb.scenario, cb.rate, err)
			}
			return E21Cell{
				Policy: cb.pol, Scenario: cb.scenario, FaultRate: cb.rate,
				GoodPerHour: r.DeploysPerHour, P99S: r.P99LatencyS,
				Moves:  r.DRSMoves + r.RebalanceMoves,
				Errors: r.Errors, GiveUps: r.Retry.GiveUps,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	failovers, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(p.Policies),
		func(sp sweep.Point) (E21Failover, error) {
			fo, err := e21FailoverStorm(p, p.Policies[sp.Index])
			if err != nil {
				return E21Failover{}, fmt.Errorf("E21 failover %s: %w", p.Policies[sp.Index], err)
			}
			return fo, nil
		})
	if err != nil {
		return nil, err
	}
	res := &E21Result{Cells: cells, Failovers: failovers}
	res.Ranking = e21Rank(p.Policies, cells)
	return res, nil
}

// e21Rank scores each policy by its mean goodput normalized within
// every scenario × fault-rate group (group winner = 1.0), so easy
// regimes cannot drown hard ones. Rank order: score desc, name asc —
// a total order, so the ranking is identical at any worker count.
func e21Rank(policies []string, cells []E21Cell) []report.PolicyRow {
	type groupKey struct {
		scenario string
		rate     float64
	}
	groupMax := make(map[groupKey]float64)
	for _, c := range cells {
		k := groupKey{c.Scenario, c.FaultRate}
		if c.GoodPerHour > groupMax[k] {
			groupMax[k] = c.GoodPerHour
		}
	}
	rows := make([]report.PolicyRow, 0, len(policies))
	for _, pol := range policies {
		var row report.PolicyRow
		row.Policy = pol
		var n int
		for _, c := range cells {
			if c.Policy != pol {
				continue
			}
			n++
			if m := groupMax[groupKey{c.Scenario, c.FaultRate}]; m > 0 {
				row.Score += c.GoodPerHour / m
			}
			row.GoodPerHour += c.GoodPerHour
			row.P99S += c.P99S
			row.Moves += float64(c.Moves)
			row.Errors += int64(c.Errors)
		}
		if n > 0 {
			row.Score /= float64(n)
			row.GoodPerHour /= float64(n)
			row.P99S /= float64(n)
			row.Moves /= float64(n)
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Score != rows[j].Score {
			return rows[i].Score > rows[j].Score
		}
		return rows[i].Policy < rows[j].Policy
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows
}

// e21FailoverStorm deploys a powered-on fleet under one policy set,
// runs foreground deploy→destroy workers throughout, fails the
// busiest host at the half-way mark through an HA engine wired to the
// set's failover policy, and measures foreground service after the
// restart storm.
func e21FailoverStorm(p E21Params, pol string) (E21Failover, error) {
	cfg, err := e21Scenario(p.Seed, pol, "steady", 0)
	if err != nil {
		return E21Failover{}, err
	}
	c, err := New(cfg)
	if err != nil {
		return E21Failover{}, err
	}
	hcfg := ha.DefaultConfig()
	hcfg.Failover = c.Policy().Failover
	eng, err := ha.New(c.Env(), c.Manager(), hcfg)
	if err != nil {
		return E21Failover{}, err
	}
	inv := c.Inventory()
	tpl := inv.Template(inv.Templates()[0])
	H := p.HorizonS
	fo := E21Failover{Policy: pol}

	// The protected fleet: 8 vApps of powered-on VMs deployed up front.
	per := (p.StormVMs + 7) / 8
	for i := 0; i < 8; i++ {
		i := i
		c.Go(fmt.Sprintf("fleet%d", i), func(fp *sim.Proc) {
			c.Director().DeployVApp(fp, fmt.Sprintf("fleet%d", i), tpl, per, true)
		})
	}
	// Foreground provisioning, measured after the failure.
	stream := rng.Derive(p.Seed, "e21.storm")
	for i := 0; i < 16; i++ {
		org := fmt.Sprintf("org%d", i%8)
		c.Go(fmt.Sprintf("fg%d", i), func(wp *sim.Proc) {
			for wp.Now() < H {
				res := c.Director().DeployVApp(wp, org, tpl, 1, false)
				if res.Err == nil {
					c.Director().DeleteVApp(wp, res.VApp, org)
				} else if res.VApp != nil && inv.VApp(res.VApp.ID) != nil {
					c.Director().DeleteVApp(wp, res.VApp, org)
				}
				wp.Sleep(stream.Uniform(0.1, 0.5))
			}
		})
	}
	// The failure: crash the busiest host at the half-way mark.
	c.Go("failer", func(fp *sim.Proc) {
		fp.Sleep(H / 2)
		var busiest *inventory.Host
		for _, id := range inv.Hosts() {
			h := inv.Host(id)
			if h.InService() && (busiest == nil || len(h.VMs) > len(busiest.VMs)) {
				busiest = h
			}
		}
		if busiest == nil {
			return
		}
		rec := eng.FailHost(fp, busiest)
		fo.Affected = rec.Affected
		fo.Restarted = rec.Restarted
		fo.Unplaced = rec.Unplaced
	})
	c.Run(H)

	recs := analysis.FilterTime(c.Records(), H/2, H)
	deploys := analysis.FilterOK(analysis.FilterKind(recs, ops.KindDeploy.String()))
	lat := analysis.LatencySample(deploys, "")
	fo.PostGoodPerHour = float64(len(deploys)) / (H / 2) * Hour
	fo.PostP99S = lat.Percentile(99)
	return fo, nil
}

// Render writes the tournament grid, the failover legs, and the
// ranking table.
func (r *E21Result) Render(w io.Writer) error {
	gt := report.NewTable("E21: policy tournament over scenario x fault rate",
		"policy", "scenario", "fault rate", "good/h", "p99 s", "moves", "errors", "giveups")
	for _, c := range r.Cells {
		gt.AddRow(c.Policy, c.Scenario, c.FaultRate, c.GoodPerHour, c.P99S, c.Moves, c.Errors, c.GiveUps)
	}
	if err := gt.Render(w); err != nil {
		return err
	}
	ft := report.NewTable("E21: failover storm per policy (steady scenario, busiest host fails at H/2)",
		"policy", "affected", "restarted", "unplaced", "post good/h", "post p99 s")
	for _, f := range r.Failovers {
		ft.AddRow(f.Policy, f.Affected, f.Restarted, f.Unplaced, f.PostGoodPerHour, f.PostP99S)
	}
	if err := ft.Render(w); err != nil {
		return err
	}
	if rt := report.PolicyTable("E21: ranking by mean normalized goodput", r.Ranking); rt != nil {
		return rt.Render(w)
	}
	return nil
}
