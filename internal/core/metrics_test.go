package core

import (
	"bytes"
	"reflect"
	"testing"

	"cloudmcp/internal/trace"
	"cloudmcp/internal/workload"
)

// The metrics registry is pull-based and must be invisible to the
// simulation: the same seed must produce byte-identical trace artifacts
// with metrics on and off.
func TestMetricsDoNotPerturbProfileRun(t *testing.T) {
	run := func(withMetrics bool) []byte {
		cfg := DefaultConfig(3)
		cfg.Metrics = withMetrics
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunProfile(workload.CloudA(), 2*Hour); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, c.Records()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	off := run(false)
	on := run(true)
	if !bytes.Equal(off, on) {
		t.Fatalf("trace differs with metrics enabled: %d vs %d bytes", len(off), len(on))
	}
}

func TestMetricsDoNotPerturbClosedLoop(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Director.FastProvisioning = true
	off, err := RunClosedLoop(cfg, 8, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = true
	on, err := RunClosedLoop(cfg, 8, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if on.Metrics == nil {
		t.Fatal("cfg.Metrics did not produce a snapshot")
	}
	if off.Metrics != nil {
		t.Fatal("metrics-off run produced a snapshot")
	}
	snap := on.Metrics
	on.Metrics = nil
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("results differ with metrics enabled:\n on=%+v\noff=%+v", on, off)
	}

	// The snapshot must cover every layer the default stack builds.
	layers := map[string]bool{}
	for _, r := range snap.Resources {
		layers[r.Layer] = true
	}
	for _, want := range []string{"mgmt", "clouddir", "host", "storage"} {
		if !layers[want] {
			t.Fatalf("snapshot missing layer %q (have %v)", want, layers)
		}
	}
	if snap.AtS != 600 {
		t.Fatalf("snapshot at t=%v, want 600", snap.AtS)
	}
	if len(snap.TopByUtilization(3)) == 0 {
		t.Fatal("no resources to rank")
	}
}
