package core

// The experiment registry: one table of (name, default params) shared by
// cmd/mcpbench -only, RunAll, and anything else that wants "the suite".
// Before this existed the per-experiment default horizons were
// copy-pasted between mcpbench's runOne switch and RunAll's step list and
// had already drifted in the docs; now they live here once.

import (
	"fmt"
	"io"
	"time"

	"cloudmcp/internal/sweep"
)

// Renderable is any experiment result that can write its artifact.
type Renderable interface{ Render(io.Writer) error }

// Experiment is one named entry of the suite. Run is a pure function of
// (seed, scale): scale 1.0 is the full paper horizon, 0.1 the quick/CI
// horizon. workers bounds the experiment's internal sweep pool (0 =
// GOMAXPROCS); experiments without an internal sweep ignore it.
type Experiment struct {
	Name string
	Run  func(seed int64, scale float64, workers int) (Renderable, error)
}

// Experiments returns the full suite in E1..E16 render order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE1(E1Params{Seed: seed, HorizonS: 2 * Day * scale})
		}},
		{"E2", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE2(E2Params{Seed: seed, HorizonS: 2 * Day * scale})
		}},
		{"E3", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE3(E3Params{Seed: seed, HorizonS: 2 * Day * scale})
		}},
		{"E4", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE4(E4Params{Seed: seed, HorizonS: 12 * Hour * scale})
		}},
		{"E5", func(seed int64, _ float64, workers int) (Renderable, error) {
			return RunE5(E5Params{Seed: seed, Workers: workers})
		}},
		{"E6", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE6(E6Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers})
		}},
		{"E7", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE7(E7Params{Seed: seed, HorizonS: Hour * scale, Workers: workers})
		}},
		{"E8", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE8(E8Params{Seed: seed, HorizonS: 2 * Hour * scale})
		}},
		{"E9", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE9(E9Params{Seed: seed, HorizonS: Hour * scale, Workers: workers})
		}},
		{"E10", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE10(E10Params{Seed: seed, HorizonS: 1800 * scale, SweepWorkers: workers})
		}},
		{"E11", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE11(E11Params{Seed: seed, HorizonS: 1800 * scale, SweepWorkers: workers})
		}},
		{"E12", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE12(E12Params{Seed: seed, HorizonS: 1800 * scale})
		}},
		{"E13", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE13(E13Params{Seed: seed, HorizonS: 1800 * scale, SweepWorkers: workers})
		}},
		{"E14", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE14(E14Params{Seed: seed, HorizonS: 1800 * scale})
		}},
		{"E15", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE15(E15Params{Seed: seed, RecordS: 2 * Hour * scale})
		}},
		{"E16", func(seed int64, scale float64, _ int) (Renderable, error) {
			return RunE16(E16Params{Seed: seed, HorizonS: 1800 * scale})
		}},
	}
}

// Extensions returns opt-in experiments that are not part of the
// default suite. E17 enables fault injection, E18 reshapes the
// management-plane topology, E19 scales the inventory itself, E20
// turns on the reconciliation plane, E21 races policy sets, and E23
// measures the lane kernel's wall-clock behavior (so its artifact is
// not byte-reproducible); folding any of them into RunAll would grow
// or destabilize the default artifact. They run via RunExperiment
// (mcpbench -only E17/E18/E19/E20/E21/E23), mcpbench -faults,
// mcpbench -shards, mcpbench -scale, or mcpbench -reconcile instead.
func Extensions() []Experiment {
	return []Experiment{
		{"E17", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE17(E17Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers})
		}},
		{"E18", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE18(E18Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers})
		}},
		{"E19", func(seed int64, scale float64, workers int) (Renderable, error) {
			pp := E19Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers}
			if scale < 1 {
				// Quick/CI runs climb the two smallest rungs only.
				pp.Sizes = []int{1000, 10000}
			}
			return RunE19(pp)
		}},
		{"E20", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE20(E20Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers})
		}},
		{"E21", func(seed int64, scale float64, workers int) (Renderable, error) {
			return RunE21(E21Params{Seed: seed, HorizonS: 1800 * scale, Workers: workers})
		}},
		{"E23", func(seed int64, scale float64, _ int) (Renderable, error) {
			// Cells are wall-clock timed and run serially; the sweep
			// pool stays out of it so each cell owns the machine.
			p := E23Params{Seed: seed, HorizonS: 1800 * scale}
			if scale < 1 {
				// Quick/CI runs: small grid, short horizon, fewer clients.
				p.Shards = []int{4}
				p.Lanes = []int{1, 4}
				p.Clients = 32
			}
			return RunE23(p)
		}},
	}
}

// registered holds extensions contributed from outside this package.
// Packages above core in the import graph (internal/api's E22) register
// here so RunExperiment can dispatch to them without core importing
// them — core cannot, without a cycle.
var registered []Experiment

// RegisterExtension adds an externally defined experiment to the
// registry. Call from an init function or before RunExperiment; later
// registrations with an existing name override the earlier entry.
func RegisterExtension(e Experiment) {
	for i := range registered {
		if registered[i].Name == e.Name {
			registered[i] = e
			return
		}
	}
	registered = append(registered, e)
}

// RunExperiment runs one experiment by name at its registry-default
// horizon.
func RunExperiment(name string, seed int64, quick bool, workers int) (Renderable, error) {
	scale := 1.0
	if quick {
		scale = 0.1
	}
	all := append(Experiments(), Extensions()...)
	all = append(all, registered...)
	for _, e := range all {
		if e.Name == name {
			r, err := e.Run(seed, scale, workers)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.Name, err)
			}
			return r, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (want E1..E23, or a registered extension)", name)
}

// RunAllOptions tunes the parallel suite run.
type RunAllOptions struct {
	// Workers bounds both the across-experiment pool and each
	// experiment's internal sweep pool; 0 = GOMAXPROCS. Workers=1
	// reproduces a fully serial run — with output identical to any
	// other worker count.
	Workers int
	// Progress, when non-nil, is called after each experiment finishes.
	Progress func(done, total int, elapsed time.Duration)
}

// RunAll runs every experiment ("quick" ≈ CI-speed scale 0.1, else full
// paper horizons) and renders each to w in E1..E16 order. Experiments
// execute concurrently across the sweep engine's pool; rendering waits
// for all of them, so output is byte-identical to a serial run.
func RunAll(w io.Writer, seed int64, quick bool) error {
	return RunAllWith(w, seed, quick, RunAllOptions{})
}

// RunAllWith is RunAll with an explicit worker count and progress hook.
func RunAllWith(w io.Writer, seed int64, quick bool, opts RunAllOptions) error {
	scale := 1.0
	if quick {
		scale = 0.1
	}
	steps := Experiments()
	var onProgress func(sweep.Progress)
	if opts.Progress != nil {
		onProgress = func(p sweep.Progress) { opts.Progress(p.Done, p.Total, p.Elapsed) }
	}
	results, err := sweep.Run(sweep.Options{MasterSeed: seed, Workers: opts.Workers, OnProgress: onProgress},
		len(steps), func(pt sweep.Point) (Renderable, error) {
			s := steps[pt.Index]
			r, err := s.Run(seed, scale, opts.Workers)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name, err)
			}
			return r, nil
		})
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := r.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
