package core

// Extension experiment E19: inventory scale ladder. The paper's
// management-plane measurements top out at thousands of VMs per
// management server; E19 asks what the control plane looks like when the
// *inventory itself* is the large dimension. Each cell prepopulates the
// cloud with N registered VMs (10^3 up to 10^6), then runs the standard
// closed-loop deploy→destroy workload against it. With the indexed
// placement path, admission and placement stay O(log n) in inventory
// size, so deploy throughput and p99 should be flat across the ladder —
// any knee is a real management-plane cost (database rows, host-agent
// fan-out), not a placement-scan artifact. Two database modes bound the
// commit cost: the default aggregate connection pool and a WAL database
// with row-level group commit (mgmtdb.Config.GroupRows), the batching
// lever for commit storms at million-entity scale.
//
// Like E17/E18/E20, E19 is opt-in — reachable via RunExperiment
// (mcpbench -only E19) or mcpbench -scale — and never part of the
// default E1..E16 suite, so existing artifacts stay byte-identical.
// The artifact carries only deterministic simulation outputs; wall-clock
// placement costs are measured separately by mcpbench -bench-inventory
// (BENCH_inventory.json).

import (
	"fmt"
	"io"
	"math"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmtdb"
	"cloudmcp/internal/report"
	"cloudmcp/internal/sweep"
)

// E19Params configures the scale ladder.
type E19Params struct {
	Seed     int64
	Sizes    []int   // prepopulated-VM grid, default {1e3, 1e4, 1e5}
	Shards   []int   // plane shard counts per size, default {1, 4}
	Clients  int     // closed-loop workers, default 64
	HorizonS float64 // per closed-loop point, default 30 min
	WarmupS  float64 // default HorizonS/10
	Workers  int     // sweep pool bound (0 = GOMAXPROCS)
}

// E19Cell is one (size, shards, DB mode) closed-loop outcome.
type E19Cell struct {
	GoodPerHour float64 // successful deploys/hour in the window
	P99S        float64 // deploy p99 latency in the window
	DBUtil      float64 // management DB utilization
}

// E19Point is one (size, shard count) rung: both DB modes' outcomes.
type E19Point struct {
	Size   int // prepopulated VMs
	Shards int

	Pool    E19Cell // default aggregate connection-pool database
	Grouped E19Cell // WAL database with row-level group commit
}

// E19Result holds the ladder.
type E19Result struct{ Points []E19Point }

// e19Topology scales the default topology to hold size prepopulated VMs
// at half memory occupancy (128 of 256 VM-slots per host) and a quarter
// disk occupancy, leaving ample headroom for the closed-loop workload.
// Datastore bandwidth and the linked-clone chain cap are de-bottlenecked
// the same way E18 does, so the management plane — not the data plane —
// is what the ladder measures.
func e19Topology(size int) Topology {
	t := DefaultTopology()
	if h := (size + 127) / 128; h > t.Hosts {
		t.Hosts = h
	}
	if d := (size + 4999) / 5000; d > t.Datastores {
		t.Datastores = d
	}
	t.DatastoreMBps = 4000
	return t
}

// PrepopulateVMs registers n powered-off VMs directly in the inventory —
// round-robin across hosts and datastores, 2 vCPUs / 2 GB / 1 GB disk
// each — modeling a long-lived installation whose inventory dwarfs its
// operation rate. It bypasses the management plane (no tasks, no DB
// writes, no simulated time) so the closed-loop measurement starts from
// a populated inventory rather than spending the horizon building one.
// Call before Run. Deterministic: depends only on n and the topology.
func (c *Cloud) PrepopulateVMs(n int) error {
	inv := c.inv
	hosts := inv.Hosts()
	dss := inv.Datastores()
	for i := 0; i < n; i++ {
		host := inv.Host(hosts[i%len(hosts)])
		ds := inv.Datastore(dss[i%len(dss)])
		vm, err := inv.AddVM(fmt.Sprintf("prevm%07d", i), host, ds, 2, 2048, 1.0)
		if err != nil {
			return fmt.Errorf("core: prepopulate VM %d/%d: %w", i, n, err)
		}
		vm.State = inventory.VMPoweredOff
	}
	return nil
}

// RunE19 climbs the inventory ladder: each (size, shards) rung
// prepopulates a scaled cloud and runs the closed loop under both
// database modes.
func RunE19(p E19Params) (*E19Result, error) {
	if len(p.Sizes) == 0 {
		p.Sizes = []int{1000, 10000, 100000}
	}
	if len(p.Shards) == 0 {
		p.Shards = []int{1, 4}
	}
	if p.Clients == 0 {
		p.Clients = 64
	}
	if p.HorizonS == 0 {
		p.HorizonS = 30 * 60
	}
	if p.WarmupS == 0 {
		p.WarmupS = p.HorizonS / 10
	}
	type rung struct{ size, shards int }
	var grid []rung
	for _, size := range p.Sizes {
		for _, shards := range p.Shards {
			grid = append(grid, rung{size, shards})
		}
	}
	points, err := sweep.Run(sweep.Options{MasterSeed: p.Seed, Workers: p.Workers}, len(grid),
		func(sp sweep.Point) (E19Point, error) {
			r := grid[sp.Index]
			pt := E19Point{Size: r.size, Shards: r.shards}
			for _, grouped := range []bool{false, true} {
				cfg := DefaultConfig(p.Seed)
				cfg.Topology = e19Topology(r.size)
				cfg.Director.FastProvisioning = true
				cfg.Director.RebalanceThreshold = 0 // isolate provisioning
				cfg.Director.MaxChainLen = 1 << 20
				cfg.Plane.Shards = r.shards
				if grouped {
					db := mgmtdb.DefaultConfig()
					db.GroupRows = true
					cfg.Mgmt.Database = &db
				}
				c, err := New(cfg)
				if err != nil {
					return pt, fmt.Errorf("E19 size=%d shards=%d grouped=%v: %w", r.size, r.shards, grouped, err)
				}
				if err := c.PrepopulateVMs(r.size); err != nil {
					return pt, err
				}
				res := runClosedLoopOn(c, p.Clients, p.HorizonS, p.WarmupS)
				cell := E19Cell{GoodPerHour: res.DeploysPerHour, P99S: res.P99LatencyS, DBUtil: res.DBUtil}
				if grouped {
					pt.Grouped = cell
				} else {
					pt.Pool = cell
				}
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	return &E19Result{Points: points}, nil
}

// Render writes the ladder table plus the headline flatness ratio: how
// much deploy throughput degrades from the smallest to the largest rung
// at each shard count (1.0 = perfectly flat).
func (r *E19Result) Render(w io.Writer) error {
	t := report.NewTable("E19: closed-loop provisioning vs inventory size",
		"VMs", "shards", "pool good/h", "pool p99 s", "pool db util",
		"grouped good/h", "grouped p99 s", "grouped db util")
	for _, pt := range r.Points {
		t.AddRow(pt.Size, pt.Shards,
			pt.Pool.GoodPerHour, pt.Pool.P99S, pt.Pool.DBUtil,
			pt.Grouped.GoodPerHour, pt.Grouped.P99S, pt.Grouped.DBUtil)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	// Flatness: largest-rung throughput over smallest-rung throughput,
	// per shard count.
	first := make(map[int]E19Point)
	last := make(map[int]E19Point)
	var shardOrder []int
	for _, pt := range r.Points {
		if _, ok := first[pt.Shards]; !ok {
			first[pt.Shards] = pt
			shardOrder = append(shardOrder, pt.Shards)
		}
		last[pt.Shards] = pt
	}
	ft := report.NewTable("E19: throughput retention across the ladder",
		"shards", "from VMs", "to VMs", "pool retention", "grouped retention")
	for _, s := range shardOrder {
		f, l := first[s], last[s]
		ratio := func(a, b float64) float64 {
			if a == 0 {
				return math.NaN()
			}
			return b / a
		}
		ft.AddRow(s, f.Size, l.Size,
			ratio(f.Pool.GoodPerHour, l.Pool.GoodPerHour),
			ratio(f.Grouped.GoodPerHour, l.Grouped.GoodPerHour))
	}
	return ft.Render(w)
}
