package core

// Regression tests for the inventory-ladder determinism contract: E19's
// artifact must be byte-identical for any sweep worker count, and the
// prepopulated inventory must never leak wall-clock or map-order
// nondeterminism into the simulated results.

import (
	"strings"
	"testing"
)

func e19Quick(workers int) E19Params {
	return E19Params{Seed: 1, Sizes: []int{1000, 4000}, Shards: []int{1, 2},
		Clients: 24, HorizonS: 120, Workers: workers}
}

func renderE19(t *testing.T, p E19Params) string {
	t.Helper()
	r, err := RunE19(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestE19ArtifactIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := renderE19(t, e19Quick(1))
	parallel := renderE19(t, e19Quick(8))
	if serial != parallel {
		t.Fatalf("E19 artifact differs between 1 and 8 sweep workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	for _, want := range []string{
		"E19: closed-loop provisioning vs inventory size",
		"E19: throughput retention across the ladder",
	} {
		if !strings.Contains(serial, want) {
			t.Fatalf("artifact missing %q:\n%s", want, serial)
		}
	}
}

func TestPrepopulateVMsDeterministicAndCounted(t *testing.T) {
	build := func() *Cloud {
		cfg := DefaultConfig(1)
		cfg.Topology = e19Topology(4000)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PrepopulateVMs(4000); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := build(), build()
	if got := a.Inventory().Count().VMs; got != 4000 {
		t.Fatalf("prepopulated VMs = %d, want 4000", got)
	}
	av, bv := a.Inventory().VMs(), b.Inventory().VMs()
	if len(av) != len(bv) {
		t.Fatalf("VM counts differ: %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("VM order diverged at %d: %v vs %v", i, av[i], bv[i])
		}
	}
	if err := a.Inventory().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestE19TopologyScalesWithSize(t *testing.T) {
	small := e19Topology(1000)
	if small.Hosts != 32 || small.Datastores != 8 {
		t.Fatalf("small rung reshaped the default: %+v", small)
	}
	big := e19Topology(1000000)
	if big.Hosts != 7813 || big.Datastores != 200 {
		t.Fatalf("1e6 rung topology: hosts=%d datastores=%d, want 7813/200", big.Hosts, big.Datastores)
	}
	if big.DatastoreMBps != 4000 {
		t.Fatalf("data plane not de-bottlenecked: %v MB/s", big.DatastoreMBps)
	}
}
