package core

// Regression tests for the lane-partitioned kernel's identity contract
// at the full-system level: an E18-class artifact must be byte-identical
// at every lane × barrier-worker count, and reproducible run-to-run
// (run-twice-and-diff) at each combination.

import (
	"strings"
	"testing"
)

func e18Lanes(lanes, laneWorkers int) E18Params {
	p := e18Quick(1)
	p.Lanes = lanes
	p.LaneWorkers = laneWorkers
	return p
}

func TestLaneArtifactsIdenticalAcrossCounts(t *testing.T) {
	base := renderE18(t, e18Lanes(1, 1))
	for _, lanes := range []int{2, 4} {
		for _, workers := range []int{1, 8} {
			got := renderE18(t, e18Lanes(lanes, workers))
			if got != base {
				t.Fatalf("E18 artifact differs at lanes=%d laneWorkers=%d:\n--- lanes=1 ---\n%s\n--- lanes=%d ---\n%s", lanes, workers, base, lanes, got)
			}
			// Run-twice-and-diff at the same combination: the laned
			// kernel must also be reproducible against itself.
			if again := renderE18(t, e18Lanes(lanes, workers)); again != got {
				t.Fatalf("E18 artifact not reproducible at lanes=%d laneWorkers=%d", lanes, workers)
			}
		}
	}
}

// The closed loop must report identical results whether lanes come from
// a JSON scenario or the programmatic config, and a lanes value below
// zero must be rejected at the wire format.
func TestLanesConfigWire(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"lanes": 4, "laneWorkers": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Lanes != 4 || cfg.LaneWorkers != 2 {
		t.Fatalf("lanes wire: %+v", cfg)
	}
	if _, err := LoadConfig(strings.NewReader(`{"lanes": -1}`)); err == nil {
		t.Fatal("negative lanes accepted")
	}
}
