// Package hostsim models the per-host management agents. Every hypervisor
// host runs an agent that executes the host-side portion of management
// operations (create/register VM, power transitions, snapshot plumbing)
// with a bounded number of concurrent operation slots — a real and often
// binding control-plane limit when many deploys land on the same host.
package hostsim

import (
	"fmt"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/sim"
)

// DefaultSlots is the default number of concurrent host operations an
// agent admits, matching typical host-agent throttles.
const DefaultSlots = 8

// Agent is the management agent of one host.
type Agent struct {
	hostID inventory.ID
	slots  *sim.Resource

	ops      int64
	busyTime float64
	waitTime float64
}

// NewAgent creates an agent with the given concurrency (slots > 0). Its
// slot occupancy registers with the environment's metrics registry (if
// any) under the "host" layer.
func NewAgent(env *sim.Env, hostID inventory.ID, name string, slots int) *Agent {
	if slots <= 0 {
		panic(fmt.Sprintf("hostsim: agent %q slots %d", name, slots))
	}
	a := &Agent{hostID: hostID, slots: sim.NewResource(env, "hostagent:"+name, slots)}
	a.slots.RegisterMetrics("host")
	return a
}

// HostID returns the host this agent serves.
func (a *Agent) HostID() inventory.ID { return a.hostID }

// Exec runs seconds of host-side work under one operation slot, blocking p
// for queueing plus service. It returns (waited, served) seconds.
func (a *Agent) Exec(p *sim.Proc, seconds float64) (waited, served float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("hostsim: negative exec %v", seconds))
	}
	t0 := p.Now()
	a.slots.Acquire(p, 1)
	waited = p.Now() - t0
	p.Sleep(seconds)
	a.slots.Release(1)
	a.ops++
	a.busyTime += seconds
	a.waitTime += waited
	return waited, seconds
}

// Stats summarizes the agent's activity.
type Stats struct {
	HostID   inventory.ID
	Ops      int64
	MeanWait float64
	Busy     float64 // total service seconds
	Util     sim.ResourceStats
}

// Stats returns accumulated statistics.
func (a *Agent) Stats() Stats {
	s := Stats{HostID: a.hostID, Ops: a.ops, Busy: a.busyTime, Util: a.slots.Stats()}
	if a.ops > 0 {
		s.MeanWait = a.waitTime / float64(a.ops)
	}
	return s
}

// Registry maps hosts to their agents.
type Registry struct {
	env    *sim.Env
	slots  int
	agents map[inventory.ID]*Agent
}

// NewRegistry creates agents (with the given slot count) for every host in
// inv. Hosts added later get agents on first use via Ensure.
func NewRegistry(env *sim.Env, inv *inventory.Inventory, slots int) *Registry {
	r := &Registry{env: env, slots: slots, agents: make(map[inventory.ID]*Agent)}
	for _, id := range inv.Hosts() {
		h := inv.Host(id)
		r.agents[id] = NewAgent(env, id, h.Name, slots)
	}
	return r
}

// Agent returns the agent for host id, or nil.
func (r *Registry) Agent(id inventory.ID) *Agent { return r.agents[id] }

// Ensure returns the agent for host id, creating one if needed.
func (r *Registry) Ensure(id inventory.ID, name string) *Agent {
	if a, ok := r.agents[id]; ok {
		return a
	}
	a := NewAgent(r.env, id, name, r.slots)
	r.agents[id] = a
	return a
}

// All returns every agent, keyed by host ID.
func (r *Registry) All() map[inventory.ID]*Agent { return r.agents }
