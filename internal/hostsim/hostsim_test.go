package hostsim

import (
	"math"
	"testing"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/sim"
)

func TestExecService(t *testing.T) {
	env := sim.NewEnv()
	a := NewAgent(env, 1, "h0", 2)
	var wait, serve float64
	env.Go("op", func(p *sim.Proc) {
		wait, serve = a.Exec(p, 3)
	})
	end := env.Run(sim.Forever)
	if wait != 0 || serve != 3 || end != 3 {
		t.Fatalf("wait=%v serve=%v end=%v", wait, serve, end)
	}
}

func TestSlotsBoundConcurrency(t *testing.T) {
	// 4 ops of 10 s on a 2-slot agent: makespan 20 s; later ops wait 10 s.
	env := sim.NewEnv()
	a := NewAgent(env, 1, "h0", 2)
	var waits []float64
	for i := 0; i < 4; i++ {
		env.Go("op", func(p *sim.Proc) {
			w, _ := a.Exec(p, 10)
			waits = append(waits, w)
		})
	}
	end := env.Run(sim.Forever)
	if end != 20 {
		t.Fatalf("makespan = %v", end)
	}
	nonzero := 0
	for _, w := range waits {
		if w > 0 {
			nonzero++
			if math.Abs(w-10) > 1e-9 {
				t.Fatalf("wait = %v, want 10", w)
			}
		}
	}
	if nonzero != 2 {
		t.Fatalf("%d ops waited, want 2", nonzero)
	}
}

func TestNegativeExecPanics(t *testing.T) {
	env := sim.NewEnv()
	a := NewAgent(env, 1, "h0", 1)
	panicked := false
	env.Go("op", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		a.Exec(p, -1)
	})
	env.Run(sim.Forever)
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestAgentStats(t *testing.T) {
	env := sim.NewEnv()
	a := NewAgent(env, 7, "h0", 1)
	for i := 0; i < 2; i++ {
		env.Go("op", func(p *sim.Proc) { a.Exec(p, 5) })
	}
	env.Run(sim.Forever)
	s := a.Stats()
	if s.HostID != 7 || s.Ops != 2 || s.Busy != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.MeanWait-2.5) > 1e-9 { // second op waited 5 s
		t.Fatalf("mean wait = %v", s.MeanWait)
	}
	if s.Util.Utilization < 0.99 {
		t.Fatalf("util = %v", s.Util.Utilization)
	}
}

func TestRegistry(t *testing.T) {
	env := sim.NewEnv()
	inv := inventory.New()
	dc := inv.AddDatacenter("dc")
	cl := inv.AddCluster(dc, "cl")
	h0 := inv.AddHost(cl, "h0", 10000, 8192)
	h1 := inv.AddHost(cl, "h1", 10000, 8192)
	r := NewRegistry(env, inv, 4)
	if r.Agent(h0.ID) == nil || r.Agent(h1.ID) == nil {
		t.Fatal("agents missing")
	}
	if r.Agent(999) != nil {
		t.Fatal("phantom agent")
	}
	if len(r.All()) != 2 {
		t.Fatalf("all = %d", len(r.All()))
	}
	// Ensure creates on demand and is idempotent.
	a := r.Ensure(42, "late")
	if a == nil || r.Ensure(42, "late") != a {
		t.Fatal("ensure not idempotent")
	}
}
