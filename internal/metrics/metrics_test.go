package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("l", "r", "m")
	g := r.Gauge("l", "r", "m")
	tw := r.TimeWeighted("l", "r", "m")
	h := r.Histogram("l", "r", "m")
	if c != nil || g != nil || tw != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// Every instrument method must be a no-op on a nil receiver.
	c.Add(3)
	c.Inc()
	g.Set(7)
	tw.Update(1, 2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || tw.Mean(10) != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	r.ResourceFunc("l", "r", nil)
	r.ScalarFunc("l", "r", "m", nil)
	if s := r.Snapshot(10); s != nil {
		t.Fatalf("nil registry snapshot = %+v, want nil", s)
	}
}

func TestNilInstrumentOpsAllocationFree(t *testing.T) {
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled-path instrument ops allocate %v per run, want 0", allocs)
	}
}

func TestInstrumentLookupIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("mgmt", "tasks", "completed")
	b := r.Counter("mgmt", "tasks", "completed")
	if a != b {
		t.Fatal("same key must return the same counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("aliased counter reads %d, want 2", b.Value())
	}
	if r.Counter("mgmt", "tasks", "errors") == a {
		t.Fatal("distinct keys must return distinct counters")
	}
}

func TestTimeWeightedMeanAndMax(t *testing.T) {
	r := NewRegistry()
	tw := r.TimeWeighted("l", "r", "depth")
	tw.Update(0, 2)  // depth 2 over [0,10)
	tw.Update(10, 6) // depth 6 over [10,20)
	s := r.Snapshot(20)
	var mean, max float64
	for _, row := range s.Scalars {
		switch row.Metric {
		case "depth.mean":
			mean = row.Value
		case "depth.max":
			max = row.Value
		}
	}
	if math.Abs(mean-4) > 1e-9 {
		t.Fatalf("mean = %v, want 4", mean)
	}
	if max != 6 {
		t.Fatalf("max = %v, want 6", max)
	}
}

func TestSnapshotOrderingDeterministic(t *testing.T) {
	build := func(order []string) *Snapshot {
		r := NewRegistry()
		for _, name := range order {
			n := name
			r.ScalarFunc("layer", n, "v", func() float64 { return 1 })
		}
		r.ResourceFunc("b", "res", func() ResourceSample { return ResourceSample{Capacity: 1} })
		r.ResourceFunc("a", "res", func() ResourceSample { return ResourceSample{Capacity: 2} })
		return r.Snapshot(1)
	}
	s1 := build([]string{"x", "y", "z"})
	s2 := build([]string{"z", "x", "y"})
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot depends on registration order:\n%s\n%s", j1, j2)
	}
}

func TestZeroCountTimingRendersNA(t *testing.T) {
	r := NewRegistry()
	r.Histogram("mgmt", "tasks", "latency_s") // never observed
	s := r.Snapshot(5)
	if len(s.Timings) != 1 || s.Timings[0].Count != 0 {
		t.Fatalf("timings = %+v", s.Timings)
	}
	if !math.IsNaN(s.Timings[0].P95S) {
		t.Fatalf("zero-count p95 = %v, want NaN", s.Timings[0].P95S)
	}

	var ascii bytes.Buffer
	if err := s.WriteASCII(&ascii); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "n/a") {
		t.Fatalf("ASCII output lacks n/a:\n%s", ascii.String())
	}
	if strings.Contains(ascii.String(), "NaN") {
		t.Fatalf("ASCII output leaks NaN:\n%s", ascii.String())
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatalf("zero-count timing must still encode as JSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	timing := decoded["timings"].([]any)[0].(map[string]any)
	if _, ok := timing["p95_s"]; ok {
		t.Fatalf("zero-count timing JSON should omit percentiles: %v", timing)
	}

	var cs bytes.Buffer
	if err := s.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cs).ReadAll()
	if err != nil {
		t.Fatalf("CSV output must reparse: %v", err)
	}
	foundNA := false
	for _, row := range rows[1:] {
		if row[4] == "n/a" {
			foundNA = true
		}
	}
	if !foundNA {
		t.Fatalf("CSV output lacks n/a rows:\n%s", cs.String())
	}
}

func TestHistogramSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("l", "r", "lat_s")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := r.Snapshot(1)
	tr := s.Timings[0]
	if tr.Count != 100 || tr.MaxS != 100 {
		t.Fatalf("timing = %+v", tr)
	}
	if math.Abs(tr.P50S-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", tr.P50S)
	}
}

func TestTopByUtilizationAndWaitShare(t *testing.T) {
	r := NewRegistry()
	add := func(layer, name string, util, wait float64) {
		r.ResourceFunc(layer, name, func() ResourceSample {
			return ResourceSample{Capacity: 1, Utilization: util, TotalWaitS: wait}
		})
	}
	add("mgmt", "threads", 0.50, 10)
	add("host", "agent0", 0.90, 30)
	add("storage", "ds0", 0.90, 60)
	s := r.Snapshot(100)
	top := s.TopByUtilization(2)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	// Equal utilization ties break by (layer, resource).
	if top[0].Layer != "host" || top[1].Layer != "storage" {
		t.Fatalf("order = %s, %s", top[0].Layer, top[1].Layer)
	}
	if got := s.TotalQueueWaitS(); got != 100 {
		t.Fatalf("total wait = %v, want 100", got)
	}
}

func TestWriteFileFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("l", "r", "m").Add(5)
	s := r.Snapshot(1)
	dir := t.TempDir()
	for _, name := range []string{"snap.json", "snap.csv", "snap.txt"} {
		if err := s.WriteFile(dir + "/" + name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
