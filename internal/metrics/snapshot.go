package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ResourceRow is one contended resource's snapshot.
type ResourceRow struct {
	Layer    string `json:"layer"`
	Resource string `json:"resource"`
	ResourceSample
}

// MarshalJSON flattens the embedded sample so the JSON form is one flat
// object per resource.
func (r ResourceRow) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"layer":          r.Layer,
		"resource":       r.Resource,
		"capacity":       r.Capacity,
		"utilization":    r.Utilization,
		"mean_queue_len": r.MeanQueueLen,
		"max_queue_len":  r.MaxQueueLen,
		"grants":         r.Grants,
		"mean_wait_s":    r.MeanWaitS,
		"total_wait_s":   r.TotalWaitS,
	})
}

// ScalarRow is one counter/gauge/accumulator/probe value.
type ScalarRow struct {
	Layer    string  `json:"layer"`
	Resource string  `json:"resource"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
}

// TimingRow is one latency distribution's summary. Percentile fields are
// NaN when Count is zero (rendered as "n/a", omitted from JSON).
type TimingRow struct {
	Layer    string  `json:"layer"`
	Resource string  `json:"resource"`
	Metric   string  `json:"metric"`
	Count    int64   `json:"count"`
	MeanS    float64 `json:"mean_s"`
	P50S     float64 `json:"p50_s"`
	P95S     float64 `json:"p95_s"`
	MaxS     float64 `json:"max_s"`
}

// MarshalJSON omits the undefined distribution summary of a zero-count
// timing instead of emitting NaN (which encoding/json rejects).
func (t TimingRow) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"layer":    t.Layer,
		"resource": t.Resource,
		"metric":   t.Metric,
		"count":    t.Count,
	}
	if t.Count > 0 {
		m["mean_s"], m["p50_s"], m["p95_s"], m["max_s"] = t.MeanS, t.P50S, t.P95S, t.MaxS
	}
	return json.Marshal(m)
}

// Snapshot is an immutable evaluation of a registry at one virtual time.
type Snapshot struct {
	AtS       float64       `json:"at_s"`
	Resources []ResourceRow `json:"resources,omitempty"`
	Scalars   []ScalarRow   `json:"scalars,omitempty"`
	Timings   []TimingRow   `json:"timings,omitempty"`
}

// TopByUtilization returns the k most-utilized resources, ties broken by
// (layer, resource) so the ranking is deterministic.
func (s *Snapshot) TopByUtilization(k int) []ResourceRow {
	if s == nil {
		return nil
	}
	rows := append([]ResourceRow(nil), s.Resources...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Utilization != rows[j].Utilization {
			return rows[i].Utilization > rows[j].Utilization
		}
		if rows[i].Layer != rows[j].Layer {
			return rows[i].Layer < rows[j].Layer
		}
		return rows[i].Resource < rows[j].Resource
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// TotalQueueWaitS returns the sum of queue-wait seconds across all
// resources — the denominator of each resource's queue-wait share.
func (s *Snapshot) TotalQueueWaitS() float64 {
	if s == nil {
		return 0
	}
	total := 0.0
	for _, r := range s.Resources {
		total += r.TotalWaitS
	}
	return total
}

// fmtVal renders a float compactly, with NaN as "n/a" (the zero-count
// distribution marker).
func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 10000 || av < 0.001:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// writeAligned writes rows as a left-aligned padded table.
func writeAligned(w io.Writer, title string, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(header)
	for _, r := range rows {
		measure(r)
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	line := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteASCII renders the snapshot as plain-text tables: resources (in
// layer order), scalars, and timings.
func (s *Snapshot) WriteASCII(w io.Writer) error {
	if s == nil {
		return nil
	}
	if len(s.Resources) > 0 {
		rows := make([][]string, 0, len(s.Resources))
		for _, r := range s.Resources {
			rows = append(rows, []string{
				r.Layer, r.Resource, strconv.Itoa(r.Capacity),
				fmtVal(r.Utilization), fmtVal(r.MeanQueueLen), strconv.Itoa(r.MaxQueueLen),
				strconv.FormatInt(r.Grants, 10), fmtVal(r.MeanWaitS), fmtVal(r.TotalWaitS),
			})
		}
		title := fmt.Sprintf("Per-layer resource metrics at t=%.0fs", s.AtS)
		if err := writeAligned(w, title,
			[]string{"layer", "resource", "cap", "util", "mean q", "max q", "grants", "mean wait s", "total wait s"}, rows); err != nil {
			return err
		}
	}
	if len(s.Scalars) > 0 {
		rows := make([][]string, 0, len(s.Scalars))
		for _, r := range s.Scalars {
			rows = append(rows, []string{r.Layer, r.Resource, r.Metric, fmtVal(r.Value)})
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := writeAligned(w, "Scalar metrics",
			[]string{"layer", "resource", "metric", "value"}, rows); err != nil {
			return err
		}
	}
	if len(s.Timings) > 0 {
		rows := make([][]string, 0, len(s.Timings))
		for _, r := range s.Timings {
			rows = append(rows, []string{
				r.Layer, r.Resource, r.Metric, strconv.FormatInt(r.Count, 10),
				fmtVal(r.MeanS), fmtVal(r.P50S), fmtVal(r.P95S), fmtVal(r.MaxS),
			})
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := writeAligned(w, "Timing metrics",
			[]string{"layer", "resource", "metric", "n", "mean s", "p50 s", "p95 s", "max s"}, rows); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the snapshot to path, picking the format from the
// extension: .json → indented JSON, .csv → long-form CSV, anything else
// → the ASCII tables. The close error is propagated so a short write
// cannot pass silently.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		err = s.WriteJSON(f)
	case ".csv":
		err = s.WriteCSV(f)
	default:
		err = s.WriteASCII(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteJSON renders the snapshot as one indented JSON object.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV renders the snapshot in long form: one row per (section,
// layer, resource, metric) with a shared header. The flush error is
// checked so a failed writer cannot silently truncate the artifact.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"section", "layer", "resource", "metric", "value", "count"}); err != nil {
		return err
	}
	f := func(v float64) string {
		if math.IsNaN(v) {
			return "n/a"
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	if s != nil {
		for _, r := range s.Resources {
			base := func(metric string, v float64) []string {
				return []string{"resource", r.Layer, r.Resource, metric, f(v), strconv.FormatInt(r.Grants, 10)}
			}
			for _, row := range [][]string{
				base("utilization", r.Utilization),
				base("mean_queue_len", r.MeanQueueLen),
				base("max_queue_len", float64(r.MaxQueueLen)),
				base("mean_wait_s", r.MeanWaitS),
				base("total_wait_s", r.TotalWaitS),
			} {
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
		for _, r := range s.Scalars {
			if err := cw.Write([]string{"scalar", r.Layer, r.Resource, r.Metric, f(r.Value), ""}); err != nil {
				return err
			}
		}
		for _, r := range s.Timings {
			for _, mv := range []struct {
				name string
				v    float64
			}{{"mean_s", r.MeanS}, {"p50_s", r.P50S}, {"p95_s", r.P95S}, {"max_s", r.MaxS}} {
				row := []string{"timing", r.Layer, r.Resource, r.Metric + "." + mv.name, f(mv.v), strconv.FormatInt(r.Count, 10)}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
