// Package metrics is a zero-dependency (standard library plus
// internal/stats) instrumentation registry for the simulated control
// plane: counters, gauges, time-weighted accumulators, latency
// histograms, and pull-style probes over the resources every layer
// already accounts for. Series are keyed by (layer, resource, metric) so
// a snapshot can answer the paper's central question — *which* layer of
// the management control plane saturates first — directly, instead of
// inferring it from end-to-end latency breakdowns.
//
// Two properties are load-bearing:
//
//   - The disabled path is allocation-free: every constructor on a nil
//     *Registry returns a nil instrument, and every instrument method is
//     a nil-receiver no-op, so un-instrumented runs pay one pointer
//     comparison per call site and nothing else.
//   - Metrics observe, they never schedule: probes are only read at
//     Snapshot time and push instruments only record values the model
//     already computed, so enabling metrics cannot perturb virtual-time
//     results.
package metrics

import (
	"math"
	"sort"

	"cloudmcp/internal/stats"
)

// Counter is a monotonically increasing count.
type Counter struct {
	key Key
	n   int64
}

// Add increases the counter by d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc increases the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	key Key
	v   float64
}

// Set records the current value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last value set (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// TimeWeighted accumulates the time integral of a piecewise-constant
// value (occupancy, queue length) over virtual time, yielding its
// time-weighted mean. Callers report each change via Update(now, v).
type TimeWeighted struct {
	key      Key
	lastT    float64
	lastV    float64
	integral float64
	maxV     float64
	started  bool
}

// Update advances the integral to now using the previous value, then
// records v as current. No-op on a nil accumulator; time must not go
// backwards (updates in the past are ignored).
func (t *TimeWeighted) Update(now, v float64) {
	if t == nil {
		return
	}
	if !t.started {
		t.started = true
		t.lastT = now
	}
	if dt := now - t.lastT; dt > 0 {
		t.integral += dt * t.lastV
		t.lastT = now
	}
	t.lastV = v
	if v > t.maxV {
		t.maxV = v
	}
}

// Mean returns the time-weighted mean over [0, now], matching the
// convention of sim.Resource.Stats (0 when nil, unused, or now <= 0).
func (t *TimeWeighted) Mean(now float64) float64 {
	if t == nil || !t.started || now <= 0 {
		return 0
	}
	integral := t.integral
	if now > t.lastT {
		integral += (now - t.lastT) * t.lastV
	}
	return integral / now
}

// Max returns the largest value seen (0 for nil).
func (t *TimeWeighted) Max() float64 {
	if t == nil {
		return 0
	}
	return t.maxV
}

// Histogram collects a latency-style distribution with exact
// percentiles (backed by stats.Sample, matching the repository's
// exact-storage convention).
type Histogram struct {
	key    Key
	sample stats.Sample
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.sample.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.sample.Count()
}

// Key identifies one series: the model layer that owns it, the resource
// within the layer, and the metric name.
type Key struct {
	Layer    string
	Resource string
	Metric   string
}

// ResourceSample is a probe's snapshot of one contended resource: the
// utilization/queueing statistics the bottleneck report ranks. Probes
// adapt sim.ResourceStats, bw.EngineStats, and friends to this form.
type ResourceSample struct {
	Capacity     int     // units of concurrency (0 when not applicable)
	Utilization  float64 // mean fraction of capacity in use
	MeanQueueLen float64 // time-averaged waiter count
	MaxQueueLen  int
	Grants       int64   // completed acquisitions / transfers
	MeanWaitS    float64 // mean seconds queued per grant
	TotalWaitS   float64 // total seconds spent queued (queue-wait share basis)
}

type resourceProbe struct {
	layer, resource string
	fn              func() ResourceSample
}

type scalarProbe struct {
	key Key
	fn  func() float64
}

// Registry holds every registered series. The zero value of *Registry
// (nil) is a valid disabled registry: all constructors return nil
// instruments and Snapshot returns nil. Registries are not safe for
// concurrent use; like the simulation kernel they serve, all access is
// single-threaded per run.
type Registry struct {
	counters  []*Counter
	gauges    []*Gauge
	weighted  []*TimeWeighted
	hists     []*Histogram
	resources []resourceProbe
	scalars   []scalarProbe

	index map[indexKey]int
}

type indexKey struct {
	kind string // "counter", "gauge", ...
	key  Key
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{index: make(map[indexKey]int)} }

// Enabled reports whether the registry collects anything (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

func (r *Registry) lookup(kind string, key Key) (int, bool) {
	i, ok := r.index[indexKey{kind, key}]
	return i, ok
}

func (r *Registry) remember(kind string, key Key, i int) {
	r.index[indexKey{kind, key}] = i
}

// Counter returns the counter for the key, creating it on first use.
// Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(layer, resource, metric string) *Counter {
	if r == nil {
		return nil
	}
	key := Key{layer, resource, metric}
	if i, ok := r.lookup("counter", key); ok {
		return r.counters[i]
	}
	c := &Counter{key: key}
	r.remember("counter", key, len(r.counters))
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the gauge for the key, creating it on first use.
func (r *Registry) Gauge(layer, resource, metric string) *Gauge {
	if r == nil {
		return nil
	}
	key := Key{layer, resource, metric}
	if i, ok := r.lookup("gauge", key); ok {
		return r.gauges[i]
	}
	g := &Gauge{key: key}
	r.remember("gauge", key, len(r.gauges))
	r.gauges = append(r.gauges, g)
	return g
}

// TimeWeighted returns the time-weighted accumulator for the key,
// creating it on first use.
func (r *Registry) TimeWeighted(layer, resource, metric string) *TimeWeighted {
	if r == nil {
		return nil
	}
	key := Key{layer, resource, metric}
	if i, ok := r.lookup("weighted", key); ok {
		return r.weighted[i]
	}
	t := &TimeWeighted{key: key}
	r.remember("weighted", key, len(r.weighted))
	r.weighted = append(r.weighted, t)
	return t
}

// Histogram returns the histogram for the key, creating it on first use.
func (r *Registry) Histogram(layer, resource, metric string) *Histogram {
	if r == nil {
		return nil
	}
	key := Key{layer, resource, metric}
	if i, ok := r.lookup("hist", key); ok {
		return r.hists[i]
	}
	h := &Histogram{key: key}
	r.remember("hist", key, len(r.hists))
	r.hists = append(r.hists, h)
	return h
}

// ResourceFunc registers a pull probe for one contended resource; fn is
// called at Snapshot time only. Registering the same (layer, resource)
// twice replaces the earlier probe. No-op on a nil registry.
func (r *Registry) ResourceFunc(layer, resource string, fn func() ResourceSample) {
	if r == nil {
		return
	}
	key := Key{Layer: layer, Resource: resource}
	if i, ok := r.lookup("resource", key); ok {
		r.resources[i].fn = fn
		return
	}
	r.remember("resource", key, len(r.resources))
	r.resources = append(r.resources, resourceProbe{layer: layer, resource: resource, fn: fn})
}

// ScalarFunc registers a pull probe for one scalar statistic the model
// already accumulates (a count, a mean); fn is called at Snapshot time
// only. Re-registering a key replaces the probe. No-op on a nil registry.
func (r *Registry) ScalarFunc(layer, resource, metric string, fn func() float64) {
	if r == nil {
		return
	}
	key := Key{layer, resource, metric}
	if i, ok := r.lookup("scalar", key); ok {
		r.scalars[i].fn = fn
		return
	}
	r.remember("scalar", key, len(r.scalars))
	r.scalars = append(r.scalars, scalarProbe{key: key, fn: fn})
}

// Snapshot evaluates every probe and instrument at virtual time nowS and
// returns an immutable snapshot. Returns nil on a nil registry.
func (r *Registry) Snapshot(nowS float64) *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{AtS: nowS}
	for _, p := range r.resources {
		sample := p.fn()
		s.Resources = append(s.Resources, ResourceRow{
			Layer:          p.layer,
			Resource:       p.resource,
			ResourceSample: sample,
		})
	}
	for _, p := range r.scalars {
		s.Scalars = append(s.Scalars, ScalarRow{Layer: p.key.Layer, Resource: p.key.Resource, Metric: p.key.Metric, Value: p.fn()})
	}
	for _, c := range r.counters {
		s.Scalars = append(s.Scalars, ScalarRow{Layer: c.key.Layer, Resource: c.key.Resource, Metric: c.key.Metric, Value: float64(c.n)})
	}
	for _, g := range r.gauges {
		s.Scalars = append(s.Scalars, ScalarRow{Layer: g.key.Layer, Resource: g.key.Resource, Metric: g.key.Metric, Value: g.v})
	}
	for _, t := range r.weighted {
		s.Scalars = append(s.Scalars, ScalarRow{Layer: t.key.Layer, Resource: t.key.Resource, Metric: t.key.Metric + ".mean", Value: t.Mean(nowS)})
		s.Scalars = append(s.Scalars, ScalarRow{Layer: t.key.Layer, Resource: t.key.Resource, Metric: t.key.Metric + ".max", Value: t.maxV})
	}
	for _, h := range r.hists {
		row := TimingRow{Layer: h.key.Layer, Resource: h.key.Resource, Metric: h.key.Metric, Count: h.sample.Count()}
		if row.Count > 0 {
			row.MeanS = h.sample.Mean()
			row.P50S = h.sample.Percentile(50)
			row.P95S = h.sample.Percentile(95)
			row.MaxS = h.sample.Max()
		} else {
			// Zero-count distributions have no defined percentiles; NaN
			// marks them so renderers print "n/a" instead of a fake 0.
			row.MeanS, row.P50S, row.P95S, row.MaxS = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		}
		s.Timings = append(s.Timings, row)
	}
	// Sort every section by key so snapshot artifacts are identical no
	// matter what order the layers happened to register in.
	sort.Slice(s.Resources, func(i, j int) bool {
		if s.Resources[i].Layer != s.Resources[j].Layer {
			return s.Resources[i].Layer < s.Resources[j].Layer
		}
		return s.Resources[i].Resource < s.Resources[j].Resource
	})
	scalarKey := func(r ScalarRow) Key { return Key{r.Layer, r.Resource, r.Metric} }
	sort.Slice(s.Scalars, func(i, j int) bool { return keyLess(scalarKey(s.Scalars[i]), scalarKey(s.Scalars[j])) })
	sort.Slice(s.Timings, func(i, j int) bool {
		return keyLess(Key{s.Timings[i].Layer, s.Timings[i].Resource, s.Timings[i].Metric},
			Key{s.Timings[j].Layer, s.Timings[j].Resource, s.Timings[j].Metric})
	})
	return s
}

func keyLess(a, b Key) bool {
	if a.Layer != b.Layer {
		return a.Layer < b.Layer
	}
	if a.Resource != b.Resource {
		return a.Resource < b.Resource
	}
	return a.Metric < b.Metric
}
