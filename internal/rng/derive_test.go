package rng

import (
	"fmt"
	"testing"
)

// Golden values: DeriveSeed's historical outputs for fixed (seed, label)
// pairs. These pin the FNV-1a derivation itself — SeedHasher and every
// cached-prefix optimization must keep reproducing exactly these seeds,
// or every artifact in the repo silently changes.
var deriveGolden = []struct {
	seed  int64
	label string
	want  int64
}{
	{42, "fault:host:1:1", 905418259443008068},
	{42, "fault:db:17:3", 2502797662279492609},
	{42, "fault:net:100:2", -1103909368913001484},
	{42, "fault:storage:-5:1", 6855313081034852700},
	{42, "retry:9:4", 8644708048418715761},
	{-7, "fault:host:0:0", -8030223693146669278},
	{1234567, "fault:db:987654321:12", -4699305703517829662},
}

func TestDeriveSeedGolden(t *testing.T) {
	for _, g := range deriveGolden {
		if got := DeriveSeed(g.seed, g.label); got != g.want {
			t.Errorf("DeriveSeed(%d, %q) = %d, want %d", g.seed, g.label, got, g.want)
		}
	}
}

// SeedHasher must reproduce DeriveSeed bit for bit when the label is
// assembled from pieces — including a prefix state cached once and
// extended many times, which is how the fault injector uses it.
func TestSeedHasherMatchesDeriveSeed(t *testing.T) {
	for _, g := range deriveGolden {
		if got := NewSeedHasher(g.seed).String(g.label).Seed(); got != g.want {
			t.Errorf("SeedHasher whole-label for (%d, %q) = %d, want %d", g.seed, g.label, got, g.want)
		}
	}
	// Piecewise assembly with a cached prefix, the hot-path shape.
	for _, seed := range []int64{0, 42, -7, 1 << 40} {
		prefix := NewSeedHasher(seed).String("fault:host:")
		for _, taskID := range []int64{0, 1, 17, -5, 987654321} {
			for _, attempt := range []int64{0, 1, 2, 12} {
				want := DeriveSeed(seed, fmt.Sprintf("fault:host:%d:%d", taskID, attempt))
				got := prefix.Int(taskID).Byte(':').Int(attempt).Seed()
				if got != want {
					t.Fatalf("cached prefix (seed=%d task=%d attempt=%d) = %d, want %d",
						seed, taskID, attempt, got, want)
				}
			}
		}
	}
}

func TestSeedHasherAllocFree(t *testing.T) {
	prefix := NewSeedHasher(42).String("fault:host:")
	allocs := testing.AllocsPerRun(100, func() {
		_ = prefix.Int(123456).Byte(':').Int(7).Seed()
	})
	if allocs != 0 {
		t.Fatalf("SeedHasher derivation allocates %.1f/op, want 0", allocs)
	}
}

// Reseeder must yield exactly the draw sequence a fresh New(seed) stream
// would, across reseeds and draw types.
func TestReseederMatchesNew(t *testing.T) {
	rs := NewReseeder()
	for _, seed := range []int64{0, 42, -7, 905418259443008068} {
		fresh := New(seed)
		cached := rs.Reseed(seed)
		for i := 0; i < 8; i++ {
			if f, c := fresh.Float64(), cached.Float64(); f != c {
				t.Fatalf("seed %d draw %d: Reseeder %v != New %v", seed, i, c, f)
			}
		}
		if f, c := fresh.LogNormal(2, 1), cached.LogNormal(2, 1); f != c {
			t.Fatalf("seed %d lognormal: Reseeder %v != New %v", seed, c, f)
		}
	}
}

func TestReseederAllocFree(t *testing.T) {
	rs := NewReseeder()
	allocs := testing.AllocsPerRun(100, func() {
		_ = rs.Reseed(42).Float64()
	})
	if allocs != 0 {
		t.Fatalf("Reseed+draw allocates %.1f/op, want 0", allocs)
	}
}
