// Package rng provides seeded pseudo-random streams and the distributions
// the workload generators and cost models draw from.
//
// Every stochastic component of the simulator owns a Stream derived from a
// master seed plus a component label, so adding a new random consumer does
// not perturb the draws seen by existing ones — a requirement for the
// reproducibility guarantees the experiment harness makes.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Stream is an independent deterministic random stream.
type Stream struct {
	r *rand.Rand
}

// New returns a stream seeded directly with seed.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// DeriveSeed returns the sub-seed for (seed, label): the value Derive
// seeds its stream with. Exposed so schedulers (internal/sweep) can hand
// out per-job seeds that depend only on the master seed and a stable job
// label, never on execution order.
func DeriveSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, label)
	return int64(h.Sum64())
}

// Derive returns a sub-stream keyed by the master seed and a label. The
// same (seed, label) pair always yields the same stream, and distinct
// labels yield well-separated streams.
func Derive(seed int64, label string) *Stream {
	return New(DeriveSeed(seed, label))
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Uniform returns a draw in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exponential returns an exponentially distributed draw with the given
// mean (mean = 1/rate). It panics if mean <= 0.
func (s *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("rng: exponential mean %v", mean))
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a draw from a log-normal distribution parameterized by
// the desired mean and coefficient of variation (cv = stddev/mean) of the
// resulting distribution, which is how service-time variability is usually
// specified. It panics if mean <= 0 or cv < 0.
func (s *Stream) LogNormal(mean, cv float64) float64 {
	if mean <= 0 || cv < 0 {
		panic(fmt.Sprintf("rng: lognormal mean=%v cv=%v", mean, cv))
	}
	if cv == 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*s.r.NormFloat64())
}

// Pareto returns a draw from a Pareto distribution with the given minimum
// value and shape alpha (>0). Heavy-tailed when alpha <= 2.
func (s *Stream) Pareto(xmin, alpha float64) float64 {
	if xmin <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("rng: pareto xmin=%v alpha=%v", xmin, alpha))
	}
	u := 1 - s.r.Float64() // in (0,1]
	return xmin / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Zipf draws ranks in [0, n) with Zipfian skew theta (0 = uniform; larger
// is more skewed). Used for template popularity.
type Zipf struct {
	cum []float64
	s   *Stream
}

// NewZipf precomputes the rank CDF. n must be > 0 and theta >= 0.
func NewZipf(s *Stream, n int, theta float64) *Zipf {
	if n <= 0 || theta < 0 {
		panic(fmt.Sprintf("rng: zipf n=%d theta=%v", n, theta))
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, s: s}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.s.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// WeightedChoice selects index i with probability weights[i]/sum(weights).
// It panics on an empty or non-positive-sum weight vector.
func (s *Stream) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: weighted choice over empty/zero weights")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // float round-off
}

// Empirical draws from a fixed set of values with equal probability —
// handy for replaying measured service times.
type Empirical struct {
	vals []float64
	s    *Stream
}

// NewEmpirical copies vals; it panics if vals is empty.
func NewEmpirical(s *Stream, vals []float64) *Empirical {
	if len(vals) == 0 {
		panic("rng: empirical over no values")
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	return &Empirical{vals: cp, s: s}
}

// Draw returns one of the values uniformly at random.
func (e *Empirical) Draw() float64 { return e.vals[e.s.Intn(len(e.vals))] }
