// Package rng provides seeded pseudo-random streams and the distributions
// the workload generators and cost models draw from.
//
// Every stochastic component of the simulator owns a Stream derived from a
// master seed plus a component label, so adding a new random consumer does
// not perturb the draws seen by existing ones — a requirement for the
// reproducibility guarantees the experiment harness makes.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// Stream is an independent deterministic random stream.
type Stream struct {
	r *rand.Rand
}

// New returns a stream seeded directly with seed.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// DeriveSeed returns the sub-seed for (seed, label): the value Derive
// seeds its stream with. Exposed so schedulers (internal/sweep) can hand
// out per-job seeds that depend only on the master seed and a stable job
// label, never on execution order.
func DeriveSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, label)
	return int64(h.Sum64())
}

// Derive returns a sub-stream keyed by the master seed and a label. The
// same (seed, label) pair always yields the same stream, and distinct
// labels yield well-separated streams.
func Derive(seed int64, label string) *Stream {
	return New(DeriveSeed(seed, label))
}

// FNV-1a parameters, matching hash/fnv's 64-bit variant. SeedHasher
// re-implements the hash byte by byte so derivation labels never have to
// be materialized as strings on hot paths.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// SeedHasher incrementally computes the same sub-seed DeriveSeed would
// return for a label built from pieces, without allocating. It is a small
// value: a partially-applied hash state that can be cached — a component
// that derives many seeds sharing a label prefix (e.g. the fault
// injector's "fault:<layer>:" per-layer prefixes) hashes the prefix once
// and extends the cached state per decision.
//
//	h := rng.NewSeedHasher(seed).String("fault:host:")   // cache this
//	sub := h.Int(taskID).Byte(':').Int(attempt).Seed()
//	// sub == rng.DeriveSeed(seed, fmt.Sprintf("fault:host:%d:%d", taskID, attempt))
//
// The equivalence with DeriveSeed is pinned by a golden test; it is what
// lets hot paths switch to SeedHasher without perturbing a single draw.
type SeedHasher struct{ h uint64 }

// NewSeedHasher starts a derivation for the given master seed: the state
// after hashing "<seed>/", which every DeriveSeed label is prefixed with.
func NewSeedHasher(seed int64) SeedHasher {
	return SeedHasher{h: fnvOffset64}.Int(seed).Byte('/')
}

// Byte extends the label with one byte.
func (s SeedHasher) Byte(b byte) SeedHasher {
	s.h = (s.h ^ uint64(b)) * fnvPrime64
	return s
}

// String extends the label with a string.
func (s SeedHasher) String(str string) SeedHasher {
	for i := 0; i < len(str); i++ {
		s.h = (s.h ^ uint64(str[i])) * fnvPrime64
	}
	return s
}

// Int extends the label with the decimal representation of n, exactly as
// a %d format verb would render it.
func (s SeedHasher) Int(n int64) SeedHasher {
	var buf [20]byte
	for _, b := range strconv.AppendInt(buf[:0], n, 10) {
		s.h = (s.h ^ uint64(b)) * fnvPrime64
	}
	return s
}

// Seed returns the derived sub-seed for the label accumulated so far.
func (s SeedHasher) Seed() int64 { return int64(s.h) }

// 32-bit FNV-1a parameters, for hash-partitioning keys (not seed
// derivation): offset basis and prime from the FNV reference.
const (
	fnvOffset32 uint32 = 2166136261
	fnvPrime32  uint32 = 16777619
)

// Hash32 is SeedHasher's 32-bit sibling: an incremental allocation-free
// FNV-1a hash for partitioning string keys onto buckets (the director's
// sticky-org datastore pinning). It is a value type so a partially
// applied state can be cached per prefix, like SeedHasher.
type Hash32 struct{ h uint32 }

// NewHash32 starts a hash at the FNV-1a 32-bit offset basis.
func NewHash32() Hash32 { return Hash32{h: fnvOffset32} }

// Byte folds one byte into the hash.
func (s Hash32) Byte(b byte) Hash32 {
	s.h = (s.h ^ uint32(b)) * fnvPrime32
	return s
}

// String folds a string into the hash.
func (s Hash32) String(str string) Hash32 {
	for i := 0; i < len(str); i++ {
		s.h = (s.h ^ uint32(str[i])) * fnvPrime32
	}
	return s
}

// Sum returns the hash accumulated so far.
func (s Hash32) Sum() uint32 { return s.h }

// Reseeder is a reusable stream for components that derive a fresh
// sub-stream per decision (the fault injector draws per (layer, task,
// attempt)). Constructing a Stream allocates a generator of several
// kilobytes; Reseed re-seeds one cached generator instead, yielding
// exactly the draw sequence New(seed) would while keeping the hot path
// allocation-free. Each Reseed invalidates the previous stream, so the
// returned stream must be drained before the next call; not safe for
// concurrent use.
type Reseeder struct {
	stream Stream
}

// NewReseeder returns a Reseeder with an unseeded cached generator; call
// Reseed before drawing.
func NewReseeder() *Reseeder {
	return &Reseeder{stream: Stream{r: rand.New(rand.NewSource(0))}}
}

// Reseed re-seeds the cached generator with seed and returns the shared
// stream, positioned exactly as New(seed) would be.
func (rs *Reseeder) Reseed(seed int64) *Stream {
	rs.stream.r.Seed(seed)
	return &rs.stream
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Uniform returns a draw in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exponential returns an exponentially distributed draw with the given
// mean (mean = 1/rate). It panics if mean <= 0.
func (s *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("rng: exponential mean %v", mean))
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a draw from a log-normal distribution parameterized by
// the desired mean and coefficient of variation (cv = stddev/mean) of the
// resulting distribution, which is how service-time variability is usually
// specified. It panics if mean <= 0 or cv < 0.
func (s *Stream) LogNormal(mean, cv float64) float64 {
	if mean <= 0 || cv < 0 {
		panic(fmt.Sprintf("rng: lognormal mean=%v cv=%v", mean, cv))
	}
	if cv == 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*s.r.NormFloat64())
}

// Pareto returns a draw from a Pareto distribution with the given minimum
// value and shape alpha (>0). Heavy-tailed when alpha <= 2.
func (s *Stream) Pareto(xmin, alpha float64) float64 {
	if xmin <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("rng: pareto xmin=%v alpha=%v", xmin, alpha))
	}
	u := 1 - s.r.Float64() // in (0,1]
	return xmin / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Zipf draws ranks in [0, n) with Zipfian skew theta (0 = uniform; larger
// is more skewed). Used for template popularity.
type Zipf struct {
	cum []float64
	s   *Stream
}

// NewZipf precomputes the rank CDF. n must be > 0 and theta >= 0.
func NewZipf(s *Stream, n int, theta float64) *Zipf {
	if n <= 0 || theta < 0 {
		panic(fmt.Sprintf("rng: zipf n=%d theta=%v", n, theta))
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, s: s}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.s.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// WeightedChoice selects index i with probability weights[i]/sum(weights).
// It panics on an empty or non-positive-sum weight vector.
func (s *Stream) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: weighted choice over empty/zero weights")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // float round-off
}

// Empirical draws from a fixed set of values with equal probability —
// handy for replaying measured service times.
type Empirical struct {
	vals []float64
	s    *Stream
}

// NewEmpirical copies vals; it panics if vals is empty.
func NewEmpirical(s *Stream, vals []float64) *Empirical {
	if len(vals) == 0 {
		panic("rng: empirical over no values")
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	return &Empirical{vals: cp, s: s}
}

// Draw returns one of the values uniformly at random.
func (e *Empirical) Draw() float64 { return e.vals[e.s.Intn(len(e.vals))] }
