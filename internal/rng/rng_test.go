package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(7, "arrivals")
	b := Derive(7, "arrivals")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed,label) diverged")
		}
	}
}

func TestDeriveIndependentLabels(t *testing.T) {
	a := Derive(7, "arrivals")
	b := Derive(7, "service")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labels not independent: %d identical draws", same)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(4.0)
	}
	mean := sum / n
	if math.Abs(mean-4.0) > 0.1 {
		t.Fatalf("mean = %v, want ~4", mean)
	}
}

func TestExponentialPositive(t *testing.T) {
	s := New(2)
	for i := 0; i < 10000; i++ {
		if v := s.Exponential(1); v < 0 {
			t.Fatalf("negative draw %v", v)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := New(3)
	const n = 400000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.LogNormal(10, 0.5)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	cv := math.Sqrt(variance) / mean
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("mean = %v, want ~10", mean)
	}
	if math.Abs(cv-0.5) > 0.05 {
		t.Fatalf("cv = %v, want ~0.5", cv)
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	s := New(4)
	if v := s.LogNormal(7, 0); v != 7 {
		t.Fatalf("cv=0 draw = %v, want exactly 7", v)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("pareto draw %v below xmin", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	// alpha=3, xmin=1 → mean = alpha*xmin/(alpha-1) = 1.5
	s := New(6)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Pareto(1, 3)
	}
	mean := sum / n
	if math.Abs(mean-1.5) > 0.05 {
		t.Fatalf("mean = %v, want ~1.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(7)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("frac = %v, want ~0.3", frac)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	s := New(8)
	z := NewZipf(s, 4, 0)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.01 {
			t.Fatalf("rank %d frac %v, want ~0.25", i, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(9)
	z := NewZipf(s, 100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50]*10 {
		t.Fatalf("rank0=%d rank50=%d: not skewed", counts[0], counts[50])
	}
}

func TestZipfDrawInRange(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%20) + 1
		z := NewZipf(New(seed), n, 0.9)
		for i := 0; i < 200; i++ {
			if d := z.Draw(); d < 0 || d >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(10)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanicsOnEmpty(t *testing.T) {
	s := New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.WeightedChoice(nil)
}

func TestEmpirical(t *testing.T) {
	s := New(12)
	e := NewEmpirical(s, []float64{1, 2, 3})
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := e.Draw()
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("unexpected value %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("only saw %v", seen)
	}
}

func TestUniformRange(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Uniform(5, 9)
			if v < 5 || v >= 9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHash32GoldenVectors pins the incremental 32-bit FNV-1a hasher to
// the reference algorithm's published values. The sticky-org placement
// policy maps organizations to datastores through this hash, so these
// constants are part of the reproducibility contract.
func TestHash32GoldenVectors(t *testing.T) {
	golden := map[string]uint32{
		"":     2166136261, // the FNV-1a offset basis
		"a":    3826002220,
		"abc":  440920331,
		"org0": 740390219,
		"org7": 824278314,
		"orgA": 3676370376, // > 2^31: the case int() mishandled on 32-bit
	}
	for s, want := range golden {
		if got := NewHash32().String(s).Sum(); got != want {
			t.Errorf("Hash32(%q) = %d, want %d", s, got, want)
		}
	}
	// Byte-at-a-time must agree with String, and the value-type hasher
	// must support prefix caching: hashing "org" once and branching.
	prefix := NewHash32().String("org")
	for _, suffix := range []string{"0", "7", "A"} {
		if got, want := prefix.String(suffix).Sum(), NewHash32().String("org"+suffix).Sum(); got != want {
			t.Errorf("prefix-cached Hash32(org%s) = %d, want %d", suffix, got, want)
		}
	}
	byByte := NewHash32()
	for _, b := range []byte("abc") {
		byByte = byByte.Byte(b)
	}
	if got := byByte.Sum(); got != 440920331 {
		t.Errorf("byte-at-a-time Hash32(abc) = %d, want 440920331", got)
	}
}
