package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets harden the parsers against malformed trace files; `go
// test` runs the seed corpus, and `go test -fuzz` explores further.

func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	WriteJSONL(&buf, []Record{{TaskID: 1, Kind: "deploy", Org: "o", Submit: 1, End: 2, Latency: 1}})
	f.Add(buf.String())
	f.Add("")
	f.Add("{}\n{}\n")
	f.Add(`{"task": 9e999}`)
	f.Add("{\"kind\":\"deploy\"}\nnot json")
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadJSONL(strings.NewReader(s))
		if err == nil {
			// Whatever parsed must round-trip without error.
			var out bytes.Buffer
			if werr := WriteJSONL(&out, recs); werr != nil {
				t.Fatalf("reserialize: %v", werr)
			}
		}
	})
}

func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	WriteCSV(&buf, []Record{{TaskID: 1, Kind: "deploy", Org: "o", Submit: 1, End: 2, Latency: 1}})
	f.Add(buf.String())
	f.Add("")
	f.Add("task,kind\n1,deploy\n")
	f.Add(strings.Repeat(",", 20))
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadCSV(strings.NewReader(s))
		if err == nil {
			var out bytes.Buffer
			if werr := WriteCSV(&out, recs); werr != nil {
				t.Fatalf("reserialize: %v", werr)
			}
			back, rerr := ReadCSV(bytes.NewReader(out.Bytes()))
			if rerr != nil || len(back) != len(recs) {
				t.Fatalf("round trip: err=%v len %d vs %d", rerr, len(back), len(recs))
			}
		}
	})
}
