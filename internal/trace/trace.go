// Package trace defines the management-operation trace format the
// characterization pipeline consumes: one flat record per completed task,
// serializable as JSON lines or CSV so traces can be generated once
// (cmd/mcpgen) and analyzed separately (cmd/mcpchar), mirroring how the
// paper's measurements were collected from live systems and studied
// offline.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
)

// Record is one completed management operation.
type Record struct {
	TaskID int64  `json:"task"`
	Kind   string `json:"kind"`
	Mode   string `json:"mode,omitempty"` // deploys only: full|linked
	Org    string `json:"org,omitempty"`

	// VM and Template reference the operation's targets by inventory ID
	// (0 when not applicable). IDs are only meaningful within the run
	// that produced the trace; the replayer maps them structurally.
	VM       int64 `json:"vm,omitempty"`
	Template int64 `json:"template,omitempty"`

	Submit float64 `json:"submit"` // virtual seconds
	End    float64 `json:"end"`

	Latency float64 `json:"latency"`
	Queue   float64 `json:"queue"`
	Cell    float64 `json:"cell"`
	Mgmt    float64 `json:"mgmt"`
	DB      float64 `json:"db"`
	Host    float64 `json:"host"`
	Data    float64 `json:"data"`

	Err string `json:"err,omitempty"`
}

// Breakdown reassembles the record's latency breakdown.
func (r Record) Breakdown() ops.Breakdown {
	return ops.Breakdown{Queue: r.Queue, Cell: r.Cell, Mgmt: r.Mgmt, DB: r.DB, Host: r.Host, Data: r.Data}
}

// OpKind parses the record's kind.
func (r Record) OpKind() (ops.Kind, error) { return ops.ParseKind(r.Kind) }

// FromTask flattens a completed task into a record.
func FromTask(t *mgmt.Task) Record {
	r := Record{
		TaskID:   t.ID,
		Kind:     t.Req.Kind.String(),
		Org:      t.Req.Org,
		VM:       int64(t.Req.VMID),
		Template: int64(t.Req.TemplateID),
		Submit:   t.Req.Submit,
		End:      float64(t.End),
		Latency:  t.Latency(),
		Queue:    t.Breakdown.Queue,
		Cell:     t.Breakdown.Cell,
		Mgmt:     t.Breakdown.Mgmt,
		DB:       t.Breakdown.DB,
		Host:     t.Breakdown.Host,
		Data:     t.Breakdown.Data,
	}
	if t.Req.Kind == ops.KindDeploy {
		r.Mode = t.Req.Mode.String()
	}
	if t.Err != nil {
		r.Err = t.Err.Error()
	}
	return r
}

// Recorder is a task sink that accumulates records in memory. Register
// Sink with mgmt.Manager.AddTaskSink.
type Recorder struct {
	records []Record
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Sink appends the task's record.
func (rc *Recorder) Sink(t *mgmt.Task) { rc.records = append(rc.records, FromTask(t)) }

// Records returns the accumulated records (shared slice; callers must not
// mutate).
func (rc *Recorder) Records() []Record { return rc.records }

// Len returns the number of records.
func (rc *Recorder) Len() int { return len(rc.records) }

// Reset discards accumulated records.
func (rc *Recorder) Reset() { rc.records = nil }

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

var csvHeader = []string{
	"task", "kind", "mode", "org", "vm", "template", "submit", "end",
	"latency", "queue", "cell", "mgmt", "db", "host", "data", "err",
}

// WriteCSV writes records with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range records {
		r := &records[i]
		row := []string{
			strconv.FormatInt(r.TaskID, 10), r.Kind, r.Mode, r.Org,
			strconv.FormatInt(r.VM, 10), strconv.FormatInt(r.Template, 10),
			f(r.Submit), f(r.End), f(r.Latency), f(r.Queue), f(r.Cell),
			f(r.Mgmt), f(r.DB), f(r.Host), f(r.Data), r.Err,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Writer streams records one at a time to an underlying writer, buffered,
// in JSONL or CSV form. Its output is byte-identical to WriteJSONL /
// WriteCSV over the same records — pinned by a test — so a CLI can switch
// from accumulate-then-dump to streaming without changing its artifact.
// Errors are sticky: after the first failure every Write is a no-op and
// Flush reports it, so a caller checking only the final Flush still
// observes a mid-stream disk failure.
type Writer struct {
	enc *json.Encoder // JSONL mode
	bw  *bufio.Writer // JSONL mode (enc's buffer)
	cw  *csv.Writer   // CSV mode
	hdr bool          // CSV header written
	row [16]string    // CSV scratch, reused per record
	n   int
	err error
}

func (sw *Writer) csvHeaderOnce() error {
	if sw.hdr {
		return nil
	}
	if err := sw.cw.Write(csvHeader); err != nil {
		sw.err = err
		return err
	}
	sw.hdr = true
	return nil
}

// NewJSONLWriter returns a streaming writer producing WriteJSONL output.
func NewJSONLWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{enc: json.NewEncoder(bw), bw: bw}
}

// NewCSVWriter returns a streaming writer producing WriteCSV output,
// including the header row (written lazily, at the first record or at
// Flush, so a zero-record stream still matches WriteCSV(w, nil)).
func NewCSVWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w)}
}

// Write appends one record. It returns the writer's sticky error.
func (sw *Writer) Write(r *Record) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.enc != nil {
		if err := sw.enc.Encode(r); err != nil {
			sw.err = fmt.Errorf("trace: encode record %d: %w", sw.n, err)
			return sw.err
		}
	} else {
		if err := sw.csvHeaderOnce(); err != nil {
			return err
		}
		f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		row := sw.row[:0]
		row = append(row,
			strconv.FormatInt(r.TaskID, 10), r.Kind, r.Mode, r.Org,
			strconv.FormatInt(r.VM, 10), strconv.FormatInt(r.Template, 10),
			f(r.Submit), f(r.End), f(r.Latency), f(r.Queue), f(r.Cell),
			f(r.Mgmt), f(r.DB), f(r.Host), f(r.Data), r.Err)
		if err := sw.cw.Write(row); err != nil {
			sw.err = fmt.Errorf("trace: write record %d: %w", sw.n, err)
			return sw.err
		}
	}
	sw.n++
	return nil
}

// Sink adapts Write to the mgmt task-sink signature, for streaming a
// simulation's completed tasks straight to disk. Write errors are sticky
// and surface at Flush.
func (sw *Writer) Sink(t *mgmt.Task) {
	rec := FromTask(t)
	sw.Write(&rec)
}

// N returns the number of records written so far.
func (sw *Writer) N() int { return sw.n }

// Flush drains buffered output and returns the first error seen, if any.
func (sw *Writer) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.enc != nil {
		sw.err = sw.bw.Flush()
	} else {
		if err := sw.csvHeaderOnce(); err != nil {
			return err
		}
		sw.cw.Flush()
		sw.err = sw.cw.Error()
	}
	return sw.err
}

// ReadCSV reads records written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != "task" {
		return nil, fmt.Errorf("trace: unexpected csv header %v", rows[0])
	}
	out := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		var rec Record
		var errs [12]error
		rec.TaskID, errs[0] = strconv.ParseInt(row[0], 10, 64)
		rec.Kind, rec.Mode, rec.Org = row[1], row[2], row[3]
		rec.VM, errs[1] = strconv.ParseInt(row[4], 10, 64)
		rec.Template, errs[2] = strconv.ParseInt(row[5], 10, 64)
		rec.Submit, errs[3] = strconv.ParseFloat(row[6], 64)
		rec.End, errs[4] = strconv.ParseFloat(row[7], 64)
		rec.Latency, errs[5] = strconv.ParseFloat(row[8], 64)
		rec.Queue, errs[6] = strconv.ParseFloat(row[9], 64)
		rec.Cell, errs[7] = strconv.ParseFloat(row[10], 64)
		rec.Mgmt, errs[8] = strconv.ParseFloat(row[11], 64)
		rec.DB, errs[9] = strconv.ParseFloat(row[12], 64)
		rec.Host, errs[10] = strconv.ParseFloat(row[13], 64)
		rec.Data, errs[11] = strconv.ParseFloat(row[14], 64)
		rec.Err = row[15]
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("trace: csv row %d: %v", i+1, e)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}
