package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
)

func sampleRecords() []Record {
	return []Record{
		{TaskID: 1, Kind: "deploy", Mode: "linked", Org: "orgA", Submit: 10, End: 25,
			Latency: 15, Queue: 2, Cell: 1, Mgmt: 2, DB: 0.5, Host: 4, Data: 5.5},
		{TaskID: 2, Kind: "powerOn", Org: "orgA", Submit: 26, End: 31,
			Latency: 5, Queue: 0, Cell: 0.3, Mgmt: 0.8, DB: 0.2, Host: 3.7},
		{TaskID: 3, Kind: "destroy", Org: "orgB", Submit: 40, End: 44,
			Latency: 4, Err: "boom"},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripHostileErrStrings(t *testing.T) {
	// Error strings flow verbatim from the model into the trace; commas,
	// quotes, and newlines must survive both codecs without corrupting
	// neighboring records.
	recs := []Record{
		{TaskID: 1, Kind: "deploy", Org: "orgA", Submit: 1, End: 2, Latency: 1,
			Err: `quota exceeded: org "orgA", cell 2`},
		{TaskID: 2, Kind: "deploy", Org: "orgB", Submit: 3, End: 4, Latency: 1,
			Err: "multi\nline\nfailure"},
		{TaskID: 3, Kind: "destroy", Org: "orgC", Submit: 5, End: 6, Latency: 1,
			Err: `comma, "quoted", and
a newline together`},
		{TaskID: 4, Kind: "powerOn", Org: "orgC", Submit: 7, End: 8, Latency: 1},
	}
	for name, codec := range map[string]struct {
		write func(*bytes.Buffer, []Record) error
		read  func(*bytes.Buffer) ([]Record, error)
	}{
		"csv": {func(b *bytes.Buffer, r []Record) error { return WriteCSV(b, r) },
			func(b *bytes.Buffer) ([]Record, error) { return ReadCSV(b) }},
		"jsonl": {func(b *bytes.Buffer, r []Record) error { return WriteJSONL(b, r) },
			func(b *bytes.Buffer) ([]Record, error) { return ReadJSONL(b) }},
	} {
		var buf bytes.Buffer
		if err := codec.write(&buf, recs); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		got, err := codec.read(&buf)
		if err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: %d records, want %d", name, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("%s record %d: %+v != %+v", name, i, got[i], recs[i])
			}
		}
	}
}

func TestCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestCSVRejectsBadNumbers(t *testing.T) {
	recs := sampleRecords()[:1]
	var buf bytes.Buffer
	WriteCSV(&buf, recs)
	s := strings.Replace(buf.String(), "10", "xx", 1)
	if _, err := ReadCSV(strings.NewReader(s)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"task\":1}\nnot json\n")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestFromTask(t *testing.T) {
	task := &mgmt.Task{
		ID:  7,
		Req: ops.Request{Kind: ops.KindDeploy, Mode: ops.LinkedClone, Org: "o", Submit: 100},
		End: 130,
		Breakdown: ops.Breakdown{
			Queue: 3, Cell: 1, Mgmt: 2, DB: 1, Host: 4, Data: 19,
		},
		Start: 100,
		Err:   errors.New("nope"),
	}
	r := FromTask(task)
	if r.TaskID != 7 || r.Kind != "deploy" || r.Mode != "linked" || r.Err != "nope" {
		t.Fatalf("record = %+v", r)
	}
	if r.Latency != 30 || r.Submit != 100 || r.End != 130 {
		t.Fatalf("timing = %+v", r)
	}
	bd := r.Breakdown()
	if bd.Total() != 30 {
		t.Fatalf("breakdown total = %v", bd.Total())
	}
	k, err := r.OpKind()
	if err != nil || k != ops.KindDeploy {
		t.Fatalf("kind = %v err %v", k, err)
	}
}

func TestFromTaskNonDeployHasNoMode(t *testing.T) {
	task := &mgmt.Task{Req: ops.Request{Kind: ops.KindPowerOn}}
	if r := FromTask(task); r.Mode != "" {
		t.Fatalf("mode = %q", r.Mode)
	}
}

func TestRecorder(t *testing.T) {
	rc := NewRecorder()
	rc.Sink(&mgmt.Task{ID: 1, Req: ops.Request{Kind: ops.KindPowerOn}})
	rc.Sink(&mgmt.Task{ID: 2, Req: ops.Request{Kind: ops.KindDestroy}})
	if rc.Len() != 2 {
		t.Fatalf("len = %d", rc.Len())
	}
	if rc.Records()[1].Kind != "destroy" {
		t.Fatal("order wrong")
	}
	rc.Reset()
	if rc.Len() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: both codecs round-trip arbitrary records (restricted to the
// value domains the simulator emits: finite non-negative times, ASCII
// names).
func TestPropertyCodecsRoundTrip(t *testing.T) {
	kinds := ops.Kinds()
	f := func(id int64, kindIdx uint8, times [7]uint32, hasErr bool) bool {
		r := Record{
			TaskID: id,
			Kind:   kinds[int(kindIdx)%len(kinds)].String(),
			Org:    "org",
			Submit: float64(times[0]) / 7, End: float64(times[1]) / 7,
			Latency: float64(times[2]) / 7, Queue: float64(times[3]) / 7,
			Mgmt: float64(times[4]) / 7, Host: float64(times[5]) / 7,
			Data: float64(times[6]) / 7,
		}
		if hasErr {
			r.Err = "some failure, with comma"
		}
		var jbuf, cbuf bytes.Buffer
		if WriteJSONL(&jbuf, []Record{r}) != nil || WriteCSV(&cbuf, []Record{r}) != nil {
			return false
		}
		jr, err1 := ReadJSONL(&jbuf)
		cr, err2 := ReadCSV(&cbuf)
		if err1 != nil || err2 != nil || len(jr) != 1 || len(cr) != 1 {
			return false
		}
		return jr[0] == r && cr[0] == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
