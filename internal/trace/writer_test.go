package trace

import (
	"bytes"
	"errors"
	"testing"
)

// The streaming Writer must produce byte-identical output to the batch
// functions: mcpgen switched from accumulate-then-dump to streaming, and
// its artifacts may not change by a single byte.
func TestWriterMatchesBatchJSONL(t *testing.T) {
	recs := sampleRecords()
	var batch bytes.Buffer
	if err := WriteJSONL(&batch, recs); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	sw := NewJSONLWriter(&stream)
	for i := range recs {
		if err := sw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Fatalf("streaming JSONL differs from batch:\nbatch:  %q\nstream: %q", batch.String(), stream.String())
	}
	if sw.N() != len(recs) {
		t.Fatalf("N = %d, want %d", sw.N(), len(recs))
	}
}

func TestWriterMatchesBatchCSV(t *testing.T) {
	recs := sampleRecords()
	// Include a hostile field to exercise csv quoting equally.
	recs[2].Err = "boom,\"quoted\"\nnewline"
	var batch bytes.Buffer
	if err := WriteCSV(&batch, recs); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	sw := NewCSVWriter(&stream)
	for i := range recs {
		if err := sw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Fatalf("streaming CSV differs from batch:\nbatch:  %q\nstream: %q", batch.String(), stream.String())
	}
}

func TestWriterEmptyCSVMatchesBatch(t *testing.T) {
	var batch bytes.Buffer
	if err := WriteCSV(&batch, nil); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	sw := NewCSVWriter(&stream)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil { // idempotent: header only once
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Fatalf("zero-record streaming CSV %q != batch %q", stream.String(), batch.String())
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

// A mid-stream write failure must be sticky and surface at Flush even if
// the caller ignored the per-record error — the CLI's single Flush check
// is its only guard against announcing success for a truncated trace.
func TestWriterStickyError(t *testing.T) {
	recs := sampleRecords()
	sw := NewJSONLWriter(&failWriter{n: 0})
	for i := range recs {
		sw.Write(&recs[i]) // small records sit in the bufio buffer; force out:
	}
	for i := 0; i < 10000; i++ {
		sw.Write(&recs[0])
	}
	if err := sw.Flush(); err == nil {
		t.Fatal("Flush after failed writes = nil, want error")
	}
	nAfterErr := sw.N()
	sw.Write(&recs[0])
	if sw.N() != nAfterErr {
		t.Fatal("Write after sticky error still counted a record")
	}
}
