// Package bw provides a fair-share bandwidth engine: a shared link or
// array whose aggregate bandwidth is divided equally among all in-flight
// transfers (processor sharing). Datastore copy engines (package storage)
// and the management/vMotion network (package netsim) are both instances.
package bw

import (
	"fmt"
	"math"

	"cloudmcp/internal/metrics"
	"cloudmcp/internal/sim"
)

// Engine is a fair-share transfer engine for one shared link or array.
type Engine struct {
	env    *sim.Env
	name   string
	bwMBps float64

	active     map[*transfer]struct{}
	lastUpdate sim.Time
	timer      sim.Timer
	complete   func() // cached e.onComplete method value (reschedule hot path)

	// freeT recycles transfer records (and their completion signals) so
	// steady-state copies do not allocate.
	freeT []*transfer

	// stats
	bytesMB      float64
	transfers    int64
	busyIntegral float64 // ∫ min(1, active) dt — fraction of time busy
	loadIntegral float64 // ∫ active dt — mean concurrent transfers
}

type transfer struct {
	remainingMB float64
	done        *sim.Signal
	started     sim.Time
}

// NewEngine creates an engine with the given aggregate bandwidth in MB/s.
func NewEngine(env *sim.Env, name string, bwMBps float64) *Engine {
	if bwMBps <= 0 {
		panic(fmt.Sprintf("storage: engine %q bandwidth %v", name, bwMBps))
	}
	return &Engine{env: env, name: name, bwMBps: bwMBps, active: make(map[*transfer]struct{})}
}

// Name returns the engine's label.
func (e *Engine) Name() string { return e.name }

// Bandwidth returns the aggregate bandwidth in MB/s.
func (e *Engine) Bandwidth() float64 { return e.bwMBps }

// Active returns the number of in-flight transfers.
func (e *Engine) Active() int { return len(e.active) }

// update advances all in-flight transfers to the current virtual time.
func (e *Engine) update() {
	now := e.env.Now()
	dt := now - e.lastUpdate
	e.lastUpdate = now
	k := len(e.active)
	if dt <= 0 {
		return
	}
	if k > 0 {
		e.busyIntegral += dt
		e.loadIntegral += dt * float64(k)
		per := dt * e.bwMBps / float64(k)
		for t := range e.active {
			t.remainingMB -= per
		}
	}
}

// reschedule arms a completion event for the transfer that will finish
// first under the current sharing level.
func (e *Engine) reschedule() {
	e.timer.Stop() // no-op when unarmed or already fired
	e.timer = sim.Timer{}
	k := len(e.active)
	if k == 0 {
		return
	}
	minRem := math.Inf(1)
	for t := range e.active {
		if t.remainingMB < minRem {
			minRem = t.remainingMB
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	delay := minRem * float64(k) / e.bwMBps
	// Clamp the delay away from zero: at large clock values a sub-ULP
	// delay would leave virtual time unchanged, the elapsed-time update
	// would subtract nothing, and the completion event would reschedule
	// itself forever at the same instant. One microsecond is far above
	// the float64 ULP of any reachable clock value and far below any
	// transfer time that matters.
	if delay < minDelayS {
		delay = minDelayS
	}
	if e.complete == nil {
		e.complete = e.onComplete
	}
	e.timer = e.env.Schedule(delay, e.complete)
}

// minDelayS is the smallest completion delay reschedule will arm.
const minDelayS = 1e-6

// finishEpsMB treats transfers with less than a byte outstanding as done,
// absorbing the float error accumulated by repeated fair-share updates.
const finishEpsMB = 1e-6

func (e *Engine) onComplete() {
	e.timer = sim.Timer{}
	e.update()
	for t := range e.active {
		if t.remainingMB <= finishEpsMB {
			delete(e.active, t)
			t.done.Fire()
			// The signal's waiters are already scheduled for wakeup and
			// nothing else references t, so the record can be recycled.
			e.freeT = append(e.freeT, t)
		}
	}
	e.reschedule()
}

// Copy blocks p while sizeMB megabytes are transferred, sharing bandwidth
// fairly with every other in-flight transfer on this engine. A zero or
// negative size returns immediately.
func (e *Engine) Copy(p *sim.Proc, sizeMB float64) {
	if sizeMB <= 0 {
		return
	}
	e.update()
	var t *transfer
	if n := len(e.freeT); n > 0 {
		t = e.freeT[n-1]
		e.freeT[n-1] = nil
		e.freeT = e.freeT[:n-1]
		t.remainingMB, t.started = sizeMB, e.env.Now()
	} else {
		t = &transfer{remainingMB: sizeMB, done: sim.NewSignal(e.env), started: e.env.Now()}
	}
	e.active[t] = struct{}{}
	e.transfers++
	e.bytesMB += sizeMB
	e.reschedule()
	t.done.Wait(p)
}

// EngineStats is a snapshot of transfer statistics.
type EngineStats struct {
	Name        string
	Transfers   int64
	BytesMB     float64
	BusyFrac    float64 // fraction of virtual time with >=1 transfer
	MeanActive  float64 // time-averaged concurrent transfers
	Utilization float64 // delivered / available bandwidth
}

// RegisterMetrics registers the engine's busy-fraction and concurrency
// statistics with the environment's metrics registry under the given
// layer, keyed by the engine's name. Utilization is the fraction of
// virtual time with at least one transfer in flight (the engine is work
// conserving, so busy time equals delivered-bandwidth time); the
// time-averaged transfer count stands in for queue length, and the
// scalar series carries total megabytes moved. No-op when metrics are
// disabled.
func (e *Engine) RegisterMetrics(layer string) {
	reg := e.env.Metrics()
	if reg == nil {
		return
	}
	reg.ResourceFunc(layer, e.name, func() metrics.ResourceSample {
		s := e.Stats()
		return metrics.ResourceSample{
			Capacity:     1,
			Utilization:  s.BusyFrac,
			MeanQueueLen: s.MeanActive,
			Grants:       s.Transfers,
		}
	})
	reg.ScalarFunc(layer, e.name, "bytes_mb", func() float64 { return e.bytesMB })
}

// Stats returns statistics accumulated since the engine was created,
// evaluated at the current virtual time.
func (e *Engine) Stats() EngineStats {
	e.update()
	now := e.env.Now()
	s := EngineStats{Name: e.name, Transfers: e.transfers, BytesMB: e.bytesMB}
	if now > 0 {
		s.BusyFrac = e.busyIntegral / now
		s.MeanActive = e.loadIntegral / now
		// Delivered bandwidth equals bwMBps whenever busy (work conserving).
		s.Utilization = e.busyIntegral * e.bwMBps / (now * e.bwMBps)
	}
	return s
}
