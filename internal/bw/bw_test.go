package bw

// The engine's sharing behaviour is exercised exhaustively through the
// storage package's tests (which use it via a type alias); these tests
// cover the package's own contract directly.

import (
	"math"
	"testing"

	"cloudmcp/internal/sim"
)

func TestFairShare(t *testing.T) {
	env := sim.NewEnv()
	e := NewEngine(env, "link", 100)
	var done []sim.Time
	for i := 0; i < 4; i++ {
		env.Go("t", func(p *sim.Proc) {
			e.Copy(p, 250)
			done = append(done, p.Now())
		})
	}
	env.Run(sim.Forever)
	for _, d := range done {
		if math.Abs(float64(d)-10) > 1e-6 {
			t.Fatalf("done = %v, want all at 10 (4x250MB shared at 100MB/s)", done)
		}
	}
	s := e.Stats()
	if s.Transfers != 4 || s.BytesMB != 1000 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBadBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(sim.NewEnv(), "x", 0)
}

func TestNameAndBandwidthAccessors(t *testing.T) {
	e := NewEngine(sim.NewEnv(), "net0", 1250)
	if e.Name() != "net0" || e.Bandwidth() != 1250 || e.Active() != 0 {
		t.Fatalf("accessors: %q %v %d", e.Name(), e.Bandwidth(), e.Active())
	}
}
