// Package mgmtdb models the management database behind the
// virtualization manager — the component every task-state transition and
// inventory commit must write through, and a recurring bottleneck in the
// management-plane literature.
//
// The model has three cost centers:
//
//   - a bounded connection pool (row work holds a connection),
//   - per-row write service time, and
//   - a write-ahead log whose flushes (fsyncs) are serialized and may be
//     group-committed: commits arriving within a gather window share one
//     flush, trading a little latency for much higher commit throughput.
//
// The group-commit window is the knob the E13 ablation sweeps: at cloud
// provisioning rates, per-commit flushing makes the database the binding
// stage of the control plane, and batching relieves it.
package mgmtdb

import (
	"fmt"

	"cloudmcp/internal/sim"
	"cloudmcp/internal/stats"
)

// Config sizes the database model.
type Config struct {
	// Conns is the connection-pool size.
	Conns int
	// WriteS is the service time per row write, seconds.
	WriteS float64
	// FlushS is the WAL flush (fsync) duration, seconds.
	FlushS float64
	// GroupWindowS is the group-commit gather window: a commit leader
	// waits this long for followers before flushing. 0 flushes every
	// commit individually.
	GroupWindowS float64
}

// DefaultConfig models a modest dedicated database: 4 connections, 5 ms
// row writes, 20 ms flushes, 5 ms group-commit window.
func DefaultConfig() Config {
	return Config{Conns: 4, WriteS: 0.005, FlushS: 0.020, GroupWindowS: 0.005}
}

func (c Config) validate() error {
	if c.Conns <= 0 || c.WriteS < 0 || c.FlushS < 0 || c.GroupWindowS < 0 {
		return fmt.Errorf("mgmtdb: bad config %+v", c)
	}
	return nil
}

// DB is the simulated management database.
type DB struct {
	env   *sim.Env
	cfg   Config
	conns *sim.Resource
	flush *sim.Resource // serializes WAL flushes

	// group-commit state: the signal commits wait on, nil when no group
	// is gathering.
	group     *sim.Signal
	groupSize int

	commits   int64
	flushes   int64
	rows      int64
	commitLat stats.Moments
	groupHist stats.Moments
}

// New builds a database. Pool and WAL-flush occupancy register with the
// environment's metrics registry (if any) under the "mgmtdb" layer.
func New(env *sim.Env, cfg Config) (*DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db := &DB{
		env:   env,
		cfg:   cfg,
		conns: sim.NewResource(env, "db.conns", cfg.Conns),
		flush: sim.NewResource(env, "db.flush", 1),
	}
	if reg := env.Metrics(); reg != nil {
		db.conns.RegisterMetrics("mgmtdb")
		db.flush.RegisterMetrics("mgmtdb")
		reg.ScalarFunc("mgmtdb", "wal", "commits", func() float64 { return float64(db.commits) })
		reg.ScalarFunc("mgmtdb", "wal", "flushes", func() float64 { return float64(db.flushes) })
		reg.ScalarFunc("mgmtdb", "wal", "rows", func() float64 { return float64(db.rows) })
		reg.ScalarFunc("mgmtdb", "wal", "mean_commit_lat_s", func() float64 { return db.commitLat.Mean() })
		reg.ScalarFunc("mgmtdb", "wal", "mean_group_size", func() float64 {
			if db.flushes == 0 {
				return 0
			}
			return db.groupHist.Mean()
		})
	}
	return db, nil
}

// Config returns the database's configuration.
func (db *DB) Config() Config { return db.cfg }

// Commit writes `writes` rows and makes them durable, blocking p for the
// whole transaction. It returns (waitS, serviceS): time spent queued for
// shared resources vs. time attributable to database work itself.
func (db *DB) Commit(p *sim.Proc, writes int) (waitS, serviceS float64) {
	if writes <= 0 {
		return 0, 0
	}
	t0 := p.Now()

	// Row work on a pooled connection.
	db.conns.Acquire(p, 1)
	waitS += p.Now() - t0
	rowS := float64(writes) * db.cfg.WriteS
	p.Sleep(rowS)
	db.conns.Release(1)
	serviceS += rowS

	// Durability: join the gathering group, or lead a new one.
	d0 := p.Now()
	if db.group != nil {
		// Follower: the leader's flush will make this commit durable.
		db.groupSize++
		db.group.Wait(p)
	} else {
		sig := sim.NewSignal(db.env)
		db.group = sig
		db.groupSize = 1
		if db.cfg.GroupWindowS > 0 {
			p.Sleep(db.cfg.GroupWindowS)
		}
		// Close the group before flushing so commits arriving during
		// the flush form the next group instead of missing durability.
		size := db.groupSize
		db.group = nil
		db.groupSize = 0

		fw := p.Now()
		db.flush.Acquire(p, 1)
		waitS += p.Now() - fw
		p.Sleep(db.cfg.FlushS)
		db.flush.Release(1)

		db.flushes++
		db.groupHist.Add(float64(size))
		sig.Fire()
	}
	serviceS += p.Now() - d0
	// Conservatively count the whole durability phase as service for the
	// follower too: from the caller's perspective it is database time.

	db.commits++
	db.rows += int64(writes)
	db.commitLat.Add(p.Now() - t0)
	return waitS, serviceS
}

// Stats is a snapshot of database activity.
type Stats struct {
	Commits       int64
	Flushes       int64
	Rows          int64
	MeanCommitLat float64
	MeanGroupSize float64
	ConnStats     sim.ResourceStats
	FlushStats    sim.ResourceStats
}

// Stats returns accumulated statistics.
func (db *DB) Stats() Stats {
	s := Stats{
		Commits:       db.commits,
		Flushes:       db.flushes,
		Rows:          db.rows,
		MeanCommitLat: db.commitLat.Mean(),
		ConnStats:     db.conns.Stats(),
		FlushStats:    db.flush.Stats(),
	}
	if db.flushes > 0 {
		s.MeanGroupSize = db.groupHist.Mean()
	}
	return s
}
