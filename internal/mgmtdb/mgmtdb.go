// Package mgmtdb models the management database behind the
// virtualization manager — the component every task-state transition and
// inventory commit must write through, and a recurring bottleneck in the
// management-plane literature.
//
// The model has three cost centers:
//
//   - a bounded connection pool (row work holds a connection),
//   - per-row write service time, and
//   - a write-ahead log whose flushes (fsyncs) are serialized and may be
//     group-committed: commits arriving within a gather window share one
//     flush, trading a little latency for much higher commit throughput.
//
// The group-commit window is the knob the E13 ablation sweeps: at cloud
// provisioning rates, per-commit flushing makes the database the binding
// stage of the control plane, and batching relieves it.
package mgmtdb

import (
	"fmt"

	"cloudmcp/internal/sim"
	"cloudmcp/internal/stats"
)

// Config sizes the database model.
type Config struct {
	// Conns is the connection-pool size.
	Conns int
	// WriteS is the service time per row write, seconds.
	WriteS float64
	// FlushS is the WAL flush (fsync) duration, seconds.
	FlushS float64
	// GroupWindowS is the group-commit gather window: a commit leader
	// waits this long for followers before flushing. 0 flushes every
	// commit individually.
	GroupWindowS float64
	// GroupRows extends group commit from the flush to the row work:
	// followers joining a gathering group hand their rows to the leader,
	// which acquires one pooled connection, writes every gathered row,
	// and flushes once. At high commit rates this amortizes the
	// connection acquisitions that otherwise scale with the commit count
	// — the batching lever for million-entity inventories. Off (the
	// default) reproduces the per-commit row path bit-for-bit.
	GroupRows bool
}

// DefaultConfig models a modest dedicated database: 4 connections, 5 ms
// row writes, 20 ms flushes, 5 ms group-commit window.
func DefaultConfig() Config {
	return Config{Conns: 4, WriteS: 0.005, FlushS: 0.020, GroupWindowS: 0.005}
}

func (c Config) validate() error {
	if c.Conns <= 0 || c.WriteS < 0 || c.FlushS < 0 || c.GroupWindowS < 0 {
		return fmt.Errorf("mgmtdb: bad config %+v", c)
	}
	return nil
}

// DB is the simulated management database.
type DB struct {
	env   *sim.Env
	cfg   Config
	conns *sim.Resource
	flush *sim.Resource // serializes WAL flushes

	// group-commit state: the signal commits wait on, nil when no group
	// is gathering. groupRows accumulates the gathered row count under
	// GroupRows mode.
	group     *sim.Signal
	groupSize int
	groupRows int

	commits   int64
	flushes   int64
	rows      int64
	commitLat stats.Moments
	groupHist stats.Moments
}

// New builds a database. Pool and WAL-flush occupancy register with the
// environment's metrics registry (if any) under the "mgmtdb" layer.
func New(env *sim.Env, cfg Config) (*DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db := &DB{
		env:   env,
		cfg:   cfg,
		conns: sim.NewResource(env, "db.conns", cfg.Conns),
		flush: sim.NewResource(env, "db.flush", 1),
	}
	if reg := env.Metrics(); reg != nil {
		db.conns.RegisterMetrics("mgmtdb")
		db.flush.RegisterMetrics("mgmtdb")
		reg.ScalarFunc("mgmtdb", "wal", "commits", func() float64 { return float64(db.commits) })
		reg.ScalarFunc("mgmtdb", "wal", "flushes", func() float64 { return float64(db.flushes) })
		reg.ScalarFunc("mgmtdb", "wal", "rows", func() float64 { return float64(db.rows) })
		reg.ScalarFunc("mgmtdb", "wal", "mean_commit_lat_s", func() float64 { return db.commitLat.Mean() })
		reg.ScalarFunc("mgmtdb", "wal", "mean_group_size", func() float64 {
			if db.flushes == 0 {
				return 0
			}
			return db.groupHist.Mean()
		})
	}
	return db, nil
}

// Config returns the database's configuration.
func (db *DB) Config() Config { return db.cfg }

// PinLane pins the database's connection pool and WAL-flush serializer
// to event lane l for cross-lane accounting (see sim.LaneConfig). The
// plane pins per-shard instances to their shard's lane; a shared WAL
// stays on lane 0, the shared-resource lane.
func (db *DB) PinLane(l int32) {
	db.conns.PinLane(l)
	db.flush.PinLane(l)
}

// Commit writes `writes` rows and makes them durable, blocking p for the
// whole transaction. It returns (waitS, serviceS): time spent queued for
// shared resources vs. time attributable to database work itself.
func (db *DB) Commit(p *sim.Proc, writes int) (waitS, serviceS float64) {
	if writes <= 0 {
		return 0, 0
	}
	if db.cfg.GroupRows {
		return db.commitGrouped(p, writes)
	}
	t0 := p.Now()

	// Row work on a pooled connection.
	db.conns.Acquire(p, 1)
	waitS += p.Now() - t0
	rowS := float64(writes) * db.cfg.WriteS
	p.Sleep(rowS)
	db.conns.Release(1)
	serviceS += rowS

	// Durability: join the gathering group, or lead a new one.
	d0 := p.Now()
	if db.group != nil {
		// Follower: the leader's flush will make this commit durable.
		db.groupSize++
		db.group.Wait(p)
	} else {
		sig := sim.NewSignal(db.env)
		db.group = sig
		db.groupSize = 1
		if db.cfg.GroupWindowS > 0 {
			p.Sleep(db.cfg.GroupWindowS)
		}
		// Close the group before flushing so commits arriving during
		// the flush form the next group instead of missing durability.
		size := db.groupSize
		db.group = nil
		db.groupSize = 0

		fw := p.Now()
		db.flush.Acquire(p, 1)
		waitS += p.Now() - fw
		p.Sleep(db.cfg.FlushS)
		db.flush.Release(1)

		db.flushes++
		db.groupHist.Add(float64(size))
		sig.Fire()
	}
	serviceS += p.Now() - d0
	// Conservatively count the whole durability phase as service for the
	// follower too: from the caller's perspective it is database time.

	db.commits++
	db.rows += int64(writes)
	db.commitLat.Add(p.Now() - t0)
	return waitS, serviceS
}

// commitGrouped is Commit under GroupRows: one leader gathers follower
// rows for the group window, then writes the whole batch over a single
// pooled connection and flushes once. Followers' entire stay — gather,
// batched row work, flush — counts as database service time, matching
// the conservative accounting of the ungrouped follower path.
func (db *DB) commitGrouped(p *sim.Proc, writes int) (waitS, serviceS float64) {
	t0 := p.Now()
	if db.group != nil {
		// Follower: hand rows to the gathering leader; its single
		// write+flush makes this commit durable.
		db.groupSize++
		db.groupRows += writes
		db.group.Wait(p)
		db.commits++
		db.rows += int64(writes)
		db.commitLat.Add(p.Now() - t0)
		return 0, p.Now() - t0
	}
	sig := sim.NewSignal(db.env)
	db.group = sig
	db.groupSize = 1
	db.groupRows = writes
	if db.cfg.GroupWindowS > 0 {
		p.Sleep(db.cfg.GroupWindowS)
	}
	// Close the group before touching shared resources so commits
	// arriving during the batched write or flush form the next group.
	size, rows := db.groupSize, db.groupRows
	db.group = nil
	db.groupSize, db.groupRows = 0, 0

	aw := p.Now()
	db.conns.Acquire(p, 1)
	waitS += p.Now() - aw
	p.Sleep(float64(rows) * db.cfg.WriteS)
	db.conns.Release(1)

	fw := p.Now()
	db.flush.Acquire(p, 1)
	waitS += p.Now() - fw
	p.Sleep(db.cfg.FlushS)
	db.flush.Release(1)

	db.flushes++
	db.groupHist.Add(float64(size))
	sig.Fire()

	serviceS = (p.Now() - t0) - waitS
	db.commits++
	db.rows += int64(writes)
	db.commitLat.Add(p.Now() - t0)
	return waitS, serviceS
}

// Stats is a snapshot of database activity.
type Stats struct {
	Commits       int64
	Flushes       int64
	Rows          int64
	MeanCommitLat float64
	MeanGroupSize float64
	ConnStats     sim.ResourceStats
	FlushStats    sim.ResourceStats
}

// Stats returns accumulated statistics.
func (db *DB) Stats() Stats {
	s := Stats{
		Commits:       db.commits,
		Flushes:       db.flushes,
		Rows:          db.rows,
		MeanCommitLat: db.commitLat.Mean(),
		ConnStats:     db.conns.Stats(),
		FlushStats:    db.flush.Stats(),
	}
	if db.flushes > 0 {
		s.MeanGroupSize = db.groupHist.Mean()
	}
	return s
}
