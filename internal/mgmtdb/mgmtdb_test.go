package mgmtdb

import (
	"math"
	"testing"

	"cloudmcp/internal/sim"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSingleCommitLatency(t *testing.T) {
	env := sim.NewEnv()
	db, err := New(env, Config{Conns: 2, WriteS: 0.01, FlushS: 0.05, GroupWindowS: 0})
	if err != nil {
		t.Fatal(err)
	}
	var wait, service float64
	env.Go("c", func(p *sim.Proc) {
		wait, service = db.Commit(p, 3)
	})
	end := env.Run(sim.Forever)
	// 3 rows * 10ms + 50ms flush = 80ms total, no queueing.
	if !almost(float64(end), 0.08, 1e-9) {
		t.Fatalf("end = %v", end)
	}
	if wait != 0 || !almost(service, 0.08, 1e-9) {
		t.Fatalf("wait=%v service=%v", wait, service)
	}
	s := db.Stats()
	if s.Commits != 1 || s.Flushes != 1 || s.Rows != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroWritesFree(t *testing.T) {
	env := sim.NewEnv()
	db, _ := New(env, DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		w, s := db.Commit(p, 0)
		if w != 0 || s != 0 {
			t.Errorf("w=%v s=%v", w, s)
		}
	})
	if end := env.Run(sim.Forever); end != 0 {
		t.Fatalf("end = %v", end)
	}
	if db.Stats().Commits != 0 {
		t.Fatal("zero-write commit counted")
	}
}

func TestGroupCommitSharesFlush(t *testing.T) {
	// 8 commits arriving inside one 100ms window share a single flush.
	env := sim.NewEnv()
	db, _ := New(env, Config{Conns: 8, WriteS: 0.001, FlushS: 0.05, GroupWindowS: 0.1})
	for i := 0; i < 8; i++ {
		i := i
		env.Go("c", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 0.005) // all well inside the window
			db.Commit(p, 1)
		})
	}
	env.Run(sim.Forever)
	s := db.Stats()
	if s.Commits != 8 {
		t.Fatalf("commits = %d", s.Commits)
	}
	if s.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (group commit)", s.Flushes)
	}
	if !almost(s.MeanGroupSize, 8, 1e-9) {
		t.Fatalf("group size = %v", s.MeanGroupSize)
	}
}

func TestNoBatchingFlushesPerCommit(t *testing.T) {
	env := sim.NewEnv()
	db, _ := New(env, Config{Conns: 8, WriteS: 0.001, FlushS: 0.05, GroupWindowS: 0})
	for i := 0; i < 8; i++ {
		env.Go("c", func(p *sim.Proc) { db.Commit(p, 1) })
	}
	end := env.Run(sim.Forever)
	s := db.Stats()
	if s.Flushes != 8 {
		t.Fatalf("flushes = %d, want 8", s.Flushes)
	}
	// Flushes serialize: makespan >= 8 * 50ms.
	if float64(end) < 0.4 {
		t.Fatalf("end = %v, want >= 0.4 (serialized flushes)", end)
	}
}

func TestBatchingImprovesThroughput(t *testing.T) {
	run := func(window float64) sim.Time {
		env := sim.NewEnv()
		db, _ := New(env, Config{Conns: 16, WriteS: 0.001, FlushS: 0.05, GroupWindowS: window})
		for i := 0; i < 64; i++ {
			env.Go("c", func(p *sim.Proc) {
				for j := 0; j < 4; j++ {
					db.Commit(p, 2)
				}
			})
		}
		return env.Run(sim.Forever)
	}
	noBatch := run(0)
	batched := run(0.02)
	if float64(batched)*2 > float64(noBatch) {
		t.Fatalf("batching did not help: %v vs %v", batched, noBatch)
	}
}

func TestConnPoolQueues(t *testing.T) {
	env := sim.NewEnv()
	db, _ := New(env, Config{Conns: 1, WriteS: 0.1, FlushS: 0.001, GroupWindowS: 0})
	waits := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.Go("c", func(p *sim.Proc) {
			w, _ := db.Commit(p, 1)
			waits[i] = w
		})
	}
	env.Run(sim.Forever)
	queued := 0
	for _, w := range waits {
		if w > 0.05 {
			queued++
		}
	}
	if queued != 1 {
		t.Fatalf("waits = %v, want exactly one queued", waits)
	}
}

func TestCommitsDuringFlushFormNextGroup(t *testing.T) {
	// Leader flushes for 1s; a commit arriving mid-flush must not join
	// the closed group (it would be reported durable before its flush).
	env := sim.NewEnv()
	db, _ := New(env, Config{Conns: 4, WriteS: 0.001, FlushS: 1.0, GroupWindowS: 0.01})
	var lateDone sim.Time
	env.Go("early", func(p *sim.Proc) { db.Commit(p, 1) })
	env.Go("late", func(p *sim.Proc) {
		p.Sleep(0.5) // mid-flush of the first group
		db.Commit(p, 1)
		lateDone = p.Now()
	})
	env.Run(sim.Forever)
	s := db.Stats()
	if s.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", s.Flushes)
	}
	// Late commit's flush starts after the first completes (~1.011) and
	// takes 1s itself.
	if float64(lateDone) < 1.9 {
		t.Fatalf("late done at %v, joined the closed group", lateDone)
	}
}

func TestGroupRowsBatchesRowWork(t *testing.T) {
	// Under GroupRows, 8 commits inside one window produce a single
	// connection acquisition writing all 16 rows back-to-back plus one
	// flush: window + 16*WriteS + FlushS.
	env := sim.NewEnv()
	db, _ := New(env, Config{Conns: 1, WriteS: 0.01, FlushS: 0.05, GroupWindowS: 0.1, GroupRows: true})
	for i := 0; i < 8; i++ {
		i := i
		env.Go("c", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 0.005)
			db.Commit(p, 2)
		})
	}
	end := env.Run(sim.Forever)
	s := db.Stats()
	if s.Commits != 8 || s.Rows != 16 || s.Flushes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if !almost(s.MeanGroupSize, 8, 1e-9) {
		t.Fatalf("group size = %v", s.MeanGroupSize)
	}
	if !almost(float64(end), 0.1+16*0.01+0.05, 1e-9) {
		t.Fatalf("end = %v, want 0.31 (one batched write + one flush)", end)
	}
}

func TestGroupRowsSoloCommitMatchesShape(t *testing.T) {
	// A lone GroupRows commit costs window + rows*WriteS + FlushS.
	env := sim.NewEnv()
	db, _ := New(env, Config{Conns: 2, WriteS: 0.01, FlushS: 0.05, GroupWindowS: 0.005, GroupRows: true})
	var wait, service float64
	env.Go("c", func(p *sim.Proc) { wait, service = db.Commit(p, 3) })
	end := env.Run(sim.Forever)
	want := 0.005 + 3*0.01 + 0.05
	if !almost(float64(end), want, 1e-9) {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if wait != 0 || !almost(service, want, 1e-9) {
		t.Fatalf("wait=%v service=%v", wait, service)
	}
}

func TestGroupRowsOutperformsPerCommitRows(t *testing.T) {
	run := func(groupRows bool) sim.Time {
		env := sim.NewEnv()
		db, _ := New(env, Config{Conns: 2, WriteS: 0.002, FlushS: 0.05, GroupWindowS: 0.02, GroupRows: groupRows})
		for i := 0; i < 64; i++ {
			env.Go("c", func(p *sim.Proc) {
				for j := 0; j < 4; j++ {
					db.Commit(p, 2)
				}
			})
		}
		return env.Run(sim.Forever)
	}
	perCommit := run(false)
	batched := run(true)
	if float64(batched) >= float64(perCommit) {
		t.Fatalf("row batching did not help: %v vs %v", batched, perCommit)
	}
}

func TestBadConfigRejected(t *testing.T) {
	env := sim.NewEnv()
	if _, err := New(env, Config{Conns: 0}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := New(env, Config{Conns: 1, WriteS: -1}); err == nil {
		t.Fatal("expected error")
	}
}
