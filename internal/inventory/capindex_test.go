package inventory

import (
	"testing"
	"testing/quick"
)

// referenceBestHost is the O(hosts) scan BestHost replaced: most free
// memory wins, first host in creation order wins ties (strict >).
func referenceBestHost(inv *Inventory, memMB int) *Host {
	var best *Host
	for _, id := range inv.Hosts() {
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < memMB {
			continue
		}
		if best == nil || h.FreeMemMB() > best.FreeMemMB() {
			best = h
		}
	}
	return best
}

// referenceBestDatastore is the O(datastores) scan BestDatastore
// replaced, net of reservations.
func referenceBestDatastore(inv *Inventory, needGB float64) *Datastore {
	var best *Datastore
	for _, id := range inv.Datastores() {
		d := inv.Datastore(id)
		if inv.EffectiveFreeGB(d) < needGB {
			continue
		}
		if best == nil || inv.EffectiveFreeGB(d) > inv.EffectiveFreeGB(best) {
			best = d
		}
	}
	return best
}

func TestCapHeapOrdering(t *testing.T) {
	h := newCapHeap()
	h.Set(ID(3), 10)
	h.Set(ID(1), 10) // same key, lower ID: must win the tie
	h.Set(ID(2), 30)
	if id, key, ok := h.Max(); !ok || id != 2 || key != 30 {
		t.Fatalf("max = (%v, %v, %v), want (2, 30, true)", id, key, ok)
	}
	h.Remove(ID(2))
	if id, key, ok := h.Max(); !ok || id != 1 || key != 10 {
		t.Fatalf("after remove, max = (%v, %v, %v), want (1, 10, true)", id, key, ok)
	}
	h.Set(ID(3), 99) // rekey up
	if id, _, _ := h.Max(); id != 3 {
		t.Fatalf("after rekey, max id = %v, want 3", id)
	}
	h.Remove(ID(3))
	h.Remove(ID(1))
	if _, _, ok := h.Max(); ok || h.Len() != 0 {
		t.Fatal("heap not empty after removing everything")
	}
}

func TestCapHeapMatchesScanUnderRandomOps(t *testing.T) {
	// Property: after any Set/Remove sequence, Max equals a linear scan
	// under the (key desc, ID asc) order.
	f := func(script []uint16) bool {
		h := newCapHeap()
		keys := map[ID]float64{}
		for _, op := range script {
			id := ID(op % 16)
			if op%3 == 0 {
				h.Remove(id)
				delete(keys, id)
			} else {
				k := float64(op % 7) // few distinct keys force ties
				h.Set(id, k)
				keys[id] = k
			}
			var bestID ID
			bestKey, found := 0.0, false
			for id, k := range keys {
				if !found || k > bestKey || (k == bestKey && id < bestID) {
					bestID, bestKey, found = id, k, true
				}
			}
			gotID, gotKey, ok := h.Max()
			if ok != found || (found && (gotID != bestID || gotKey != bestKey)) {
				return false
			}
			if h.Len() != len(keys) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBestHostMatchesReferenceScan(t *testing.T) {
	inv := New()
	dc := inv.AddDatacenter("dc")
	cl := inv.AddCluster(dc, "cl")
	var hosts []*Host
	for i := 0; i < 8; i++ {
		hosts = append(hosts, inv.AddHost(cl, "h", 40000, 65536))
	}
	var dss []*Datastore
	for i := 0; i < 4; i++ {
		dss = append(dss, inv.AddDatastore(dc, "d", 2000, 100))
	}
	// Deterministic pseudo-random churn: VM adds/removes, maintenance
	// and failure toggles, reservations. After every mutation the index
	// must agree with the scans exactly — including float equality.
	var vms []*VM
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for step := 0; step < 2000; step++ {
		switch next(6) {
		case 0, 1:
			h, d := hosts[next(len(hosts))], dss[next(len(dss))]
			if vm, err := inv.AddVM("vm", h, d, 1, 1024*(1+next(4)), float64(1+next(20))); err == nil {
				vms = append(vms, vm)
			}
		case 2:
			if len(vms) > 0 {
				i := next(len(vms))
				if inv.RemoveVM(vms[i]) == nil {
					vms = append(vms[:i], vms[i+1:]...)
				}
			}
		case 3:
			h := hosts[next(len(hosts))]
			inv.SetHostMaintenance(h, !h.Maintenance)
		case 4:
			h := hosts[next(len(hosts))]
			inv.SetHostFailed(h, !h.Failed)
		case 5:
			d := dss[next(len(dss))]
			if next(2) == 0 {
				inv.Reserve(d.ID, float64(next(50)))
			} else if r := inv.Reserved(d.ID); r > 0 {
				inv.Reserve(d.ID, -r)
			}
		}
		memMB := 1024 * (1 + next(8))
		if got, want := inv.BestHost(memMB), referenceBestHost(inv, memMB); got != want {
			t.Fatalf("step %d: BestHost(%d) = %v, scan = %v", step, memMB, got, want)
		}
		needGB := float64(1 + next(40))
		if got, want := inv.BestDatastore(needGB), referenceBestDatastore(inv, needGB); got != want {
			t.Fatalf("step %d: BestDatastore(%v) = %v, scan = %v", step, needGB, got, want)
		}
		if step%100 == 0 {
			if err := inv.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBestHostInGroupMatchesReferenceScan(t *testing.T) {
	inv := New()
	dc := inv.AddDatacenter("dc")
	cl := inv.AddCluster(dc, "cl")
	d := inv.AddDatastore(dc, "d", 10000, 100)
	const groups = 3
	var hosts []*Host
	for i := 0; i < 9; i++ {
		h := inv.AddHost(cl, "h", 40000, 65536)
		inv.SetHostGroup(h.ID, i*groups/9)
		hosts = append(hosts, h)
	}
	ref := func(group, memMB int) *Host {
		var best *Host
		for i, h := range hosts {
			if i*groups/9 != group || !h.InService() || h.FreeMemMB() < memMB {
				continue
			}
			if best == nil || h.FreeMemMB() > best.FreeMemMB() {
				best = h
			}
		}
		return best
	}
	state := uint64(7)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	var vms []*VM
	for step := 0; step < 1000; step++ {
		switch next(4) {
		case 0, 1:
			if vm, err := inv.AddVM("vm", hosts[next(9)], d, 1, 2048*(1+next(4)), 1); err == nil {
				vms = append(vms, vm)
			}
		case 2:
			if len(vms) > 0 {
				i := next(len(vms))
				if inv.RemoveVM(vms[i]) == nil {
					vms = append(vms[:i], vms[i+1:]...)
				}
			}
		case 3:
			h := hosts[next(9)]
			inv.SetHostMaintenance(h, !h.Maintenance)
		}
		group, memMB := next(groups), 2048*(1+next(6))
		if got, want := inv.BestHostInGroup(group, memMB), ref(group, memMB); got != want {
			t.Fatalf("step %d: BestHostInGroup(%d, %d) = %v, scan = %v", step, group, memMB, got, want)
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveVMKeepsEnumerationOrder(t *testing.T) {
	// RemoveVM deletes in O(1) via tombstoning; VMs() must still
	// enumerate survivors in creation order — the order every artifact
	// and CheckInvariants walk depends on.
	inv, _, hosts, ds, _ := build(t)
	var created []*VM
	for i := 0; i < 10; i++ {
		vm, err := inv.AddVM("vm", hosts[i%2], ds[i%2], 1, 1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		created = append(created, vm)
	}
	// Remove from the middle, front, and back.
	for _, i := range []int{4, 0, 9, 5} {
		if err := inv.RemoveVM(created[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := []ID{created[1].ID, created[2].ID, created[3].ID, created[6].ID, created[7].ID, created[8].ID}
	got := inv.VMs()
	if len(got) != len(want) {
		t.Fatalf("VMs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VMs()[%d] = %v, want %v (creation order violated)", i, got[i], want[i])
		}
	}
	if c := inv.Count(); c.VMs != 6 {
		t.Fatalf("Count().VMs = %d, want 6", c.VMs)
	}
	// Enumeration stays stable across the compaction VMs() performed.
	again := inv.VMs()
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("second VMs()[%d] = %v, want %v", i, again[i], want[i])
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// New VMs append after survivors.
	vm, err := inv.AddVM("tail", hosts[0], ds[0], 1, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := inv.VMs()
	if ids[len(ids)-1] != vm.ID {
		t.Fatalf("new VM not at tail: %v", ids)
	}
}

func TestSetHostGroupMovesBetweenGroupHeaps(t *testing.T) {
	inv := New()
	dc := inv.AddDatacenter("dc")
	cl := inv.AddCluster(dc, "cl")
	h0 := inv.AddHost(cl, "h0", 40000, 65536)
	h1 := inv.AddHost(cl, "h1", 40000, 32768)
	inv.SetHostGroup(h0.ID, 0)
	inv.SetHostGroup(h1.ID, 1)
	if got := inv.BestHostInGroup(0, 1024); got != h0 {
		t.Fatalf("group 0 best = %v, want h0", got)
	}
	if got := inv.BestHostInGroup(1, 1024); got != h1 {
		t.Fatalf("group 1 best = %v, want h1", got)
	}
	inv.SetHostGroup(h0.ID, 1)
	if got := inv.BestHostInGroup(0, 1024); got != nil {
		t.Fatalf("group 0 best after move = %v, want nil", got)
	}
	if got := inv.BestHostInGroup(1, 1024); got != h0 {
		t.Fatalf("group 1 best after move = %v, want h0 (more free memory)", got)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
