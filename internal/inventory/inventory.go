// Package inventory models the managed-object inventory of a virtualized
// datacenter: datacenters, clusters, hosts, datastores, resource pools,
// VMs, templates, and vApps, connected in the parent/child hierarchy that
// management operations lock along.
//
// The inventory is pure data plus invariant checks; it knows nothing about
// virtual time. The management plane (package mgmt) serializes access, so
// none of these types need internal locking.
package inventory

import (
	"fmt"
	"sort"
)

// ID uniquely identifies an entity within one Inventory. IDs are assigned
// densely in creation order, which also serves as the canonical lock
// ordering that prevents deadlock in the management plane.
type ID int64

// None is the zero ID, used for "no parent" and "no reference".
const None ID = 0

// Kind enumerates entity types.
type Kind int

// Entity kinds, from the root of the hierarchy down.
const (
	KindDatacenter Kind = iota + 1
	KindCluster
	KindHost
	KindResourcePool
	KindDatastore
	KindNetwork
	KindVM
	KindTemplate
	KindVApp
)

var kindNames = map[Kind]string{
	KindDatacenter:   "datacenter",
	KindCluster:      "cluster",
	KindHost:         "host",
	KindResourcePool: "resourcepool",
	KindDatastore:    "datastore",
	KindNetwork:      "network",
	KindVM:           "vm",
	KindTemplate:     "template",
	KindVApp:         "vapp",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Entity is the common header embedded in every inventory object.
type Entity struct {
	ID     ID
	Name   string
	Kind   Kind
	Parent ID // containing entity in the lock hierarchy (None for roots)
}

// VMState is the lifecycle state of a virtual machine.
type VMState int

// VM lifecycle states.
const (
	VMProvisioning VMState = iota + 1
	VMPoweredOff
	VMPoweredOn
	VMSuspended
	VMDeleted
)

var vmStateNames = map[VMState]string{
	VMProvisioning: "provisioning",
	VMPoweredOff:   "poweredOff",
	VMPoweredOn:    "poweredOn",
	VMSuspended:    "suspended",
	VMDeleted:      "deleted",
}

func (s VMState) String() string {
	if n, ok := vmStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("vmstate(%d)", int(s))
}

// Datacenter is the root container.
type Datacenter struct {
	Entity
	Clusters   []ID
	Datastores []ID
}

// Cluster groups hosts for placement and admission.
type Cluster struct {
	Entity
	Hosts []ID
}

// Host is a hypervisor host with simple capacity accounting.
type Host struct {
	Entity
	CPUMHz     int // total CPU capacity
	MemMB      int // total memory
	UsedCPUMHz int
	UsedMemMB  int
	VMs        []ID
	// Maintenance marks a host being evacuated/serviced: placement must
	// skip it and it should end up empty.
	Maintenance bool
	// Failed marks a crashed host: its VMs are stranded until the HA
	// engine restarts them elsewhere (package ha).
	Failed bool
}

// InService reports whether the host can accept placements.
func (h *Host) InService() bool { return !h.Maintenance && !h.Failed }

// FreeCPUMHz returns remaining CPU capacity.
func (h *Host) FreeCPUMHz() int { return h.CPUMHz - h.UsedCPUMHz }

// FreeMemMB returns remaining memory capacity.
func (h *Host) FreeMemMB() int { return h.MemMB - h.UsedMemMB }

// Datastore is shared storage with capacity and copy-bandwidth attributes.
// Bandwidth is consumed by the storage simulator (package storage).
type Datastore struct {
	Entity
	CapacityGB    float64
	UsedGB        float64
	BandwidthMBps float64 // aggregate copy bandwidth
	VMs           []ID
}

// FreeGB returns remaining datastore capacity.
func (d *Datastore) FreeGB() float64 { return d.CapacityGB - d.UsedGB }

// FillFraction returns UsedGB/CapacityGB.
func (d *Datastore) FillFraction() float64 {
	if d.CapacityGB == 0 {
		return 0
	}
	return d.UsedGB / d.CapacityGB
}

// Template is a catalog image VMs are cloned from.
type Template struct {
	Entity
	DiskGB      float64
	MemMB       int
	CPUs        int
	DatastoreID ID // where the base disk lives
}

// VM is a virtual machine.
type VM struct {
	Entity
	State       VMState
	CPUs        int
	MemMB       int
	DiskGB      float64 // bytes attributable to this VM on its datastore
	HostID      ID
	DatastoreID ID
	TemplateID  ID // template it was deployed from (None if constructed raw)
	VAppID      ID

	// Linked-clone bookkeeping. LinkedParent is the template (or VM) whose
	// base disk this VM's delta chain hangs off; ChainLen is the number of
	// redo links between this VM's active disk and the base.
	LinkedParent ID
	ChainLen     int
	Snapshots    int

	// SuspendGB is the size of the suspend (memory checkpoint) file
	// currently charged to the VM's datastore, 0 when not suspended.
	SuspendGB float64
}

// VApp is a group of VMs deployed and managed as a unit (the cloud
// director's unit of self-service deployment).
type VApp struct {
	Entity
	OrgName string
	VMs     []ID
}

// Inventory is the registry of all entities in one simulated installation.
type Inventory struct {
	nextID      ID
	entities    map[ID]any
	datacenters []ID
	clusters    []ID
	hosts       []ID
	datastores  []ID
	vms         []ID
	templates   []ID
	vapps       []ID
}

// New returns an empty inventory.
func New() *Inventory {
	return &Inventory{nextID: 1, entities: make(map[ID]any)}
}

func (inv *Inventory) allocate() ID {
	id := inv.nextID
	inv.nextID++
	return id
}

// AddDatacenter creates a root datacenter.
func (inv *Inventory) AddDatacenter(name string) *Datacenter {
	dc := &Datacenter{Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindDatacenter}}
	inv.entities[dc.ID] = dc
	inv.datacenters = append(inv.datacenters, dc.ID)
	return dc
}

// AddCluster creates a cluster inside dc.
func (inv *Inventory) AddCluster(dc *Datacenter, name string) *Cluster {
	c := &Cluster{Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindCluster, Parent: dc.ID}}
	inv.entities[c.ID] = c
	inv.clusters = append(inv.clusters, c.ID)
	dc.Clusters = append(dc.Clusters, c.ID)
	return c
}

// AddHost creates a host inside cluster with the given capacity.
func (inv *Inventory) AddHost(c *Cluster, name string, cpuMHz, memMB int) *Host {
	if cpuMHz <= 0 || memMB <= 0 {
		panic(fmt.Sprintf("inventory: host %q capacity %d MHz / %d MB", name, cpuMHz, memMB))
	}
	h := &Host{
		Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindHost, Parent: c.ID},
		CPUMHz: cpuMHz, MemMB: memMB,
	}
	inv.entities[h.ID] = h
	inv.hosts = append(inv.hosts, h.ID)
	c.Hosts = append(c.Hosts, h.ID)
	return h
}

// AddDatastore creates a datastore inside dc.
func (inv *Inventory) AddDatastore(dc *Datacenter, name string, capacityGB, bandwidthMBps float64) *Datastore {
	if capacityGB <= 0 || bandwidthMBps <= 0 {
		panic(fmt.Sprintf("inventory: datastore %q capacity %v GB bw %v MB/s", name, capacityGB, bandwidthMBps))
	}
	d := &Datastore{
		Entity:     Entity{ID: inv.allocate(), Name: name, Kind: KindDatastore, Parent: dc.ID},
		CapacityGB: capacityGB, BandwidthMBps: bandwidthMBps,
	}
	inv.entities[d.ID] = d
	inv.datastores = append(inv.datastores, d.ID)
	dc.Datastores = append(dc.Datastores, d.ID)
	return d
}

// AddTemplate creates a template whose base disk occupies space on ds.
func (inv *Inventory) AddTemplate(ds *Datastore, name string, diskGB float64, memMB, cpus int) *Template {
	if diskGB <= 0 {
		panic(fmt.Sprintf("inventory: template %q disk %v GB", name, diskGB))
	}
	t := &Template{
		Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindTemplate, Parent: ds.ID},
		DiskGB: diskGB, MemMB: memMB, CPUs: cpus, DatastoreID: ds.ID,
	}
	inv.entities[t.ID] = t
	inv.templates = append(inv.templates, t.ID)
	ds.UsedGB += diskGB
	return t
}

// AddVApp creates an empty vApp owned by org, parented to dc.
func (inv *Inventory) AddVApp(dc *Datacenter, name, org string) *VApp {
	v := &VApp{
		Entity:  Entity{ID: inv.allocate(), Name: name, Kind: KindVApp, Parent: dc.ID},
		OrgName: org,
	}
	inv.entities[v.ID] = v
	inv.vapps = append(inv.vapps, v.ID)
	return v
}

// AddVM creates a VM placed on host and ds, charging capacity on both.
// diskGB is the space the VM's own disks occupy (the delta disk size for a
// linked clone). The VM starts in VMProvisioning.
func (inv *Inventory) AddVM(name string, host *Host, ds *Datastore, cpus, memMB int, diskGB float64) (*VM, error) {
	if cpus <= 0 || memMB <= 0 || diskGB < 0 {
		panic(fmt.Sprintf("inventory: vm %q shape cpus=%d mem=%d disk=%v", name, cpus, memMB, diskGB))
	}
	if host.FreeMemMB() < memMB {
		return nil, fmt.Errorf("inventory: host %s out of memory for %s (%d free, need %d)", host.Name, name, host.FreeMemMB(), memMB)
	}
	if ds.FreeGB() < diskGB {
		return nil, fmt.Errorf("inventory: datastore %s out of space for %s (%.1f free, need %.1f)", ds.Name, name, ds.FreeGB(), diskGB)
	}
	vm := &VM{
		Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindVM, Parent: host.ID},
		State:  VMProvisioning,
		CPUs:   cpus, MemMB: memMB, DiskGB: diskGB,
		HostID: host.ID, DatastoreID: ds.ID,
	}
	inv.entities[vm.ID] = vm
	inv.vms = append(inv.vms, vm.ID)
	host.VMs = append(host.VMs, vm.ID)
	host.UsedMemMB += memMB
	ds.VMs = append(ds.VMs, vm.ID)
	ds.UsedGB += diskGB
	return vm, nil
}

// RemoveVM deletes vm, releasing host and datastore capacity. It is an
// error to remove a powered-on or already-deleted VM.
func (inv *Inventory) RemoveVM(vm *VM) error {
	if vm.State == VMPoweredOn {
		return fmt.Errorf("inventory: cannot remove powered-on VM %s", vm.Name)
	}
	if vm.State == VMDeleted {
		return fmt.Errorf("inventory: VM %s already deleted", vm.Name)
	}
	host := inv.Host(vm.HostID)
	ds := inv.Datastore(vm.DatastoreID)
	host.VMs = removeID(host.VMs, vm.ID)
	host.UsedMemMB -= vm.MemMB
	ds.VMs = removeID(ds.VMs, vm.ID)
	ds.UsedGB -= vm.DiskGB
	if vm.VAppID != None {
		va := inv.VApp(vm.VAppID)
		va.VMs = removeID(va.VMs, vm.ID)
	}
	vm.State = VMDeleted
	delete(inv.entities, vm.ID)
	inv.vms = removeID(inv.vms, vm.ID)
	return nil
}

// RemoveVApp deletes an (empty) vApp container.
func (inv *Inventory) RemoveVApp(va *VApp) error {
	if len(va.VMs) != 0 {
		return fmt.Errorf("inventory: vApp %s still has %d VMs", va.Name, len(va.VMs))
	}
	delete(inv.entities, va.ID)
	inv.vapps = removeID(inv.vapps, va.ID)
	return nil
}

// MoveVM relocates vm to a new host and/or datastore, transferring the
// capacity charges. Pass nil to keep the current placement on that axis.
func (inv *Inventory) MoveVM(vm *VM, newHost *Host, newDS *Datastore) error {
	if vm.State == VMDeleted {
		return fmt.Errorf("inventory: move of deleted VM %s", vm.Name)
	}
	if newHost != nil && newHost.ID != vm.HostID {
		if newHost.FreeMemMB() < vm.MemMB {
			return fmt.Errorf("inventory: host %s out of memory for %s", newHost.Name, vm.Name)
		}
		old := inv.Host(vm.HostID)
		old.VMs = removeID(old.VMs, vm.ID)
		old.UsedMemMB -= vm.MemMB
		if vm.State == VMPoweredOn {
			old.UsedCPUMHz -= vm.CPUs * cpuMHzPerVCPU
			newHost.UsedCPUMHz += vm.CPUs * cpuMHzPerVCPU
		}
		newHost.VMs = append(newHost.VMs, vm.ID)
		newHost.UsedMemMB += vm.MemMB
		vm.HostID = newHost.ID
		vm.Parent = newHost.ID
	}
	if newDS != nil && newDS.ID != vm.DatastoreID {
		if newDS.FreeGB() < vm.DiskGB {
			return fmt.Errorf("inventory: datastore %s out of space for %s", newDS.Name, vm.Name)
		}
		old := inv.Datastore(vm.DatastoreID)
		old.VMs = removeID(old.VMs, vm.ID)
		old.UsedGB -= vm.DiskGB
		newDS.VMs = append(newDS.VMs, vm.ID)
		newDS.UsedGB += vm.DiskGB
		vm.DatastoreID = newDS.ID
	}
	return nil
}

// cpuMHzPerVCPU is the CPU reservation charged per vCPU while powered on.
const cpuMHzPerVCPU = 500

// PowerOn transitions vm to VMPoweredOn, charging CPU on its host.
// Suspended VMs must Resume instead, so their checkpoint is reclaimed.
func (inv *Inventory) PowerOn(vm *VM) error {
	if vm.State != VMPoweredOff && vm.State != VMProvisioning {
		return fmt.Errorf("inventory: power on %s in state %s", vm.Name, vm.State)
	}
	h := inv.Host(vm.HostID)
	need := vm.CPUs * cpuMHzPerVCPU
	if h.FreeCPUMHz() < need {
		return fmt.Errorf("inventory: host %s out of CPU for %s", h.Name, vm.Name)
	}
	h.UsedCPUMHz += need
	vm.State = VMPoweredOn
	return nil
}

// PowerOff transitions vm to VMPoweredOff, releasing CPU. Powering off a
// suspended VM discards its checkpoint, reclaiming the suspend file.
func (inv *Inventory) PowerOff(vm *VM) error {
	if vm.State != VMPoweredOn && vm.State != VMSuspended {
		return fmt.Errorf("inventory: power off %s in state %s", vm.Name, vm.State)
	}
	if vm.State == VMPoweredOn {
		inv.Host(vm.HostID).UsedCPUMHz -= vm.CPUs * cpuMHzPerVCPU
	}
	inv.reclaimSuspendFile(vm)
	vm.State = VMPoweredOff
	return nil
}

// Suspend checkpoints a powered-on VM: CPU is released and the memory
// image (suspendGB) is charged against the VM's datastore.
func (inv *Inventory) Suspend(vm *VM, suspendGB float64) error {
	if vm.State != VMPoweredOn {
		return fmt.Errorf("inventory: suspend %s in state %s", vm.Name, vm.State)
	}
	if suspendGB < 0 {
		panic(fmt.Sprintf("inventory: suspend file %v GB", suspendGB))
	}
	ds := inv.Datastore(vm.DatastoreID)
	if ds.FreeGB() < suspendGB {
		return fmt.Errorf("inventory: datastore %s out of space for suspend of %s", ds.Name, vm.Name)
	}
	inv.Host(vm.HostID).UsedCPUMHz -= vm.CPUs * cpuMHzPerVCPU
	vm.SuspendGB = suspendGB
	vm.DiskGB += suspendGB
	ds.UsedGB += suspendGB
	vm.State = VMSuspended
	return nil
}

// Resume restores a suspended VM to running, re-charging CPU and
// reclaiming the suspend file.
func (inv *Inventory) Resume(vm *VM) error {
	if vm.State != VMSuspended {
		return fmt.Errorf("inventory: resume %s in state %s", vm.Name, vm.State)
	}
	h := inv.Host(vm.HostID)
	need := vm.CPUs * cpuMHzPerVCPU
	if h.FreeCPUMHz() < need {
		return fmt.Errorf("inventory: host %s out of CPU to resume %s", h.Name, vm.Name)
	}
	h.UsedCPUMHz += need
	inv.reclaimSuspendFile(vm)
	vm.State = VMPoweredOn
	return nil
}

func (inv *Inventory) reclaimSuspendFile(vm *VM) {
	if vm.SuspendGB <= 0 {
		return
	}
	vm.DiskGB -= vm.SuspendGB
	inv.Datastore(vm.DatastoreID).UsedGB -= vm.SuspendGB
	vm.SuspendGB = 0
}

func removeID(ids []ID, id ID) []ID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Get returns the entity with the given ID, or nil.
func (inv *Inventory) Get(id ID) any { return inv.entities[id] }

// Header returns the Entity header of the object with the given ID, or nil.
func (inv *Inventory) Header(id ID) *Entity {
	switch e := inv.entities[id].(type) {
	case *Datacenter:
		return &e.Entity
	case *Cluster:
		return &e.Entity
	case *Host:
		return &e.Entity
	case *Datastore:
		return &e.Entity
	case *Template:
		return &e.Entity
	case *VM:
		return &e.Entity
	case *VApp:
		return &e.Entity
	}
	return nil
}

// Datacenter returns the datacenter with id, or nil if absent/wrong kind.
func (inv *Inventory) Datacenter(id ID) *Datacenter { d, _ := inv.entities[id].(*Datacenter); return d }

// Cluster returns the cluster with id, or nil.
func (inv *Inventory) Cluster(id ID) *Cluster { c, _ := inv.entities[id].(*Cluster); return c }

// Host returns the host with id, or nil.
func (inv *Inventory) Host(id ID) *Host { h, _ := inv.entities[id].(*Host); return h }

// Datastore returns the datastore with id, or nil.
func (inv *Inventory) Datastore(id ID) *Datastore { d, _ := inv.entities[id].(*Datastore); return d }

// Template returns the template with id, or nil.
func (inv *Inventory) Template(id ID) *Template { t, _ := inv.entities[id].(*Template); return t }

// VM returns the VM with id, or nil.
func (inv *Inventory) VM(id ID) *VM { v, _ := inv.entities[id].(*VM); return v }

// VApp returns the vApp with id, or nil.
func (inv *Inventory) VApp(id ID) *VApp { v, _ := inv.entities[id].(*VApp); return v }

// Datacenters returns all datacenter IDs in creation order.
func (inv *Inventory) Datacenters() []ID { return inv.datacenters }

// Clusters returns all cluster IDs in creation order.
func (inv *Inventory) Clusters() []ID { return inv.clusters }

// Hosts returns all host IDs in creation order.
func (inv *Inventory) Hosts() []ID { return inv.hosts }

// Datastores returns all datastore IDs in creation order.
func (inv *Inventory) Datastores() []ID { return inv.datastores }

// VMs returns all live VM IDs in creation order.
func (inv *Inventory) VMs() []ID { return inv.vms }

// Templates returns all template IDs in creation order.
func (inv *Inventory) Templates() []ID { return inv.templates }

// VApps returns all live vApp IDs in creation order.
func (inv *Inventory) VApps() []ID { return inv.vapps }

// Path returns the chain of entity IDs from the root down to and including
// id — the set a management operation locks under hierarchical locking.
func (inv *Inventory) Path(id ID) []ID {
	var rev []ID
	for cur := id; cur != None; {
		h := inv.Header(cur)
		if h == nil {
			break
		}
		rev = append(rev, cur)
		cur = h.Parent
	}
	out := make([]ID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// SortIDs sorts ids in place in canonical (creation) order and removes
// duplicates, returning the possibly shortened slice. Lock acquisition in
// this order is deadlock-free.
func SortIDs(ids []ID) []ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	var prev ID = -1
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}

// Counts summarizes inventory sizes, for reports and invariant checks.
type Counts struct {
	Datacenters, Clusters, Hosts, Datastores, Templates, VMs, VApps int
}

// Count returns the current entity counts.
func (inv *Inventory) Count() Counts {
	return Counts{
		Datacenters: len(inv.datacenters),
		Clusters:    len(inv.clusters),
		Hosts:       len(inv.hosts),
		Datastores:  len(inv.datastores),
		Templates:   len(inv.templates),
		VMs:         len(inv.vms),
		VApps:       len(inv.vapps),
	}
}

// CheckInvariants verifies capacity accounting and cross-references,
// returning the first violation found. Tests and the simulator's debug
// mode call it after mutation batches.
func (inv *Inventory) CheckInvariants() error {
	for _, hid := range inv.hosts {
		h := inv.Host(hid)
		mem, cpu := 0, 0
		for _, vid := range h.VMs {
			vm := inv.VM(vid)
			if vm == nil {
				return fmt.Errorf("host %s references missing VM %d", h.Name, vid)
			}
			if vm.HostID != hid {
				return fmt.Errorf("VM %s host back-reference mismatch", vm.Name)
			}
			mem += vm.MemMB
			if vm.State == VMPoweredOn {
				cpu += vm.CPUs * cpuMHzPerVCPU
			}
		}
		if mem != h.UsedMemMB {
			return fmt.Errorf("host %s memory accounting: sum %d != used %d", h.Name, mem, h.UsedMemMB)
		}
		if cpu != h.UsedCPUMHz {
			return fmt.Errorf("host %s cpu accounting: sum %d != used %d", h.Name, cpu, h.UsedCPUMHz)
		}
		if h.UsedMemMB > h.MemMB {
			return fmt.Errorf("host %s memory overcommitted", h.Name)
		}
	}
	for _, did := range inv.datastores {
		d := inv.Datastore(did)
		var used float64
		for _, vid := range d.VMs {
			vm := inv.VM(vid)
			if vm == nil {
				return fmt.Errorf("datastore %s references missing VM %d", d.Name, vid)
			}
			if vm.DatastoreID != did {
				return fmt.Errorf("VM %s datastore back-reference mismatch", vm.Name)
			}
			used += vm.DiskGB
		}
		for _, tid := range inv.templates {
			if t := inv.Template(tid); t.DatastoreID == did {
				used += t.DiskGB
			}
		}
		if diff := used - d.UsedGB; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("datastore %s space accounting: sum %.3f != used %.3f", d.Name, used, d.UsedGB)
		}
		if d.UsedGB > d.CapacityGB+1e-6 {
			return fmt.Errorf("datastore %s overcommitted", d.Name)
		}
	}
	for _, vid := range inv.vms {
		vm := inv.VM(vid)
		if vm.State == VMDeleted {
			return fmt.Errorf("deleted VM %s still registered", vm.Name)
		}
	}
	return nil
}
