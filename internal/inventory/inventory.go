// Package inventory models the managed-object inventory of a virtualized
// datacenter: datacenters, clusters, hosts, datastores, resource pools,
// VMs, templates, and vApps, connected in the parent/child hierarchy that
// management operations lock along.
//
// The inventory is pure data plus invariant checks; it knows nothing about
// virtual time. The management plane (package mgmt) serializes access, so
// none of these types need internal locking.
package inventory

import (
	"fmt"
	"slices"
)

// ID uniquely identifies an entity within one Inventory. IDs are assigned
// densely in creation order, which also serves as the canonical lock
// ordering that prevents deadlock in the management plane.
type ID int64

// None is the zero ID, used for "no parent" and "no reference".
const None ID = 0

// Kind enumerates entity types.
type Kind int

// Entity kinds, from the root of the hierarchy down.
const (
	KindDatacenter Kind = iota + 1
	KindCluster
	KindHost
	KindResourcePool
	KindDatastore
	KindNetwork
	KindVM
	KindTemplate
	KindVApp
)

var kindNames = map[Kind]string{
	KindDatacenter:   "datacenter",
	KindCluster:      "cluster",
	KindHost:         "host",
	KindResourcePool: "resourcepool",
	KindDatastore:    "datastore",
	KindNetwork:      "network",
	KindVM:           "vm",
	KindTemplate:     "template",
	KindVApp:         "vapp",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Entity is the common header embedded in every inventory object.
type Entity struct {
	ID     ID
	Name   string
	Kind   Kind
	Parent ID // containing entity in the lock hierarchy (None for roots)
}

// VMState is the lifecycle state of a virtual machine.
type VMState int

// VM lifecycle states.
const (
	VMProvisioning VMState = iota + 1
	VMPoweredOff
	VMPoweredOn
	VMSuspended
	VMDeleted
)

var vmStateNames = map[VMState]string{
	VMProvisioning: "provisioning",
	VMPoweredOff:   "poweredOff",
	VMPoweredOn:    "poweredOn",
	VMSuspended:    "suspended",
	VMDeleted:      "deleted",
}

func (s VMState) String() string {
	if n, ok := vmStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("vmstate(%d)", int(s))
}

// Datacenter is the root container.
type Datacenter struct {
	Entity
	Clusters   []ID
	Datastores []ID
}

// Cluster groups hosts for placement and admission.
type Cluster struct {
	Entity
	Hosts []ID
}

// Host is a hypervisor host with simple capacity accounting.
type Host struct {
	Entity
	CPUMHz     int // total CPU capacity
	MemMB      int // total memory
	UsedCPUMHz int
	UsedMemMB  int
	VMs        []ID
	// Maintenance marks a host being evacuated/serviced: placement must
	// skip it and it should end up empty.
	Maintenance bool
	// Failed marks a crashed host: its VMs are stranded until the HA
	// engine restarts them elsewhere (package ha).
	Failed bool
}

// InService reports whether the host can accept placements.
func (h *Host) InService() bool { return !h.Maintenance && !h.Failed }

// FreeCPUMHz returns remaining CPU capacity.
func (h *Host) FreeCPUMHz() int { return h.CPUMHz - h.UsedCPUMHz }

// FreeMemMB returns remaining memory capacity.
func (h *Host) FreeMemMB() int { return h.MemMB - h.UsedMemMB }

// Datastore is shared storage with capacity and copy-bandwidth attributes.
// Bandwidth is consumed by the storage simulator (package storage).
type Datastore struct {
	Entity
	CapacityGB    float64
	UsedGB        float64
	BandwidthMBps float64 // aggregate copy bandwidth
	VMs           []ID
}

// FreeGB returns remaining datastore capacity.
func (d *Datastore) FreeGB() float64 { return d.CapacityGB - d.UsedGB }

// FillFraction returns UsedGB/CapacityGB.
func (d *Datastore) FillFraction() float64 {
	if d.CapacityGB == 0 {
		return 0
	}
	return d.UsedGB / d.CapacityGB
}

// Template is a catalog image VMs are cloned from.
type Template struct {
	Entity
	DiskGB      float64
	MemMB       int
	CPUs        int
	DatastoreID ID // where the base disk lives
}

// VM is a virtual machine.
type VM struct {
	Entity
	State       VMState
	CPUs        int
	MemMB       int
	DiskGB      float64 // bytes attributable to this VM on its datastore
	HostID      ID
	DatastoreID ID
	TemplateID  ID // template it was deployed from (None if constructed raw)
	VAppID      ID

	// Linked-clone bookkeeping. LinkedParent is the template (or VM) whose
	// base disk this VM's delta chain hangs off; ChainLen is the number of
	// redo links between this VM's active disk and the base.
	LinkedParent ID
	ChainLen     int
	Snapshots    int

	// SuspendGB is the size of the suspend (memory checkpoint) file
	// currently charged to the VM's datastore, 0 when not suspended.
	SuspendGB float64
}

// VApp is a group of VMs deployed and managed as a unit (the cloud
// director's unit of self-service deployment).
type VApp struct {
	Entity
	OrgName string
	VMs     []ID
}

// Inventory is the registry of all entities in one simulated installation.
type Inventory struct {
	nextID      ID
	entities    map[ID]any
	datacenters []ID
	clusters    []ID
	hosts       []ID
	datastores  []ID
	vms         []ID
	templates   []ID
	vapps       []ID

	// vms and vapps churn on every deploy/delete; an O(n) ordered delete
	// there is quadratic at million-VM scale. Removals tombstone the slot
	// (None) in O(1) via the position maps and enumeration compacts
	// lazily, preserving creation order exactly.
	vmPos     map[ID]int
	vmHoles   int
	vappPos   map[ID]int
	vappHoles int

	// Free-capacity indexes: hostIdx orders in-service hosts by free
	// memory, dsIdx orders datastores by free space net of reservations.
	// Both are maintained on every mutation so placement is O(1) per
	// query instead of a linear scan, with winners identical to the scan
	// (see capHeap). groupIdx adds per-group host heaps once SetHostGroup
	// partitions hosts (the sharded plane's shard affinity).
	hostIdx   *capHeap
	dsIdx     *capHeap
	reserved  map[ID]float64 // datastore → in-flight reservation, GB
	hostGroup map[ID]int     // host → placement group (shard)
	groupIdx  map[int]*capHeap
}

// New returns an empty inventory.
func New() *Inventory {
	return &Inventory{
		nextID:   1,
		entities: make(map[ID]any),
		vmPos:    make(map[ID]int),
		vappPos:  make(map[ID]int),
		hostIdx:  newCapHeap(),
		dsIdx:    newCapHeap(),
		reserved: make(map[ID]float64),
	}
}

// rekeyHost refreshes h's entry in the free-memory indexes. Hosts out of
// service (maintenance or failed) are excluded entirely, matching the
// InService check every placement scan applies.
func (inv *Inventory) rekeyHost(h *Host) {
	g, grouped := inv.hostGroup[h.ID]
	if h.InService() {
		key := float64(h.FreeMemMB())
		inv.hostIdx.Set(h.ID, key)
		if grouped {
			inv.groupIdx[g].Set(h.ID, key)
		}
		return
	}
	inv.hostIdx.Remove(h.ID)
	if grouped {
		inv.groupIdx[g].Remove(h.ID)
	}
}

// rekeyDatastore refreshes d's entry in the free-space index. The key is
// recomputed from scratch so it bit-matches what a linear scan over
// FreeGB()-reserved would compare.
func (inv *Inventory) rekeyDatastore(d *Datastore) {
	inv.dsIdx.Set(d.ID, d.FreeGB()-inv.reserved[d.ID])
}

func (inv *Inventory) allocate() ID {
	id := inv.nextID
	inv.nextID++
	return id
}

// AddDatacenter creates a root datacenter.
func (inv *Inventory) AddDatacenter(name string) *Datacenter {
	dc := &Datacenter{Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindDatacenter}}
	inv.entities[dc.ID] = dc
	inv.datacenters = append(inv.datacenters, dc.ID)
	return dc
}

// AddCluster creates a cluster inside dc.
func (inv *Inventory) AddCluster(dc *Datacenter, name string) *Cluster {
	c := &Cluster{Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindCluster, Parent: dc.ID}}
	inv.entities[c.ID] = c
	inv.clusters = append(inv.clusters, c.ID)
	dc.Clusters = append(dc.Clusters, c.ID)
	return c
}

// AddHost creates a host inside cluster with the given capacity.
func (inv *Inventory) AddHost(c *Cluster, name string, cpuMHz, memMB int) *Host {
	if cpuMHz <= 0 || memMB <= 0 {
		panic(fmt.Sprintf("inventory: host %q capacity %d MHz / %d MB", name, cpuMHz, memMB))
	}
	h := &Host{
		Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindHost, Parent: c.ID},
		CPUMHz: cpuMHz, MemMB: memMB,
	}
	inv.entities[h.ID] = h
	inv.hosts = append(inv.hosts, h.ID)
	c.Hosts = append(c.Hosts, h.ID)
	inv.rekeyHost(h)
	return h
}

// AddDatastore creates a datastore inside dc.
func (inv *Inventory) AddDatastore(dc *Datacenter, name string, capacityGB, bandwidthMBps float64) *Datastore {
	if capacityGB <= 0 || bandwidthMBps <= 0 {
		panic(fmt.Sprintf("inventory: datastore %q capacity %v GB bw %v MB/s", name, capacityGB, bandwidthMBps))
	}
	d := &Datastore{
		Entity:     Entity{ID: inv.allocate(), Name: name, Kind: KindDatastore, Parent: dc.ID},
		CapacityGB: capacityGB, BandwidthMBps: bandwidthMBps,
	}
	inv.entities[d.ID] = d
	inv.datastores = append(inv.datastores, d.ID)
	dc.Datastores = append(dc.Datastores, d.ID)
	inv.rekeyDatastore(d)
	return d
}

// AddTemplate creates a template whose base disk occupies space on ds.
func (inv *Inventory) AddTemplate(ds *Datastore, name string, diskGB float64, memMB, cpus int) *Template {
	if diskGB <= 0 {
		panic(fmt.Sprintf("inventory: template %q disk %v GB", name, diskGB))
	}
	t := &Template{
		Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindTemplate, Parent: ds.ID},
		DiskGB: diskGB, MemMB: memMB, CPUs: cpus, DatastoreID: ds.ID,
	}
	inv.entities[t.ID] = t
	inv.templates = append(inv.templates, t.ID)
	ds.UsedGB += diskGB
	inv.rekeyDatastore(ds)
	return t
}

// AddVApp creates an empty vApp owned by org, parented to dc.
func (inv *Inventory) AddVApp(dc *Datacenter, name, org string) *VApp {
	v := &VApp{
		Entity:  Entity{ID: inv.allocate(), Name: name, Kind: KindVApp, Parent: dc.ID},
		OrgName: org,
	}
	inv.entities[v.ID] = v
	inv.vappPos[v.ID] = len(inv.vapps)
	inv.vapps = append(inv.vapps, v.ID)
	return v
}

// AddVM creates a VM placed on host and ds, charging capacity on both.
// diskGB is the space the VM's own disks occupy (the delta disk size for a
// linked clone). The VM starts in VMProvisioning.
func (inv *Inventory) AddVM(name string, host *Host, ds *Datastore, cpus, memMB int, diskGB float64) (*VM, error) {
	if cpus <= 0 || memMB <= 0 || diskGB < 0 {
		panic(fmt.Sprintf("inventory: vm %q shape cpus=%d mem=%d disk=%v", name, cpus, memMB, diskGB))
	}
	if host.FreeMemMB() < memMB {
		return nil, fmt.Errorf("inventory: host %s out of memory for %s (%d free, need %d)", host.Name, name, host.FreeMemMB(), memMB)
	}
	if ds.FreeGB() < diskGB {
		return nil, fmt.Errorf("inventory: datastore %s out of space for %s (%.1f free, need %.1f)", ds.Name, name, ds.FreeGB(), diskGB)
	}
	vm := &VM{
		Entity: Entity{ID: inv.allocate(), Name: name, Kind: KindVM, Parent: host.ID},
		State:  VMProvisioning,
		CPUs:   cpus, MemMB: memMB, DiskGB: diskGB,
		HostID: host.ID, DatastoreID: ds.ID,
	}
	inv.entities[vm.ID] = vm
	inv.vmPos[vm.ID] = len(inv.vms)
	inv.vms = append(inv.vms, vm.ID)
	host.VMs = append(host.VMs, vm.ID)
	host.UsedMemMB += memMB
	ds.VMs = append(ds.VMs, vm.ID)
	ds.UsedGB += diskGB
	inv.rekeyHost(host)
	inv.rekeyDatastore(ds)
	return vm, nil
}

// RemoveVM deletes vm, releasing host and datastore capacity. It is an
// error to remove a powered-on or already-deleted VM.
func (inv *Inventory) RemoveVM(vm *VM) error {
	if vm.State == VMPoweredOn {
		return fmt.Errorf("inventory: cannot remove powered-on VM %s", vm.Name)
	}
	if vm.State == VMDeleted {
		return fmt.Errorf("inventory: VM %s already deleted", vm.Name)
	}
	host := inv.Host(vm.HostID)
	ds := inv.Datastore(vm.DatastoreID)
	host.VMs = removeID(host.VMs, vm.ID)
	host.UsedMemMB -= vm.MemMB
	ds.VMs = removeID(ds.VMs, vm.ID)
	ds.UsedGB -= vm.DiskGB
	if vm.VAppID != None {
		va := inv.VApp(vm.VAppID)
		va.VMs = removeID(va.VMs, vm.ID)
	}
	vm.State = VMDeleted
	delete(inv.entities, vm.ID)
	if i, ok := inv.vmPos[vm.ID]; ok {
		inv.vms[i] = None
		delete(inv.vmPos, vm.ID)
		inv.vmHoles++
	}
	inv.rekeyHost(host)
	inv.rekeyDatastore(ds)
	return nil
}

// RemoveVApp deletes an (empty) vApp container.
func (inv *Inventory) RemoveVApp(va *VApp) error {
	if len(va.VMs) != 0 {
		return fmt.Errorf("inventory: vApp %s still has %d VMs", va.Name, len(va.VMs))
	}
	delete(inv.entities, va.ID)
	if i, ok := inv.vappPos[va.ID]; ok {
		inv.vapps[i] = None
		delete(inv.vappPos, va.ID)
		inv.vappHoles++
	}
	return nil
}

// MoveVM relocates vm to a new host and/or datastore, transferring the
// capacity charges. Pass nil to keep the current placement on that axis.
func (inv *Inventory) MoveVM(vm *VM, newHost *Host, newDS *Datastore) error {
	if vm.State == VMDeleted {
		return fmt.Errorf("inventory: move of deleted VM %s", vm.Name)
	}
	if newHost != nil && newHost.ID != vm.HostID {
		if newHost.FreeMemMB() < vm.MemMB {
			return fmt.Errorf("inventory: host %s out of memory for %s", newHost.Name, vm.Name)
		}
		old := inv.Host(vm.HostID)
		old.VMs = removeID(old.VMs, vm.ID)
		old.UsedMemMB -= vm.MemMB
		if vm.State == VMPoweredOn {
			old.UsedCPUMHz -= CPUReservationMHz(vm.CPUs)
			newHost.UsedCPUMHz += CPUReservationMHz(vm.CPUs)
		}
		newHost.VMs = append(newHost.VMs, vm.ID)
		newHost.UsedMemMB += vm.MemMB
		vm.HostID = newHost.ID
		vm.Parent = newHost.ID
		inv.rekeyHost(old)
		inv.rekeyHost(newHost)
	}
	if newDS != nil && newDS.ID != vm.DatastoreID {
		if newDS.FreeGB() < vm.DiskGB {
			return fmt.Errorf("inventory: datastore %s out of space for %s", newDS.Name, vm.Name)
		}
		old := inv.Datastore(vm.DatastoreID)
		old.VMs = removeID(old.VMs, vm.ID)
		old.UsedGB -= vm.DiskGB
		newDS.VMs = append(newDS.VMs, vm.ID)
		newDS.UsedGB += vm.DiskGB
		vm.DatastoreID = newDS.ID
		inv.rekeyDatastore(old)
		inv.rekeyDatastore(newDS)
	}
	return nil
}

// cpuMHzPerVCPU is the CPU reservation charged per vCPU while powered on.
const cpuMHzPerVCPU = 500

// CPUReservationMHz is the CPU reservation a VM with cpus vCPUs holds
// while powered on. Every admission check in the inventory (PowerOn,
// Resume, MoveVM) charges this amount, so every picker that asks "will
// this VM fit that host once running" — DRS, HA failover, workload
// migrations — must use the same helper; the literal used to be
// duplicated across those packages, a silent divergence hazard.
func CPUReservationMHz(cpus int) int { return cpus * cpuMHzPerVCPU }

// PowerOn transitions vm to VMPoweredOn, charging CPU on its host.
// Suspended VMs must Resume instead, so their checkpoint is reclaimed.
func (inv *Inventory) PowerOn(vm *VM) error {
	if vm.State != VMPoweredOff && vm.State != VMProvisioning {
		return fmt.Errorf("inventory: power on %s in state %s", vm.Name, vm.State)
	}
	h := inv.Host(vm.HostID)
	need := CPUReservationMHz(vm.CPUs)
	if h.FreeCPUMHz() < need {
		return fmt.Errorf("inventory: host %s out of CPU for %s", h.Name, vm.Name)
	}
	h.UsedCPUMHz += need
	vm.State = VMPoweredOn
	return nil
}

// PowerOff transitions vm to VMPoweredOff, releasing CPU. Powering off a
// suspended VM discards its checkpoint, reclaiming the suspend file.
func (inv *Inventory) PowerOff(vm *VM) error {
	if vm.State != VMPoweredOn && vm.State != VMSuspended {
		return fmt.Errorf("inventory: power off %s in state %s", vm.Name, vm.State)
	}
	if vm.State == VMPoweredOn {
		inv.Host(vm.HostID).UsedCPUMHz -= CPUReservationMHz(vm.CPUs)
	}
	inv.reclaimSuspendFile(vm)
	vm.State = VMPoweredOff
	return nil
}

// Suspend checkpoints a powered-on VM: CPU is released and the memory
// image (suspendGB) is charged against the VM's datastore.
func (inv *Inventory) Suspend(vm *VM, suspendGB float64) error {
	if vm.State != VMPoweredOn {
		return fmt.Errorf("inventory: suspend %s in state %s", vm.Name, vm.State)
	}
	if suspendGB < 0 {
		panic(fmt.Sprintf("inventory: suspend file %v GB", suspendGB))
	}
	ds := inv.Datastore(vm.DatastoreID)
	if ds.FreeGB() < suspendGB {
		return fmt.Errorf("inventory: datastore %s out of space for suspend of %s", ds.Name, vm.Name)
	}
	inv.Host(vm.HostID).UsedCPUMHz -= CPUReservationMHz(vm.CPUs)
	vm.SuspendGB = suspendGB
	vm.DiskGB += suspendGB
	ds.UsedGB += suspendGB
	inv.rekeyDatastore(ds)
	vm.State = VMSuspended
	return nil
}

// Resume restores a suspended VM to running, re-charging CPU and
// reclaiming the suspend file.
func (inv *Inventory) Resume(vm *VM) error {
	if vm.State != VMSuspended {
		return fmt.Errorf("inventory: resume %s in state %s", vm.Name, vm.State)
	}
	h := inv.Host(vm.HostID)
	need := CPUReservationMHz(vm.CPUs)
	if h.FreeCPUMHz() < need {
		return fmt.Errorf("inventory: host %s out of CPU to resume %s", h.Name, vm.Name)
	}
	h.UsedCPUMHz += need
	inv.reclaimSuspendFile(vm)
	vm.State = VMPoweredOn
	return nil
}

func (inv *Inventory) reclaimSuspendFile(vm *VM) {
	if vm.SuspendGB <= 0 {
		return
	}
	ds := inv.Datastore(vm.DatastoreID)
	vm.DiskGB -= vm.SuspendGB
	ds.UsedGB -= vm.SuspendGB
	vm.SuspendGB = 0
	inv.rekeyDatastore(ds)
}

func removeID(ids []ID, id ID) []ID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Get returns the entity with the given ID, or nil.
func (inv *Inventory) Get(id ID) any { return inv.entities[id] }

// Header returns the Entity header of the object with the given ID, or nil.
func (inv *Inventory) Header(id ID) *Entity {
	switch e := inv.entities[id].(type) {
	case *Datacenter:
		return &e.Entity
	case *Cluster:
		return &e.Entity
	case *Host:
		return &e.Entity
	case *Datastore:
		return &e.Entity
	case *Template:
		return &e.Entity
	case *VM:
		return &e.Entity
	case *VApp:
		return &e.Entity
	}
	return nil
}

// Datacenter returns the datacenter with id, or nil if absent/wrong kind.
func (inv *Inventory) Datacenter(id ID) *Datacenter { d, _ := inv.entities[id].(*Datacenter); return d }

// Cluster returns the cluster with id, or nil.
func (inv *Inventory) Cluster(id ID) *Cluster { c, _ := inv.entities[id].(*Cluster); return c }

// Host returns the host with id, or nil.
func (inv *Inventory) Host(id ID) *Host { h, _ := inv.entities[id].(*Host); return h }

// Datastore returns the datastore with id, or nil.
func (inv *Inventory) Datastore(id ID) *Datastore { d, _ := inv.entities[id].(*Datastore); return d }

// Template returns the template with id, or nil.
func (inv *Inventory) Template(id ID) *Template { t, _ := inv.entities[id].(*Template); return t }

// VM returns the VM with id, or nil.
func (inv *Inventory) VM(id ID) *VM { v, _ := inv.entities[id].(*VM); return v }

// VApp returns the vApp with id, or nil.
func (inv *Inventory) VApp(id ID) *VApp { v, _ := inv.entities[id].(*VApp); return v }

// Datacenters returns all datacenter IDs in creation order.
func (inv *Inventory) Datacenters() []ID { return inv.datacenters }

// Clusters returns all cluster IDs in creation order.
func (inv *Inventory) Clusters() []ID { return inv.clusters }

// Hosts returns all host IDs in creation order.
func (inv *Inventory) Hosts() []ID { return inv.hosts }

// Datastores returns all datastore IDs in creation order.
func (inv *Inventory) Datastores() []ID { return inv.datastores }

// VMs returns all live VM IDs in creation order. Removal tombstones are
// compacted here (order-preserving), so the returned slice never holds
// holes; the slice is valid until the next mutation.
func (inv *Inventory) VMs() []ID {
	if inv.vmHoles > 0 {
		inv.vms, inv.vmHoles = compactIDs(inv.vms, inv.vmPos)
	}
	return inv.vms
}

// Templates returns all template IDs in creation order.
func (inv *Inventory) Templates() []ID { return inv.templates }

// VApps returns all live vApp IDs in creation order, compacting removal
// tombstones like VMs.
func (inv *Inventory) VApps() []ID {
	if inv.vappHoles > 0 {
		inv.vapps, inv.vappHoles = compactIDs(inv.vapps, inv.vappPos)
	}
	return inv.vapps
}

// compactIDs squeezes None tombstones out of ids in place, rebuilding the
// position map, and returns the shortened slice with a zero hole count.
func compactIDs(ids []ID, pos map[ID]int) ([]ID, int) {
	out := ids[:0]
	for _, id := range ids {
		if id != None {
			pos[id] = len(out)
			out = append(out, id)
		}
	}
	return out, 0
}

// Path returns the chain of entity IDs from the root down to and including
// id — the set a management operation locks under hierarchical locking.
func (inv *Inventory) Path(id ID) []ID {
	var rev []ID
	for cur := id; cur != None; {
		h := inv.Header(cur)
		if h == nil {
			break
		}
		rev = append(rev, cur)
		cur = h.Parent
	}
	out := make([]ID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// SortIDs sorts ids in place in canonical (creation) order and removes
// duplicates, returning the possibly shortened slice. Lock acquisition in
// this order is deadlock-free.
func SortIDs(ids []ID) []ID {
	slices.Sort(ids) // closure-free: this is the lock hot path
	out := ids[:0]
	var prev ID = -1
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}

// Counts summarizes inventory sizes, for reports and invariant checks.
type Counts struct {
	Datacenters, Clusters, Hosts, Datastores, Templates, VMs, VApps int
}

// Count returns the current entity counts.
func (inv *Inventory) Count() Counts {
	return Counts{
		Datacenters: len(inv.datacenters),
		Clusters:    len(inv.clusters),
		Hosts:       len(inv.hosts),
		Datastores:  len(inv.datastores),
		Templates:   len(inv.templates),
		VMs:         len(inv.vms) - inv.vmHoles,
		VApps:       len(inv.vapps) - inv.vappHoles,
	}
}

// BestHost returns the in-service host with the most free memory (lowest
// ID on ties) provided it fits memMB, or nil when no host fits. This is
// the indexed equivalent of scanning Hosts() in creation order keeping
// the strictly-freest fitting host: if the globally freest host does not
// fit, no host does, so one root peek answers the scan exactly.
func (inv *Inventory) BestHost(memMB int) *Host {
	id, key, ok := inv.hostIdx.Max()
	if !ok || key < float64(memMB) {
		return nil
	}
	return inv.Host(id)
}

// BestHostExcluding returns the in-service host with the most free
// memory (lowest ID on ties) that fits memMB — and, when cpuMHz > 0, has
// at least that much free CPU — skipping the host with ID exclude. It is
// the indexed equivalent of the linear "most free, first wins" scan the
// HA failover and workload-migration pickers ran: the heap walk visits
// hosts in exactly the scan's ranking order and stops at the first one
// passing the filters, so the winner (ties included) is identical while
// the cost stays near O(log hosts) instead of O(hosts) per pick.
func (inv *Inventory) BestHostExcluding(exclude ID, memMB, cpuMHz int) *Host {
	id, ok := inv.hostIdx.bestWhere(float64(memMB), func(id ID) bool {
		if id == exclude {
			return false
		}
		return cpuMHz <= 0 || inv.Host(id).FreeCPUMHz() >= cpuMHz
	})
	if !ok {
		return nil
	}
	return inv.Host(id)
}

// HostGroup returns the placement group id was assigned via SetHostGroup
// and whether it was ever grouped. Policy implementations that scan
// hosts linearly use it to honor the sharded plane's host partition.
func (inv *Inventory) HostGroup(id ID) (int, bool) {
	g, ok := inv.hostGroup[id]
	return g, ok
}

// BestHostInGroup is BestHost restricted to one placement group (the
// sharded plane's host partition). It returns nil when the group is
// empty, has no fitting host, or no groups were ever assigned.
func (inv *Inventory) BestHostInGroup(group, memMB int) *Host {
	h := inv.groupIdx[group]
	if h == nil {
		return nil
	}
	id, key, ok := h.Max()
	if !ok || key < float64(memMB) {
		return nil
	}
	return inv.Host(id)
}

// SetHostGroup assigns host id to a placement group, maintaining the
// per-group free-memory index. The sharded plane calls this with its
// host→shard partition; regrouping moves the host between group heaps.
func (inv *Inventory) SetHostGroup(id ID, group int) {
	h := inv.Host(id)
	if h == nil {
		panic(fmt.Sprintf("inventory: SetHostGroup of non-host %d", id))
	}
	if old, ok := inv.hostGroup[id]; ok {
		if old == group {
			return
		}
		inv.groupIdx[old].Remove(id)
	}
	if inv.groupIdx == nil {
		inv.hostGroup = make(map[ID]int)
		inv.groupIdx = make(map[int]*capHeap)
	}
	inv.hostGroup[id] = group
	if inv.groupIdx[group] == nil {
		inv.groupIdx[group] = newCapHeap()
	}
	inv.rekeyHost(h)
}

// BestDatastore returns the datastore with the most free space net of
// reservations (lowest ID on ties) provided it fits needGB, or nil when
// none fits — the indexed equivalent of the most-effective-free scan.
func (inv *Inventory) BestDatastore(needGB float64) *Datastore {
	id, key, ok := inv.dsIdx.Max()
	if !ok || key < needGB {
		return nil
	}
	return inv.Datastore(id)
}

// Reserve adjusts the in-flight space reservation against datastore id by
// deltaGB (positive to claim, negative to release). Reservations reduce
// the datastore's effective free space for placement without charging
// UsedGB, so concurrent deploys don't herd onto the same "most free"
// datastore before any capacity lands.
func (inv *Inventory) Reserve(id ID, deltaGB float64) {
	d := inv.Datastore(id)
	if d == nil {
		panic(fmt.Sprintf("inventory: Reserve on non-datastore %d", id))
	}
	inv.reserved[id] += deltaGB
	inv.rekeyDatastore(d)
}

// Reserved returns the current in-flight reservation against datastore id.
func (inv *Inventory) Reserved(id ID) float64 { return inv.reserved[id] }

// EffectiveFreeGB is d's free space net of in-flight reservations — the
// quantity placement compares.
func (inv *Inventory) EffectiveFreeGB(d *Datastore) float64 {
	return d.FreeGB() - inv.reserved[d.ID]
}

// SetHostMaintenance fences (or unfences) h for placement, keeping the
// free-memory indexes consistent. All maintenance transitions must go
// through here rather than writing the field directly.
func (inv *Inventory) SetHostMaintenance(h *Host, v bool) {
	h.Maintenance = v
	inv.rekeyHost(h)
}

// SetHostFailed marks h crashed (or repaired), keeping the free-memory
// indexes consistent. All failure transitions must go through here.
func (inv *Inventory) SetHostFailed(h *Host, v bool) {
	h.Failed = v
	inv.rekeyHost(h)
}

// AddDatastoreUsed charges deltaGB of space on d (negative to reclaim)
// for disk growth outside VM add/move — snapshots and consolidation.
func (inv *Inventory) AddDatastoreUsed(d *Datastore, deltaGB float64) {
	d.UsedGB += deltaGB
	inv.rekeyDatastore(d)
}

// SetDatastoreUsed overwrites d's used space (scenario and test setup).
func (inv *Inventory) SetDatastoreUsed(d *Datastore, usedGB float64) {
	d.UsedGB = usedGB
	inv.rekeyDatastore(d)
}

// SetDatastoreCapacity overwrites d's capacity (scenario and test setup).
func (inv *Inventory) SetDatastoreCapacity(d *Datastore, capacityGB float64) {
	d.CapacityGB = capacityGB
	inv.rekeyDatastore(d)
}

// CheckInvariants verifies capacity accounting and cross-references,
// returning the first violation found. Tests and the simulator's debug
// mode call it after mutation batches.
func (inv *Inventory) CheckInvariants() error {
	for _, hid := range inv.hosts {
		h := inv.Host(hid)
		mem, cpu := 0, 0
		for _, vid := range h.VMs {
			vm := inv.VM(vid)
			if vm == nil {
				return fmt.Errorf("host %s references missing VM %d", h.Name, vid)
			}
			if vm.HostID != hid {
				return fmt.Errorf("VM %s host back-reference mismatch", vm.Name)
			}
			mem += vm.MemMB
			if vm.State == VMPoweredOn {
				cpu += CPUReservationMHz(vm.CPUs)
			}
		}
		if mem != h.UsedMemMB {
			return fmt.Errorf("host %s memory accounting: sum %d != used %d", h.Name, mem, h.UsedMemMB)
		}
		if cpu != h.UsedCPUMHz {
			return fmt.Errorf("host %s cpu accounting: sum %d != used %d", h.Name, cpu, h.UsedCPUMHz)
		}
		if h.UsedMemMB > h.MemMB {
			return fmt.Errorf("host %s memory overcommitted", h.Name)
		}
	}
	for _, did := range inv.datastores {
		d := inv.Datastore(did)
		var used float64
		for _, vid := range d.VMs {
			vm := inv.VM(vid)
			if vm == nil {
				return fmt.Errorf("datastore %s references missing VM %d", d.Name, vid)
			}
			if vm.DatastoreID != did {
				return fmt.Errorf("VM %s datastore back-reference mismatch", vm.Name)
			}
			used += vm.DiskGB
		}
		for _, tid := range inv.templates {
			if t := inv.Template(tid); t.DatastoreID == did {
				used += t.DiskGB
			}
		}
		if diff := used - d.UsedGB; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("datastore %s space accounting: sum %.3f != used %.3f", d.Name, used, d.UsedGB)
		}
		if d.UsedGB > d.CapacityGB+1e-6 {
			return fmt.Errorf("datastore %s overcommitted", d.Name)
		}
	}
	holes := 0
	for i, vid := range inv.vms {
		if vid == None {
			holes++
			continue
		}
		if inv.vmPos[vid] != i {
			return fmt.Errorf("VM %d position map says %d, slot is %d", vid, inv.vmPos[vid], i)
		}
		vm := inv.VM(vid)
		if vm == nil {
			return fmt.Errorf("VM list references missing VM %d", vid)
		}
		if vm.State == VMDeleted {
			return fmt.Errorf("deleted VM %s still registered", vm.Name)
		}
	}
	if holes != inv.vmHoles {
		return fmt.Errorf("VM list has %d tombstones, counter says %d", holes, inv.vmHoles)
	}
	if len(inv.vmPos) != len(inv.vms)-inv.vmHoles {
		return fmt.Errorf("VM position map size %d != %d live entries", len(inv.vmPos), len(inv.vms)-inv.vmHoles)
	}
	return inv.checkIndexes()
}

// checkIndexes verifies the free-capacity indexes against a from-scratch
// recomputation: membership must match in-service status and every key
// must equal the freshly derived value bit-for-bit (the property that
// makes indexed placement byte-identical to a linear scan).
func (inv *Inventory) checkIndexes() error {
	inService := 0
	for _, hid := range inv.hosts {
		h := inv.Host(hid)
		key, ok := inv.hostIdx.Key(hid)
		if h.InService() {
			inService++
			if !ok {
				return fmt.Errorf("host %s in service but not indexed", h.Name)
			}
			if key != float64(h.FreeMemMB()) {
				return fmt.Errorf("host %s index key %v != free %d", h.Name, key, h.FreeMemMB())
			}
		} else if ok {
			return fmt.Errorf("host %s out of service but still indexed", h.Name)
		}
		if g, grouped := inv.hostGroup[hid]; grouped {
			gkey, gok := inv.groupIdx[g].Key(hid)
			if gok != h.InService() {
				return fmt.Errorf("host %s group index membership %v != in-service %v", h.Name, gok, h.InService())
			}
			if gok && gkey != float64(h.FreeMemMB()) {
				return fmt.Errorf("host %s group index key %v != free %d", h.Name, gkey, h.FreeMemMB())
			}
		}
	}
	if inv.hostIdx.Len() != inService {
		return fmt.Errorf("host index holds %d entries, %d hosts in service", inv.hostIdx.Len(), inService)
	}
	for _, did := range inv.datastores {
		d := inv.Datastore(did)
		key, ok := inv.dsIdx.Key(did)
		if !ok {
			return fmt.Errorf("datastore %s not indexed", d.Name)
		}
		if want := d.FreeGB() - inv.reserved[did]; key != want {
			return fmt.Errorf("datastore %s index key %v != effective free %v", d.Name, key, want)
		}
	}
	if inv.dsIdx.Len() != len(inv.datastores) {
		return fmt.Errorf("datastore index holds %d entries, %d datastores", inv.dsIdx.Len(), len(inv.datastores))
	}
	return nil
}
