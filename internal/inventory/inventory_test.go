package inventory

import (
	"testing"
	"testing/quick"
)

// build returns a small installation: 1 DC, 1 cluster, 2 hosts, 2
// datastores, 1 template.
func build(t *testing.T) (*Inventory, *Cluster, []*Host, []*Datastore, *Template) {
	t.Helper()
	inv := New()
	dc := inv.AddDatacenter("dc0")
	cl := inv.AddCluster(dc, "cl0")
	h0 := inv.AddHost(cl, "h0", 20000, 65536)
	h1 := inv.AddHost(cl, "h1", 20000, 65536)
	d0 := inv.AddDatastore(dc, "ds0", 1000, 200)
	d1 := inv.AddDatastore(dc, "ds1", 1000, 200)
	tpl := inv.AddTemplate(d0, "tpl0", 20, 2048, 2)
	return inv, cl, []*Host{h0, h1}, []*Datastore{d0, d1}, tpl
}

func TestBuildAndCounts(t *testing.T) {
	inv, _, _, _, _ := build(t)
	c := inv.Count()
	if c.Datacenters != 1 || c.Clusters != 1 || c.Hosts != 2 || c.Datastores != 2 || c.Templates != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTemplateChargesDatastore(t *testing.T) {
	inv, _, _, ds, _ := build(t)
	if ds[0].UsedGB != 20 {
		t.Fatalf("ds0 used = %v, want 20 (template base disk)", ds[0].UsedGB)
	}
	_ = inv
}

func TestAddVMAccounting(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, err := inv.AddVM("vm0", hosts[0], ds[0], 2, 4096, 40)
	if err != nil {
		t.Fatal(err)
	}
	if vm.State != VMProvisioning {
		t.Fatalf("state = %v", vm.State)
	}
	if hosts[0].UsedMemMB != 4096 {
		t.Fatalf("host mem = %d", hosts[0].UsedMemMB)
	}
	if ds[0].UsedGB != 60 { // 20 template + 40 VM
		t.Fatalf("ds used = %v", ds[0].UsedGB)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddVMRejectsOverMemory(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	if _, err := inv.AddVM("big", hosts[0], ds[0], 2, 100000, 1); err == nil {
		t.Fatal("expected out-of-memory error")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddVMRejectsOverDisk(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	if _, err := inv.AddVM("big", hosts[0], ds[0], 2, 1024, 2000); err == nil {
		t.Fatal("expected out-of-space error")
	}
}

func TestPowerCycle(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 4, 4096, 10)
	if err := inv.PowerOn(vm); err != nil {
		t.Fatal(err)
	}
	if vm.State != VMPoweredOn {
		t.Fatalf("state = %v", vm.State)
	}
	if hosts[0].UsedCPUMHz != 4*cpuMHzPerVCPU {
		t.Fatalf("cpu = %d", hosts[0].UsedCPUMHz)
	}
	if err := inv.PowerOn(vm); err == nil {
		t.Fatal("double power-on allowed")
	}
	if err := inv.PowerOff(vm); err != nil {
		t.Fatal(err)
	}
	if hosts[0].UsedCPUMHz != 0 {
		t.Fatalf("cpu after off = %d", hosts[0].UsedCPUMHz)
	}
	if err := inv.PowerOff(vm); err == nil {
		t.Fatal("double power-off allowed")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerOnRejectsCPUExhaustion(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	// Host has 20000 MHz = 40 vCPU-charges; exhaust with powered-on VMs.
	for i := 0; i < 10; i++ {
		vm, err := inv.AddVM("vm", hosts[0], ds[0], 4, 1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := inv.PowerOn(vm); err != nil {
			t.Fatal(err)
		}
	}
	vm, _ := inv.AddVM("extra", hosts[0], ds[0], 4, 1024, 1)
	if err := inv.PowerOn(vm); err == nil {
		t.Fatal("expected CPU exhaustion")
	}
}

func TestRemoveVM(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 4096, 40)
	if err := inv.RemoveVM(vm); err != nil {
		t.Fatal(err)
	}
	if hosts[0].UsedMemMB != 0 || ds[0].UsedGB != 20 {
		t.Fatalf("capacity not released: mem=%d disk=%v", hosts[0].UsedMemMB, ds[0].UsedGB)
	}
	if inv.VM(vm.ID) != nil {
		t.Fatal("VM still resolvable")
	}
	if err := inv.RemoveVM(vm); err == nil {
		t.Fatal("double remove allowed")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveVMRejectsPoweredOn(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 4096, 40)
	inv.PowerOn(vm)
	if err := inv.RemoveVM(vm); err == nil {
		t.Fatal("removed a powered-on VM")
	}
}

func TestMoveVMHostAndDatastore(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 4096, 40)
	inv.PowerOn(vm)
	if err := inv.MoveVM(vm, hosts[1], ds[1]); err != nil {
		t.Fatal(err)
	}
	if vm.HostID != hosts[1].ID || vm.DatastoreID != ds[1].ID {
		t.Fatal("placement not updated")
	}
	if hosts[0].UsedMemMB != 0 || hosts[0].UsedCPUMHz != 0 {
		t.Fatal("source host not released")
	}
	if hosts[1].UsedMemMB != 4096 || hosts[1].UsedCPUMHz != 2*cpuMHzPerVCPU {
		t.Fatal("target host not charged")
	}
	if ds[0].UsedGB != 20 || ds[1].UsedGB != 40 {
		t.Fatalf("datastore charges: %v %v", ds[0].UsedGB, ds[1].UsedGB)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveVMNilAxes(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 4096, 40)
	if err := inv.MoveVM(vm, nil, nil); err != nil {
		t.Fatal(err)
	}
	if vm.HostID != hosts[0].ID || vm.DatastoreID != ds[0].ID {
		t.Fatal("no-op move changed placement")
	}
}

func TestVAppMembership(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	dc := inv.Datacenter(inv.Datacenters()[0])
	va := inv.AddVApp(dc, "app0", "orgA")
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 1024, 5)
	vm.VAppID = va.ID
	va.VMs = append(va.VMs, vm.ID)
	if err := inv.RemoveVApp(va); err == nil {
		t.Fatal("removed non-empty vApp")
	}
	if err := inv.RemoveVM(vm); err != nil {
		t.Fatal(err)
	}
	if len(va.VMs) != 0 {
		t.Fatal("vApp membership not cleaned up")
	}
	if err := inv.RemoveVApp(va); err != nil {
		t.Fatal(err)
	}
	if inv.VApp(va.ID) != nil {
		t.Fatal("vApp still resolvable")
	}
}

func TestPath(t *testing.T) {
	inv, cl, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 1024, 5)
	path := inv.Path(vm.ID)
	dcID := inv.Datacenters()[0]
	want := []ID{dcID, cl.ID, hosts[0].ID, vm.ID}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestPathUnknownID(t *testing.T) {
	inv := New()
	if p := inv.Path(99); len(p) != 0 {
		t.Fatalf("path of unknown id = %v", p)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []ID{5, 3, 5, 1, 3}
	got := SortIDs(ids)
	want := []ID{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSortIDsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ids := make([]ID, len(raw))
		for i, r := range raw {
			ids[i] = ID(r % 16)
		}
		out := SortIDs(ids)
		seen := map[ID]bool{}
		var prev ID = -1
		for _, id := range out {
			if id <= prev || seen[id] {
				return false
			}
			seen[id] = true
			prev = id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndStateStrings(t *testing.T) {
	if KindVM.String() != "vm" || KindDatastore.String() != "datastore" {
		t.Fatal("kind names wrong")
	}
	if VMPoweredOn.String() != "poweredOn" {
		t.Fatal("state names wrong")
	}
	if Kind(99).String() == "" || VMState(99).String() == "" {
		t.Fatal("unknown enums must still stringify")
	}
}

// Property: any sequence of add/power/remove operations that the API
// accepts leaves the inventory invariant-clean.
func TestPropertyInvariantsUnderRandomOps(t *testing.T) {
	f := func(script []uint8) bool {
		inv := New()
		dc := inv.AddDatacenter("dc")
		cl := inv.AddCluster(dc, "cl")
		h := inv.AddHost(cl, "h", 40000, 32768)
		d := inv.AddDatastore(dc, "d", 500, 100)
		var vms []*VM
		for _, b := range script {
			switch b % 4 {
			case 0:
				if vm, err := inv.AddVM("vm", h, d, 1+int(b%4), 1024, float64(1+b%8)); err == nil {
					vms = append(vms, vm)
				}
			case 1:
				if len(vms) > 0 {
					inv.PowerOn(vms[int(b)%len(vms)])
				}
			case 2:
				if len(vms) > 0 {
					inv.PowerOff(vms[int(b)%len(vms)])
				}
			case 3:
				if len(vms) > 0 {
					i := int(b) % len(vms)
					if err := inv.RemoveVM(vms[i]); err == nil {
						vms = append(vms[:i], vms[i+1:]...)
					}
				}
			}
			if inv.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSuspendResumeLifecycle(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 4, 4096, 10)
	if err := inv.Suspend(vm, 4); err == nil {
		t.Fatal("suspend of non-running VM succeeded")
	}
	inv.PowerOn(vm)
	cpuBefore := hosts[0].UsedCPUMHz
	diskBefore := ds[0].UsedGB
	if err := inv.Suspend(vm, 4); err != nil {
		t.Fatal(err)
	}
	if vm.State != VMSuspended || vm.SuspendGB != 4 {
		t.Fatalf("state=%v suspendGB=%v", vm.State, vm.SuspendGB)
	}
	if hosts[0].UsedCPUMHz != cpuBefore-4*cpuMHzPerVCPU {
		t.Fatal("CPU not released")
	}
	if ds[0].UsedGB != diskBefore+4 {
		t.Fatal("suspend file not charged")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// PowerOn of a suspended VM is rejected (must Resume).
	if err := inv.PowerOn(vm); err == nil {
		t.Fatal("powerOn of suspended VM succeeded")
	}
	if err := inv.Resume(vm); err != nil {
		t.Fatal(err)
	}
	if vm.State != VMPoweredOn || vm.SuspendGB != 0 {
		t.Fatalf("after resume state=%v suspendGB=%v", vm.State, vm.SuspendGB)
	}
	if ds[0].UsedGB != diskBefore {
		t.Fatal("suspend file not reclaimed")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerOffSuspendedDiscardsCheckpoint(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 2048, 10)
	inv.PowerOn(vm)
	diskBefore := ds[0].UsedGB
	inv.Suspend(vm, 2)
	if err := inv.PowerOff(vm); err != nil {
		t.Fatal(err)
	}
	if vm.State != VMPoweredOff || vm.SuspendGB != 0 || ds[0].UsedGB != diskBefore {
		t.Fatalf("checkpoint not discarded: %v %v %v", vm.State, vm.SuspendGB, ds[0].UsedGB)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSuspendRejectsFullDatastore(t *testing.T) {
	inv, _, hosts, ds, _ := build(t)
	vm, _ := inv.AddVM("vm0", hosts[0], ds[0], 2, 2048, 10)
	inv.PowerOn(vm)
	inv.AddTemplate(ds[0], "filler", ds[0].FreeGB()-0.5, 1024, 1)
	if err := inv.Suspend(vm, 2); err == nil {
		t.Fatal("suspend succeeded on full datastore")
	}
	if vm.State != VMPoweredOn {
		t.Fatal("state changed despite failure")
	}
}
