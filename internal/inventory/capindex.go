package inventory

// capHeap is a position-tracked binary max-heap over (key desc, ID asc):
// the root is the entry with the largest key, lowest ID on ties — exactly
// the element a "most free, first wins" linear scan over creation order
// returns. The position map makes Set and Remove O(log n) and Max O(1),
// which is what turns per-deploy placement from O(entities) into
// O(log entities) at million-VM inventories.
//
// Determinism contract: keys are recomputed from the authoritative entity
// fields on every mutation (never updated incrementally), so a heap query
// compares the very same float64 values a linear scan would and returns
// the identical winner, ties included.
type capHeap struct {
	items []capEntry
	pos   map[ID]int // entry ID → index in items
}

type capEntry struct {
	key float64
	id  ID
}

func newCapHeap() *capHeap { return &capHeap{pos: make(map[ID]int)} }

// capLess reports whether a outranks b: higher key first, lower ID on
// ties. This is a total order, so the heap maximum is unique.
func capLess(a, b capEntry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.id < b.id
}

// Len returns the number of indexed entries.
func (h *capHeap) Len() int { return len(h.items) }

// Max returns the entry with the largest key (lowest ID on ties).
func (h *capHeap) Max() (ID, float64, bool) {
	if len(h.items) == 0 {
		return None, 0, false
	}
	return h.items[0].id, h.items[0].key, true
}

// Key returns id's current key and whether id is indexed.
func (h *capHeap) Key(id ID) (float64, bool) {
	i, ok := h.pos[id]
	if !ok {
		return 0, false
	}
	return h.items[i].key, true
}

// Set inserts id with the given key, or re-keys it if already present.
func (h *capHeap) Set(id ID, key float64) {
	if i, ok := h.pos[id]; ok {
		h.items[i].key = key
		h.down(i)
		h.up(i)
		return
	}
	h.items = append(h.items, capEntry{key: key, id: id})
	i := len(h.items) - 1
	h.pos[id] = i
	h.up(i)
}

// Remove deletes id from the index; absent IDs are a no-op.
func (h *capHeap) Remove(id ID) {
	i, ok := h.pos[id]
	if !ok {
		return
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	delete(h.pos, id)
	if i < last {
		h.down(i)
		h.up(i)
	}
}

// bestWhere returns the highest-ranked entry in capLess order whose key
// is at least minKey and that satisfies keep, walking the heap best-first
// without mutating it. The walk maintains a frontier of subtree roots;
// the best frontier entry is the best entry not yet visited (every other
// remaining entry sits below some frontier root and cannot outrank it),
// so entries are visited in exactly (key desc, ID asc) order — the order
// a "most free, first wins" linear scan ranks candidates — and the first
// accepted entry is the scan's winner. Once the frontier's best key drops
// below minKey no remaining entry fits and the walk stops.
func (h *capHeap) bestWhere(minKey float64, keep func(ID) bool) (ID, bool) {
	if len(h.items) == 0 {
		return None, false
	}
	var stack [8]int
	frontier := append(stack[:0], 0)
	for len(frontier) > 0 {
		bi := 0
		for i := 1; i < len(frontier); i++ {
			if capLess(h.items[frontier[i]], h.items[frontier[bi]]) {
				bi = i
			}
		}
		idx := frontier[bi]
		e := h.items[idx]
		if e.key < minKey {
			return None, false
		}
		if keep(e.id) {
			return e.id, true
		}
		frontier[bi] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if l := 2*idx + 1; l < len(h.items) {
			frontier = append(frontier, l)
		}
		if r := 2*idx + 2; r < len(h.items) {
			frontier = append(frontier, r)
		}
	}
	return None, false
}

func (h *capHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].id] = i
	h.pos[h.items[j].id] = j
}

func (h *capHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !capLess(h.items[i], h.items[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *capHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && capLess(h.items[l], h.items[best]) {
			best = l
		}
		if r < n && capLess(h.items[r], h.items[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
