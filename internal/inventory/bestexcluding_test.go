package inventory

import "testing"

// referenceBestHostExcluding is the O(hosts) scan BestHostExcluding
// replaces: skip one host, require in-service with enough free memory
// (and free CPU when cpuMHz > 0), most free memory wins, first host in
// creation order wins ties (strict >) — the exact shape of the old
// ha.pickTarget / workload pickMigrationTarget / pickOtherHost loops.
func referenceBestHostExcluding(inv *Inventory, exclude ID, memMB, cpuMHz int) *Host {
	var best *Host
	for _, id := range inv.Hosts() {
		if id == exclude {
			continue
		}
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < memMB {
			continue
		}
		if cpuMHz > 0 && h.FreeCPUMHz() < cpuMHz {
			continue
		}
		if best == nil || h.FreeMemMB() > best.FreeMemMB() {
			best = h
		}
	}
	return best
}

func TestCPUReservationMHz(t *testing.T) {
	// The shared constant every picker must agree on: 500 MHz per vCPU.
	for cpus := 0; cpus <= 8; cpus++ {
		if got := CPUReservationMHz(cpus); got != cpus*500 {
			t.Fatalf("CPUReservationMHz(%d) = %d, want %d", cpus, got, cpus*500)
		}
	}
}

func TestBestHostExcludingMatchesReferenceScan(t *testing.T) {
	inv := New()
	dc := inv.AddDatacenter("dc")
	cl := inv.AddCluster(dc, "cl")
	var hosts []*Host
	for i := 0; i < 8; i++ {
		hosts = append(hosts, inv.AddHost(cl, "h", 8000, 65536))
	}
	var dss []*Datastore
	for i := 0; i < 2; i++ {
		dss = append(dss, inv.AddDatastore(dc, "d", 4000, 100))
	}
	// Deterministic churn: powered-on VMs consume CPU reservation too,
	// so the CPU filter is exercised against hosts near both limits.
	var vms []*VM
	state := uint64(0x51ed2701)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for step := 0; step < 3000; step++ {
		switch next(7) {
		case 0, 1:
			h, d := hosts[next(len(hosts))], dss[next(len(dss))]
			if vm, err := inv.AddVM("vm", h, d, 1+next(4), 1024*(1+next(4)), 1); err == nil {
				vms = append(vms, vm)
			}
		case 2:
			if len(vms) > 0 {
				vm := vms[next(len(vms))]
				if vm.State == VMPoweredOff {
					_ = inv.PowerOn(vm)
				}
			}
		case 3:
			if len(vms) > 0 {
				vm := vms[next(len(vms))]
				if vm.State == VMPoweredOn {
					_ = inv.PowerOff(vm)
				}
			}
		case 4:
			if len(vms) > 0 {
				i := next(len(vms))
				if inv.RemoveVM(vms[i]) == nil {
					vms = append(vms[:i], vms[i+1:]...)
				}
			}
		case 5:
			h := hosts[next(len(hosts))]
			inv.SetHostMaintenance(h, !h.Maintenance)
		case 6:
			h := hosts[next(len(hosts))]
			inv.SetHostFailed(h, !h.Failed)
		}
		exclude := hosts[next(len(hosts))].ID
		memMB := 1024 * (1 + next(8))
		cpuMHz := 0
		if next(2) == 0 {
			cpuMHz = CPUReservationMHz(1 + next(4))
		}
		got := inv.BestHostExcluding(exclude, memMB, cpuMHz)
		want := referenceBestHostExcluding(inv, exclude, memMB, cpuMHz)
		if got != want {
			t.Fatalf("step %d: BestHostExcluding(%v, %d, %d) = %v, scan = %v",
				step, exclude, memMB, cpuMHz, got, want)
		}
		if step%250 == 0 {
			if err := inv.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
