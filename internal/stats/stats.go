// Package stats provides the statistical accumulators the characterization
// pipeline is built on: streaming moments, exact-sample distributions with
// percentiles and CDFs, time-binned series, and burstiness measures.
//
// Accumulators store float64 observations; for the simulator these are
// seconds of virtual time, but nothing in this package assumes a unit.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates count, mean, and variance in one pass using
// Welford's algorithm, plus min and max. The zero value is ready to use.
type Moments struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Count returns the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Mean returns the sample mean, or 0 with no observations.
func (m *Moments) Mean() float64 { return m.mean }

// Sum returns the total of all observations.
func (m *Moments) Sum() float64 { return m.mean * float64(m.n) }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CV returns the coefficient of variation (stddev/mean), or 0 when the
// mean is 0.
func (m *Moments) CV() float64 {
	if m.mean == 0 {
		return 0
	}
	return m.StdDev() / m.mean
}

// Min returns the smallest observation (0 with none).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 with none).
func (m *Moments) Max() float64 { return m.max }

// Sample keeps every observation so exact percentiles and CDFs can be
// computed. The simulator's experiment scales (≤ a few million samples)
// make exact storage cheaper than approximate quantile sketches and keep
// results reproducible bit-for-bit. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
	mom    Moments
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.mom.Add(x)
}

// Count returns the number of observations.
func (s *Sample) Count() int64 { return s.mom.Count() }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return s.mom.Mean() }

// Sum returns the total of observations.
func (s *Sample) Sum() float64 { return s.mom.Sum() }

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return s.mom.StdDev() }

// CV returns the coefficient of variation.
func (s *Sample) CV() float64 { return s.mom.CV() }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.mom.Min() }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.mom.Max() }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 with no observations
// and panics for p outside [0,100] or NaN (NaN compares false against
// every bound, so without the explicit check it would silently fall
// through to an arbitrary rank).
func (s *Sample) Percentile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v", p))
	}
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// CDFPoint is one point of an empirical CDF: fraction F of observations
// are <= X.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced fractions
// (1/n, 2/n, ..., 1). It returns nil with no observations; n must be > 0.
func (s *Sample) CDF(n int) []CDFPoint {
	if n <= 0 {
		panic(fmt.Sprintf("stats: CDF n=%d", n))
	}
	if len(s.xs) == 0 {
		return nil
	}
	s.ensureSorted()
	out := make([]CDFPoint, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		out[i-1] = CDFPoint{X: s.Percentile(f * 100), F: f}
	}
	return out
}

// FractionBelow returns the fraction of observations <= x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Histogram counts observations into fixed-width bins over [lo, hi);
// values outside the range land in the under/overflow counters.
type Histogram struct {
	lo, hi float64
	width  float64
	bins   []int64
	under  int64
	over   int64
	nan    int64
	n      int64
}

// NewHistogram creates a histogram with nbins equal bins spanning [lo,hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic(fmt.Sprintf("stats: histogram [%v,%v) nbins=%d", lo, hi, nbins))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(nbins), bins: make([]int64, nbins)}
}

// Add records one observation. NaN is counted separately (see NaNs):
// it compares false against both range guards, so without its own case
// it would fall through to the bin index computation, where int(NaN)
// produces a platform-dependent negative index and a panic.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case math.IsNaN(x):
		h.nan++
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // float edge
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns total observations including under/overflow.
func (h *Histogram) Count() int64 { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) float64 { return h.lo + float64(i)*h.width }

// Underflow returns the count of observations below lo.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations at or above hi.
func (h *Histogram) Overflow() int64 { return h.over }

// NaNs returns the count of NaN observations. They are included in
// Count but belong to no bin and neither the under- nor overflow.
func (h *Histogram) NaNs() int64 { return h.nan }

// TimeSeries bins event counts by fixed-width windows of (virtual) time,
// for rate-over-time plots and burstiness measures. Windows start at 0.
type TimeSeries struct {
	width float64
	bins  []float64
}

// NewTimeSeries creates a series with the given window width (> 0).
func NewTimeSeries(width float64) *TimeSeries {
	if width <= 0 {
		panic(fmt.Sprintf("stats: time series width %v", width))
	}
	return &TimeSeries{width: width}
}

// Add accumulates weight w at finite time t (t >= 0). Use w=1 to count
// events. NaN and +Inf are rejected explicitly: NaN compares false
// against t < 0 and would index with int(NaN) (platform-dependent
// negative), while +Inf would grow the bin slice until the allocator
// gives out.
func (ts *TimeSeries) Add(t, w float64) {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 1) {
		panic(fmt.Sprintf("stats: time %v", t))
	}
	i := int(t / ts.width)
	for len(ts.bins) <= i {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[i] += w
}

// Width returns the window width.
func (ts *TimeSeries) Width() float64 { return ts.width }

// Len returns the number of windows touched so far.
func (ts *TimeSeries) Len() int { return len(ts.bins) }

// At returns the accumulated weight in window i (0 beyond the end).
func (ts *TimeSeries) At(i int) float64 {
	if i < 0 || i >= len(ts.bins) {
		return 0
	}
	return ts.bins[i]
}

// Bins returns a copy of the per-window totals.
func (ts *TimeSeries) Bins() []float64 {
	out := make([]float64, len(ts.bins))
	copy(out, ts.bins)
	return out
}

// Peak returns the largest window total and its index (-1 when empty).
func (ts *TimeSeries) Peak() (float64, int) {
	best, idx := 0.0, -1
	for i, v := range ts.bins {
		if idx == -1 || v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Mean returns the mean window total (0 when empty).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.bins) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range ts.bins {
		sum += v
	}
	return sum / float64(len(ts.bins))
}

// IndexOfDispersion returns Var/Mean of the window counts — 1 for a
// Poisson process, >1 for bursty arrivals. Returns 0 when undefined.
func (ts *TimeSeries) IndexOfDispersion() float64 {
	if len(ts.bins) < 2 {
		return 0
	}
	var m Moments
	for _, v := range ts.bins {
		m.Add(v)
	}
	if m.Mean() == 0 {
		return 0
	}
	return m.Variance() / m.Mean()
}

// PeakToMean returns the ratio of the busiest window to the mean window
// (0 when empty), a simple burstiness measure used in the experiment
// tables.
func (ts *TimeSeries) PeakToMean() float64 {
	mean := ts.Mean()
	if mean == 0 {
		return 0
	}
	peak, _ := ts.Peak()
	return peak / mean
}

// Autocorrelation returns the lag-k sample autocorrelation of xs, in
// [-1, 1]. It returns 0 when the series is too short or constant. The
// arrival-series analyses use it to quantify the periodicity of
// management load (diurnal cycles, session batches).
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	mean := m.Mean()
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
