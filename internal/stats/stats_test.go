package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMomentsBasics(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.Count() != 8 {
		t.Fatalf("count = %d", m.Count())
	}
	if !almost(m.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", m.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almost(m.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", m.Variance())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v", m.Min(), m.Max())
	}
	if !almost(m.Sum(), 40, 1e-9) {
		t.Fatalf("sum = %v", m.Sum())
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.CV() != 0 {
		t.Fatal("empty moments not zero")
	}
	m.Add(3)
	if m.Variance() != 0 || m.Mean() != 3 || m.Min() != 3 || m.Max() != 3 {
		t.Fatal("single-value moments wrong")
	}
}

func TestMomentsMatchNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var m Moments
		sum, sum2 := 0.0, 0.0
		for _, r := range raw {
			x := float64(r) / 3
			m.Add(x)
			sum += x
			sum2 += x * x
		}
		n := float64(len(raw))
		mean := sum / n
		variance := (sum2 - n*mean*mean) / (n - 1)
		return almost(m.Mean(), mean, 1e-6) && almost(m.Variance(), math.Max(variance, 0), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if !almost(s.Median(), 50.5, 1e-9) {
		t.Fatalf("median = %v", s.Median())
	}
	if !almost(s.Percentile(0), 1, 1e-9) || !almost(s.Percentile(100), 100, 1e-9) {
		t.Fatalf("p0/p100 = %v/%v", s.Percentile(0), s.Percentile(100))
	}
	p95 := s.Percentile(95)
	if p95 < 95 || p95 > 96.5 {
		t.Fatalf("p95 = %v", p95)
	}
}

func TestSamplePercentileInterleavedAdds(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Median() // forces a sort
	s.Add(1)       // must invalidate the sort
	s.Add(9)
	if !almost(s.Median(), 5, 1e-9) {
		t.Fatalf("median = %v", s.Median())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.CDF(4) != nil || s.FractionBelow(10) != 0 {
		t.Fatal("empty sample not zero-valued")
	}
}

func TestSamplePercentilePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Percentile(101)
}

func TestSamplePercentileRejectsNaN(t *testing.T) {
	// NaN compares false against both range bounds, so without an
	// explicit check it would slip past validation and index an
	// arbitrary rank. It must panic like any other out-of-range p.
	var s Sample
	s.Add(1)
	s.Add(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN percentile")
		}
	}()
	s.Percentile(math.NaN())
}

func TestSampleCDFMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		cdf := s.CDF(20)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X || cdf[i].F <= cdf[i-1].F {
				return false
			}
		}
		return cdf[len(cdf)-1].F == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if got := s.FractionBelow(2); !almost(got, 0.5, 1e-9) {
		t.Fatalf("FractionBelow(2) = %v", got)
	}
	if got := s.FractionBelow(0.5); got != 0 {
		t.Fatalf("FractionBelow(0.5) = %v", got)
	}
	if got := s.FractionBelow(100); got != 1 {
		t.Fatalf("FractionBelow(100) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	if h.Bin(0) != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Bin(0))
	}
	if h.Bin(1) != 1 { // 2
		t.Fatalf("bin1 = %d", h.Bin(1))
	}
	if h.Bin(4) != 1 { // 9.99
		t.Fatalf("bin4 = %d", h.Bin(4))
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.BinStart(3) != 6 {
		t.Fatalf("binstart(3) = %v", h.BinStart(3))
	}
}

func TestHistogramCountsConserved(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram(-100, 100, 13)
		for _, r := range raw {
			h.Add(float64(r))
		}
		var inBins int64
		for i := 0; i < h.NumBins(); i++ {
			inBins += h.Bin(i)
		}
		return inBins+h.Underflow()+h.Overflow() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNaNDoesNotPanic(t *testing.T) {
	// NaN compares false against both x < lo and x >= hi, so the old
	// code fell through to the bin index, where int(NaN) is a
	// platform-dependent negative value and bins[i]++ panicked.
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	h.Add(2)
	h.Add(math.NaN())
	if h.NaNs() != 2 {
		t.Fatalf("NaNs = %d, want 2", h.NaNs())
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Underflow() != 0 || h.Overflow() != 0 {
		t.Fatalf("NaN leaked into under/overflow: %d/%d", h.Underflow(), h.Overflow())
	}
	var binned int64
	for i := 0; i < h.NumBins(); i++ {
		binned += h.Bin(i)
	}
	if binned != 1 {
		t.Fatalf("binned = %d, want 1", binned)
	}
}

func TestTimeSeriesRejectsNaNTime(t *testing.T) {
	// NaN t passes the t < 0 guard (NaN comparisons are false) and the
	// old code indexed with int(NaN) — a platform-dependent negative.
	ts := NewTimeSeries(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN time")
		}
	}()
	ts.Add(math.NaN(), 1)
}

func TestTimeSeriesRejectsInfTime(t *testing.T) {
	// +Inf t passed the guard too, and the bin-growing loop would try
	// to extend the slice to int(+Inf) entries before the allocator
	// gave out.
	ts := NewTimeSeries(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for +Inf time")
		}
	}()
	ts.Add(math.Inf(1), 1)
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(60)
	ts.Add(0, 1)
	ts.Add(59.9, 1)
	ts.Add(60, 1)
	ts.Add(185, 1)
	if ts.Len() != 4 {
		t.Fatalf("len = %d", ts.Len())
	}
	if ts.At(0) != 2 || ts.At(1) != 1 || ts.At(2) != 0 || ts.At(3) != 1 {
		t.Fatalf("bins = %v", ts.Bins())
	}
	peak, idx := ts.Peak()
	if peak != 2 || idx != 0 {
		t.Fatalf("peak = %v@%d", peak, idx)
	}
	if ts.At(100) != 0 {
		t.Fatal("out-of-range At not zero")
	}
}

func TestTimeSeriesBurstiness(t *testing.T) {
	// A constant-rate series has dispersion ~0; a bursty one is large.
	flat := NewTimeSeries(1)
	for i := 0; i < 100; i++ {
		flat.Add(float64(i), 5)
	}
	bursty := NewTimeSeries(1)
	for i := 0; i < 100; i++ {
		if i%10 == 0 {
			bursty.Add(float64(i), 50)
		} else {
			bursty.Add(float64(i), 0)
		}
	}
	if flat.IndexOfDispersion() != 0 {
		t.Fatalf("flat dispersion = %v", flat.IndexOfDispersion())
	}
	if bursty.IndexOfDispersion() < 10 {
		t.Fatalf("bursty dispersion = %v", bursty.IndexOfDispersion())
	}
	if flat.PeakToMean() != 1 {
		t.Fatalf("flat peak/mean = %v", flat.PeakToMean())
	}
	if bursty.PeakToMean() != 10 {
		t.Fatalf("bursty peak/mean = %v", bursty.PeakToMean())
	}
}

func TestTimeSeriesMean(t *testing.T) {
	ts := NewTimeSeries(10)
	if ts.Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
	ts.Add(5, 4)
	ts.Add(15, 2)
	if !almost(ts.Mean(), 3, 1e-12) {
		t.Fatalf("mean = %v", ts.Mean())
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"hist-bad-range": func() { NewHistogram(5, 5, 3) },
		"hist-bad-bins":  func() { NewHistogram(0, 1, 0) },
		"ts-bad-width":   func() { NewTimeSeries(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// Period-4 square wave: strong positive correlation at lag 4,
	// strong negative at lag 2.
	var xs []float64
	for i := 0; i < 200; i++ {
		if i%4 < 2 {
			xs = append(xs, 1)
		} else {
			xs = append(xs, 0)
		}
	}
	if r := Autocorrelation(xs, 4); r < 0.9 {
		t.Fatalf("lag-4 r = %v, want ~1", r)
	}
	if r := Autocorrelation(xs, 2); r > -0.9 {
		t.Fatalf("lag-2 r = %v, want ~-1", r)
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	if Autocorrelation(nil, 1) != 0 {
		t.Fatal("nil series")
	}
	if Autocorrelation([]float64{5, 5, 5, 5}, 1) != 0 {
		t.Fatal("constant series")
	}
	if Autocorrelation([]float64{1, 2, 3}, 5) != 0 {
		t.Fatal("lag beyond length")
	}
	if Autocorrelation([]float64{1, 2, 3}, 0) != 0 {
		t.Fatal("zero lag must be rejected")
	}
}
