// Package workload generates the management workloads the experiments
// drive through the cloud director: two synthetic self-service cloud
// profiles standing in for the paper's two real-world setups, plus a
// classic admin-driven datacenter mix as the comparison baseline.
//
//   - CloudA models a bursty development/test cloud: strongly diurnal
//     self-service arrivals with occasional burst trains (a team spinning
//     up a test rig), small vApps, and hours-long lifetimes.
//   - CloudB models a training/classroom cloud: deploys arrive in large
//     session-boundary batches (a class starting), run for the session,
//     and are torn down together.
//   - ClassicDC models the pre-cloud management mix: rare provisioning,
//     long-lived VMs, and a steady trickle of admin operations
//     (migrations, reconfigurations, snapshots).
//
// The generators drive a clouddir.Director; every resulting operation is
// recorded by the manager's task sinks, which is what the trace and
// analysis packages consume.
package workload

import (
	"fmt"
	"math"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
)

// Day is one simulated day in seconds.
const Day = 86400.0

// Profile parameterizes one workload generator.
type Profile struct {
	Name string

	// Self-service arrivals: a (possibly modulated) Poisson process of
	// vApp deployment requests.
	BaseRatePerHour  float64 // mean vApp requests per hour
	DiurnalAmplitude float64 // 0 (flat) .. 1 (full day/night swing)
	BurstProb        float64 // probability an arrival heads a burst train
	BurstMin         int     // extra requests in a burst, inclusive bounds
	BurstMax         int
	VAppMin          int // VMs per vApp, inclusive bounds
	VAppMax          int

	// Session batches (CloudB): every SessionIntervalS, SessionBatch
	// vApps deploy together and live for SessionLifetimeS. 0 disables.
	SessionIntervalS float64
	SessionBatch     int
	SessionLifetimeS float64

	// Lifetime of self-service vApps before the user deletes them
	// (log-normal).
	LifetimeMeanS float64
	LifetimeCV    float64

	// Steady-state per-VM activity rates, per VM-hour.
	PowerCycleRate float64
	SnapshotRate   float64
	ReconfigRate   float64
	MigrateRate    float64 // admin-driven; classic DC mostly
	SuspendRate    float64 // suspend/resume cycles (classroom clouds)

	// TemplateTheta is the Zipf skew of template popularity.
	TemplateTheta float64
	// Orgs is the number of tenants requests are attributed to.
	Orgs int
}

// CloudA returns the bursty development/test cloud profile.
func CloudA() Profile {
	return Profile{
		Name:             "CloudA",
		BaseRatePerHour:  40,
		DiurnalAmplitude: 0.8,
		BurstProb:        0.15,
		BurstMin:         2,
		BurstMax:         8,
		VAppMin:          1,
		VAppMax:          4,
		LifetimeMeanS:    4 * 3600,
		LifetimeCV:       1.0,
		PowerCycleRate:   0.20,
		SnapshotRate:     0.06,
		ReconfigRate:     0.03,
		MigrateRate:      0.002,
		SuspendRate:      0.01,
		TemplateTheta:    1.0,
		Orgs:             24,
	}
}

// CloudB returns the training/classroom cloud profile.
func CloudB() Profile {
	return Profile{
		Name:             "CloudB",
		BaseRatePerHour:  6, // drop-in use between sessions
		DiurnalAmplitude: 0.3,
		VAppMin:          1,
		VAppMax:          2,
		SessionIntervalS: 2 * 3600,
		SessionBatch:     30,
		SessionLifetimeS: 1.7 * 3600,
		LifetimeMeanS:    2 * 3600,
		LifetimeCV:       0.5,
		PowerCycleRate:   0.10,
		SnapshotRate:     0.02,
		ReconfigRate:     0.01,
		MigrateRate:      0.001,
		SuspendRate:      0.08, // classes pause between sessions
		TemplateTheta:    1.4,  // classes share few images
		Orgs:             8,
	}
}

// ClassicDC returns the admin-driven classic datacenter baseline.
func ClassicDC() Profile {
	return Profile{
		Name:             "ClassicDC",
		BaseRatePerHour:  1.5,
		DiurnalAmplitude: 0.5,
		VAppMin:          1,
		VAppMax:          1,
		LifetimeMeanS:    20 * Day, // effectively permanent within a run
		LifetimeCV:       0.3,
		PowerCycleRate:   0.02,
		SnapshotRate:     0.03,
		ReconfigRate:     0.04,
		MigrateRate:      0.03,
		TemplateTheta:    0.6,
		Orgs:             4,
	}
}

// ByName returns a built-in profile by its CLI name: "cloud-a",
// "cloud-b", or "classic-dc".
func ByName(name string) (Profile, error) {
	switch name {
	case "cloud-a":
		return CloudA(), nil
	case "cloud-b":
		return CloudB(), nil
	case "classic-dc":
		return ClassicDC(), nil
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (want cloud-a, cloud-b, or classic-dc)", name)
}

// Names lists the built-in profile CLI names.
func Names() []string { return []string{"cloud-a", "cloud-b", "classic-dc"} }

// Validate checks the profile for usable values.
func (pr Profile) Validate() error {
	if pr.BaseRatePerHour < 0 || pr.DiurnalAmplitude < 0 || pr.DiurnalAmplitude > 1 {
		return fmt.Errorf("workload: bad rate/amplitude in %q", pr.Name)
	}
	if pr.BaseRatePerHour > 0 && (pr.VAppMin <= 0 || pr.VAppMax < pr.VAppMin) {
		return fmt.Errorf("workload: bad vApp size bounds in %q", pr.Name)
	}
	if pr.BurstProb < 0 || pr.BurstProb > 1 || pr.BurstMax < pr.BurstMin {
		return fmt.Errorf("workload: bad burst config in %q", pr.Name)
	}
	if pr.LifetimeMeanS <= 0 && (pr.BaseRatePerHour > 0 || pr.SessionIntervalS > 0) {
		return fmt.Errorf("workload: non-positive lifetime in %q", pr.Name)
	}
	if pr.SessionIntervalS > 0 && (pr.SessionBatch <= 0 || pr.SessionLifetimeS <= 0) {
		return fmt.Errorf("workload: bad session config in %q", pr.Name)
	}
	if pr.Orgs <= 0 {
		return fmt.Errorf("workload: orgs must be positive in %q", pr.Name)
	}
	return nil
}

// Stats counts what the generator issued.
type Stats struct {
	Arrivals     int64 // vApp deployment requests issued
	Bursts       int64 // burst trains triggered
	Sessions     int64 // session batches started
	Deleted      int64 // vApps deleted at end of life
	ActivityOps  int64 // per-VM background operations issued
	DeployErrors int64
}

// Generator drives one profile against a director.
type Generator struct {
	env     *sim.Env
	dir     *clouddir.Director
	profile Profile
	stream  *rng.Stream
	zipf    *rng.Zipf
	horizon sim.Time
	stats   Stats
	nextID  int64
}

// NewGenerator builds a generator. The horizon bounds when new work is
// created (in-flight work may finish later). The stream must be dedicated
// to this generator.
func NewGenerator(env *sim.Env, dir *clouddir.Director, profile Profile, stream *rng.Stream, horizon sim.Time) (*Generator, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon %v", horizon)
	}
	ntpl := len(dir.Manager().Inventory().Templates())
	if ntpl == 0 {
		return nil, fmt.Errorf("workload: inventory has no templates")
	}
	return &Generator{
		env: env, dir: dir, profile: profile, stream: stream,
		zipf:    rng.NewZipf(stream, ntpl, profile.TemplateTheta),
		horizon: horizon,
	}, nil
}

// Stats returns what has been issued so far.
func (g *Generator) Stats() Stats { return g.stats }

// Start launches the arrival and session processes.
func (g *Generator) Start() {
	if g.profile.BaseRatePerHour > 0 {
		g.env.Go(g.profile.Name+":arrivals", g.arrivalLoop)
	}
	if g.profile.SessionIntervalS > 0 {
		g.env.Go(g.profile.Name+":sessions", g.sessionLoop)
	}
}

// rateAt returns the instantaneous arrival rate (requests/second) at time
// t, applying the diurnal modulation: lowest at t=0 (midnight), peaking
// mid-day.
func (g *Generator) rateAt(t sim.Time) float64 {
	base := g.profile.BaseRatePerHour / 3600
	if g.profile.DiurnalAmplitude == 0 {
		return base
	}
	phase := 2 * math.Pi * math.Mod(t, Day) / Day
	return base * (1 - g.profile.DiurnalAmplitude*math.Cos(phase))
}

// arrivalLoop issues self-service vApp requests as a thinned Poisson
// process with the diurnal rate.
func (g *Generator) arrivalLoop(p *sim.Proc) {
	maxRate := g.profile.BaseRatePerHour / 3600 * (1 + g.profile.DiurnalAmplitude)
	for {
		p.Sleep(g.stream.Exponential(1 / maxRate))
		if p.Now() >= g.horizon {
			return
		}
		if !g.stream.Bernoulli(g.rateAt(p.Now()) / maxRate) {
			continue // thinned out
		}
		n := 1
		if g.stream.Bernoulli(g.profile.BurstProb) {
			g.stats.Bursts++
			n += g.profile.BurstMin
			if g.profile.BurstMax > g.profile.BurstMin {
				n += g.stream.Intn(g.profile.BurstMax - g.profile.BurstMin + 1)
			}
		}
		for i := 0; i < n; i++ {
			lifetime := g.stream.LogNormal(g.profile.LifetimeMeanS, g.profile.LifetimeCV)
			g.launchVApp(g.vappSize(), lifetime)
		}
	}
}

// sessionLoop deploys the session batches.
func (g *Generator) sessionLoop(p *sim.Proc) {
	for {
		p.Sleep(g.profile.SessionIntervalS)
		if p.Now() >= g.horizon {
			return
		}
		g.stats.Sessions++
		for i := 0; i < g.profile.SessionBatch; i++ {
			g.launchVApp(g.vappSize(), g.profile.SessionLifetimeS)
		}
	}
}

func (g *Generator) vappSize() int {
	n := g.profile.VAppMin
	if g.profile.VAppMax > g.profile.VAppMin {
		n += g.stream.Intn(g.profile.VAppMax - g.profile.VAppMin + 1)
	}
	return n
}

// launchVApp spawns the full lifecycle of one vApp: deploy, background
// activity, delete after its lifetime.
func (g *Generator) launchVApp(size int, lifetimeS float64) {
	g.stats.Arrivals++
	g.nextID++
	org := fmt.Sprintf("org%d", g.stream.Intn(g.profile.Orgs))
	tplIdx := g.zipf.Draw()
	name := fmt.Sprintf("%s-req%d", g.profile.Name, g.nextID)
	g.env.Go(name, func(p *sim.Proc) {
		inv := g.dir.Manager().Inventory()
		tpl := inv.Template(inv.Templates()[tplIdx])
		res := g.dir.DeployVApp(p, org, tpl, size, true)
		if res.Err != nil {
			g.stats.DeployErrors++
			// Tear down whatever partially deployed.
			if res.VApp != nil && inv.VApp(res.VApp.ID) != nil {
				g.dir.DeleteVApp(p, res.VApp, org)
			}
			return
		}
		for _, vmID := range res.VApp.VMs {
			vmID := vmID
			g.env.Go(name+":activity", func(ap *sim.Proc) { g.activityLoop(ap, vmID, org) })
		}
		p.Sleep(lifetimeS)
		if inv.VApp(res.VApp.ID) != nil {
			g.dir.DeleteVApp(p, res.VApp, org)
			g.stats.Deleted++
		}
	})
}

// activityLoop issues background per-VM operations until the VM is
// deleted or the horizon passes.
func (g *Generator) activityLoop(p *sim.Proc, vmID inventory.ID, org string) {
	pr := g.profile
	total := (pr.PowerCycleRate + pr.SnapshotRate + pr.ReconfigRate + pr.MigrateRate + pr.SuspendRate) / 3600
	if total <= 0 {
		return
	}
	weights := []float64{pr.PowerCycleRate, pr.SnapshotRate, pr.ReconfigRate, pr.MigrateRate, pr.SuspendRate}
	inv := g.dir.Manager().Inventory()
	mgr := g.dir.Manager()
	for {
		p.Sleep(g.stream.Exponential(1 / total))
		if p.Now() >= g.horizon {
			return
		}
		vm := inv.VM(vmID)
		if vm == nil || vm.State == inventory.VMDeleted {
			return
		}
		g.stats.ActivityOps++
		// Background churn bypasses the cell stage: in both real setups
		// the steady per-VM activity reaches the manager directly as
		// often as via the cloud API, and keeping it manager-side keeps
		// cell load attributable to self-service requests.
		ctx := mgmt.ReqCtx{Org: org}
		switch g.stream.WeightedChoice(weights) {
		case 0: // power cycle
			if vm.State == inventory.VMPoweredOn {
				mgr.PowerOff(p, vm, ctx)
				if inv.VM(vmID) != nil {
					mgr.PowerOn(p, vm, ctx)
				}
			} else if vm.State == inventory.VMPoweredOff {
				mgr.PowerOn(p, vm, ctx)
			}
		case 1: // snapshot: create, and remove the oldest if piling up
			if vm.Snapshots >= 3 {
				mgr.SnapshotRemove(p, vm, ctx)
			} else {
				mgr.SnapshotCreate(p, vm, ctx)
			}
		case 2:
			mgr.Reconfigure(p, vm, ctx)
		case 3:
			if dst := g.pickOtherHost(vm); dst != nil {
				mgr.Migrate(p, vm, dst, ctx)
			}
		case 4: // suspend/resume cycle
			if vm.State == inventory.VMPoweredOn {
				mgr.Suspend(p, vm, ctx)
			} else if vm.State == inventory.VMSuspended {
				mgr.Resume(p, vm, ctx)
			}
		}
	}
}

// pickOtherHost finds the most-free in-service host other than the
// VM's current one via the capacity index; pickOtherHostLinear is the
// retained O(hosts) reference the equivalence test pins it against.
func (g *Generator) pickOtherHost(vm *inventory.VM) *inventory.Host {
	inv := g.dir.Manager().Inventory()
	return inv.BestHostExcluding(vm.HostID, vm.MemMB, 0)
}

func (g *Generator) pickOtherHostLinear(vm *inventory.VM) *inventory.Host {
	inv := g.dir.Manager().Inventory()
	var best *inventory.Host
	for _, id := range inv.Hosts() {
		if id == vm.HostID {
			continue
		}
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < vm.MemMB {
			continue
		}
		if best == nil || h.FreeMemMB() > best.FreeMemMB() {
			best = h
		}
	}
	return best
}
