package workload

import (
	"testing"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/trace"
)

// recordTrace runs CloudA briefly on a rig and returns its trace.
func recordTrace(t *testing.T, seed int64, horizon sim.Time) []trace.Record {
	t.Helper()
	r := newRig(t, seed, clouddir.DefaultConfig())
	rec := trace.NewRecorder()
	r.mgr.AddTaskSink(rec.Sink)
	pr := CloudA()
	pr.LifetimeMeanS = 1200 // churn inside the window so destroys appear
	gen, err := NewGenerator(r.env, r.dir, pr, rng.Derive(seed, "wl"), horizon)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	r.env.Run(horizon)
	return rec.Records()
}

func TestReplayReproducesWorkload(t *testing.T) {
	recs := recordTrace(t, 3, 2*3600)
	if len(recs) == 0 {
		t.Fatal("empty recording")
	}

	// Replay onto a fresh rig with its own recorder.
	r2 := newRig(t, 99, clouddir.DefaultConfig())
	rec2 := trace.NewRecorder()
	r2.mgr.AddTaskSink(rec2.Sink)
	rp, err := NewReplayer(r2.env, r2.dir, recs)
	if err != nil {
		t.Fatal(err)
	}
	rp.Start()
	r2.env.Run(3 * 3600)

	st := rp.Stats()
	if st.Issued == 0 {
		t.Fatal("nothing issued")
	}
	if st.ByKind[ops.KindDeploy.String()] == 0 {
		t.Fatal("no deploys replayed")
	}
	// Every recorded deploy must be replayable (deploys never need a
	// pre-existing target).
	var recordedDeploys int64
	for _, r := range recs {
		if r.Kind == ops.KindDeploy.String() {
			recordedDeploys++
		}
	}
	if st.ByKind[ops.KindDeploy.String()] != recordedDeploys {
		t.Fatalf("replayed %d deploys of %d recorded",
			st.ByKind[ops.KindDeploy.String()], recordedDeploys)
	}
	// The replayed run produced comparable activity: at least as many
	// operations as were dispatched (power-ons ride along with deploys).
	if int64(rec2.Len()) < st.Issued {
		t.Fatalf("replay produced %d records for %d issued ops", rec2.Len(), st.Issued)
	}
	if err := r2.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayDeterministic(t *testing.T) {
	recs := recordTrace(t, 5, 3600)
	run := func() (int64, int) {
		r := newRig(t, 7, clouddir.DefaultConfig())
		rec := trace.NewRecorder()
		r.mgr.AddTaskSink(rec.Sink)
		rp, err := NewReplayer(r.env, r.dir, recs)
		if err != nil {
			t.Fatal(err)
		}
		rp.Start()
		r.env.Run(2 * 3600)
		return rp.Stats().Issued, rec.Len()
	}
	i1, n1 := run()
	i2, n2 := run()
	if i1 != i2 || n1 != n2 {
		t.Fatalf("replay nondeterministic: %d/%d vs %d/%d", i1, n1, i2, n2)
	}
}

func TestReplayCountsUnmappedAndSystemOps(t *testing.T) {
	recs := []trace.Record{
		{Kind: "powerOn", Org: "ghost", Submit: 1},    // no live VM → unmapped
		{Kind: "rebalance", Org: "system", Submit: 2}, // system op → skipped
		{Kind: "bogus", Submit: 3},                    // unknown kind → unmapped
		{Kind: "destroy", Org: "ghost", Submit: 4},    // nothing to destroy
	}
	r := newRig(t, 11, clouddir.DefaultConfig())
	rp, err := NewReplayer(r.env, r.dir, recs)
	if err != nil {
		t.Fatal(err)
	}
	rp.Start()
	r.env.Run(100)
	st := rp.Stats()
	if st.Issued != 0 {
		t.Fatalf("issued = %d", st.Issued)
	}
	if st.Unmapped != 3 {
		t.Fatalf("unmapped = %d, want 3", st.Unmapped)
	}
	if st.SystemOps != 1 {
		t.Fatalf("system ops = %d, want 1", st.SystemOps)
	}
}

func TestReplayRejectsEmptyTrace(t *testing.T) {
	r := newRig(t, 13, clouddir.DefaultConfig())
	if _, err := NewReplayer(r.env, r.dir, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestReplayOrdersBySubmit(t *testing.T) {
	// Deploy submitted later but listed first must still precede the
	// destroy that targets it.
	recs := []trace.Record{
		{Kind: "destroy", Org: "o", Submit: 500},
		{Kind: "deploy", Org: "o", Template: 1, Submit: 1},
	}
	r := newRig(t, 17, clouddir.DefaultConfig())
	rp, err := NewReplayer(r.env, r.dir, recs)
	if err != nil {
		t.Fatal(err)
	}
	rp.Start()
	r.env.Run(2000)
	st := rp.Stats()
	if st.Issued != 2 || st.Unmapped != 0 {
		t.Fatalf("stats = %+v (deploy should have preceded destroy)", st)
	}
	if n := len(r.inv.VMs()); n != 0 {
		t.Fatalf("VMs left = %d", n)
	}
}
