package workload

import (
	"fmt"
	"sort"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/trace"
)

// Replayer re-issues a recorded management trace against a (possibly
// differently configured) cloud: the what-if tool the characterization
// methodology enables. Records are dispatched open-loop at their recorded
// submit times, so a smaller control plane shows up as queueing and
// latency, exactly as it would have in production.
//
// Entity identity does not survive across runs, so targets are remapped
// structurally: deploys map the recorded template reference onto the new
// catalog (by order), and VM-scoped operations are applied to a live VM
// of the same tenant, chosen round-robin. Records that cannot be mapped
// (an op for a tenant with no live VMs, or a system-internal op the new
// control plane regenerates itself) are counted, not silently dropped.
type Replayer struct {
	env     *sim.Env
	dir     *clouddir.Director
	records []trace.Record

	// per-org state
	vapps  map[string][]inventory.ID // live vApp ring per org
	rrIdx  map[string]int
	stats  ReplayStats
	nextID int64
}

// ReplayStats counts replay dispatch outcomes.
type ReplayStats struct {
	Issued    int64            // operations dispatched
	Unmapped  int64            // records with no live target in the new run
	SystemOps int64            // internal ops skipped (the new run makes its own)
	ByKind    map[string]int64 // issued, by kind
}

// NewReplayer prepares a replay of records against dir. Records are
// copied and sorted by submit time.
func NewReplayer(env *sim.Env, dir *clouddir.Director, records []trace.Record) (*Replayer, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if len(dir.Manager().Inventory().Templates()) == 0 {
		return nil, fmt.Errorf("workload: inventory has no templates")
	}
	cp := make([]trace.Record, len(records))
	copy(cp, records)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Submit < cp[j].Submit })
	return &Replayer{
		env: env, dir: dir, records: cp,
		vapps: make(map[string][]inventory.ID),
		rrIdx: make(map[string]int),
		stats: ReplayStats{ByKind: make(map[string]int64)},
	}, nil
}

// Stats returns dispatch counts accumulated so far.
func (r *Replayer) Stats() ReplayStats { return r.stats }

// Start launches the replay driver process. Dispatch is open-loop: each
// record fires at its recorded submit time regardless of how the previous
// ones are progressing.
func (r *Replayer) Start() {
	r.env.Go("replay", func(p *sim.Proc) {
		for _, rec := range r.records {
			if at := sim.Time(rec.Submit); at > p.Now() {
				p.Sleep(at - p.Now())
			}
			r.dispatch(rec)
		}
	})
}

func (r *Replayer) dispatch(rec trace.Record) {
	kind, err := rec.OpKind()
	if err != nil {
		r.stats.Unmapped++
		return
	}
	switch kind {
	case ops.KindDeploy:
		r.stats.Issued++
		r.stats.ByKind[rec.Kind]++
		r.nextID++
		org := rec.Org
		tplRef := rec.Template
		r.env.Go(fmt.Sprintf("replay-deploy-%d", r.nextID), func(p *sim.Proc) {
			inv := r.dir.Manager().Inventory()
			tpls := inv.Templates()
			tpl := inv.Template(tpls[int(tplRef)%len(tpls)])
			res := r.dir.DeployVApp(p, org, tpl, 1, true)
			if res.Err == nil {
				r.vapps[org] = append(r.vapps[org], res.VApp.ID)
			} else if res.VApp != nil && inv.VApp(res.VApp.ID) != nil {
				r.dir.DeleteVApp(p, res.VApp, org)
			}
		})
	case ops.KindDestroy:
		va := r.popVApp(rec.Org)
		if va == inventory.None {
			r.stats.Unmapped++
			return
		}
		r.stats.Issued++
		r.stats.ByKind[rec.Kind]++
		r.nextID++
		org := rec.Org
		r.env.Go(fmt.Sprintf("replay-destroy-%d", r.nextID), func(p *sim.Proc) {
			inv := r.dir.Manager().Inventory()
			if v := inv.VApp(va); v != nil {
				r.dir.DeleteVApp(p, v, org)
			}
		})
	case ops.KindPowerOn, ops.KindPowerOff, ops.KindReconfigure,
		ops.KindSnapshotCreate, ops.KindSnapshotRemove, ops.KindMigrate,
		ops.KindSuspend, ops.KindResume:
		vmID := r.pickVM(rec.Org)
		if vmID == inventory.None {
			r.stats.Unmapped++
			return
		}
		r.stats.Issued++
		r.stats.ByKind[rec.Kind]++
		r.nextID++
		org := rec.Org
		r.env.Go(fmt.Sprintf("replay-op-%d", r.nextID), func(p *sim.Proc) {
			r.applyVMOp(p, kind, vmID, org)
		})
	default:
		// Rebalance, consolidation, shadow/catalog maintenance: the
		// replayed control plane generates these itself.
		r.stats.SystemOps++
	}
}

// popVApp removes and returns the oldest live vApp of org.
func (r *Replayer) popVApp(org string) inventory.ID {
	inv := r.dir.Manager().Inventory()
	ring := r.vapps[org]
	for len(ring) > 0 {
		id := ring[0]
		ring = ring[1:]
		if inv.VApp(id) != nil {
			r.vapps[org] = ring
			return id
		}
	}
	r.vapps[org] = ring
	return inventory.None
}

// pickVM returns a live VM of org, round-robin over its vApps. Dead
// vApp IDs anywhere in the ring (popVApp only trims the front, but
// lease expiry and failed-deploy cleanup kill vApps mid-ring) are
// pruned in place as they are encountered, so the ring holds only live
// entries and pickVM stays O(live) instead of spinning over tombstones
// on every op. The round-robin cursor advances only past live entries,
// which keeps the visit order over survivors identical to the
// pre-pruning behavior when no dead entries are present.
func (r *Replayer) pickVM(org string) inventory.ID {
	inv := r.dir.Manager().Inventory()
	ring := r.vapps[org]
	for tries := len(ring); tries > 0 && len(ring) > 0; tries-- {
		idx := r.rrIdx[org] % len(ring)
		va := inv.VApp(ring[idx])
		if va == nil {
			ring = append(ring[:idx], ring[idx+1:]...)
			r.vapps[org] = ring
			continue
		}
		r.rrIdx[org]++
		if len(va.VMs) == 0 {
			continue
		}
		return va.VMs[0]
	}
	return inventory.None
}

func (r *Replayer) applyVMOp(p *sim.Proc, kind ops.Kind, vmID inventory.ID, org string) {
	mgr := r.dir.Manager()
	inv := mgr.Inventory()
	vm := inv.VM(vmID)
	if vm == nil {
		return
	}
	ctx := mgmt.ReqCtx{Org: org}
	switch kind {
	case ops.KindPowerOn:
		if vm.State == inventory.VMPoweredOff {
			mgr.PowerOn(p, vm, ctx)
		}
	case ops.KindPowerOff:
		if vm.State == inventory.VMPoweredOn {
			mgr.PowerOff(p, vm, ctx)
		}
	case ops.KindReconfigure:
		mgr.Reconfigure(p, vm, ctx)
	case ops.KindSnapshotCreate:
		mgr.SnapshotCreate(p, vm, ctx)
	case ops.KindSnapshotRemove:
		if vm.Snapshots > 0 {
			mgr.SnapshotRemove(p, vm, ctx)
		}
	case ops.KindMigrate:
		if dst := r.pickMigrationTarget(vm); dst != nil {
			mgr.Migrate(p, vm, dst, ctx)
		}
	case ops.KindSuspend:
		if vm.State == inventory.VMPoweredOn {
			mgr.Suspend(p, vm, ctx)
		}
	case ops.KindResume:
		if vm.State == inventory.VMSuspended {
			mgr.Resume(p, vm, ctx)
		}
	}
}

// pickMigrationTarget finds the most-free in-service host other than
// the VM's current one via the capacity index — O(log hosts) instead
// of the O(hosts) scan it replaces (pickMigrationTargetLinear, kept
// below as the equivalence reference).
func (r *Replayer) pickMigrationTarget(vm *inventory.VM) *inventory.Host {
	inv := r.dir.Manager().Inventory()
	return inv.BestHostExcluding(vm.HostID, vm.MemMB, 0)
}

// pickMigrationTargetLinear is the pre-index reference scan, retained
// for the equivalence test that pins pickMigrationTarget bit-for-bit.
func (r *Replayer) pickMigrationTargetLinear(vm *inventory.VM) *inventory.Host {
	inv := r.dir.Manager().Inventory()
	var best *inventory.Host
	for _, id := range inv.Hosts() {
		if id == vm.HostID {
			continue
		}
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < vm.MemMB {
			continue
		}
		if best == nil || h.FreeMemMB() > best.FreeMemMB() {
			best = h
		}
	}
	return best
}
