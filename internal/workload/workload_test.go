package workload

import (
	"testing"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/storage"
)

// rig is a mid-size cloud: 16 hosts, 4 datastores, 4 templates.
type rig struct {
	env *sim.Env
	inv *inventory.Inventory
	mgr *mgmt.Manager
	dir *clouddir.Director
}

func newRig(t *testing.T, seed int64, dcfg clouddir.Config) *rig {
	t.Helper()
	env := sim.NewEnv()
	inv := inventory.New()
	dc := inv.AddDatacenter("dc0")
	cl := inv.AddCluster(dc, "cl0")
	for i := 0; i < 16; i++ {
		inv.AddHost(cl, "h", 80000, 524288)
	}
	var first *inventory.Datastore
	for i := 0; i < 4; i++ {
		ds := inv.AddDatastore(dc, "ds", 20000, 300)
		if first == nil {
			first = ds
		}
	}
	for i := 0; i < 4; i++ {
		inv.AddTemplate(first, "tpl", 16, 2048, 2)
	}
	pool := storage.NewPool(env, inv)
	model := ops.DefaultCostModel()
	mgr, err := mgmt.New(env, inv, pool, model, rng.Derive(seed, "mgr"), mgmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir, err := clouddir.New(env, mgr, model, rng.Derive(seed, "cells"), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{env: env, inv: inv, mgr: mgr, dir: dir}
}

func runProfile(t *testing.T, pr Profile, seed int64, horizon sim.Time) (*rig, *Generator) {
	t.Helper()
	r := newRig(t, seed, clouddir.DefaultConfig())
	gen, err := NewGenerator(r.env, r.dir, pr, rng.Derive(seed, "wl:"+pr.Name), horizon)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	r.env.Run(horizon)
	return r, gen
}

func TestProfilesValidate(t *testing.T) {
	for _, pr := range []Profile{CloudA(), CloudB(), ClassicDC()} {
		if err := pr.Validate(); err != nil {
			t.Fatalf("%s: %v", pr.Name, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := CloudA()
	bad.VAppMin = 0
	if bad.Validate() == nil {
		t.Fatal("vApp bounds accepted")
	}
	bad = CloudA()
	bad.DiurnalAmplitude = 1.5
	if bad.Validate() == nil {
		t.Fatal("amplitude accepted")
	}
	bad = CloudB()
	bad.SessionBatch = 0
	if bad.Validate() == nil {
		t.Fatal("session config accepted")
	}
	bad = CloudA()
	bad.Orgs = 0
	if bad.Validate() == nil {
		t.Fatal("orgs accepted")
	}
}

func TestGeneratorRequiresTemplates(t *testing.T) {
	env := sim.NewEnv()
	inv := inventory.New()
	dc := inv.AddDatacenter("dc")
	cl := inv.AddCluster(dc, "cl")
	inv.AddHost(cl, "h", 10000, 8192)
	inv.AddDatastore(dc, "ds", 100, 10)
	pool := storage.NewPool(env, inv)
	model := ops.DefaultCostModel()
	mgr, _ := mgmt.New(env, inv, pool, model, rng.New(1), mgmt.DefaultConfig())
	dir, _ := clouddir.New(env, mgr, model, rng.New(2), clouddir.DefaultConfig())
	if _, err := NewGenerator(env, dir, CloudA(), rng.New(3), 100); err == nil {
		t.Fatal("expected no-templates error")
	}
}

func TestCloudAGeneratesWork(t *testing.T) {
	r, gen := runProfile(t, CloudA(), 7, 4*3600)
	st := gen.Stats()
	if st.Arrivals < 50 {
		t.Fatalf("arrivals = %d, want >=50 over 4h at 40/h", st.Arrivals)
	}
	if r.mgr.TasksCompleted() < int64(st.Arrivals) {
		t.Fatalf("tasks %d < arrivals %d", r.mgr.TasksCompleted(), st.Arrivals)
	}
	sum := r.mgr.Summary()
	kinds := map[ops.Kind]bool{}
	for _, s := range sum {
		kinds[s.Kind] = true
	}
	if !kinds[ops.KindDeploy] || !kinds[ops.KindPowerOn] {
		t.Fatalf("missing core kinds in %v", kinds)
	}
	if err := r.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloudALifecycleDeletes(t *testing.T) {
	// With a short lifetime, vApps deployed early are deleted within the
	// run, so destroys appear.
	pr := CloudA()
	pr.LifetimeMeanS = 600
	pr.LifetimeCV = 0.2
	r, gen := runProfile(t, pr, 11, 3*3600)
	if gen.Stats().Deleted == 0 {
		t.Fatal("no vApps deleted")
	}
	found := false
	for _, s := range r.mgr.Summary() {
		if s.Kind == ops.KindDestroy && s.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no destroy tasks recorded")
	}
}

func TestCloudBSessionBatches(t *testing.T) {
	r, gen := runProfile(t, CloudB(), 13, 5*3600)
	st := gen.Stats()
	if st.Sessions != 2 { // sessions at t=2h and t=4h
		t.Fatalf("sessions = %d, want 2", st.Sessions)
	}
	if st.Arrivals < int64(st.Sessions)*30 {
		t.Fatalf("arrivals = %d, want >= %d", st.Arrivals, st.Sessions*30)
	}
	if err := r.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClassicDCIsQuiet(t *testing.T) {
	_, genA := runProfile(t, CloudA(), 17, 2*3600)
	_, genDC := runProfile(t, ClassicDC(), 17, 2*3600)
	if genDC.Stats().Arrivals*5 >= genA.Stats().Arrivals {
		t.Fatalf("classic DC arrivals %d not ≪ CloudA %d",
			genDC.Stats().Arrivals, genA.Stats().Arrivals)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		r, gen := runProfile(t, CloudA(), 23, 2*3600)
		return r.mgr.TasksCompleted(), gen.Stats().Arrivals
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 || a1 != a2 {
		t.Fatalf("runs diverged: tasks %d/%d arrivals %d/%d", t1, t2, a1, a2)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	ra, _ := runProfile(t, CloudA(), 31, 2*3600)
	rb, _ := runProfile(t, CloudA(), 32, 2*3600)
	if ra.mgr.TasksCompleted() == rb.mgr.TasksCompleted() {
		t.Log("task counts equal across seeds (possible but unlikely); checking summaries")
		sa, sb := ra.mgr.Summary(), rb.mgr.Summary()
		same := len(sa) == len(sb)
		if same {
			for i := range sa {
				if sa[i].MeanLatency != sb[i].MeanLatency {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical results")
		}
	}
}

func TestActivityOpsOccur(t *testing.T) {
	pr := CloudA()
	pr.PowerCycleRate = 2.0 // crank activity so a short run sees it
	pr.SnapshotRate = 1.0
	pr.ReconfigRate = 1.0
	r, gen := runProfile(t, pr, 37, 2*3600)
	if gen.Stats().ActivityOps == 0 {
		t.Fatal("no background activity")
	}
	kinds := map[ops.Kind]int64{}
	for _, s := range r.mgr.Summary() {
		kinds[s.Kind] = s.Count
	}
	if kinds[ops.KindSnapshotCreate] == 0 || kinds[ops.KindReconfigure] == 0 {
		t.Fatalf("missing activity kinds: %v", kinds)
	}
	if err := r.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsHoldUnderChurnWithDeletes(t *testing.T) {
	pr := CloudA()
	pr.LifetimeMeanS = 300
	pr.LifetimeCV = 1.0
	pr.PowerCycleRate = 1.0
	pr.SnapshotRate = 0.5
	r, _ := runProfile(t, pr, 41, 3*3600)
	if err := r.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.mgr.TasksCompleted() == 0 {
		t.Fatal("nothing ran")
	}
}

func TestDiurnalRateShape(t *testing.T) {
	pr := CloudA()
	env := sim.NewEnv()
	_ = env
	g := &Generator{profile: pr}
	midnight := g.rateAt(0)
	noon := g.rateAt(Day / 2)
	if noon <= midnight {
		t.Fatalf("noon rate %v not above midnight %v", noon, midnight)
	}
	flat := &Generator{profile: ClassicDC()}
	flat.profile.DiurnalAmplitude = 0
	if flat.rateAt(0) != flat.rateAt(Day/2) {
		t.Fatal("flat profile not flat")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		pr, err := ByName(name)
		if err != nil || pr.Name == "" {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSuspendActivityAppears(t *testing.T) {
	pr := CloudB()
	pr.SuspendRate = 3.0 // crank so a short run sees it
	r, _ := runProfile(t, pr, 43, 3*3600)
	kinds := map[ops.Kind]int64{}
	for _, s := range r.mgr.Summary() {
		kinds[s.Kind] = s.Count
	}
	if kinds[ops.KindSuspend] == 0 {
		t.Fatalf("no suspends: %v", kinds)
	}
	if err := r.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
