package workload

import (
	"fmt"
	"testing"

	"cloudmcp/internal/clouddir"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/sim"
)

// TestPickersMatchLinearReferenceFuzz pins the index-backed migration
// pickers (replay.pickMigrationTarget, workload.pickOtherHost) to
// their retained linear reference scans under deterministic churn —
// the same bit-for-bit contract the placement equivalence suite pins
// for clouddir.
func TestPickersMatchLinearReferenceFuzz(t *testing.T) {
	r := newRig(t, 1, clouddir.DefaultConfig())
	inv := r.inv
	hosts := make([]*inventory.Host, 0, 16)
	for _, id := range inv.Hosts() {
		hosts = append(hosts, inv.Host(id))
	}
	ds := inv.Datastore(inv.Datastores()[0])
	gen := &Generator{dir: r.dir}
	rep := &Replayer{dir: r.dir}

	var vms []*inventory.VM
	state := uint64(0xfeed)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for step := 0; step < 3000; step++ {
		switch next(6) {
		case 0, 1:
			h := hosts[next(len(hosts))]
			if vm, err := inv.AddVM("vm", h, ds, 1+next(4), 4096*(1+next(8)), 1); err == nil {
				vms = append(vms, vm)
			}
		case 2:
			if len(vms) > 0 {
				vm := vms[next(len(vms))]
				if vm.State == inventory.VMPoweredOff {
					_ = inv.PowerOn(vm)
				}
			}
		case 3:
			if len(vms) > 0 {
				i := next(len(vms))
				if inv.RemoveVM(vms[i]) == nil {
					vms = append(vms[:i], vms[i+1:]...)
				}
			}
		case 4:
			h := hosts[next(len(hosts))]
			inv.SetHostMaintenance(h, !h.Maintenance)
		case 5:
			h := hosts[next(len(hosts))]
			inv.SetHostFailed(h, !h.Failed)
		}
		if len(vms) == 0 {
			continue
		}
		vm := vms[next(len(vms))]
		if got, want := rep.pickMigrationTarget(vm), rep.pickMigrationTargetLinear(vm); got != want {
			t.Fatalf("step %d: pickMigrationTarget = %v, linear = %v", step, got, want)
		}
		if got, want := gen.pickOtherHost(vm), gen.pickOtherHostLinear(vm); got != want {
			t.Fatalf("step %d: pickOtherHost = %v, linear = %v", step, got, want)
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPickVMPrunesDeadVAppsInPlace deletes vApps mid-ring and asserts
// pickVM drops the dead IDs from the ring (bounding its cost) while
// still round-robining over the survivors in order.
func TestPickVMPrunesDeadVAppsInPlace(t *testing.T) {
	r := newRig(t, 2, clouddir.DefaultConfig())
	rep := &Replayer{
		dir:   r.dir,
		vapps: make(map[string][]inventory.ID),
		rrIdx: make(map[string]int),
	}
	const org = "org0"
	inv := r.inv
	tpl := inv.Template(inv.Templates()[0])

	// Deploy 8 single-VM vApps into the org's ring.
	var vapps []*inventory.VApp
	deploy := func() {
		r.env.Go("deploy", func(p *sim.Proc) {
			res := r.dir.DeployVApp(p, org, tpl, 1, true)
			if res.Err != nil {
				t.Errorf("deploy: %v", res.Err)
				return
			}
			vapps = append(vapps, res.VApp)
			rep.vapps[org] = append(rep.vapps[org], res.VApp.ID)
		})
	}
	for i := 0; i < 8; i++ {
		deploy()
	}
	r.env.Run(sim.Forever)
	if len(rep.vapps[org]) != 8 {
		t.Fatalf("ring size = %d, want 8", len(rep.vapps[org]))
	}

	// Kill vApps 1, 3, and 4 mid-ring (not the front — popVApp's case).
	for _, i := range []int{1, 3, 4} {
		va := vapps[i]
		r.env.Go(fmt.Sprintf("kill%d", i), func(p *sim.Proc) {
			r.dir.DeleteVApp(p, va, org)
		})
	}
	r.env.Run(sim.Forever)

	// One full round of picks visits every live vApp exactly once, in
	// ring order, and prunes all three dead entries as it encounters
	// them: afterwards the ring holds only the 5 survivors.
	wantOrder := []int{0, 2, 5, 6, 7}
	for round := 0; round < 3; round++ {
		for _, i := range wantOrder {
			got := rep.pickVM(org)
			want := vapps[i].VMs[0]
			if got != want {
				t.Fatalf("round %d: pickVM = %v, want vApp %d's VM %v (ring %v)",
					round, got, i, want, rep.vapps[org])
			}
		}
	}
	if got := len(rep.vapps[org]); got != 5 {
		t.Fatalf("ring size after pruning = %d, want 5", got)
	}
	for _, id := range rep.vapps[org] {
		if inv.VApp(id) == nil {
			t.Fatalf("dead vApp %v left in ring %v", id, rep.vapps[org])
		}
	}
}
