package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cloudmcp/internal/rng"
)

func TestResultsInSubmissionOrder(t *testing.T) {
	// Later points finish first (reverse sleep), yet results land at
	// their submission index.
	out, err := Run(Options{MasterSeed: 1, Workers: 8}, 8, func(p Point) (int, error) {
		time.Sleep(time.Duration(8-p.Index) * time.Millisecond)
		return p.Index * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 10, 20, 30, 40, 50, 60, 70}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestSeedsDerivedFromIndexNotWorker(t *testing.T) {
	collect := func(workers int) []int64 {
		seeds, err := Run(Options{MasterSeed: 42, Workers: workers}, 16, func(p Point) (int64, error) {
			return p.Seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	serial := collect(1)
	parallel := collect(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("seeds differ across worker counts:\n1: %v\n8: %v", serial, parallel)
	}
	for i, s := range serial {
		if want := rng.DeriveSeed(42, fmt.Sprintf("point:%d", i)); s != want {
			t.Fatalf("point %d seed = %d, want %d", i, s, want)
		}
	}
	seen := map[int64]bool{}
	for _, s := range serial {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
}

func TestErrorCapturedAndReported(t *testing.T) {
	boom := errors.New("boom")
	out, err := Run(Options{MasterSeed: 1, Workers: 2}, 6, func(p Point) (int, error) {
		if p.Index == 3 {
			return 0, boom
		}
		return 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *PointError
	if !errors.As(err, &pe) || pe.Index != 3 {
		t.Fatalf("err = %v, want PointError at index 3", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err %v does not unwrap to the job error", err)
	}
	if out[3] != 0 {
		t.Fatalf("failed slot holds %v, want zero value", out[3])
	}
}

func TestFirstFailureCancelsUnstartedJobs(t *testing.T) {
	var ran int64
	_, err := Run(Options{MasterSeed: 1, Workers: 1}, 10, func(p Point) (int, error) {
		atomic.AddInt64(&ran, 1)
		if p.Index == 2 {
			return 0, errors.New("stop here")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// One worker runs in index order: 0, 1, 2-fails, rest skipped.
	if got := atomic.LoadInt64(&ran); got != 3 {
		t.Fatalf("ran %d jobs, want 3", got)
	}
}

func TestProgressMonotonicAndComplete(t *testing.T) {
	var seen []Progress
	_, err := Run(Options{
		MasterSeed: 1,
		Workers:    4,
		OnProgress: func(p Progress) { seen = append(seen, p) }, // serialized by the engine
	}, 9, func(p Point) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 {
		t.Fatalf("got %d progress calls, want 9", len(seen))
	}
	for i, p := range seen {
		if p.Done != i+1 || p.Total != 9 {
			t.Fatalf("progress[%d] = %+v", i, p)
		}
		if p.Elapsed < 0 {
			t.Fatalf("negative elapsed %v", p.Elapsed)
		}
	}
}

// A blocking OnProgress callback must not stall the worker pool. The
// engine used to invoke the callback while holding the pool mutex, so a
// callback that waited for a later job to start deadlocked the sweep:
// claim() needs that same mutex to hand out indices. Here the first
// callback releases job 0 and then refuses to return until job 2 has
// started — possible only if workers keep claiming while the callback
// is in flight.
func TestProgressCallbackDoesNotBlockScheduling(t *testing.T) {
	release0 := make(chan struct{})
	job2started := make(chan struct{})
	var first atomic.Bool
	_, err := Run(Options{
		MasterSeed: 1,
		Workers:    2,
		OnProgress: func(p Progress) {
			if !first.CompareAndSwap(false, true) {
				return
			}
			close(release0)
			select {
			case <-job2started:
			case <-time.After(10 * time.Second):
				t.Error("pool stalled: job 2 never started while a progress callback was in flight")
			}
		},
	}, 3, func(p Point) (int, error) {
		switch p.Index {
		case 0:
			<-release0
		case 2:
			close(job2started)
		}
		return p.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCases(t *testing.T) {
	if out, err := Run(Options{}, 0, func(p Point) (int, error) { return 1, nil }); err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Run(Options{}, -1, func(p Point) (int, error) { return 1, nil }); err == nil {
		t.Fatal("n=-1: expected error")
	}
	// More workers than jobs, and the zero-Options GOMAXPROCS default.
	out, err := Run(Options{Workers: 64}, 2, func(p Point) (int, error) { return p.Index, nil })
	if err != nil || !reflect.DeepEqual(out, []int{0, 1}) {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestParallelMatchesSerialResults(t *testing.T) {
	work := func(p Point) (float64, error) {
		// A deterministic function of the derived seed, like a simulation.
		s := rng.New(p.Seed)
		total := 0.0
		for i := 0; i < 1000; i++ {
			total += s.Float64()
		}
		return total, nil
	}
	serial, err := Run(Options{MasterSeed: 7, Workers: 1}, 32, work)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(Options{MasterSeed: 7, Workers: 8}, 32, work)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial != parallel:\n%v\n%v", serial, parallel)
	}
}
