// Package sweep is the deterministic parallel run-execution engine the
// experiment harness fans independent simulations across cores with.
//
// A sweep is n independent jobs indexed 0..n-1. Each job receives a Point
// carrying its index and a seed derived from the master seed and that
// index — never from worker identity or completion order — so a job's
// random universe is a pure function of (master seed, index). Results are
// collected into a slice in submission (index) order, which makes the
// rendered output of a sweep byte-identical whether it ran on 1 worker or
// N. The trade-off is the usual one for parallel determinism: scheduling
// may vary, observable results may not.
//
// Error handling: every job's error is captured at its index. The first
// observed failure cancels the sweep — jobs not yet started are skipped,
// jobs already running finish (simulations are not interruptible) — and
// Run reports the lowest-indexed captured failure. Which later jobs got
// skipped can depend on worker count; the success path never does.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cloudmcp/internal/rng"
)

// Point identifies one job of a sweep: its submission index and the seed
// derived for it.
type Point struct {
	// Index is the job's position in submission order, 0..n-1.
	Index int
	// Seed is rng.DeriveSeed(master, "point:<index>"): stable across
	// worker counts and re-runs, independent for distinct indices.
	Seed int64
}

// Progress is a snapshot handed to the OnProgress callback after each
// job finishes (successfully or not).
type Progress struct {
	Done    int           // jobs finished so far
	Total   int           // jobs in the sweep
	Elapsed time.Duration // wall time since Run started
}

// Options configures one sweep.
type Options struct {
	// MasterSeed is the root of every per-point seed derivation.
	MasterSeed int64
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is invoked after each job completes.
	// Calls are serialized and Done advances one step at a time. The
	// callback runs outside the pool's scheduling lock, so a slow or
	// blocking callback delays reporting but never stalls the workers.
	// Wall-clock Elapsed is inherently nondeterministic — surface it on
	// stderr, never in rendered artifacts.
	OnProgress func(Progress)
}

// PointError records which job of a sweep failed.
type PointError struct {
	Index int
	Err   error
}

func (e *PointError) Error() string { return fmt.Sprintf("sweep: point %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's underlying error to errors.Is/As.
func (e *PointError) Unwrap() error { return e.Err }

// Run executes fn for each of n points on a bounded worker pool and
// returns the results in submission order. On failure it returns the
// lowest-indexed captured *PointError; slots for failed or skipped points
// hold T's zero value.
func Run[T any](opts Options, n int, fn func(Point) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative job count %d", n)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	start := time.Now()

	var (
		mu         sync.Mutex
		next       int  // next index to hand out
		done       int  // jobs finished
		canceled   bool // stop handing out new indices
		wg         sync.WaitGroup
		cbMu       sync.Mutex // serializes OnProgress, never nested in mu
		pending    []Progress // snapshots awaiting delivery, FIFO
		delivering bool       // a goroutine is draining pending
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if canceled || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	// finish records a job's outcome and reports progress. The callback
	// must NOT run under the pool mutex: a callback that blocks (writing
	// a slow pipe, waiting on another job's side effect) would stall
	// claim() and wedge every worker. Instead each finisher enqueues its
	// snapshot under mu and exactly one goroutine at a time drains the
	// FIFO with mu released around each call — callbacks stay serialized
	// (under cbMu) and Done still advances one step at a time, but the
	// pool keeps scheduling while a callback runs.
	finish := func(i int, err error) {
		mu.Lock()
		if err != nil {
			errs[i] = err
			canceled = true
		}
		done++
		if opts.OnProgress == nil {
			mu.Unlock()
			return
		}
		pending = append(pending, Progress{Done: done, Total: n, Elapsed: time.Since(start)})
		if delivering {
			mu.Unlock() // the active drainer will deliver ours too
			return
		}
		delivering = true
		for len(pending) > 0 {
			p := pending[0]
			pending = pending[1:]
			mu.Unlock()
			cbMu.Lock()
			opts.OnProgress(p)
			cbMu.Unlock()
			mu.Lock()
		}
		delivering = false
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				v, err := fn(Point{Index: i, Seed: rng.DeriveSeed(opts.MasterSeed, fmt.Sprintf("point:%d", i))})
				if err == nil {
					results[i] = v
				}
				finish(i, err)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, &PointError{Index: i, Err: err}
		}
	}
	return results, nil
}
