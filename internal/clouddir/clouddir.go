// Package clouddir simulates the cloud-director layer that turns a
// virtualized datacenter into a self-service cloud: API cells that front
// every request, catalogs of templates, vApp composition, placement,
// fast provisioning (linked clones with shadow-template chains), lease
// expiry, and the background datastore rebalancer.
//
// This is the layer whose workload the paper characterizes: every
// self-service request pays a cell stage before reaching the
// virtualization manager, fast provisioning removes most of the
// data-plane cost from deploys, and the resulting provisioning rates
// force previously rare "cloud reconfiguration" work — shadow-template
// creation and datastore rebalancing — to run continuously.
package clouddir

import (
	"fmt"
	"sort"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/metrics"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/policy"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
)

// PlacementPolicy selects how deploys choose a datastore.
type PlacementPolicy int

// Placement policies.
const (
	// PlaceMostFree picks the datastore with the most free space —
	// capacity-balancing, the modern default.
	PlaceMostFree PlacementPolicy = iota
	// PlaceStickyOrg hashes the tenant to a datastore (a storage-profile
	// pinning model): heavy tenants overfill their datastore, which is
	// what makes background rebalancing necessary. Falls back to
	// most-free when the pinned datastore is full.
	PlaceStickyOrg
)

func (p PlacementPolicy) String() string {
	if p == PlaceStickyOrg {
		return "sticky-org"
	}
	return "most-free"
}

// Config sizes the cloud-director deployment.
type Config struct {
	// Cells is the number of director cells (front-end servers).
	Cells int
	// CellThreads is each cell's concurrent request capacity.
	CellThreads int
	// FastProvisioning selects linked-clone deploys when true, full
	// clones otherwise.
	FastProvisioning bool
	// MaxChainLen caps a linked-clone chain before a new shadow template
	// must be created (0 → the storage policy's limit).
	MaxChainLen int
	// RebalanceThreshold is the datastore fill-imbalance (difference in
	// fill fraction) above which the rebalancer acts. <=0 disables it.
	RebalanceThreshold float64
	// RebalanceCheckS is how often the rebalancer evaluates imbalance.
	RebalanceCheckS float64
	// RebalanceBatch is the maximum VMs moved per rebalance pass.
	RebalanceBatch int
	// LeaseS is the vApp runtime lease; expired vApps are undeployed
	// automatically. 0 disables leases.
	LeaseS float64
	// Placement selects the datastore-placement policy.
	Placement PlacementPolicy
	// Place scores hosts and datastores; nil means the default
	// most-free policy (identical to the historical indexed calls).
	// Sticky-org pinning (Placement above) composes with it: the pin
	// is tried first, Place answers the general search.
	Place policy.PlacementPolicy
	// OrgQuotaVMs caps each tenant's live VMs (0 = unlimited). Quota is
	// enforced at vApp admission, counting in-flight deploys.
	OrgQuotaVMs int
}

// DefaultConfig returns a two-cell director with fast provisioning on and
// the rebalancer checking hourly.
func DefaultConfig() Config {
	return Config{
		Cells:              2,
		CellThreads:        16,
		FastProvisioning:   true,
		RebalanceThreshold: 0.15,
		RebalanceCheckS:    3600,
		RebalanceBatch:     4,
	}
}

func (c Config) validate() error {
	if c.Cells <= 0 || c.CellThreads <= 0 {
		return fmt.Errorf("clouddir: non-positive cells/threads in %+v", c)
	}
	if c.RebalanceThreshold > 0 && (c.RebalanceCheckS <= 0 || c.RebalanceBatch <= 0) {
		return fmt.Errorf("clouddir: rebalancer enabled with bad interval/batch in %+v", c)
	}
	return nil
}

// chainKey identifies one linked-clone base chain: a source template's
// presence on one datastore.
type chainKey struct {
	tpl inventory.ID
	ds  inventory.ID
}

// chainState tracks the active base and clones-since-shadow for one chain.
type chainState struct {
	base     inventory.ID // template or shadow template the next clone links to
	count    int          // linked clones since base creation
	creating *sim.Signal  // non-nil while a shadow copy is in flight
}

// RebalanceEvent records one rebalancer pass that moved VMs.
type RebalanceEvent struct {
	Start, End      sim.Time
	Moved           int
	ImbalanceBefore float64
	ImbalanceAfter  float64
}

// Director is the simulated cloud director.
type Director struct {
	env    *sim.Env
	mgr    mgmt.API
	model  *ops.CostModel
	stream *rng.Stream
	cfg    Config

	cells []*sim.Resource
	rr    int

	chains map[chainKey]*chainState

	// baseDS lists, per template, the datastores holding a live
	// linked-clone base (home or shadow) in ascending datastore-ID order.
	// placeNearBase scans this list instead of the whole chains map, so
	// its cost tracks the template's footprint — and ties break by
	// datastore ID instead of map iteration order.
	baseDS map[inventory.ID][]inventory.ID

	// orgHash caches each org's sticky-placement hash (FNV-1a 32-bit of
	// the org name), computed once per org instead of per placement.
	orgHash map[string]uint32

	nextVApp   int64
	nextVM     int64
	nextShadow int64

	orgVMs          map[string]int
	quotaRejects    int64
	shadowCopies    int64
	leaseExpiries   int64
	rebalanceStarts int64
	rebalanceMoves  int64 // storage-migrations begun by the rebalancer
	rebalanceFutile int64 // passes that found no movable candidate
	rebalancing     bool
	rebalances      []RebalanceEvent
	liveVApps       map[inventory.ID]bool

	// placementFallbacks counts linked-clone deploys that found no
	// datastore holding a base for their template and fell back to
	// general placement (forcing a shadow copy); stickyOverflows counts
	// sticky-org placements whose pinned datastore was full.
	placementFallbacks int64
	stickyOverflows    int64

	// frameFree recycles per-deploy scatter/gather frames (outcome
	// slots plus the completion signal) so steady-state vApp deploys do
	// not allocate them. Frames are only touched from the kernel's
	// cooperative processes, so a plain slice suffices.
	frameFree []*deployFrame
}

// deployFrame is one DeployVApp call's scatter/gather state: a slot per
// member VM for the worker outcomes, the signal the last worker fires,
// and the outstanding-worker count.
type deployFrame struct {
	slots     []vmOutcome
	done      *sim.Signal
	remaining int
}

func (d *Director) getFrame(n int) *deployFrame {
	var f *deployFrame
	if k := len(d.frameFree); k > 0 {
		f = d.frameFree[k-1]
		d.frameFree[k-1] = nil
		d.frameFree = d.frameFree[:k-1]
	} else {
		f = &deployFrame{done: sim.NewSignal(d.env)}
	}
	if cap(f.slots) < n {
		f.slots = make([]vmOutcome, n)
	} else {
		f.slots = f.slots[:n]
		for i := range f.slots {
			f.slots[i] = vmOutcome{}
		}
	}
	f.remaining = n
	return f
}

// putFrame returns a frame once every worker has exited (the caller has
// passed done.Wait, which the last worker's fire precedes).
func (d *Director) putFrame(f *deployFrame) { d.frameFree = append(d.frameFree, f) }

// New builds a director over an existing manager. The stream seeds cell
// stage-time draws; it must be distinct from the manager's stream.
func New(env *sim.Env, mgr mgmt.API, model *ops.CostModel, stream *rng.Stream, cfg Config) (*Director, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Place == nil {
		cfg.Place = policy.DefaultPlacement()
	}
	d := &Director{
		env: env, mgr: mgr, model: model, stream: stream, cfg: cfg,
		chains:    make(map[chainKey]*chainState),
		baseDS:    make(map[inventory.ID][]inventory.ID),
		orgHash:   make(map[string]uint32),
		orgVMs:    make(map[string]int),
		liveVApps: make(map[inventory.ID]bool),
	}
	for i := 0; i < cfg.Cells; i++ {
		d.cells = append(d.cells, sim.NewResource(env, fmt.Sprintf("cell%d", i), cfg.CellThreads))
	}
	d.registerMetrics(env.Metrics())
	return d, nil
}

// registerMetrics wires per-cell station occupancy and the director's
// reconfiguration counters (shadow copies, rebalance passes, placement
// fallbacks) into the registry.
func (d *Director) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, c := range d.cells {
		c.RegisterMetrics("clouddir")
	}
	scalar := func(metric string, fn func() float64) { reg.ScalarFunc("clouddir", "director", metric, fn) }
	scalar("vapps_deployed", func() float64 { return float64(d.nextVApp) })
	scalar("shadow_copies", func() float64 { return float64(d.shadowCopies) })
	scalar("lease_expiries", func() float64 { return float64(d.leaseExpiries) })
	scalar("rebalance_passes", func() float64 { return float64(d.rebalanceStarts) })
	scalar("rebalance_moves", func() float64 { return float64(d.rebalanceMoves) })
	scalar("rebalance_futile", func() float64 { return float64(d.rebalanceFutile) })
	scalar("quota_rejects", func() float64 { return float64(d.quotaRejects) })
	scalar("placement_fallbacks", func() float64 { return float64(d.placementFallbacks) })
	scalar("sticky_overflows", func() float64 { return float64(d.stickyOverflows) })
}

// Manager returns the management-plane endpoint the director submits
// operations to — a single manager or a sharded plane.
func (d *Director) Manager() mgmt.API { return d.mgr }

// Config returns the director's configuration.
func (d *Director) Config() Config { return d.cfg }

func (d *Director) maxChain() int {
	if d.cfg.MaxChainLen > 0 {
		return d.cfg.MaxChainLen
	}
	return d.mgr.Storage().Policy.MaxChainLen
}

// cellStage charges one cell pass for an operation of kind k, returning
// (wait, service) seconds. Cells are assigned round-robin per request.
func (d *Director) cellStage(p *sim.Proc, k ops.Kind) (wait, service float64) {
	cell := d.cells[d.rr%len(d.cells)]
	d.rr++
	s := d.model.Sample(d.stream, k)
	t0 := p.Now()
	cell.Acquire(p, 1)
	wait = p.Now() - t0
	p.Sleep(s.Cell)
	cell.Release(1)
	return wait, s.Cell
}

// reqCtx runs the cell stage and returns the ReqCtx carrying it.
func (d *Director) reqCtx(p *sim.Proc, org string, k ops.Kind, submit sim.Time) mgmt.ReqCtx {
	wait, service := d.cellStage(p, k)
	return mgmt.ReqCtx{
		Org:    org,
		Submit: submit,
		Pre:    ops.Breakdown{Queue: wait, Cell: service},
	}
}

// placeHost returns the cluster host with the most free memory that fits
// memMB, or nil when none fits. On a multi-shard plane each request
// carries a preferred shard (its cell index modulo the shard count) and
// the most-free host on that shard wins when one fits — cell→shard
// affinity that keeps a cell's deploys on one management shard — with
// global most-free as the fallback. On a single shard the preference
// can't change the answer.
func (d *Director) placeHost(memMB, prefShard int) *inventory.Host {
	inv := d.mgr.Inventory()
	if d.mgr.ShardCount() > 1 {
		// The plane partitions hosts into inventory placement groups, so
		// the preferred shard's best host is one group query; the global
		// query answers the fallback.
		if h := d.cfg.Place.BestHost(inv, memMB, prefShard); h != nil {
			return h
		}
	}
	return d.cfg.Place.BestHost(inv, memMB, -1)
}

// placeHostLinear is the retained O(hosts) reference implementation of
// placeHost. The placement-equivalence suite fuzz-compares it against the
// indexed path; production code never calls it.
func (d *Director) placeHostLinear(memMB, prefShard int) *inventory.Host {
	inv := d.mgr.Inventory()
	affine := d.mgr.ShardCount() > 1
	var best, bestPref *inventory.Host
	for _, id := range inv.Hosts() {
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < memMB {
			continue
		}
		if best == nil || h.FreeMemMB() > best.FreeMemMB() {
			best = h
		}
		if affine && d.mgr.ShardOf(id) == prefShard &&
			(bestPref == nil || h.FreeMemMB() > bestPref.FreeMemMB()) {
			bestPref = h
		}
	}
	if bestPref != nil {
		return bestPref
	}
	return best
}

// placeDatastore returns a datastore that fits needGB under the
// configured placement policy, or nil when none fits.
func (d *Director) placeDatastore(needGB float64, org string) *inventory.Datastore {
	inv := d.mgr.Inventory()
	if d.cfg.Placement == PlaceStickyOrg {
		if ds := d.stickyDatastore(org); ds != nil {
			if d.effectiveFree(ds) >= needGB {
				return ds
			}
			d.stickyOverflows++
		}
		// Pinned datastore is full: fall through to general placement.
	}
	return d.cfg.Place.BestDatastore(inv, needGB)
}

// stickyDatastore returns org's pinned datastore — FNV-1a of the org name
// modulo the datastore count — or nil when there are no datastores. The
// hash is cached per org, and the modulo stays in uint32 throughout:
// int(h) of a hash above 2^31 is negative on 32-bit platforms, which the
// old hand-rolled expression turned into an index panic.
func (d *Director) stickyDatastore(org string) *inventory.Datastore {
	inv := d.mgr.Inventory()
	ids := inv.Datastores()
	if len(ids) == 0 {
		return nil
	}
	h, ok := d.orgHash[org]
	if !ok {
		h = rng.NewHash32().String(org).Sum()
		d.orgHash[org] = h
	}
	return inv.Datastore(ids[h%uint32(len(ids))])
}

// placeDatastoreLinear is the retained O(datastores) reference
// implementation of placeDatastore's most-free fallback, for the
// placement-equivalence suite.
func (d *Director) placeDatastoreLinear(needGB float64) *inventory.Datastore {
	inv := d.mgr.Inventory()
	var best *inventory.Datastore
	for _, id := range inv.Datastores() {
		ds := inv.Datastore(id)
		if d.effectiveFree(ds) < needGB {
			continue
		}
		if best == nil || d.effectiveFree(ds) > d.effectiveFree(best) {
			best = ds
		}
	}
	return best
}

// effectiveFree is the datastore's free space net of in-flight deploy
// reservations.
func (d *Director) effectiveFree(ds *inventory.Datastore) float64 {
	return d.mgr.Inventory().EffectiveFreeGB(ds)
}

// placeNearBase returns the most-free datastore that already holds a
// linked-clone base for tpl (its home datastore or an existing shadow)
// and fits needGB, or nil when none qualifies. The template's home
// datastore is considered first and candidates follow in ascending
// datastore-ID order under a strict comparison, so equal-free ties
// resolve to (home, then lowest ID) — deterministically, where ranging
// over the chains map left the winner to map iteration order.
func (d *Director) placeNearBase(tpl *inventory.Template, needGB float64) *inventory.Datastore {
	inv := d.mgr.Inventory()
	var best *inventory.Datastore
	consider := func(ds *inventory.Datastore) {
		if ds == nil || d.effectiveFree(ds) < needGB {
			return
		}
		if best == nil || d.effectiveFree(ds) > d.effectiveFree(best) {
			best = ds
		}
	}
	consider(inv.Datastore(tpl.DatastoreID))
	for _, id := range d.baseDS[tpl.ID] {
		if id == tpl.DatastoreID {
			continue // home already considered (and wins its ties)
		}
		consider(inv.Datastore(id))
	}
	return best
}

// registerBase records that ds holds a live linked-clone base for tpl,
// keeping the per-template candidate list sorted by datastore ID.
func (d *Director) registerBase(tpl, ds inventory.ID) {
	list := d.baseDS[tpl]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= ds })
	if i < len(list) && list[i] == ds {
		return
	}
	list = append(list, inventory.None)
	copy(list[i+1:], list[i:])
	list[i] = ds
	d.baseDS[tpl] = list
}

// baseFor resolves (and if necessary creates) the linked-clone base for
// tpl on ds, paying a shadow full-copy when the datastore has no base yet
// or the chain hit its limit. It returns the base template to clone from
// plus the seconds spent waiting for someone else's shadow copy (queue
// time) and copying a shadow itself (data time).
func (d *Director) baseFor(p *sim.Proc, tpl *inventory.Template, ds *inventory.Datastore) (base *inventory.Template, waitS, copyS float64, err error) {
	inv := d.mgr.Inventory()
	key := chainKey{tpl: tpl.ID, ds: ds.ID}
	cs, ok := d.chains[key]
	if !ok {
		cs = &chainState{}
		if ds.ID == tpl.DatastoreID {
			cs.base = tpl.ID
			d.registerBase(tpl.ID, ds.ID)
		}
		d.chains[key] = cs
	}
	for cs.base == inventory.None || cs.count >= d.maxChain() {
		if cs.creating != nil {
			// Another deploy is already copying the shadow; wait for it
			// and re-check rather than duplicating the copy.
			t0 := p.Now()
			cs.creating.Wait(p)
			waitS += p.Now() - t0
			continue
		}
		cs.creating = sim.NewSignal(d.env)
		d.nextShadow++
		name := fmt.Sprintf("shadow-%s-%d", tpl.Name, d.nextShadow)
		t0 := p.Now()
		shadow, cerr := d.mgr.FullCopyTemplate(p, tpl, ds, name)
		copyS += p.Now() - t0
		sig := cs.creating
		cs.creating = nil
		if cerr != nil {
			sig.Fire()
			return nil, waitS, copyS, cerr
		}
		d.shadowCopies++
		cs.base = shadow.ID
		cs.count = 0
		d.registerBase(tpl.ID, ds.ID)
		sig.Fire()
		break
	}
	cs.count++
	return inv.Template(cs.base), waitS, copyS, nil
}

// DeployResult reports one DeployVApp call.
type DeployResult struct {
	VApp  *inventory.VApp
	Tasks []*mgmt.Task // per-VM deploy (and power-on) tasks, in order
	Err   error        // first error encountered, if any
}

// DeployVApp provisions a vApp of nVMs instances of tpl for org, placing
// each VM independently, and optionally powers them on. VM-level deploys
// proceed in parallel, as director cells do. The vApp is subject to the
// configured lease.
func (d *Director) DeployVApp(p *sim.Proc, org string, tpl *inventory.Template, nVMs int, powerOn bool) *DeployResult {
	if nVMs <= 0 {
		return &DeployResult{Err: fmt.Errorf("clouddir: vApp size %d", nVMs)}
	}
	if q := d.cfg.OrgQuotaVMs; q > 0 && d.orgVMs[org]+nVMs > q {
		d.quotaRejects++
		return &DeployResult{Err: fmt.Errorf("clouddir: org %s over quota (%d live + %d requested > %d)",
			org, d.orgVMs[org], nVMs, q)}
	}
	// Reserve quota for the whole vApp up front; failures are returned
	// below once the per-VM outcomes are known.
	d.orgVMs[org] += nVMs
	inv := d.mgr.Inventory()
	submit := p.Now()
	d.nextVApp++
	dc := inv.Datacenter(inv.Datacenters()[0])
	va := inv.AddVApp(dc, fmt.Sprintf("vapp-%d", d.nextVApp), org)
	res := &DeployResult{VApp: va, Tasks: make([]*mgmt.Task, 0, nVMs*2)}

	f := d.getFrame(nVMs)
	for i := 0; i < nVMs; i++ {
		i := i
		d.nextVM++
		name := fmt.Sprintf("%s-vm%d", va.Name, i)
		d.env.Go("deploy:"+name, func(hp *sim.Proc) {
			defer func() {
				f.remaining--
				if f.remaining == 0 {
					f.done.Fire()
				}
			}()
			f.slots[i] = d.deployOne(hp, org, name, tpl, va, powerOn, submit)
		})
	}
	if f.remaining > 0 {
		f.done.Wait(p)
	}
	deployed := 0
	for i := range f.slots {
		if f.slots[i].deploy != nil {
			res.Tasks = append(res.Tasks, f.slots[i].deploy)
			if f.slots[i].deploy.Err == nil {
				deployed++
			}
		}
		if f.slots[i].pwr != nil {
			res.Tasks = append(res.Tasks, f.slots[i].pwr)
		}
		if f.slots[i].err != nil && res.Err == nil {
			res.Err = f.slots[i].err
		}
	}
	d.putFrame(f)
	d.orgVMs[org] -= nVMs - deployed // release quota held by failures
	d.liveVApps[va.ID] = true
	if d.cfg.LeaseS > 0 {
		vaID := va.ID
		d.env.Go("lease:"+va.Name, func(lp *sim.Proc) {
			lp.Sleep(d.cfg.LeaseS)
			if !d.liveVApps[vaID] {
				return
			}
			d.leaseExpiries++
			d.DeleteVApp(lp, inv.VApp(vaID), "system")
		})
	}
	return res
}

// vmOutcome is the result of deploying one vApp member VM.
type vmOutcome struct {
	deploy *mgmt.Task
	pwr    *mgmt.Task
	err    error
}

// deployOne provisions a single vApp member VM.
func (d *Director) deployOne(p *sim.Proc, org, name string, tpl *inventory.Template, va *inventory.VApp, powerOn bool, submit sim.Time) (out vmOutcome) {
	// The request's cell index (the round-robin counter before the cell
	// stage consumes it) doubles as its preferred management shard.
	prefShard := d.rr % d.mgr.ShardCount()
	ctx := d.reqCtx(p, org, ops.KindDeploy, submit)

	host := d.placeHost(tpl.MemMB, prefShard)
	if host == nil {
		out.err = fmt.Errorf("clouddir: no host fits %s (%d MB)", name, tpl.MemMB)
		return out
	}
	mode := ops.FullClone
	needGB := tpl.DiskGB
	if d.cfg.FastProvisioning {
		mode = ops.LinkedClone
		needGB = d.mgr.Storage().Policy.DeltaDiskGB
	}
	var ds *inventory.Datastore
	if mode == ops.LinkedClone {
		// Linked clones are placed next to an existing base for their
		// template whenever one fits — shadow full-copies are paid only
		// when every datastore with a base is full or a chain hits its
		// limit, matching how directors avoid gratuitous shadow churn.
		ds = d.placeNearBase(tpl, needGB)
		if ds == nil {
			d.placementFallbacks++
		}
	}
	if ds == nil {
		ds = d.placeDatastore(needGB, org)
	}
	if ds == nil {
		out.err = fmt.Errorf("clouddir: no datastore fits %s (%.1f GB)", name, needGB)
		return out
	}
	inv := d.mgr.Inventory()
	inv.Reserve(ds.ID, needGB)
	defer inv.Reserve(ds.ID, -needGB)
	base := tpl
	if mode == ops.LinkedClone {
		// A shadow copy, when needed, is data-plane work this deploy
		// pays for; waiting for a shadow someone else is copying is
		// queue time. Both fold into the task's breakdown.
		b, waitS, copyS, err := d.baseFor(p, tpl, ds)
		ctx.Pre.Queue += waitS
		ctx.Pre.Data += copyS
		if err != nil {
			out.err = err
			return out
		}
		base = b
	}
	vm, task := d.mgr.DeployVM(p, name, base, host, ds, mode, ctx)
	out.deploy = task
	if task.Err != nil {
		out.err = task.Err
		return out
	}
	vm.VAppID = va.ID
	va.VMs = append(va.VMs, vm.ID)
	if powerOn {
		pctx := d.reqCtx(p, org, ops.KindPowerOn, p.Now())
		out.pwr = d.mgr.PowerOn(p, vm, pctx)
		if out.pwr.Err != nil {
			out.err = out.pwr.Err
		}
	}
	return out
}

// PowerVApp powers every VM of va on (or off), paying one cell stage per
// VM like the deploy path does, and returns the tasks issued. VMs already
// in the requested state are skipped — vApp power ops are idempotent at
// the director, matching how self-service APIs expose them.
func (d *Director) PowerVApp(p *sim.Proc, va *inventory.VApp, org string, on bool) []*mgmt.Task {
	inv := d.mgr.Inventory()
	var tasks []*mgmt.Task
	ids := make([]inventory.ID, len(va.VMs))
	copy(ids, va.VMs)
	for _, id := range ids {
		vm := inv.VM(id)
		if vm == nil {
			continue
		}
		if on {
			if vm.State == inventory.VMPoweredOn {
				continue
			}
			ctx := d.reqCtx(p, org, ops.KindPowerOn, p.Now())
			tasks = append(tasks, d.mgr.PowerOn(p, vm, ctx))
		} else {
			if vm.State != inventory.VMPoweredOn {
				continue
			}
			ctx := d.reqCtx(p, org, ops.KindPowerOff, p.Now())
			tasks = append(tasks, d.mgr.PowerOff(p, vm, ctx))
		}
	}
	return tasks
}

// DeleteVApp powers off and destroys every VM of va, then removes the
// vApp. It returns the tasks issued.
func (d *Director) DeleteVApp(p *sim.Proc, va *inventory.VApp, org string) []*mgmt.Task {
	inv := d.mgr.Inventory()
	delete(d.liveVApps, va.ID)
	var tasks []*mgmt.Task
	// Copy: destroy mutates va.VMs.
	ids := make([]inventory.ID, len(va.VMs))
	copy(ids, va.VMs)
	for _, id := range ids {
		vm := inv.VM(id)
		if vm == nil {
			continue
		}
		if vm.State == inventory.VMPoweredOn {
			ctx := d.reqCtx(p, org, ops.KindPowerOff, p.Now())
			tasks = append(tasks, d.mgr.PowerOff(p, vm, ctx))
		}
		ctx := d.reqCtx(p, org, ops.KindDestroy, p.Now())
		task := d.mgr.Destroy(p, vm, ctx)
		tasks = append(tasks, task)
		if task.Err == nil {
			d.orgVMs[va.OrgName]--
		}
	}
	inv.RemoveVApp(va)
	return tasks
}

// OrgLiveVMs returns the director's quota accounting for org (live plus
// in-flight VMs deployed through the director).
func (d *Director) OrgLiveVMs(org string) int { return d.orgVMs[org] }

// PublishTemplate copies tpl into the catalog on dst as a new template —
// the explicit catalog operation self-service clouds perform when an org
// shares an image.
func (d *Director) PublishTemplate(p *sim.Proc, tpl *inventory.Template, dst *inventory.Datastore, name, org string) (*inventory.Template, *mgmt.Task) {
	submit := p.Now()
	ctx := d.reqCtx(p, org, ops.KindCatalogPublish, submit)
	req := ops.Request{Kind: ops.KindCatalogPublish, TemplateID: tpl.ID}
	req.Org = ctx.Org
	req.Submit = float64(ctx.Submit)
	if req.Submit == 0 {
		req.Submit = float64(p.Now())
	}
	var out *inventory.Template
	task := d.mgr.Execute(p, mgmt.ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{tpl.ID, dst.ID},
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			t, err := d.mgr.FullCopyTemplate(p, tpl, dst, name)
			out = t
			return err
		},
	})
	return out, task
}

// StartRebalancer launches the background datastore rebalancer if the
// configuration enables it.
func (d *Director) StartRebalancer() {
	if d.cfg.RebalanceThreshold <= 0 {
		return
	}
	d.env.Go("rebalancer", func(p *sim.Proc) {
		for {
			p.Sleep(d.cfg.RebalanceCheckS)
			d.rebalanceOnce(p)
		}
	})
}

// rebalanceOnce runs a single rebalance pass (exported for tests via
// RebalanceNow).
func (d *Director) rebalanceOnce(p *sim.Proc) {
	pool := d.mgr.Storage()
	before := pool.Imbalance()
	if before <= d.cfg.RebalanceThreshold || d.rebalancing {
		// Skip when balanced or when a previous pass is still moving
		// VMs — passes are long (bulk copies under contention) and
		// overlapping passes would fight over the same candidates.
		return
	}
	d.rebalancing = true
	defer func() { d.rebalancing = false }()
	d.rebalanceStarts++
	inv := d.mgr.Inventory()
	start := p.Now()
	req := ops.Request{Kind: ops.KindRebalance, Org: "system", Submit: float64(p.Now())}
	moved := 0
	d.mgr.Execute(p, mgmt.ExecSpec{
		Req: req,
		Body: func(p *sim.Proc) error {
			for i := 0; i < d.cfg.RebalanceBatch; i++ {
				srcID, dstID := pool.MostAndLeastFilled()
				if srcID == inventory.None || pool.Imbalance() <= d.cfg.RebalanceThreshold/2 {
					break
				}
				src := inv.Datastore(srcID)
				dst := inv.Datastore(dstID)
				vm := d.pickMovable(src, dst)
				if vm == nil {
					break
				}
				d.rebalanceMoves++
				ctx := mgmt.ReqCtx{Org: "system", Submit: p.Now()}
				task := d.mgr.StorageMigrate(p, vm, dst, ctx)
				if task.Err != nil {
					return task.Err
				}
				moved++
			}
			return nil
		},
	})
	if moved > 0 {
		d.rebalances = append(d.rebalances, RebalanceEvent{
			Start: start, End: p.Now(), Moved: moved,
			ImbalanceBefore: before, ImbalanceAfter: pool.Imbalance(),
		})
	} else {
		// Imbalance above threshold but nothing movable: linked-clone
		// clouds reach this state when the imbalance is carried by
		// shadow templates, which are pinned — a design pressure the
		// reconfiguration experiments report.
		d.rebalanceFutile++
	}
}

// RebalanceNow runs one rebalance pass immediately (testing and the
// capacity-planning example).
func (d *Director) RebalanceNow(p *sim.Proc) { d.rebalanceOnce(p) }

// pickMovable returns the largest full-clone VM on src that fits dst, or
// nil. Linked clones are pinned to their base's datastore and are not
// rebalancing candidates.
func (d *Director) pickMovable(src, dst *inventory.Datastore) *inventory.VM {
	inv := d.mgr.Inventory()
	var best *inventory.VM
	for _, id := range src.VMs {
		vm := inv.VM(id)
		if vm == nil || vm.LinkedParent != inventory.None {
			continue
		}
		if vm.DiskGB > dst.FreeGB() {
			continue
		}
		if best == nil || vm.DiskGB > best.DiskGB {
			best = vm
		}
	}
	return best
}

// Stats is the director's activity summary.
type Stats struct {
	VAppsDeployed      int64
	ShadowCopies       int64
	LeaseExpiries      int64
	RebalanceStarts    int64 // passes begun (completed passes appear in Rebalances)
	RebalanceMoves     int64 // storage-migrations begun by the rebalancer
	RebalanceFutile    int64 // passes that found no movable candidate
	QuotaRejects       int64 // vApp requests refused by tenant quota
	PlacementFallbacks int64 // linked-clone deploys with no existing base to land next to
	StickyOverflows    int64 // sticky-org placements whose pinned datastore was full
	Rebalances         []RebalanceEvent
	Cells              []sim.ResourceStats
}

// Stats returns accumulated statistics.
func (d *Director) Stats() Stats {
	s := Stats{
		VAppsDeployed:      d.nextVApp,
		ShadowCopies:       d.shadowCopies,
		LeaseExpiries:      d.leaseExpiries,
		RebalanceStarts:    d.rebalanceStarts,
		RebalanceMoves:     d.rebalanceMoves,
		RebalanceFutile:    d.rebalanceFutile,
		QuotaRejects:       d.quotaRejects,
		PlacementFallbacks: d.placementFallbacks,
		StickyOverflows:    d.stickyOverflows,
		Rebalances:         append([]RebalanceEvent(nil), d.rebalances...),
	}
	for _, c := range d.cells {
		s.Cells = append(s.Cells, c.Stats())
	}
	return s
}
