package clouddir

import (
	"math"
	"testing"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/testfix"
)

type fixture struct {
	env *sim.Env
	inv *inventory.Inventory
	mgr *mgmt.Manager
	dir *Director
	tpl *inventory.Template
	ds  []*inventory.Datastore
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	fx := testfix.New(testfix.Options{Hosts: 4, HostMemMB: 262144})
	mgr, err := mgmt.New(fx.Env, fx.Inv, fx.Pool, fx.Model, rng.Derive(1, "mgmt"), mgmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir, err := New(fx.Env, mgr, fx.Model, rng.Derive(1, "cell"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{env: fx.Env, inv: fx.Inv, mgr: mgr, dir: dir, tpl: fx.Tpl, ds: fx.DS}
}

func TestDeployVAppLinked(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var res *DeployResult
	f.env.Go("u", func(p *sim.Proc) {
		res = f.dir.DeployVApp(p, "orgA", f.tpl, 3, true)
	})
	f.env.Run(sim.Forever)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.VApp.VMs) != 3 {
		t.Fatalf("vApp VMs = %d", len(res.VApp.VMs))
	}
	if len(res.Tasks) != 6 { // 3 deploys + 3 power-ons
		t.Fatalf("tasks = %d", len(res.Tasks))
	}
	for _, id := range res.VApp.VMs {
		vm := f.inv.VM(id)
		if vm.State != inventory.VMPoweredOn {
			t.Fatalf("vm state = %v", vm.State)
		}
		if vm.LinkedParent == inventory.None || vm.ChainLen != 1 {
			t.Fatalf("vm not linked: parent=%v chain=%d", vm.LinkedParent, vm.ChainLen)
		}
	}
	// Cell stage must be present in deploy breakdowns.
	for _, task := range res.Tasks {
		if task.Breakdown.Cell <= 0 {
			t.Fatalf("task %v missing cell stage: %+v", task.Req.Kind, task.Breakdown)
		}
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeployVAppFullClone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FastProvisioning = false
	f := newFixture(t, cfg)
	var res *DeployResult
	f.env.Go("u", func(p *sim.Proc) {
		res = f.dir.DeployVApp(p, "orgA", f.tpl, 1, false)
	})
	f.env.Run(sim.Forever)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	vm := f.inv.VM(res.VApp.VMs[0])
	if vm.LinkedParent != inventory.None {
		t.Fatal("full-clone VM has linked parent")
	}
	if vm.DiskGB != 20 {
		t.Fatalf("disk = %v", vm.DiskGB)
	}
	// Full clone data time must dominate the deploy.
	dep := res.Tasks[0]
	if dep.Breakdown.Data < dep.Latency()*0.5 {
		t.Fatalf("full deploy not data-dominated: %+v", dep.Breakdown)
	}
}

func TestShadowCreatedOnForeignDatastore(t *testing.T) {
	// Template lives on ds0. Force placement to ds1 by filling ds0 with a
	// filler template: the first linked clone on ds1 creates a shadow.
	f := newFixture(t, DefaultConfig())
	f.inv.AddTemplate(f.ds[0], "filler", f.ds[0].FreeGB()-0.5, 1024, 1)
	var res *DeployResult
	f.env.Go("u", func(p *sim.Proc) {
		res = f.dir.DeployVApp(p, "orgA", f.tpl, 1, false)
	})
	f.env.Run(sim.Forever)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := f.dir.Stats()
	if st.ShadowCopies != 1 {
		t.Fatalf("shadow copies = %d, want 1", st.ShadowCopies)
	}
	vm := f.inv.VM(res.VApp.VMs[0])
	if vm.DatastoreID != f.ds[1].ID {
		t.Fatal("vm not on ds1")
	}
	shadow := f.inv.Template(vm.LinkedParent)
	if shadow == nil || shadow.DatastoreID != f.ds[1].ID {
		t.Fatal("linked parent is not a shadow on ds1")
	}
	// The shadow deploy paid a full-copy data price.
	if res.Tasks[0].Breakdown.Data < 50 {
		t.Fatalf("shadow deploy data = %v, want ~100s", res.Tasks[0].Breakdown.Data)
	}
}

func TestChainLimitForcesNewShadow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxChainLen = 3
	f := newFixture(t, cfg)
	// Keep placement on ds0 (where the template lives) by filling ds1.
	f.inv.AddTemplate(f.ds[1], "filler", f.ds[1].FreeGB()-0.5, 1024, 1)
	f.env.Go("u", func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			res := f.dir.DeployVApp(p, "orgA", f.tpl, 1, false)
			if res.Err != nil {
				t.Errorf("deploy %d: %v", i, res.Err)
			}
		}
	})
	f.env.Run(sim.Forever)
	// Clones 1-3 chain off the template; clone 4 forces shadow #1 (then
	// clones 4-6 chain off it); clone 7 forces shadow #2.
	if got := f.dir.Stats().ShadowCopies; got != 2 {
		t.Fatalf("shadow copies = %d, want 2", got)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteVAppCleansUp(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("u", func(p *sim.Proc) {
		res := f.dir.DeployVApp(p, "orgA", f.tpl, 2, true)
		if res.Err != nil {
			t.Errorf("deploy: %v", res.Err)
			return
		}
		tasks := f.dir.DeleteVApp(p, res.VApp, "orgA")
		if len(tasks) != 4 { // 2 power-offs + 2 destroys
			t.Errorf("delete tasks = %d", len(tasks))
		}
	})
	f.env.Run(sim.Forever)
	if n := len(f.inv.VMs()); n != 0 {
		t.Fatalf("VMs left = %d", n)
	}
	if n := len(f.inv.VApps()); n != 0 {
		t.Fatalf("vApps left = %d", n)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseExpiryUndeploys(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeaseS = 1000
	f := newFixture(t, cfg)
	f.env.Go("u", func(p *sim.Proc) {
		res := f.dir.DeployVApp(p, "orgA", f.tpl, 1, true)
		if res.Err != nil {
			t.Errorf("deploy: %v", res.Err)
		}
	})
	f.env.Run(sim.Forever)
	if n := len(f.inv.VMs()); n != 0 {
		t.Fatalf("VMs after lease expiry = %d", n)
	}
	if f.dir.Stats().LeaseExpiries != 1 {
		t.Fatalf("lease expiries = %d", f.dir.Stats().LeaseExpiries)
	}
}

func TestDeleteBeforeLeaseAvoidsDoubleFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeaseS = 1000
	f := newFixture(t, cfg)
	f.env.Go("u", func(p *sim.Proc) {
		res := f.dir.DeployVApp(p, "orgA", f.tpl, 1, true)
		p.Sleep(10)
		f.dir.DeleteVApp(p, res.VApp, "orgA")
	})
	f.env.Run(sim.Forever) // runs past lease expiry timer
	if f.dir.Stats().LeaseExpiries != 0 {
		t.Fatalf("expiries = %d, want 0 (deleted first)", f.dir.Stats().LeaseExpiries)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishTemplate(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("u", func(p *sim.Proc) {
		tpl, task := f.dir.PublishTemplate(p, f.tpl, f.ds[1], "tpl-copy", "orgA")
		if task.Err != nil {
			t.Errorf("publish: %v", task.Err)
			return
		}
		if tpl == nil || tpl.DatastoreID != f.ds[1].ID {
			t.Error("template not created on ds1")
		}
		if task.Breakdown.Data < 50 {
			t.Errorf("publish data = %v, want ~100s", task.Breakdown.Data)
		}
		if task.Breakdown.Cell <= 0 {
			t.Error("publish missing cell stage")
		}
	})
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalancerMovesFullClones(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FastProvisioning = false
	cfg.RebalanceThreshold = 0.02
	f := newFixture(t, cfg)
	// Load ds0 with full clones; ds1 idle. Imbalance grows past threshold.
	f.env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			// Place manually on ds0 via direct manager deploys.
			h := f.inv.Host(f.inv.Hosts()[i%4])
			vm, task := f.mgr.DeployVM(p, "vm", f.tpl, h, f.ds[0], ops.FullClone, mgmt.ReqCtx{Org: "x"})
			if task.Err != nil {
				t.Errorf("deploy: %v", task.Err)
			}
			_ = vm
		}
		before := f.dir.Manager().Storage().Imbalance()
		if before < cfg.RebalanceThreshold {
			t.Errorf("setup: imbalance %v below threshold", before)
			return
		}
		f.dir.RebalanceNow(p)
		after := f.dir.Manager().Storage().Imbalance()
		if after >= before {
			t.Errorf("rebalance did not reduce imbalance: %v -> %v", before, after)
		}
	})
	f.env.Run(sim.Forever)
	evs := f.dir.Stats().Rebalances
	if len(evs) != 1 || evs[0].Moved == 0 {
		t.Fatalf("rebalance events = %+v", evs)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalancerSkipsWhenBalanced(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("u", func(p *sim.Proc) { f.dir.RebalanceNow(p) })
	f.env.Run(sim.Forever)
	if len(f.dir.Stats().Rebalances) != 0 {
		t.Fatal("rebalanced a balanced pool")
	}
}

func TestBackgroundRebalancerRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FastProvisioning = false
	cfg.RebalanceThreshold = 0.02
	cfg.RebalanceCheckS = 500
	f := newFixture(t, cfg)
	f.dir.StartRebalancer()
	f.env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			h := f.inv.Host(f.inv.Hosts()[i%4])
			f.mgr.DeployVM(p, "vm", f.tpl, h, f.ds[0], ops.FullClone, mgmt.ReqCtx{Org: "x"})
		}
	})
	f.env.Run(4000) // a few checker periods
	if len(f.dir.Stats().Rebalances) == 0 {
		t.Fatal("background rebalancer never acted")
	}
}

func TestCellQueueingUnderBurst(t *testing.T) {
	// One 1-thread cell: a burst of deploys must accumulate cell queue
	// time in their breakdowns.
	cfg := DefaultConfig()
	cfg.Cells = 1
	cfg.CellThreads = 1
	f := newFixture(t, cfg)
	var res *DeployResult
	f.env.Go("u", func(p *sim.Proc) {
		res = f.dir.DeployVApp(p, "orgA", f.tpl, 6, false)
	})
	f.env.Run(sim.Forever)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	queued := 0
	for _, task := range res.Tasks {
		if task.Breakdown.Queue > 0.5 {
			queued++
		}
	}
	if queued < 4 {
		t.Fatalf("only %d deploys show cell queueing", queued)
	}
}

func TestVAppSizeValidation(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var res *DeployResult
	f.env.Go("u", func(p *sim.Proc) { res = f.dir.DeployVApp(p, "o", f.tpl, 0, false) })
	f.env.Run(sim.Forever)
	if res.Err == nil {
		t.Fatal("expected error for empty vApp")
	}
}

func TestConfigValidation(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	bad := DefaultConfig()
	bad.Cells = 0
	if _, err := New(f.env, f.mgr, ops.DefaultCostModel(), rng.New(1), bad); err == nil {
		t.Fatal("expected error")
	}
	bad = DefaultConfig()
	bad.RebalanceCheckS = 0
	if _, err := New(f.env, f.mgr, ops.DefaultCostModel(), rng.New(1), bad); err == nil {
		t.Fatal("expected rebalancer config error")
	}
}

func TestLinkedDeployThroughputExceedsFull(t *testing.T) {
	// The paper's headline, end to end at small scale: 8 deploys complete
	// far sooner with fast provisioning than with full clones.
	run := func(fast bool) sim.Time {
		cfg := DefaultConfig()
		cfg.FastProvisioning = fast
		f := newFixture(t, cfg)
		f.env.Go("u", func(p *sim.Proc) {
			res := f.dir.DeployVApp(p, "orgA", f.tpl, 8, false)
			if res.Err != nil {
				t.Errorf("deploy(fast=%v): %v", fast, res.Err)
			}
		})
		return f.env.Run(sim.Forever)
	}
	full := run(false)
	linked := run(true)
	if math.Abs(float64(linked)) < 1 {
		t.Fatalf("linked run suspiciously fast: %v", linked)
	}
	if full < 3*linked {
		t.Fatalf("full %v not ≫ linked %v", full, linked)
	}
}

func TestOrgQuotaEnforced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OrgQuotaVMs = 3
	f := newFixture(t, cfg)
	f.env.Go("u", func(p *sim.Proc) {
		res1 := f.dir.DeployVApp(p, "orgA", f.tpl, 2, false)
		if res1.Err != nil {
			t.Errorf("first deploy: %v", res1.Err)
			return
		}
		if got := f.dir.OrgLiveVMs("orgA"); got != 2 {
			t.Errorf("live = %d", got)
		}
		// 2 live + 2 requested > 3: rejected.
		res2 := f.dir.DeployVApp(p, "orgA", f.tpl, 2, false)
		if res2.Err == nil {
			t.Error("over-quota deploy accepted")
		}
		// Another org is unaffected.
		if res3 := f.dir.DeployVApp(p, "orgB", f.tpl, 2, false); res3.Err != nil {
			t.Errorf("orgB deploy: %v", res3.Err)
		}
		// Deleting frees quota.
		f.dir.DeleteVApp(p, res1.VApp, "orgA")
		if got := f.dir.OrgLiveVMs("orgA"); got != 0 {
			t.Errorf("live after delete = %d", got)
		}
		if res4 := f.dir.DeployVApp(p, "orgA", f.tpl, 3, false); res4.Err != nil {
			t.Errorf("post-delete deploy: %v", res4.Err)
		}
	})
	f.env.Run(sim.Forever)
	if f.dir.Stats().QuotaRejects != 1 {
		t.Fatalf("quota rejects = %d", f.dir.Stats().QuotaRejects)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaReleasedOnDeployFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OrgQuotaVMs = 4
	f := newFixture(t, cfg)
	// Fill every datastore so deploys fail placement.
	for _, id := range f.inv.Datastores() {
		ds := f.inv.Datastore(id)
		f.inv.AddTemplate(ds, "filler", ds.FreeGB()-0.1, 1024, 1)
	}
	f.env.Go("u", func(p *sim.Proc) {
		res := f.dir.DeployVApp(p, "orgA", f.tpl, 2, false)
		if res.Err == nil {
			t.Error("deploy succeeded on full datastores")
		}
		if got := f.dir.OrgLiveVMs("orgA"); got != 0 {
			t.Errorf("quota leaked: %d", got)
		}
	})
	f.env.Run(sim.Forever)
}

func TestMaintenanceHostSkippedByPlacement(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("u", func(p *sim.Proc) {
		// Fence every host but the last.
		hosts := f.inv.Hosts()
		for _, id := range hosts[:len(hosts)-1] {
			f.inv.SetHostMaintenance(f.inv.Host(id), true)
		}
		res := f.dir.DeployVApp(p, "orgA", f.tpl, 2, false)
		if res.Err != nil {
			t.Errorf("deploy: %v", res.Err)
			return
		}
		for _, vmID := range res.VApp.VMs {
			if f.inv.VM(vmID).HostID != hosts[len(hosts)-1] {
				t.Error("VM placed on fenced host")
			}
		}
	})
	f.env.Run(sim.Forever)
}

func TestStickyOrgPlacementIsDeterministicPerOrg(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = PlaceStickyOrg
	cfg.FastProvisioning = false
	f := newFixture(t, cfg)
	var first inventory.ID
	f.env.Go("u", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			res := f.dir.DeployVApp(p, "tenant-x", f.tpl, 1, false)
			if res.Err != nil {
				t.Errorf("deploy %d: %v", i, res.Err)
				return
			}
			vm := f.inv.VM(res.VApp.VMs[0])
			if first == inventory.None {
				first = vm.DatastoreID
			} else if vm.DatastoreID != first {
				t.Errorf("tenant-x scattered: %v vs %v", vm.DatastoreID, first)
			}
		}
	})
	f.env.Run(sim.Forever)
}

func TestStickyOrgFallsBackWhenPinnedFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = PlaceStickyOrg
	cfg.FastProvisioning = false
	f := newFixture(t, cfg)
	// Find tenant-y's pinned datastore by deploying once, then fill it.
	f.env.Go("u", func(p *sim.Proc) {
		res := f.dir.DeployVApp(p, "tenant-y", f.tpl, 1, false)
		if res.Err != nil {
			t.Errorf("probe deploy: %v", res.Err)
			return
		}
		pinned := f.inv.Datastore(f.inv.VM(res.VApp.VMs[0]).DatastoreID)
		f.inv.AddTemplate(pinned, "filler", pinned.FreeGB()-0.5, 1024, 1)
		res2 := f.dir.DeployVApp(p, "tenant-y", f.tpl, 1, false)
		if res2.Err != nil {
			t.Errorf("fallback deploy: %v", res2.Err)
			return
		}
		if f.inv.VM(res2.VApp.VMs[0]).DatastoreID == pinned.ID {
			t.Error("deploy landed on the full pinned datastore")
		}
	})
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkedClonesPlaceNearBase(t *testing.T) {
	// With plenty of room everywhere, every linked clone of tpl should
	// land on tpl's home datastore (no shadows).
	f := newFixture(t, DefaultConfig())
	f.env.Go("u", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			res := f.dir.DeployVApp(p, "orgA", f.tpl, 1, false)
			if res.Err != nil {
				t.Errorf("deploy: %v", res.Err)
				return
			}
			if f.inv.VM(res.VApp.VMs[0]).DatastoreID != f.tpl.DatastoreID {
				t.Error("linked clone strayed from its base datastore")
			}
		}
	})
	f.env.Run(sim.Forever)
	if f.dir.Stats().ShadowCopies != 0 {
		t.Fatalf("shadows = %d, want 0", f.dir.Stats().ShadowCopies)
	}
}
