package clouddir

import (
	"testing"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/testfix"
)

// placementFixture is newFixture with a custom installation shape, for
// tests that need more datastores or hosts than the canonical 4×2.
func placementFixture(t *testing.T, opts testfix.Options, cfg Config) *fixture {
	t.Helper()
	fx := testfix.New(opts)
	mgr, err := mgmt.New(fx.Env, fx.Inv, fx.Pool, fx.Model, rng.Derive(1, "mgmt"), mgmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir, err := New(fx.Env, mgr, fx.Model, rng.Derive(1, "cell"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{env: fx.Env, inv: fx.Inv, mgr: mgr, dir: dir, tpl: fx.Tpl, ds: fx.DS}
}

func TestPlaceNearBaseDeterministicTieBreak(t *testing.T) {
	// Four datastores with identical free space all hold a base for the
	// template. The winner must be the template's home datastore, and
	// with home out of the running, the lowest-ID shadow — regardless of
	// base registration order. Before the candidate list existed the
	// winner followed chains-map iteration order, which Go randomizes.
	f := placementFixture(t, testfix.Options{Hosts: 2, Datastores: 4}, DefaultConfig())
	home := f.inv.Datastore(f.tpl.DatastoreID)
	// Equalize free space: home carries the 20 GB template base disk.
	for _, ds := range f.ds {
		if ds.ID != home.ID {
			f.inv.SetDatastoreUsed(ds, home.UsedGB)
		}
	}
	// Register shadows out of ID order to exercise the sorted insert.
	f.dir.registerBase(f.tpl.ID, f.ds[3].ID)
	f.dir.registerBase(f.tpl.ID, f.ds[1].ID)
	f.dir.registerBase(f.tpl.ID, f.ds[2].ID)
	f.dir.registerBase(f.tpl.ID, home.ID)

	if got := f.dir.placeNearBase(f.tpl, 1); got != home {
		t.Fatalf("equal-free tie went to %v, want home %v", got.ID, home.ID)
	}
	// Take home out: fill it so 1 GB no longer fits.
	f.inv.SetDatastoreUsed(home, home.CapacityGB-0.5)
	want := f.ds[1]
	if f.ds[1] == home {
		want = f.ds[2]
	}
	if got := f.dir.placeNearBase(f.tpl, 1); got != want {
		t.Fatalf("tie among shadows went to %v, want lowest ID %v", got.ID, want.ID)
	}
}

func TestRegisterBaseKeepsSortedUniqueList(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	tpl := f.tpl.ID
	ids := []inventory.ID{9, 3, 7, 3, 9, 1}
	for _, id := range ids {
		f.dir.registerBase(tpl, id)
	}
	got := f.dir.baseDS[tpl]
	want := []inventory.ID{1, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("baseDS = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("baseDS = %v, want %v", got, want)
		}
	}
}

// TestStickyOrgGoldenMapping pins the org→datastore assignment of the
// sticky-org policy: FNV-1a(org) mod datastore count, computed in
// uint32. These indices are part of the reproducibility contract — the
// closed-loop harness spreads its workers over org0..org7 — so a hash
// or modulo change shows up here before it silently shifts every
// sticky-placement artifact.
func TestStickyOrgGoldenMapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = PlaceStickyOrg
	f := placementFixture(t, testfix.Options{Hosts: 2, Datastores: 8}, cfg)
	golden := map[string]int{
		"org0": 3, "org1": 0, "org2": 1, "org3": 6,
		"org4": 7, "org5": 4, "org6": 5, "org7": 2,
	}
	ids := f.inv.Datastores()
	for org, idx := range golden {
		ds := f.dir.stickyDatastore(org)
		if ds == nil || ds.ID != ids[idx] {
			t.Fatalf("stickyDatastore(%q) = %v, want datastore index %d (%v)", org, ds, idx, ids[idx])
		}
		// Cached path must agree with the first computation.
		if again := f.dir.stickyDatastore(org); again != ds {
			t.Fatalf("stickyDatastore(%q) cache returned %v, want %v", org, again, ds)
		}
	}
}

// TestStickyOrgHighHashStaysInRange covers the 32-bit overflow the old
// expression had: for orgs whose FNV-1a hash exceeds 2^31 (e.g. "orgA",
// hash 3676370376), int(h) is negative on 32-bit platforms and
// ids[int(h)%len(ids)] panicked. The uint32 modulo cannot go negative.
func TestStickyOrgHighHashStaysInRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Placement = PlaceStickyOrg
	f := placementFixture(t, testfix.Options{Hosts: 2, Datastores: 8}, cfg)
	const h = uint32(3676370376) // FNV-1a("orgA"), > 2^31
	if h <= 1<<31 {
		t.Fatal("test premise broken: hash fits in int32")
	}
	if got := rng.NewHash32().String("orgA").Sum(); got != h {
		t.Fatalf("FNV-1a(orgA) = %d, want %d", got, h)
	}
	ds := f.dir.stickyDatastore("orgA")
	if ds == nil {
		t.Fatal("stickyDatastore(orgA) = nil")
	}
	if want := f.inv.Datastores()[h%8]; ds.ID != want {
		t.Fatalf("stickyDatastore(orgA) = %v, want %v", ds.ID, want)
	}
}

// TestPlacementEquivalenceFuzz drives randomized inventory churn and
// checks, after every mutation, that the indexed placement paths return
// exactly the host/datastore the retained linear reference scans pick —
// the standing invariant that made swapping the scan for the index a
// byte-identical change.
func TestPlacementEquivalenceFuzz(t *testing.T) {
	f := placementFixture(t, testfix.Options{Hosts: 12, Datastores: 6, DatastoreGB: 500}, DefaultConfig())
	inv := f.inv
	hosts := make([]*inventory.Host, 0, 12)
	for _, id := range inv.Hosts() {
		hosts = append(hosts, inv.Host(id))
	}
	dss := f.ds
	state := uint64(0xda3e39cb94b95bdb)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	var vms []*inventory.VM
	for step := 0; step < 3000; step++ {
		switch next(7) {
		case 0, 1:
			h, d := hosts[next(len(hosts))], dss[next(len(dss))]
			if vm, err := inv.AddVM("vm", h, d, 1, 1024*(1+next(8)), float64(1+next(10))); err == nil {
				vms = append(vms, vm)
			}
		case 2:
			if len(vms) > 0 {
				i := next(len(vms))
				if inv.RemoveVM(vms[i]) == nil {
					vms = append(vms[:i], vms[i+1:]...)
				}
			}
		case 3:
			h := hosts[next(len(hosts))]
			inv.SetHostMaintenance(h, !h.Maintenance)
		case 4:
			h := hosts[next(len(hosts))]
			inv.SetHostFailed(h, !h.Failed)
		case 5:
			d := dss[next(len(dss))]
			inv.Reserve(d.ID, float64(1+next(30)))
		case 6:
			d := dss[next(len(dss))]
			if r := inv.Reserved(d.ID); r > 0 {
				inv.Reserve(d.ID, -r)
			}
		}
		memMB := 1024 * (1 + next(10))
		if got, want := f.dir.placeHost(memMB, 0), f.dir.placeHostLinear(memMB, 0); got != want {
			t.Fatalf("step %d: placeHost(%d) = %v, linear = %v", step, memMB, got, want)
		}
		needGB := float64(1 + next(30))
		if got, want := f.dir.placeDatastore(needGB, "org0"), f.dir.placeDatastoreLinear(needGB); got != want {
			t.Fatalf("step %d: placeDatastore(%v) = %v, linear = %v", step, needGB, got, want)
		}
		if step%250 == 0 {
			if err := inv.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
