// Package netsim models the management/vMotion network: the shared link
// live-migration memory copies travel over. Without it, migration memory
// copies are charged as host-agent time (each host working alone); with
// it, concurrent migrations contend for one fair-share link — which is
// what makes evacuation trains and DRS storms stretch each other out.
package netsim

import (
	"fmt"

	"cloudmcp/internal/bw"
	"cloudmcp/internal/sim"
)

// Config sizes the management network.
type Config struct {
	// MBps is the aggregate vMotion bandwidth (e.g. 1250 for 10 GbE).
	MBps float64
}

// DefaultConfig is a single 10 GbE vMotion network.
func DefaultConfig() Config { return Config{MBps: 1250} }

// Network is the simulated migration network.
type Network struct {
	link *bw.Engine
}

// New builds a network. The link's occupancy registers with the
// environment's metrics registry (if any) under the "net" layer.
func New(env *sim.Env, cfg Config) (*Network, error) {
	if cfg.MBps <= 0 {
		return nil, fmt.Errorf("netsim: bandwidth %v", cfg.MBps)
	}
	n := &Network{link: bw.NewEngine(env, "vmotion", cfg.MBps)}
	n.link.RegisterMetrics("net")
	return n, nil
}

// MigrateMemory transfers memMB of guest memory for a live migration,
// blocking p and sharing the link fairly with concurrent migrations.
func (n *Network) MigrateMemory(p *sim.Proc, memMB int) {
	if memMB <= 0 {
		return
	}
	n.link.Copy(p, float64(memMB))
}

// Stats returns link statistics.
func (n *Network) Stats() bw.EngineStats { return n.link.Stats() }
