package netsim

import (
	"math"
	"testing"

	"cloudmcp/internal/sim"
)

func TestMigrateMemoryDuration(t *testing.T) {
	env := sim.NewEnv()
	n, err := New(env, Config{MBps: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var end sim.Time
	env.Go("m", func(p *sim.Proc) {
		n.MigrateMemory(p, 2048) // 2048 MB at 1024 MB/s → 2 s
		end = p.Now()
	})
	env.Run(sim.Forever)
	if math.Abs(float64(end)-2) > 1e-9 {
		t.Fatalf("end = %v, want 2", end)
	}
	if s := n.Stats(); s.Transfers != 1 || s.BytesMB != 2048 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentMigrationsShareLink(t *testing.T) {
	env := sim.NewEnv()
	n, _ := New(env, DefaultConfig()) // 1250 MB/s
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		env.Go("m", func(p *sim.Proc) {
			n.MigrateMemory(p, 1250)
			ends = append(ends, p.Now())
		})
	}
	env.Run(sim.Forever)
	for _, e := range ends {
		if math.Abs(float64(e)-2) > 1e-6 { // fair share: both take 2 s
			t.Fatalf("ends = %v, want both 2", ends)
		}
	}
}

func TestThreeWayContentionOnOneLink(t *testing.T) {
	env := sim.NewEnv()
	n, _ := New(env, DefaultConfig()) // 1250 MB/s
	ends := make([]sim.Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Go("m", func(p *sim.Proc) {
			n.MigrateMemory(p, 1250) // alone: 1 s; three-way shared: 3 s
			ends[i] = p.Now()
		})
	}
	env.Run(sim.Forever)
	for i, e := range ends {
		if math.Abs(float64(e)-3) > 1e-6 {
			t.Fatalf("migration %d ended at %v, want 3 (fair three-way share)", i, e)
		}
	}
	if s := n.Stats(); s.Transfers != 3 || math.Abs(s.BytesMB-3750) > 1e-6 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBandwidthRedividedWhenTransferCompletes(t *testing.T) {
	// Two simultaneous migrations of different sizes on a 1250 MB/s
	// link. While both are in flight each gets 625 MB/s, so the small
	// one (1250 MB) finishes at t=2 with the big one (2500 MB) half
	// done; the big one must then get the whole link back and finish
	// its remaining 1250 MB in 1 s, at t=3 — not at t=4, which is what
	// a non-redividing model would produce.
	env := sim.NewEnv()
	n, _ := New(env, DefaultConfig())
	var smallEnd, bigEnd sim.Time
	env.Go("small", func(p *sim.Proc) {
		n.MigrateMemory(p, 1250)
		smallEnd = p.Now()
	})
	env.Go("big", func(p *sim.Proc) {
		n.MigrateMemory(p, 2500)
		bigEnd = p.Now()
	})
	env.Run(sim.Forever)
	if math.Abs(float64(smallEnd)-2) > 1e-6 {
		t.Fatalf("small migration ended at %v, want 2", smallEnd)
	}
	if math.Abs(float64(bigEnd)-3) > 1e-6 {
		t.Fatalf("big migration ended at %v, want 3 (full link after re-division)", bigEnd)
	}
	if s := n.Stats(); math.Abs(s.MeanActive-(5.0/3.0)) > 1e-6 {
		// ∫active dt = 2·2s + 1·1s = 5 transfer-seconds over 3 s.
		t.Fatalf("mean active = %v, want 5/3", s.MeanActive)
	}
}

func TestZeroMemoryFree(t *testing.T) {
	env := sim.NewEnv()
	n, _ := New(env, DefaultConfig())
	env.Go("m", func(p *sim.Proc) { n.MigrateMemory(p, 0) })
	if end := env.Run(sim.Forever); end != 0 {
		t.Fatalf("end = %v", end)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(sim.NewEnv(), Config{}); err == nil {
		t.Fatal("expected error")
	}
}
