package netsim

import (
	"math"
	"testing"

	"cloudmcp/internal/sim"
)

func TestMigrateMemoryDuration(t *testing.T) {
	env := sim.NewEnv()
	n, err := New(env, Config{MBps: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var end sim.Time
	env.Go("m", func(p *sim.Proc) {
		n.MigrateMemory(p, 2048) // 2048 MB at 1024 MB/s → 2 s
		end = p.Now()
	})
	env.Run(sim.Forever)
	if math.Abs(float64(end)-2) > 1e-9 {
		t.Fatalf("end = %v, want 2", end)
	}
	if s := n.Stats(); s.Transfers != 1 || s.BytesMB != 2048 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentMigrationsShareLink(t *testing.T) {
	env := sim.NewEnv()
	n, _ := New(env, DefaultConfig()) // 1250 MB/s
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		env.Go("m", func(p *sim.Proc) {
			n.MigrateMemory(p, 1250)
			ends = append(ends, p.Now())
		})
	}
	env.Run(sim.Forever)
	for _, e := range ends {
		if math.Abs(float64(e)-2) > 1e-6 { // fair share: both take 2 s
			t.Fatalf("ends = %v, want both 2", ends)
		}
	}
}

func TestZeroMemoryFree(t *testing.T) {
	env := sim.NewEnv()
	n, _ := New(env, DefaultConfig())
	env.Go("m", func(p *sim.Proc) { n.MigrateMemory(p, 0) })
	if end := env.Run(sim.Forever); end != 0 {
		t.Fatalf("end = %v", end)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(sim.NewEnv(), Config{}); err == nil {
		t.Fatal("expected error")
	}
}
