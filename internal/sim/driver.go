package sim

// The driver seam: who advances the kernel, and how virtual time relates
// to the wall clock.
//
// Every experiment so far ran the kernel free-running — Env.Run eats the
// event heap as fast as the host allows, and nothing outside the
// simulation can get a word in edgewise. That closed-world assumption is
// exactly what a serving front-end has to break: an API server receives
// requests on ordinary goroutines, in wall-clock time, and needs a safe,
// deterministic place to hand them to the single-threaded kernel.
//
// A Driver owns that decision. Batch is the identity: it delegates to
// Env.Run verbatim, so every existing artifact is untouched. Paced maps
// virtual time onto the wall clock at a configurable ratio and advances
// the kernel in fixed virtual-time quanta; between quanta — and only
// there — externally submitted commands are injected. Quantized injection
// is what keeps the serving plane deterministic where it matters: the
// virtual-time trace is a pure function of which quantum each command
// landed in, so a scripted injection schedule (SubmitAt) reproduces the
// same trace bit-for-bit on every run, while live traffic (Submit) is
// quantized to the boundary it arrived before.
//
// The paced driver also supplies the graceful-stop seam Env.Run lacks:
// Env.Stop discards the future mid-event and may only be called from
// model code, whereas Paced.Stop can be called from any goroutine and
// takes effect at the next quantum boundary — no event is abandoned
// half-fired, and commands still queued are rejected instead of dropped.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Driver advances a simulation environment to a virtual-time horizon.
// Batch and Paced are the two implementations; both return the final
// virtual time like Env.Run does.
type Driver interface {
	Run(until Time) Time
}

// Batch is the free-running driver the experiments use: Env.Run,
// verbatim. It exists so harness code can be written against the Driver
// seam while remaining bit-for-bit the historical behavior.
type Batch struct{ Env *Env }

// Run delegates to Env.Run.
func (b Batch) Run(until Time) Time { return b.Env.Run(until) }

var _ Driver = Batch{}
var _ Driver = (*Paced)(nil)

// PacedConfig shapes a paced driver.
type PacedConfig struct {
	// Ratio is virtual seconds advanced per wall-clock second (60 means
	// one wall minute simulates one virtual hour). Ratio <= 0 free-runs:
	// no wall pacing at all, but quantum batching and boundary injection
	// still apply — the mode tests and fast experiments use.
	Ratio float64
	// QuantumS is the virtual seconds per batch between injection
	// points. Smaller quanta lower injection latency and tighten the
	// wall mapping; larger quanta amortize loop overhead. Default 0.25.
	QuantumS Time
}

// DefaultPacedConfig paces one virtual minute per wall second with a
// quarter-second injection quantum.
func DefaultPacedConfig() PacedConfig {
	return PacedConfig{Ratio: 60, QuantumS: 0.25}
}

// command is one externally submitted closure awaiting injection.
type command struct {
	releaseV Time // earliest boundary virtual time; <0 = next boundary
	seq      int64
	fn       func(*Env)
	reject   func() // called instead of fn when the driver stops first
}

// Paced advances an Env in fixed virtual-time quanta, holding virtual
// time to the wall clock at cfg.Ratio, and injects externally submitted
// commands at quantum boundaries. Create with NewPaced; Submit, SubmitAt,
// Do, and Stop are safe from any goroutine, Run must be called from
// exactly one.
type Paced struct {
	env *Env
	cfg PacedConfig

	mu      sync.Mutex
	pending []command
	seq     int64
	stopped bool // no further submissions accepted

	stopFlag atomic.Bool
	lastV    atomicTime // virtual time of the last completed boundary

	// wall-pacing diagnostics, owned by the Run goroutine.
	maxLag time.Duration // worst wall-clock schedule slip seen
	// sleep and now are seams for tests; nil means the real clock.
	sleep func(time.Duration)
	now   func() time.Time
}

// atomicTime is an atomic float64 virtual-time cell.
type atomicTime struct{ bits atomic.Uint64 }

func (a *atomicTime) Store(t Time) { a.bits.Store(math.Float64bits(t)) }
func (a *atomicTime) Load() Time   { return math.Float64frombits(a.bits.Load()) }

// NewPaced wraps env in a paced driver. Zero-valued config fields take
// their defaults (QuantumS 0.25; Ratio keeps its zero = free-run, so
// callers wanting wall pacing must say so explicitly).
func NewPaced(env *Env, cfg PacedConfig) *Paced {
	if cfg.QuantumS <= 0 {
		cfg.QuantumS = DefaultPacedConfig().QuantumS
	}
	if env.lanes != nil {
		// Commands are injected only between Env.Run calls — at quantum
		// boundaries — and the lane kernel tiles each quantum with
		// conservative windows. Rounding the quantum up to a whole
		// number of lane windows makes every injection point a window
		// boundary as well, so injected commands never land mid-window.
		// (The default 0.25 s quantum over the default 0.05 s window is
		// already aligned; this only moves deliberately odd quanta.)
		if w := env.laneCfg.WindowS; w > 0 {
			if k := math.Ceil(cfg.QuantumS/w - 1e-9); k >= 1 {
				cfg.QuantumS = Time(k) * w
			}
		}
	}
	d := &Paced{env: env, cfg: cfg, sleep: time.Sleep, now: time.Now}
	d.lastV.Store(env.Now())
	return d
}

// Env returns the driven environment.
func (d *Paced) Env() *Env { return d.env }

// Config returns the driver's configuration.
func (d *Paced) Config() PacedConfig { return d.cfg }

// Ratio returns virtual seconds per wall second (0 when free-running).
func (d *Paced) Ratio() float64 { return d.cfg.Ratio }

// VirtualNow returns the virtual time of the last completed quantum
// boundary. Safe from any goroutine; this is the clock API handlers
// read, since Env.Now may be mid-mutation on the driver goroutine.
func (d *Paced) VirtualNow() Time { return d.lastV.Load() }

// MaxLag returns the worst wall-clock slip observed: how far behind its
// wall schedule the driver has fallen when event processing outran the
// pacing budget. Only meaningful after Run returns (it is owned by the
// Run goroutine); zero when free-running.
func (d *Paced) MaxLag() time.Duration { return d.maxLag }

// Submit enqueues fn for injection at the next quantum boundary. fn runs
// on the driver goroutine with the kernel paused — it may read model
// state, call env.Go, and schedule events, exactly like model code
// between events. reject (optional) is called instead if the driver
// stops before the command is injected. Submit reports false once the
// driver has stopped.
func (d *Paced) Submit(fn func(*Env), reject func()) bool {
	return d.enqueue(command{releaseV: -1, fn: fn, reject: reject})
}

// SubmitAt enqueues fn for injection at the first quantum boundary whose
// virtual time is >= at. A fixed schedule of SubmitAt commands yields a
// fully deterministic virtual-time trace — the paced determinism tests
// and replay tooling depend on this.
func (d *Paced) SubmitAt(at Time, fn func(*Env), reject func()) bool {
	if at < 0 {
		at = 0
	}
	return d.enqueue(command{releaseV: at, fn: fn, reject: reject})
}

func (d *Paced) enqueue(c command) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return false
	}
	c.seq = d.seq
	d.seq++
	d.pending = append(d.pending, c)
	return true
}

// Do submits fn and blocks until it has run inside a quantum boundary,
// returning false if the driver stopped first. This is the synchronous
// read path: API query handlers use it to take a consistent snapshot of
// model state without racing the kernel.
func (d *Paced) Do(fn func(*Env)) bool {
	done := make(chan bool, 1)
	ok := d.Submit(
		func(env *Env) { fn(env); done <- true },
		func() { done <- false },
	)
	if !ok {
		return false
	}
	return <-done
}

// Stop requests a graceful stop: the driver finishes the quantum it is
// in, rejects every command still pending, and Run returns. Safe from
// any goroutine, idempotent.
func (d *Paced) Stop() { d.stopFlag.Store(true) }

// takeDue removes and returns the pending commands releasable at
// boundary time v, ordered by (releaseV, submission seq) so a scripted
// schedule injects identically on every run.
func (d *Paced) takeDue(v Time) []command {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pending) == 0 {
		return nil
	}
	var due, rest []command
	for _, c := range d.pending {
		if c.releaseV <= v {
			due = append(due, c)
		} else {
			rest = append(rest, c)
		}
	}
	d.pending = rest
	sort.SliceStable(due, func(i, j int) bool {
		ri, rj := due[i].releaseV, due[j].releaseV
		if ri != rj {
			return ri < rj
		}
		return due[i].seq < due[j].seq
	})
	return due
}

// drainRejected marks the driver stopped and rejects everything pending.
func (d *Paced) drainRejected() {
	d.mu.Lock()
	rejected := d.pending
	d.pending = nil
	d.stopped = true
	d.mu.Unlock()
	for _, c := range rejected {
		if c.reject != nil {
			c.reject()
		}
	}
}

// Run advances the environment to the horizon in quantum steps, pacing
// virtual time against the wall clock and injecting submitted commands
// at each boundary. It returns the final virtual time. Boundaries fall
// at v0 + k*quantum (computed by multiplication, so float error does not
// accumulate); the last one is clamped to the horizon.
func (d *Paced) Run(until Time) Time {
	v0 := d.env.Now()
	wall0 := d.now()
	for k := int64(1); ; k++ {
		if d.stopFlag.Load() {
			break
		}
		// The injection point: between batches, kernel at rest.
		for _, c := range d.takeDue(d.env.Now()) {
			c.fn(d.env)
		}
		if d.env.Now() >= until {
			break
		}
		boundary := v0 + Time(k)*d.cfg.QuantumS
		if boundary > until {
			boundary = until
		}
		d.env.Run(boundary)
		d.lastV.Store(d.env.Now())
		d.pace(v0, wall0)
	}
	d.drainRejected()
	return d.env.Now()
}

// pace sleeps until the wall clock catches up with the virtual schedule
// (wall = wall0 + (v-v0)/ratio), in short slices so a Stop is honored
// promptly, and records the worst slip when the kernel is the slow side.
func (d *Paced) pace(v0 Time, wall0 time.Time) {
	if d.cfg.Ratio <= 0 {
		return
	}
	target := wall0.Add(time.Duration(float64(d.env.Now()-v0) / d.cfg.Ratio * float64(time.Second)))
	behind := d.now().Sub(target)
	if behind > d.maxLag {
		d.maxLag = behind
	}
	const slice = 50 * time.Millisecond
	for {
		ahead := target.Sub(d.now())
		if ahead <= 0 || d.stopFlag.Load() {
			return
		}
		if ahead > slice {
			ahead = slice
		}
		d.sleep(ahead)
	}
}
