package sim

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// traceModel builds a small contended model — three workers looping over
// a two-slot resource with distinct hold times — and returns the trace
// log the workers append to. The exact interleaving exercises the
// kernel's FIFO ordering, so any drift between drivers shows up.
func traceModel(env *Env) *[]string {
	log := &[]string{}
	res := NewResource(env, "slots", 2)
	for i := 0; i < 3; i++ {
		i := i
		hold := Time(i+1) * 0.7
		env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			for n := 0; n < 20; n++ {
				res.Acquire(p, 1)
				p.Sleep(hold)
				res.Release(1)
				*log = append(*log, fmt.Sprintf("w%d n%d t%.3f", i, n, p.Now()))
				p.Sleep(0.3)
			}
		})
	}
	return log
}

// TestBatchDriverIsEnvRun pins the identity: driving a model through
// Batch produces exactly the trace Env.Run produces.
func TestBatchDriverIsEnvRun(t *testing.T) {
	envA := NewEnv()
	logA := traceModel(envA)
	endA := envA.Run(100)

	envB := NewEnv()
	logB := traceModel(envB)
	endB := Batch{Env: envB}.Run(100)

	if endA != endB {
		t.Fatalf("final times differ: %v vs %v", endA, endB)
	}
	if !reflect.DeepEqual(*logA, *logB) {
		t.Fatalf("traces differ:\nenv.Run: %v\nBatch:   %v", *logA, *logB)
	}
}

// TestPacedNoInjectionMatchesBatch pins the other half of the identity:
// with no injected commands, quantum batching merely splits Run into
// consecutive horizons, so the virtual-time trace is unchanged for any
// quantum size.
func TestPacedNoInjectionMatchesBatch(t *testing.T) {
	ref := NewEnv()
	refLog := traceModel(ref)
	refEnd := ref.Run(100)

	for _, quantum := range []Time{0.1, 0.25, 1, 7.3, 1000} {
		env := NewEnv()
		log := traceModel(env)
		d := NewPaced(env, PacedConfig{Ratio: 0, QuantumS: quantum})
		end := d.Run(100)
		if end != refEnd {
			t.Fatalf("quantum %v: final time %v, want %v", quantum, end, refEnd)
		}
		if !reflect.DeepEqual(*log, *refLog) {
			t.Fatalf("quantum %v: trace diverged from batch", quantum)
		}
	}
}

// TestPacedScriptedInjectionDeterministic runs the same SubmitAt
// schedule twice and requires bit-identical virtual-time traces.
func TestPacedScriptedInjectionDeterministic(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		log := traceModel(env)
		d := NewPaced(env, PacedConfig{Ratio: 0, QuantumS: 0.5})
		for i := 0; i < 10; i++ {
			i := i
			at := Time(i) * 3.1
			d.SubmitAt(at, func(env *Env) {
				*log = append(*log, fmt.Sprintf("inject%d t%.3f", i, env.Now()))
				env.Go(fmt.Sprintf("inj%d", i), func(p *Proc) {
					p.Sleep(0.9)
					*log = append(*log, fmt.Sprintf("inj%d done t%.3f", i, p.Now()))
				})
			}, nil)
		}
		d.Run(60)
		return *log
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scripted paced runs diverged:\n%v\n%v", a, b)
	}
	// Sanity: the injections actually happened.
	var saw int
	for _, l := range a {
		if len(l) >= 6 && l[:6] == "inject" {
			saw++
		}
	}
	if saw != 10 {
		t.Fatalf("expected 10 injections in trace, saw %d", saw)
	}
}

// TestPacedInjectionLandsAtBoundary checks the quantization contract: a
// command released at virtual time v runs at the first boundary >= v,
// never earlier.
func TestPacedInjectionLandsAtBoundary(t *testing.T) {
	env := NewEnv()
	d := NewPaced(env, PacedConfig{Ratio: 0, QuantumS: 2})
	var at []Time
	for _, rel := range []Time{0, 0.1, 2, 3.5, 9.99} {
		d.SubmitAt(rel, func(env *Env) { at = append(at, env.Now()) }, nil)
	}
	d.Run(20)
	want := []Time{0, 2, 2, 4, 10}
	if !reflect.DeepEqual(at, want) {
		t.Fatalf("injection times %v, want %v", at, want)
	}
}

// TestPacedGracefulStop verifies Stop from another goroutine ends Run at
// a quantum boundary and rejects still-pending commands exactly once.
func TestPacedGracefulStop(t *testing.T) {
	env := NewEnv()
	// An immortal heartbeat so the heap never drains.
	var beat func()
	beat = func() { env.Schedule(1, beat) }
	env.Schedule(1, beat)

	d := NewPaced(env, PacedConfig{Ratio: 1000, QuantumS: 1})
	var rejected int
	d.SubmitAt(1e12, func(*Env) { t.Error("command from the far future ran") },
		func() { rejected++ })

	done := make(chan Time, 1)
	go func() { done <- d.Run(Forever) }()
	time.Sleep(30 * time.Millisecond)
	d.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if rejected != 1 {
		t.Fatalf("pending command rejected %d times, want 1", rejected)
	}
	if ok := d.Submit(func(*Env) {}, nil); ok {
		t.Fatal("Submit accepted after stop")
	}
	if ok := d.Do(func(*Env) {}); ok {
		t.Fatal("Do succeeded after stop")
	}
}

// TestPacedDoRoundTrip verifies the synchronous read path: Do observes
// state from inside a boundary and returns once its closure ran.
func TestPacedDoRoundTrip(t *testing.T) {
	env := NewEnv()
	var beat func()
	beat = func() { env.Schedule(0.5, beat) }
	env.Schedule(0.5, beat)

	d := NewPaced(env, PacedConfig{Ratio: 0, QuantumS: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	var seen Time
	go func() {
		defer wg.Done()
		if !d.Do(func(env *Env) { seen = env.Now() }) {
			t.Error("Do failed on a running driver")
		}
		d.Stop()
	}()
	d.Run(Forever)
	wg.Wait()
	if seen < 0 {
		t.Fatalf("Do observed nonsense time %v", seen)
	}
}

// TestPacedWallPacing checks the wall mapping with a stubbed clock: at
// ratio R the driver asks to sleep ~quantum/R per quantum.
func TestPacedWallPacing(t *testing.T) {
	env := NewEnv()
	var beat func()
	beat = func() { env.Schedule(1, beat) }
	env.Schedule(1, beat)

	d := NewPaced(env, PacedConfig{Ratio: 10, QuantumS: 1})
	var fake time.Time // zero base; advance on sleep
	var slept time.Duration
	d.now = func() time.Time { return fake }
	d.sleep = func(dt time.Duration) { slept += dt; fake = fake.Add(dt) }
	d.Run(50) // 50 virtual s at 10 v/s per wall s => 5 wall s
	if want := 5 * time.Second; slept != want {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	if d.MaxLag() > 0 {
		t.Fatalf("stubbed clock never lags, got %v", d.MaxLag())
	}
}

// TestPacedVirtualNow pins the boundary clock: after Run to a horizon,
// VirtualNow reports it.
func TestPacedVirtualNow(t *testing.T) {
	env := NewEnv()
	d := NewPaced(env, PacedConfig{Ratio: 0, QuantumS: 0.25})
	if d.VirtualNow() != 0 {
		t.Fatalf("fresh driver VirtualNow = %v", d.VirtualNow())
	}
	d.Run(12.5)
	if d.VirtualNow() != 12.5 {
		t.Fatalf("VirtualNow = %v, want 12.5", d.VirtualNow())
	}
}

// TestPacedSubmitStopRace pins the Submit/Stop contract under
// contention: a Submit that lands while Stop is draining must invoke
// exactly one of fn or reject — never both (double-fire) and never
// neither (silent drop) — and once Submit has returned false the driver
// must refuse every later submission. Run under -race in CI.
func TestPacedSubmitStopRace(t *testing.T) {
	const (
		rounds   = 10
		workers  = 8
		perWkr   = 64
		commands = workers * perWkr
	)
	for round := 0; round < rounds; round++ {
		env := NewEnv()
		env.Go("tick", func(p *Proc) {
			for p.Now() < 1e4 {
				p.Sleep(0.25)
			}
		})
		d := NewPaced(env, PacedConfig{Ratio: 0, QuantumS: 0.25})
		counts := make([]atomic.Int32, commands)
		var accepted [workers * perWkr]atomic.Bool
		runDone := make(chan struct{})
		go func() {
			d.Run(1e4)
			close(runDone)
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				refused := false
				for i := 0; i < perWkr; i++ {
					idx := w*perWkr + i
					ok := d.Submit(
						func(*Env) { counts[idx].Add(1) },
						func() { counts[idx].Add(1) },
					)
					accepted[idx].Store(ok)
					if !ok {
						refused = true
					} else if refused {
						t.Errorf("round %d: Submit accepted after an earlier refusal", round)
						return
					}
					if w == 0 && i == perWkr/4 {
						d.Stop()
					}
				}
			}()
		}
		wg.Wait()
		<-runDone
		for idx := 0; idx < commands; idx++ {
			got := counts[idx].Load()
			if accepted[idx].Load() && got != 1 {
				t.Fatalf("round %d: accepted command %d ran %d callbacks, want exactly 1", round, idx, got)
			}
			if !accepted[idx].Load() && got != 0 {
				t.Fatalf("round %d: refused command %d ran %d callbacks, want 0", round, idx, got)
			}
		}
	}
}

// TestPacedQuantumAlignsToLaneWindow: with lanes configured, the
// injection quantum rounds up to a whole number of conservative
// windows, so every injection point is also a window boundary.
func TestPacedQuantumAlignsToLaneWindow(t *testing.T) {
	env := NewEnv()
	if err := env.ConfigureLanes(LaneConfig{Lanes: 2, WindowS: 0.05}); err != nil {
		t.Fatal(err)
	}
	d := NewPaced(env, PacedConfig{QuantumS: 0.12})
	if got := d.Config().QuantumS; got != 0.15000000000000002 && got != 0.15 {
		t.Fatalf("quantum %v, want 3 windows (0.15)", got)
	}
	// Already-aligned quanta are untouched.
	d = NewPaced(env, PacedConfig{QuantumS: 0.25})
	if got := d.Config().QuantumS; got != 0.25 {
		t.Fatalf("aligned quantum moved to %v", got)
	}
	// Lanes off: quanta pass through verbatim.
	d = NewPaced(NewEnv(), PacedConfig{QuantumS: 0.12})
	if got := d.Config().QuantumS; got != 0.12 {
		t.Fatalf("laneless quantum moved to %v", got)
	}
}
