package sim

// Per-lane event lanes: the kernel-side half of the parallel event
// kernel. The event heap is partitioned into one lane per management
// -plane shard plus lane 0 for shared resources (the shared management
// DB, the cross-shard coordinator, netsim, reconcile controllers), and
// the run loop advances in conservative time windows keyed to the
// minimum cross-lane interaction latency: no lane advances past a
// window boundary until every lane has reached it.
//
// The invariant that makes lanes safe to enable anywhere is that the
// *execution* order never changes: events fire in global (time, seq)
// order no matter how many lanes or barrier workers are configured, so
// lanes=1 is the identity and every artifact is byte-identical at any
// lane count. What the lanes buy is structural:
//
//   - each lane owns a smaller heap, so push/pop sift costs shrink
//     from O(log n) to O(log n/L) on the lane-local hot path;
//   - future-dated cross-lane events are parked in the target lane's
//     pooled mailbox (an O(1) append instead of a heap sift) and bulk
//     -merged at the next window barrier;
//   - barrier merges run on worker goroutines, one lane per worker —
//     the only concurrency in the kernel, and it touches strictly
//     lane-disjoint state, so worker count cannot perturb order.
//
// Model state (the inventory, the metrics registry, task records) is
// shared across shards, so event *bodies* still execute one at a time
// on the kernel goroutine; the conservative windows are what would let
// bodies run concurrently once state is lane-partitioned, and the
// WindowViolations counter measures how often the model breaks the
// window assumption today (a cross-lane event landing inside the
// current window falls back to a direct heap insert — correct, just
// not deferrable).
//
// Same-instant wakeups — the most common event class by far — ride the
// global same-time FIFO queue exactly as before and are unaffected by
// lane placement.

import (
	"container/heap"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// LaneConfig shapes the partitioned kernel. Zero-valued fields take
// defaults; a Lanes value <= 1 leaves the kernel on the single-heap
// path (the identity).
type LaneConfig struct {
	// Lanes is the total lane count including lane 0, which is reserved
	// for shared resources. A sharded plane maps shard s to lane
	// 1 + s%(Lanes-1).
	Lanes int
	// WindowS is the conservative barrier window in virtual seconds:
	// the minimum latency of a cross-lane interaction (the two-phase
	// coordinator round-trip, a shared-DB acquire). Cross-lane events
	// scheduled at or beyond the current window's end are parked in
	// mailboxes and merged at the barrier. Default 0.05.
	WindowS Time
	// Workers bounds the barrier-merge worker pool. <= 0 uses one
	// worker per lane. Worker count never affects output.
	Workers int
}

// Validate checks the lane configuration.
func (c LaneConfig) Validate() error {
	if c.Lanes < 0 {
		return fmt.Errorf("sim: negative lane count %d", c.Lanes)
	}
	if c.WindowS < 0 {
		return fmt.Errorf("sim: negative lane window %g", c.WindowS)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative lane workers %d", c.Workers)
	}
	return nil
}

// LaneStats is one lane's structural accounting.
type LaneStats struct {
	Lane       int
	Executed   int64 // events fired that were tagged to this lane
	Merged     int64 // mailbox events bulk-merged at barriers
	Violations int64 // cross-lane events inside the window (direct insert)
	CrossAcq   int64 // acquires of this lane's pinned resources from other lanes
}

// lane is one partition of the event heap. Lane 0's heap is the Env's
// original heap (so configuring lanes moves no events); lanes 1..L-1
// own private heaps. The mailbox holds future-dated events scheduled
// from other lanes, awaiting the next barrier merge.
type lane struct {
	heap     eventHeap
	mbox     []*event
	mboxDead int      // cancelled entries still occupying mbox slots
	dead     []*event // cancelled entries found during merge, released post-barrier
	stats    LaneStats
}

// ConfigureLanes partitions the event heap into cfg.Lanes lanes. Must
// be called before Run; events already scheduled stay on lane 0. A
// Lanes value <= 1 is a no-op: the kernel keeps the single-heap path
// and behaves exactly as it always has.
func (e *Env) ConfigureLanes(cfg LaneConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if e.running {
		return fmt.Errorf("sim: ConfigureLanes while running")
	}
	if cfg.Lanes <= 1 {
		return nil
	}
	if cfg.WindowS == 0 {
		cfg.WindowS = 0.05
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Lanes
	}
	e.laneCfg = cfg
	e.lanes = make([]lane, cfg.Lanes)
	e.windowEnd = math.Inf(1)
	return nil
}

// LaneCount returns the configured lane count (1 when lanes are off).
func (e *Env) LaneCount() int {
	if e.lanes == nil {
		return 1
	}
	return len(e.lanes)
}

// LaneStats returns per-lane structural counters, nil when lanes are
// off. The counters are diagnostics: they never influence execution.
func (e *Env) LaneStats() []LaneStats {
	if e.lanes == nil {
		return nil
	}
	out := make([]LaneStats, len(e.lanes))
	for i := range e.lanes {
		out[i] = e.lanes[i].stats
		out[i].Lane = i
	}
	return out
}

// laneHeap returns lane i's event heap: the Env's original heap for
// lane 0, the lane's private heap otherwise.
func (e *Env) laneHeap(i int32) *eventHeap {
	if i == 0 {
		return &e.heap
	}
	return &e.lanes[i].heap
}

// peekLanes extends peek across the lane heaps: the global (time, seq)
// minimum of every lane's heap root and the same-time queue's front.
// The scan is O(lanes), paid once per fired event.
func (e *Env) peekLanes(front *event) *event {
	best := front
	if len(e.heap) > 0 {
		if top := e.heap[0]; best == nil || evLess(top, best) {
			best = top
		}
	}
	for i := 1; i < len(e.lanes); i++ {
		h := e.lanes[i].heap
		if len(h) == 0 {
			continue
		}
		if top := h[0]; best == nil || evLess(top, best) {
			best = top
		}
	}
	return best
}

func evLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventLane picks the lane a new event belongs to: the resumed
// process's lane for wakeups, the currently executing event's lane for
// plain callbacks.
func (e *Env) eventLane(p *Proc) int32 {
	if p != nil {
		return p.lane
	}
	return e.curLane
}

// boundaryAfter returns the first multiple of w strictly after t,
// computed by multiplication so float error cannot accumulate across
// windows (the same trick the paced driver uses for quantum
// boundaries).
func boundaryAfter(t, w Time) Time {
	k := math.Floor(t/w) + 1
	b := k * w
	for b <= t {
		k++
		b = k * w
	}
	return b
}

// runLanes is Run's windowed loop: merge mailboxes at the barrier,
// advance every lane together to the next window boundary, repeat.
// Execution order inside a window is the global (time, seq) merge of
// all lane heaps and the same-time queue — identical to the
// single-heap loop — so artifacts do not depend on the lane count.
func (e *Env) runLanes(until Time) Time {
	w := e.laneCfg.WindowS
	defer func() {
		e.windowEnd = math.Inf(1)
		e.curLane = 0
	}()
	var nev int64
	for !e.stopped {
		e.laneBarrier()
		ev := e.peek()
		if ev == nil {
			break
		}
		if ev.at > until {
			e.now = until
			return e.now
		}
		// The window containing the next event; empty windows are
		// skipped in one step. The final stretch to the horizon runs
		// inclusive (events exactly at until fire, as in the serial
		// loop) with deferral off, so a cross-lane event scheduled for
		// the horizon itself cannot be parked past it.
		bound := boundaryAfter(ev.at, w)
		inclusive := bound >= until
		if inclusive {
			bound = until
			e.windowEnd = math.Inf(1)
		} else {
			e.windowEnd = bound
		}
		e.runWindow(bound, inclusive, &nev)
	}
	if e.now < until && until != Forever {
		e.now = until
	}
	return e.now
}

// runWindow fires events in (time, seq) order up to bound — exclusive
// for interior windows, inclusive for the final stretch to the
// horizon.
func (e *Env) runWindow(bound Time, inclusive bool, nev *int64) {
	for !e.stopped {
		ev := e.peek()
		if ev == nil {
			return
		}
		if ev.at > bound || (!inclusive && ev.at == bound) {
			return
		}
		e.pop(ev)
		e.now = ev.at
		e.curLane = ev.lane
		e.lanes[ev.lane].stats.Executed++
		fn, p := ev.fn, ev.p
		e.release(ev)
		if debugEvents {
			*nev++
			if *nev%debugEventEvery == 0 {
				fmt.Fprintf(os.Stderr, "sim DEBUG: %d events, now=%v pending=%d fn=%p\n", *nev, e.now, e.Pending(), fn)
			}
		}
		if p != nil {
			e.wake(p)
		} else {
			fn()
		}
	}
}

// laneBarrier bulk-merges every lane's mailbox into its heap. With
// more than one populated mailbox the merges run on worker goroutines
// — each worker owns whole lanes, so the only shared state is the
// work counter — and the kernel goroutine joins them before any event
// fires. Cancelled mailbox entries are collected per lane and released
// to the (single-threaded) free list after the join.
func (e *Env) laneBarrier() {
	work := 0
	for i := range e.lanes {
		if len(e.lanes[i].mbox) > 0 {
			work++
		}
	}
	if work == 0 {
		return
	}
	if nw := min(e.laneCfg.Workers, work); nw > 1 {
		var next atomic.Int32
		var wg sync.WaitGroup
		for g := 0; g < nw; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(e.lanes) {
						return
					}
					e.mergeLane(int32(i))
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range e.lanes {
			e.mergeLane(int32(i))
		}
	}
	for i := range e.lanes {
		l := &e.lanes[i]
		for j, ev := range l.dead {
			e.release(ev)
			l.dead[j] = nil
		}
		l.dead = l.dead[:0]
	}
}

// mergeLane drains lane i's mailbox into its heap. Safe to run
// concurrently with other lanes' merges: it touches only lane i's
// state (and, for lane 0, the Env heap no other worker owns).
func (e *Env) mergeLane(i int32) {
	l := &e.lanes[i]
	if len(l.mbox) == 0 {
		return
	}
	h := e.laneHeap(i)
	for j, ev := range l.mbox {
		l.mbox[j] = nil
		if ev.idx == idxMailboxStopped {
			l.dead = append(l.dead, ev)
			continue
		}
		heap.Push(h, ev)
		l.stats.Merged++
	}
	l.mbox = l.mbox[:0]
	l.mboxDead = 0
}
