// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock through a time-ordered event heap.
// Model logic is written as processes: ordinary functions that run on their
// own goroutine but are scheduled cooperatively, one at a time, by the
// kernel. A process blocks by sleeping, acquiring a Resource, or waiting on
// a Queue or Signal; while it is blocked the kernel runs other events. At
// most one process executes at any instant, so model code needs no locking
// and — together with seeded randomness from package rng — a simulation run
// is fully deterministic: the same inputs produce the same event order and
// the same results.
//
// Time is measured in seconds of virtual time as a float64 (type Time).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"os"

	"cloudmcp/internal/metrics"
)

// debugEvents enables a low-overhead event-rate trace for diagnosing
// runaway event cascades; set CLOUDMCP_DEBUG_EVENTS=1.
var debugEvents = os.Getenv("CLOUDMCP_DEBUG_EVENTS") != ""

// Time is virtual time in seconds since the start of the simulation.
type Time = float64

// Forever is a convenient horizon for Run when the caller wants the event
// heap to drain completely.
const Forever Time = math.MaxFloat64

// event is a scheduled callback.
type event struct {
	at  Time
	seq int64 // tie-break: FIFO among simultaneous events
	fn  func()
	idx int // heap index, -1 when popped/cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock plus an event heap.
// Create one with NewEnv; it is not safe for concurrent use from outside
// the simulation (all model code runs under the kernel's cooperative
// scheduler, which provides the necessary serialization).
type Env struct {
	now     Time
	heap    eventHeap
	seq     int64
	running bool
	stopped bool

	// procDone is signaled by a process goroutine whenever it blocks or
	// terminates, returning control to the kernel loop.
	procDone chan struct{}

	// nproc counts live (started, not yet finished) processes, for leak
	// detection in tests.
	nproc int

	// metrics is the optional instrumentation registry resources and
	// model layers report into; nil (the default) disables collection at
	// zero cost.
	metrics *metrics.Registry
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{procDone: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() Time { return e.now }

// SetMetrics attaches an instrumentation registry. It must be called
// before the model layers are built so their resources can register;
// resources created earlier are not retroactively instrumented.
func (e *Env) SetMetrics(reg *metrics.Registry) { e.metrics = reg }

// Metrics returns the attached registry, or nil when metrics are
// disabled. The nil registry is safe to use: every constructor on it
// returns a no-op instrument.
func (e *Env) Metrics() *metrics.Registry { return e.metrics }

// Schedule registers fn to run after delay seconds of virtual time.
// A negative delay panics: events cannot be scheduled in the past.
// The returned Timer may be used to cancel the event before it fires.
func (e *Env) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	ev := &event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return &Timer{env: e, ev: ev}
}

// Timer is a handle to a scheduled event.
type Timer struct {
	env *Env
	ev  *event
}

// Stop cancels the timer's event if it has not fired yet. It reports
// whether the event was cancelled (false when it already fired or was
// already stopped).
func (t *Timer) Stop() bool {
	if t.ev == nil || t.ev.idx < 0 {
		return false
	}
	heap.Remove(&t.env.heap, t.ev.idx)
	t.ev.idx = -1
	return true
}

// When returns the virtual time the timer is scheduled to fire.
func (t *Timer) When() Time { return t.ev.at }

// Stop terminates the simulation: Run returns after the current event
// completes and all later events are discarded.
func (e *Env) Stop() { e.stopped = true }

// Run executes events in time order until the heap drains, the clock would
// pass until, or Stop is called. It returns the final virtual time. Events
// scheduled exactly at until still run.
func (e *Env) Run(until Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	var nev int64
	for len(e.heap) > 0 && !e.stopped {
		ev := e.heap[0]
		if ev.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.heap)
		e.now = ev.at
		if debugEvents {
			nev++
			if nev%10_000_000 == 0 {
				fmt.Printf("sim DEBUG: %dM events, now=%v heap=%d fn=%p\n", nev/1_000_000, e.now, len(e.heap), ev.fn)
			}
		}
		ev.fn()
	}
	if e.now < until && until != Forever {
		e.now = until
	}
	return e.now
}

// Pending returns the number of scheduled (uncancelled) events.
func (e *Env) Pending() int { return len(e.heap) }

// LiveProcs returns the number of processes that have started and not yet
// returned. A drained simulation with blocked processes will report them
// here; tests use this to detect leaks.
func (e *Env) LiveProcs() int { return e.nproc }

// Proc is a simulation process: a goroutine scheduled cooperatively by the
// kernel. All Proc methods must be called from the process's own function.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	dead   bool
}

// Name returns the label given to Go when the process was spawned.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns fn as a new process, starting at the current virtual time
// (after already-scheduled events at this time, preserving FIFO order).
func (e *Env) Go(name string, fn func(p *Proc)) {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nproc++
	e.Schedule(0, func() {
		go func() {
			<-p.resume
			fn(p)
			p.dead = true
			e.nproc--
			e.procDone <- struct{}{}
		}()
		e.wake(p)
	})
}

// wake hands control to p and blocks the kernel until p yields back.
func (e *Env) wake(p *Proc) {
	p.resume <- struct{}{}
	<-e.procDone
}

// yield returns control from the process to the kernel and blocks until
// some event resumes the process.
func (p *Proc) yield() {
	p.env.procDone <- struct{}{}
	<-p.resume
}

// Sleep blocks the process for d seconds of virtual time. Negative d
// panics.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.env.Schedule(d, func() { p.env.wake(p) })
	p.yield()
}

// Resource is a counted resource with FIFO admission: at most Capacity
// units may be held at once; Acquire blocks the calling process until its
// request can be granted in arrival order.
//
// Resource additionally keeps the time-integrals needed for utilization and
// queue-length statistics (see Stats).
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter

	// accounting
	lastT        Time
	busyIntegral float64 // ∫ inUse dt
	qIntegral    float64 // ∫ len(waiters) dt
	grants       int64
	waitTotal    float64
	maxQueue     int
}

type resWaiter struct {
	p       *Proc
	n       int
	since   Time
	granted bool
	blocked bool // true once the owning process has yielded
}

// NewResource creates a resource with the given capacity (units > 0).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// Name returns the resource's label.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) account() {
	dt := r.env.now - r.lastT
	if dt > 0 {
		r.busyIntegral += dt * float64(r.inUse)
		r.qIntegral += dt * float64(len(r.waiters))
	}
	r.lastT = r.env.now
}

// Acquire blocks p until n units are available and this request is at the
// head of the FIFO queue. n must be in [1, capacity].
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of %q (capacity %d)", n, r.name, r.capacity))
	}
	r.account()
	w := &resWaiter{p: p, n: n, since: r.env.now}
	r.waiters = append(r.waiters, w)
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
	r.dispatch()
	if !w.granted {
		w.blocked = true
		p.yield()
	}
	if !w.granted {
		panic("sim: resumed without grant") // kernel invariant
	}
}

// Release returns n units to the resource and wakes eligible waiters.
// It may be called from any process or event callback.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d of %q (in use %d)", n, r.name, r.inUse))
	}
	r.account()
	r.inUse -= n
	r.dispatch()
}

// dispatch grants requests strictly in FIFO order: the head waiter blocks
// later (smaller) requests even if those could be satisfied, preventing
// starvation of large requests.
func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		w.granted = true
		r.grants++
		r.waitTotal += r.env.now - w.since
		if w.blocked {
			// The process has yielded: resume it via a fresh event so
			// wakeups stay in deterministic heap order.
			p := w.p
			r.env.Schedule(0, func() { r.env.wake(p) })
		}
		// Otherwise the acquiring process is still running inside
		// Acquire; it sees granted==true and continues inline.
	}
}

// ResourceStats is a snapshot of a resource's accumulated statistics.
type ResourceStats struct {
	Name         string
	Capacity     int
	Grants       int64   // completed acquisitions
	Utilization  float64 // mean fraction of capacity in use
	MeanQueueLen float64 // time-averaged waiter count
	MeanWait     float64 // mean seconds spent queued per grant
	TotalWait    float64 // total seconds spent queued across all grants
	MaxQueueLen  int
}

// Stats returns utilization and queueing statistics accumulated since the
// start of the simulation, evaluated at the current virtual time.
func (r *Resource) Stats() ResourceStats {
	r.account()
	s := ResourceStats{Name: r.name, Capacity: r.capacity, Grants: r.grants, TotalWait: r.waitTotal, MaxQueueLen: r.maxQueue}
	if r.env.now > 0 {
		s.Utilization = r.busyIntegral / (r.env.now * float64(r.capacity))
		s.MeanQueueLen = r.qIntegral / r.env.now
	}
	if r.grants > 0 {
		s.MeanWait = r.waitTotal / float64(r.grants)
	}
	return s
}

// RegisterMetrics registers the resource's busy-time and queue-time
// statistics with the environment's metrics registry under the given
// layer, keyed by the resource's name. No-op when metrics are disabled.
func (r *Resource) RegisterMetrics(layer string) {
	reg := r.env.metrics
	if reg == nil {
		return
	}
	reg.ResourceFunc(layer, r.name, func() metrics.ResourceSample {
		s := r.Stats()
		return metrics.ResourceSample{
			Capacity:     s.Capacity,
			Utilization:  s.Utilization,
			MeanQueueLen: s.MeanQueueLen,
			MaxQueueLen:  s.MaxQueueLen,
			Grants:       s.Grants,
			MeanWaitS:    s.MeanWait,
			TotalWaitS:   s.TotalWait,
		}
	})
}

// Queue is an unbounded FIFO channel between processes: Put never blocks,
// Get blocks the caller until an item is available. Items are delivered to
// getters in arrival order.
type Queue struct {
	env     *Env
	items   []any
	getters []*qGetter
}

type qGetter struct {
	p     *Proc
	item  any
	ready bool
}

// NewQueue creates an empty queue.
func NewQueue(env *Env) *Queue { return &Queue{env: env} }

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Waiting returns the number of blocked getters.
func (q *Queue) Waiting() int { return len(q.getters) }

// Put appends v and wakes the oldest blocked getter, if any.
func (q *Queue) Put(v any) {
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.item = v
		g.ready = true
		p := g.p
		q.env.Schedule(0, func() { q.env.wake(p) })
		return
	}
	q.items = append(q.items, v)
}

// Get blocks p until an item is available and returns it.
func (q *Queue) Get(p *Proc) any {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v
	}
	g := &qGetter{p: p}
	q.getters = append(q.getters, g)
	p.yield()
	if !g.ready {
		panic("sim: queue getter resumed without item")
	}
	return g.item
}

// Signal is a broadcast condition: processes Wait on it and all waiters are
// released by the next Fire. Each Fire releases only the processes that
// were already waiting.
type Signal struct {
	env     *Env
	waiters []*Proc
	fires   int64
}

// NewSignal creates a signal with no waiters.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Fire releases all current waiters in wait order.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	s.fires++
	for _, p := range ws {
		p := p
		s.env.Schedule(0, func() { s.env.wake(p) })
	}
}

// Fires returns the number of times Fire has been called.
func (s *Signal) Fires() int64 { return s.fires }

// Waiters returns the number of currently blocked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }
