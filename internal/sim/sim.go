// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock through a time-ordered event heap.
// Model logic is written as processes: ordinary functions that run on their
// own goroutine but are scheduled cooperatively, one at a time, by the
// kernel. A process blocks by sleeping, acquiring a Resource, or waiting on
// a Queue or Signal; while it is blocked the kernel runs other events. At
// most one process executes at any instant, so model code needs no locking
// and — together with seeded randomness from package rng — a simulation run
// is fully deterministic: the same inputs produce the same event order and
// the same results.
//
// Time is measured in seconds of virtual time as a float64 (type Time).
//
// # Performance
//
// The kernel is the hot path of every experiment, so its steady state is
// allocation-free: fired events are recycled through a per-Env free list,
// process wakeups are direct event fields rather than closures, and events
// scheduled at the current instant bypass the heap through a FIFO
// same-time queue (wakeups and zero-delay chains are the most common
// events by far). None of this changes the execution order, which remains
// exactly (time, sequence)-ordered; the determinism tests pin that down.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"os"

	"cloudmcp/internal/metrics"
)

// debugEvents enables a low-overhead event-rate trace for diagnosing
// runaway event cascades; set CLOUDMCP_DEBUG_EVENTS=1. The trace goes to
// stderr: stdout belongs to the artifacts the CLIs render, and a debug aid
// must never corrupt a piped or diffed artifact.
var debugEvents = os.Getenv("CLOUDMCP_DEBUG_EVENTS") != ""

// debugEventEvery is the number of events between debug trace lines. A
// variable (not a constant) so the regression test can tighten it enough
// to observe output from a tiny simulation.
var debugEventEvery int64 = 10_000_000

// Time is virtual time in seconds since the start of the simulation.
type Time = float64

// Forever is a convenient horizon for Run when the caller wants the event
// heap to drain completely.
const Forever Time = math.MaxFloat64

// event index markers (event.idx values outside the heap).
const (
	idxPopped         = -1 // fired, cancelled from the heap, or free
	idxNowQ           = -2 // waiting in the same-time FIFO queue
	idxNowQStopped    = -3 // cancelled while in the same-time queue
	idxMailbox        = -4 // parked in a cross-lane mailbox (see lanes.go)
	idxMailboxStopped = -5 // cancelled while in a mailbox
)

// event is a scheduled callback. Events are pooled: after firing (or being
// cancelled) an event returns to the Env's free list and is reused by a
// later Schedule, so the steady-state path does not allocate. gen
// distinguishes incarnations so a stale Timer cannot cancel the recycled
// event.
type event struct {
	at   Time
	seq  int64 // tie-break: FIFO among simultaneous events
	fn   func()
	p    *Proc  // when non-nil, the event resumes p instead of calling fn
	idx  int    // heap index, or one of the idx* markers
	gen  uint64 // incremented every time the event is recycled
	lane int32  // owning lane when lanes are configured (see lanes.go)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = idxPopped
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock plus an event heap.
// Create one with NewEnv; it is not safe for concurrent use from outside
// the simulation (all model code runs under the kernel's cooperative
// scheduler, which provides the necessary serialization).
type Env struct {
	now     Time
	heap    eventHeap
	seq     int64
	running bool
	stopped bool

	// nowq is the same-time fast path: a FIFO of events scheduled at the
	// current instant. Entries are appended with non-decreasing (at, seq),
	// so the front is always the queue's minimum and merging with the heap
	// is a single comparison instead of an O(log n) heap operation.
	nowq     []*event
	nowqHead int
	nowqDead int // cancelled entries still occupying nowq slots

	// free is the event free list; see the event type.
	free []*event

	// procDone is signaled by a process goroutine whenever it blocks or
	// terminates, returning control to the kernel loop.
	procDone chan struct{}

	// nproc counts live (started, not yet finished) processes, for leak
	// detection in tests.
	nproc int

	// procFree holds finished process shells whose goroutines are parked
	// on their resume channels, awaiting a next life (see startProc).
	procFree []*Proc

	// metrics is the optional instrumentation registry resources and
	// model layers report into; nil (the default) disables collection at
	// zero cost.
	metrics *metrics.Registry

	// Lane state (see lanes.go). lanes is nil until ConfigureLanes
	// partitions the heap; every lane-aware branch below is guarded on
	// that nil, so the single-heap path is untouched when lanes are off.
	lanes     []lane
	laneCfg   LaneConfig
	curLane   int32 // lane of the currently firing event
	windowEnd Time  // current conservative window's end (+Inf outside windows)
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{procDone: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() Time { return e.now }

// SetMetrics attaches an instrumentation registry. It must be called
// before the model layers are built so their resources can register;
// resources created earlier are not retroactively instrumented.
func (e *Env) SetMetrics(reg *metrics.Registry) { e.metrics = reg }

// Metrics returns the attached registry, or nil when metrics are
// disabled. The nil registry is safe to use: every constructor on it
// returns a no-op instrument.
func (e *Env) Metrics() *metrics.Registry { return e.metrics }

// newEvent takes an event from the free list (or allocates one), stamps
// it, and enqueues it: on the same-time FIFO queue when it fires at the
// current instant, otherwise on the heap.
func (e *Env) newEvent(at Time, fn func(), p *Proc) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.p = at, e.seq, fn, p
	e.seq++
	// The fast path requires nowq to stay sorted by (at, seq); appends are
	// in seq order, so only a clock that moved backwards (Run to an
	// earlier horizon) could break the at order — guard against it.
	if at == e.now && (e.nowqHead == len(e.nowq) || e.nowq[len(e.nowq)-1].at <= at) {
		ev.idx = idxNowQ
		e.nowq = append(e.nowq, ev)
		if e.lanes != nil {
			ev.lane = e.eventLane(p)
		}
		return ev
	}
	if e.lanes == nil {
		heap.Push(&e.heap, ev)
		return ev
	}
	// Lane routing for future-dated events: lane-local events go straight
	// to the lane's heap; cross-lane events at or beyond the current
	// window's end are parked in the target lane's mailbox for the next
	// barrier merge (an O(1) append), and cross-lane events *inside* the
	// window fall back to a direct heap insert — always correct, counted
	// as a violation of the conservative-window assumption.
	ln := e.eventLane(p)
	ev.lane = ln
	if ln != e.curLane {
		if at >= e.windowEnd {
			ev.idx = idxMailbox
			e.lanes[ln].mbox = append(e.lanes[ln].mbox, ev)
			return ev
		}
		if !math.IsInf(e.windowEnd, 1) {
			e.lanes[ln].stats.Violations++
		}
	}
	heap.Push(e.laneHeap(ln), ev)
	return ev
}

// release returns a fired or cancelled event to the free list.
func (e *Env) release(ev *event) {
	ev.fn, ev.p = nil, nil
	ev.idx = idxPopped
	ev.lane = 0
	ev.gen++
	e.free = append(e.free, ev)
}

// peek returns the next event to fire — the (time, sequence) minimum of
// the heap and the same-time queue — without removing it. It compacts
// cancelled same-time entries as it goes. Returns nil when nothing is
// pending.
func (e *Env) peek() *event {
	for e.nowqHead < len(e.nowq) && e.nowq[e.nowqHead].idx == idxNowQStopped {
		e.release(e.nowq[e.nowqHead])
		e.nowq[e.nowqHead] = nil
		e.nowqHead++
		e.nowqDead--
	}
	var front *event
	if e.nowqHead < len(e.nowq) {
		front = e.nowq[e.nowqHead]
	} else if e.nowqHead > 0 {
		e.nowq = e.nowq[:0]
		e.nowqHead = 0
	}
	if e.lanes != nil {
		return e.peekLanes(front)
	}
	if len(e.heap) == 0 {
		return front
	}
	top := e.heap[0]
	if front == nil || top.at < front.at || (top.at == front.at && top.seq < front.seq) {
		return top
	}
	return front
}

// pop removes ev — which must be the event peek just returned — from its
// queue.
func (e *Env) pop(ev *event) {
	if ev.idx == idxNowQ {
		e.nowq[e.nowqHead] = nil
		e.nowqHead++
		ev.idx = idxPopped
		return
	}
	if e.lanes != nil && ev.lane != 0 {
		heap.Pop(&e.lanes[ev.lane].heap)
		return
	}
	heap.Pop(&e.heap)
}

// Schedule registers fn to run after delay seconds of virtual time.
// A negative delay panics: events cannot be scheduled in the past.
// The returned Timer may be used to cancel the event before it fires.
func (e *Env) Schedule(delay Time, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	ev := e.newEvent(e.now+delay, fn, nil)
	return Timer{env: e, ev: ev, gen: ev.gen}
}

// scheduleWake registers an event that resumes p after delay seconds.
// Equivalent to Schedule(delay, func() { e.wake(p) }) without the closure
// allocation; this is the kernel's internal path for every blocking
// primitive (Sleep, Resource, Queue, Signal).
func (e *Env) scheduleWake(delay Time, p *Proc) {
	e.newEvent(e.now+delay, nil, p)
}

// Timer is a handle to a scheduled event. The zero Timer is valid and
// behaves like a timer whose event has already fired: Stop reports false
// and When reports no pending event.
type Timer struct {
	env *Env
	ev  *event
	gen uint64
}

// pending reports whether the timer's event is still scheduled. Events
// are pooled, so a fired event may have been recycled by a later
// Schedule; the generation check makes sure this timer still refers to
// its own incarnation.
func (t Timer) pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && (t.ev.idx >= 0 || t.ev.idx == idxNowQ || t.ev.idx == idxMailbox)
}

// Stop cancels the timer's event if it has not fired yet. It reports
// whether the event was cancelled (false when it already fired or was
// already stopped).
func (t Timer) Stop() bool {
	if !t.pending() {
		return false
	}
	ev := t.ev
	if ev.idx == idxNowQ {
		// In the same-time queue: mark the slot dead; peek reclaims it.
		ev.fn, ev.p = nil, nil
		ev.idx = idxNowQStopped
		t.env.nowqDead++
		return true
	}
	if ev.idx == idxMailbox {
		// Parked in a cross-lane mailbox: mark the slot dead; the next
		// barrier merge reclaims it.
		ev.fn, ev.p = nil, nil
		ev.idx = idxMailboxStopped
		t.env.lanes[ev.lane].mboxDead++
		return true
	}
	if t.env.lanes != nil && ev.lane != 0 {
		heap.Remove(&t.env.lanes[ev.lane].heap, ev.idx)
	} else {
		heap.Remove(&t.env.heap, ev.idx)
	}
	t.env.release(ev)
	return true
}

// When returns the virtual time the timer's event is scheduled to fire
// and true, or (0, false) once the event has fired or been stopped (a
// fired event's time is meaningless: the pooled event may already carry a
// different schedule).
func (t Timer) When() (Time, bool) {
	if !t.pending() {
		return 0, false
	}
	return t.ev.at, true
}

// Stop terminates the simulation: Run returns after the current event
// completes and all later events are discarded.
func (e *Env) Stop() { e.stopped = true }

// Run executes events in time order until the heap drains, the clock would
// pass until, or Stop is called. It returns the final virtual time. Events
// scheduled exactly at until still run.
func (e *Env) Run(until Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	if e.lanes != nil {
		return e.runLanes(until)
	}
	var nev int64
	for !e.stopped {
		ev := e.peek()
		if ev == nil {
			break
		}
		if ev.at > until {
			e.now = until
			return e.now
		}
		e.pop(ev)
		e.now = ev.at
		fn, p := ev.fn, ev.p
		e.release(ev)
		if debugEvents {
			nev++
			if nev%debugEventEvery == 0 {
				fmt.Fprintf(os.Stderr, "sim DEBUG: %d events, now=%v pending=%d fn=%p\n", nev, e.now, e.Pending(), fn)
			}
		}
		if p != nil {
			e.wake(p)
		} else {
			fn()
		}
	}
	if e.now < until && until != Forever {
		e.now = until
	}
	return e.now
}

// Pending returns the number of scheduled (uncancelled) events.
func (e *Env) Pending() int {
	n := len(e.heap) + (len(e.nowq) - e.nowqHead - e.nowqDead)
	for i := range e.lanes {
		l := &e.lanes[i]
		n += len(l.heap) + len(l.mbox) - l.mboxDead
	}
	return n
}

// LiveProcs returns the number of processes that have started and not yet
// returned. A drained simulation with blocked processes will report them
// here; tests use this to detect leaks.
func (e *Env) LiveProcs() int { return e.nproc }

// Proc is a simulation process: a goroutine scheduled cooperatively by the
// kernel. All Proc methods must be called from the process's own function.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	fn     func(*Proc) // body for the current life (see startProc)
	dead   bool
	lane   int32 // event lane the process's wakeups land on (see lanes.go)
}

// Lane returns the event lane the process is pinned to (always 0 when
// lanes are not configured).
func (p *Proc) Lane() int32 { return p.lane }

// SetLane pins the process's future wakeups to lane l. Model code calls
// this when a process crosses a lane boundary — the sharded plane routes
// an operation to a shard, pins the caller to the shard's lane for the
// shard-local stages, and restores the previous lane on return. A no-op
// when lanes are not configured.
func (p *Proc) SetLane(l int32) {
	if p.env.lanes == nil {
		return
	}
	if l < 0 || int(l) >= len(p.env.lanes) {
		panic(fmt.Sprintf("sim: SetLane(%d) with %d lanes", l, len(p.env.lanes)))
	}
	p.lane = l
}

// Name returns the label given to Go when the process was spawned.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns fn as a new process, starting at the current virtual time
// (after already-scheduled events at this time, preserving FIFO order).
func (e *Env) Go(name string, fn func(p *Proc)) {
	ln := e.curLane
	e.nproc++
	e.Schedule(0, func() {
		e.wake(e.startProc(name, fn, ln))
	})
}

// startProc takes a parked process shell from the free list or spawns a
// fresh goroutine. A shell's goroutine stays parked on its resume
// channel between lives, so steady-state process churn (the directors
// spawn one process per VM deployed) reuses the goroutine, the Proc,
// and the channel instead of allocating all three. The free list is
// only touched while the kernel goroutine is blocked in wake, so the
// handoff through procDone orders every access.
func (e *Env) startProc(name string, fn func(*Proc), lane int32) *Proc {
	if k := len(e.procFree); k > 0 {
		p := e.procFree[k-1]
		e.procFree[k-1] = nil
		e.procFree = e.procFree[:k-1]
		p.name, p.fn, p.lane, p.dead = name, fn, lane, false
		return p
	}
	p := &Proc{env: e, name: name, fn: fn, resume: make(chan struct{}), lane: lane}
	go func() {
		for {
			<-p.resume
			p.fn(p)
			p.dead, p.fn = true, nil
			e.nproc--
			e.procFree = append(e.procFree, p)
			e.procDone <- struct{}{}
		}
	}()
	return p
}

// wake hands control to p and blocks the kernel until p yields back.
func (e *Env) wake(p *Proc) {
	p.resume <- struct{}{}
	<-e.procDone
}

// yield returns control from the process to the kernel and blocks until
// some event resumes the process.
func (p *Proc) yield() {
	p.env.procDone <- struct{}{}
	<-p.resume
}

// Sleep blocks the process for d seconds of virtual time. Negative d
// panics.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.env.scheduleWake(d, p)
	p.yield()
}

// Resource is a counted resource with FIFO admission: at most Capacity
// units may be held at once; Acquire blocks the calling process until its
// request can be granted in arrival order.
//
// Resource additionally keeps the time-integrals needed for utilization and
// queue-length statistics (see Stats).
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int

	// lane pinning (see lanes.go): pinned resources account acquires
	// from processes on other lanes as cross-lane interactions.
	lane   int32
	pinned bool

	// waiters[wHead:] is the FIFO admission queue. The head index (rather
	// than re-slicing) lets the backing array be reused once the queue
	// drains, and freeW recycles waiter records, keeping Acquire
	// allocation-free at steady state.
	waiters []*resWaiter
	wHead   int
	freeW   []*resWaiter

	// accounting
	lastT        Time
	busyIntegral float64 // ∫ inUse dt
	qIntegral    float64 // ∫ len(waiters) dt
	grants       int64
	waitTotal    float64
	maxQueue     int
}

type resWaiter struct {
	p       *Proc
	n       int
	since   Time
	granted bool
	blocked bool // true once the owning process has yielded
}

// NewResource creates a resource with the given capacity (units > 0).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// Name returns the resource's label.
func (r *Resource) Name() string { return r.name }

// PinLane tags the resource as owned by event lane l. Pinning is pure
// accounting — grant order never changes — and feeds the CrossAcq lane
// counter that sizes the conservative barrier window: a pinned
// resource acquired from another lane is exactly the cross-lane
// interaction the window must cover.
func (r *Resource) PinLane(l int32) {
	if r.env.lanes == nil {
		return
	}
	if l < 0 || int(l) >= len(r.env.lanes) {
		panic(fmt.Sprintf("sim: PinLane(%d) with %d lanes", l, len(r.env.lanes)))
	}
	r.lane, r.pinned = l, true
}

// Lane returns the lane the resource is pinned to and whether PinLane
// was called.
func (r *Resource) Lane() (int32, bool) { return r.lane, r.pinned }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.wHead }

func (r *Resource) account() {
	dt := r.env.now - r.lastT
	if dt > 0 {
		r.busyIntegral += dt * float64(r.inUse)
		r.qIntegral += dt * float64(r.QueueLen())
	}
	r.lastT = r.env.now
}

// newWaiter takes a waiter record from the free list or allocates one.
func (r *Resource) newWaiter(p *Proc, n int) *resWaiter {
	var w *resWaiter
	if k := len(r.freeW); k > 0 {
		w = r.freeW[k-1]
		r.freeW[k-1] = nil
		r.freeW = r.freeW[:k-1]
	} else {
		w = &resWaiter{}
	}
	*w = resWaiter{p: p, n: n, since: r.env.now}
	return w
}

// Acquire blocks p until n units are available and this request is at the
// head of the FIFO queue. n must be in [1, capacity].
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of %q (capacity %d)", n, r.name, r.capacity))
	}
	r.account()
	if r.pinned && p.lane != r.lane {
		r.env.lanes[r.lane].stats.CrossAcq++
	}
	w := r.newWaiter(p, n)
	r.waiters = append(r.waiters, w)
	if q := r.QueueLen(); q > r.maxQueue {
		r.maxQueue = q
	}
	r.dispatch()
	if !w.granted {
		w.blocked = true
		p.yield()
	}
	if !w.granted {
		panic("sim: resumed without grant") // kernel invariant
	}
	// The grant removed w from the queue; no one else references it.
	w.p = nil
	r.freeW = append(r.freeW, w)
}

// Release returns n units to the resource and wakes eligible waiters.
// It may be called from any process or event callback.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d of %q (in use %d)", n, r.name, r.inUse))
	}
	r.account()
	r.inUse -= n
	r.dispatch()
}

// dispatch grants requests strictly in FIFO order: the head waiter blocks
// later (smaller) requests even if those could be satisfied, preventing
// starvation of large requests.
func (r *Resource) dispatch() {
	for r.wHead < len(r.waiters) {
		w := r.waiters[r.wHead]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.waiters[r.wHead] = nil
		r.wHead++
		if r.wHead == len(r.waiters) {
			r.waiters = r.waiters[:0]
			r.wHead = 0
		}
		r.inUse += w.n
		w.granted = true
		r.grants++
		r.waitTotal += r.env.now - w.since
		if w.blocked {
			// The process has yielded: resume it via a fresh event so
			// wakeups stay in deterministic FIFO order.
			r.env.scheduleWake(0, w.p)
		}
		// Otherwise the acquiring process is still running inside
		// Acquire; it sees granted==true and continues inline.
	}
}

// ResourceStats is a snapshot of a resource's accumulated statistics.
type ResourceStats struct {
	Name         string
	Capacity     int
	Grants       int64   // completed acquisitions
	Utilization  float64 // mean fraction of capacity in use
	MeanQueueLen float64 // time-averaged waiter count
	MeanWait     float64 // mean seconds spent queued per grant
	TotalWait    float64 // total seconds spent queued across all grants
	MaxQueueLen  int
}

// Stats returns utilization and queueing statistics accumulated since the
// start of the simulation, evaluated at the current virtual time.
func (r *Resource) Stats() ResourceStats {
	r.account()
	s := ResourceStats{Name: r.name, Capacity: r.capacity, Grants: r.grants, TotalWait: r.waitTotal, MaxQueueLen: r.maxQueue}
	if r.env.now > 0 {
		s.Utilization = r.busyIntegral / (r.env.now * float64(r.capacity))
		s.MeanQueueLen = r.qIntegral / r.env.now
	}
	if r.grants > 0 {
		s.MeanWait = r.waitTotal / float64(r.grants)
	}
	return s
}

// RegisterMetrics registers the resource's busy-time and queue-time
// statistics with the environment's metrics registry under the given
// layer, keyed by the resource's name. No-op when metrics are disabled.
func (r *Resource) RegisterMetrics(layer string) {
	reg := r.env.metrics
	if reg == nil {
		return
	}
	reg.ResourceFunc(layer, r.name, func() metrics.ResourceSample {
		s := r.Stats()
		return metrics.ResourceSample{
			Capacity:     s.Capacity,
			Utilization:  s.Utilization,
			MeanQueueLen: s.MeanQueueLen,
			MaxQueueLen:  s.MaxQueueLen,
			Grants:       s.Grants,
			MeanWaitS:    s.MeanWait,
			TotalWaitS:   s.TotalWait,
		}
	})
}

// Queue is an unbounded FIFO channel between processes: Put never blocks,
// Get blocks the caller until an item is available. Items are delivered to
// getters in arrival order.
type Queue struct {
	env     *Env
	items   []any
	getters []*qGetter
}

type qGetter struct {
	p     *Proc
	item  any
	ready bool
}

// NewQueue creates an empty queue.
func NewQueue(env *Env) *Queue { return &Queue{env: env} }

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Waiting returns the number of blocked getters.
func (q *Queue) Waiting() int { return len(q.getters) }

// Put appends v and wakes the oldest blocked getter, if any.
func (q *Queue) Put(v any) {
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.item = v
		g.ready = true
		q.env.scheduleWake(0, g.p)
		return
	}
	q.items = append(q.items, v)
}

// Get blocks p until an item is available and returns it.
func (q *Queue) Get(p *Proc) any {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v
	}
	g := &qGetter{p: p}
	q.getters = append(q.getters, g)
	p.yield()
	if !g.ready {
		panic("sim: queue getter resumed without item")
	}
	return g.item
}

// Signal is a broadcast condition: processes Wait on it and all waiters are
// released by the next Fire. Each Fire releases only the processes that
// were already waiting.
type Signal struct {
	env     *Env
	waiters []*Proc
	fires   int64
}

// NewSignal creates a signal with no waiters.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Fire releases all current waiters in wait order.
func (s *Signal) Fire() {
	s.fires++
	// Fire runs atomically under the kernel (no process can Wait while it
	// executes), so truncating in place is safe and keeps the backing
	// array for the next round of waiters.
	for i, p := range s.waiters {
		s.env.scheduleWake(0, p)
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
}

// Fires returns the number of times Fire has been called.
func (s *Signal) Fires() int64 { return s.fires }

// Waiters returns the number of currently blocked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }
