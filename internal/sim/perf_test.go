package sim

import (
	"bytes"
	"io"
	"os"
	"testing"
)

// The debug event trace (CLOUDMCP_DEBUG_EVENTS=1) must go to stderr:
// stdout carries the CLIs' artifacts, and enabling a diagnostic must not
// corrupt a piped or diffed run. This test runs a simulation busy enough
// to emit trace lines and asserts stdout stays clean while stderr gets
// the trace.
func TestDebugEventsLeaveStdoutClean(t *testing.T) {
	oldDebug, oldEvery := debugEvents, debugEventEvery
	debugEvents, debugEventEvery = true, 10
	defer func() { debugEvents, debugEventEvery = oldDebug, oldEvery }()

	capture := func(f **os.File) (restore func() string) {
		orig := *f
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		*f = w
		done := make(chan string, 1)
		go func() {
			var buf bytes.Buffer
			io.Copy(&buf, r)
			done <- buf.String()
		}()
		return func() string {
			w.Close()
			*f = orig
			return <-done
		}
	}
	restoreOut := capture(&os.Stdout)
	restoreErr := capture(&os.Stderr)

	env := NewEnv()
	var tick func()
	n := 0
	tick = func() {
		if n++; n < 100 {
			env.Schedule(1, tick)
		}
	}
	env.Schedule(1, tick)
	env.Run(Forever)

	stdout := restoreOut()
	stderr := restoreErr()
	if stdout != "" {
		t.Fatalf("debug event trace leaked to stdout: %q", stdout)
	}
	if stderr == "" {
		t.Fatal("expected a debug event trace on stderr, got none")
	}
}

// The kernel's steady-state scheduling paths must not allocate: events
// are pooled, wakeups carry the process on the event instead of a
// closure, and resource waiters are recycled. These guards pin the
// allocation count at zero so a regression fails loudly.

func TestScheduleAllocFree(t *testing.T) {
	env := NewEnv()
	fn := func() {}
	// Warm the pool: one event is allocated on first use, then recycled.
	env.Schedule(0, fn)
	env.Run(Forever)
	allocs := testing.AllocsPerRun(100, func() {
		env.Schedule(0, fn)
		env.Run(Forever)
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Run steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestSleepChainAllocFree(t *testing.T) {
	// A process sleeping in a loop is the kernel's most common block/
	// resume pattern; after warmup each iteration must be allocation-free
	// (the wakeup rides the pooled event's Proc field, not a closure).
	env := NewEnv()
	var allocs float64
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(1) // warm the event pool
		allocs = testing.AllocsPerRun(100, func() { p.Sleep(1) })
	})
	env.Run(Forever)
	if allocs != 0 {
		t.Fatalf("Sleep steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestResourceAcquireAllocFree(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 2)
	// Warm up: first acquire allocates the waiter record and queue array.
	env.Go("warm", func(p *Proc) {
		res.Acquire(p, 1)
		res.Release(1)
	})
	env.Run(Forever)
	var allocs float64
	env.Go("measure", func(p *Proc) {
		allocs = testing.AllocsPerRun(100, func() {
			res.Acquire(p, 1)
			res.Release(1)
		})
	})
	env.Run(Forever)
	if allocs != 0 {
		t.Fatalf("uncontended Acquire/Release allocates %.1f/op, want 0", allocs)
	}
}

// Same-time FIFO queue: ordering must match the heap exactly when events
// at the current instant interleave with earlier-scheduled events at the
// same timestamp, including cancellations.
func TestNowQueueInterleavesWithHeap(t *testing.T) {
	env := NewEnv()
	var got []int
	// Heap events at t=5, seq 0,1,2.
	for i := 0; i < 3; i++ {
		i := i
		env.Schedule(5, func() {
			got = append(got, i)
			// Schedule same-time events from within t=5: they must run
			// after every already-scheduled t=5 event, in FIFO order.
			env.Schedule(0, func() { got = append(got, 10+i) })
		})
	}
	env.Run(Forever)
	want := []int{0, 1, 2, 10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestNowQueueStop(t *testing.T) {
	env := NewEnv()
	var got []int
	env.Schedule(1, func() {
		a := env.Schedule(0, func() { got = append(got, 1) })
		env.Schedule(0, func() { got = append(got, 2) })
		if !a.Stop() {
			t.Error("Stop on same-time event = false")
		}
		if a.Stop() {
			t.Error("second Stop = true")
		}
	})
	env.Run(Forever)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
	if env.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", env.Pending())
	}
}

// Benchmarks for the kernel hot paths; run with
//
//	go test -bench=Kernel -benchmem ./internal/sim
//
// and compare against BENCH_kernel.json (emitted by mcpbench
// -bench-kernel). The allocs/op columns should stay at 0 for the
// steady-state paths.

func BenchmarkKernelScheduleFire(b *testing.B) {
	env := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Schedule(0, fn)
		env.Run(Forever)
	}
}

func BenchmarkKernelTimerStop(b *testing.B) {
	env := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := env.Schedule(1, fn)
		tm.Stop()
	}
}

func BenchmarkKernelHeapSchedule(b *testing.B) {
	// Future-dated events exercise the heap rather than the same-time
	// queue: schedule a ladder, then drain.
	env := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Schedule(1+Time(i%16), fn)
		if i%16 == 15 {
			env.Run(Forever)
		}
	}
	env.Run(Forever)
}

func BenchmarkKernelProcessPingPong(b *testing.B) {
	// Two processes alternating on a queue: the classic block/resume
	// cycle, two goroutine handoffs plus one wakeup event per Put/Get.
	env := NewEnv()
	q := NewQueue(env)
	stop := false
	env.Go("producer", func(p *Proc) {
		for !stop {
			q.Put(1)
			p.Sleep(1)
		}
	})
	var n int
	env.Go("consumer", func(p *Proc) {
		for !stop {
			q.Get(p)
			n++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Schedule(Time(b.N), func() { stop = true; env.Stop() })
	env.Run(Forever)
	b.StopTimer()
	// Let the blocked processes drain so the env's goroutines exit.
	stop = true
	q.Put(1)
	env.Run(Forever)
}

func BenchmarkKernelResourceCycle(b *testing.B) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	b.ReportAllocs()
	var done bool
	env.Go("worker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			res.Acquire(p, 1)
			p.Sleep(1)
			res.Release(1)
		}
		done = true
	})
	b.ResetTimer()
	env.Run(Forever)
	if !done {
		b.Fatal("worker did not finish")
	}
}
