package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv()
	var got []int
	env.Schedule(3, func() { got = append(got, 3) })
	env.Schedule(1, func() { got = append(got, 1) })
	env.Schedule(2, func() { got = append(got, 2) })
	end := env.Run(Forever)
	if end != 3 {
		t.Fatalf("end time = %v, want 3", end)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	env := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(5, func() { got = append(got, i) })
	}
	env.Run(Forever)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("simultaneous events not FIFO: %v", got)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	env := NewEnv()
	fired := false
	env.Schedule(10, func() { fired = true })
	end := env.Run(4)
	if end != 4 || fired {
		t.Fatalf("end=%v fired=%v, want end=4 fired=false", end, fired)
	}
	// Resume: the event is still pending.
	end = env.Run(Forever)
	if end != 10 || !fired {
		t.Fatalf("after resume end=%v fired=%v", end, fired)
	}
}

func TestEventAtExactHorizonRuns(t *testing.T) {
	env := NewEnv()
	fired := false
	env.Schedule(7, func() { fired = true })
	env.Run(7)
	if !fired {
		t.Fatal("event at exact horizon did not run")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	env := NewEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	env.Schedule(-1, func() {})
}

func TestTimerStop(t *testing.T) {
	env := NewEnv()
	fired := false
	tm := env.Schedule(5, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	env.Run(Forever)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if env.Pending() != 0 {
		t.Fatalf("pending = %d", env.Pending())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	env := NewEnv()
	tm := env.Schedule(1, func() {})
	env.Run(Forever)
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestEnvStop(t *testing.T) {
	env := NewEnv()
	var count int
	for i := 1; i <= 5; i++ {
		env.Schedule(Time(i), func() {
			count++
			if count == 2 {
				env.Stop()
			}
		})
	}
	end := env.Run(Forever)
	if count != 2 || end != 2 {
		t.Fatalf("count=%d end=%v, want 2, 2", count, end)
	}
}

func TestProcSleep(t *testing.T) {
	env := NewEnv()
	var wakes []Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(1)
		wakes = append(wakes, p.Now())
		p.Sleep(2.5)
		wakes = append(wakes, p.Now())
	})
	env.Run(Forever)
	if len(wakes) != 2 || wakes[0] != 1 || wakes[1] != 3.5 {
		t.Fatalf("wakes = %v", wakes)
	}
	if env.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", env.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	env := NewEnv()
	var trace []string
	spawn := func(name string, period Time, n int) {
		env.Go(name, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(period)
				trace = append(trace, name)
			}
		})
	}
	spawn("a", 2, 3) // wakes at 2,4,6
	spawn("b", 3, 2) // wakes at 3,6
	env.Run(Forever)
	// At t=6 both wake; b's wake event was scheduled earlier (t=3 vs t=4),
	// so ties break in schedule order.
	want := []string{"a", "b", "a", "b", "a"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		env.Go("worker", func(p *Proc) {
			res.Acquire(p, 1)
			p.Sleep(10)
			res.Release(1)
			done = append(done, p.Now())
		})
	}
	env.Run(Forever)
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		env.Go("worker", func(p *Proc) {
			res.Acquire(p, 1)
			p.Sleep(10)
			res.Release(1)
			done = append(done, p.Now())
		})
	}
	env.Run(Forever)
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	// A large request at the head must not be bypassed by later small ones.
	env := NewEnv()
	res := NewResource(env, "r", 2)
	var order []string
	env.Go("small0", func(p *Proc) {
		res.Acquire(p, 1)
		p.Sleep(5)
		res.Release(1)
		order = append(order, "small0")
	})
	env.Go("big", func(p *Proc) {
		p.Sleep(1) // arrive second
		res.Acquire(p, 2)
		order = append(order, "big")
		res.Release(2)
	})
	env.Go("small1", func(p *Proc) {
		p.Sleep(2) // arrive third; one unit is free but big is ahead
		res.Acquire(p, 1)
		order = append(order, "small1")
		res.Release(1)
	})
	env.Run(Forever)
	want := []string{"small0", "big", "small1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceGrantAtSameInstantAsBlock(t *testing.T) {
	// Regression: a waiter that blocks and is granted at the same virtual
	// time (release at t=0) must still be woken.
	env := NewEnv()
	res := NewResource(env, "r", 1)
	ran := false
	env.Go("holder", func(p *Proc) {
		res.Acquire(p, 1)
		// Release at the same instant the waiter blocks.
		res.Release(1)
	})
	env.Go("waiter", func(p *Proc) {
		res.Acquire(p, 1)
		ran = true
		res.Release(1)
	})
	env.Run(Forever)
	if !ran {
		t.Fatal("same-instant grant lost")
	}
}

func TestResourceStats(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	for i := 0; i < 2; i++ {
		env.Go("w", func(p *Proc) {
			res.Acquire(p, 1)
			p.Sleep(10)
			res.Release(1)
		})
	}
	env.Run(Forever) // ends at t=20, busy the whole time
	s := res.Stats()
	if s.Grants != 2 {
		t.Fatalf("grants = %d", s.Grants)
	}
	if s.Utilization < 0.99 || s.Utilization > 1.01 {
		t.Fatalf("utilization = %v, want ~1", s.Utilization)
	}
	// Second worker waited 10s; mean wait = 5s.
	if s.MeanWait < 4.99 || s.MeanWait > 5.01 {
		t.Fatalf("mean wait = %v, want ~5", s.MeanWait)
	}
	if s.MaxQueueLen != 1 {
		t.Fatalf("max queue = %d", s.MaxQueueLen)
	}
}

func TestResourceAcquirePanics(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 2)
	panicked := false
	env.Go("w", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		res.Acquire(p, 3)
	})
	env.Run(Forever)
	if !panicked {
		t.Fatal("over-capacity acquire did not panic")
	}
}

func TestReleaseTooManyPanics(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.Release(1)
}

func TestQueuePutGet(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	var got []int
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1)
			q.Put(i)
		}
	})
	env.Run(Forever)
	for i, v := range []int{0, 1, 2} {
		if got[i] != v {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestQueueBufferedBeforeGet(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	q.Put("x")
	q.Put("y")
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	var got []string
	env.Go("c", func(p *Proc) {
		got = append(got, q.Get(p).(string), q.Get(p).(string))
	})
	env.Run(Forever)
	if got[0] != "x" || got[1] != "y" {
		t.Fatalf("got = %v", got)
	}
}

func TestQueueMultipleGettersFIFO(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	var got []string
	for _, name := range []string{"g0", "g1", "g2"} {
		name := name
		env.Go(name, func(p *Proc) {
			v := q.Get(p).(int)
			got = append(got, name+":"+string(rune('0'+v)))
		})
	}
	env.Go("producer", func(p *Proc) {
		p.Sleep(1)
		for i := 0; i < 3; i++ {
			q.Put(i)
		}
	})
	env.Run(Forever)
	want := []string{"g0:0", "g1:1", "g2:2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got = %v, want %v", got, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	var woke int
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(5)
		if s.Waiters() != 3 {
			t.Errorf("waiters = %d", s.Waiters())
		}
		s.Fire()
	})
	env.Run(Forever)
	if woke != 3 {
		t.Fatalf("woke = %d", woke)
	}
	if s.Fires() != 1 {
		t.Fatalf("fires = %d", s.Fires())
	}
}

func TestSignalOnlyReleasesCurrentWaiters(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	var woke []string
	env.Go("early", func(p *Proc) {
		s.Wait(p)
		woke = append(woke, "early")
	})
	env.Go("firer", func(p *Proc) {
		p.Sleep(1)
		s.Fire()
	})
	env.Go("late", func(p *Proc) {
		p.Sleep(2) // waits after the fire; must stay blocked
		s.Wait(p)
		woke = append(woke, "late")
	})
	env.Run(Forever)
	if len(woke) != 1 || woke[0] != "early" {
		t.Fatalf("woke = %v", woke)
	}
	if s.Waiters() != 1 {
		t.Fatalf("waiters = %d", s.Waiters())
	}
}

// TestDeterminism runs a randomized mixed scenario twice with the same seed
// and requires identical traces.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		env := NewEnv()
		res := NewResource(env, "r", 3)
		q := NewQueue(env)
		rng := rand.New(rand.NewSource(seed))
		var trace []Time
		for i := 0; i < 20; i++ {
			d := rng.Float64() * 10
			env.Go("p", func(p *Proc) {
				p.Sleep(d)
				res.Acquire(p, 1)
				p.Sleep(1)
				res.Release(1)
				q.Put(p.Now())
			})
		}
		env.Go("drain", func(p *Proc) {
			for i := 0; i < 20; i++ {
				trace = append(trace, q.Get(p).(Time))
			}
		})
		env.Run(Forever)
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the final clock equals the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		env := NewEnv()
		var fired []Time
		var max Time
		for _, r := range raw {
			d := Time(r) / 7
			if d > max {
				max = d
			}
			env.Schedule(d, func() { fired = append(fired, env.Now()) })
		}
		end := env.Run(Forever)
		if len(raw) > 0 && end != max {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-c resource with n unit holders of service time s
// completes the last one at ceil(n/c)*s.
func TestPropertyResourceMakespan(t *testing.T) {
	f := func(n8, c8 uint8) bool {
		n := int(n8%40) + 1
		c := int(c8%8) + 1
		env := NewEnv()
		res := NewResource(env, "r", c)
		for i := 0; i < n; i++ {
			env.Go("w", func(p *Proc) {
				res.Acquire(p, 1)
				p.Sleep(10)
				res.Release(1)
			})
		}
		end := env.Run(Forever)
		waves := (n + c - 1) / c
		return end == Time(waves)*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerWhen(t *testing.T) {
	env := NewEnv()
	tm := env.Schedule(12.5, func() {})
	if at, ok := tm.When(); !ok || at != 12.5 {
		t.Fatalf("When = %v, %v; want 12.5, true", at, ok)
	}
	env.Run(Forever)
	if at, ok := tm.When(); ok {
		t.Fatalf("When after firing = %v, %v; want ok=false", at, ok)
	}
}

func TestTimerWhenAfterStop(t *testing.T) {
	env := NewEnv()
	tm := env.Schedule(5, func() {})
	if !tm.Stop() {
		t.Fatal("Stop = false on a pending timer")
	}
	if at, ok := tm.When(); ok {
		t.Fatalf("When after Stop = %v, %v; want ok=false", at, ok)
	}
	var zero Timer
	if _, ok := zero.When(); ok {
		t.Fatal("zero Timer reports a pending event")
	}
	if zero.Stop() {
		t.Fatal("zero Timer Stop = true")
	}
}

// A Timer must not cancel the recycled incarnation of its fired event:
// after the event fires and the pooled record is reused by a later
// Schedule, Stop on the stale handle has to report false and leave the
// new event in place.
func TestTimerStaleAfterRecycle(t *testing.T) {
	env := NewEnv()
	first := env.Schedule(1, func() {})
	env.Run(2)
	fired := false
	env.Schedule(1, func() { fired = true }) // reuses the pooled event
	if first.Stop() {
		t.Fatal("stale Stop cancelled a recycled event")
	}
	env.Run(Forever)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestRunReentrancyPanics(t *testing.T) {
	env := NewEnv()
	panicked := false
	env.Schedule(1, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		env.Run(10)
	})
	env.Run(Forever)
	if !panicked {
		t.Fatal("re-entrant Run did not panic")
	}
}

func TestQueueWaitingCount(t *testing.T) {
	env := NewEnv()
	q := NewQueue(env)
	for i := 0; i < 3; i++ {
		env.Go("g", func(p *Proc) { q.Get(p) })
	}
	env.Go("check", func(p *Proc) {
		p.Sleep(1)
		if q.Waiting() != 3 {
			t.Errorf("waiting = %d", q.Waiting())
		}
		for i := 0; i < 3; i++ {
			q.Put(i)
		}
	})
	env.Run(Forever)
	if q.Waiting() != 0 || q.Len() != 0 {
		t.Fatalf("end state: waiting=%d len=%d", q.Waiting(), q.Len())
	}
}

func TestProcNameAndEnv(t *testing.T) {
	env := NewEnv()
	env.Go("worker-7", func(p *Proc) {
		if p.Name() != "worker-7" {
			t.Errorf("name = %q", p.Name())
		}
		if p.Env() != env {
			t.Error("env accessor wrong")
		}
	})
	env.Run(Forever)
}

func TestNegativeSleepPanics(t *testing.T) {
	env := NewEnv()
	panicked := false
	env.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	env.Run(Forever)
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestResourceAccessors(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, "slots", 3)
	if r.Name() != "slots" || r.Capacity() != 3 || r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatal("fresh resource accessors wrong")
	}
	env.Go("w", func(p *Proc) {
		r.Acquire(p, 2)
		if r.InUse() != 2 {
			t.Errorf("in use = %d", r.InUse())
		}
		r.Release(2)
	})
	env.Run(Forever)
}

func TestZeroCapacityResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewEnv(), "bad", 0)
}

// Property: interleaved sleeps from many procs always end the run at the
// max cumulative sleep, and the clock never goes backwards.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		env := NewEnv()
		prev := Time(0)
		monotone := true
		var max Time
		for _, r := range raw {
			total := Time(0)
			steps := int(r%4) + 1
			d := Time(r%17) + 1
			for i := 0; i < steps; i++ {
				total += d
			}
			if total > max {
				max = total
			}
			env.Go("p", func(p *Proc) {
				for i := 0; i < steps; i++ {
					p.Sleep(d)
					if p.Now() < prev {
						monotone = false
					}
					prev = p.Now()
				}
			})
		}
		end := env.Run(Forever)
		return monotone && end == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
