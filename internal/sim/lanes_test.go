package sim

// Kernel-level tests for the per-lane event lanes: execution order must
// be identical to the single-heap kernel at every lane and worker
// count, barriers must not starve when a lane is event-free, and
// timers must cancel cleanly out of cross-lane mailboxes.

import (
	"fmt"
	"testing"

	"cloudmcp/internal/rng"
)

// laneWorkload drives a deterministic mixed workload — pinned procs,
// cross-lane future timers, zero-delay wake chains, resource contention
// across lanes — and records the exact firing order. lanes <= 1 runs
// the single-heap kernel.
func laneWorkload(t *testing.T, lanes, workers int) []string {
	t.Helper()
	env := NewEnv()
	if lanes > 1 {
		if err := env.ConfigureLanes(LaneConfig{Lanes: lanes, WindowS: 0.05, Workers: workers}); err != nil {
			t.Fatal(err)
		}
	}
	shared := NewResource(env, "shared", 2)
	var order []string
	stream := rng.Derive(7, "lanes.workload")
	const procs = 12
	for i := 0; i < procs; i++ {
		i := i
		s := rng.Derive(7, fmt.Sprintf("lanes.p%d", i))
		env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			if lanes > 1 {
				p.SetLane(int32(1 + i%(lanes-1)))
			}
			for step := 0; step < 40; step++ {
				p.Sleep(s.Float64() * 0.3) // crosses many windows
				order = append(order, fmt.Sprintf("p%d.s%d@%.9f", i, step, p.Now()))
				if step%5 == 0 {
					// Shared-resource acquire: a cross-lane interaction.
					shared.Acquire(p, 1)
					p.Sleep(0.01)
					shared.Release(1)
				}
				if step%7 == 0 {
					// Future-dated cross-lane callback (rides a mailbox
					// when it lands beyond the window).
					at := 0.06 + s.Float64()*0.2
					env.Schedule(at, func() {
						order = append(order, fmt.Sprintf("cb%d.%d@%.9f", i, step, env.Now()))
					})
				}
			}
		})
	}
	// A timer churn proc on lane 0 cancels half its timers, exercising
	// mailbox cancellation from the other side.
	env.Go("churn", func(p *Proc) {
		for k := 0; k < 60; k++ {
			tm := env.Schedule(0.11, func() { order = append(order, fmt.Sprintf("tick@%.9f", env.Now())) })
			p.Sleep(0.03)
			if stream.Float64() < 0.5 {
				tm.Stop()
			}
			p.Sleep(0.05)
		}
	})
	end := env.Run(12)
	if env.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", env.LiveProcs())
	}
	order = append(order, fmt.Sprintf("end@%.9f", end))
	return order
}

// TestLaneOrderIdenticalAcrossCounts pins the identity invariant at the
// kernel level: the exact event firing order is the same for the
// single-heap kernel and every lane × worker combination.
func TestLaneOrderIdenticalAcrossCounts(t *testing.T) {
	base := laneWorkload(t, 1, 1)
	if len(base) < 500 {
		t.Fatalf("workload too small to be meaningful: %d records", len(base))
	}
	for _, lanes := range []int{2, 4, 7} {
		for _, workers := range []int{1, 8} {
			got := laneWorkload(t, lanes, workers)
			if len(got) != len(base) {
				t.Fatalf("lanes=%d workers=%d: %d records, want %d", lanes, workers, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("lanes=%d workers=%d diverges at %d: %q vs %q", lanes, workers, i, got[i], base[i])
				}
			}
		}
	}
}

// TestLaneBarrierStarvation drives one busy lane while another lane has
// no events for many hundreds of windows: the barrier loop must skip
// empty windows in one step (not spin per boundary) and a cross-lane
// event into the idle lane must still fire at its exact due time.
func TestLaneBarrierStarvation(t *testing.T) {
	env := NewEnv()
	if err := env.ConfigureLanes(LaneConfig{Lanes: 3, WindowS: 0.05, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	var busy int
	env.Go("busy", func(p *Proc) {
		p.SetLane(1)
		for p.Now() < 100 {
			p.Sleep(0.01)
			busy++
		}
	})
	// Lane 2 stays event-free for ~2000 windows, then receives one
	// cross-lane wakeup near the end.
	var idleAt Time = -1
	env.Go("idle", func(p *Proc) {
		p.SetLane(2)
		p.Sleep(99.5) // scheduled from lane 2 at t=0 — lane-local
		idleAt = p.Now()
	})
	end := env.Run(100)
	if end != 100 {
		t.Fatalf("end = %v", end)
	}
	if busy < 9000 {
		t.Fatalf("busy lane starved: %d iterations", busy)
	}
	if idleAt != 99.5 {
		t.Fatalf("idle lane wake at %v, want 99.5", idleAt)
	}
	st := env.LaneStats()
	if len(st) != 3 {
		t.Fatalf("lane stats: %+v", st)
	}
	if st[1].Executed == 0 || st[2].Executed == 0 {
		t.Fatalf("lanes idle: %+v", st)
	}
}

// TestLaneMailboxTimerStop cancels a timer while its event is parked in
// a cross-lane mailbox and checks it never fires, Pending stays
// balanced, and the slot is reclaimed at the next barrier.
func TestLaneMailboxTimerStop(t *testing.T) {
	env := NewEnv()
	if err := env.ConfigureLanes(LaneConfig{Lanes: 3, WindowS: 0.05, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	var tm Timer
	env.Go("a", func(p *Proc) {
		p.SetLane(1)
		p.Sleep(0.001) // enter a window so windowEnd is live
		// Cross-lane: scheduled from lane 1 for a lane-2 proc far in the
		// future — must ride lane 2's mailbox.
		env.Go("b", func(q *Proc) {
			q.SetLane(2)
			q.Sleep(0.001)
		})
		tm = env.Schedule(10, func() { fired++ })
		p.Sleep(0.002)
		if !tm.Stop() {
			t.Error("Stop returned false for a parked event")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
		if _, ok := tm.When(); ok {
			t.Error("When reports a cancelled event")
		}
	})
	env.Run(20)
	if fired != 0 {
		t.Fatalf("cancelled mailbox event fired %d times", fired)
	}
	if got := env.Pending(); got != 0 {
		t.Fatalf("pending = %d after drain", got)
	}
}

// TestLaneHorizonEvent pins the final-window edge case: an event landing
// exactly at the Run horizon — scheduled cross-lane during the last
// stretch — must fire, exactly as the single-heap kernel fires events
// at == until.
func TestLaneHorizonEvent(t *testing.T) {
	env := NewEnv()
	if err := env.ConfigureLanes(LaneConfig{Lanes: 2, WindowS: 0.05, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	hit := false
	env.Go("a", func(p *Proc) {
		p.SetLane(1)
		p.Sleep(0.9)
		env.Go("b", func(q *Proc) {
			q.Sleep(0.1) // lands exactly at the horizon
			hit = true
		})
	})
	if end := env.Run(1.0); end != 1.0 {
		t.Fatalf("end = %v", end)
	}
	if !hit {
		t.Fatal("event at the horizon did not fire")
	}
}

// TestConfigureLanesValidation covers the error paths.
func TestConfigureLanesValidation(t *testing.T) {
	env := NewEnv()
	if err := env.ConfigureLanes(LaneConfig{Lanes: -1}); err == nil {
		t.Fatal("negative lanes accepted")
	}
	if err := env.ConfigureLanes(LaneConfig{Lanes: 2, WindowS: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
	if err := env.ConfigureLanes(LaneConfig{Lanes: 0}); err != nil {
		t.Fatalf("lanes=0 should be a no-op: %v", err)
	}
	if env.LaneCount() != 1 {
		t.Fatalf("lane count %d after no-op", env.LaneCount())
	}
	if err := env.ConfigureLanes(LaneConfig{Lanes: 4}); err != nil {
		t.Fatal(err)
	}
	if env.LaneCount() != 4 {
		t.Fatalf("lane count %d", env.LaneCount())
	}
}
