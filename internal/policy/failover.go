package policy

import "cloudmcp/internal/inventory"

// failoverFits reports whether h can host a restarted vm: in service,
// not the (failed) source host, with free memory for the VM and free
// CPU for the reservation it takes back on power-on.
func failoverFits(h *inventory.Host, vm *inventory.VM) bool {
	return h.ID != vm.HostID && h.InService() &&
		h.FreeMemMB() >= vm.MemMB &&
		h.FreeCPUMHz() >= inventory.CPUReservationMHz(vm.CPUs)
}

// mostFreeFailover is the default: restart on the surviving in-service
// host with the most free memory that fits the VM and its CPU
// reservation — the pre-extraction ha.pickTarget, now answered by the
// capacity index in O(log hosts).
type mostFreeFailover struct{}

// DefaultFailover returns the greedy most-free failover policy.
func DefaultFailover() FailoverPolicy { return mostFreeFailover{} }

func (mostFreeFailover) Name() string { return "most-free" }

func (mostFreeFailover) PickTarget(inv *inventory.Inventory, vm *inventory.VM) *inventory.Host {
	return inv.BestHostExcluding(vm.HostID, vm.MemMB, inventory.CPUReservationMHz(vm.CPUs))
}

// packFailover restarts onto the least-free fitting survivor,
// concentrating the storm on already-loaded hosts to keep the rest
// free for foreground placement.
type packFailover struct{}

// PackFailover returns the consolidating failover policy.
func PackFailover() FailoverPolicy { return packFailover{} }

func (packFailover) Name() string { return "pack" }

func (packFailover) PickTarget(inv *inventory.Inventory, vm *inventory.VM) *inventory.Host {
	var best *inventory.Host
	for _, id := range inv.Hosts() {
		h := inv.Host(id)
		if !failoverFits(h, vm) {
			continue
		}
		if best == nil || h.FreeMemMB() < best.FreeMemMB() {
			best = h
		}
	}
	return best
}

// spreadFailover restarts onto the fitting survivor carrying the
// fewest VMs, leveling the restart storm's power-on fan-out across
// hosts (most free memory breaks ties).
type spreadFailover struct{}

// SpreadFailover returns the load-spreading failover policy.
func SpreadFailover() FailoverPolicy { return spreadFailover{} }

func (spreadFailover) Name() string { return "spread" }

func (spreadFailover) PickTarget(inv *inventory.Inventory, vm *inventory.VM) *inventory.Host {
	var best *inventory.Host
	for _, id := range inv.Hosts() {
		h := inv.Host(id)
		if !failoverFits(h, vm) {
			continue
		}
		if best == nil || len(h.VMs) < len(best.VMs) ||
			(len(h.VMs) == len(best.VMs) && h.FreeMemMB() > best.FreeMemMB()) {
			best = h
		}
	}
	return best
}
