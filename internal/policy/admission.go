package policy

// fixedAdmission is the default: the configured base limit, untouched.
type fixedAdmission struct{}

// FixedAdmission returns the identity admission policy.
func FixedAdmission() AdmissionPolicy { return fixedAdmission{} }

func (fixedAdmission) Name() string { return "fixed" }

func (fixedAdmission) MaxInFlight(base, hosts, shards int) int { return base }

// conservativeAdmission halves the base limit: admit less, queue at
// the door instead of inside the plane — the classic latency-for-
// throughput admission trade.
type conservativeAdmission struct{}

// ConservativeAdmission returns the half-base admission policy.
func ConservativeAdmission() AdmissionPolicy { return conservativeAdmission{} }

func (conservativeAdmission) Name() string { return "conservative" }

func (conservativeAdmission) MaxInFlight(base, hosts, shards int) int {
	if base/2 < 1 {
		return 1
	}
	return base / 2
}

// perHostAdmission scales the limit with the deployment: two in-flight
// operations per host per shard, floored at 8 — small fleets admit
// less than the fixed base, big fleets admit more.
type perHostAdmission struct{}

// PerHostAdmission returns the topology-scaled admission policy.
func PerHostAdmission() AdmissionPolicy { return perHostAdmission{} }

func (perHostAdmission) Name() string { return "per-host" }

func (perHostAdmission) MaxInFlight(base, hosts, shards int) int {
	if shards < 1 {
		shards = 1
	}
	limit := 2 * (hosts / shards)
	if limit < 8 {
		limit = 8
	}
	return limit
}
