package policy

import (
	"strings"
	"testing"

	"cloudmcp/internal/inventory"
)

func buildInv(t *testing.T, hostMemMB ...int) (*inventory.Inventory, []*inventory.Host, *inventory.Datastore) {
	t.Helper()
	inv := inventory.New()
	dc := inv.AddDatacenter("dc")
	cl := inv.AddCluster(dc, "cl")
	var hosts []*inventory.Host
	for _, mem := range hostMemMB {
		hosts = append(hosts, inv.AddHost(cl, "h", 40000, mem))
	}
	ds := inv.AddDatastore(dc, "d", 1000, 100)
	return inv, hosts, ds
}

func addVM(t *testing.T, inv *inventory.Inventory, h *inventory.Host, ds *inventory.Datastore, memMB int) *inventory.VM {
	t.Helper()
	vm, err := inv.AddVM("vm", h, ds, 1, memMB, 1)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestNamedResolvesEverySet(t *testing.T) {
	for _, name := range Names() {
		s, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Named(%q).Name = %q", name, s.Name)
		}
		if s.Place == nil || s.Move == nil || s.Failover == nil || s.Admission == nil ||
			s.Retry.MaxAttempts < 1 {
			t.Fatalf("Named(%q) has a zero axis: %+v", name, s)
		}
	}
	if s, err := Named(""); err != nil || s.Name != "default" {
		t.Fatalf(`Named("") = %+v, %v; want the default set`, s, err)
	}
	if _, err := Named("nope"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("Named(nope) error = %v", err)
	}
}

func TestDefaultRetryMirrorsMgmtDefault(t *testing.T) {
	// mgmt.DefaultRetryPolicy is {4 attempts, 1 s base, 2x, 25% jitter,
	// 600 s deadline}; the identity contract needs the fixed spec to
	// match it field-for-field (core translates one into the other).
	s := FixedRetry()
	if s.MaxAttempts != 4 || s.BaseBackoffS != 1 || s.Multiplier != 2 ||
		s.Jitter != 0.25 || s.DeadlineS != 600 || s.Adaptive {
		t.Fatalf("FixedRetry() = %+v", s)
	}
}

func TestPlacementPoliciesDiverge(t *testing.T) {
	inv, hosts, ds := buildInv(t, 65536, 65536, 65536)
	addVM(t, inv, hosts[1], ds, 4096) // h1 least free, still fits
	addVM(t, inv, hosts[2], ds, 2048)
	// most-free picks the untouched h0; binpack the fullest fitting h1;
	// spread the fewest-VMs h0 (0 VMs, ties broken by free memory).
	if h := DefaultPlacement().BestHost(inv, 1024, -1); h != hosts[0] {
		t.Fatalf("most-free = %v, want h0", h)
	}
	if h := BinpackPlacement().BestHost(inv, 1024, -1); h != hosts[1] {
		t.Fatalf("binpack = %v, want h1", h)
	}
	if h := SpreadPlacement().BestHost(inv, 1024, -1); h != hosts[0] {
		t.Fatalf("spread = %v, want h0", h)
	}
	// A memory ask only the empty host fits forces agreement.
	if h := BinpackPlacement().BestHost(inv, 65536, -1); h != hosts[0] {
		t.Fatalf("binpack(65536) = %v, want h0", h)
	}
	// Group filtering: restrict to a group that holds only h1.
	inv.SetHostGroup(hosts[1].ID, 7)
	if h := BinpackPlacement().BestHost(inv, 1024, 7); h != hosts[1] {
		t.Fatalf("binpack group 7 = %v, want h1", h)
	}
	if h := SpreadPlacement().BestHost(inv, 1024, 3); h != nil {
		t.Fatalf("spread empty group = %v, want nil", h)
	}
}

func TestMovePoliciesDiverge(t *testing.T) {
	inv, hosts, ds := buildInv(t, 65536, 65536)
	hi, lo := hosts[0], hosts[1]
	small := addVM(t, inv, hi, ds, 2048)
	big := addVM(t, inv, hi, ds, 8192)
	addVM(t, inv, hi, ds, 4096)
	if vm := DefaultMove().Pick(inv, hi, lo); vm != big {
		t.Fatalf("biggest-fit = %v, want the 8 GB VM", vm)
	}
	if vm := SmallestFitMove().Pick(inv, hi, lo); vm != small {
		t.Fatalf("smallest-fit = %v, want the 2 GB VM", vm)
	}
	// Band: hi util = 14336/65536, lo = 0; midpoint ≈ 10.9% → the 8 GB
	// move lands lo at 12.5%, closer than 4 GB (6.3%) or 2 GB (3.1%).
	if vm := BandMove().Pick(inv, hi, lo); vm != big {
		t.Fatalf("band = %v, want the 8 GB VM", vm)
	}
	// Nothing admissible when lo is hotter than hi.
	empty, loaded := hosts[1], hosts[0]
	if vm := DefaultMove().Pick(inv, empty, loaded); vm != nil {
		t.Fatalf("move off empty host = %v, want nil", vm)
	}
}

func TestFailoverPoliciesDiverge(t *testing.T) {
	inv, hosts, ds := buildInv(t, 65536, 65536, 65536)
	vm := addVM(t, inv, hosts[0], ds, 2048)
	addVM(t, inv, hosts[1], ds, 4096) // h1 fullest fitting survivor
	if h := DefaultFailover().PickTarget(inv, vm); h != hosts[2] {
		t.Fatalf("most-free = %v, want the empty h2", h)
	}
	if h := PackFailover().PickTarget(inv, vm); h != hosts[1] {
		t.Fatalf("pack = %v, want the loaded h1", h)
	}
	if h := SpreadFailover().PickTarget(inv, vm); h != hosts[2] {
		t.Fatalf("spread = %v, want the empty h2", h)
	}
	// All policies honor the CPU reservation: power everything on and
	// exhaust h1's CPU so only h2 fits a powered-on restart.
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionPoliciesDiverge(t *testing.T) {
	if got := FixedAdmission().MaxInFlight(96, 32, 1); got != 96 {
		t.Fatalf("fixed = %d", got)
	}
	if got := ConservativeAdmission().MaxInFlight(96, 32, 1); got != 48 {
		t.Fatalf("conservative = %d", got)
	}
	if got := ConservativeAdmission().MaxInFlight(1, 32, 1); got != 1 {
		t.Fatalf("conservative floor = %d", got)
	}
	if got := PerHostAdmission().MaxInFlight(96, 32, 1); got != 64 {
		t.Fatalf("per-host = %d", got)
	}
	if got := PerHostAdmission().MaxInFlight(96, 32, 8); got != 8 {
		t.Fatalf("per-host sharded floor = %d", got)
	}
	if got := PerHostAdmission().MaxInFlight(96, 1024, 2); got != 1024 {
		t.Fatalf("per-host big fleet = %d", got)
	}
}
