package policy

// FixedRetry is the default retry spec, mirroring mgmt's
// DefaultRetryPolicy exactly: 4 attempts, 1 s base backoff doubling
// per attempt, 25% deterministic jitter, 10 min deadline.
func FixedRetry() RetrySpec {
	return RetrySpec{
		Name:        "fixed",
		MaxAttempts: 4, BaseBackoffS: 1, Multiplier: 2,
		Jitter: 0.25, DeadlineS: 600,
	}
}

// EagerRetry retries more and backs off less: 6 attempts from a 200 ms
// base with a gentler 1.5x multiplier — recovers fast from transient
// faults, amplifies load under sustained ones.
func EagerRetry() RetrySpec {
	return RetrySpec{
		Name:        "eager",
		MaxAttempts: 6, BaseBackoffS: 0.2, Multiplier: 1.5,
		Jitter: 0.25, DeadlineS: 600,
	}
}

// AdaptiveRetry is FixedRetry with fault-ratio-scaled backoff: as the
// plane's observed fault ratio climbs, retries stretch their backoff
// proportionally, shedding retry amplification exactly when the plane
// is sickest.
func AdaptiveRetry() RetrySpec {
	s := FixedRetry()
	s.Name, s.Adaptive = "adaptive", true
	return s
}

// NoRetry gives every operation one attempt: the control that shows
// what retries buy (and cost) at a given fault rate.
func NoRetry() RetrySpec {
	return RetrySpec{
		Name:        "none",
		MaxAttempts: 1, BaseBackoffS: 1, Multiplier: 2,
		Jitter: 0, DeadlineS: 600,
	}
}
