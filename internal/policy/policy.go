// Package policy collects the management plane's decision points —
// placement scoring, DRS move selection, HA failover targeting, retry
// shaping, and admission limits — behind small interfaces so competing
// implementations can be raced on the sweep engine (mcpsweep -policy,
// experiment E21) without touching the engines that consume them.
//
// Determinism contract: every policy decides from inventory state and
// its arguments only — no clocks, no randomness — so a policy swap
// changes *which* artifact a run produces, never whether the run is
// reproducible. The default set reproduces the previously hardcoded
// decisions bit-for-bit (pinned by the equivalence suites in drs, ha,
// clouddir, and workload).
package policy

import (
	"fmt"
	"sort"
	"strings"

	"cloudmcp/internal/inventory"
)

// PlacementPolicy scores hosts and datastores for initial placement.
// BestHost with group >= 0 restricts the search to that host group
// (the sharded plane's shard-affinity path); group < 0 means any host.
type PlacementPolicy interface {
	Name() string
	BestHost(inv *inventory.Inventory, memMB, group int) *inventory.Host
	BestDatastore(inv *inventory.Inventory, needGB float64) *inventory.Datastore
}

// MovePolicy picks which VM a DRS pass migrates from the hottest host
// hi to the coolest host lo (nil = nothing movable).
type MovePolicy interface {
	Name() string
	Pick(inv *inventory.Inventory, hi, lo *inventory.Host) *inventory.VM
}

// FailoverPolicy picks the surviving host an HA restart lands on
// (nil = no host fits).
type FailoverPolicy interface {
	Name() string
	PickTarget(inv *inventory.Inventory, vm *inventory.VM) *inventory.Host
}

// RetrySpec parameterizes mgmt's fault-retry loop. It mirrors
// mgmt.RetryPolicy field-for-field (policy cannot import mgmt without
// a cycle); core translates it when faults are enabled.
type RetrySpec struct {
	Name         string
	MaxAttempts  int
	BaseBackoffS float64
	Multiplier   float64
	Jitter       float64
	DeadlineS    float64
	// Adaptive scales backoff by the observed plane-wide fault ratio:
	// the more faults the plane has seen, the longer retries back off.
	Adaptive bool
}

// AdmissionPolicy sizes the plane's in-flight admission limit from the
// configured base and the deployment shape.
type AdmissionPolicy interface {
	Name() string
	MaxInFlight(base, hosts, shards int) int
}

// Set bundles one policy per axis. Zero fields are invalid; build Sets
// with Default or Named.
type Set struct {
	Name      string
	Place     PlacementPolicy
	Move      MovePolicy
	Failover  FailoverPolicy
	Retry     RetrySpec
	Admission AdmissionPolicy
}

// Default returns the identity set: every axis reproduces the
// previously hardcoded behavior bit-for-bit.
func Default() Set {
	return Set{
		Name:      "default",
		Place:     DefaultPlacement(),
		Move:      DefaultMove(),
		Failover:  DefaultFailover(),
		Retry:     FixedRetry(),
		Admission: FixedAdmission(),
	}
}

// namedSets maps tournament names to constructors. Each named set is
// the default set with one axis (or one coherent pair) swapped, so a
// tournament isolates the axis under test.
var namedSets = map[string]func() Set{
	"default": Default,
	"binpack": func() Set {
		s := Default()
		s.Name, s.Place, s.Failover = "binpack", BinpackPlacement(), PackFailover()
		return s
	},
	"spread": func() Set {
		s := Default()
		s.Name, s.Place, s.Failover = "spread", SpreadPlacement(), SpreadFailover()
		return s
	},
	"band": func() Set {
		s := Default()
		s.Name, s.Move = "band", BandMove()
		return s
	},
	"small-moves": func() Set {
		s := Default()
		s.Name, s.Move = "small-moves", SmallestFitMove()
		return s
	},
	"eager-retry": func() Set {
		s := Default()
		s.Name, s.Retry = "eager-retry", EagerRetry()
		return s
	},
	"adaptive-retry": func() Set {
		s := Default()
		s.Name, s.Retry = "adaptive-retry", AdaptiveRetry()
		return s
	},
	"no-retry": func() Set {
		s := Default()
		s.Name, s.Retry = "no-retry", NoRetry()
		return s
	},
	"tight-admission": func() Set {
		s := Default()
		s.Name, s.Admission = "tight-admission", ConservativeAdmission()
		return s
	},
	"host-admission": func() Set {
		s := Default()
		s.Name, s.Admission = "host-admission", PerHostAdmission()
		return s
	},
}

// Named resolves a set by tournament name; "" means default.
func Named(name string) (Set, error) {
	if name == "" {
		return Default(), nil
	}
	mk, ok := namedSets[name]
	if !ok {
		return Set{}, fmt.Errorf("policy: unknown policy %q (want one of %s)",
			name, strings.Join(Names(), ", "))
	}
	return mk(), nil
}

// Names lists the available set names, sorted.
func Names() []string {
	names := make([]string, 0, len(namedSets))
	for n := range namedSets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
