package policy

import "cloudmcp/internal/inventory"

// mostFreePlacement is the default: most free memory / most effective
// free capacity wins, first in creation order on ties — served by the
// capacity indexes, identical to the pre-extraction clouddir calls.
type mostFreePlacement struct{}

// DefaultPlacement returns the greedy most-free placement policy.
func DefaultPlacement() PlacementPolicy { return mostFreePlacement{} }

func (mostFreePlacement) Name() string { return "most-free" }

func (mostFreePlacement) BestHost(inv *inventory.Inventory, memMB, group int) *inventory.Host {
	if group >= 0 {
		return inv.BestHostInGroup(group, memMB)
	}
	return inv.BestHost(memMB)
}

func (mostFreePlacement) BestDatastore(inv *inventory.Inventory, needGB float64) *inventory.Datastore {
	return inv.BestDatastore(needGB)
}

// hostInGroup reports whether id belongs to group (group < 0 matches
// every host), mirroring the group restriction of BestHostInGroup.
func hostInGroup(inv *inventory.Inventory, id inventory.ID, group int) bool {
	if group < 0 {
		return true
	}
	g, ok := inv.HostGroup(id)
	return ok && g == group
}

// binpackPlacement packs: the *least* free host/datastore that still
// fits wins, consolidating load onto few targets and keeping the rest
// empty (favors power-off headroom at the cost of hotspot risk).
type binpackPlacement struct{}

// BinpackPlacement returns the consolidating placement policy.
func BinpackPlacement() PlacementPolicy { return binpackPlacement{} }

func (binpackPlacement) Name() string { return "binpack" }

func (binpackPlacement) BestHost(inv *inventory.Inventory, memMB, group int) *inventory.Host {
	var best *inventory.Host
	for _, id := range inv.Hosts() {
		if !hostInGroup(inv, id, group) {
			continue
		}
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < memMB {
			continue
		}
		if best == nil || h.FreeMemMB() < best.FreeMemMB() {
			best = h
		}
	}
	return best
}

func (binpackPlacement) BestDatastore(inv *inventory.Inventory, needGB float64) *inventory.Datastore {
	var best *inventory.Datastore
	for _, id := range inv.Datastores() {
		d := inv.Datastore(id)
		if inv.EffectiveFreeGB(d) < needGB {
			continue
		}
		if best == nil || inv.EffectiveFreeGB(d) < inv.EffectiveFreeGB(best) {
			best = d
		}
	}
	return best
}

// spreadPlacement spreads: the fitting host carrying the fewest VMs
// wins (most free memory breaks ties), leveling per-host management
// fan-out rather than capacity. Datastores fall back to most-free —
// disk count is not the contended resource there.
type spreadPlacement struct{}

// SpreadPlacement returns the load-spreading placement policy.
func SpreadPlacement() PlacementPolicy { return spreadPlacement{} }

func (spreadPlacement) Name() string { return "spread" }

func (spreadPlacement) BestHost(inv *inventory.Inventory, memMB, group int) *inventory.Host {
	var best *inventory.Host
	for _, id := range inv.Hosts() {
		if !hostInGroup(inv, id, group) {
			continue
		}
		h := inv.Host(id)
		if !h.InService() || h.FreeMemMB() < memMB {
			continue
		}
		if best == nil || len(h.VMs) < len(best.VMs) ||
			(len(h.VMs) == len(best.VMs) && h.FreeMemMB() > best.FreeMemMB()) {
			best = h
		}
	}
	return best
}

func (spreadPlacement) BestDatastore(inv *inventory.Inventory, needGB float64) *inventory.Datastore {
	return inv.BestDatastore(needGB)
}
