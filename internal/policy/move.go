package policy

import "cloudmcp/internal/inventory"

// moveFits reports whether migrating vm from hi to lo is admissible
// under the invariants every move policy shares: vm must be live, fit
// lo's free memory (and CPU reservation if powered on), and must not
// turn lo into a hotspot at least as bad as hi currently is.
func moveFits(vm *inventory.VM, hi, lo *inventory.Host) bool {
	if vm == nil || vm.State == inventory.VMDeleted {
		return false
	}
	if lo.FreeMemMB() < vm.MemMB {
		return false
	}
	if vm.State == inventory.VMPoweredOn && lo.FreeCPUMHz() < inventory.CPUReservationMHz(vm.CPUs) {
		return false
	}
	return float64(lo.UsedMemMB+vm.MemMB)/float64(lo.MemMB) < memUtil(hi)
}

func memUtil(h *inventory.Host) float64 {
	if h.MemMB == 0 {
		return 0
	}
	return float64(h.UsedMemMB) / float64(h.MemMB)
}

// biggestFitMove is the default: the largest-memory admissible VM on
// hi moves (strict >, first in host order on ties) — byte-identical to
// the pre-extraction drs.pickMovable.
type biggestFitMove struct{}

// DefaultMove returns the biggest-fit DRS move policy.
func DefaultMove() MovePolicy { return biggestFitMove{} }

func (biggestFitMove) Name() string { return "biggest-fit" }

func (biggestFitMove) Pick(inv *inventory.Inventory, hi, lo *inventory.Host) *inventory.VM {
	var best *inventory.VM
	for _, id := range hi.VMs {
		vm := inv.VM(id)
		if !moveFits(vm, hi, lo) {
			continue
		}
		if best == nil || vm.MemMB > best.MemMB {
			best = vm
		}
	}
	return best
}

// smallestFitMove migrates the smallest admissible VM: many cheap
// migrations instead of few heavy ones, trading convergence speed for
// per-move copy cost.
type smallestFitMove struct{}

// SmallestFitMove returns the smallest-fit DRS move policy.
func SmallestFitMove() MovePolicy { return smallestFitMove{} }

func (smallestFitMove) Name() string { return "smallest-fit" }

func (smallestFitMove) Pick(inv *inventory.Inventory, hi, lo *inventory.Host) *inventory.VM {
	var best *inventory.VM
	for _, id := range hi.VMs {
		vm := inv.VM(id)
		if !moveFits(vm, hi, lo) {
			continue
		}
		if best == nil || vm.MemMB < best.MemMB {
			best = vm
		}
	}
	return best
}

// bandMove targets the utilization band: it picks the admissible VM
// whose move lands lo's utilization closest to the midpoint between
// hi and lo — one well-sized move instead of repeatedly shipping the
// biggest VM and overshooting.
type bandMove struct{}

// BandMove returns the utilization-band DRS move policy.
func BandMove() MovePolicy { return bandMove{} }

func (bandMove) Name() string { return "band" }

func (bandMove) Pick(inv *inventory.Inventory, hi, lo *inventory.Host) *inventory.VM {
	mid := (memUtil(hi) + memUtil(lo)) / 2
	var best *inventory.VM
	bestDist := 0.0
	for _, id := range hi.VMs {
		vm := inv.VM(id)
		if !moveFits(vm, hi, lo) {
			continue
		}
		after := float64(lo.UsedMemMB+vm.MemMB) / float64(lo.MemMB)
		dist := after - mid
		if dist < 0 {
			dist = -dist
		}
		if best == nil || dist < bestDist {
			best, bestDist = vm, dist
		}
	}
	return best
}
