package mgmt

import (
	"fmt"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/sim"
)

// This file provides the concrete management operations as convenience
// wrappers over Execute: each fixes the lock set, host-agent target, and
// data-plane body for its operation kind. The cloud-director layer and the
// plain-datacenter examples both drive the manager through these.

// ReqCtx carries the request attribution shared by every operation helper:
// the tenant, the original submit time (zero means "now"), and any latency
// already accumulated upstream of the manager (the cloud-director cell
// stage), which is folded into the task's breakdown.
type ReqCtx struct {
	Org    string
	Submit sim.Time
	Pre    ops.Breakdown
}

func (c ReqCtx) apply(req *ops.Request, p *sim.Proc) {
	req.Org = c.Org
	req.Submit = float64(c.Submit)
	if req.Submit == 0 {
		req.Submit = float64(p.Now())
	}
}

// DeployVM provisions a new VM from tpl onto host/ds using the requested
// clone mode. On success the VM is left powered off and returned alongside
// the task; on failure the task carries the error and the VM is nil.
func (m *Manager) DeployVM(p *sim.Proc, name string, tpl *inventory.Template, host *inventory.Host, ds *inventory.Datastore, mode ops.CloneMode, ctx ReqCtx) (*inventory.VM, *Task) {
	req := ops.Request{Kind: ops.KindDeploy, Mode: mode, TemplateID: tpl.ID}
	ctx.apply(&req, p)
	var vm *inventory.VM
	task := m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{host.ID, ds.ID, tpl.ID},
		HostID:      host.ID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			// Reserve capacity first so concurrent deploys cannot both
			// pass a free-space check and then overcommit.
			diskGB := tpl.DiskGB
			if mode == ops.LinkedClone {
				diskGB = m.pool.Policy.DeltaDiskGB
			}
			v, err := m.inv.AddVM(name, host, ds, tpl.CPUs, tpl.MemMB, diskGB)
			if err != nil {
				return err
			}
			if mode == ops.LinkedClone {
				v.LinkedParent = tpl.ID
				v.ChainLen = 1
				if _, err := m.pool.LinkedCloneDelta(p, ds.ID); err != nil {
					return err
				}
			} else {
				if err := m.pool.FullCopy(p, ds.ID, tpl.DiskGB); err != nil {
					return err
				}
			}
			v.State = inventory.VMPoweredOff
			vm = v
			return nil
		},
	})
	return vm, task
}

// PowerOn powers on vm.
func (m *Manager) PowerOn(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindPowerOn, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body:        func(p *sim.Proc) error { return m.inv.PowerOn(vm) },
	})
}

// PowerOff powers off vm.
func (m *Manager) PowerOff(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindPowerOff, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body:        func(p *sim.Proc) error { return m.inv.PowerOff(vm) },
	})
}

// SnapshotCreate takes a snapshot of vm, charging snapshot space on its
// datastore and lengthening the VM's disk chain.
func (m *Manager) SnapshotCreate(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindSnapshotCreate, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, vm.DatastoreID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if vm.State == inventory.VMDeleted {
				return fmt.Errorf("mgmt: snapshot of deleted VM %s", vm.Name)
			}
			ds := m.inv.Datastore(vm.DatastoreID)
			gb := m.pool.Policy.SnapshotGB
			if ds.FreeGB() < gb {
				return fmt.Errorf("mgmt: datastore %s out of space for snapshot of %s", ds.Name, vm.Name)
			}
			vm.Snapshots++
			vm.ChainLen++
			vm.DiskGB += gb
			m.inv.AddDatastoreUsed(ds, gb)
			return nil
		},
	})
}

// SnapshotRemove deletes vm's newest snapshot, consolidating one delta.
func (m *Manager) SnapshotRemove(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindSnapshotRemove, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, vm.DatastoreID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if vm.State == inventory.VMDeleted {
				return fmt.Errorf("mgmt: snapshot remove on deleted VM %s", vm.Name)
			}
			if vm.Snapshots == 0 {
				return fmt.Errorf("mgmt: %s has no snapshots", vm.Name)
			}
			if err := m.pool.Consolidate(p, vm.DatastoreID, 1); err != nil {
				return err
			}
			gb := m.pool.Policy.SnapshotGB
			vm.Snapshots--
			vm.ChainLen--
			vm.DiskGB -= gb
			m.inv.AddDatastoreUsed(m.inv.Datastore(vm.DatastoreID), -gb)
			return nil
		},
	})
}

// Reconfigure applies a settings change to vm (no capacity movement).
func (m *Manager) Reconfigure(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindReconfigure, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
	})
}

// Migrate live-migrates vm to dst. The guest-memory copy is charged on
// the shared migration network when one is configured (contending with
// concurrent migrations, counted as data time), and as host-agent time
// otherwise.
func (m *Manager) Migrate(p *sim.Proc, vm *inventory.VM, dst *inventory.Host, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindMigrate, VMID: vm.ID}
	ctx.apply(&req, p)
	extraHost := 0.0
	if m.network == nil {
		extraHost = m.model.MigrateMemCopyS(vm.MemMB)
	}
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, vm.HostID, dst.ID},
		HostID:      vm.HostID,
		ExtraHostS:  extraHost,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if m.network != nil {
				m.network.MigrateMemory(p, vm.MemMB)
			}
			return m.inv.MoveVM(vm, dst, nil)
		},
	})
}

// StorageMigrate moves vm's disks to dst, paying a cross-datastore copy.
func (m *Manager) StorageMigrate(p *sim.Proc, vm *inventory.VM, dst *inventory.Datastore, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindStorageMigrate, VMID: vm.ID}
	ctx.apply(&req, p)
	src := vm.DatastoreID
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, src, dst.ID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if vm.State == inventory.VMDeleted {
				return fmt.Errorf("mgmt: storage migrate of deleted VM %s", vm.Name)
			}
			if dst.ID == src {
				return nil
			}
			if err := m.pool.CrossCopy(p, src, dst.ID, vm.DiskGB); err != nil {
				return err
			}
			return m.inv.MoveVM(vm, nil, dst)
		},
	})
}

// Destroy deletes vm (which must be powered off) and frees its capacity.
func (m *Manager) Destroy(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindDestroy, VMID: vm.ID}
	ctx.apply(&req, p)
	task := m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, vm.HostID, vm.DatastoreID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body:        func(p *sim.Proc) error { return m.inv.RemoveVM(vm) },
	})
	if task.Err == nil {
		// The VM is gone and its ID will never be reused; retire the
		// per-entity lock instead of leaking one map entry per VM ever
		// created.
		m.recycleLock(vm.ID)
	}
	return task
}

// Consolidate collapses vm's whole redo chain back to its base (or to the
// linked-clone link), reclaiming snapshot space.
func (m *Manager) Consolidate(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindConsolidate, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, vm.DatastoreID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if vm.State == inventory.VMDeleted {
				return fmt.Errorf("mgmt: consolidate of deleted VM %s", vm.Name)
			}
			base := 0
			if vm.LinkedParent != inventory.None {
				base = 1
			}
			extra := vm.ChainLen - base
			if extra <= 0 {
				return nil
			}
			if err := m.pool.Consolidate(p, vm.DatastoreID, extra); err != nil {
				return err
			}
			gb := float64(vm.Snapshots) * m.pool.Policy.SnapshotGB
			vm.DiskGB -= gb
			m.inv.AddDatastoreUsed(m.inv.Datastore(vm.DatastoreID), -gb)
			vm.Snapshots = 0
			vm.ChainLen = base
			return nil
		},
	})
}

// FullCopyTemplate clones tpl's base disk to dst as a new template (the
// data-plane half of catalog publication and shadow-VM creation); the
// control-plane half is charged by the caller's surrounding Execute.
func (m *Manager) FullCopyTemplate(p *sim.Proc, tpl *inventory.Template, dst *inventory.Datastore, name string) (*inventory.Template, error) {
	if dst.FreeGB() < tpl.DiskGB {
		return nil, fmt.Errorf("mgmt: datastore %s out of space for template copy %s", dst.Name, name)
	}
	if err := m.pool.FullCopy(p, dst.ID, tpl.DiskGB); err != nil {
		return nil, err
	}
	return m.inv.AddTemplate(dst, name, tpl.DiskGB, tpl.MemMB, tpl.CPUs), nil
}

// EnterMaintenance puts host into maintenance mode: placement is fenced
// off immediately, then every resident VM is live-migrated to the
// best-fitting other host. If any VM cannot be placed the evacuation
// aborts, the fence is lifted, and the task reports the error.
func (m *Manager) EnterMaintenance(p *sim.Proc, host *inventory.Host, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindMaintenance}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{host.ID},
		HostID:      host.ID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if host.Maintenance {
				return fmt.Errorf("mgmt: host %s already in maintenance", host.Name)
			}
			m.inv.SetHostMaintenance(host, true)
			ids := make([]inventory.ID, len(host.VMs))
			copy(ids, host.VMs)
			for _, id := range ids {
				vm := m.inv.VM(id)
				if vm == nil || vm.State == inventory.VMDeleted {
					continue // deleted while we were evacuating others
				}
				dst := m.evacuationTarget(vm)
				if dst == nil {
					m.inv.SetHostMaintenance(host, false)
					return fmt.Errorf("mgmt: no host fits %s evacuating %s", vm.Name, host.Name)
				}
				if task := m.Migrate(p, vm, dst, ReqCtx{Org: ctx.Org}); task.Err != nil {
					// Concurrent user deletion between the liveness check
					// and the migration is routine churn, not a failure.
					if m.inv.VM(id) == nil || vm.State == inventory.VMDeleted {
						continue
					}
					m.inv.SetHostMaintenance(host, false)
					return fmt.Errorf("mgmt: evacuating %s: %w", host.Name, task.Err)
				}
			}
			return nil
		},
	})
}

// ExitMaintenance returns host to service.
func (m *Manager) ExitMaintenance(p *sim.Proc, host *inventory.Host, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindMaintenance}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{host.ID},
		HostID:      host.ID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if !host.Maintenance {
				return fmt.Errorf("mgmt: host %s not in maintenance", host.Name)
			}
			m.inv.SetHostMaintenance(host, false)
			return nil
		},
	})
}

// evacuationTarget picks the most-free in-service host (other than the
// VM's current one) that fits the VM's memory and, when powered on, CPU.
func (m *Manager) evacuationTarget(vm *inventory.VM) *inventory.Host {
	var best *inventory.Host
	for _, id := range m.inv.Hosts() {
		if id == vm.HostID {
			continue
		}
		h := m.inv.Host(id)
		if !h.InService() || h.FreeMemMB() < vm.MemMB {
			continue
		}
		if vm.State == inventory.VMPoweredOn && h.FreeCPUMHz() < vm.CPUs*500 {
			continue
		}
		if best == nil || h.FreeMemMB() > best.FreeMemMB() {
			best = h
		}
	}
	return best
}

// Suspend checkpoints a running VM: the guest memory image is written to
// the VM's datastore (data-plane cost) and the host's CPU reservation is
// released.
func (m *Manager) Suspend(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindSuspend, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, vm.DatastoreID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if vm.State != inventory.VMPoweredOn {
				return fmt.Errorf("mgmt: suspend %s in state %s", vm.Name, vm.State)
			}
			gb := float64(vm.MemMB) / 1024
			// Reserve/charge first, then write the checkpoint.
			if err := m.inv.Suspend(vm, gb); err != nil {
				return err
			}
			if e := m.pool.Engine(vm.DatastoreID); e != nil {
				e.Copy(p, float64(vm.MemMB))
			}
			return nil
		},
	})
}

// Resume restores a suspended VM: the memory image is read back from the
// datastore and the VM returns to running.
func (m *Manager) Resume(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task {
	req := ops.Request{Kind: ops.KindResume, VMID: vm.ID}
	ctx.apply(&req, p)
	return m.Execute(p, ExecSpec{
		Req:         req,
		LockTargets: []inventory.ID{vm.ID, vm.DatastoreID},
		HostID:      vm.HostID,
		Pre:         ctx.Pre,
		Body: func(p *sim.Proc) error {
			if vm.State != inventory.VMSuspended {
				return fmt.Errorf("mgmt: resume %s in state %s", vm.Name, vm.State)
			}
			if e := m.pool.Engine(vm.DatastoreID); e != nil {
				e.Copy(p, float64(vm.MemMB))
			}
			return m.inv.Resume(vm)
		},
	})
}
