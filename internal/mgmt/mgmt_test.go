package mgmt

import (
	"math"
	"testing"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmtdb"
	"cloudmcp/internal/netsim"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/storage"
	"cloudmcp/internal/testfix"
)

type fixture struct {
	env   *sim.Env
	inv   *inventory.Inventory
	pool  *storage.Pool
	mgr   *Manager
	hosts []*inventory.Host
	ds    []*inventory.Datastore
	tpl   *inventory.Template
}

// newFixture builds a 2-host, 2-datastore installation with a 20 GB
// template. The cost model's CV is zeroed for deterministic stage times.
func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	fx := testfix.New(testfix.Options{})
	mgr, err := New(fx.Env, fx.Inv, fx.Pool, fx.Model, rng.Derive(1, "mgmt-test"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{env: fx.Env, inv: fx.Inv, pool: fx.Pool, mgr: mgr,
		hosts: fx.Hosts, ds: fx.DS, tpl: fx.Tpl}
}

func TestDeployFullVsLinkedShape(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var full, linked *Task
	f.env.Go("full", func(p *sim.Proc) {
		_, full = f.mgr.DeployVM(p, "vm-full", f.tpl, f.hosts[0], f.ds[0], ops.FullClone, ReqCtx{Org: "org"})
	})
	f.env.Run(sim.Forever)
	f.env.Go("linked", func(p *sim.Proc) {
		_, linked = f.mgr.DeployVM(p, "vm-linked", f.tpl, f.hosts[1], f.ds[1], ops.LinkedClone, ReqCtx{Org: "org"})
	})
	f.env.Run(sim.Forever)
	if full.Err != nil || linked.Err != nil {
		t.Fatalf("errs: %v %v", full.Err, linked.Err)
	}
	// Full clone: 20 GB at 200 MB/s = 102.4 s of data time.
	if math.Abs(full.Breakdown.Data-102.4) > 1 {
		t.Fatalf("full data = %v", full.Breakdown.Data)
	}
	// Linked clone: 64 MB delta write = 0.32 s.
	if math.Abs(linked.Breakdown.Data-0.32) > 0.05 {
		t.Fatalf("linked data = %v", linked.Breakdown.Data)
	}
	if full.Latency() < 5*linked.Latency() {
		t.Fatalf("full %v not ≫ linked %v", full.Latency(), linked.Latency())
	}
	// For the linked clone, control-plane time (everything but Data) must
	// be a significant share — the paper's premise.
	control := linked.Latency() - linked.Breakdown.Data
	if control < linked.Breakdown.Data/2 {
		t.Fatalf("linked control share too small: control=%v data=%v", control, linked.Breakdown.Data)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeployReservesBeforeCopy(t *testing.T) {
	// Two concurrent full deploys into a datastore with room for only one
	// must fail one of them at reservation time, not overcommit.
	f := newFixture(t, DefaultConfig())
	f.inv.SetDatastoreCapacity(f.ds[1], f.ds[1].UsedGB+25) // room for one 20 GB clone
	var tasks []*Task
	for i := 0; i < 2; i++ {
		f.env.Go("d", func(p *sim.Proc) {
			_, task := f.mgr.DeployVM(p, "vm", f.tpl, f.hosts[0], f.ds[1], ops.FullClone, ReqCtx{Org: "org"})
			tasks = append(tasks, task)
		})
	}
	f.env.Run(sim.Forever)
	errs := 0
	for _, task := range tasks {
		if task.Err != nil {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("errors = %d, want 1", errs)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerCycleAndDestroy(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("life", func(p *sim.Proc) {
		vm, task := f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "org"})
		if task.Err != nil {
			t.Errorf("deploy: %v", task.Err)
			return
		}
		if task = f.mgr.PowerOn(p, vm, ReqCtx{Org: "org"}); task.Err != nil {
			t.Errorf("powerOn: %v", task.Err)
		}
		if vm.State != inventory.VMPoweredOn {
			t.Errorf("state = %v", vm.State)
		}
		// Destroy while powered on must fail.
		if task = f.mgr.Destroy(p, vm, ReqCtx{Org: "org"}); task.Err == nil {
			t.Error("destroy of powered-on VM succeeded")
		}
		if task = f.mgr.PowerOff(p, vm, ReqCtx{Org: "org"}); task.Err != nil {
			t.Errorf("powerOff: %v", task.Err)
		}
		if task = f.mgr.Destroy(p, vm, ReqCtx{Org: "org"}); task.Err != nil {
			t.Errorf("destroy: %v", task.Err)
		}
	})
	f.env.Run(sim.Forever)
	if got := len(f.inv.VMs()); got != 0 {
		t.Fatalf("VMs left = %d", got)
	}
	if f.mgr.TaskErrors() != 1 {
		t.Fatalf("task errors = %d, want 1 (the rejected destroy)", f.mgr.TaskErrors())
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("snap", func(p *sim.Proc) {
		vm, _ := f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "org"})
		before := f.ds[0].UsedGB
		if task := f.mgr.SnapshotCreate(p, vm, ReqCtx{Org: "org"}); task.Err != nil {
			t.Errorf("snapshot: %v", task.Err)
		}
		if vm.Snapshots != 1 || vm.ChainLen != 2 {
			t.Errorf("snapshots=%d chain=%d", vm.Snapshots, vm.ChainLen)
		}
		if f.ds[0].UsedGB <= before {
			t.Error("snapshot did not charge datastore")
		}
		if task := f.mgr.SnapshotRemove(p, vm, ReqCtx{Org: "org"}); task.Err != nil {
			t.Errorf("snapshot remove: %v", task.Err)
		}
		if vm.Snapshots != 0 || vm.ChainLen != 1 {
			t.Errorf("after remove snapshots=%d chain=%d", vm.Snapshots, vm.ChainLen)
		}
		if math.Abs(f.ds[0].UsedGB-before) > 1e-9 {
			t.Errorf("space not reclaimed: %v vs %v", f.ds[0].UsedGB, before)
		}
		// Removing with no snapshots errors.
		if task := f.mgr.SnapshotRemove(p, vm, ReqCtx{Org: "org"}); task.Err == nil {
			t.Error("snapshot remove with none succeeded")
		}
	})
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConsolidateResetsChain(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("c", func(p *sim.Proc) {
		vm, _ := f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "org"})
		for i := 0; i < 3; i++ {
			f.mgr.SnapshotCreate(p, vm, ReqCtx{Org: "org"})
		}
		if vm.ChainLen != 4 {
			t.Errorf("chain = %d", vm.ChainLen)
		}
		if task := f.mgr.Consolidate(p, vm, ReqCtx{Org: "org"}); task.Err != nil {
			t.Errorf("consolidate: %v", task.Err)
		}
		if vm.ChainLen != 1 || vm.Snapshots != 0 {
			t.Errorf("after consolidate chain=%d snaps=%d", vm.ChainLen, vm.Snapshots)
		}
	})
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateMovesAndChargesMemCopy(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var task *Task
	f.env.Go("m", func(p *sim.Proc) {
		vm, _ := f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "org"})
		task = f.mgr.Migrate(p, vm, f.hosts[1], ReqCtx{Org: "org"})
		if vm.HostID != f.hosts[1].ID {
			t.Error("not moved")
		}
	})
	f.env.Run(sim.Forever)
	if task.Err != nil {
		t.Fatal(task.Err)
	}
	// Host stage = 4.0 sampled + 2048/1000 = 2.048 mem copy.
	if math.Abs(task.Breakdown.Host-6.048) > 0.01 {
		t.Fatalf("host stage = %v", task.Breakdown.Host)
	}
}

func TestStorageMigrate(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("sm", func(p *sim.Proc) {
		vm, _ := f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.FullClone, ReqCtx{Org: "org"})
		task := f.mgr.StorageMigrate(p, vm, f.ds[1], ReqCtx{Org: "org"})
		if task.Err != nil {
			t.Errorf("storage migrate: %v", task.Err)
		}
		if vm.DatastoreID != f.ds[1].ID {
			t.Error("not moved")
		}
		// 20 GB at 200 MB/s = 102.4 s on the slower side.
		if math.Abs(task.Breakdown.Data-102.4) > 1 {
			t.Errorf("data = %v", task.Breakdown.Data)
		}
	})
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseLockingSerializes(t *testing.T) {
	runWith := func(g LockGranularity) sim.Time {
		cfg := DefaultConfig()
		cfg.Granularity = g
		f := newFixture(t, cfg)
		// Two reconfigures on different VMs (created raw to skip deploys).
		vms := make([]*inventory.VM, 2)
		for i := range vms {
			vm, err := f.inv.AddVM("vm", f.hosts[i], f.ds[i], 1, 1024, 1)
			if err != nil {
				t.Fatal(err)
			}
			vm.State = inventory.VMPoweredOff
			vms[i] = vm
		}
		for i := 0; i < 2; i++ {
			i := i
			f.env.Go("r", func(p *sim.Proc) { f.mgr.Reconfigure(p, vms[i], ReqCtx{Org: "org"}) })
		}
		return f.env.Run(sim.Forever)
	}
	coarse := runWith(GranularityCoarse)
	entity := runWith(GranularityEntity)
	// Reconfigure ≈ 0.9 mgmt + 0.2 db + 1.0 host ≈ 2.1 s. Coarse must be
	// about twice entity.
	if coarse < entity*1.7 {
		t.Fatalf("coarse %v vs entity %v: not serialized", coarse, entity)
	}
}

func TestHostGranularitySerializesPerHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Granularity = GranularityHost
	f := newFixture(t, cfg)
	// Two VMs on the same host, one on the other.
	mk := func(h *inventory.Host, d *inventory.Datastore) *inventory.VM {
		vm, err := f.inv.AddVM("vm", h, d, 1, 1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		vm.State = inventory.VMPoweredOff
		return vm
	}
	a0, a1, b := mk(f.hosts[0], f.ds[0]), mk(f.hosts[0], f.ds[0]), mk(f.hosts[1], f.ds[1])
	var tA0, tA1, tB *Task
	f.env.Go("a0", func(p *sim.Proc) { tA0 = f.mgr.Reconfigure(p, a0, ReqCtx{Org: "org"}) })
	f.env.Go("a1", func(p *sim.Proc) { tA1 = f.mgr.Reconfigure(p, a1, ReqCtx{Org: "org"}) })
	f.env.Go("b", func(p *sim.Proc) { tB = f.mgr.Reconfigure(p, b, ReqCtx{Org: "org"}) })
	f.env.Run(sim.Forever)
	if tB.Breakdown.Queue > 0.01 {
		t.Fatalf("other-host op queued %v", tB.Breakdown.Queue)
	}
	queued := 0
	if tA0.Breakdown.Queue > 0.5 {
		queued++
	}
	if tA1.Breakdown.Queue > 0.5 {
		queued++
	}
	if queued != 1 {
		t.Fatalf("same-host serialization: queues %v %v", tA0.Breakdown.Queue, tA1.Breakdown.Queue)
	}
}

func TestAdmissionCapQueues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 1
	f := newFixture(t, cfg)
	vms := make([]*inventory.VM, 2)
	for i := range vms {
		vm, _ := f.inv.AddVM("vm", f.hosts[i], f.ds[i], 1, 1024, 1)
		vm.State = inventory.VMPoweredOff
		vms[i] = vm
	}
	var tasks []*Task
	for i := 0; i < 2; i++ {
		i := i
		f.env.Go("r", func(p *sim.Proc) { tasks = append(tasks, f.mgr.Reconfigure(p, vms[i], ReqCtx{Org: "org"})) })
	}
	f.env.Run(sim.Forever)
	queued := 0
	for _, task := range tasks {
		if task.Breakdown.Queue > 0.5 {
			queued++
		}
	}
	if queued != 1 {
		t.Fatalf("admission cap: %d queued, want 1", queued)
	}
	rr := f.mgr.Resources()
	if rr.Admission.MaxQueueLen != 1 {
		t.Fatalf("admission max queue = %d", rr.Admission.MaxQueueLen)
	}
}

func TestSummaryAndSinks(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var sunk []*Task
	f.mgr.AddTaskSink(func(task *Task) { sunk = append(sunk, task) })
	f.env.Go("w", func(p *sim.Proc) {
		vm, _ := f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "org"})
		f.mgr.PowerOn(p, vm, ReqCtx{Org: "org"})
		f.mgr.PowerOff(p, vm, ReqCtx{Org: "org"})
	})
	f.env.Run(sim.Forever)
	if len(sunk) != 3 {
		t.Fatalf("sunk = %d", len(sunk))
	}
	sum := f.mgr.Summary()
	if len(sum) != 3 {
		t.Fatalf("summary kinds = %d", len(sum))
	}
	for _, s := range sum {
		if s.Count != 1 || s.MeanLatency <= 0 {
			t.Fatalf("summary = %+v", s)
		}
	}
	if f.mgr.TasksCompleted() != 3 {
		t.Fatalf("tasks = %d", f.mgr.TasksCompleted())
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	bad := DefaultConfig()
	bad.Threads = 0
	if _, err := New(f.env, f.inv, f.pool, ops.DefaultCostModel(), rng.New(1), bad); err == nil {
		t.Fatal("expected config error")
	}
}

func TestConcurrentDeploysKeepInvariants(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	const n = 24
	for i := 0; i < n; i++ {
		i := i
		f.env.Go("d", func(p *sim.Proc) {
			h := f.hosts[i%2]
			d := f.ds[i%2]
			vm, task := f.mgr.DeployVM(p, "vm", f.tpl, h, d, ops.LinkedClone, ReqCtx{Org: "org"})
			if task.Err == nil {
				f.mgr.PowerOn(p, vm, ReqCtx{Org: "org"})
			}
		})
	}
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.inv.VMs()); got != n {
		t.Fatalf("VMs = %d, want %d", got, n)
	}
}

func TestGranularityString(t *testing.T) {
	if GranularityCoarse.String() != "coarse" || GranularityHost.String() != "host" || GranularityEntity.String() != "entity" {
		t.Fatal("granularity names")
	}
	if LockGranularity(9).String() == "" {
		t.Fatal("unknown granularity must stringify")
	}
}

func TestEnterMaintenanceEvacuates(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("admin", func(p *sim.Proc) {
		var vms []*inventory.VM
		for i := 0; i < 3; i++ {
			vm, task := f.mgr.DeployVM(p, "vm", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "o"})
			if task.Err != nil {
				t.Errorf("deploy: %v", task.Err)
				return
			}
			f.mgr.PowerOn(p, vm, ReqCtx{Org: "o"})
			vms = append(vms, vm)
		}
		task := f.mgr.EnterMaintenance(p, f.hosts[0], ReqCtx{Org: "admin"})
		if task.Err != nil {
			t.Errorf("maintenance: %v", task.Err)
		}
		if !f.hosts[0].Maintenance {
			t.Error("host not fenced")
		}
		if len(f.hosts[0].VMs) != 0 {
			t.Errorf("host still has %d VMs", len(f.hosts[0].VMs))
		}
		for _, vm := range vms {
			if vm.HostID != f.hosts[1].ID {
				t.Errorf("vm on host %d", vm.HostID)
			}
			if vm.State != inventory.VMPoweredOn {
				t.Errorf("vm state %v after evacuation", vm.State)
			}
		}
		// Exit restores service.
		if task := f.mgr.ExitMaintenance(p, f.hosts[0], ReqCtx{Org: "admin"}); task.Err != nil {
			t.Errorf("exit: %v", task.Err)
		}
		if f.hosts[0].Maintenance {
			t.Error("host still fenced")
		}
	})
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEnterMaintenanceAbortsWhenNoCapacity(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("admin", func(p *sim.Proc) {
		// Fill host1 so nothing can evacuate there.
		for f.hosts[1].FreeMemMB() >= f.tpl.MemMB {
			if _, err := f.inv.AddVM("filler", f.hosts[1], f.ds[1], 1, f.tpl.MemMB, 0.1); err != nil {
				break
			}
		}
		vm, _ := f.mgr.DeployVM(p, "vm", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "o"})
		task := f.mgr.EnterMaintenance(p, f.hosts[0], ReqCtx{Org: "admin"})
		if task.Err == nil {
			t.Error("maintenance succeeded without capacity")
		}
		if f.hosts[0].Maintenance {
			t.Error("fence left up after abort")
		}
		if vm.HostID != f.hosts[0].ID {
			t.Error("vm moved despite abort")
		}
	})
	f.env.Run(sim.Forever)
}

func TestExitMaintenanceRequiresMaintenance(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("admin", func(p *sim.Proc) {
		if task := f.mgr.ExitMaintenance(p, f.hosts[0], ReqCtx{Org: "admin"}); task.Err == nil {
			t.Error("exit of in-service host succeeded")
		}
		vm, _ := f.mgr.DeployVM(p, "vm", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "o"})
		_ = vm
		f.mgr.EnterMaintenance(p, f.hosts[0], ReqCtx{Org: "admin"})
		if task := f.mgr.EnterMaintenance(p, f.hosts[0], ReqCtx{Org: "admin"}); task.Err == nil {
			t.Error("double enter succeeded")
		}
	})
	f.env.Run(sim.Forever)
}

func TestWALDatabaseIntegration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Database = &mgmtdb.Config{Conns: 4, WriteS: 0.01, FlushS: 0.05, GroupWindowS: 0.01}
	f := newFixture(t, cfg)
	f.env.Go("w", func(p *sim.Proc) {
		vm, task := f.mgr.DeployVM(p, "vm", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "o"})
		if task.Err != nil {
			t.Errorf("deploy: %v", task.Err)
			return
		}
		if task.Breakdown.DB <= 0 {
			t.Errorf("no DB time in breakdown: %+v", task.Breakdown)
		}
		f.mgr.PowerOn(p, vm, ReqCtx{Org: "o"})
	})
	f.env.Run(sim.Forever)
	st, ok := f.mgr.WALStats()
	if !ok {
		t.Fatal("WAL stats unavailable")
	}
	// Deploy (6 writes: 4 pre + 2 post) and powerOn (3 writes: 2 + 1)
	// each commit twice.
	if st.Commits != 4 {
		t.Fatalf("commits = %d, want 4", st.Commits)
	}
	if st.Rows != 9 {
		t.Fatalf("rows = %d, want 9", st.Rows)
	}
	if st.Flushes == 0 || st.MeanCommitLat <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWALStatsAbsentByDefault(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	if _, ok := f.mgr.WALStats(); ok {
		t.Fatal("WAL stats present without Database config")
	}
}

func TestMigrationNetworkContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Network = &netsim.Config{MBps: 1024} // 2048MB mem copy → 2s alone
	f := newFixture(t, cfg)
	var tasks []*Task
	mk := func(h *inventory.Host, d *inventory.Datastore) *inventory.VM {
		vm, err := f.inv.AddVM("vm", h, d, 1, 2048, 1)
		if err != nil {
			t.Fatal(err)
		}
		vm.State = inventory.VMPoweredOff
		return vm
	}
	a := mk(f.hosts[0], f.ds[0])
	b := mk(f.hosts[0], f.ds[0])
	f.env.Go("ma", func(p *sim.Proc) { tasks = append(tasks, f.mgr.Migrate(p, a, f.hosts[1], ReqCtx{Org: "x"})) })
	f.env.Go("mb", func(p *sim.Proc) { tasks = append(tasks, f.mgr.Migrate(p, b, f.hosts[1], ReqCtx{Org: "x"})) })
	f.env.Run(sim.Forever)
	for _, task := range tasks {
		if task.Err != nil {
			t.Fatal(task.Err)
		}
		// Concurrent 2048MB copies on a 1024MB/s link: ~4s each, in Data.
		if task.Breakdown.Data < 3.5 || task.Breakdown.Data > 4.5 {
			t.Fatalf("data = %v, want ~4 (shared link)", task.Breakdown.Data)
		}
		// Host stage no longer carries the mem copy.
		if task.Breakdown.Host > 4.5 {
			t.Fatalf("host = %v, mem copy double-charged", task.Breakdown.Host)
		}
	}
	st, ok := f.mgr.NetworkStats()
	if !ok || st.Transfers != 2 || st.BytesMB != 4096 {
		t.Fatalf("network stats = %+v ok=%v", st, ok)
	}
}

func TestNetworkStatsAbsentByDefault(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	if _, ok := f.mgr.NetworkStats(); ok {
		t.Fatal("network stats present without config")
	}
}

func TestSuspendResumeOps(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.env.Go("w", func(p *sim.Proc) {
		vm, _ := f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "o"})
		f.mgr.PowerOn(p, vm, ReqCtx{Org: "o"})
		task := f.mgr.Suspend(p, vm, ReqCtx{Org: "o"})
		if task.Err != nil {
			t.Errorf("suspend: %v", task.Err)
			return
		}
		// 2048 MB memory image at 200 MB/s = 10.24 s of data time.
		if math.Abs(task.Breakdown.Data-10.24) > 0.1 {
			t.Errorf("suspend data = %v", task.Breakdown.Data)
		}
		if vm.State != inventory.VMSuspended {
			t.Errorf("state = %v", vm.State)
		}
		// Double suspend rejected.
		if task := f.mgr.Suspend(p, vm, ReqCtx{Org: "o"}); task.Err == nil {
			t.Error("double suspend succeeded")
		}
		task = f.mgr.Resume(p, vm, ReqCtx{Org: "o"})
		if task.Err != nil {
			t.Errorf("resume: %v", task.Err)
		}
		if vm.State != inventory.VMPoweredOn {
			t.Errorf("state after resume = %v", vm.State)
		}
		if task := f.mgr.Resume(p, vm, ReqCtx{Org: "o"}); task.Err == nil {
			t.Error("double resume succeeded")
		}
	})
	f.env.Run(sim.Forever)
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
