package mgmt

import (
	"errors"
	"strings"
	"testing"

	"cloudmcp/internal/faults"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/sim"
)

func injector(t *testing.T, cfg faults.Config) *faults.Injector {
	t.Helper()
	in, err := faults.New(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// With FailProb=1 every attempt fails in the host stage; the manager
// must retry MaxAttempts times, charge the backoff to queue time, and
// give up with a faults error.
func TestRetryExhaustionGivesUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = injector(t, faults.Config{Host: faults.Layer{FailProb: 1}})
	cfg.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: 2, Multiplier: 2}
	f := newFixture(t, cfg)
	var task *Task
	f.env.Go("deploy", func(p *sim.Proc) {
		_, task = f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "org"})
	})
	f.env.Run(sim.Forever)
	if task.Err == nil {
		t.Fatal("task succeeded under FailProb=1")
	}
	var fe *faults.Error
	if !errors.As(task.Err, &fe) || fe.Layer != faults.LayerHost {
		t.Fatalf("err = %v, want wrapped host faults.Error", task.Err)
	}
	if task.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", task.Attempts)
	}
	rs := f.mgr.RetryStats()
	if rs.Attempts != 3 || rs.Faults != 3 || rs.Retries != 2 || rs.GiveUps != 1 {
		t.Fatalf("retry stats %+v", rs)
	}
	// Two backoffs of at least 2 s and 4 s must appear in queue time.
	if task.Breakdown.Queue < 6 {
		t.Fatalf("queue %v does not include backoffs", task.Breakdown.Queue)
	}
	// The VM must not exist: injection precedes the data-plane mutation.
	if got := len(f.inv.VMs()); got != 0 {
		t.Fatalf("%d VMs created by a failed deploy", got)
	}
	rows := f.mgr.Goodput()
	if len(rows) != 1 || rows[0].Kind != ops.KindDeploy || rows[0].OK != 0 || rows[0].Attempts != 3 || rows[0].GiveUps != 1 {
		t.Fatalf("goodput rows %+v", rows)
	}
}

// A deadline shorter than the first backoff converts the retry into a
// deadline give-up.
func TestRetryDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = injector(t, faults.Config{DB: faults.Layer{FailProb: 1}})
	cfg.Retry = RetryPolicy{MaxAttempts: 10, BaseBackoff: 1000, Multiplier: 2, Deadline: 60}
	f := newFixture(t, cfg)
	var task *Task
	f.env.Go("deploy", func(p *sim.Proc) {
		_, task = f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.LinkedClone, ReqCtx{Org: "org"})
	})
	f.env.Run(sim.Forever)
	if task.Err == nil || !strings.Contains(task.Err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline give-up", task.Err)
	}
	rs := f.mgr.RetryStats()
	if rs.GiveUps != 1 || rs.Deadline != 1 || rs.Retries != 0 {
		t.Fatalf("retry stats %+v", rs)
	}
	if task.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (deadline before first retry)", task.Attempts)
	}
}

// Under a moderate fault rate with retries enabled, most tasks succeed
// (goodput) but cost more than one attempt on average (amplification),
// and two identical runs agree exactly.
func TestRetryAmplificationDeterministic(t *testing.T) {
	run := func() (RetryStats, int64, float64) {
		cfg := DefaultConfig()
		cfg.Faults = injector(t, faults.Preset(0.3))
		cfg.Retry = DefaultRetryPolicy()
		f := newFixture(t, cfg)
		f.env.Go("deploys", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				f.mgr.DeployVM(p, "vm", f.tpl, f.hosts[i%2], f.ds[i%2], ops.LinkedClone, ReqCtx{Org: "org"})
			}
		})
		f.env.Run(sim.Forever)
		return f.mgr.RetryStats(), f.mgr.TaskErrors(), float64(f.env.Now())
	}
	rs1, errs1, now1 := run()
	rs2, errs2, now2 := run()
	if rs1 != rs2 || errs1 != errs2 || now1 != now2 {
		t.Fatalf("identical runs diverged: %+v/%d/%v vs %+v/%d/%v", rs1, errs1, now1, rs2, errs2, now2)
	}
	if rs1.Attempts != 40+rs1.Retries {
		t.Fatalf("attempts %d != tasks 40 + retries %d", rs1.Attempts, rs1.Retries)
	}
	if rs1.Retries == 0 {
		t.Fatal("preset 0.3 produced no retries")
	}
	if errs1 >= 20 {
		t.Fatalf("%d/40 tasks failed despite retries", errs1)
	}
}

// An all-zero faults config must leave behaviour bit-identical to no
// injector at all: same virtual end time, same breakdowns, no retry
// accounting.
func TestZeroRateInjectorEquivalence(t *testing.T) {
	run := func(cfg Config) ([]*Task, float64) {
		f := newFixture(t, cfg)
		var tasks []*Task
		f.mgr.AddTaskSink(func(tk *Task) { tasks = append(tasks, tk) })
		f.env.Go("mixed", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				vm, _ := f.mgr.DeployVM(p, "vm", f.tpl, f.hosts[i%2], f.ds[i%2], ops.LinkedClone, ReqCtx{Org: "org"})
				if vm != nil {
					f.mgr.PowerOn(p, vm, ReqCtx{Org: "org"})
				}
			}
		})
		f.env.Run(sim.Forever)
		return tasks, float64(f.env.Now())
	}
	plain := DefaultConfig()
	zero := DefaultConfig()
	zero.Faults = injector(t, faults.Config{})
	zero.Retry = DefaultRetryPolicy()
	t1, end1 := run(plain)
	t2, end2 := run(zero)
	if end1 != end2 {
		t.Fatalf("end times diverged: %v vs %v", end1, end2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("task counts diverged: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].Start != t2[i].Start || t1[i].End != t2[i].End || t1[i].Breakdown != t2[i].Breakdown {
			t.Fatalf("task %d diverged:\n%+v\n%+v", i, t1[i], t2[i])
		}
	}
}

// Injected fault give-up errors land in the trace via task sinks and in
// KindSummary.Errors.
func TestGiveUpCountsAsError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = injector(t, faults.Config{Storage: faults.Layer{FailProb: 1}})
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: 1, Multiplier: 1}
	f := newFixture(t, cfg)
	f.env.Go("deploy", func(p *sim.Proc) {
		f.mgr.DeployVM(p, "vm0", f.tpl, f.hosts[0], f.ds[0], ops.FullClone, ReqCtx{Org: "org"})
	})
	f.env.Run(sim.Forever)
	if f.mgr.TaskErrors() != 1 {
		t.Fatalf("task errors = %d", f.mgr.TaskErrors())
	}
	sums := f.mgr.Summary()
	if len(sums) != 1 || sums[0].Errors != 1 || sums[0].Count != 1 {
		t.Fatalf("summary %+v", sums)
	}
}

func TestRetryPolicyValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: -1}
	env := sim.NewEnv()
	inv := inventory.New()
	if _, err := New(env, inv, nil, ops.DefaultCostModel(), nil, cfg); err == nil {
		t.Fatal("negative retry policy validated")
	}
}
