// Package mgmt simulates the virtualization manager — the vCenter-style
// server every management operation funnels through. It models the four
// serialization points that make the management control plane a workload
// of its own:
//
//   - global task admission (a bounded number of in-flight operations),
//   - a finite worker-thread pool for manager-side processing,
//   - the management database (bounded connections, per-write cost), and
//   - hierarchical inventory locks (configurable granularity).
//
// Execute runs one operation through all of them, charging stage service
// times drawn from the ops cost model, dispatching host-side work to the
// per-host agents, and timing the caller-supplied data-plane body. The
// resulting per-task Breakdown is what the characterization pipeline and
// the paper-style figures consume.
package mgmt

import (
	"fmt"

	"cloudmcp/internal/bw"
	"cloudmcp/internal/faults"
	"cloudmcp/internal/hostsim"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/metrics"
	"cloudmcp/internal/mgmtdb"
	"cloudmcp/internal/netsim"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/stats"
	"cloudmcp/internal/storage"
)

// LockGranularity selects how much of the inventory an operation locks.
type LockGranularity int

// Lock granularities, coarse to fine.
const (
	// GranularityCoarse takes one global inventory lock per operation —
	// full serialization, the most conservative historical design.
	GranularityCoarse LockGranularity = iota
	// GranularityHost maps every lock target to its host (or datastore)
	// subtree, serializing operations per host.
	GranularityHost
	// GranularityEntity locks exactly the target entities.
	GranularityEntity
)

func (g LockGranularity) String() string {
	switch g {
	case GranularityCoarse:
		return "coarse"
	case GranularityHost:
		return "host"
	case GranularityEntity:
		return "entity"
	}
	return fmt.Sprintf("granularity(%d)", int(g))
}

// Config holds the manager's sizing knobs.
type Config struct {
	Threads     int             // manager worker threads
	DBConns     int             // concurrent database connections
	MaxInFlight int             // global in-flight task cap
	HostSlots   int             // per-host agent operation slots
	Granularity LockGranularity // inventory lock granularity

	// Label prefixes the manager's resource names (admission, threads,
	// DB, locks) and metrics keys. A multi-shard plane (internal/plane)
	// sets it to "shardN." so per-shard series stay distinguishable; the
	// empty default keeps every name exactly as a single-manager
	// installation has always reported it.
	Label string

	// SharedDB, when non-nil, replaces the manager's own connection pool
	// with an externally-owned one, so several manager shards contend on
	// one management database (the plane's shared-DB mode). DBConns is
	// ignored when set.
	SharedDB *sim.Resource

	// SharedWAL likewise substitutes an externally-owned detailed WAL
	// database for the one Database would build, sharing group-commit
	// batching (and its queue) across shards. Takes precedence over
	// Database.
	SharedWAL *mgmtdb.DB

	// SharedAgents substitutes an externally-owned host-agent registry.
	// Host agents model per-host daemons — physical objects that exist
	// once no matter how the management plane is sharded — so a
	// multi-shard plane builds one registry and hands it to every shard.
	SharedAgents *hostsim.Registry

	// Database selects the detailed WAL database model (package mgmtdb)
	// instead of the default aggregate-service-time model. When set,
	// DBConns is ignored in favour of Database.Conns, and each
	// operation's DB stage becomes real commits with group-commit
	// semantics — the substrate the E13 batching ablation sweeps.
	Database *mgmtdb.Config

	// Network selects the shared migration-network model (package
	// netsim): live-migration memory copies then contend on one
	// fair-share link (counted as data-plane time) instead of being
	// charged as isolated host-agent work.
	Network *netsim.Config

	// Faults, when set, injects deterministic transient failures and
	// latency stalls into the host, DB, network, and storage stages (see
	// package faults). Build one injector per simulation. With no
	// injector — or an injector whose rates are all zero — Execute's
	// event sequence is bit-for-bit what it was before faults existed.
	Faults *faults.Injector

	// Retry is the policy applied to injected transient failures. The
	// zero value means "one attempt, no retries"; it is only consulted
	// when Faults is set.
	Retry RetryPolicy
}

// RetryPolicy governs how Execute responds to injected transient
// failures. Failed attempts hold the admission slot (and re-take locks,
// threads, DB connections, and host slots) — retries amplify
// control-plane load rather than silently re-queueing.
type RetryPolicy struct {
	// MaxAttempts caps total attempts per task (<=1 means no retries).
	MaxAttempts int
	// BaseBackoff is the delay in seconds before the first retry.
	BaseBackoff float64
	// Multiplier grows the backoff geometrically per retry (values < 1
	// are treated as 1).
	Multiplier float64
	// DeterministicJitter stretches each backoff by up to this fraction,
	// using a seed-derived per-(task, attempt) draw — deterministic, like
	// everything else.
	DeterministicJitter float64
	// Deadline bounds a task's total latency in seconds: a retry whose
	// backoff would exceed it gives up instead. 0 = no deadline.
	Deadline float64
	// Adaptive stretches backoff by the manager's observed fault ratio
	// (faults/attempts so far, tripled): the sicker the plane, the
	// longer retries wait, shedding retry amplification under sustained
	// fault storms. The scaling reads only the manager's own
	// deterministic counters, so runs stay reproducible. false (the
	// default) leaves backoff exactly as before the knob existed.
	Adaptive bool
}

// DefaultRetryPolicy mirrors a production task manager: up to 4
// attempts, 1 s exponential backoff with 25% jitter, 10-minute deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 1, Multiplier: 2, DeterministicJitter: 0.25, Deadline: 600}
}

func (r RetryPolicy) validate() error {
	if r.MaxAttempts < 0 || r.BaseBackoff < 0 || r.Multiplier < 0 || r.DeterministicJitter < 0 || r.Deadline < 0 {
		return fmt.Errorf("mgmt: negative retry policy %+v", r)
	}
	return nil
}

// DefaultConfig mirrors a mid-size production management server.
func DefaultConfig() Config {
	return Config{
		Threads:     16,
		DBConns:     4,
		MaxInFlight: 96,
		HostSlots:   hostsim.DefaultSlots,
		Granularity: GranularityEntity,
	}
}

func (c Config) validate() error {
	if c.Threads <= 0 || c.DBConns <= 0 || c.MaxInFlight <= 0 || c.HostSlots <= 0 {
		return fmt.Errorf("mgmt: non-positive config %+v", c)
	}
	return c.Retry.validate()
}

// Task is the record of one executed management operation.
type Task struct {
	ID        int64
	Req       ops.Request
	HostID    inventory.ID
	Start     sim.Time
	End       sim.Time
	Breakdown ops.Breakdown
	Err       error
	// Attempts counts execution attempts (1 without fault injection;
	// retries of injected transient failures push it higher).
	Attempts int
}

// Latency returns the task's end-to-end seconds.
func (t *Task) Latency() float64 { return t.End - t.Start }

// Manager is the simulated virtualization manager.
type Manager struct {
	env    *sim.Env
	inv    *inventory.Inventory
	pool   *storage.Pool
	agents *hostsim.Registry
	model  *ops.CostModel
	stream *rng.Stream
	cfg    Config

	admission *sim.Resource
	threads   *sim.Resource
	db        *sim.Resource
	waldb     *mgmtdb.DB      // non-nil when cfg.Database is set
	network   *netsim.Network // non-nil when cfg.Network is set
	locks     map[inventory.ID]*sim.Resource
	global    *sim.Resource

	// Pooled lock-path state. Acquisition frames and retired lock
	// resources are recycled, so the steady-state lock path allocates
	// nothing and the lock map no longer grows by one entry per VM
	// ever created (see recycleLock). The kernel runs event bodies one
	// at a time, so plain slices are safe here.
	lockFrames []*lockSet
	lockPool   []*sim.Resource
	globalRel  func()

	nextTaskID int64
	sinks      []func(*Task)

	perKind map[ops.Kind]*kindStats
	errs    int64
	retry   RetryStats

	// Optional instrumentation (nil instruments no-op when metrics are
	// disabled): inventory-lock wait and end-to-end task latency.
	lockWait *metrics.Histogram
	taskLat  *metrics.Histogram

	// lane pinning (see sim.LaneConfig): the event lane this manager's
	// private serialization points are tagged with. Locks created after
	// PinLane inherit it.
	lane       int32
	lanePinned bool
}

type kindStats struct {
	latency  stats.Sample
	sum      ops.Breakdown
	count    int64
	errors   int64
	attempts int64
	giveups  int64
}

// RetryStats aggregates the retry/fault activity across every task.
type RetryStats struct {
	Attempts int64 // execution attempts (>= tasks completed)
	Faults   int64 // injected transient failures observed
	Retries  int64 // attempts beyond each task's first
	GiveUps  int64 // tasks abandoned (attempts exhausted or deadline)
	Deadline int64 // give-ups caused by the deadline (included in GiveUps)
}

// RetryStats returns the manager-wide retry/fault counters.
func (m *Manager) RetryStats() RetryStats { return m.retry }

// GoodputRow is one operation kind's goodput accounting under fault
// injection: how many attempts the completed tasks cost and how many
// tasks were abandoned.
type GoodputRow struct {
	Kind     ops.Kind
	Tasks    int64 // tasks completed (including abandoned ones)
	OK       int64 // tasks that finished without error
	Attempts int64 // execution attempts consumed
	GiveUps  int64 // tasks abandoned by the retry policy
}

// Goodput returns per-kind goodput rows in canonical kind order.
func (m *Manager) Goodput() []GoodputRow {
	var out []GoodputRow
	for _, k := range ops.Kinds() {
		ks, ok := m.perKind[k]
		if !ok {
			continue
		}
		out = append(out, GoodputRow{
			Kind:     k,
			Tasks:    ks.count,
			OK:       ks.count - ks.errors,
			Attempts: ks.attempts,
			GiveUps:  ks.giveups,
		})
	}
	return out
}

// New builds a manager over the given inventory, storage pool, and cost
// model. The stream seeds all stage-time draws.
func New(env *sim.Env, inv *inventory.Inventory, pool *storage.Pool, model *ops.CostModel, stream *rng.Stream, cfg Config) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	agents := cfg.SharedAgents
	if agents == nil {
		agents = hostsim.NewRegistry(env, inv, cfg.HostSlots)
	}
	m := &Manager{
		env:       env,
		inv:       inv,
		pool:      pool,
		agents:    agents,
		model:     model,
		stream:    stream,
		cfg:       cfg,
		admission: sim.NewResource(env, cfg.Label+"mgmt.admission", cfg.MaxInFlight),
		threads:   sim.NewResource(env, cfg.Label+"mgmt.threads", cfg.Threads),
		locks:     make(map[inventory.ID]*sim.Resource),
		global:    sim.NewResource(env, cfg.Label+"mgmt.globallock", 1),
		perKind:   make(map[ops.Kind]*kindStats),
	}
	m.globalRel = func() { m.global.Release(1) }
	if cfg.SharedDB != nil {
		m.db = cfg.SharedDB
	} else {
		m.db = sim.NewResource(env, cfg.Label+"mgmt.db", cfg.DBConns)
	}
	switch {
	case cfg.SharedWAL != nil:
		m.waldb = cfg.SharedWAL
	case cfg.Database != nil:
		waldb, err := mgmtdb.New(env, *cfg.Database)
		if err != nil {
			return nil, err
		}
		m.waldb = waldb
	}
	if cfg.Network != nil {
		network, err := netsim.New(env, *cfg.Network)
		if err != nil {
			return nil, err
		}
		m.network = network
	}
	m.registerMetrics(env.Metrics())
	return m, nil
}

// registerMetrics wires the manager's serialization points — admission,
// worker threads, the database, and inventory locking — into the
// registry. All probes pull statistics the manager accumulates anyway,
// so enabling metrics cannot change the event order.
func (m *Manager) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.admission.RegisterMetrics("mgmt")
	m.threads.RegisterMetrics("mgmt")
	if m.waldb == nil && m.cfg.SharedDB == nil {
		m.db.RegisterMetrics("mgmt")
	}
	if m.cfg.Granularity == GranularityCoarse {
		m.global.RegisterMetrics("mgmt")
	}
	// The Label prefix keeps per-shard series from colliding in the
	// registry (duplicate keys replace the probe); a single manager has
	// an empty label and registers exactly the historical keys.
	m.lockWait = reg.Histogram("mgmt", m.cfg.Label+"inventory.locks", "wait_s")
	m.taskLat = reg.Histogram("mgmt", m.cfg.Label+"tasks", "latency_s")
	reg.ScalarFunc("mgmt", m.cfg.Label+"tasks", "completed", func() float64 { return float64(m.nextTaskID) })
	reg.ScalarFunc("mgmt", m.cfg.Label+"tasks", "errors", func() float64 { return float64(m.errs) })
	reg.ScalarFunc("mgmt", m.cfg.Label+"inventory.locks", "live", func() float64 { return float64(len(m.locks)) })
	if m.cfg.Faults != nil {
		// Retry/failure/goodput series exist only when faults can occur,
		// keeping uninstrumented snapshots identical to pre-faults runs.
		reg.ScalarFunc("mgmt", m.cfg.Label+"retry", "attempts", func() float64 { return float64(m.retry.Attempts) })
		reg.ScalarFunc("mgmt", m.cfg.Label+"retry", "faults", func() float64 { return float64(m.retry.Faults) })
		reg.ScalarFunc("mgmt", m.cfg.Label+"retry", "retries", func() float64 { return float64(m.retry.Retries) })
		reg.ScalarFunc("mgmt", m.cfg.Label+"retry", "giveups", func() float64 { return float64(m.retry.GiveUps) })
		reg.ScalarFunc("mgmt", m.cfg.Label+"retry", "goodput_frac", func() float64 {
			if m.nextTaskID == 0 {
				return 0
			}
			return float64(m.nextTaskID-m.errs) / float64(m.nextTaskID)
		})
		m.cfg.Faults.RegisterMetrics(reg)
	}
}

// PinLane tags the manager's private serialization points — admission,
// worker threads, the per-shard database, inventory locks — with event
// lane l for cross-lane accounting (see sim.LaneConfig). Shared
// resources (a SharedDB pool, a SharedWAL database, the host-agent
// registry) are deliberately left on lane 0, the shared-resource lane:
// acquiring them from a shard lane is exactly the cross-lane
// interaction the conservative barrier window is keyed to.
func (m *Manager) PinLane(l int32) {
	m.lane, m.lanePinned = l, true
	m.admission.PinLane(l)
	m.threads.PinLane(l)
	m.global.PinLane(l)
	switch {
	case m.cfg.SharedDB != nil || m.cfg.SharedWAL != nil:
		// shared instance: plane-owned, stays on lane 0
	case m.waldb != nil:
		m.waldb.PinLane(l)
	default:
		m.db.PinLane(l)
	}
	for _, r := range m.locks {
		r.PinLane(l)
	}
}

// NetworkStats returns migration-network statistics, or (zero, false)
// when no network model is configured.
func (m *Manager) NetworkStats() (bw.EngineStats, bool) {
	if m.network == nil {
		return bw.EngineStats{}, false
	}
	return m.network.Stats(), true
}

// WALStats returns the detailed database statistics, or (zero, false)
// when the manager runs the aggregate DB model.
func (m *Manager) WALStats() (mgmtdb.Stats, bool) {
	if m.waldb == nil {
		return mgmtdb.Stats{}, false
	}
	return m.waldb.Stats(), true
}

// Env returns the simulation environment.
func (m *Manager) Env() *sim.Env { return m.env }

// Inventory returns the managed inventory.
func (m *Manager) Inventory() *inventory.Inventory { return m.inv }

// Storage returns the datastore pool.
func (m *Manager) Storage() *storage.Pool { return m.pool }

// Agents returns the host-agent registry.
func (m *Manager) Agents() *hostsim.Registry { return m.agents }

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// AddTaskSink registers fn to be called with every completed task (used by
// the trace writer and online analyses).
func (m *Manager) AddTaskSink(fn func(*Task)) { m.sinks = append(m.sinks, fn) }

// lockIDsFor maps requested lock targets to actual lock IDs under the
// configured granularity, deduplicated and in canonical order.
//
// Under GranularityEntity only VM targets are locked: VMs are the mutable
// leaves, while host/datastore/template targets exist in the set as
// subtree hints so that GranularityHost can serialize whole subtrees.
// (Capacity mutations themselves are atomic inside operation bodies; the
// locks model serialization cost, which is what the granularity ablation
// measures.)
func (m *Manager) lockIDsFor(targets, buf []inventory.ID) []inventory.ID {
	switch m.cfg.Granularity {
	case GranularityCoarse:
		return nil // signalled by useGlobal
	case GranularityHost:
		mapped := buf[:0]
		for _, id := range targets {
			switch e := m.inv.Get(id).(type) {
			case *inventory.VM:
				mapped = append(mapped, e.HostID)
			case *inventory.Template:
				mapped = append(mapped, e.DatastoreID)
			default:
				mapped = append(mapped, id)
			}
		}
		return inventory.SortIDs(mapped)
	default:
		vms := buf[:0]
		for _, id := range targets {
			if _, ok := m.inv.Get(id).(*inventory.VM); ok {
				vms = append(vms, id)
			}
		}
		return inventory.SortIDs(vms)
	}
}

func (m *Manager) lockFor(id inventory.ID) *sim.Resource {
	if r, ok := m.locks[id]; ok {
		return r
	}
	// Reuse a retired lock when one is free: inventory IDs never repeat,
	// so a recycled resource always stands for a brand-new entity. (The
	// resource keeps its original debug name; lock names never reach an
	// artifact.)
	var r *sim.Resource
	if k := len(m.lockPool); k > 0 {
		r = m.lockPool[k-1]
		m.lockPool[k-1] = nil
		m.lockPool = m.lockPool[:k-1]
	} else {
		r = sim.NewResource(m.env, fmt.Sprintf("lock:%d", id), 1)
	}
	if m.lanePinned {
		r.PinLane(m.lane)
	}
	m.locks[id] = r
	return r
}

// recycleLock retires the lock of a destroyed entity. Without this the
// lock map grows by one entry per VM ever created — a leak on any
// long-lived manager (the reconciliation plane runs forever). The lock
// must be idle; a waiter queued behind the destroy keeps it alive and
// the entry is simply dropped when that waiter's operation fails.
func (m *Manager) recycleLock(id inventory.ID) {
	r, ok := m.locks[id]
	if !ok || r.InUse() > 0 || r.QueueLen() > 0 {
		return
	}
	delete(m.locks, id)
	m.lockPool = append(m.lockPool, r)
}

// lockSet is one attempt's pooled lock-acquisition frame: the mapped
// lock IDs, the resources held, and a reusable release closure. Frames
// return to the manager's pool when released, so steady-state
// acquisition allocates nothing.
type lockSet struct {
	ids     []inventory.ID
	held    []*sim.Resource
	release func()
}

func (m *Manager) getLockFrame() *lockSet {
	if k := len(m.lockFrames); k > 0 {
		ls := m.lockFrames[k-1]
		m.lockFrames[k-1] = nil
		m.lockFrames = m.lockFrames[:k-1]
		return ls
	}
	ls := &lockSet{}
	ls.release = func() {
		for i := len(ls.held) - 1; i >= 0; i-- {
			ls.held[i].Release(1)
		}
		ls.held = ls.held[:0]
		ls.ids = ls.ids[:0]
		m.lockFrames = append(m.lockFrames, ls)
	}
	return ls
}

// acquireLocks takes all locks in canonical order, returning seconds spent
// waiting and the release function. The release function must be called
// exactly once; it recycles the acquisition frame.
func (m *Manager) acquireLocks(p *sim.Proc, targets []inventory.ID) (float64, func()) {
	t0 := p.Now()
	if m.cfg.Granularity == GranularityCoarse {
		m.global.Acquire(p, 1)
		return p.Now() - t0, m.globalRel
	}
	ls := m.getLockFrame()
	ls.ids = m.lockIDsFor(targets, ls.ids)
	for _, id := range ls.ids {
		l := m.lockFor(id)
		l.Acquire(p, 1)
		ls.held = append(ls.held, l)
	}
	return p.Now() - t0, ls.release
}

// ExecSpec describes one operation for Execute.
type ExecSpec struct {
	Req         ops.Request
	LockTargets []inventory.ID
	HostID      inventory.ID            // host-agent stage target (None to skip)
	ExtraHostS  float64                 // added to the sampled host time (e.g. migrate memory copy)
	Pre         ops.Breakdown           // time already spent upstream (cell stage)
	Body        func(p *sim.Proc) error // data-plane work + inventory mutation (may be nil)
}

// Execute runs one operation through admission, locks, manager threads,
// the database, the host agent, and the data-plane body, and returns the
// completed task. The task's Start is the request's Submit time when
// stamped (so upstream cell queueing counts toward latency); spec.Pre
// seeds the breakdown with that upstream time.
//
// With a fault injector configured, an attempt can transiently fail in
// the DB, host, network, or storage stage; Execute then backs off per
// the retry policy and re-runs the attempt — re-taking locks, threads,
// DB connections, and host slots while still holding the admission slot,
// so retries amplify control-plane load instead of vanishing into a
// queue. Every injection point precedes the data-plane Body, so a
// successful inventory mutation is never re-run. Without an injector
// (or with all-zero rates) the event sequence is unchanged.
func (m *Manager) Execute(p *sim.Proc, spec ExecSpec) *Task {
	start := p.Now()
	if spec.Req.Submit > 0 && sim.Time(spec.Req.Submit) <= start {
		start = sim.Time(spec.Req.Submit)
	}
	task := &Task{ID: m.nextTaskID, Req: spec.Req, HostID: spec.HostID, Start: start, Breakdown: spec.Pre}
	m.nextTaskID++
	// One stage-time sample per task, shared by every attempt: retries
	// redo the same work, and the disabled-faults draw sequence stays
	// exactly one Sample per task.
	sample := m.model.Sample(m.stream, spec.Req.Kind)

	// 1. Global admission — acquired once and held across all attempts
	// (including backoff waits): a retrying task keeps its in-flight slot.
	t0 := p.Now()
	m.admission.Acquire(p, 1)
	task.Breakdown.Queue += p.Now() - t0
	defer m.admission.Release(1)

	maxAttempts := 1
	if m.cfg.Faults != nil && m.cfg.Retry.MaxAttempts > 1 {
		maxAttempts = m.cfg.Retry.MaxAttempts
	}
	for attempt := 1; ; attempt++ {
		task.Attempts = attempt
		m.retry.Attempts++
		m.kindStatsFor(spec.Req.Kind).attempts++
		flt := m.runAttempt(p, task, spec, sample, attempt)
		if flt == nil {
			break // success, or a permanent (body) error — no retry
		}
		m.retry.Faults++
		if attempt >= maxAttempts {
			task.Err = fmt.Errorf("mgmt: giving up after %d attempts: %w", attempt, flt)
			m.giveUp(task, false)
			break
		}
		backoff := m.backoff(task.ID, attempt)
		if d := m.cfg.Retry.Deadline; d > 0 && p.Now()-task.Start+backoff >= d {
			task.Err = fmt.Errorf("mgmt: retry deadline %.0fs exceeded after %d attempts: %w", d, attempt, flt)
			m.giveUp(task, true)
			break
		}
		m.retry.Retries++
		p.Sleep(backoff)
		task.Breakdown.Queue += backoff
	}

	task.End = p.Now()
	m.record(task)
	return task
}

func (m *Manager) kindStatsFor(k ops.Kind) *kindStats {
	ks, ok := m.perKind[k]
	if !ok {
		ks = &kindStats{}
		m.perKind[k] = ks
	}
	return ks
}

func (m *Manager) giveUp(task *Task, deadline bool) {
	m.retry.GiveUps++
	if deadline {
		m.retry.Deadline++
	}
	m.kindStatsFor(task.Req.Kind).giveups++
}

// backoff computes the delay before retrying after the attempt-th
// failure: BaseBackoff · Multiplier^(attempt-1), stretched by the
// deterministic per-(task, attempt) jitter draw.
func (m *Manager) backoff(taskID int64, attempt int) float64 {
	b := m.cfg.Retry.BaseBackoff
	if b <= 0 {
		b = 1
	}
	mult := m.cfg.Retry.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		b *= mult
	}
	if m.cfg.Retry.Adaptive && m.retry.Attempts > 0 {
		b *= 1 + 3*float64(m.retry.Faults)/float64(m.retry.Attempts)
	}
	if j := m.cfg.Retry.DeterministicJitter; j > 0 {
		b *= 1 + j*m.cfg.Faults.JitterU(taskID, attempt)
	}
	return b
}

// runAttempt executes one attempt: locks → pre-processing → host agent →
// data-plane body → post-processing. It returns a non-nil *faults.Error
// when an injected transient failure aborted the attempt; permanent body
// errors are stored on the task directly (no retry). Locks are released
// when the attempt ends, so a backing-off task holds only its admission
// slot.
//
// Injection points all sit before the Body runs: the pre-DB stage (a
// commit failure or stall), the host-agent stage (agent failure or
// stall), and the data plane's entry (network degradation for migrations
// over netsim, storage latency spikes otherwise). A failed attempt still
// pays for everything up to the failure — that wasted work is the retry
// amplification E17 measures. Post stages are past the point of no
// return and are never injected.
func (m *Manager) runAttempt(p *sim.Proc, task *Task, spec ExecSpec, sample ops.StageSample, attempt int) *faults.Error {
	kind := spec.Req.Kind.String()

	// 2. Inventory locks.
	wait, release := m.acquireLocks(p, spec.LockTargets)
	m.lockWait.Observe(wait)
	task.Breakdown.Queue += wait
	defer release()

	// 3. Manager pre-processing (validation, task creation, inventory
	// reads) — 60% of the manager's share, before dispatch.
	writes := m.model.Stage[spec.Req.Kind].DBWrites
	preWrites := (writes*6 + 9) / 10
	m.mgmtStage(p, task, sample.Mgmt*0.6)
	dbOut := m.cfg.Faults.Decide(faults.LayerDB, kind, task.ID, attempt)
	m.dbStage(p, task, sample.DB*0.6, preWrites, dbOut.StallS)
	if dbOut.Fail {
		return &faults.Error{Layer: faults.LayerDB, Op: kind, Attempt: attempt}
	}

	// 4. Host-agent execution.
	if spec.HostID != inventory.None {
		// The registry interns agents by host ID; the name is only needed
		// on first sight of a host, so the common path formats nothing.
		agent := m.agents.Agent(spec.HostID)
		if agent == nil {
			name := fmt.Sprintf("host:%d", spec.HostID)
			if h := m.inv.Host(spec.HostID); h != nil {
				name = h.Name
			}
			agent = m.agents.Ensure(spec.HostID, name)
		}
		hostOut := m.cfg.Faults.Decide(faults.LayerHost, kind, task.ID, attempt)
		waited, served := agent.Exec(p, sample.Host+spec.ExtraHostS+hostOut.StallS)
		task.Breakdown.Queue += waited
		task.Breakdown.Host += served
		if hostOut.Fail {
			return &faults.Error{Layer: faults.LayerHost, Op: kind, Attempt: attempt}
		}
	}

	// 5. Data plane.
	if spec.Body != nil {
		layer := faults.LayerStorage
		if m.network != nil && spec.Req.Kind == ops.KindMigrate {
			layer = faults.LayerNet
		}
		out := m.cfg.Faults.Decide(layer, kind, task.ID, attempt)
		if out.StallS > 0 {
			p.Sleep(out.StallS)
			task.Breakdown.Data += out.StallS
		}
		if out.Fail {
			return &faults.Error{Layer: layer, Op: kind, Attempt: attempt}
		}
		d0 := p.Now()
		task.Err = spec.Body(p)
		task.Breakdown.Data += p.Now() - d0
	}

	// 6. Manager post-processing and final DB updates (task completion,
	// inventory commit).
	m.mgmtStage(p, task, sample.Mgmt*0.4)
	m.dbStage(p, task, sample.DB*0.4, writes-preWrites, 0)
	return nil
}

func (m *Manager) mgmtStage(p *sim.Proc, task *Task, seconds float64) {
	if seconds <= 0 {
		return
	}
	t0 := p.Now()
	m.threads.Acquire(p, 1)
	task.Breakdown.Queue += p.Now() - t0
	p.Sleep(seconds)
	m.threads.Release(1)
	task.Breakdown.Mgmt += seconds
}

// dbStage charges one database interaction. Under the aggregate model it
// is `seconds` of service behind the connection pool; under the WAL model
// it is `writes` real row commits with group-commit durability. stallS
// is injected fault latency: folded into the aggregate service time, or
// charged as a pre-commit delay under the WAL model (always 0 when
// faults are off, so the disabled path schedules no extra events).
func (m *Manager) dbStage(p *sim.Proc, task *Task, seconds float64, writes int, stallS float64) {
	if m.waldb != nil {
		if stallS > 0 {
			p.Sleep(stallS)
			task.Breakdown.DB += stallS
		}
		if writes <= 0 {
			return
		}
		wait, service := m.waldb.Commit(p, writes)
		task.Breakdown.Queue += wait
		task.Breakdown.DB += service
		return
	}
	seconds += stallS
	if seconds <= 0 {
		return
	}
	t0 := p.Now()
	m.db.Acquire(p, 1)
	task.Breakdown.Queue += p.Now() - t0
	p.Sleep(seconds)
	m.db.Release(1)
	task.Breakdown.DB += seconds
}

func (m *Manager) record(t *Task) {
	ks := m.kindStatsFor(t.Req.Kind)
	ks.latency.Add(t.Latency())
	ks.sum = ks.sum.Add(t.Breakdown)
	ks.count++
	m.taskLat.Observe(t.Latency())
	if t.Err != nil {
		m.errs++
		ks.errors++
	}
	for _, fn := range m.sinks {
		fn(t)
	}
}

// KindSummary aggregates completed tasks of one kind.
type KindSummary struct {
	Kind          ops.Kind
	Count         int64
	Errors        int64 // included in Count
	MeanLatency   float64
	P95Latency    float64
	MaxLatency    float64
	MeanBreakdown ops.Breakdown
}

// Summary returns per-kind aggregates for every kind executed so far, in
// canonical kind order.
func (m *Manager) Summary() []KindSummary {
	var out []KindSummary
	for _, k := range ops.Kinds() {
		ks, ok := m.perKind[k]
		if !ok {
			continue
		}
		out = append(out, KindSummary{
			Kind:          k,
			Count:         ks.count,
			Errors:        ks.errors,
			MeanLatency:   ks.latency.Mean(),
			P95Latency:    ks.latency.Percentile(95),
			MaxLatency:    ks.latency.Max(),
			MeanBreakdown: ks.sum.Scale(1 / float64(ks.count)),
		})
	}
	return out
}

// TasksCompleted returns the number of tasks executed.
func (m *Manager) TasksCompleted() int64 { return m.nextTaskID }

// TaskErrors returns the number of tasks that completed with an error.
func (m *Manager) TaskErrors() int64 { return m.errs }

// ResourceReport exposes the manager's serialization points for the
// queueing experiments.
type ResourceReport struct {
	Admission sim.ResourceStats
	Threads   sim.ResourceStats
	DB        sim.ResourceStats
}

// Resources returns current resource statistics.
func (m *Manager) Resources() ResourceReport {
	return ResourceReport{
		Admission: m.admission.Stats(),
		Threads:   m.threads.Stats(),
		DB:        m.db.Stats(),
	}
}
