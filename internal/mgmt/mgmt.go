// Package mgmt simulates the virtualization manager — the vCenter-style
// server every management operation funnels through. It models the four
// serialization points that make the management control plane a workload
// of its own:
//
//   - global task admission (a bounded number of in-flight operations),
//   - a finite worker-thread pool for manager-side processing,
//   - the management database (bounded connections, per-write cost), and
//   - hierarchical inventory locks (configurable granularity).
//
// Execute runs one operation through all of them, charging stage service
// times drawn from the ops cost model, dispatching host-side work to the
// per-host agents, and timing the caller-supplied data-plane body. The
// resulting per-task Breakdown is what the characterization pipeline and
// the paper-style figures consume.
package mgmt

import (
	"fmt"

	"cloudmcp/internal/bw"
	"cloudmcp/internal/hostsim"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/metrics"
	"cloudmcp/internal/mgmtdb"
	"cloudmcp/internal/netsim"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/stats"
	"cloudmcp/internal/storage"
)

// LockGranularity selects how much of the inventory an operation locks.
type LockGranularity int

// Lock granularities, coarse to fine.
const (
	// GranularityCoarse takes one global inventory lock per operation —
	// full serialization, the most conservative historical design.
	GranularityCoarse LockGranularity = iota
	// GranularityHost maps every lock target to its host (or datastore)
	// subtree, serializing operations per host.
	GranularityHost
	// GranularityEntity locks exactly the target entities.
	GranularityEntity
)

func (g LockGranularity) String() string {
	switch g {
	case GranularityCoarse:
		return "coarse"
	case GranularityHost:
		return "host"
	case GranularityEntity:
		return "entity"
	}
	return fmt.Sprintf("granularity(%d)", int(g))
}

// Config holds the manager's sizing knobs.
type Config struct {
	Threads     int             // manager worker threads
	DBConns     int             // concurrent database connections
	MaxInFlight int             // global in-flight task cap
	HostSlots   int             // per-host agent operation slots
	Granularity LockGranularity // inventory lock granularity

	// Database selects the detailed WAL database model (package mgmtdb)
	// instead of the default aggregate-service-time model. When set,
	// DBConns is ignored in favour of Database.Conns, and each
	// operation's DB stage becomes real commits with group-commit
	// semantics — the substrate the E13 batching ablation sweeps.
	Database *mgmtdb.Config

	// Network selects the shared migration-network model (package
	// netsim): live-migration memory copies then contend on one
	// fair-share link (counted as data-plane time) instead of being
	// charged as isolated host-agent work.
	Network *netsim.Config
}

// DefaultConfig mirrors a mid-size production management server.
func DefaultConfig() Config {
	return Config{
		Threads:     16,
		DBConns:     4,
		MaxInFlight: 96,
		HostSlots:   hostsim.DefaultSlots,
		Granularity: GranularityEntity,
	}
}

func (c Config) validate() error {
	if c.Threads <= 0 || c.DBConns <= 0 || c.MaxInFlight <= 0 || c.HostSlots <= 0 {
		return fmt.Errorf("mgmt: non-positive config %+v", c)
	}
	return nil
}

// Task is the record of one executed management operation.
type Task struct {
	ID        int64
	Req       ops.Request
	HostID    inventory.ID
	Start     sim.Time
	End       sim.Time
	Breakdown ops.Breakdown
	Err       error
}

// Latency returns the task's end-to-end seconds.
func (t *Task) Latency() float64 { return t.End - t.Start }

// Manager is the simulated virtualization manager.
type Manager struct {
	env    *sim.Env
	inv    *inventory.Inventory
	pool   *storage.Pool
	agents *hostsim.Registry
	model  *ops.CostModel
	stream *rng.Stream
	cfg    Config

	admission *sim.Resource
	threads   *sim.Resource
	db        *sim.Resource
	waldb     *mgmtdb.DB      // non-nil when cfg.Database is set
	network   *netsim.Network // non-nil when cfg.Network is set
	locks     map[inventory.ID]*sim.Resource
	global    *sim.Resource

	nextTaskID int64
	sinks      []func(*Task)

	perKind map[ops.Kind]*kindStats
	errs    int64

	// Optional instrumentation (nil instruments no-op when metrics are
	// disabled): inventory-lock wait and end-to-end task latency.
	lockWait *metrics.Histogram
	taskLat  *metrics.Histogram
}

type kindStats struct {
	latency stats.Sample
	sum     ops.Breakdown
	count   int64
}

// New builds a manager over the given inventory, storage pool, and cost
// model. The stream seeds all stage-time draws.
func New(env *sim.Env, inv *inventory.Inventory, pool *storage.Pool, model *ops.CostModel, stream *rng.Stream, cfg Config) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		env:       env,
		inv:       inv,
		pool:      pool,
		agents:    hostsim.NewRegistry(env, inv, cfg.HostSlots),
		model:     model,
		stream:    stream,
		cfg:       cfg,
		admission: sim.NewResource(env, "mgmt.admission", cfg.MaxInFlight),
		threads:   sim.NewResource(env, "mgmt.threads", cfg.Threads),
		db:        sim.NewResource(env, "mgmt.db", cfg.DBConns),
		locks:     make(map[inventory.ID]*sim.Resource),
		global:    sim.NewResource(env, "mgmt.globallock", 1),
		perKind:   make(map[ops.Kind]*kindStats),
	}
	if cfg.Database != nil {
		waldb, err := mgmtdb.New(env, *cfg.Database)
		if err != nil {
			return nil, err
		}
		m.waldb = waldb
	}
	if cfg.Network != nil {
		network, err := netsim.New(env, *cfg.Network)
		if err != nil {
			return nil, err
		}
		m.network = network
	}
	m.registerMetrics(env.Metrics())
	return m, nil
}

// registerMetrics wires the manager's serialization points — admission,
// worker threads, the database, and inventory locking — into the
// registry. All probes pull statistics the manager accumulates anyway,
// so enabling metrics cannot change the event order.
func (m *Manager) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.admission.RegisterMetrics("mgmt")
	m.threads.RegisterMetrics("mgmt")
	if m.waldb == nil {
		m.db.RegisterMetrics("mgmt")
	}
	if m.cfg.Granularity == GranularityCoarse {
		m.global.RegisterMetrics("mgmt")
	}
	m.lockWait = reg.Histogram("mgmt", "inventory.locks", "wait_s")
	m.taskLat = reg.Histogram("mgmt", "tasks", "latency_s")
	reg.ScalarFunc("mgmt", "tasks", "completed", func() float64 { return float64(m.nextTaskID) })
	reg.ScalarFunc("mgmt", "tasks", "errors", func() float64 { return float64(m.errs) })
	reg.ScalarFunc("mgmt", "inventory.locks", "live", func() float64 { return float64(len(m.locks)) })
}

// NetworkStats returns migration-network statistics, or (zero, false)
// when no network model is configured.
func (m *Manager) NetworkStats() (bw.EngineStats, bool) {
	if m.network == nil {
		return bw.EngineStats{}, false
	}
	return m.network.Stats(), true
}

// WALStats returns the detailed database statistics, or (zero, false)
// when the manager runs the aggregate DB model.
func (m *Manager) WALStats() (mgmtdb.Stats, bool) {
	if m.waldb == nil {
		return mgmtdb.Stats{}, false
	}
	return m.waldb.Stats(), true
}

// Env returns the simulation environment.
func (m *Manager) Env() *sim.Env { return m.env }

// Inventory returns the managed inventory.
func (m *Manager) Inventory() *inventory.Inventory { return m.inv }

// Storage returns the datastore pool.
func (m *Manager) Storage() *storage.Pool { return m.pool }

// Agents returns the host-agent registry.
func (m *Manager) Agents() *hostsim.Registry { return m.agents }

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// AddTaskSink registers fn to be called with every completed task (used by
// the trace writer and online analyses).
func (m *Manager) AddTaskSink(fn func(*Task)) { m.sinks = append(m.sinks, fn) }

// lockIDsFor maps requested lock targets to actual lock IDs under the
// configured granularity, deduplicated and in canonical order.
//
// Under GranularityEntity only VM targets are locked: VMs are the mutable
// leaves, while host/datastore/template targets exist in the set as
// subtree hints so that GranularityHost can serialize whole subtrees.
// (Capacity mutations themselves are atomic inside operation bodies; the
// locks model serialization cost, which is what the granularity ablation
// measures.)
func (m *Manager) lockIDsFor(targets []inventory.ID) []inventory.ID {
	switch m.cfg.Granularity {
	case GranularityCoarse:
		return nil // signalled by useGlobal
	case GranularityHost:
		mapped := make([]inventory.ID, 0, len(targets))
		for _, id := range targets {
			switch e := m.inv.Get(id).(type) {
			case *inventory.VM:
				mapped = append(mapped, e.HostID)
			case *inventory.Template:
				mapped = append(mapped, e.DatastoreID)
			default:
				mapped = append(mapped, id)
			}
		}
		return inventory.SortIDs(mapped)
	default:
		vms := make([]inventory.ID, 0, len(targets))
		for _, id := range targets {
			if _, ok := m.inv.Get(id).(*inventory.VM); ok {
				vms = append(vms, id)
			}
		}
		return inventory.SortIDs(vms)
	}
}

func (m *Manager) lockFor(id inventory.ID) *sim.Resource {
	if r, ok := m.locks[id]; ok {
		return r
	}
	r := sim.NewResource(m.env, fmt.Sprintf("lock:%d", id), 1)
	m.locks[id] = r
	return r
}

// acquireLocks takes all locks in canonical order, returning seconds spent
// waiting and the release function.
func (m *Manager) acquireLocks(p *sim.Proc, targets []inventory.ID) (float64, func()) {
	t0 := p.Now()
	if m.cfg.Granularity == GranularityCoarse {
		m.global.Acquire(p, 1)
		return p.Now() - t0, func() { m.global.Release(1) }
	}
	ids := m.lockIDsFor(targets)
	held := make([]*sim.Resource, 0, len(ids))
	for _, id := range ids {
		l := m.lockFor(id)
		l.Acquire(p, 1)
		held = append(held, l)
	}
	return p.Now() - t0, func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].Release(1)
		}
	}
}

// ExecSpec describes one operation for Execute.
type ExecSpec struct {
	Req         ops.Request
	LockTargets []inventory.ID
	HostID      inventory.ID            // host-agent stage target (None to skip)
	ExtraHostS  float64                 // added to the sampled host time (e.g. migrate memory copy)
	Pre         ops.Breakdown           // time already spent upstream (cell stage)
	Body        func(p *sim.Proc) error // data-plane work + inventory mutation (may be nil)
}

// Execute runs one operation through admission, locks, manager threads,
// the database, the host agent, and the data-plane body, and returns the
// completed task. The task's Start is the request's Submit time when
// stamped (so upstream cell queueing counts toward latency); spec.Pre
// seeds the breakdown with that upstream time.
func (m *Manager) Execute(p *sim.Proc, spec ExecSpec) *Task {
	start := p.Now()
	if spec.Req.Submit > 0 && sim.Time(spec.Req.Submit) <= start {
		start = sim.Time(spec.Req.Submit)
	}
	task := &Task{ID: m.nextTaskID, Req: spec.Req, HostID: spec.HostID, Start: start, Breakdown: spec.Pre}
	m.nextTaskID++
	sample := m.model.Sample(m.stream, spec.Req.Kind)

	// 1. Global admission.
	t0 := p.Now()
	m.admission.Acquire(p, 1)
	task.Breakdown.Queue += p.Now() - t0
	defer m.admission.Release(1)

	// 2. Inventory locks.
	wait, release := m.acquireLocks(p, spec.LockTargets)
	m.lockWait.Observe(wait)
	task.Breakdown.Queue += wait
	defer release()

	// 3. Manager pre-processing (validation, task creation, inventory
	// reads) — 60% of the manager's share, before dispatch.
	writes := m.model.Stage[spec.Req.Kind].DBWrites
	preWrites := (writes*6 + 9) / 10
	m.mgmtStage(p, task, sample.Mgmt*0.6)
	m.dbStage(p, task, sample.DB*0.6, preWrites)

	// 4. Host-agent execution.
	if spec.HostID != inventory.None {
		h := m.inv.Host(spec.HostID)
		name := fmt.Sprintf("host:%d", spec.HostID)
		if h != nil {
			name = h.Name
		}
		agent := m.agents.Ensure(spec.HostID, name)
		waited, served := agent.Exec(p, sample.Host+spec.ExtraHostS)
		task.Breakdown.Queue += waited
		task.Breakdown.Host += served
	}

	// 5. Data plane.
	if spec.Body != nil {
		d0 := p.Now()
		task.Err = spec.Body(p)
		task.Breakdown.Data += p.Now() - d0
	}

	// 6. Manager post-processing and final DB updates (task completion,
	// inventory commit).
	m.mgmtStage(p, task, sample.Mgmt*0.4)
	m.dbStage(p, task, sample.DB*0.4, writes-preWrites)

	task.End = p.Now()
	m.record(task)
	return task
}

func (m *Manager) mgmtStage(p *sim.Proc, task *Task, seconds float64) {
	if seconds <= 0 {
		return
	}
	t0 := p.Now()
	m.threads.Acquire(p, 1)
	task.Breakdown.Queue += p.Now() - t0
	p.Sleep(seconds)
	m.threads.Release(1)
	task.Breakdown.Mgmt += seconds
}

// dbStage charges one database interaction. Under the aggregate model it
// is `seconds` of service behind the connection pool; under the WAL model
// it is `writes` real row commits with group-commit durability.
func (m *Manager) dbStage(p *sim.Proc, task *Task, seconds float64, writes int) {
	if m.waldb != nil {
		if writes <= 0 {
			return
		}
		wait, service := m.waldb.Commit(p, writes)
		task.Breakdown.Queue += wait
		task.Breakdown.DB += service
		return
	}
	if seconds <= 0 {
		return
	}
	t0 := p.Now()
	m.db.Acquire(p, 1)
	task.Breakdown.Queue += p.Now() - t0
	p.Sleep(seconds)
	m.db.Release(1)
	task.Breakdown.DB += seconds
}

func (m *Manager) record(t *Task) {
	ks, ok := m.perKind[t.Req.Kind]
	if !ok {
		ks = &kindStats{}
		m.perKind[t.Req.Kind] = ks
	}
	ks.latency.Add(t.Latency())
	ks.sum = ks.sum.Add(t.Breakdown)
	ks.count++
	m.taskLat.Observe(t.Latency())
	if t.Err != nil {
		m.errs++
	}
	for _, fn := range m.sinks {
		fn(t)
	}
}

// KindSummary aggregates completed tasks of one kind.
type KindSummary struct {
	Kind          ops.Kind
	Count         int64
	Errors        int64 // included in Count
	MeanLatency   float64
	P95Latency    float64
	MaxLatency    float64
	MeanBreakdown ops.Breakdown
}

// Summary returns per-kind aggregates for every kind executed so far, in
// canonical kind order.
func (m *Manager) Summary() []KindSummary {
	var out []KindSummary
	for _, k := range ops.Kinds() {
		ks, ok := m.perKind[k]
		if !ok {
			continue
		}
		out = append(out, KindSummary{
			Kind:          k,
			Count:         ks.count,
			MeanLatency:   ks.latency.Mean(),
			P95Latency:    ks.latency.Percentile(95),
			MaxLatency:    ks.latency.Max(),
			MeanBreakdown: ks.sum.Scale(1 / float64(ks.count)),
		})
	}
	return out
}

// TasksCompleted returns the number of tasks executed.
func (m *Manager) TasksCompleted() int64 { return m.nextTaskID }

// TaskErrors returns the number of tasks that completed with an error.
func (m *Manager) TaskErrors() int64 { return m.errs }

// ResourceReport exposes the manager's serialization points for the
// queueing experiments.
type ResourceReport struct {
	Admission sim.ResourceStats
	Threads   sim.ResourceStats
	DB        sim.ResourceStats
}

// Resources returns current resource statistics.
func (m *Manager) Resources() ResourceReport {
	return ResourceReport{
		Admission: m.admission.Stats(),
		Threads:   m.threads.Stats(),
		DB:        m.db.Stats(),
	}
}
