package mgmt

import (
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/storage"
)

// API is the management-plane surface the layers above the manager
// program against: the cloud director, the workload generators, and the
// DRS balancer all submit operations through it. A single *Manager
// satisfies it directly; *plane.Plane satisfies it by routing each call
// to the shard owning the target host (and through the two-phase
// coordinator when an operation spans shards). Code that needs
// shard-local details — the HA engine, the restart-storm experiments —
// keeps a concrete *Manager instead.
type API interface {
	// Operation wrappers, one per ops.Kind the upper layers submit.
	DeployVM(p *sim.Proc, name string, tpl *inventory.Template, host *inventory.Host, ds *inventory.Datastore, mode ops.CloneMode, ctx ReqCtx) (*inventory.VM, *Task)
	PowerOn(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	PowerOff(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	SnapshotCreate(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	SnapshotRemove(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	Reconfigure(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	Migrate(p *sim.Proc, vm *inventory.VM, dst *inventory.Host, ctx ReqCtx) *Task
	StorageMigrate(p *sim.Proc, vm *inventory.VM, dst *inventory.Datastore, ctx ReqCtx) *Task
	Destroy(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	Consolidate(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	Suspend(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	Resume(p *sim.Proc, vm *inventory.VM, ctx ReqCtx) *Task
	EnterMaintenance(p *sim.Proc, host *inventory.Host, ctx ReqCtx) *Task
	ExitMaintenance(p *sim.Proc, host *inventory.Host, ctx ReqCtx) *Task
	FullCopyTemplate(p *sim.Proc, tpl *inventory.Template, dst *inventory.Datastore, name string) (*inventory.Template, error)

	// Execute submits a pre-built spec; the director's lease-expiry and
	// consolidation paths use it for composite operations.
	Execute(p *sim.Proc, spec ExecSpec) *Task

	// Shared state and instrumentation.
	Inventory() *inventory.Inventory
	Storage() *storage.Pool
	AddTaskSink(fn func(*Task))
	TasksCompleted() int64
	TaskErrors() int64
	Goodput() []GoodputRow
	RetryStats() RetryStats

	// Topology. A plain manager is a one-shard plane.
	ShardCount() int
	ShardOf(host inventory.ID) int
}

var _ API = (*Manager)(nil)

// ShardCount reports how many management shards stand behind this
// endpoint; a plain manager is always exactly one.
func (m *Manager) ShardCount() int { return 1 }

// ShardOf reports which shard owns the given host: always 0 for a plain
// manager.
func (m *Manager) ShardOf(host inventory.ID) int { return 0 }

// DBRoundTrip charges one management-database round-trip of the given
// aggregate service time against this manager's database, returning the
// seconds spent queueing and in service. The multi-shard coordinator
// uses it for two-phase prepare/commit traffic; under the WAL model a
// round-trip is one real row commit (serviceS is subsumed by the
// commit's own service time).
func (m *Manager) DBRoundTrip(p *sim.Proc, serviceS float64) (wait, service float64) {
	if m.waldb != nil {
		return m.waldb.Commit(p, 1)
	}
	if serviceS <= 0 {
		return 0, 0
	}
	t0 := p.Now()
	m.db.Acquire(p, 1)
	wait = p.Now() - t0
	p.Sleep(serviceS)
	m.db.Release(1)
	return wait, serviceS
}
