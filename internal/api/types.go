// Package api is the VCD-style REST serving surface over a paced
// simulation: sessions, org/vDC queries, vApp operations that return
// async task handles, and task polling. The server is a plain
// net/http handler backed by core.Frontend, so the same process can be
// driven by cmd/mcpserve (a real listener), by httptest in the unit
// suite, or in-process by the E22 load experiment.
//
// The shape follows the vCloud Director API the paper's workload was
// captured from: POST /api/sessions authenticates user@org and returns
// an x-vcloud-authorization token, provisioning POSTs return 202 with a
// task href, and clients poll the task until it reaches a terminal
// state — in this system, resolved in virtual time by the simulated
// control plane.
package api

import (
	"strconv"

	"cloudmcp/internal/core"
	"cloudmcp/internal/inventory"
)

// SessionJSON is the body returned by session create/query.
type SessionJSON struct {
	User  string `json:"user"`
	Org   string `json:"org"`
	Href  string `json:"href"`
	Token string `json:"token,omitempty"`
}

// OrgRefJSON is one entry of the org listing.
type OrgRefJSON struct {
	Name string `json:"name"`
	Href string `json:"href"`
}

// OrgJSON is the org detail view.
type OrgJSON struct {
	Name     string     `json:"name"`
	QuotaVMs int        `json:"quotaVMs"`
	LiveVMs  int        `json:"liveVMs"`
	VDCHref  string     `json:"vdcHref"`
	VApps    []VAppJSON `json:"vApps"`
}

// VAppJSON is the org-scoped vApp view.
type VAppJSON struct {
	ID        int64  `json:"id"`
	Name      string `json:"name"`
	Org       string `json:"org"`
	VMs       int    `json:"vms"`
	PoweredOn int    `json:"poweredOn"`
	Href      string `json:"href"`
}

// VDCJSON is the provider-vDC capacity view plus the session org's
// vApps.
type VDCJSON struct {
	Name        string         `json:"name"`
	CPUMHz      int            `json:"cpuMHz"`
	UsedCPUMHz  int            `json:"usedCPUMHz"`
	MemMB       int            `json:"memMB"`
	UsedMemMB   int            `json:"usedMemMB"`
	CapacityGB  float64        `json:"capacityGB"`
	UsedGB      float64        `json:"usedGB"`
	Hosts       int            `json:"hosts"`
	Datastores  int            `json:"datastores"`
	VMs         int            `json:"vms"`
	VApps       int            `json:"vApps"`
	Shards      int            `json:"shards"`
	VirtualNowS float64        `json:"virtualNowS"`
	Templates   []TemplateJSON `json:"templates"`
}

// TemplateJSON is one catalog entry.
type TemplateJSON struct {
	Name   string  `json:"name"`
	DiskGB float64 `json:"diskGB"`
	MemMB  int     `json:"memMB"`
	CPUs   int     `json:"cpus"`
}

// InstantiateJSON is the body of instantiateVAppTemplate.
type InstantiateJSON struct {
	Template string `json:"template"`
	VMs      int    `json:"vms"`
	PowerOn  bool   `json:"powerOn"`
}

// TaskJSON is the async task handle clients poll. Times are virtual
// seconds; queueWaitS is the API-layer share, latencyS the end-to-end
// total including it.
type TaskJSON struct {
	ID         int64   `json:"id"`
	Operation  string  `json:"operation"`
	Org        string  `json:"org"`
	Status     string  `json:"status"`
	Href       string  `json:"href"`
	SubmitS    float64 `json:"submitS"`
	StartS     float64 `json:"startS"`
	EndS       float64 `json:"endS"`
	QueueWaitS float64 `json:"queueWaitS"`
	LatencyS   float64 `json:"latencyS"`
	MgmtTasks  int     `json:"mgmtTasks"`
	Error      string  `json:"error,omitempty"`
	VAppID     int64   `json:"vAppId,omitempty"`
	VAppName   string  `json:"vAppName,omitempty"`
	VAppHref   string  `json:"vAppHref,omitempty"`
}

// StatsJSON is the operator view served under /api/admin/stats.
type StatsJSON struct {
	Submitted      int64   `json:"submitted"`
	Completed      int64   `json:"completed"`
	Failed         int64   `json:"failed"`
	InFlight       int64   `json:"inFlight"`
	QueueWaitSumS  float64 `json:"queueWaitSumS"`
	QueueWaitMeanS float64 `json:"queueWaitMeanS"`
	VirtualNowS    float64 `json:"virtualNowS"`
	PacedRatio     float64 `json:"pacedRatio"`
	Shards         int     `json:"shards"`
	Sessions       int     `json:"sessions"`
}

// ErrorJSON is the uniform error body.
type ErrorJSON struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

func taskJSON(t core.TaskInfo) TaskJSON {
	out := TaskJSON{
		ID:         t.ID,
		Operation:  string(t.Op),
		Org:        t.Org,
		Status:     string(t.State),
		Href:       taskHref(t.ID),
		SubmitS:    float64(t.SubmitV),
		StartS:     float64(t.StartV),
		EndS:       float64(t.EndV),
		QueueWaitS: t.QueueWaitS,
		LatencyS:   t.Latency(),
		MgmtTasks:  t.MgmtTasks,
		Error:      t.Error,
	}
	if t.VApp != inventory.None {
		out.VAppID = int64(t.VApp)
		out.VAppName = t.VAppName
		out.VAppHref = vappHref(t.VApp)
	}
	return out
}

func vappJSON(v core.VAppView) VAppJSON {
	return VAppJSON{
		ID: int64(v.ID), Name: v.Name, Org: v.Org,
		VMs: v.VMs, PoweredOn: v.PoweredOn, Href: vappHref(v.ID),
	}
}

func vdcJSON(pv core.ProviderView) VDCJSON {
	out := VDCJSON{
		Name:        "provider-vdc",
		CPUMHz:      pv.CPUMHz,
		UsedCPUMHz:  pv.UsedCPUMHz,
		MemMB:       pv.MemMB,
		UsedMemMB:   pv.UsedMemMB,
		CapacityGB:  pv.CapacityGB,
		UsedGB:      pv.UsedGB,
		Hosts:       pv.Hosts,
		Datastores:  pv.Datastores,
		VMs:         pv.VMs,
		VApps:       pv.VApps,
		Shards:      pv.ShardCount,
		VirtualNowS: float64(pv.VirtualNowS),
	}
	for _, t := range pv.TemplateList {
		out.Templates = append(out.Templates, TemplateJSON{
			Name: t.Name, DiskGB: t.DiskGB, MemMB: t.MemMB, CPUs: t.CPUs,
		})
	}
	return out
}

func itoa(v int64) string             { return strconv.FormatInt(v, 10) }
func taskHref(id int64) string        { return "/api/task/" + itoa(id) }
func vappHref(id inventory.ID) string { return "/api/vApp/" + itoa(int64(id)) }
func orgHref(name string) string      { return "/api/org/" + name }
func vdcHref() string                 { return "/api/vdc/provider-vdc" }
