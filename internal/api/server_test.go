package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cloudmcp/internal/core"
	"cloudmcp/internal/sim"
)

// startServer boots a small cloud under a free-running paced driver and
// serves it over httptest. The driver is stopped and joined in cleanup.
func startServer(t *testing.T, seed int64) (*httptest.Server, *Server) {
	t.Helper()
	c, err := core.New(core.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	drv := sim.NewPaced(c.Env(), sim.PacedConfig{Ratio: 0, QuantumS: 0.5})
	srv := NewServer(core.NewFrontend(c, drv, core.FrontendConfig{}))
	done := make(chan struct{})
	go func() {
		drv.Run(sim.Forever)
		close(done)
	}()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		drv.Stop()
		<-done
	})
	return ts, srv
}

// login creates a session and returns its token.
func login(t *testing.T, base, user string) string {
	t.Helper()
	req, _ := http.NewRequest("POST", base+"/api/sessions", nil)
	req.SetBasicAuth(user, "secret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("login %s: status %d", user, resp.StatusCode)
	}
	tok := resp.Header.Get(AuthHeader)
	if tok == "" {
		t.Fatal("no auth token returned")
	}
	return tok
}

// do runs an authenticated request and decodes the JSON body into out
// (skipped when out is nil), returning the status code.
func do(t *testing.T, method, url, token string, body []byte, out any) int {
	t.Helper()
	var req *http.Request
	if body != nil {
		req, _ = http.NewRequest(method, url, bytes.NewReader(body))
	} else {
		req, _ = http.NewRequest(method, url, nil)
	}
	if token != "" {
		req.Header.Set(AuthHeader, token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(resp)
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollTask polls a task href until it reaches a terminal state.
func pollTask(t *testing.T, base, token string, id int64) TaskJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var task TaskJSON
		if code := do(t, "GET", base+taskHref(id), token, nil, &task); code != http.StatusOK {
			t.Fatalf("poll task %d: status %d", id, code)
		}
		if task.Status == "success" || task.Status == "error" {
			return task
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("task %d never resolved", id)
	return TaskJSON{}
}

func TestSessionLifecycle(t *testing.T) {
	ts, srv := startServer(t, 1)
	// Bad credentials shapes.
	req, _ := http.NewRequest("POST", ts.URL+"/api/sessions", nil)
	resp, _ := http.DefaultClient.Do(req)
	drainClose(resp)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no-auth login: %d", resp.StatusCode)
	}
	req, _ = http.NewRequest("POST", ts.URL+"/api/sessions", nil)
	req.SetBasicAuth("alice@orgX", "pw")
	resp, _ = http.DefaultClient.Do(req)
	drainClose(resp)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown-org login: %d", resp.StatusCode)
	}

	tok := login(t, ts.URL, "alice@org3")
	var sess SessionJSON
	if code := do(t, "GET", ts.URL+"/api/session", tok, nil, &sess); code != http.StatusOK {
		t.Fatalf("get session: %d", code)
	}
	if sess.User != "alice" || sess.Org != "org3" {
		t.Fatalf("session: %+v", sess)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d", srv.Sessions())
	}
	if code := do(t, "DELETE", ts.URL+"/api/sessions", tok, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete session: %d", code)
	}
	if code := do(t, "GET", ts.URL+"/api/session", tok, nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("stale token accepted: %d", code)
	}
}

func TestOrgScoping(t *testing.T) {
	ts, _ := startServer(t, 1)
	tok := login(t, ts.URL, "bob@org1")

	var orgs []OrgRefJSON
	if code := do(t, "GET", ts.URL+"/api/org", tok, nil, &orgs); code != http.StatusOK {
		t.Fatalf("list orgs: %d", code)
	}
	if len(orgs) != 1 || orgs[0].Name != "org1" {
		t.Fatalf("org listing leaked tenants: %+v", orgs)
	}
	var org OrgJSON
	if code := do(t, "GET", ts.URL+orgHref("org1"), tok, nil, &org); code != http.StatusOK {
		t.Fatalf("get org: %d", code)
	}
	if org.Name != "org1" {
		t.Fatalf("org: %+v", org)
	}
	if code := do(t, "GET", ts.URL+orgHref("org2"), tok, nil, nil); code != http.StatusForbidden {
		t.Fatalf("foreign org visible: %d", code)
	}
	var vdc VDCJSON
	if code := do(t, "GET", ts.URL+vdcHref(), tok, nil, &vdc); code != http.StatusOK {
		t.Fatalf("get vdc: %d", code)
	}
	if vdc.Hosts == 0 || len(vdc.Templates) == 0 {
		t.Fatalf("vdc view empty: %+v", vdc)
	}
}

func TestProvisionFlow(t *testing.T) {
	ts, _ := startServer(t, 1)
	tok := login(t, ts.URL, "carol@org0")

	body, _ := json.Marshal(InstantiateJSON{Template: "tpl00", VMs: 2, PowerOn: true})
	var accepted TaskJSON
	code := do(t, "POST", ts.URL+"/api/vdc/provider-vdc/action/instantiateVAppTemplate", tok, body, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("instantiate: status %d", code)
	}
	if accepted.Href != taskHref(accepted.ID) {
		t.Fatalf("task href: %+v", accepted)
	}
	task := pollTask(t, ts.URL, tok, accepted.ID)
	if task.Status != "success" || task.VAppID == 0 {
		t.Fatalf("instantiate task: %+v", task)
	}
	if task.LatencyS <= 0 || task.EndS <= task.StartS {
		t.Fatalf("task latency accounting: %+v", task)
	}

	var vapp VAppJSON
	if code := do(t, "GET", ts.URL+"/api/vApp/"+itoa(task.VAppID), tok, nil, &vapp); code != http.StatusOK {
		t.Fatalf("get vApp: %d", code)
	}
	if vapp.VMs != 2 || vapp.PoweredOn != 2 {
		t.Fatalf("vApp view: %+v", vapp)
	}

	// Another tenant can see neither the vApp nor the task.
	tok2 := login(t, ts.URL, "dave@org5")
	if code := do(t, "GET", ts.URL+"/api/vApp/"+itoa(task.VAppID), tok2, nil, nil); code != http.StatusNotFound {
		t.Fatalf("foreign vApp visible: %d", code)
	}
	if code := do(t, "GET", ts.URL+taskHref(task.ID), tok2, nil, nil); code != http.StatusForbidden {
		t.Fatalf("foreign task visible: %d", code)
	}

	var powerTask TaskJSON
	code = do(t, "POST", ts.URL+"/api/vApp/"+itoa(task.VAppID)+"/power/action/powerOff", tok, nil, &powerTask)
	if code != http.StatusAccepted {
		t.Fatalf("powerOff: status %d", code)
	}
	if final := pollTask(t, ts.URL, tok, powerTask.ID); final.Status != "success" {
		t.Fatalf("powerOff task: %+v", final)
	}

	var delTask TaskJSON
	if code := do(t, "DELETE", ts.URL+"/api/vApp/"+itoa(task.VAppID), tok, nil, &delTask); code != http.StatusAccepted {
		t.Fatalf("delete: status %d", code)
	}
	if final := pollTask(t, ts.URL, tok, delTask.ID); final.Status != "success" {
		t.Fatalf("delete task: %+v", final)
	}
	var org OrgJSON
	do(t, "GET", ts.URL+orgHref("org0"), tok, nil, &org)
	if len(org.VApps) != 0 {
		t.Fatalf("org still holds vApps after delete: %+v", org)
	}

	var stats StatsJSON
	if code := do(t, "GET", ts.URL+"/api/admin/stats", tok, nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Submitted != 3 || stats.Completed != 3 || stats.VirtualNowS <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestRequestValidation(t *testing.T) {
	ts, _ := startServer(t, 1)
	tok := login(t, ts.URL, "erin@org0")

	body, _ := json.Marshal(InstantiateJSON{Template: "no-such-template"})
	if code := do(t, "POST", ts.URL+"/api/vdc/provider-vdc/action/instantiateVAppTemplate", tok, body, nil); code != http.StatusBadRequest {
		t.Fatalf("bad template: %d", code)
	}
	if code := do(t, "POST", ts.URL+"/api/vdc/nowhere/action/instantiateVAppTemplate", tok, body, nil); code != http.StatusNotFound {
		t.Fatalf("bad vdc: %d", code)
	}
	if code := do(t, "POST", ts.URL+"/api/vApp/abc/power/action/powerOn", tok, nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad vApp id: %d", code)
	}
	if code := do(t, "POST", ts.URL+"/api/vApp/7/power/action/reboot", tok, nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown power op: %d", code)
	}
	if code := do(t, "GET", ts.URL+taskHref(999), tok, nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing task: %d", code)
	}
	if code := do(t, "GET", ts.URL+"/api/org", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated query: %d", code)
	}
}

func TestServerStopping(t *testing.T) {
	ts, srv := startServer(t, 1)
	tok := login(t, ts.URL, "frank@org0")
	srv.Frontend().Driver().Stop()
	// Wait for the driver loop to exit and reject submissions.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, _ := json.Marshal(InstantiateJSON{Template: "tpl00"})
		code := do(t, "POST", ts.URL+"/api/vdc/provider-vdc/action/instantiateVAppTemplate", tok, body, nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stopped server still accepting: %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := do(t, "GET", ts.URL+orgHref("org0"), tok, nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("org view on stopped driver: %d", code)
	}
}

// TestLoadgenAgainstServer drives the in-package load generator at a
// live server and checks the latency split it captures.
func TestLoadgenAgainstServer(t *testing.T) {
	ts, _ := startServer(t, 2)
	res, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Users:       8,
		Orgs:        8,
		Duration:    400 * time.Millisecond,
		VMs:         1,
		Seed:        1,
		PollInitial: 2 * time.Millisecond,
		PollMax:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded == 0 {
		t.Fatalf("no successful ops: %+v", res)
	}
	if len(res.LatenciesS) != int(res.Succeeded) || len(res.QueueWaitsS) != int(res.Succeeded) {
		t.Fatalf("latency capture mismatch: %d/%d/%d", res.Succeeded, len(res.LatenciesS), len(res.QueueWaitsS))
	}
	if res.VirtualEndS <= 0 {
		t.Fatalf("virtual clock not captured: %+v", res)
	}
	if p99 := res.PercentileS(99); p99 <= 0 {
		t.Fatalf("p99 = %v", p99)
	}
	if share := res.QueueShare(); share < 0 || share > 1 {
		t.Fatalf("queue share = %v", share)
	}
	if res.GoodPerHour() <= 0 {
		t.Fatalf("good/h = %v", res.GoodPerHour())
	}
}

// TestSessionIdleEviction pins the session-leak fix: abandoned sessions
// are reaped after the idle TTL while sessions that keep making
// requests survive indefinitely. The clock is injected so the test
// controls idleness exactly.
func TestSessionIdleEviction(t *testing.T) {
	ts, srv := startServer(t, 1)
	clock := time.Unix(1700000000, 0)
	srv.now = func() time.Time { return clock }
	srv.SetSessionTTL(time.Minute)

	active := login(t, ts.URL, "alice@org1")
	abandoned1 := login(t, ts.URL, "bob@org1")
	abandoned2 := login(t, ts.URL, "carol@org2")
	if got := srv.Sessions(); got != 3 {
		t.Fatalf("sessions after login: %d", got)
	}

	// The active session touches the API every 30s for five minutes; the
	// other two never come back.
	for i := 0; i < 10; i++ {
		clock = clock.Add(30 * time.Second)
		if code := do(t, "GET", ts.URL+"/api/session", active, nil, nil); code != http.StatusOK {
			t.Fatalf("active session rejected at +%ds: %d", 30*(i+1), code)
		}
	}

	if got := srv.Sessions(); got != 1 {
		t.Fatalf("sessions after idle period: %d, want 1 (abandoned reaped)", got)
	}
	if code := do(t, "GET", ts.URL+"/api/session", abandoned1, nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("abandoned session 1 still accepted: %d", code)
	}
	if code := do(t, "GET", ts.URL+"/api/session", abandoned2, nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("abandoned session 2 still accepted: %d", code)
	}
	// The survivor is still valid even after everything else was reaped.
	if code := do(t, "GET", ts.URL+"/api/session", active, nil, nil); code != http.StatusOK {
		t.Fatalf("active session lost: %d", code)
	}

	// An expired-but-unswept token must be rejected on first touch even
	// when the throttled sweep has not run yet: make one session, let it
	// expire by a hair past the TTL, and present it immediately.
	fresh := login(t, ts.URL, "dave@org1")
	clock = clock.Add(time.Minute + time.Second)
	if code := do(t, "GET", ts.URL+"/api/session", fresh, nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("expired token accepted: %d", code)
	}

	// TTL 0 disables eviction entirely.
	srv.SetSessionTTL(0)
	forever := login(t, ts.URL, "erin@org1")
	clock = clock.Add(240 * time.Hour)
	if code := do(t, "GET", ts.URL+"/api/session", forever, nil, nil); code != http.StatusOK {
		t.Fatalf("session evicted with TTL disabled: %d", code)
	}
}
