package api

// Extension experiment E22: the serving surface under load. Each cell
// boots a full stack — cloud, paced driver, REST server on a loopback
// listener — and drives it with the in-package load generator at a
// given (virtual users × pacing ratio × shards) point, measuring
// end-to-end goodput and tail latency *as clients see them*: the
// virtual-time task latency plus the API-layer queue wait, with the
// queueing share split out. This is the measurement the batch
// experiments structurally cannot make — there is no API layer between
// a workload generator and the director when both live inside the
// kernel.
//
// Unlike E1..E21, cells exercise the wall clock (the paced driver holds
// virtual time to it, and live submissions are quantized by real
// arrival), so E22 artifacts are *not* byte-reproducible; they are
// load-test results, like the perf-smoke job, not determinism
// artifacts. E22 lives here rather than internal/core because it
// imports the server; core reaches it through RegisterExtension.
//
// Cells run serially — each one saturates the host by design, and
// overlapping them would just measure scheduler noise.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"cloudmcp/internal/core"
	"cloudmcp/internal/report"
	"cloudmcp/internal/sim"
)

// E22Params configures the serving-surface load grid.
type E22Params struct {
	Seed    int64
	Users   []int     // virtual-user grid, default {100, 300, 1000}
	Ratios  []float64 // pacing ratios (virtual s per wall s), default {120, 600}
	Shards  []int     // management-plane shards, default {1, 4}
	WallS   float64   // wall seconds of load per cell, default 4
	VMs     int       // vApp size per instantiate, default 1
	Quantum float64   // injection quantum in virtual seconds, default 0.25
}

func (p *E22Params) setDefaults() {
	if len(p.Users) == 0 {
		p.Users = []int{100, 300, 1000}
	}
	if len(p.Ratios) == 0 {
		p.Ratios = []float64{120, 600}
	}
	if len(p.Shards) == 0 {
		p.Shards = []int{1, 4}
	}
	if p.WallS <= 0 {
		p.WallS = 4
	}
	if p.VMs <= 0 {
		p.VMs = 1
	}
	if p.Quantum <= 0 {
		p.Quantum = 0.25
	}
}

// E22Result holds the measured grid.
type E22Result struct {
	Params E22Params
	Rows   []report.APIRow
}

// RunE22 runs the serving-surface load grid.
func RunE22(p E22Params) (*E22Result, error) {
	p.setDefaults()
	res := &E22Result{Params: p}
	for _, shards := range p.Shards {
		for _, ratio := range p.Ratios {
			for _, users := range p.Users {
				row, err := runE22Cell(p, users, ratio, shards)
				if err != nil {
					return nil, fmt.Errorf("E22 cell users=%d ratio=%g shards=%d: %w",
						users, ratio, shards, err)
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// runE22Cell boots one full serving stack and loads it.
func runE22Cell(p E22Params, users int, ratio float64, shards int) (report.APIRow, error) {
	cfg := core.DefaultConfig(p.Seed)
	cfg.Record = false // live load; nobody reads the trace and it only costs memory
	cfg.Plane.Shards = shards
	c, err := core.New(cfg)
	if err != nil {
		return report.APIRow{}, err
	}
	drv := sim.NewPaced(c.Env(), sim.PacedConfig{Ratio: ratio, QuantumS: sim.Time(p.Quantum)})
	fe := core.NewFrontend(c, drv, core.FrontendConfig{})
	srv := NewServer(fe)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return report.APIRow{}, err
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	runDone := make(chan struct{})
	go func() {
		drv.Run(sim.Forever)
		close(runDone)
	}()

	load, err := RunLoad(LoadConfig{
		BaseURL:     "http://" + ln.Addr().String(),
		Users:       users,
		Duration:    time.Duration(p.WallS * float64(time.Second)),
		VMs:         p.VMs,
		Seed:        p.Seed,
		PollInitial: 5 * time.Millisecond,
		PollMax:     100 * time.Millisecond,
	})

	drv.Stop()
	<-runDone
	_ = hs.Close()
	<-serveErr
	if err != nil {
		return report.APIRow{}, err
	}
	return report.APIRow{
		Users:    users,
		Ratio:    ratio,
		Shards:   shards,
		GoodPerH: load.GoodPerHour(),
		P50S:     load.PercentileS(50),
		P99S:     load.PercentileS(99),
		APIShare: load.QueueShare(),
		MaxLagMS: float64(drv.MaxLag()) / float64(time.Millisecond),
		Errors:   load.Failed + load.HTTPError,
		Cutoff:   load.Cutoff,
	}, nil
}

// Render writes the E22 artifact.
func (r *E22Result) Render(w io.Writer) error {
	t := report.APITable(
		fmt.Sprintf("E22: serving surface under load (%gs wall per cell, quantum %gs; wall-clock measurement, not byte-reproducible)",
			r.Params.WallS, r.Params.Quantum),
		r.Rows)
	if t == nil {
		_, err := fmt.Fprintln(w, "E22: no cells")
		return err
	}
	return t.Render(w)
}

// RegisterE22 adds E22 to core's experiment registry so mcpbench -only
// E22 dispatches here. Call once from the binary's main.
func RegisterE22() {
	core.RegisterExtension(core.Experiment{
		Name: "E22",
		Run: func(seed int64, scale float64, _ int) (core.Renderable, error) {
			p := E22Params{Seed: seed}
			if scale < 1 {
				// Quick/CI runs: a short two-cell ladder.
				p.Users = []int{25, 100}
				p.Ratios = []float64{240}
				p.Shards = []int{1}
				p.WallS = 1.5
			}
			return RunE22(p)
		},
	})
}
