package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stuckServer mimics the REST surface just enough for the load
// generator, but its tasks never leave "running". It is the regression
// fixture for the drain-deadline contract: before the cutoff fix the
// generator's awaitTask loop polled such a task forever.
type stuckServer struct {
	nextTask atomic.Int64
	polls    atomic.Int64
}

func (s *stuckServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == "POST" && r.URL.Path == "/api/sessions":
		w.Header().Set(AuthHeader, "stuck-token")
		w.WriteHeader(http.StatusCreated)
	case r.Method == "GET" && r.URL.Path == vdcHref():
		_ = json.NewEncoder(w).Encode(VDCJSON{
			Name:      "stuck",
			Templates: []TemplateJSON{{Name: "tmpl", DiskGB: 1, MemMB: 512, CPUs: 1}},
		})
	case r.Method == "POST" && strings.HasSuffix(r.URL.Path, "instantiateVAppTemplate"):
		id := s.nextTask.Add(1)
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(TaskJSON{ID: id, Status: "running"})
	case r.Method == "GET" && strings.HasPrefix(r.URL.Path, "/api/task/"):
		s.polls.Add(1)
		_ = json.NewEncoder(w).Encode(TaskJSON{Status: "running"})
	case r.Method == "GET" && r.URL.Path == "/api/admin/stats":
		_ = json.NewEncoder(w).Encode(StatsJSON{})
	default:
		http.Error(w, "unexpected: "+r.Method+" "+r.URL.Path, http.StatusNotFound)
	}
}

// TestLoadCutoffAtDrainDeadline pins the deadline accounting: against a
// server that never resolves tasks, RunLoad must return within Duration
// + DrainGrace (plus scheduling slack), count the unresolved operations
// as Cutoff, and not misreport them as failures or terminal ops.
func TestLoadCutoffAtDrainDeadline(t *testing.T) {
	stuck := &stuckServer{}
	ts := httptest.NewServer(stuck)
	defer ts.Close()

	const (
		duration = 200 * time.Millisecond
		grace    = 300 * time.Millisecond
	)
	start := time.Now()
	res, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Users:       4,
		Duration:    duration,
		DrainGrace:  grace,
		Seed:        1,
		PollInitial: 10 * time.Millisecond,
		PollMax:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	elapsed := time.Since(start)

	// Generous slack: the bound being tested is "terminates promptly",
	// not a tight latency envelope.
	if limit := duration + grace + 5*time.Second; elapsed > limit {
		t.Fatalf("RunLoad took %v, want <= %v (drain deadline not enforced)", elapsed, limit)
	}
	if res.Cutoff == 0 {
		t.Fatalf("Cutoff = 0, want > 0: every op was unresolvable, res = %+v", res)
	}
	if res.Failed != 0 || res.HTTPError != 0 {
		t.Fatalf("cut-off ops misreported as failures: Failed=%d HTTPError=%d", res.Failed, res.HTTPError)
	}
	if res.Ops != 0 || res.Succeeded != 0 {
		t.Fatalf("no task ever reached terminal state, yet Ops=%d Succeeded=%d", res.Ops, res.Succeeded)
	}
	if stuck.polls.Load() == 0 {
		t.Fatal("stub was never polled; test fixture is not exercising awaitTask")
	}
}

// TestLoadDefaultsDrainGrace pins the default so an unconfigured run is
// still wall-bounded.
func TestLoadDefaultsDrainGrace(t *testing.T) {
	stuck := &stuckServer{}
	ts := httptest.NewServer(stuck)
	defer ts.Close()

	start := time.Now()
	res, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Users:       1,
		Duration:    50 * time.Millisecond,
		Seed:        1,
		PollInitial: 10 * time.Millisecond,
		PollMax:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if limit := 50*time.Millisecond + 5*time.Second + 10*time.Second; time.Since(start) > limit {
		t.Fatalf("RunLoad took %v, want <= %v", time.Since(start), limit)
	}
	if res.Cutoff == 0 {
		t.Fatalf("Cutoff = 0 with default grace, res = %+v", res)
	}
}
