package api

import (
	"strings"
	"testing"
)

// TestE22SingleCell runs a deliberately tiny cell end to end: full
// stack boot, live load, teardown, and a rendered artifact with a
// nonzero, separately-attributed API-queueing share.
func TestE22SingleCell(t *testing.T) {
	res, err := RunE22(E22Params{
		Seed:   1,
		Users:  []int{10},
		Ratios: []float64{240},
		Shards: []int{1},
		WallS:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.GoodPerH <= 0 {
		t.Fatalf("no goodput: %+v", row)
	}
	if row.P99S <= 0 || row.P50S > row.P99S {
		t.Fatalf("latency percentiles: %+v", row)
	}
	if row.APIShare <= 0 || row.APIShare >= 1 {
		t.Fatalf("API queueing share not attributed: %+v", row)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E22") || !strings.Contains(sb.String(), "api share") {
		t.Fatalf("artifact:\n%s", sb.String())
	}
}
