package api

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudmcp/internal/core"
	"cloudmcp/internal/inventory"
)

// AuthHeader carries the session token, named as vCloud Director names
// it.
const AuthHeader = "x-vcloud-authorization"

// session is one authenticated client.
type session struct {
	token    string
	user     string
	org      string
	created  time.Time
	lastSeen time.Time
}

// DefaultSessionTTL is the idle timeout after which a session is
// evicted. VCD expires idle sessions the same way; without a TTL the
// session map grows by one entry per login forever — load generators
// that log in per connection leak the server's memory.
const DefaultSessionTTL = 30 * time.Minute

// Server is the VCD-style REST surface over a serving façade. It is an
// http.Handler; every goroutine-safety concern below it is owned by
// core.Frontend and the paced driver.
type Server struct {
	fe  *core.Frontend
	mux *http.ServeMux

	mu        sync.Mutex
	sessions  map[string]*session
	ttl       time.Duration
	lastSweep time.Time
	now       func() time.Time // injectable clock for the eviction tests
}

// NewServer builds the handler tree over fe.
func NewServer(fe *core.Frontend) *Server {
	s := &Server{fe: fe, sessions: make(map[string]*session), ttl: DefaultSessionTTL, now: time.Now}
	m := http.NewServeMux()
	m.HandleFunc("POST /api/sessions", s.createSession)
	m.HandleFunc("DELETE /api/sessions", s.auth(s.deleteSession))
	m.HandleFunc("GET /api/session", s.auth(s.getSession))
	m.HandleFunc("GET /api/org", s.auth(s.listOrgs))
	m.HandleFunc("GET /api/org/{name}", s.auth(s.getOrg))
	m.HandleFunc("GET /api/vdc/{name}", s.auth(s.getVDC))
	m.HandleFunc("POST /api/vdc/{name}/action/instantiateVAppTemplate", s.auth(s.instantiate))
	m.HandleFunc("GET /api/vApp/{id}", s.auth(s.getVApp))
	m.HandleFunc("POST /api/vApp/{id}/power/action/{op}", s.auth(s.powerVApp))
	m.HandleFunc("DELETE /api/vApp/{id}", s.auth(s.deleteVApp))
	m.HandleFunc("GET /api/task/{id}", s.auth(s.getTask))
	m.HandleFunc("GET /api/admin/stats", s.auth(s.adminStats))
	s.mux = m
	return s
}

// Frontend returns the served façade.
func (s *Server) Frontend() *core.Frontend { return s.fe }

// ServeHTTP dispatches to the handler tree.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetSessionTTL changes the idle timeout; d <= 0 disables eviction
// (sessions then live until explicitly deleted). Safe to call any time.
func (s *Server) SetSessionTTL(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ttl = d
}

// Sessions returns the live session count, after reaping idle sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(s.now())
	return len(s.sessions)
}

// sweepLocked evicts sessions idle past the TTL. It runs lazily under
// the existing mutex — no background goroutine to leak or to race with
// shutdown — and self-throttles to at most one full scan per quarter
// TTL, so the common path stays one time comparison.
func (s *Server) sweepLocked(now time.Time) {
	if s.ttl <= 0 || now.Sub(s.lastSweep) < s.ttl/4 {
		return
	}
	s.lastSweep = now
	for tok, sess := range s.sessions {
		if now.Sub(sess.lastSeen) > s.ttl {
			delete(s.sessions, tok)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorJSON{Status: status, Message: fmt.Sprintf(format, args...)})
}

// auth wraps a handler with token lookup; the session rides in the
// request context-free way VCD clients expect — resolved per call.
func (s *Server) auth(fn func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tok := r.Header.Get(AuthHeader)
		now := s.now()
		s.mu.Lock()
		s.sweepLocked(now)
		sess := s.sessions[tok]
		if sess != nil && s.ttl > 0 && now.Sub(sess.lastSeen) > s.ttl {
			// Expired but not yet swept: treat exactly like a swept one.
			delete(s.sessions, tok)
			sess = nil
		}
		if sess != nil {
			sess.lastSeen = now
		}
		s.mu.Unlock()
		if sess == nil {
			writeError(w, http.StatusUnauthorized, "missing or invalid %s token", AuthHeader)
			return
		}
		fn(w, r, sess)
	}
}

// createSession authenticates basic credentials of the VCD form
// user@org (any password — the simulation has no secrets) and returns
// the session token in the auth header.
func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	user, _, ok := r.BasicAuth()
	if !ok {
		writeError(w, http.StatusUnauthorized, "basic auth user@org required")
		return
	}
	at := strings.LastIndex(user, "@")
	if at <= 0 || at == len(user)-1 {
		writeError(w, http.StatusUnauthorized, "user must be of the form user@org")
		return
	}
	name, org := user[:at], user[at+1:]
	if !s.fe.KnownOrg(org) {
		writeError(w, http.StatusForbidden, "unknown org %q", org)
		return
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		writeError(w, http.StatusInternalServerError, "token generation: %v", err)
		return
	}
	now := s.now()
	sess := &session{token: hex.EncodeToString(raw[:]), user: name, org: org, created: now, lastSeen: now}
	s.mu.Lock()
	s.sweepLocked(now)
	s.sessions[sess.token] = sess
	s.mu.Unlock()
	w.Header().Set(AuthHeader, sess.token)
	writeJSON(w, http.StatusCreated, SessionJSON{
		User: sess.user, Org: sess.org, Href: "/api/session", Token: sess.token,
	})
}

func (s *Server) deleteSession(w http.ResponseWriter, _ *http.Request, sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.token)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) getSession(w http.ResponseWriter, _ *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, SessionJSON{User: sess.user, Org: sess.org, Href: "/api/session"})
}

// listOrgs shows only the session's org — tenancy isolation, as VCD
// scopes org listings to the authenticated organization.
func (s *Server) listOrgs(w http.ResponseWriter, _ *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, []OrgRefJSON{{Name: sess.org, Href: orgHref(sess.org)}})
}

func (s *Server) getOrg(w http.ResponseWriter, r *http.Request, sess *session) {
	name := r.PathValue("name")
	if name != sess.org {
		writeError(w, http.StatusForbidden, "org %q not visible to this session", name)
		return
	}
	view, ok := s.fe.OrgView(name)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server stopping")
		return
	}
	out := OrgJSON{Name: view.Name, QuotaVMs: view.QuotaVMs, LiveVMs: view.LiveVMs, VDCHref: vdcHref()}
	for _, va := range view.VApps {
		out.VApps = append(out.VApps, vappJSON(va))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getVDC(w http.ResponseWriter, r *http.Request, _ *session) {
	if r.PathValue("name") != "provider-vdc" {
		writeError(w, http.StatusNotFound, "no such vDC %q", r.PathValue("name"))
		return
	}
	pv, ok := s.fe.Provider()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server stopping")
		return
	}
	writeJSON(w, http.StatusOK, vdcJSON(pv))
}

// instantiate is the deploy verb: 202 Accepted with the async task.
func (s *Server) instantiate(w http.ResponseWriter, r *http.Request, sess *session) {
	if r.PathValue("name") != "provider-vdc" {
		writeError(w, http.StatusNotFound, "no such vDC %q", r.PathValue("name"))
		return
	}
	var body InstantiateJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad instantiate body: %v", err)
		return
	}
	id, err := s.fe.SubmitOp(core.OpRequest{
		Kind:     core.OpInstantiate,
		Org:      sess.org,
		Template: body.Template,
		VMs:      body.VMs,
		PowerOn:  body.PowerOn,
	})
	s.acceptTask(w, id, err)
}

func (s *Server) powerVApp(w http.ResponseWriter, r *http.Request, sess *session) {
	vapp, ok := pathID(r, "id")
	if !ok {
		writeError(w, http.StatusBadRequest, "bad vApp id %q", r.PathValue("id"))
		return
	}
	var kind core.OpKind
	switch r.PathValue("op") {
	case "powerOn":
		kind = core.OpPowerOn
	case "powerOff":
		kind = core.OpPowerOff
	default:
		writeError(w, http.StatusNotFound, "unknown power action %q", r.PathValue("op"))
		return
	}
	id, err := s.fe.SubmitOp(core.OpRequest{Kind: kind, Org: sess.org, VApp: vapp})
	s.acceptTask(w, id, err)
}

func (s *Server) deleteVApp(w http.ResponseWriter, r *http.Request, sess *session) {
	vapp, ok := pathID(r, "id")
	if !ok {
		writeError(w, http.StatusBadRequest, "bad vApp id %q", r.PathValue("id"))
		return
	}
	id, err := s.fe.SubmitOp(core.OpRequest{Kind: core.OpDelete, Org: sess.org, VApp: vapp})
	s.acceptTask(w, id, err)
}

// acceptTask turns a SubmitOp result into 202 + task body or an error.
func (s *Server) acceptTask(w http.ResponseWriter, id int64, err error) {
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "stopped") {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	ti, ok := s.fe.Task(id)
	if !ok {
		writeError(w, http.StatusInternalServerError, "task %d vanished", id)
		return
	}
	w.Header().Set("Location", taskHref(id))
	writeJSON(w, http.StatusAccepted, taskJSON(ti))
}

func (s *Server) getVApp(w http.ResponseWriter, r *http.Request, sess *session) {
	vapp, ok := pathID(r, "id")
	if !ok {
		writeError(w, http.StatusBadRequest, "bad vApp id %q", r.PathValue("id"))
		return
	}
	view, found := s.fe.VApp(sess.org, vapp)
	if !found {
		writeError(w, http.StatusNotFound, "no vApp %d in org %s", vapp, sess.org)
		return
	}
	writeJSON(w, http.StatusOK, vappJSON(view))
}

func (s *Server) getTask(w http.ResponseWriter, r *http.Request, sess *session) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad task id %q", r.PathValue("id"))
		return
	}
	ti, ok := s.fe.Task(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such task %d", id)
		return
	}
	if ti.Org != sess.org {
		writeError(w, http.StatusForbidden, "task %d not visible to org %s", id, sess.org)
		return
	}
	writeJSON(w, http.StatusOK, taskJSON(ti))
}

func (s *Server) adminStats(w http.ResponseWriter, _ *http.Request, _ *session) {
	st := s.fe.Stats()
	drv := s.fe.Driver()
	writeJSON(w, http.StatusOK, StatsJSON{
		Submitted:      st.Submitted,
		Completed:      st.Completed,
		Failed:         st.Failed,
		InFlight:       st.InFlight,
		QueueWaitSumS:  st.QueueWaitSumS,
		QueueWaitMeanS: st.QueueWaitMeanS,
		VirtualNowS:    float64(s.fe.Clock()),
		PacedRatio:     drv.Ratio(),
		Shards:         s.fe.Cloud().Plane().ShardCount(),
		Sessions:       s.Sessions(),
	})
}

func pathID(r *http.Request, key string) (inventory.ID, bool) {
	v, err := strconv.ParseInt(r.PathValue(key), 10, 64)
	if err != nil || v <= 0 {
		return inventory.None, false
	}
	return inventory.ID(v), true
}
