package api

// The load generator: N virtual users logging into the REST surface and
// cycling vApps through instantiate → poll → delete, with per-request
// latency capture. It lives in the library (not cmd/mcpload) so the E22
// experiment and the CLI drive the same code against an in-process
// handler or a real listener.
//
// Latency is recorded in virtual seconds from the task handle the
// server resolves — queue wait plus control-plane execution — so
// results are comparable across pacing ratios; wall-clock latency is
// kept alongside for the serving view.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"cloudmcp/internal/rng"
)

// LoadConfig shapes one load run.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Users is the number of concurrent virtual users.
	Users int
	// Orgs spreads users across org0..orgN-1; default 8 (the façade's
	// default tenant count).
	Orgs int
	// Duration is the wall-clock time to keep submitting; in-flight
	// operations are drained (polled to terminal) for up to DrainGrace
	// after it elapses.
	Duration time.Duration
	// DrainGrace bounds how long past the deadline an in-flight
	// operation may keep polling. Operations still unresolved when it
	// expires are counted as Cutoff — not Failed — so a run against a
	// slow server terminates in bounded wall time instead of hanging in
	// the drain, and short-run truncation is visible as its own column
	// rather than misread as server errors. Default 5s.
	DrainGrace time.Duration
	// VMs is the vApp size per instantiate (default 1).
	VMs int
	// PowerOn requests power-on with each instantiate.
	PowerOn bool
	// Template names the catalog template; "" spreads users across the
	// catalog round-robin.
	Template string
	// ThinkMeanMS is the mean exponential wall think time between
	// operation cycles (0 = closed loop with no think).
	ThinkMeanMS float64
	// Seed derives per-user think/template streams.
	Seed int64
	// Client overrides the HTTP client; nil builds one sized for Users
	// (keep-alive connections matter far more than raw parallelism at
	// this fan-in).
	Client *http.Client
	// PollInitial/PollMax bound the adaptive task-poll backoff.
	// Defaults 20ms and 500ms.
	PollInitial time.Duration
	PollMax     time.Duration
}

// LoadResult aggregates what every user observed.
type LoadResult struct {
	Users     int
	Ops       int64 // operations that reached a terminal task state
	Succeeded int64
	Failed    int64 // terminal error states
	HTTPError int64 // transport/protocol failures (retried)
	Cutoff    int64 // still unresolved when the drain deadline expired

	// Per successful operation, in completion order per user.
	LatenciesS  []float64 // virtual end-to-end (queue wait included)
	QueueWaitsS []float64 // virtual API-layer share
	WallMS      []float64 // wall-clock submit→terminal

	VirtualEndS  float64 // server virtual clock at drain
	WallDuration time.Duration
}

// GoodPerHour is successful operations per virtual hour.
func (r *LoadResult) GoodPerHour() float64 {
	if r.VirtualEndS <= 0 {
		return 0
	}
	return float64(r.Succeeded) / (r.VirtualEndS / 3600)
}

// PercentileS returns the p-th percentile (0..100) of the virtual
// end-to-end latencies, NaN-free: 0 when empty.
func (r *LoadResult) PercentileS(p float64) float64 {
	return percentile(r.LatenciesS, p)
}

// QueueShare is the fraction of total virtual latency spent in
// API-layer queueing.
func (r *LoadResult) QueueShare() float64 {
	var lat, qw float64
	for _, v := range r.LatenciesS {
		lat += v
	}
	for _, v := range r.QueueWaitsS {
		qw += v
	}
	if lat <= 0 {
		return 0
	}
	return qw / lat
}

// Percentile returns the p-th percentile (0..100) of xs; 0 when empty.
func Percentile(xs []float64, p float64) float64 { return percentile(xs, p) }

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// DefaultClient builds an HTTP client that can keep one warm connection
// per virtual user — without this, a thousand users churn through
// ephemeral ports and the generator measures the TCP stack instead of
// the server.
func DefaultClient(users int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        users + 16,
		MaxIdleConnsPerHost: users + 16,
		IdleConnTimeout:     90 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: 60 * time.Second}
}

// loadUser is one virtual user's session state.
type loadUser struct {
	cfg      LoadConfig
	client   *http.Client
	token    string
	org      string
	template string
	think    *rng.Stream
	drainBy  time.Time // hard stop for task polling (deadline + grace)

	res LoadResult
}

// RunLoad drives cfg.Users concurrent users against cfg.BaseURL for
// cfg.Duration and returns the merged result.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("api: load needs at least one user")
	}
	if cfg.Orgs <= 0 {
		cfg.Orgs = 8
	}
	if cfg.VMs <= 0 {
		cfg.VMs = 1
	}
	if cfg.PollInitial <= 0 {
		cfg.PollInitial = 20 * time.Millisecond
	}
	if cfg.PollMax <= 0 {
		cfg.PollMax = 500 * time.Millisecond
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = DefaultClient(cfg.Users)
	}

	catalog, err := fetchCatalog(client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("api: server catalog is empty")
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	drainBy := deadline.Add(cfg.DrainGrace)
	users := make([]*loadUser, cfg.Users)
	var wg sync.WaitGroup
	for i := range users {
		u := &loadUser{
			cfg:     cfg,
			client:  client,
			org:     fmt.Sprintf("org%d", i%cfg.Orgs),
			think:   rng.Derive(cfg.Seed, fmt.Sprintf("loadgen-user%d", i)),
			drainBy: drainBy,
		}
		u.template = cfg.Template
		if u.template == "" {
			u.template = catalog[i%len(catalog)]
		}
		users[i] = u
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u.run(i, deadline)
		}(i)
	}
	wg.Wait()

	merged := &LoadResult{Users: cfg.Users, WallDuration: time.Since(start)}
	for _, u := range users {
		merged.Ops += u.res.Ops
		merged.Succeeded += u.res.Succeeded
		merged.Failed += u.res.Failed
		merged.HTTPError += u.res.HTTPError
		merged.Cutoff += u.res.Cutoff
		merged.LatenciesS = append(merged.LatenciesS, u.res.LatenciesS...)
		merged.QueueWaitsS = append(merged.QueueWaitsS, u.res.QueueWaitsS...)
		merged.WallMS = append(merged.WallMS, u.res.WallMS...)
	}
	if st, err := FetchStats(client, cfg.BaseURL); err == nil {
		merged.VirtualEndS = st.VirtualNowS
	}
	return merged, nil
}

// run is one user's lifetime: log in, cycle vApps until the deadline,
// drain the last operation.
func (u *loadUser) run(idx int, deadline time.Time) {
	if err := u.login(fmt.Sprintf("user%d", idx)); err != nil {
		u.res.HTTPError++
		return
	}
	var vapp int64
	for time.Now().Before(deadline) {
		ok := false
		if vapp == 0 {
			var id int64
			if id, ok = u.instantiate(); ok {
				vapp = id
			}
		} else if ok = u.deleteVApp(vapp); ok {
			vapp = 0
		}
		if !ok {
			// Failed cycle (quota reject, transport error): back off so a
			// saturated server is not hammered in a hot loop.
			time.Sleep(u.cfg.PollInitial)
		}
		if u.cfg.ThinkMeanMS > 0 {
			dt := time.Duration(u.think.Exponential(u.cfg.ThinkMeanMS)) * time.Millisecond
			time.Sleep(dt)
		}
	}
	// Leave no orphans: drain the vApp the loop may still hold. The
	// drain is bounded like every other poll — if the delete does not
	// resolve by drainBy it is counted as cut off and the vApp is left
	// to the server's own cleanup.
	if vapp != 0 {
		u.deleteVApp(vapp)
	}
}

// instantiate submits a deploy and polls its task; returns the vApp ID
// on success.
func (u *loadUser) instantiate() (int64, bool) {
	body, _ := json.Marshal(InstantiateJSON{Template: u.template, VMs: u.cfg.VMs, PowerOn: u.cfg.PowerOn})
	task, ok := u.submit("POST", "/api/vdc/provider-vdc/action/instantiateVAppTemplate", body)
	if !ok {
		return 0, false
	}
	final, ok := u.awaitTask(task)
	if !ok || final.Status != "success" {
		return 0, false
	}
	return final.VAppID, true
}

// deleteVApp submits a delete and polls it; reports whether the vApp is
// gone (success or a terminal error that means it no longer exists).
func (u *loadUser) deleteVApp(id int64) bool {
	task, ok := u.submit("DELETE", "/api/vApp/"+itoa(id), nil)
	if !ok {
		return false
	}
	final, ok := u.awaitTask(task)
	if !ok {
		return false
	}
	return final.Status == "success" || final.Status == "error"
}

// submit issues one provisioning request and returns the accepted task.
func (u *loadUser) submit(method, path string, body []byte) (TaskJSON, bool) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u.cfg.BaseURL+path, rd)
	if err != nil {
		u.res.HTTPError++
		return TaskJSON{}, false
	}
	req.Header.Set(AuthHeader, u.token)
	resp, err := u.client.Do(req)
	if err != nil {
		u.res.HTTPError++
		return TaskJSON{}, false
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusAccepted {
		// Quota rejections and validation errors come back synchronously.
		u.res.Ops++
		u.res.Failed++
		return TaskJSON{}, false
	}
	var task TaskJSON
	if err := json.NewDecoder(resp.Body).Decode(&task); err != nil {
		u.res.HTTPError++
		return TaskJSON{}, false
	}
	return task, true
}

// awaitTask polls the handle with exponential backoff until terminal,
// recording the operation's latency split. Polling stops at u.drainBy:
// an operation still pending then is counted as Cutoff — not Ops, not
// Failed — so the generator's wall time is bounded by Duration +
// DrainGrace even when the server never resolves a task, and deadline
// truncation is never misreported as a server error.
func (u *loadUser) awaitTask(task TaskJSON) (TaskJSON, bool) {
	wall0 := time.Now()
	delay := u.cfg.PollInitial
	for {
		final, ok := u.getTask(task.ID)
		if !ok {
			return TaskJSON{}, false
		}
		switch final.Status {
		case "success":
			u.res.Ops++
			u.res.Succeeded++
			u.res.LatenciesS = append(u.res.LatenciesS, final.LatencyS)
			u.res.QueueWaitsS = append(u.res.QueueWaitsS, final.QueueWaitS)
			u.res.WallMS = append(u.res.WallMS, float64(time.Since(wall0))/float64(time.Millisecond))
			return final, true
		case "error":
			u.res.Ops++
			u.res.Failed++
			return final, true
		}
		if !u.drainBy.IsZero() && !time.Now().Before(u.drainBy) {
			u.res.Cutoff++
			return TaskJSON{}, false
		}
		time.Sleep(delay)
		delay = delay * 3 / 2
		if delay > u.cfg.PollMax {
			delay = u.cfg.PollMax
		}
	}
}

func (u *loadUser) getTask(id int64) (TaskJSON, bool) {
	req, _ := http.NewRequest("GET", u.cfg.BaseURL+taskHref(id), nil)
	req.Header.Set(AuthHeader, u.token)
	resp, err := u.client.Do(req)
	if err != nil {
		u.res.HTTPError++
		return TaskJSON{}, false
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		u.res.HTTPError++
		return TaskJSON{}, false
	}
	var task TaskJSON
	if err := json.NewDecoder(resp.Body).Decode(&task); err != nil {
		u.res.HTTPError++
		return TaskJSON{}, false
	}
	return task, true
}

func (u *loadUser) login(user string) error {
	req, err := http.NewRequest("POST", u.cfg.BaseURL+"/api/sessions", nil)
	if err != nil {
		return err
	}
	req.SetBasicAuth(user+"@"+u.org, "password")
	resp, err := u.client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("api: login for %s@%s: status %d", user, u.org, resp.StatusCode)
	}
	u.token = resp.Header.Get(AuthHeader)
	if u.token == "" {
		return fmt.Errorf("api: login returned no %s header", AuthHeader)
	}
	return nil
}

// fetchCatalog logs in as a scout and lists template names.
func fetchCatalog(client *http.Client, baseURL string) ([]string, error) {
	req, err := http.NewRequest("POST", baseURL+"/api/sessions", nil)
	if err != nil {
		return nil, err
	}
	req.SetBasicAuth("loadgen@org0", "password")
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("api: cannot reach server at %s: %w", baseURL, err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("api: scout login: status %d", resp.StatusCode)
	}
	token := resp.Header.Get(AuthHeader)

	req, err = http.NewRequest("GET", baseURL+vdcHref(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(AuthHeader, token)
	resp2, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp2)
	var vdc VDCJSON
	if err := json.NewDecoder(resp2.Body).Decode(&vdc); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(vdc.Templates))
	for _, t := range vdc.Templates {
		names = append(names, t.Name)
	}
	return names, nil
}

// fetchStats reads the operator stats endpoint.
func FetchStats(client *http.Client, baseURL string) (StatsJSON, error) {
	req, err := http.NewRequest("POST", baseURL+"/api/sessions", nil)
	if err != nil {
		return StatsJSON{}, err
	}
	req.SetBasicAuth("stats@org0", "password")
	resp, err := client.Do(req)
	if err != nil {
		return StatsJSON{}, err
	}
	defer drainClose(resp)
	token := resp.Header.Get(AuthHeader)

	req, err = http.NewRequest("GET", baseURL+"/api/admin/stats", nil)
	if err != nil {
		return StatsJSON{}, err
	}
	req.Header.Set(AuthHeader, token)
	resp2, err := client.Do(req)
	if err != nil {
		return StatsJSON{}, err
	}
	defer drainClose(resp2)
	var st StatsJSON
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		return StatsJSON{}, err
	}
	return st, nil
}

// drainClose empties and closes a response body so the connection is
// reusable.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
