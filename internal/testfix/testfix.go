// Package testfix builds the small simulated installations shared by the
// mgmt, clouddir, drs, ha, and plane test suites. Before it existed each
// package grew its own copy of the same datacenter/cluster/hosts/
// datastores/template/pool/cost-model boilerplate, and the copies had
// already drifted in host counts and disk sizes for no test-relevant
// reason. The fixture stops at the layer the packages share — everything
// below the management plane; constructing the manager (or plane, or
// director) under test stays in each package, where its config belongs.
package testfix

import (
	"fmt"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/storage"
)

// Options sizes the installation. Zero values take the defaults noted on
// each field, so Options{} is the canonical 2-host/2-datastore setup the
// mgmt tests use.
type Options struct {
	Hosts         int     // hypervisor hosts, default 2
	HostCPUMHz    int     // per-host CPU, default 40000
	HostMemMB     int     // per-host memory, default 131072
	Datastores    int     // shared datastores, default 2
	DatastoreGB   float64 // per-datastore capacity, default 4000
	DatastoreMBps float64 // per-datastore bandwidth, default 200
	TemplateGB    float64 // template disk, default 20
	TemplateMemMB int     // template memory, default 2048
}

// Fix is one constructed installation: everything a control-plane test
// needs below the manager.
type Fix struct {
	Env   *sim.Env
	Inv   *inventory.Inventory
	Pool  *storage.Pool
	Model *ops.CostModel // CV zeroed for deterministic stage times
	Hosts []*inventory.Host
	DS    []*inventory.Datastore
	Tpl   *inventory.Template // 1 template, homed on DS[0]
}

// New builds a fresh installation per the options.
func New(o Options) *Fix {
	if o.Hosts == 0 {
		o.Hosts = 2
	}
	if o.HostCPUMHz == 0 {
		o.HostCPUMHz = 40000
	}
	if o.HostMemMB == 0 {
		o.HostMemMB = 131072
	}
	if o.Datastores == 0 {
		o.Datastores = 2
	}
	if o.DatastoreGB == 0 {
		o.DatastoreGB = 4000
	}
	if o.DatastoreMBps == 0 {
		o.DatastoreMBps = 200
	}
	if o.TemplateGB == 0 {
		o.TemplateGB = 20
	}
	if o.TemplateMemMB == 0 {
		o.TemplateMemMB = 2048
	}
	env := sim.NewEnv()
	inv := inventory.New()
	dc := inv.AddDatacenter("dc0")
	cl := inv.AddCluster(dc, "cl0")
	f := &Fix{Env: env, Inv: inv}
	for i := 0; i < o.Hosts; i++ {
		f.Hosts = append(f.Hosts, inv.AddHost(cl, fmt.Sprintf("h%d", i), o.HostCPUMHz, o.HostMemMB))
	}
	for i := 0; i < o.Datastores; i++ {
		f.DS = append(f.DS, inv.AddDatastore(dc, fmt.Sprintf("ds%d", i), o.DatastoreGB, o.DatastoreMBps))
	}
	f.Tpl = inv.AddTemplate(f.DS[0], "tpl0", o.TemplateGB, o.TemplateMemMB, 2)
	f.Pool = storage.NewPool(env, inv)
	f.Model = ops.DefaultCostModel()
	f.Model.CV = 0
	return f
}
