// Package storage simulates the data plane of shared datastores: bulk disk
// copies for full clones, delta-disk creation for linked clones, snapshot
// consolidation, and the bandwidth contention between them.
//
// Each datastore owns a fair-share transfer Engine: the datastore's
// aggregate copy bandwidth is divided equally among all in-flight
// transfers (processor sharing). This is the property that makes full-
// clone provisioning throughput flatten as concurrency rises — adding
// clones past the bandwidth knee only stretches every clone — which in
// turn is the baseline the paper's linked-clone result is measured
// against.
package storage

import (
	"fmt"

	"cloudmcp/internal/bw"
	"cloudmcp/internal/inventory"
	"cloudmcp/internal/sim"
)

// Engine is a fair-share transfer engine for one datastore; see
// package bw for the sharing model.
type Engine = bw.Engine

// EngineStats is a snapshot of an engine's transfer statistics.
type EngineStats = bw.EngineStats

// NewEngine creates an engine with the given aggregate bandwidth in MB/s.
func NewEngine(env *sim.Env, name string, bwMBps float64) *Engine {
	return bw.NewEngine(env, name, bwMBps)
}

// Pool owns one Engine per datastore of an inventory and implements the
// higher-level storage operations the control plane issues.
type Pool struct {
	env     *sim.Env
	inv     *inventory.Inventory
	engines map[inventory.ID]*Engine

	// Policy knobs (defaults match DefaultPolicy).
	Policy Policy
}

// Policy holds the storage-behaviour knobs the experiments sweep.
type Policy struct {
	// DeltaDiskGB is the space reserved for a linked clone's delta disk
	// (its expected working set).
	DeltaDiskGB float64
	// DeltaWriteMB is the bytes actually written at deploy time — delta
	// creation is nearly a metadata operation, which is exactly why fast
	// provisioning shifts the deploy bottleneck to the control plane.
	DeltaWriteMB float64
	// MaxChainLen is the longest permitted linked-clone/redo-log chain
	// (clones per shadow base). Deploys that would exceed it force a new
	// shadow copy first.
	MaxChainLen int
	// SnapshotGB is the space charged per snapshot.
	SnapshotGB float64
}

// DefaultPolicy mirrors common production settings: 1 GB reserved delta
// written lazily (64 MB at creation), chains capped at 30, 2 GB
// snapshots.
func DefaultPolicy() Policy {
	return Policy{DeltaDiskGB: 1.0, DeltaWriteMB: 64, MaxChainLen: 30, SnapshotGB: 2.0}
}

// NewPool builds an engine for every datastore currently in inv. Each
// engine's bandwidth occupancy registers with the environment's metrics
// registry (if any) under the "storage" layer.
func NewPool(env *sim.Env, inv *inventory.Inventory) *Pool {
	p := &Pool{env: env, inv: inv, engines: make(map[inventory.ID]*Engine), Policy: DefaultPolicy()}
	for _, id := range inv.Datastores() {
		ds := inv.Datastore(id)
		p.engines[id] = NewEngine(env, ds.Name, ds.BandwidthMBps)
		p.engines[id].RegisterMetrics("storage")
	}
	return p
}

// AddDatastore registers an engine for a datastore created after the pool.
func (p *Pool) AddDatastore(ds *inventory.Datastore) {
	p.engines[ds.ID] = NewEngine(p.env, ds.Name, ds.BandwidthMBps)
	p.engines[ds.ID].RegisterMetrics("storage")
}

// Engine returns the engine for datastore id, or nil.
func (p *Pool) Engine(id inventory.ID) *Engine { return p.engines[id] }

// FullCopy transfers a template's full base disk onto ds (a full clone's
// data-plane cost), blocking proc for the duration.
func (p *Pool) FullCopy(proc *sim.Proc, ds inventory.ID, sizeGB float64) error {
	e := p.engines[ds]
	if e == nil {
		return fmt.Errorf("storage: no engine for datastore %d", ds)
	}
	e.Copy(proc, sizeGB*1024)
	return nil
}

// CrossCopy moves sizeGB between two datastores (storage migration,
// rebalancing). Read and write streams proceed in lockstep, so the
// transfer occupies both engines simultaneously and finishes when the
// slower side does; we model it as concurrent transfers on both engines.
func (p *Pool) CrossCopy(proc *sim.Proc, src, dst inventory.ID, sizeGB float64) error {
	se, de := p.engines[src], p.engines[dst]
	if se == nil || de == nil {
		return fmt.Errorf("storage: missing engine for cross copy %d->%d", src, dst)
	}
	if sizeGB <= 0 {
		return nil
	}
	// Run the source-side read as a helper process; wait for both.
	doneSrc := sim.NewSignal(p.env)
	p.env.Go("crosscopy-src", func(hp *sim.Proc) {
		se.Copy(hp, sizeGB*1024)
		doneSrc.Fire()
	})
	de.Copy(proc, sizeGB*1024)
	if doneSrc.Fires() == 0 {
		doneSrc.Wait(proc)
	}
	return nil
}

// LinkedCloneDelta writes the initial delta disk for a linked clone and
// returns the space reserved for it in GB. The write itself is small by
// design (Policy.DeltaWriteMB); this is the whole point of fast
// provisioning.
func (p *Pool) LinkedCloneDelta(proc *sim.Proc, ds inventory.ID) (float64, error) {
	e := p.engines[ds]
	if e == nil {
		return 0, fmt.Errorf("storage: no engine for datastore %d", ds)
	}
	e.Copy(proc, p.Policy.DeltaWriteMB)
	return p.Policy.DeltaDiskGB, nil
}

// Consolidate collapses a VM's snapshot/redo chain, copying chainLen
// deltas' worth of data on the VM's datastore.
func (p *Pool) Consolidate(proc *sim.Proc, ds inventory.ID, chainLen int) error {
	e := p.engines[ds]
	if e == nil {
		return fmt.Errorf("storage: no engine for datastore %d", ds)
	}
	e.Copy(proc, float64(chainLen)*p.Policy.DeltaDiskGB*1024)
	return nil
}

// MostAndLeastFilled returns the datastore IDs with the highest and lowest
// fill fraction (ties broken by creation order), or (None, None) when the
// inventory has fewer than two datastores. The rebalancer uses this pair.
func (p *Pool) MostAndLeastFilled() (most, least inventory.ID) {
	ids := p.inv.Datastores()
	if len(ids) < 2 {
		return inventory.None, inventory.None
	}
	most, least = ids[0], ids[0]
	for _, id := range ids[1:] {
		d := p.inv.Datastore(id)
		if d.FillFraction() > p.inv.Datastore(most).FillFraction() {
			most = id
		}
		if d.FillFraction() < p.inv.Datastore(least).FillFraction() {
			least = id
		}
	}
	return most, least
}

// Imbalance returns the difference in fill fraction between the most- and
// least-filled datastores (0 with fewer than two datastores).
func (p *Pool) Imbalance() float64 {
	most, least := p.MostAndLeastFilled()
	if most == inventory.None {
		return 0
	}
	return p.inv.Datastore(most).FillFraction() - p.inv.Datastore(least).FillFraction()
}
