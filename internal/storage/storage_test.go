package storage

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/sim"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSingleCopyDuration(t *testing.T) {
	env := sim.NewEnv()
	e := NewEngine(env, "ds", 100) // 100 MB/s
	var done sim.Time
	env.Go("c", func(p *sim.Proc) {
		e.Copy(p, 1000) // 1000 MB → 10 s
		done = p.Now()
	})
	env.Run(sim.Forever)
	if !almost(done, 10, 1e-9) {
		t.Fatalf("done at %v, want 10", done)
	}
}

func TestFairShareTwoEqualCopies(t *testing.T) {
	// Two simultaneous 1000 MB copies at 100 MB/s share fairly: both
	// finish at 20 s (not 10 and 20).
	env := sim.NewEnv()
	e := NewEngine(env, "ds", 100)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		env.Go("c", func(p *sim.Proc) {
			e.Copy(p, 1000)
			done = append(done, p.Now())
		})
	}
	env.Run(sim.Forever)
	if len(done) != 2 || !almost(done[0], 20, 1e-6) || !almost(done[1], 20, 1e-6) {
		t.Fatalf("done = %v, want both 20", done)
	}
}

func TestFairShareStaggeredArrival(t *testing.T) {
	// Copy A (1000 MB) starts at 0 alone; copy B (500 MB) arrives at 5 s.
	// A has 500 MB left then; both drain at 50 MB/s → both end at 15 s.
	env := sim.NewEnv()
	e := NewEngine(env, "ds", 100)
	var aEnd, bEnd sim.Time
	env.Go("a", func(p *sim.Proc) {
		e.Copy(p, 1000)
		aEnd = p.Now()
	})
	env.Go("b", func(p *sim.Proc) {
		p.Sleep(5)
		e.Copy(p, 500)
		bEnd = p.Now()
	})
	env.Run(sim.Forever)
	if !almost(aEnd, 15, 1e-6) || !almost(bEnd, 15, 1e-6) {
		t.Fatalf("aEnd=%v bEnd=%v, want 15, 15", aEnd, bEnd)
	}
}

func TestShorterCopyFinishesFirst(t *testing.T) {
	// A=1000MB and B=200MB start together at 100 MB/s. B done when each
	// got 200MB (t=4s); A then drains 800MB alone, done at 12s.
	env := sim.NewEnv()
	e := NewEngine(env, "ds", 100)
	var aEnd, bEnd sim.Time
	env.Go("a", func(p *sim.Proc) { e.Copy(p, 1000); aEnd = p.Now() })
	env.Go("b", func(p *sim.Proc) { e.Copy(p, 200); bEnd = p.Now() })
	env.Run(sim.Forever)
	if !almost(bEnd, 4, 1e-6) {
		t.Fatalf("bEnd = %v, want 4", bEnd)
	}
	if !almost(aEnd, 12, 1e-6) {
		t.Fatalf("aEnd = %v, want 12", aEnd)
	}
}

func TestZeroSizeCopyImmediate(t *testing.T) {
	env := sim.NewEnv()
	e := NewEngine(env, "ds", 100)
	var done sim.Time = -1
	env.Go("c", func(p *sim.Proc) {
		e.Copy(p, 0)
		done = p.Now()
	})
	env.Run(sim.Forever)
	if done != 0 {
		t.Fatalf("done = %v", done)
	}
}

func TestEngineStats(t *testing.T) {
	env := sim.NewEnv()
	e := NewEngine(env, "ds", 100)
	for i := 0; i < 2; i++ {
		env.Go("c", func(p *sim.Proc) { e.Copy(p, 1000) })
	}
	env.Go("idle", func(p *sim.Proc) { p.Sleep(40) }) // extend run to 40 s
	env.Run(sim.Forever)
	s := e.Stats()
	if s.Transfers != 2 || s.BytesMB != 2000 {
		t.Fatalf("stats = %+v", s)
	}
	if !almost(s.BusyFrac, 0.5, 1e-6) { // busy 20 of 40 s
		t.Fatalf("busy = %v", s.BusyFrac)
	}
	if !almost(s.MeanActive, 1.0, 1e-6) { // 2 active for 20 of 40 s
		t.Fatalf("meanActive = %v", s.MeanActive)
	}
}

// Property: total makespan of n equal concurrent copies equals n*size/bw
// (work conservation), regardless of n.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(n8 uint8, size8 uint8) bool {
		n := int(n8%16) + 1
		size := float64(size8%100) + 1
		env := sim.NewEnv()
		e := NewEngine(env, "ds", 50)
		for i := 0; i < n; i++ {
			env.Go("c", func(p *sim.Proc) { e.Copy(p, size) })
		}
		end := env.Run(sim.Forever)
		want := float64(n) * size / 50
		return almost(end, want, 1e-6*want+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with staggered arrivals, every copy's duration is at least
// size/bw (can't beat having the whole engine) and completions never lose
// bytes (end time >= last arrival + remaining work / bw).
func TestPropertyCopyLowerBound(t *testing.T) {
	f := func(arr []uint8) bool {
		if len(arr) == 0 || len(arr) > 12 {
			return true
		}
		env := sim.NewEnv()
		e := NewEngine(env, "ds", 10)
		ok := true
		for _, a := range arr {
			start := sim.Time(a % 50)
			size := float64(a%20) + 1
			env.Go("c", func(p *sim.Proc) {
				p.Sleep(start)
				t0 := p.Now()
				e.Copy(p, size)
				if p.Now()-t0 < size/10-1e-9 {
					ok = false
				}
			})
		}
		env.Run(sim.Forever)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func buildInv() (*inventory.Inventory, *inventory.Datastore, *inventory.Datastore) {
	inv := inventory.New()
	dc := inv.AddDatacenter("dc")
	d0 := inv.AddDatastore(dc, "ds0", 1000, 100)
	d1 := inv.AddDatastore(dc, "ds1", 1000, 200)
	return inv, d0, d1
}

func TestPoolEnginesPerDatastore(t *testing.T) {
	env := sim.NewEnv()
	inv, d0, d1 := buildInv()
	pool := NewPool(env, inv)
	if pool.Engine(d0.ID) == nil || pool.Engine(d1.ID) == nil {
		t.Fatal("missing engines")
	}
	if pool.Engine(d1.ID).Bandwidth() != 200 {
		t.Fatal("bandwidth not propagated")
	}
	if pool.Engine(999) != nil {
		t.Fatal("phantom engine")
	}
}

func TestPoolFullCopyUsesRightEngine(t *testing.T) {
	env := sim.NewEnv()
	inv, d0, d1 := buildInv()
	pool := NewPool(env, inv)
	var t0, t1 sim.Time
	env.Go("c0", func(p *sim.Proc) {
		pool.FullCopy(p, d0.ID, 1) // 1 GB at 100 MB/s → 10.24 s
		t0 = p.Now()
	})
	env.Go("c1", func(p *sim.Proc) {
		pool.FullCopy(p, d1.ID, 1) // 1 GB at 200 MB/s → 5.12 s
		t1 = p.Now()
	})
	env.Run(sim.Forever)
	if !almost(t0, 10.24, 1e-6) || !almost(t1, 5.12, 1e-6) {
		t.Fatalf("t0=%v t1=%v", t0, t1)
	}
}

func TestLinkedCloneDeltaFastAndSmall(t *testing.T) {
	env := sim.NewEnv()
	inv, d0, _ := buildInv()
	pool := NewPool(env, inv)
	var full, linked sim.Time
	env.Go("full", func(p *sim.Proc) {
		pool.FullCopy(p, d0.ID, 20)
		full = p.Now() - 0
	})
	env.Run(sim.Forever)

	env2 := sim.NewEnv()
	inv2, d02, _ := buildInv()
	pool2 := NewPool(env2, inv2)
	env2.Go("linked", func(p *sim.Proc) {
		gb, err := pool2.LinkedCloneDelta(p, d02.ID)
		if err != nil || gb != pool2.Policy.DeltaDiskGB {
			t.Errorf("delta gb=%v err=%v", gb, err)
		}
		linked = p.Now()
	})
	env2.Run(sim.Forever)
	if linked*10 > full {
		t.Fatalf("linked clone (%vs) not ≫ faster than full clone (%vs)", linked, full)
	}
}

func TestCrossCopyOccupiesBothEngines(t *testing.T) {
	env := sim.NewEnv()
	inv, d0, d1 := buildInv()
	pool := NewPool(env, inv)
	var end sim.Time
	env.Go("x", func(p *sim.Proc) {
		// 1 GB src at 100 MB/s → 10.24 s; dst at 200 MB/s → 5.12 s.
		// Completion waits for the slower (source) side.
		pool.CrossCopy(p, d0.ID, d1.ID, 1)
		end = p.Now()
	})
	env.Run(sim.Forever)
	if !almost(end, 10.24, 1e-6) {
		t.Fatalf("end = %v, want 10.24 (slower side)", end)
	}
	if pool.Engine(d0.ID).Stats().Transfers != 1 || pool.Engine(d1.ID).Stats().Transfers != 1 {
		t.Fatal("both engines should have carried one transfer")
	}
}

func TestConsolidateScalesWithChain(t *testing.T) {
	env := sim.NewEnv()
	inv, d0, _ := buildInv()
	pool := NewPool(env, inv)
	var short, long sim.Time
	env.Go("short", func(p *sim.Proc) {
		t0 := p.Now()
		pool.Consolidate(p, d0.ID, 2)
		short = p.Now() - t0
	})
	env.Run(sim.Forever)
	env.Go("long", func(p *sim.Proc) {
		t0 := p.Now()
		pool.Consolidate(p, d0.ID, 8)
		long = p.Now() - t0
	})
	env.Run(sim.Forever)
	if !almost(long, 4*short, 1e-6) {
		t.Fatalf("consolidate: chain 8 = %v, chain 2 = %v, want 4x", long, short)
	}
}

func TestMostLeastFilledAndImbalance(t *testing.T) {
	env := sim.NewEnv()
	inv, d0, d1 := buildInv()
	pool := NewPool(env, inv)
	inv.SetDatastoreUsed(d0, 800)
	inv.SetDatastoreUsed(d1, 100)
	most, least := pool.MostAndLeastFilled()
	if most != d0.ID || least != d1.ID {
		t.Fatalf("most=%v least=%v", most, least)
	}
	if !almost(pool.Imbalance(), 0.7, 1e-9) {
		t.Fatalf("imbalance = %v", pool.Imbalance())
	}
	_ = env
}

func TestImbalanceSingleDatastore(t *testing.T) {
	env := sim.NewEnv()
	inv := inventory.New()
	dc := inv.AddDatacenter("dc")
	inv.AddDatastore(dc, "only", 100, 10)
	pool := NewPool(env, inv)
	if pool.Imbalance() != 0 {
		t.Fatal("single datastore imbalance must be 0")
	}
	most, least := pool.MostAndLeastFilled()
	if most != inventory.None || least != inventory.None {
		t.Fatal("expected None pair")
	}
}

func TestPoolErrorsOnUnknownDatastore(t *testing.T) {
	env := sim.NewEnv()
	inv, _, _ := buildInv()
	pool := NewPool(env, inv)
	var errs []error
	env.Go("c", func(p *sim.Proc) {
		errs = append(errs, pool.FullCopy(p, 999, 1))
		_, err := pool.LinkedCloneDelta(p, 999)
		errs = append(errs, err)
		errs = append(errs, pool.Consolidate(p, 999, 1))
		errs = append(errs, pool.CrossCopy(p, 999, 999, 1))
	})
	env.Run(sim.Forever)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("call %d: expected error", i)
		}
	}
}

func TestNoClockStallFromSubULPResiduals(t *testing.T) {
	// Regression: a transfer residual just above the finish epsilon could
	// imply a completion delay below the float64 ULP of a large clock
	// value; without the reschedule clamp the engine re-armed an event
	// that never advanced time. Recreate heavy interleaving at a large
	// clock value and require the run to drain.
	env := sim.NewEnv()
	e := NewEngine(env, "ds", 300)
	env.Go("warp", func(p *sim.Proc) { p.Sleep(58000) })
	env.Run(sim.Forever)
	var launched int
	for i := 0; i < 200; i++ {
		i := i
		env.Go("c", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 0.37)
			e.Copy(p, 64.000000001+float64(i)*0.013)
			launched++
		})
	}
	done := make(chan sim.Time, 1)
	go func() { done <- env.Run(sim.Forever) }()
	select {
	case end := <-done:
		if launched != 200 {
			t.Fatalf("completed %d/200", launched)
		}
		if end <= 58000 {
			t.Fatalf("end = %v", end)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("engine stalled the clock")
	}
}
