// Package drs models the compute load balancer (distributed resource
// scheduling): a background control-plane service that periodically
// evaluates host memory imbalance and live-migrates VMs from the most-
// to the least-loaded hosts. Like the storage rebalancer, it is
// management work the infrastructure generates for itself — and in a
// self-service cloud, placement churn from rapid provisioning keeps it
// permanently busy.
package drs

import (
	"fmt"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/policy"
	"cloudmcp/internal/reconcile"
	"cloudmcp/internal/sim"
)

// Config tunes the balancer.
type Config struct {
	// Threshold is the host memory-utilization spread (max-min fraction)
	// above which a pass migrates VMs. <= 0 disables the balancer.
	Threshold float64
	// CheckS is the evaluation period.
	CheckS float64
	// Batch caps migrations per pass.
	Batch int
	// Move picks which VM a pass migrates; nil means the default
	// biggest-fit policy (identical to the historical hardcoded scan).
	Move policy.MovePolicy
}

// DefaultConfig checks every 5 minutes and acts on a 25% spread.
func DefaultConfig() Config {
	return Config{Threshold: 0.25, CheckS: 300, Batch: 4}
}

func (c Config) validate() error {
	if c.Threshold > 0 && (c.CheckS <= 0 || c.Batch <= 0) {
		return fmt.Errorf("drs: enabled with bad period/batch %+v", c)
	}
	return nil
}

// PassRecord summarizes one balancing pass that moved VMs.
type PassRecord struct {
	Start, End   sim.Time
	Moved        int
	SpreadBefore float64
	SpreadAfter  float64
}

// API is the slice of the management plane the balancer needs: reading
// the inventory and submitting migrations. Both *mgmt.Manager and a
// sharded plane satisfy it, so DRS moves route to the shard owning the
// source host (crossing shards through the plane's coordinator when the
// destination lives elsewhere).
type API interface {
	Inventory() *inventory.Inventory
	Migrate(p *sim.Proc, vm *inventory.VM, dst *inventory.Host, ctx mgmt.ReqCtx) *mgmt.Task
}

// Balancer is the DRS service for one management plane.
type Balancer struct {
	env *sim.Env
	mgr API
	cfg Config

	passes    []PassRecord
	starts    int64
	moves     int64
	balancing bool
}

// New builds a balancer.
func New(env *sim.Env, mgr API, cfg Config) (*Balancer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Move == nil {
		cfg.Move = policy.DefaultMove()
	}
	return &Balancer{env: env, mgr: mgr, cfg: cfg}, nil
}

// Start launches the periodic evaluation process (no-op when disabled).
// The loop runs on the shared reconciliation primitive, whose shape is
// pinned to the hand-rolled loop this used (TestStartMatchesHandRolledLoop).
func (b *Balancer) Start() {
	if b.cfg.Threshold <= 0 {
		return
	}
	reconcile.StartLoop(b.env, "drs", b.cfg.CheckS, b.BalanceOnce)
}

// Stats summarizes balancer activity.
type Stats struct {
	Passes    int64 // passes that decided to act
	Moves     int64 // migrations issued
	Completed []PassRecord
}

// Stats returns accumulated activity.
func (b *Balancer) Stats() Stats {
	return Stats{Passes: b.starts, Moves: b.moves, Completed: append([]PassRecord(nil), b.passes...)}
}

// Spread returns the memory-utilization gap between the most- and
// least-loaded in-service hosts (0 with fewer than two).
func (b *Balancer) Spread() float64 {
	hi, lo, ok := b.extremes()
	if !ok {
		return 0
	}
	return memUtil(hi) - memUtil(lo)
}

func memUtil(h *inventory.Host) float64 {
	if h.MemMB == 0 {
		return 0
	}
	return float64(h.UsedMemMB) / float64(h.MemMB)
}

func (b *Balancer) extremes() (hi, lo *inventory.Host, ok bool) {
	inv := b.mgr.Inventory()
	for _, id := range inv.Hosts() {
		h := inv.Host(id)
		if !h.InService() {
			continue
		}
		if hi == nil || memUtil(h) > memUtil(hi) {
			hi = h
		}
		if lo == nil || memUtil(h) < memUtil(lo) {
			lo = h
		}
	}
	return hi, lo, hi != nil && lo != nil && hi != lo
}

// BalanceOnce evaluates the spread and, if above threshold, migrates up
// to Batch VMs from the hottest to the coolest hosts. Passes do not
// overlap.
func (b *Balancer) BalanceOnce(p *sim.Proc) {
	if b.balancing {
		return
	}
	before := b.Spread()
	if before <= b.cfg.Threshold {
		return
	}
	b.balancing = true
	defer func() { b.balancing = false }()
	b.starts++
	start := p.Now()
	moved := 0
	for i := 0; i < b.cfg.Batch; i++ {
		hi, lo, ok := b.extremes()
		if !ok || memUtil(hi)-memUtil(lo) <= b.cfg.Threshold/2 {
			break
		}
		vm := b.cfg.Move.Pick(b.mgr.Inventory(), hi, lo)
		if vm == nil {
			break
		}
		b.moves++
		task := b.mgr.Migrate(p, vm, lo, mgmt.ReqCtx{Org: "system"})
		if task.Err != nil {
			break
		}
		moved++
	}
	if moved > 0 {
		b.passes = append(b.passes, PassRecord{
			Start: start, End: p.Now(), Moved: moved,
			SpreadBefore: before, SpreadAfter: b.Spread(),
		})
	}
}

// pickMovableReference is the hardcoded biggest-fit scan the default
// move policy extracted, retained for the equivalence test that pins
// policy.DefaultMove bit-for-bit: the largest-memory live VM on hi
// that fits lo without overshooting the balance (moving it must not
// make lo hotter than hi was).
func (b *Balancer) pickMovableReference(hi, lo *inventory.Host) *inventory.VM {
	inv := b.mgr.Inventory()
	var best *inventory.VM
	for _, id := range hi.VMs {
		vm := inv.VM(id)
		if vm == nil || vm.State == inventory.VMDeleted {
			continue
		}
		if lo.FreeMemMB() < vm.MemMB {
			continue
		}
		if vm.State == inventory.VMPoweredOn && lo.FreeCPUMHz() < inventory.CPUReservationMHz(vm.CPUs) {
			continue
		}
		// Don't create a new hotspot.
		if float64(lo.UsedMemMB+vm.MemMB)/float64(lo.MemMB) >= memUtil(hi) {
			continue
		}
		if best == nil || vm.MemMB > best.MemMB {
			best = vm
		}
	}
	return best
}
