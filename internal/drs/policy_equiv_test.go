package drs

import (
	"testing"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/policy"
)

// TestDefaultMoveMatchesReferenceFuzz pins policy.DefaultMove (the
// extracted biggest-fit move policy) to the retained hardcoded scan
// pickMovableReference bit-for-bit under deterministic churn, over
// every ordered (hi, lo) host pair.
func TestDefaultMoveMatchesReferenceFuzz(t *testing.T) {
	f := newFixture(t, Config{Threshold: 0.2, CheckS: 60, Batch: 4})
	inv := f.inv
	move := policy.DefaultMove()
	var vms []*inventory.VM
	state := uint64(0x5eed)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for step := 0; step < 2000; step++ {
		switch next(5) {
		case 0, 1:
			h := f.hosts[next(len(f.hosts))]
			if vm, err := inv.AddVM("vm", h, f.ds, 1+next(4), 1024*(1+next(6)), 1); err == nil {
				vms = append(vms, vm)
			}
		case 2:
			if len(vms) > 0 {
				vm := vms[next(len(vms))]
				if vm.State == inventory.VMPoweredOff {
					_ = inv.PowerOn(vm)
				}
			}
		case 3:
			if len(vms) > 0 {
				vm := vms[next(len(vms))]
				if vm.State == inventory.VMPoweredOn {
					_ = inv.PowerOff(vm)
				}
			}
		case 4:
			if len(vms) > 0 {
				i := next(len(vms))
				if inv.RemoveVM(vms[i]) == nil {
					vms = append(vms[:i], vms[i+1:]...)
				}
			}
		}
		for _, hi := range f.hosts {
			for _, lo := range f.hosts {
				if hi == lo {
					continue
				}
				got := move.Pick(inv, hi, lo)
				want := f.bal.pickMovableReference(hi, lo)
				if got != want {
					t.Fatalf("step %d: Pick(%v→%v) = %v, reference = %v",
						step, hi.ID, lo.ID, got, want)
				}
			}
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
