package drs

import (
	"reflect"
	"testing"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/mgmt"
	"cloudmcp/internal/ops"
	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
	"cloudmcp/internal/testfix"
)

type fixture struct {
	env   *sim.Env
	inv   *inventory.Inventory
	mgr   *mgmt.Manager
	bal   *Balancer
	hosts []*inventory.Host
	ds    *inventory.Datastore
	tpl   *inventory.Template
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	fx := testfix.New(testfix.Options{Hosts: 3, HostMemMB: 32768,
		Datastores: 1, DatastoreMBps: 300, TemplateGB: 16})
	mgr, err := mgmt.New(fx.Env, fx.Inv, fx.Pool, fx.Model, rng.Derive(1, "m"), mgmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bal, err := New(fx.Env, mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{env: fx.Env, inv: fx.Inv, mgr: mgr, bal: bal,
		hosts: fx.Hosts, ds: fx.DS[0], tpl: fx.Tpl}
}

// loadHost puts n powered-on 2 GB VMs on host.
func (f *fixture) loadHost(t *testing.T, host *inventory.Host, n int) {
	t.Helper()
	f.env.Go("prep", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			vm, task := f.mgr.DeployVM(p, "vm", f.tpl, host, f.ds, ops.LinkedClone, mgmt.ReqCtx{Org: "o"})
			if task.Err != nil {
				t.Errorf("deploy: %v", task.Err)
				return
			}
			f.mgr.PowerOn(p, vm, mgmt.ReqCtx{Org: "o"})
		}
	})
	f.env.Run(sim.Forever)
}

func TestBalancePassReducesSpread(t *testing.T) {
	f := newFixture(t, Config{Threshold: 0.2, CheckS: 60, Batch: 8})
	f.loadHost(t, f.hosts[0], 10) // 20 GB of 32 GB → 62% vs 0%
	before := f.bal.Spread()
	if before < 0.5 {
		t.Fatalf("setup spread = %v", before)
	}
	f.env.Go("drs", func(p *sim.Proc) { f.bal.BalanceOnce(p) })
	f.env.Run(sim.Forever)
	st := f.bal.Stats()
	if st.Passes != 1 || st.Moves == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if after := f.bal.Spread(); after >= before {
		t.Fatalf("spread did not shrink: %v -> %v", before, after)
	}
	if len(st.Completed) != 1 || st.Completed[0].Moved == 0 {
		t.Fatalf("pass records = %+v", st.Completed)
	}
	if err := f.inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerIdleWhenBalanced(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	// Spread load evenly.
	for _, h := range f.hosts {
		f.loadHost(t, h, 3)
	}
	f.env.Go("drs", func(p *sim.Proc) { f.bal.BalanceOnce(p) })
	f.env.Run(sim.Forever)
	if st := f.bal.Stats(); st.Passes != 0 {
		t.Fatalf("acted on a balanced cluster: %+v", st)
	}
}

func TestBackgroundBalancerRuns(t *testing.T) {
	f := newFixture(t, Config{Threshold: 0.2, CheckS: 120, Batch: 4})
	f.loadHost(t, f.hosts[0], 10)
	f.bal.Start()
	f.env.Run(600)
	if st := f.bal.Stats(); st.Moves == 0 {
		t.Fatalf("background balancer never moved: %+v", st)
	}
}

func TestDisabledBalancer(t *testing.T) {
	f := newFixture(t, Config{})
	f.loadHost(t, f.hosts[0], 10)
	f.bal.Start() // no-op
	f.env.Run(600)
	if st := f.bal.Stats(); st.Passes != 0 {
		t.Fatal("disabled balancer acted")
	}
}

func TestSkipsMaintenanceHosts(t *testing.T) {
	f := newFixture(t, Config{Threshold: 0.2, CheckS: 60, Batch: 8})
	f.loadHost(t, f.hosts[0], 10)
	f.inv.SetHostMaintenance(f.hosts[1], true)
	f.env.Go("drs", func(p *sim.Proc) { f.bal.BalanceOnce(p) })
	f.env.Run(sim.Forever)
	if len(f.hosts[1].VMs) != 0 {
		t.Fatal("migrated onto a maintenance host")
	}
	if len(f.hosts[2].VMs) == 0 {
		t.Fatal("no migrations to the in-service host")
	}
}

func TestBadConfigRejected(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	if _, err := New(f.env, f.mgr, Config{Threshold: 0.2}); err == nil {
		t.Fatal("expected error")
	}
}

// Start now runs on reconcile.StartLoop; pin it against the hand-rolled
// sleep-then-balance loop it replaced — identical pass records, moves,
// and timings.
func TestStartMatchesHandRolledLoop(t *testing.T) {
	run := func(hand bool) Stats {
		f := newFixture(t, Config{Threshold: 0.2, CheckS: 120, Batch: 4})
		f.loadHost(t, f.hosts[0], 10)
		if hand {
			f.env.Go("drs", func(p *sim.Proc) {
				for {
					p.Sleep(f.bal.cfg.CheckS)
					f.bal.BalanceOnce(p)
				}
			})
		} else {
			f.bal.Start()
		}
		f.env.Run(900)
		return f.bal.Stats()
	}
	handRolled, generalized := run(true), run(false)
	if !reflect.DeepEqual(handRolled, generalized) {
		t.Fatalf("loop diverged:\nhand-rolled: %+v\nStartLoop:   %+v", handRolled, generalized)
	}
	if generalized.Moves == 0 {
		t.Fatal("balancer never moved")
	}
}
