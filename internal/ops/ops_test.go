package ops

import (
	"math"
	"testing"

	"cloudmcp/internal/rng"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds() {
		s := k.String()
		if s == "" {
			t.Fatalf("empty name for %d", int(k))
		}
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v err %v", k, got, err)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Fatal("expected parse error")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must stringify")
	}
}

func TestCloneModeString(t *testing.T) {
	if FullClone.String() != "full" || LinkedClone.String() != "linked" {
		t.Fatal("clone mode names")
	}
}

func TestDefaultModelValid(t *testing.T) {
	m := DefaultCostModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesMissingKind(t *testing.T) {
	m := DefaultCostModel()
	delete(m.Stage, KindMigrate)
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for missing kind")
	}
}

func TestValidateCatchesNegative(t *testing.T) {
	m := DefaultCostModel()
	c := m.Stage[KindDeploy]
	c.CellS = -1
	m.Stage[KindDeploy] = c
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for negative cost")
	}
}

func TestSampleMeansTrackModel(t *testing.T) {
	m := DefaultCostModel()
	s := rng.New(7)
	const n = 20000
	var cell, host, db float64
	for i := 0; i < n; i++ {
		ss := m.Sample(s, KindDeploy)
		cell += ss.Cell
		host += ss.Host
		db += ss.DB
	}
	c := m.Stage[KindDeploy]
	if math.Abs(cell/n-c.CellS) > 0.05*c.CellS {
		t.Fatalf("cell mean %v, want ~%v", cell/n, c.CellS)
	}
	if math.Abs(host/n-c.HostS) > 0.05*c.HostS {
		t.Fatalf("host mean %v, want ~%v", host/n, c.HostS)
	}
	wantDB := float64(c.DBWrites) * m.DBWriteS
	if math.Abs(db/n-wantDB) > 0.05*wantDB {
		t.Fatalf("db mean %v, want ~%v", db/n, wantDB)
	}
}

func TestSamplePositive(t *testing.T) {
	m := DefaultCostModel()
	s := rng.New(8)
	for _, k := range Kinds() {
		for i := 0; i < 100; i++ {
			ss := m.Sample(s, k)
			if ss.Cell < 0 || ss.Mgmt < 0 || ss.DB < 0 || ss.Host < 0 {
				t.Fatalf("negative stage sample for %v: %+v", k, ss)
			}
		}
	}
}

func TestSampleUnknownKindPanics(t *testing.T) {
	m := DefaultCostModel()
	s := rng.New(9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Sample(s, Kind(99))
}

func TestSampleDeterministic(t *testing.T) {
	m := DefaultCostModel()
	a, b := rng.New(5), rng.New(5)
	for i := 0; i < 100; i++ {
		x, y := m.Sample(a, KindPowerOn), m.Sample(b, KindPowerOn)
		if x != y {
			t.Fatal("same-seed samples diverged")
		}
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{Queue: 1, Cell: 2, Mgmt: 3, DB: 4, Host: 5, Data: 6}
	if b.Total() != 21 {
		t.Fatalf("total = %v", b.Total())
	}
	sum := b.Add(b)
	if sum.Total() != 42 || sum.Host != 10 {
		t.Fatalf("add = %+v", sum)
	}
	half := b.Scale(0.5)
	if half.Total() != 10.5 || half.Data != 3 {
		t.Fatalf("scale = %+v", half)
	}
}

func TestMigrateMemCopy(t *testing.T) {
	m := DefaultCostModel()
	if got := m.MigrateMemCopyS(4096); math.Abs(got-4.096) > 1e-9 {
		t.Fatalf("mem copy = %v", got)
	}
	m.MigrateMemMBps = 0
	if m.MigrateMemCopyS(4096) != 0 {
		t.Fatal("zero-rate mem copy must be 0")
	}
}

func TestLinkedDeployControlCostExceedsDataCost(t *testing.T) {
	// The paper's central premise in model form: for a linked clone the
	// control-plane cost (cell+mgmt+db+host means) dwarfs the delta-disk
	// write (1 GB at 200 MB/s ≈ 5 s is comparable, but at the default
	// datastore the control cost must be at least a third of total so the
	// control plane is a meaningful bottleneck).
	m := DefaultCostModel()
	c := m.Stage[KindDeploy]
	control := c.CellS + c.MgmtS + float64(c.DBWrites)*m.DBWriteS + c.HostS
	if control < 5 {
		t.Fatalf("deploy control cost %v s too small for the linked-clone regime", control)
	}
}
