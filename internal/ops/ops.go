// Package ops defines the management-operation taxonomy and the cost model
// that gives every operation its control-plane and data-plane price.
//
// The taxonomy follows the management-workload line of work the paper
// extends: each operation flows through the cloud-director cell, the
// virtualization manager (with database updates), and a host agent, and
// may additionally move bytes on a datastore. The cost model separates
// those components so experiments can show which one saturates first.
//
// Magnitudes are calibrated to the ranges reported for vSphere-era
// control planes (seconds of per-layer processing; datastore-bandwidth-
// bound copies); absolute values are configurable, and the experiment
// harness sweeps the ones that matter.
package ops

import (
	"fmt"

	"cloudmcp/internal/inventory"
	"cloudmcp/internal/rng"
)

// Kind identifies a management operation type.
type Kind int

// Management operation kinds.
const (
	// KindDeploy provisions a new VM from a template. Whether it is a
	// full or linked clone is a property of the request/scenario, not a
	// separate kind, mirroring how cloud directors expose it.
	KindDeploy Kind = iota + 1
	KindPowerOn
	KindPowerOff
	KindSnapshotCreate
	KindSnapshotRemove
	KindReconfigure
	KindMigrate
	KindStorageMigrate
	KindDestroy
	KindCatalogPublish
	KindRebalance
	KindConsolidate
	// KindMaintenance is host enter/exit-maintenance: entering evacuates
	// every resident VM via live migration before the host goes dark.
	KindMaintenance
	// KindSuspend checkpoints a running VM's memory to its datastore.
	KindSuspend
	// KindResume restores a suspended VM to running.
	KindResume
)

var kindNames = map[Kind]string{
	KindDeploy:         "deploy",
	KindPowerOn:        "powerOn",
	KindPowerOff:       "powerOff",
	KindSnapshotCreate: "snapshotCreate",
	KindSnapshotRemove: "snapshotRemove",
	KindReconfigure:    "reconfigure",
	KindMigrate:        "migrate",
	KindStorageMigrate: "storageMigrate",
	KindDestroy:        "destroy",
	KindCatalogPublish: "catalogPublish",
	KindRebalance:      "rebalance",
	KindConsolidate:    "consolidate",
	KindMaintenance:    "maintenance",
	KindSuspend:        "suspend",
	KindResume:         "resume",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Kinds lists all operation kinds in canonical order, for tables.
func Kinds() []Kind {
	return []Kind{
		KindDeploy, KindPowerOn, KindPowerOff, KindSnapshotCreate,
		KindSnapshotRemove, KindReconfigure, KindMigrate, KindStorageMigrate,
		KindDestroy, KindCatalogPublish, KindRebalance, KindConsolidate,
		KindMaintenance, KindSuspend, KindResume,
	}
}

// ParseKind returns the Kind with the given String() name.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("ops: unknown kind %q", s)
}

// CloneMode selects the provisioning data path for deploys.
type CloneMode int

// Provisioning modes.
const (
	// FullClone copies the template's entire base disk (the classic
	// datacenter path; the paper's "before").
	FullClone CloneMode = iota
	// LinkedClone writes only a small delta disk against the template's
	// base ("fast provisioning"; the paper's "after").
	LinkedClone
)

func (m CloneMode) String() string {
	if m == LinkedClone {
		return "linked"
	}
	return "full"
}

// Request is one management operation submitted to the control plane.
type Request struct {
	Kind Kind
	Mode CloneMode // deploys only

	// Targets. Deploy carries a TemplateID; VM-scoped ops carry VMID.
	TemplateID inventory.ID
	VMID       inventory.ID
	VAppID     inventory.ID

	// Submit is the virtual time the request entered the system; it is
	// stamped by the front end.
	Submit float64

	// Org attributes the request to a tenant (reports only).
	Org string
}

// Breakdown records where one operation's latency went, in seconds of
// virtual time. Queue is time spent waiting for admission or locks;
// the remaining fields are service at each layer.
type Breakdown struct {
	Queue float64 // admission + lock wait, all layers
	Cell  float64 // cloud-director cell processing
	Mgmt  float64 // virtualization-manager processing
	DB    float64 // management database updates
	Host  float64 // host-agent execution
	Data  float64 // datastore transfer time
}

// Total returns end-to-end latency.
func (b Breakdown) Total() float64 {
	return b.Queue + b.Cell + b.Mgmt + b.DB + b.Host + b.Data
}

// Add returns the field-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Queue: b.Queue + o.Queue,
		Cell:  b.Cell + o.Cell,
		Mgmt:  b.Mgmt + o.Mgmt,
		DB:    b.DB + o.DB,
		Host:  b.Host + o.Host,
		Data:  b.Data + o.Data,
	}
}

// Scale returns the breakdown with every field multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Queue: b.Queue * f, Cell: b.Cell * f, Mgmt: b.Mgmt * f,
		DB: b.DB * f, Host: b.Host * f, Data: b.Data * f,
	}
}

// StageCost parameterizes the control-plane price of one operation kind.
// Each stage's service time is drawn log-normally around the mean with
// the model's coefficient of variation.
type StageCost struct {
	CellS    float64 // seconds of cell work (request validation, workflow)
	MgmtS    float64 // seconds of manager work (inventory update, task mgmt)
	DBWrites int     // management-database writes issued
	HostS    float64 // seconds of host-agent execution
}

// CostModel prices every operation kind.
type CostModel struct {
	Stage map[Kind]StageCost
	// DBWriteS is seconds per database write.
	DBWriteS float64
	// CV is the coefficient of variation applied to every sampled stage.
	CV float64
	// MigrateMemMBps is the memory-copy rate for live migration; host
	// time for a migrate includes MemMB/MigrateMemMBps.
	MigrateMemMBps float64
}

// DefaultCostModel returns the calibrated model used by the experiments.
//
// Control-plane magnitudes follow the management-workload literature:
// single-digit seconds of serialized work per operation spread across
// cell, manager, and database, with power/deploy ops carrying several
// DB writes (task state, VM config, inventory) and host-agent work in
// the 1-10 s range. Data-plane cost is not priced here — it comes from
// the storage engines — except that migrates charge a memory copy.
func DefaultCostModel() *CostModel {
	return &CostModel{
		Stage: map[Kind]StageCost{
			KindDeploy:         {CellS: 1.2, MgmtS: 2.0, DBWrites: 6, HostS: 3.0},
			KindPowerOn:        {CellS: 0.3, MgmtS: 0.8, DBWrites: 3, HostS: 4.0},
			KindPowerOff:       {CellS: 0.3, MgmtS: 0.6, DBWrites: 3, HostS: 2.0},
			KindSnapshotCreate: {CellS: 0.2, MgmtS: 0.7, DBWrites: 3, HostS: 2.5},
			KindSnapshotRemove: {CellS: 0.2, MgmtS: 0.6, DBWrites: 3, HostS: 2.0},
			KindReconfigure:    {CellS: 0.3, MgmtS: 0.9, DBWrites: 4, HostS: 1.0},
			KindMigrate:        {CellS: 0.4, MgmtS: 1.5, DBWrites: 5, HostS: 4.0},
			KindStorageMigrate: {CellS: 0.4, MgmtS: 1.5, DBWrites: 5, HostS: 3.0},
			KindDestroy:        {CellS: 0.4, MgmtS: 1.0, DBWrites: 4, HostS: 2.0},
			KindCatalogPublish: {CellS: 1.5, MgmtS: 2.0, DBWrites: 8, HostS: 1.0},
			KindRebalance:      {CellS: 1.0, MgmtS: 2.5, DBWrites: 6, HostS: 1.0},
			KindConsolidate:    {CellS: 0.3, MgmtS: 0.8, DBWrites: 3, HostS: 2.0},
			KindMaintenance:    {CellS: 0, MgmtS: 1.5, DBWrites: 4, HostS: 2.0},
			KindSuspend:        {CellS: 0.3, MgmtS: 0.7, DBWrites: 3, HostS: 1.5},
			KindResume:         {CellS: 0.3, MgmtS: 0.7, DBWrites: 3, HostS: 2.0},
		},
		DBWriteS:       0.05,
		CV:             0.25,
		MigrateMemMBps: 1000,
	}
}

// StageSample is one drawn set of per-stage service times, in seconds.
type StageSample struct {
	Cell float64
	Mgmt float64
	DB   float64
	Host float64
}

// Sample draws the per-stage service times for one operation of kind k.
// It panics if the model has no entry for k.
func (m *CostModel) Sample(s *rng.Stream, k Kind) StageSample {
	c, ok := m.Stage[k]
	if !ok {
		panic(fmt.Sprintf("ops: no cost entry for %v", k))
	}
	draw := func(mean float64) float64 {
		if mean <= 0 {
			return 0
		}
		return s.LogNormal(mean, m.CV)
	}
	return StageSample{
		Cell: draw(c.CellS),
		Mgmt: draw(c.MgmtS),
		DB:   draw(float64(c.DBWrites) * m.DBWriteS),
		Host: draw(c.HostS),
	}
}

// MigrateMemCopyS returns the host-side memory-copy seconds for a live
// migration of a VM with the given memory size.
func (m *CostModel) MigrateMemCopyS(memMB int) float64 {
	if m.MigrateMemMBps <= 0 {
		return 0
	}
	return float64(memMB) / m.MigrateMemMBps
}

// Validate checks the model covers every kind with sane values.
func (m *CostModel) Validate() error {
	for _, k := range Kinds() {
		c, ok := m.Stage[k]
		if !ok {
			return fmt.Errorf("ops: missing cost for %v", k)
		}
		if c.CellS < 0 || c.MgmtS < 0 || c.HostS < 0 || c.DBWrites < 0 {
			return fmt.Errorf("ops: negative cost for %v", k)
		}
	}
	if m.DBWriteS < 0 || m.CV < 0 {
		return fmt.Errorf("ops: negative DBWriteS/CV")
	}
	return nil
}
