package faults

import (
	"testing"

	"cloudmcp/internal/metrics"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if out := in.Decide(LayerHost, "deploy", 1, 1); out != (Outcome{}) {
		t.Fatalf("nil injector injected %+v", out)
	}
	if u := in.JitterU(1, 1); u != 0 {
		t.Fatalf("nil injector jitter = %v", u)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats = %+v", s)
	}
	in.RegisterMetrics(metrics.NewRegistry()) // must not panic
}

func TestZeroRateLayerDrawsNothing(t *testing.T) {
	in, err := New(7, Config{Host: Layer{FailProb: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The DB layer is all-zero: no decision may be recorded for it.
	for i := int64(0); i < 100; i++ {
		if out := in.Decide(LayerDB, "deploy", i, 1); out != (Outcome{}) {
			t.Fatalf("zero-rate layer injected %+v", out)
		}
	}
	if n := in.Stats().DB.Decisions; n != 0 {
		t.Fatalf("zero-rate layer recorded %d decisions", n)
	}
	if n := in.Stats().Host.Decisions; n != 0 {
		t.Fatalf("undecided layer recorded %d decisions", n)
	}
}

func TestDecideIsPureFunctionOfIdentifiers(t *testing.T) {
	cfg := Preset(0.3)
	a, err := New(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Consume b's decisions in a scrambled order; outcomes must still
	// match a's decision-by-decision (per-decision derived streams).
	type key struct {
		layer   string
		task    int64
		attempt int
	}
	want := map[key]Outcome{}
	for task := int64(0); task < 50; task++ {
		for attempt := 1; attempt <= 3; attempt++ {
			for _, layer := range []string{LayerHost, LayerDB, LayerNet, LayerStorage} {
				want[key{layer, task, attempt}] = a.Decide(layer, "deploy", task, attempt)
			}
		}
	}
	for task := int64(49); task >= 0; task-- {
		for _, layer := range []string{LayerStorage, LayerNet, LayerDB, LayerHost} {
			for attempt := 3; attempt >= 1; attempt-- {
				got := b.Decide(layer, "deploy", task, attempt)
				if got != want[key{layer, task, attempt}] {
					t.Fatalf("Decide(%s,%d,%d) = %+v, want %+v", layer, task, attempt, got, want[key{layer, task, attempt}])
				}
			}
		}
	}
	if a.JitterU(9, 2) != b.JitterU(9, 2) {
		t.Fatal("jitter draws disagree between identical injectors")
	}
}

func TestPerKindOverride(t *testing.T) {
	in, err := New(1, Config{Host: Layer{FailProb: 1, PerKind: map[string]float64{"destroy": 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if out := in.Decide(LayerHost, "deploy", 1, 1); !out.Fail {
		t.Fatal("FailProb=1 did not fail")
	}
	if out := in.Decide(LayerHost, "destroy", 1, 1); out.Fail {
		t.Fatal("per-kind override 0 still failed")
	}
}

func TestStallDistribution(t *testing.T) {
	in, err := New(3, Config{Storage: Layer{Stall: Stall{Prob: 1, MeanS: 2, CV: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		out := in.Decide(LayerStorage, "deploy", int64(i), 1)
		if out.Fail {
			t.Fatal("stall-only layer injected a failure")
		}
		if out.StallS <= 0 {
			t.Fatalf("stall prob 1 produced no stall at task %d", i)
		}
		sum += out.StallS
	}
	if mean := sum / float64(n); mean < 1.5 || mean > 2.5 {
		t.Fatalf("stall mean %v, want ≈2", mean)
	}
	st := in.Stats().Storage
	if st.Stalls != int64(n) || st.StallSeconds <= 0 {
		t.Fatalf("stall stats %+v", st)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Host: Layer{FailProb: 1.5}},
		{DB: Layer{FailProb: -0.1}},
		{Net: Layer{PerKind: map[string]float64{"migrate": 2}}},
		{Storage: Layer{Stall: Stall{Prob: 0.5}}}, // stall prob without mean
		{Host: Layer{Stall: Stall{Prob: 0.5, MeanS: 1, CV: -1}}},
	}
	for i, cfg := range bad {
		if _, err := New(1, cfg); err == nil {
			t.Fatalf("config %d validated: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if Preset(0).Enabled() {
		t.Fatal("Preset(0) reports enabled")
	}
	if !Preset(0.1).Enabled() {
		t.Fatal("Preset(0.1) reports disabled")
	}
	if err := Preset(3).Validate(); err != nil {
		t.Fatalf("Preset clamp failed: %v", err)
	}
}
