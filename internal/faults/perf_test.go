package faults

import (
	"fmt"
	"testing"

	"cloudmcp/internal/rng"
)

// referenceDecide is the original, allocation-heavy Decide: format the
// label, derive a fresh stream, draw in the fixed order. The production
// path (cached SeedHasher prefixes + Reseeder) must agree with it on
// every outcome — this is the equivalence that keeps E17 and every
// faults-enabled artifact byte-identical.
func referenceDecide(seed int64, cfg Config, layer, kind string, taskID int64, attempt int) Outcome {
	var lc Layer
	switch layer {
	case LayerHost:
		lc = cfg.Host
	case LayerDB:
		lc = cfg.DB
	case LayerNet:
		lc = cfg.Net
	case LayerStorage:
		lc = cfg.Storage
	}
	failP := lc.failProbFor(kind)
	if failP <= 0 && lc.Stall.Prob <= 0 {
		return Outcome{}
	}
	s := rng.Derive(seed, fmt.Sprintf("fault:%s:%d:%d", layer, taskID, attempt))
	var out Outcome
	if failP > 0 && s.Bernoulli(failP) {
		out.Fail = true
	}
	if lc.Stall.Prob > 0 && s.Bernoulli(lc.Stall.Prob) {
		out.StallS = s.LogNormal(lc.Stall.MeanS, lc.Stall.CV)
	}
	return out
}

func TestDecideMatchesReferenceDerivation(t *testing.T) {
	cfg := Preset(0.2)
	cfg.DB.PerKind = map[string]float64{"deploy": 0.5}
	for _, seed := range []int64{1, 42, -7, 905418259443008068} {
		in, err := New(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, layer := range []string{LayerHost, LayerDB, LayerNet, LayerStorage} {
			for taskID := int64(0); taskID < 50; taskID++ {
				for attempt := 1; attempt <= 3; attempt++ {
					got := in.Decide(layer, "deploy", taskID, attempt)
					want := referenceDecide(seed, cfg, layer, "deploy", taskID, attempt)
					if got != want {
						t.Fatalf("Decide(seed=%d %s task=%d attempt=%d) = %+v, want %+v",
							seed, layer, taskID, attempt, got, want)
					}
				}
			}
		}
	}
}

func TestJitterUMatchesReferenceDerivation(t *testing.T) {
	in, err := New(42, Preset(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for taskID := int64(0); taskID < 20; taskID++ {
		for attempt := 1; attempt <= 4; attempt++ {
			got := in.JitterU(taskID, attempt)
			want := rng.Derive(42, fmt.Sprintf("retry:%d:%d", taskID, attempt)).Float64()
			if got != want {
				t.Fatalf("JitterU(task=%d attempt=%d) = %v, want %v", taskID, attempt, got, want)
			}
		}
	}
}

// Golden seeds: the injector's cached per-layer prefixes must keep
// producing exactly the sub-seeds rng.DeriveSeed has always produced for
// "fault:<layer>:<taskID>:<attempt>". Values computed from the original
// fmt-based derivation and hardcoded.
func TestInjectorDerivedSeedsGolden(t *testing.T) {
	golden := []struct {
		label string
		want  int64
	}{
		{"fault:host:1:1", 905418259443008068},
		{"fault:db:17:3", 2502797662279492609},
		{"fault:net:100:2", -1103909368913001484},
		{"fault:storage:-5:1", 6855313081034852700},
		{"retry:9:4", 8644708048418715761},
	}
	for _, g := range golden {
		if got := rng.DeriveSeed(42, g.label); got != g.want {
			t.Errorf("DeriveSeed(42, %q) = %d, want %d", g.label, got, g.want)
		}
	}
	in, err := New(42, Preset(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// The injector's cached prefixes extended per-decision must land on
	// the same seeds.
	checks := []struct {
		prefix  rng.SeedHasher
		taskID  int64
		attempt int64
		want    int64
	}{
		{in.hostPrefix, 1, 1, 905418259443008068},
		{in.dbPrefix, 17, 3, 2502797662279492609},
		{in.netPrefix, 100, 2, -1103909368913001484},
		{in.storPrefix, -5, 1, 6855313081034852700},
		{in.retryPrefix, 9, 4, 8644708048418715761},
	}
	for i, c := range checks {
		if got := c.prefix.Int(c.taskID).Byte(':').Int(c.attempt).Seed(); got != c.want {
			t.Errorf("check %d: cached prefix seed = %d, want %d", i, got, c.want)
		}
	}
}

func TestDecideAllocFree(t *testing.T) {
	in, err := New(42, Preset(0.3))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = in.Decide(LayerHost, "deploy", 123, 1)
	})
	if allocs != 0 {
		t.Fatalf("Decide allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		_ = in.JitterU(123, 2)
	})
	if allocs != 0 {
		t.Fatalf("JitterU allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkKernelFaultDecide(b *testing.B) {
	in, err := New(42, Preset(0.3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = in.Decide(LayerHost, "deploy", int64(i), 1)
	}
}
