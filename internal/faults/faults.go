// Package faults is the deterministic fault-injection layer for the
// simulated control plane. It decides, per (layer, task, attempt),
// whether an operation's interaction with that layer transiently fails
// and whether it is stalled by an injected latency spike — the raw
// material for the retry/timeout/backoff policy in internal/mgmt and
// for the E17 goodput-under-faults experiment.
//
// Determinism is the load-bearing property, and it uses the same
// discipline as internal/sweep: every decision draws from a stream
// derived as rng.DeriveSeed(seed, "fault:<layer>:<taskID>:<attempt>"),
// never from a shared stream, so an outcome is a pure function of the
// master seed and the identifiers — byte-identical across sweep worker
// counts and unaffected by how many other decisions were made first.
// Equally load-bearing: a layer whose probabilities are all zero draws
// nothing at all, so a zero-rate Config is behaviourally identical to
// no injector (the faults-disabled equivalence test pins this down).
package faults

import (
	"fmt"

	"cloudmcp/internal/metrics"
	"cloudmcp/internal/rng"
)

// Layer names, used both as Decide arguments and as the <layer> part of
// the derivation label. They name the subsystem whose interaction fails:
// host agents (hostsim), the management database (mgmtdb commits), the
// migration network (netsim), and storage (datastore I/O).
const (
	LayerHost    = "host"
	LayerDB      = "db"
	LayerNet     = "net"
	LayerStorage = "storage"
)

// Stall is an injected latency-spike distribution: with probability
// Prob an interaction is delayed by a LogNormal(MeanS, CV) number of
// seconds on top of its modeled service time.
type Stall struct {
	Prob  float64 `json:"prob,omitempty"`
	MeanS float64 `json:"mean_s,omitempty"`
	CV    float64 `json:"cv,omitempty"`
}

// Layer configures fault injection for one subsystem.
type Layer struct {
	// FailProb is the per-attempt probability that the interaction
	// transiently fails (the attempt's work is wasted and the manager's
	// retry policy decides what happens next).
	FailProb float64 `json:"fail_prob,omitempty"`
	// PerKind overrides FailProb for specific operation kinds, keyed by
	// ops.Kind.String() (e.g. "deploy", "migrate").
	PerKind map[string]float64 `json:"per_kind,omitempty"`
	// Stall injects latency spikes independently of failures.
	Stall Stall `json:"stall,omitempty"`
}

func (l Layer) failProbFor(kind string) float64 {
	if p, ok := l.PerKind[kind]; ok {
		return p
	}
	return l.FailProb
}

// active reports whether the layer can ever inject anything.
func (l Layer) active() bool {
	if l.FailProb > 0 || l.Stall.Prob > 0 {
		return true
	}
	for _, p := range l.PerKind {
		if p > 0 {
			return true
		}
	}
	return false
}

func (l Layer) validate(name string) error {
	check := func(what string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s %s probability %v out of [0,1]", name, what, p)
		}
		return nil
	}
	if err := check("fail", l.FailProb); err != nil {
		return err
	}
	for k, p := range l.PerKind {
		if err := check("per-kind "+k, p); err != nil {
			return err
		}
	}
	if err := check("stall", l.Stall.Prob); err != nil {
		return err
	}
	if l.Stall.Prob > 0 && l.Stall.MeanS <= 0 {
		return fmt.Errorf("faults: %s stall mean %v must be positive when stall prob is set", name, l.Stall.MeanS)
	}
	if l.Stall.CV < 0 {
		return fmt.Errorf("faults: %s stall cv %v negative", name, l.Stall.CV)
	}
	return nil
}

// Config holds per-layer fault rates. The zero value injects nothing.
type Config struct {
	Host    Layer `json:"host,omitempty"`
	DB      Layer `json:"db,omitempty"`
	Net     Layer `json:"net,omitempty"`
	Storage Layer `json:"storage,omitempty"`
}

// Enabled reports whether any layer can inject anything.
func (c Config) Enabled() bool {
	return c.Host.active() || c.DB.active() || c.Net.active() || c.Storage.active()
}

// Validate checks every probability and distribution parameter.
func (c Config) Validate() error {
	for _, l := range []struct {
		name string
		l    Layer
	}{{LayerHost, c.Host}, {LayerDB, c.DB}, {LayerNet, c.Net}, {LayerStorage, c.Storage}} {
		if err := l.l.validate(l.name); err != nil {
			return err
		}
	}
	return nil
}

// Preset returns a one-knob fault scenario scaled by rate (the host
// agents' per-attempt transient-failure probability; the other layers
// fail at a fraction of it, and every layer sees latency spikes at the
// same rate). Preset(0) is a valid all-zero config; rates are clamped
// to 1. This is what the CLIs' -fault-rate flag builds.
func Preset(rate float64) Config {
	clamp := func(p float64) float64 {
		if p > 1 {
			return 1
		}
		return p
	}
	return Config{
		Host:    Layer{FailProb: clamp(rate), Stall: Stall{Prob: clamp(rate), MeanS: 2.0, CV: 1.0}},
		DB:      Layer{FailProb: clamp(rate / 2), Stall: Stall{Prob: clamp(rate), MeanS: 0.25, CV: 1.0}},
		Net:     Layer{Stall: Stall{Prob: clamp(rate), MeanS: 2.0, CV: 1.0}}, // degradation, not loss
		Storage: Layer{FailProb: clamp(rate / 4), Stall: Stall{Prob: clamp(rate), MeanS: 1.0, CV: 1.0}},
	}
}

// Outcome is one injection decision: the interaction is stalled by
// StallS seconds of injected latency, and — independently — transiently
// fails when Fail is set. The zero Outcome injects nothing.
type Outcome struct {
	Fail   bool
	StallS float64
}

// Error is the transient failure an injected fault produces. It is the
// error a task carries when the retry policy gives up.
type Error struct {
	Layer   string // which subsystem failed (LayerHost, ...)
	Op      string // operation kind
	Attempt int    // 1-based attempt that observed the failure
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s failure (op %s, attempt %d)", e.Layer, e.Op, e.Attempt)
}

// LayerStats counts one layer's injections.
type LayerStats struct {
	Decisions    int64   // Decide calls that actually drew
	Failures     int64   // transient failures injected
	Stalls       int64   // latency spikes injected
	StallSeconds float64 // total injected stall time
}

// Stats aggregates per-layer injection counts.
type Stats struct {
	Host    LayerStats
	DB      LayerStats
	Net     LayerStats
	Storage LayerStats
}

// Injector draws fault decisions for one simulation. Build one per
// simulated cloud (its counters, like the rest of the kernel, are
// single-threaded per run); the per-decision streams mean two injectors
// with the same seed and config always agree.
//
// Decisions are frequent — several per task attempt — so the injector
// never formats a label or constructs a generator per decision: the FNV
// state of each "fault:<layer>:" prefix is hashed once at construction
// (rng.SeedHasher) and extended with the task/attempt digits per draw,
// and the draws come from one cached generator re-seeded per decision
// (rng.Reseeder). The seeds are bit-for-bit the values
// rng.DeriveSeed(seed, "fault:<layer>:<taskID>:<attempt>") has always
// produced, pinned by a golden test.
type Injector struct {
	seed  int64
	cfg   Config
	stats Stats

	scratch     *rng.Reseeder
	hostPrefix  rng.SeedHasher
	dbPrefix    rng.SeedHasher
	netPrefix   rng.SeedHasher
	storPrefix  rng.SeedHasher
	retryPrefix rng.SeedHasher
}

// New builds an injector rooted at seed. The config is validated; an
// all-zero config is legal and injects nothing.
func New(seed int64, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base := rng.NewSeedHasher(seed)
	return &Injector{
		seed:        seed,
		cfg:         cfg,
		scratch:     rng.NewReseeder(),
		hostPrefix:  base.String("fault:" + LayerHost + ":"),
		dbPrefix:    base.String("fault:" + LayerDB + ":"),
		netPrefix:   base.String("fault:" + LayerNet + ":"),
		storPrefix:  base.String("fault:" + LayerStorage + ":"),
		retryPrefix: base.String("retry:"),
	}, nil
}

// Config returns the injector's configuration (zero value when nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Stats returns the injection counts so far (zero when nil).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

func (in *Injector) layerFor(name string) (Layer, *LayerStats, rng.SeedHasher) {
	switch name {
	case LayerHost:
		return in.cfg.Host, &in.stats.Host, in.hostPrefix
	case LayerDB:
		return in.cfg.DB, &in.stats.DB, in.dbPrefix
	case LayerNet:
		return in.cfg.Net, &in.stats.Net, in.netPrefix
	case LayerStorage:
		return in.cfg.Storage, &in.stats.Storage, in.storPrefix
	}
	return Layer{}, nil, rng.SeedHasher{}
}

// Decide returns the injection outcome for one interaction of task
// taskID's attempt (1-based) with the named layer, for an operation of
// the given kind. Nil injectors and all-zero layers return the zero
// Outcome without drawing anything. When a draw happens, the stream is
// derived fresh from "fault:<layer>:<taskID>:<attempt>" and consumed in
// a fixed order (failure first, then stall), so outcomes are a pure
// function of (seed, layer, taskID, attempt).
func (in *Injector) Decide(layer, kind string, taskID int64, attempt int) Outcome {
	if in == nil {
		return Outcome{}
	}
	lc, ls, prefix := in.layerFor(layer)
	if ls == nil {
		return Outcome{}
	}
	failP := lc.failProbFor(kind)
	if failP <= 0 && lc.Stall.Prob <= 0 {
		return Outcome{}
	}
	s := in.scratch.Reseed(prefix.Int(taskID).Byte(':').Int(int64(attempt)).Seed())
	ls.Decisions++
	var out Outcome
	if failP > 0 && s.Bernoulli(failP) {
		out.Fail = true
		ls.Failures++
	}
	if lc.Stall.Prob > 0 && s.Bernoulli(lc.Stall.Prob) {
		out.StallS = s.LogNormal(lc.Stall.MeanS, lc.Stall.CV)
		ls.Stalls++
		ls.StallSeconds += out.StallS
	}
	return out
}

// JitterU returns the deterministic uniform [0,1) jitter draw for task
// taskID's attempt-th retry backoff, from its own derived stream
// ("retry:<taskID>:<attempt>"). 0 on a nil injector.
func (in *Injector) JitterU(taskID int64, attempt int) float64 {
	if in == nil {
		return 0
	}
	return in.scratch.Reseed(in.retryPrefix.Int(taskID).Byte(':').Int(int64(attempt)).Seed()).Float64()
}

// RegisterMetrics exposes the injector's per-layer counters as pull
// probes under layer "faults". No-op on a nil injector or registry.
func (in *Injector) RegisterMetrics(reg *metrics.Registry) {
	if in == nil || reg == nil {
		return
	}
	for _, l := range []struct {
		name string
		ls   *LayerStats
	}{
		{LayerHost, &in.stats.Host},
		{LayerDB, &in.stats.DB},
		{LayerNet, &in.stats.Net},
		{LayerStorage, &in.stats.Storage},
	} {
		ls := l.ls
		reg.ScalarFunc("faults", l.name, "decisions", func() float64 { return float64(ls.Decisions) })
		reg.ScalarFunc("faults", l.name, "failures", func() float64 { return float64(ls.Failures) })
		reg.ScalarFunc("faults", l.name, "stalls", func() float64 { return float64(ls.Stalls) })
		reg.ScalarFunc("faults", l.name, "stall_s", func() float64 { return ls.StallSeconds })
	}
}
