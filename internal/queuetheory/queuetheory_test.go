package queuetheory

import (
	"math"
	"testing"
	"testing/quick"

	"cloudmcp/internal/rng"
	"cloudmcp/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestErlangCKnownValues(t *testing.T) {
	// Classic reference: a=2 Erlangs over c=3 servers → C ≈ 0.4444.
	q := MMc{Lambda: 2, Mu: 1, C: 3}
	if got := q.ErlangC(); !almost(got, 4.0/9.0, 1e-9) {
		t.Fatalf("ErlangC = %v, want 4/9", got)
	}
	// M/M/1 reduces to rho.
	q1 := MMc{Lambda: 0.5, Mu: 1, C: 1}
	if got := q1.ErlangC(); !almost(got, 0.5, 1e-12) {
		t.Fatalf("M/M/1 ErlangC = %v, want rho", got)
	}
}

func TestMM1WaitFormula(t *testing.T) {
	// M/M/1: Wq = rho/(mu-lambda).
	q := MMc{Lambda: 0.8, Mu: 1, C: 1}
	want := 0.8 / (1 - 0.8)
	if got := q.MeanWait(); !almost(got, want, 1e-9) {
		t.Fatalf("Wq = %v, want %v", got, want)
	}
}

func TestUnstableQueue(t *testing.T) {
	q := MMc{Lambda: 5, Mu: 1, C: 3}
	if q.Stable() {
		t.Fatal("rho>1 reported stable")
	}
	if q.ErlangC() != 1 || !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.MeanQueueLen(), 1) {
		t.Fatal("unstable queue metrics wrong")
	}
	if q.Utilization() != 1 {
		t.Fatal("unstable utilization must clamp to 1")
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MMc{Lambda: 0, Mu: 1, C: 1}.ErlangC()
}

func TestLittleLawConsistency(t *testing.T) {
	f := func(l8, m8, c8 uint8) bool {
		lambda := 0.1 + float64(l8%50)/10
		mu := 0.5 + float64(m8%30)/10
		c := int(c8%8) + 1
		q := MMc{Lambda: lambda, Mu: mu, C: c}
		if !q.Stable() {
			return true
		}
		// Lq = lambda * Wq must hold by construction; check numerically.
		return almost(q.MeanQueueLen(), q.Lambda*q.MeanWait(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for i := 1; i <= 9; i++ {
		q := MMc{Lambda: float64(i), Mu: 1, C: 10}
		c := q.ErlangC()
		if c <= prev && i > 1 {
			t.Fatalf("ErlangC not increasing at lambda=%d", i)
		}
		prev = c
	}
}

// simulateMMc drives a sim.Resource with Poisson arrivals and exponential
// service and returns (mean wait, utilization) from the resource stats.
func simulateMMc(seed int64, lambda, mu float64, c, n int) (meanWait, util float64) {
	env := sim.NewEnv()
	res := sim.NewResource(env, "station", c)
	arr := rng.Derive(seed, "arrivals")
	svc := rng.Derive(seed, "service")
	env.Go("source", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(arr.Exponential(1 / lambda))
			d := svc.Exponential(1 / mu)
			env.Go("job", func(jp *sim.Proc) {
				res.Acquire(jp, 1)
				jp.Sleep(d)
				res.Release(1)
			})
		}
	})
	env.Run(sim.Forever)
	st := res.Stats()
	return st.MeanWait, st.Utilization
}

// TestSimMatchesErlangC is the simulator cross-validation: the kernel's
// Resource under Poisson load must reproduce the analytic M/M/c mean
// wait and utilization within sampling error. This is the soundness
// anchor for every queueing result the experiments report.
func TestSimMatchesErlangC(t *testing.T) {
	cases := []MMc{
		{Lambda: 0.5, Mu: 1, C: 1}, // mid-load M/M/1
		{Lambda: 0.8, Mu: 1, C: 1}, // high-load M/M/1
		{Lambda: 2.0, Mu: 1, C: 3}, // multi-server
		{Lambda: 6.0, Mu: 1, C: 8}, // larger pool
		{Lambda: 3.2, Mu: 2, C: 2}, // faster servers
	}
	const n = 200000
	for _, q := range cases {
		wantW := q.MeanWait()
		gotW, gotU := simulateMMc(11, q.Lambda, q.Mu, q.C, n)
		// 5% relative tolerance plus small absolute floor for near-zero
		// waits; n is large enough for this to be tight.
		tol := 0.05*wantW + 0.01
		if !almost(gotW, wantW, tol) {
			t.Errorf("M/M/%d λ=%v: sim wait %.4f vs theory %.4f", q.C, q.Lambda, gotW, wantW)
		}
		if !almost(gotU, q.Utilization(), 0.02) {
			t.Errorf("M/M/%d λ=%v: sim util %.4f vs theory %.4f", q.C, q.Lambda, gotU, q.Utilization())
		}
	}
}
