// Package queuetheory provides closed-form M/M/c queueing results
// (Erlang C) used to cross-validate the simulator: the management
// server's thread pool under Poisson load is an M/M/c station, so the
// simulated wait times must match the analytic values within sampling
// error. The validation tests in this package are part of the evidence
// that the control-plane saturation curves the experiments report are
// queueing behaviour, not simulator artifacts.
package queuetheory

import (
	"fmt"
	"math"
)

// MMc describes an M/M/c queue: Poisson arrivals at rate lambda, c
// servers with exponential service at rate mu each.
type MMc struct {
	Lambda float64 // arrivals per second
	Mu     float64 // service completions per server-second
	C      int     // servers
}

// Rho returns the offered load per server, lambda/(c*mu).
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether the queue has a steady state (rho < 1).
func (q MMc) Stable() bool { return q.Rho() < 1 }

func (q MMc) validate() error {
	if q.Lambda <= 0 || q.Mu <= 0 || q.C <= 0 {
		return fmt.Errorf("queuetheory: bad M/M/c %+v", q)
	}
	return nil
}

// ErlangC returns the probability an arriving customer must wait
// (all c servers busy), the Erlang C formula. It panics on invalid
// parameters and returns 1 for unstable queues.
func (q MMc) ErlangC() float64 {
	if err := q.validate(); err != nil {
		panic(err)
	}
	if !q.Stable() {
		return 1
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	c := float64(q.C)
	// Compute the denominator iteratively to avoid factorial overflow:
	// sum_{k=0}^{c-1} a^k/k! + a^c/c! * 1/(1-rho)
	term := 1.0 // a^0/0!
	sum := term
	for k := 1; k < q.C; k++ {
		term *= a / float64(k)
		sum += term
	}
	top := term * a / c // a^c/c!
	top /= 1 - q.Rho()
	return top / (sum + top)
}

// MeanWait returns the expected time in queue (excluding service),
// Wq = C(c, a) / (c*mu - lambda). Infinite for unstable queues.
func (q MMc) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanQueueLen returns the expected number waiting, Lq = lambda * Wq
// (Little's law). Infinite for unstable queues.
func (q MMc) MeanQueueLen() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Lambda * q.MeanWait()
}

// MeanResponse returns the expected total time in system, W = Wq + 1/mu.
func (q MMc) MeanResponse() float64 { return q.MeanWait() + 1/q.Mu }

// Utilization returns the per-server busy fraction, equal to Rho for a
// stable queue.
func (q MMc) Utilization() float64 {
	r := q.Rho()
	if r > 1 {
		return 1
	}
	return r
}
