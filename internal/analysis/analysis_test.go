package analysis

import (
	"math"
	"testing"

	"cloudmcp/internal/ops"
	"cloudmcp/internal/trace"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func mkRecords() []trace.Record {
	return []trace.Record{
		{TaskID: 1, Kind: "deploy", Submit: 0, End: 10, Latency: 10,
			Queue: 1, Cell: 1, Mgmt: 2, DB: 1, Host: 2, Data: 3},
		{TaskID: 2, Kind: "deploy", Submit: 60, End: 80, Latency: 20,
			Queue: 2, Cell: 2, Mgmt: 4, DB: 2, Host: 4, Data: 6},
		{TaskID: 3, Kind: "powerOn", Submit: 120, End: 125, Latency: 5,
			Host: 5},
		{TaskID: 4, Kind: "deploy", Submit: 180, End: 200, Latency: 20, Err: "fail"},
		{TaskID: 5, Kind: "destroy", Submit: 240, End: 244, Latency: 4, Mgmt: 4},
	}
}

func TestFilters(t *testing.T) {
	recs := mkRecords()
	if got := len(FilterKind(recs, "deploy")); got != 3 {
		t.Fatalf("deploy count = %d", got)
	}
	if got := len(FilterOK(recs)); got != 4 {
		t.Fatalf("ok count = %d", got)
	}
	if got := len(FilterTime(recs, 60, 181)); got != 3 {
		t.Fatalf("window count = %d", got)
	}
	if got := len(FilterTime(recs, 60, 60)); got != 0 {
		t.Fatalf("empty window = %d", got)
	}
}

func TestOpMix(t *testing.T) {
	mix := OpMix(mkRecords())
	if len(mix) != 3 {
		t.Fatalf("rows = %d", len(mix))
	}
	// Canonical order: deploy, powerOn, destroy.
	if mix[0].Kind != "deploy" || mix[1].Kind != "powerOn" || mix[2].Kind != "destroy" {
		t.Fatalf("order = %v", mix)
	}
	if mix[0].Count != 3 || mix[0].Errors != 1 {
		t.Fatalf("deploy row = %+v", mix[0])
	}
	if !almost(mix[0].Frac, 0.6, 1e-9) {
		t.Fatalf("deploy frac = %v", mix[0].Frac)
	}
}

func TestOpMixUnknownKind(t *testing.T) {
	recs := []trace.Record{{Kind: "zzz"}, {Kind: "deploy"}}
	mix := OpMix(recs)
	if len(mix) != 2 || mix[0].Kind != "deploy" || mix[1].Kind != "zzz" {
		t.Fatalf("mix = %v", mix)
	}
}

func TestOpMixEmpty(t *testing.T) {
	if mix := OpMix(nil); len(mix) != 0 {
		t.Fatalf("mix = %v", mix)
	}
}

func TestRateSeries(t *testing.T) {
	ts := RateSeries(mkRecords(), 60, "")
	if ts.Len() != 5 {
		t.Fatalf("bins = %d", ts.Len())
	}
	if ts.At(0) != 1 || ts.At(1) != 1 || ts.At(2) != 1 || ts.At(3) != 1 || ts.At(4) != 1 {
		t.Fatalf("bins = %v", ts.Bins())
	}
	dep := RateSeries(mkRecords(), 60, "deploy")
	if dep.At(2) != 0 || dep.At(0) != 1 {
		t.Fatalf("deploy bins = %v", dep.Bins())
	}
}

func TestInterarrivals(t *testing.T) {
	s := Interarrivals(mkRecords(), "deploy")
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	// Gaps: 60, 120.
	if !almost(s.Mean(), 90, 1e-9) {
		t.Fatalf("mean = %v", s.Mean())
	}
	all := Interarrivals(mkRecords(), "")
	if all.Count() != 4 || !almost(all.Mean(), 60, 1e-9) {
		t.Fatalf("all: count=%d mean=%v", all.Count(), all.Mean())
	}
}

func TestInterarrivalsUnsorted(t *testing.T) {
	recs := []trace.Record{{Kind: "x", Submit: 100}, {Kind: "x", Submit: 0}, {Kind: "x", Submit: 40}}
	s := Interarrivals(recs, "")
	vals := s.Values()
	if len(vals) != 2 || vals[0] != 40 || vals[1] != 60 {
		t.Fatalf("gaps = %v", vals)
	}
}

func TestLatencyByKind(t *testing.T) {
	rows := LatencyByKind(mkRecords())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	dep := rows[0]
	if dep.Kind != "deploy" || dep.Count != 2 { // error record excluded
		t.Fatalf("deploy row = %+v", dep)
	}
	if !almost(dep.MeanLatency, 15, 1e-9) || !almost(dep.MaxLatency, 20, 1e-9) {
		t.Fatalf("deploy latency = %+v", dep)
	}
	if !almost(dep.MeanBreakdown.Data, 4.5, 1e-9) {
		t.Fatalf("deploy mean data = %v", dep.MeanBreakdown.Data)
	}
}

func TestSharesAndControlShare(t *testing.T) {
	b := ops.Breakdown{Queue: 1, Cell: 1, Mgmt: 2, DB: 1, Host: 2, Data: 3}
	sh := Shares(b)
	if !almost(sh.Total(), 1, 1e-9) {
		t.Fatalf("shares total = %v", sh.Total())
	}
	if !almost(sh.Data, 0.3, 1e-9) {
		t.Fatalf("data share = %v", sh.Data)
	}
	if !almost(ControlShare(b), 0.7, 1e-9) {
		t.Fatalf("control share = %v", ControlShare(b))
	}
	if ControlShare(ops.Breakdown{}) != 0 || Shares(ops.Breakdown{}).Total() != 0 {
		t.Fatal("zero breakdown not handled")
	}
}

func TestMeasureBurstiness(t *testing.T) {
	// 10 ops in one bin, nothing in the other 9.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, trace.Record{Kind: "deploy", Submit: 5})
	}
	recs = append(recs, trace.Record{Kind: "deploy", Submit: 599})
	b := MeasureBurstiness(recs, 60, "")
	if b.PeakPerBin != 10 {
		t.Fatalf("peak = %v", b.PeakPerBin)
	}
	if b.PeakToMean < 5 {
		t.Fatalf("peak/mean = %v", b.PeakToMean)
	}
	if b.IndexOfDispersion < 5 {
		t.Fatalf("dispersion = %v", b.IndexOfDispersion)
	}
}

func TestThroughput(t *testing.T) {
	recs := mkRecords()
	// Successful completions at 10, 80, 125, 244 → 4 over [0, 250).
	if got := Throughput(recs, "", 0, 250); !almost(got, 4.0/250, 1e-12) {
		t.Fatalf("throughput = %v", got)
	}
	if got := Throughput(recs, "deploy", 0, 100); !almost(got, 2.0/100, 1e-12) {
		t.Fatalf("deploy throughput = %v", got)
	}
	if Throughput(recs, "", 10, 10) != 0 {
		t.Fatal("degenerate window")
	}
}

func TestLatencySample(t *testing.T) {
	s := LatencySample(mkRecords(), "deploy")
	if s.Count() != 2 || !almost(s.Mean(), 15, 1e-9) {
		t.Fatalf("sample: n=%d mean=%v", s.Count(), s.Mean())
	}
}

func TestMeanBreakdown(t *testing.T) {
	b, ok := MeanBreakdown(mkRecords(), "deploy")
	if !ok || !almost(b.Mgmt, 3, 1e-9) {
		t.Fatalf("mean breakdown = %+v ok=%v", b, ok)
	}
	if _, ok := MeanBreakdown(mkRecords(), "migrate"); ok {
		t.Fatal("expected no match")
	}
}

func TestPerOrg(t *testing.T) {
	recs := []trace.Record{
		{Kind: "deploy", Org: "a", Latency: 10},
		{Kind: "deploy", Org: "a", Latency: 20},
		{Kind: "powerOn", Org: "a"},
		{Kind: "deploy", Org: "b", Latency: 5, Err: "x"},
		{Kind: "deploy", Org: "b", Latency: 6},
	}
	rows := PerOrg(recs)
	if len(rows) != 2 || rows[0].Org != "a" {
		t.Fatalf("rows = %+v", rows)
	}
	a := rows[0]
	if a.Ops != 3 || a.Deploys != 2 || !almost(a.MeanDeployLatS, 15, 1e-9) {
		t.Fatalf("a = %+v", a)
	}
	b := rows[1]
	if b.Ops != 2 || b.Deploys != 1 || b.Errors != 1 || !almost(b.MeanDeployLatS, 6, 1e-9) {
		t.Fatalf("b = %+v", b)
	}
	if !almost(a.Frac, 0.6, 1e-9) {
		t.Fatalf("frac = %v", a.Frac)
	}
}

func TestPerOrgDeterministicOrder(t *testing.T) {
	recs := []trace.Record{
		{Kind: "powerOn", Org: "z"}, {Kind: "powerOn", Org: "m"},
	}
	rows := PerOrg(recs)
	if rows[0].Org != "m" || rows[1].Org != "z" {
		t.Fatalf("tie order = %+v", rows)
	}
}

func TestDiurnalProfile(t *testing.T) {
	var recs []trace.Record
	// 2 full days: 3 ops in hour 9 each day, 1 op in hour 20 on day 1.
	for day := 0; day < 2; day++ {
		for i := 0; i < 3; i++ {
			recs = append(recs, trace.Record{Kind: "deploy", Submit: float64(day)*86400 + 9*3600 + float64(i)})
		}
	}
	recs = append(recs, trace.Record{Kind: "deploy", Submit: 20 * 3600})
	// Make the trace span exactly 2 days so every hour occurs twice.
	recs = append(recs, trace.Record{Kind: "deploy", Submit: 2*86400 - 1})
	prof := DiurnalProfile(recs)
	if !almost(prof[9], 3, 1e-9) {
		t.Fatalf("hour 9 = %v, want 3", prof[9])
	}
	if !almost(prof[20], 0.5, 1e-9) {
		t.Fatalf("hour 20 = %v, want 0.5", prof[20])
	}
	if prof[3] != 0 {
		t.Fatalf("hour 3 = %v", prof[3])
	}
}

func TestPeriodicityAt(t *testing.T) {
	// Ops every 7200 s exactly: strong period at 7200, weak at 3600+1800.
	var recs []trace.Record
	for i := 0; i < 40; i++ {
		for j := 0; j < 5; j++ {
			recs = append(recs, trace.Record{Kind: "deploy", Submit: float64(i)*7200 + float64(j)})
		}
	}
	if r := PeriodicityAt(recs, 600, 7200); r < 0.8 {
		t.Fatalf("period 7200 r = %v", r)
	}
	if r := PeriodicityAt(recs, 600, 3600); r > 0.5 {
		t.Fatalf("period 3600 r = %v, want weak", r)
	}
	if PeriodicityAt(recs, 0, 7200) != 0 || PeriodicityAt(recs, 600, 100) != 0 {
		t.Fatal("degenerate params not rejected")
	}
}

func TestConcurrencySeries(t *testing.T) {
	recs := []trace.Record{
		{Kind: "deploy", Submit: 0, End: 25},  // bins 0,1,2
		{Kind: "deploy", Submit: 12, End: 18}, // bin 1
		{Kind: "deploy", Submit: 31, End: 35}, // bin 3
	}
	s := ConcurrencySeries(recs, 10)
	// Bin counts: op in flight during bin if it overlaps the bin index.
	if len(s) != 4 {
		t.Fatalf("len = %d: %v", len(s), s)
	}
	if s[0] != 1 || s[1] != 2 || s[2] != 1 || s[3] != 1 {
		t.Fatalf("series = %v", s)
	}
	if got := PeakConcurrency(recs, 10); got != 2 {
		t.Fatalf("peak = %v", got)
	}
}

func TestConcurrencySeriesEmpty(t *testing.T) {
	s := ConcurrencySeries(nil, 10)
	if len(s) != 1 || s[0] != 0 {
		t.Fatalf("series = %v", s)
	}
}
