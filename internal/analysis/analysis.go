// Package analysis is the workload-characterization pipeline: it turns a
// management-operation trace into the quantities the paper reports —
// operation mixes, arrival-rate series and burstiness, interarrival CDFs,
// and per-layer latency breakdowns.
package analysis

import (
	"sort"

	"cloudmcp/internal/ops"
	"cloudmcp/internal/stats"
	"cloudmcp/internal/trace"
)

// FilterKind returns the records of one operation kind.
func FilterKind(records []trace.Record, kind string) []trace.Record {
	var out []trace.Record
	for _, r := range records {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// FilterTime returns the records submitted in [from, to).
func FilterTime(records []trace.Record, from, to float64) []trace.Record {
	var out []trace.Record
	for _, r := range records {
		if r.Submit >= from && r.Submit < to {
			out = append(out, r)
		}
	}
	return out
}

// FilterOK returns records that completed without error.
func FilterOK(records []trace.Record) []trace.Record {
	var out []trace.Record
	for _, r := range records {
		if r.Err == "" {
			out = append(out, r)
		}
	}
	return out
}

// MixRow is one line of an operation-mix table.
type MixRow struct {
	Kind   string
	Count  int
	Frac   float64 // of all records
	Errors int
}

// OpMix tabulates operation counts by kind, in canonical kind order
// followed by any unknown kinds alphabetically.
func OpMix(records []trace.Record) []MixRow {
	counts := map[string]*MixRow{}
	for _, r := range records {
		row, ok := counts[r.Kind]
		if !ok {
			row = &MixRow{Kind: r.Kind}
			counts[r.Kind] = row
		}
		row.Count++
		if r.Err != "" {
			row.Errors++
		}
	}
	var out []MixRow
	seen := map[string]bool{}
	for _, k := range ops.Kinds() {
		if row, ok := counts[k.String()]; ok {
			out = append(out, *row)
			seen[k.String()] = true
		}
	}
	var rest []string
	for k := range counts {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	for _, k := range rest {
		out = append(out, *counts[k])
	}
	if len(records) > 0 {
		for i := range out {
			out[i].Frac = float64(out[i].Count) / float64(len(records))
		}
	}
	return out
}

// RateSeries bins submissions into windows of binS seconds. Pass kind ""
// for all operations.
func RateSeries(records []trace.Record, binS float64, kind string) *stats.TimeSeries {
	ts := stats.NewTimeSeries(binS)
	for _, r := range records {
		if kind != "" && r.Kind != kind {
			continue
		}
		ts.Add(r.Submit, 1)
	}
	return ts
}

// Interarrivals returns the gaps between consecutive submissions of the
// given kind ("" for all), in submit order.
func Interarrivals(records []trace.Record, kind string) *stats.Sample {
	var times []float64
	for _, r := range records {
		if kind != "" && r.Kind != kind {
			continue
		}
		times = append(times, r.Submit)
	}
	sort.Float64s(times)
	s := &stats.Sample{}
	for i := 1; i < len(times); i++ {
		s.Add(times[i] - times[i-1])
	}
	return s
}

// LatencyRow summarizes latency for one kind.
type LatencyRow struct {
	Kind          string
	Count         int
	MeanLatency   float64
	P50Latency    float64
	P95Latency    float64
	MaxLatency    float64
	MeanBreakdown ops.Breakdown
}

// LatencyByKind summarizes successful operations per kind, canonical
// order.
func LatencyByKind(records []trace.Record) []LatencyRow {
	byKind := map[string][]trace.Record{}
	for _, r := range records {
		if r.Err != "" {
			continue
		}
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	var out []LatencyRow
	for _, k := range ops.Kinds() {
		recs := byKind[k.String()]
		if len(recs) == 0 {
			continue
		}
		var lat stats.Sample
		var sum ops.Breakdown
		for _, r := range recs {
			lat.Add(r.Latency)
			sum = sum.Add(r.Breakdown())
		}
		out = append(out, LatencyRow{
			Kind:          k.String(),
			Count:         len(recs),
			MeanLatency:   lat.Mean(),
			P50Latency:    lat.Median(),
			P95Latency:    lat.Percentile(95),
			MaxLatency:    lat.Max(),
			MeanBreakdown: sum.Scale(1 / float64(len(recs))),
		})
	}
	return out
}

// Shares expresses a breakdown as fractions of its total (zero breakdown
// stays zero).
func Shares(b ops.Breakdown) ops.Breakdown {
	t := b.Total()
	if t == 0 {
		return ops.Breakdown{}
	}
	return b.Scale(1 / t)
}

// ControlShare returns the fraction of a breakdown spent off the data
// plane (everything except Data). This is the paper's "control plane is
// the limiting factor" measure.
func ControlShare(b ops.Breakdown) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (t - b.Data) / t
}

// Burstiness summarizes an arrival series.
type Burstiness struct {
	MeanPerBin        float64
	PeakPerBin        float64
	PeakToMean        float64
	IndexOfDispersion float64
}

// MeasureBurstiness computes burstiness of submissions at the given bin
// width ("" kind = all).
func MeasureBurstiness(records []trace.Record, binS float64, kind string) Burstiness {
	ts := RateSeries(records, binS, kind)
	peak, _ := ts.Peak()
	return Burstiness{
		MeanPerBin:        ts.Mean(),
		PeakPerBin:        peak,
		PeakToMean:        ts.PeakToMean(),
		IndexOfDispersion: ts.IndexOfDispersion(),
	}
}

// Throughput returns successfully completed operations of the given kind
// ("" for all) per second over [from, to), measured by completion time.
func Throughput(records []trace.Record, kind string, from, to float64) float64 {
	if to <= from {
		return 0
	}
	n := 0
	for _, r := range records {
		if r.Err != "" || (kind != "" && r.Kind != kind) {
			continue
		}
		if r.End >= from && r.End < to {
			n++
		}
	}
	return float64(n) / (to - from)
}

// LatencySample collects the latencies of successful records of a kind
// ("" for all) into a Sample for percentile/CDF work.
func LatencySample(records []trace.Record, kind string) *stats.Sample {
	s := &stats.Sample{}
	for _, r := range records {
		if r.Err != "" || (kind != "" && r.Kind != kind) {
			continue
		}
		s.Add(r.Latency)
	}
	return s
}

// MeanBreakdown averages the breakdowns of successful records of a kind
// ("" for all); the boolean reports whether any matched.
func MeanBreakdown(records []trace.Record, kind string) (ops.Breakdown, bool) {
	var sum ops.Breakdown
	n := 0
	for _, r := range records {
		if r.Err != "" || (kind != "" && r.Kind != kind) {
			continue
		}
		sum = sum.Add(r.Breakdown())
		n++
	}
	if n == 0 {
		return ops.Breakdown{}, false
	}
	return sum.Scale(1 / float64(n)), true
}

// OrgRow summarizes one tenant's management activity.
type OrgRow struct {
	Org            string
	Ops            int
	Frac           float64
	Deploys        int
	MeanDeployLatS float64
	Errors         int
}

// PerOrg tabulates activity by tenant, busiest first; ties break
// alphabetically so output is deterministic.
func PerOrg(records []trace.Record) []OrgRow {
	byOrg := map[string]*OrgRow{}
	deployLat := map[string]*stats.Sample{}
	for _, r := range records {
		row, ok := byOrg[r.Org]
		if !ok {
			row = &OrgRow{Org: r.Org}
			byOrg[r.Org] = row
			deployLat[r.Org] = &stats.Sample{}
		}
		row.Ops++
		if r.Err != "" {
			row.Errors++
		}
		if r.Kind == ops.KindDeploy.String() && r.Err == "" {
			row.Deploys++
			deployLat[r.Org].Add(r.Latency)
		}
	}
	out := make([]OrgRow, 0, len(byOrg))
	for org, row := range byOrg {
		if s := deployLat[org]; s.Count() > 0 {
			row.MeanDeployLatS = s.Mean()
		}
		if len(records) > 0 {
			row.Frac = float64(row.Ops) / float64(len(records))
		}
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ops != out[j].Ops {
			return out[i].Ops > out[j].Ops
		}
		return out[i].Org < out[j].Org
	})
	return out
}

// DiurnalProfile returns mean operations per hour-of-day, averaged over
// the whole days the trace spans (partial trailing days still contribute
// to the hours they cover).
func DiurnalProfile(records []trace.Record) [24]float64 {
	var sums [24]float64
	var days [24]float64
	maxT := 0.0
	for _, r := range records {
		if r.Submit > maxT {
			maxT = r.Submit
		}
	}
	// How many times each hour-of-day occurs within [0, maxT].
	for h := 0; h < 24; h++ {
		start := float64(h) * 3600
		for d := 0.0; d*86400+start < maxT; d++ {
			days[h]++
		}
	}
	for _, r := range records {
		h := int(r.Submit/3600) % 24
		sums[h]++
	}
	var out [24]float64
	for h := 0; h < 24; h++ {
		if days[h] > 0 {
			out[h] = sums[h] / days[h]
		}
	}
	return out
}

// PeriodicityAt returns the autocorrelation of the binned arrival series
// at the given period (both in seconds) — near 1 for strongly periodic
// load such as session batches.
func PeriodicityAt(records []trace.Record, binS, periodS float64) float64 {
	if binS <= 0 || periodS < binS {
		return 0
	}
	ts := RateSeries(records, binS, "")
	return stats.Autocorrelation(ts.Bins(), int(periodS/binS))
}

// ConcurrencySeries returns the number of operations in flight (submitted
// but not completed) at each bin boundary — the "outstanding management
// operations over time" view of a trace. Bins of binS seconds span the
// trace; the value reported for bin i is the in-flight count at time
// i*binS.
func ConcurrencySeries(records []trace.Record, binS float64) []float64 {
	if binS <= 0 {
		panic("analysis: concurrency bin width must be positive")
	}
	maxT := 0.0
	for _, r := range records {
		if r.End > maxT {
			maxT = r.End
		}
	}
	n := int(maxT/binS) + 1
	deltas := make([]float64, n+1)
	for _, r := range records {
		si := int(r.Submit / binS)
		ei := int(r.End / binS)
		if si < 0 || si > n || ei < 0 {
			continue
		}
		deltas[si]++
		if ei+1 <= n {
			deltas[ei+1]--
		}
	}
	out := make([]float64, n)
	running := 0.0
	for i := 0; i < n; i++ {
		running += deltas[i]
		out[i] = running
	}
	return out
}

// PeakConcurrency returns the highest in-flight operation count seen at
// the given resolution.
func PeakConcurrency(records []trace.Record, binS float64) float64 {
	peak := 0.0
	for _, v := range ConcurrencySeries(records, binS) {
		if v > peak {
			peak = v
		}
	}
	return peak
}
